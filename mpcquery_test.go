package mpcquery

import (
	"math/rand"
	"strings"
	"testing"

	"mpcquery/internal/data"
)

// TestPublicAPIQuickstart exercises the documented quick-start flow.
func TestPublicAPIQuickstart(t *testing.T) {
	q := Triangle()
	rng := rand.New(rand.NewSource(1))
	db := MatchingDatabase(rng, q, 1000, 1<<20)
	res := RunHyperCube(q, db, 64, 42)
	if res.MaxLoadBits <= 0 {
		t.Fatal("no load measured")
	}
	want := SequentialAnswer(q, db)
	if !data.Equal(res.Output, want) {
		t.Fatal("output mismatch")
	}
}

func TestPublicAPIParseAndBounds(t *testing.T) {
	q := MustParseQuery("q(x,y,z) :- R(x,y), S(y,z), T(z,x)")
	tau, u := TauStar(q)
	if tau != 1.5 {
		t.Errorf("τ*=%v want 1.5", tau)
	}
	if len(u) != 3 {
		t.Errorf("packing len=%d", len(u))
	}
	if got := SpaceExponentLB(q); got < 0.33 || got > 0.34 {
		t.Errorf("ε=%v want 1/3", got)
	}
	M := []float64{1 << 20, 1 << 20, 1 << 20}
	lower, _ := LoadLowerBound(q, M, 64)
	upper := ShareExponents(q, M, 64).Load()
	if lower <= 0 || upper/lower > 1.001 || lower/upper > 1.001 {
		t.Errorf("bounds: lower=%v upper=%v", lower, upper)
	}
}

func TestPublicAPIMultiRound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db := ChainMatchingDatabase(rng, 8, 200, 1<<20)
	plan := PlanChain(8, 0)
	if plan.Rounds() != 3 {
		t.Fatalf("L8 plan rounds=%d want 3", plan.Rounds())
	}
	if ChainRounds(8, 0) != 3 {
		t.Error("formula disagrees")
	}
	res := ExecutePlan(plan, db, 32, 7)
	if res.Output.NumTuples() != 200 {
		t.Fatalf("output=%d want 200", res.Output.NumTuples())
	}
}

func TestPublicAPISkew(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q := Star(2)
	db := SkewedStarDatabase(rng, 2, 300, 1<<20, map[int64]int{7: 150})
	res := RunSkewedStar(q, db, 8, 5)
	want := SequentialAnswer(q, db)
	if !data.Equal(res.Output, want) {
		t.Fatal("skewed star mismatch")
	}
	tri := SkewedTriangleDatabase(rng, 300, 1<<20, 5, 100)
	tr := RunSkewedTriangle(Triangle(), tri, 27, 5)
	if !data.Equal(tr.Output, SequentialAnswer(Triangle(), tri)) {
		t.Fatal("skewed triangle mismatch")
	}
}

func TestPublicAPIConnectedComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := LayeredPathGraph(rng, 16, 10)
	lp := ConnectedComponentsLabelProp(g, 8, 1)
	pj := ConnectedComponentsPointerJump(g, 8, 1)
	if len(lp.Labels) != len(pj.Labels) {
		t.Fatal("label count mismatch")
	}
	for v, l := range lp.Labels {
		if pj.Labels[v] != l {
			t.Fatalf("vertex %d: %d vs %d", v, l, pj.Labels[v])
		}
	}
	if pj.IterRounds >= lp.IterRounds {
		t.Errorf("pointer jumping %d rounds should beat label prop %d", pj.IterRounds, lp.IterRounds)
	}
}

func TestPublicAPIExperiments(t *testing.T) {
	tables := RunAllExperiments(ExperimentConfig{Seed: 1, Quick: true})
	if len(tables) != 17 {
		t.Fatalf("tables=%d want 17", len(tables))
	}
}

func TestPublicAPIBoundsAndTools(t *testing.T) {
	q := Triangle()
	M := []float64{1 << 20, 1 << 20, 1 << 20}
	if f := AnswerFractionUB(q, M, 64, float64(1<<20)/64); f <= 0 || f > 1 {
		t.Errorf("fraction UB: %v", f)
	}
	if RoundsUB(Chain(8), 0) < 3 {
		t.Error("L8 rounds UB")
	}
	if b := MatchingEntropyBits(2, 2, 4); b <= 0 {
		t.Errorf("matching entropy: %v", b)
	}
	if b := AGMBound([]float64{100, 100, 100}, []float64{0.5, 0.5, 0.5}); b < 999.99 || b > 1000.01 {
		t.Errorf("AGM: %v", b)
	}
	lhs, rhs := FriedgutCheck(Star(2), [][]float64{{1, 1, 1, 1}, {1, 1, 1, 1}}, 2, []float64{1, 1})
	if lhs > rhs {
		t.Errorf("Friedgut: %v > %v", lhs, rhs)
	}
	freq := []map[int64]float64{{1: 100}, {1: 100}}
	if lb := StarSkewLB(freq, 4); lb <= 0 {
		t.Errorf("star LB: %v", lb)
	}
}

func TestPublicAPICappedAndCSV(t *testing.T) {
	q := Triangle()
	rng := rand.New(rand.NewSource(9))
	db := MatchingDatabase(rng, q, 300, 1<<16)
	capped := RunHyperCubeCapped(q, db, 27, 3, 1e12)
	if capped.Fraction != 1 {
		t.Errorf("unlimited cap fraction: %v", capped.Fraction)
	}
	is := RunHyperCubeInputServers(q, db, 27, 3)
	if is.MaxLoadBits <= 0 {
		t.Error("input-server run recorded no load")
	}
	rel, err := ReadRelationCSV(strings.NewReader("1,2\n3,4\n"), "R", 2)
	if err != nil || rel.NumTuples() != 2 {
		t.Fatalf("csv: %v %d", err, rel.NumTuples())
	}
	gen := RunSkewedGeneric(Star(2), SkewedStarDatabase(rng, 2, 200, 1<<16, map[int64]int{5: 100}), 8, 3, 8)
	if gen.Rounds != 1 {
		t.Errorf("generic rounds: %d", gen.Rounds)
	}
	sampled := RunSkewedStarSampled(Star(2), SkewedStarDatabase(rng, 2, 200, 1<<16, map[int64]int{5: 100}), 8, 3, 50)
	if sampled.Rounds != 2 {
		t.Errorf("sampled rounds: %d", sampled.Rounds)
	}
	q2, mapping := DesugarSelfJoins("p2", []Atom{{Name: "E", Vars: []string{"x", "y"}}, {Name: "E", Vars: []string{"y", "z"}}})
	if q2.NumAtoms() != 2 || len(mapping) != 2 {
		t.Error("desugar")
	}
	e := NewRelation("E", 2)
	e.Append(1, 2)
	e.Append(2, 3)
	gdb := NewDatabase(16)
	gdb.Add(e)
	sj := RunHyperCubeSelfJoins("p2", []Atom{{Name: "E", Vars: []string{"x", "y"}}, {Name: "E", Vars: []string{"y", "z"}}}, gdb, 4, 1)
	if sj.Output.NumTuples() != 1 {
		t.Errorf("self-join paths: %d want 1", sj.Output.NumTuples())
	}
}
