package mpcquery

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"mpcquery/internal/transport"
)

// chaosFamilies picks one representative per strategy family out of the
// shared distScenarios catalogue: the one-round HyperCube family, both
// skew-aware shapes, a multi-round plan, the Auto advisor, the self-join
// view path, and an aggregate run. The fault machinery sits below all of
// them identically, so a representative per family is the matrix the
// chaos suite sweeps.
func chaosFamilies() []distScenario {
	keep := map[string]bool{
		"hypercube":           true,
		"skewed-star":         true,
		"skewed-triangle":     true,
		"chain-plan":          true,
		"auto":                true,
		"selfjoin":            true,
		"hypercube-agg-count": true,
	}
	var out []distScenario
	for _, sc := range distScenarios() {
		if keep[sc.name] {
			out = append(out, sc)
		}
	}
	return out
}

// chaosKind is one fault family of the matrix: a plan constructor plus
// the recovery budget its runs need (only the crash kind needs replays).
type chaosKind struct {
	name     string
	plan     func() *FaultPlan
	recovery int
}

func chaosKinds() []chaosKind {
	return []chaosKind{
		{name: "drop", plan: func() *FaultPlan {
			p := NewFaultPlan(42)
			p.DropPer10k = 4000 // 40% of round writes torn mid-stream
			return p
		}},
		{name: "delay", plan: func() *FaultPlan {
			p := NewFaultPlan(43)
			p.DelayPer10k = 4000
			p.Delay = 2 * time.Millisecond
			p.StragglerRank = 2 // rank 2 additionally lags every round
			return p
		}},
		{name: "dup", plan: func() *FaultPlan {
			p := NewFaultPlan(44)
			p.DupPer10k = 4000 // 40% of round writes shipped twice
			return p
		}},
		{name: "reset", plan: func() *FaultPlan {
			p := NewFaultPlan(45)
			p.ResetPer10k = 4000 // 40% of round writes lose the conn first
			return p
		}},
		{name: "crash", plan: func() *FaultPlan {
			p := NewFaultPlan(46)
			p.CrashRank = 1 // rank 1 dies at the very first delivery...
			p.CrashCluster = 0
			p.CrashRound = 0
			return p
		}, recovery: 2}, // ...and the whole group replays past it
	}
}

// TestChaosMatrix is the PR's headline robustness contract: for every
// strategy family under every fault family, a 3-rank loopback group with
// the seeded fault schedule installed still produces, at every rank, a
// Report bit-identical (Fingerprint) to the fault-free in-process run —
// and the accounting identity Σ ranks ChargedBits == Report.TotalBits
// holds exactly, with abandoned attempts metered separately rather than
// double-billed. Faults must actually fire (FaultsInjected > 0), or the
// matrix would pass vacuously.
func TestChaosMatrix(t *testing.T) {
	const ranks = 3
	for _, sc := range chaosFamilies() {
		for _, k := range chaosKinds() {
			sc, k := sc, k
			t.Run(sc.name+"/"+k.name, func(t *testing.T) {
				t.Parallel()
				want, err := sc.run()
				if err != nil {
					t.Fatal(err)
				}
				wantFP := want.Fingerprint()

				addrs, err := transport.FreeLoopbackAddrs(ranks)
				if err != nil {
					t.Fatal(err)
				}
				rtOpts := []RuntimeOption{
					WithRoundTimeout(5 * time.Second),
					WithWriteRetries(4), // drop/reset schedules can hit one peer repeatedly
				}
				var (
					wg    sync.WaitGroup
					reps  [ranks]*Report
					stats [ranks]TransportWireStats
					errs  [ranks]error
				)
				for r := 0; r < ranks; r++ {
					wg.Add(1)
					go func(r int) {
						defer wg.Done()
						rt, err := DialRuntime(r, addrs, rtOpts...)
						if err != nil {
							errs[r] = err
							return
						}
						defer rt.Close()
						rep, err := sc.run(WithRuntime(rt),
							WithFaultInjection(k.plan()),
							WithRecovery(k.recovery))
						if err != nil {
							errs[r] = err
							return
						}
						reps[r] = rep
						stats[r] = rt.WireStats()
					}(r)
				}
				wg.Wait()
				for r, err := range errs {
					if err != nil {
						t.Fatalf("rank %d: %v", r, err)
					}
				}
				var charged, faults, abandoned int64
				for r := 0; r < ranks; r++ {
					if got := reps[r].Fingerprint(); got != wantFP {
						t.Errorf("rank %d fingerprint diverged under %s faults\n got %s\nwant %s",
							r, k.name, got, wantFP)
					}
					charged += stats[r].ChargedBits()
					faults += stats[r].FaultsInjected
					abandoned += stats[r].AbandonedBytes
				}
				if got := float64(charged); got != want.TotalBits {
					t.Errorf("Σ ranks charged bits = %v, Report.TotalBits = %v (abandoned must not bill)",
						got, want.TotalBits)
				}
				if faults == 0 {
					t.Errorf("no faults fired — the %s schedule is vacuous at these rates", k.name)
				}
				if k.recovery > 0 {
					// The crash kills attempt 0 group-wide: every rank must
					// report the replay, and the ranks that wrote attempt-0
					// frames must have moved them to abandoned.
					for r := 0; r < ranks; r++ {
						if reps[r].Recovered < 1 {
							t.Errorf("rank %d Recovered = %d, want >= 1 after injected crash", r, reps[r].Recovered)
						}
					}
					if abandoned == 0 {
						t.Errorf("crash recovery left AbandonedBytes = 0; abandoned attempt frames unaccounted")
					}
				} else if abandoned != 0 {
					t.Errorf("fault kind %s abandoned %d bytes without any recovery replay", k.name, abandoned)
				}
			})
		}
	}
}

// TestChaosMatrixStreaming re-runs the chaos matrix with streaming on and
// a tiny chunk size, so faults land *mid-chunk*: frames torn, duplicated,
// or reset between the chunks of one logical round, and a crash that
// abandons a half-streamed attempt. The contract is unchanged — every rank
// recovers to the fault-free barrier run's exact fingerprint, Σ ranks
// ChargedBits == TotalBits (duplicate and abandoned chunk traffic backed
// out of the billed accounting exactly), and crash replays move the
// abandoned chunks to AbandonedBytes rather than double-billing them.
func TestChaosMatrixStreaming(t *testing.T) {
	const ranks = 3
	families := map[string]bool{
		"hypercube":           true,
		"skewed-triangle":     true,
		"chain-plan":          true,
		"hypercube-agg-count": true,
	}
	kinds := map[string]bool{"drop": true, "dup": true, "reset": true, "crash": true}
	for _, sc := range chaosFamilies() {
		if !families[sc.name] {
			continue
		}
		for _, k := range chaosKinds() {
			if !kinds[k.name] {
				continue
			}
			sc, k := sc, k
			t.Run(sc.name+"/"+k.name, func(t *testing.T) {
				t.Parallel()
				want, err := sc.run()
				if err != nil {
					t.Fatal(err)
				}
				wantFP := want.Fingerprint()

				addrs, err := transport.FreeLoopbackAddrs(ranks)
				if err != nil {
					t.Fatal(err)
				}
				rtOpts := []RuntimeOption{
					WithRoundTimeout(5 * time.Second),
					WithWriteRetries(4),
				}
				var (
					wg    sync.WaitGroup
					reps  [ranks]*Report
					stats [ranks]TransportWireStats
					errs  [ranks]error
				)
				for r := 0; r < ranks; r++ {
					wg.Add(1)
					go func(r int) {
						defer wg.Done()
						rt, err := DialRuntime(r, addrs, rtOpts...)
						if err != nil {
							errs[r] = err
							return
						}
						defer rt.Close()
						rep, err := sc.run(WithRuntime(rt),
							WithStreaming(true), WithStreamChunk(5),
							WithFaultInjection(k.plan()),
							WithRecovery(k.recovery))
						if err != nil {
							errs[r] = err
							return
						}
						reps[r] = rep
						stats[r] = rt.WireStats()
					}(r)
				}
				wg.Wait()
				for r, err := range errs {
					if err != nil {
						t.Fatalf("rank %d: %v", r, err)
					}
				}
				var charged, faults, abandoned int64
				for r := 0; r < ranks; r++ {
					if got := reps[r].Fingerprint(); got != wantFP {
						t.Errorf("rank %d fingerprint diverged under mid-chunk %s faults\n got %s\nwant %s",
							r, k.name, got, wantFP)
					}
					charged += stats[r].ChargedBits()
					faults += stats[r].FaultsInjected
					abandoned += stats[r].AbandonedBytes
				}
				if got := float64(charged); got != want.TotalBits {
					t.Errorf("Σ ranks charged bits = %v, Report.TotalBits = %v (chunk faults must not bill)",
						got, want.TotalBits)
				}
				if faults == 0 {
					t.Errorf("no faults fired — the %s schedule is vacuous at these rates", k.name)
				}
				if k.recovery > 0 {
					for r := 0; r < ranks; r++ {
						if reps[r].Recovered < 1 {
							t.Errorf("rank %d Recovered = %d, want >= 1 after injected crash", r, reps[r].Recovered)
						}
					}
					if abandoned == 0 {
						t.Errorf("crash recovery left AbandonedBytes = 0; abandoned chunk frames unaccounted")
					}
				} else if abandoned != 0 {
					t.Errorf("fault kind %s abandoned %d bytes without any recovery replay", k.name, abandoned)
				}
			})
		}
	}
}

// TestFaultScheduleDeterministic pins the plan as a pure function: the
// same seed draws the same faults at the same sites, a different seed
// draws a different schedule, and neither replays (epoch > 0) nor write
// retries (attempt > 0) ever see a wire fault.
func TestFaultScheduleDeterministic(t *testing.T) {
	mk := func(seed int64) *FaultPlan {
		p := NewFaultPlan(seed)
		p.DropPer10k = 1500
		p.DupPer10k = 1500
		p.ResetPer10k = 1500
		p.DelayPer10k = 1500
		p.Delay = time.Millisecond
		return p
	}
	a, b, c := mk(7), mk(7), mk(8)
	same, diff := 0, 0
	for rank := 0; rank < 3; rank++ {
		for peer := 0; peer < 3; peer++ {
			for round := uint32(0); round < 64; round++ {
				actA, delA := a.WriteFault(rank, peer, 0, 0, round, 0)
				actB, delB := b.WriteFault(rank, peer, 0, 0, round, 0)
				if actA != actB || delA != delB {
					t.Fatalf("same seed diverged at (%d,%d,%d): %v/%v vs %v/%v",
						rank, peer, round, actA, delA, actB, delB)
				}
				actC, _ := c.WriteFault(rank, peer, 0, 0, round, 0)
				if actA == actC {
					same++
				} else {
					diff++
				}
				// Replays and retries run fault-free by construction.
				if act, del := a.WriteFault(rank, peer, 1, 0, round, 0); act != transport.FaultNone || del != 0 {
					t.Fatalf("epoch 1 drew a fault at (%d,%d,%d)", rank, peer, round)
				}
				if act, del := a.WriteFault(rank, peer, 0, 0, round, 1); act != transport.FaultNone || del != 0 {
					t.Fatalf("write attempt 1 drew a fault at (%d,%d,%d)", rank, peer, round)
				}
			}
		}
	}
	if diff == 0 {
		t.Fatalf("different seeds drew identical schedules over %d sites", same+diff)
	}
}

// runAgainstSilentPeer joins a 2-rank group whose rank 1 completes the
// handshake and then sits silent — the wedged-peer shape — and returns
// rank 0's Run error after the given round timeout. The optional hook
// receives rank 0's runtime once dialed (the Close-drain test uses it).
func runAgainstSilentPeer(t *testing.T, hook func(*DistributedRuntime), timeout time.Duration, extra ...RunOption) error {
	t.Helper()
	addrs, err := transport.FreeLoopbackAddrs(2)
	if err != nil {
		t.Fatal(err)
	}
	short := []RuntimeOption{
		WithRoundTimeout(timeout),
		WithDialBudget(40, 5*time.Millisecond),
	}
	done := make(chan struct{})
	var silent *DistributedRuntime
	var silentErr error
	go func() {
		defer close(done)
		silent, silentErr = DialRuntime(1, addrs, short...)
		// Connected, never delivers: the peer is up but wedged.
	}()
	rt, err := DialRuntime(0, addrs, short...)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() {
		rt.Close()
		<-done
		if silentErr == nil {
			silent.Close()
		}
	})
	if hook != nil {
		hook(rt)
	}
	q := Triangle()
	db := MatchingDatabase(rand.New(rand.NewSource(1)), q, 60, 1<<12)
	_, err = Run(q, db, append([]RunOption{WithServers(8), WithRuntime(rt)}, extra...)...)
	return err
}

// TestRunContextDeadlineUnblocksWedgedRound pins context propagation
// through Cluster.Round: with a generous RoundTimeout, a request-scoped
// deadline still frees the run from a wedged peer at the deadline, with
// the context's own error surfaced (never a panic, never a wait for the
// full round timeout).
func TestRunContextDeadlineUnblocksWedgedRound(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := runAgainstSilentPeer(t, nil, 30*time.Second, WithContext(ctx))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Run against a silent peer succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v; want context.DeadlineExceeded", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("deadline-bounded run took %v; the 30s round timeout governed instead", elapsed)
	}
}

// TestPeerErrorCarriesContext pins the error-context satellite: when a
// peer that joined the group never delivers its round, the surviving
// rank's error (a) satisfies errors.Is(ErrPeerUnavailable), and (b) names
// the failing rank, the cluster and round that died, and the peer's
// address — the coordinates an operator greps logs by.
func TestPeerErrorCarriesContext(t *testing.T) {
	err := runAgainstSilentPeer(t, nil, 400*time.Millisecond)
	if err == nil {
		t.Fatal("Run against a silent peer succeeded")
	}
	if !errors.Is(err, ErrPeerUnavailable) {
		t.Fatalf("err = %v; want errors.Is(ErrPeerUnavailable)", err)
	}
	msg := err.Error()
	for _, wantSub := range []string{
		"rank 0",    // who observed the failure
		"cluster",   // which cluster died
		"round",     // which round died
		"127.0.0.1", // the missing peer's address
	} {
		if !strings.Contains(msg, wantSub) {
			t.Errorf("error %q missing %q", msg, wantSub)
		}
	}
}
