package mpcquery

import (
	"fmt"
	"math/rand"
	"testing"

	"mpcquery/internal/data"
	"mpcquery/internal/oracle"
)

// The differential-oracle suite: every strategy family, on seeded random
// instances from every generator family, against the naive single-server
// oracle (internal/oracle — no code shared with the engine, kernel, or
// aggregation subsystem). Joins must be multiset-equal; aggregates must be
// value-identical, pushdown on and off.

// oracleGenerator builds one randomized database for a query.
type oracleGenerator struct {
	name  string
	build func(rng *rand.Rand, q *Query, m int, n int64) *Database
}

func oracleGenerators() []oracleGenerator {
	return []oracleGenerator{
		{"matching", func(rng *rand.Rand, q *Query, m int, n int64) *Database {
			return MatchingDatabase(rng, q, m, n)
		}},
		{"zipf", func(rng *rand.Rand, q *Query, m int, n int64) *Database {
			// Both columns Zipf-distributed over a small value set, so every
			// join column is skewed and shared values collide across atoms
			// (and duplicate tuples occur — bag semantics get exercised).
			db := NewDatabase(n)
			for _, a := range q.Atoms {
				z := rand.NewZipf(rng, 1.4, 1, 48)
				rel := NewRelation(a.Name, a.Arity())
				row := make([]int64, a.Arity())
				for i := 0; i < m; i++ {
					for c := range row {
						row[c] = int64(z.Uint64())
					}
					rel.AppendTuple(row)
				}
				db.Add(rel)
			}
			return db
		}},
		{"heavy-hitter", func(rng *rand.Rand, q *Query, m int, n int64) *Database {
			// One planted heavy value per column in a quarter of the tuples,
			// the rest uniform over a small domain: cross-atom hot spots with
			// guaranteed overlap.
			db := NewDatabase(n)
			for _, a := range q.Atoms {
				rel := NewRelation(a.Name, a.Arity())
				row := make([]int64, a.Arity())
				for i := 0; i < m; i++ {
					for c := range row {
						if i%4 == 0 {
							row[c] = 3
						} else {
							row[c] = rng.Int63n(64)
						}
					}
					rel.AppendTuple(row)
				}
				db.Add(rel)
			}
			return db
		}},
	}
}

// oracleWorkload couples a query with the strategy families that accept it.
type oracleWorkload struct {
	name       string
	q          *Query
	strategies []Strategy
	// aggStrategies are the families with an aggregate path for this query.
	aggStrategies []Strategy
}

func oracleWorkloads() []oracleWorkload {
	return []oracleWorkload{
		{
			name: "star2", q: Star(2),
			strategies: []Strategy{
				HyperCube(), HyperCubeOblivious(), HyperCubeShares(4, 2, 2),
				SkewedStar(), SkewedStarSampled(40), SkewedGeneric(),
				GreedyPlan(0.5), GreedyPlanSkewAware(0.5), Auto(),
			},
			aggStrategies: []Strategy{
				HyperCube(), HyperCubeOblivious(), HyperCubeShares(4, 2, 2),
				GreedyPlan(0.5), Auto(),
			},
		},
		{
			name: "star3", q: Star(3),
			strategies: []Strategy{
				HyperCube(), SkewedStar(), SkewedGeneric(), Auto(),
			},
			aggStrategies: []Strategy{HyperCube(), Auto()},
		},
		{
			name: "triangle", q: Triangle(),
			strategies: []Strategy{
				HyperCube(), HyperCubeOblivious(), SkewedTriangle(),
				SkewedGeneric(), GreedyPlan(0), Auto(),
			},
			aggStrategies: []Strategy{HyperCube(), HyperCubeOblivious(), GreedyPlan(0)},
		},
		{
			name: "chain4", q: Chain(4),
			strategies: []Strategy{
				HyperCube(), ChainPlan(0.5), GreedyPlan(0.5),
				GreedyPlanSkewAware(0.5), Auto(),
			},
			aggStrategies: []Strategy{HyperCube(), ChainPlan(0.5), GreedyPlan(0.5)},
		},
	}
}

func TestDifferentialOracleJoins(t *testing.T) {
	seeds := []int64{1, 5}
	if testing.Short() {
		seeds = seeds[:1]
	}
	const (
		m = 80
		n = int64(1 << 8)
		p = 16
	)
	for _, w := range oracleWorkloads() {
		for _, gen := range oracleGenerators() {
			for _, seed := range seeds {
				t.Run(fmt.Sprintf("%s/%s/seed%d", w.name, gen.name, seed), func(t *testing.T) {
					t.Parallel()
					rng := rand.New(rand.NewSource(seed * 7919))
					db := gen.build(rng, w.q, m, n)
					want := oracle.Evaluate(w.q, db)
					for _, s := range w.strategies {
						// The low heavy cap keeps the generic pattern
						// enumeration within its supported budget on the
						// everything-is-skewed zipf instances; values beyond
						// the cap are treated as light, which stays correct.
						rep, err := Run(w.q, db, WithStrategy(s), WithServers(p), WithSeed(seed), WithHeavyCap(4))
						if err != nil {
							t.Fatalf("%s: %v", s.Name(), err)
						}
						if !EqualRelations(rep.Output, want) {
							t.Errorf("%s: output (%d tuples) differs from oracle (%d tuples)",
								s.Name(), rep.Output.NumTuples(), want.NumTuples())
						}
					}
				})
			}
		}
	}
}

// oracleAggCases enumerates the aggregate specs checked per workload, using
// the query's first variable as group key and its last as aggregated value.
func oracleAggCases(q *Query) []AggregateQuery {
	vars := q.Vars()
	g, v := vars[0], vars[len(vars)-1]
	return []AggregateQuery{
		{Join: q, Op: AggCount, GroupBy: []string{g}},
		{Join: q, Op: AggCount}, // global count
		{Join: q, Op: AggSum, Of: v, GroupBy: []string{g}},
		{Join: q, Op: AggMin, Of: v, GroupBy: []string{g}},
		{Join: q, Op: AggMax, Of: v, GroupBy: []string{g, v}}, // multi-column key
	}
}

func opName(op AggregateOp) string { return op.String() }

func TestDifferentialOracleAggregates(t *testing.T) {
	const (
		m    = 80
		n    = int64(1 << 8)
		p    = 16
		seed = int64(3)
	)
	for _, w := range oracleWorkloads() {
		for _, gen := range oracleGenerators() {
			w, gen := w, gen
			t.Run(fmt.Sprintf("%s/%s", w.name, gen.name), func(t *testing.T) {
				t.Parallel()
				rng := rand.New(rand.NewSource(1234))
				db := gen.build(rng, w.q, m, n)
				for _, aq := range oracleAggCases(w.q) {
					want := oracle.Aggregate(w.q, db, opName(aq.Op), aq.Of, aq.GroupBy)
					for _, s := range w.aggStrategies {
						for _, pushdown := range []bool{true, false} {
							rep, err := RunAggregate(aq, db, WithStrategy(s), WithServers(p),
								WithSeed(seed), WithAggregatePushdown(pushdown))
							if err != nil {
								t.Fatalf("%s %v pushdown=%t: %v", s.Name(), aq.Op, pushdown, err)
							}
							if !relExactlyEqual(rep.Output, want) {
								t.Errorf("%s %v(%s) by %v pushdown=%t: %d groups, oracle %d; aggregate values differ",
									s.Name(), aq.Op, aq.Of, aq.GroupBy, pushdown,
									rep.Output.NumTuples(), want.NumTuples())
							}
							if !pushdown && rep.AggregateBitsSaved != 0 {
								t.Errorf("%s: no-pushdown run claims %f saved bits", s.Name(), rep.AggregateBitsSaved)
							}
						}
					}
				}
			})
		}
	}
}

// relExactlyEqual compares two plain relations tuple-for-tuple in order —
// aggregate outputs are canonical (sorted), so exact equality is the right
// bar, stronger than multiset equality.
func relExactlyEqual(a, b *data.Relation) bool {
	if a.Arity != b.Arity || a.NumTuples() != b.NumTuples() {
		return false
	}
	av, bv := a.Vals(), b.Vals()
	for i := range av {
		if av[i] != bv[i] {
			return false
		}
	}
	return true
}

// TestDifferentialOracleSelfJoin covers the self-join family: the desugared
// query evaluated by the oracle over a view database with the repeated
// relation under its desugared names.
func TestDifferentialOracleSelfJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	n := int64(1 << 8)
	edges := NewRelation("E", 2)
	for i := 0; i < 150; i++ {
		edges.Append(rng.Int63n(40), rng.Int63n(40))
	}
	db := NewDatabase(n)
	db.Add(edges)

	atoms := []Atom{
		{Name: "E", Vars: []string{"x", "y"}},
		{Name: "E", Vars: []string{"y", "z"}},
	}
	dq, orig := DesugarSelfJoins("paths", atoms)
	view := NewDatabase(n)
	for _, a := range dq.Atoms {
		r := edges.Clone()
		_ = orig // every desugared name maps to E here
		r.Name = a.Name
		view.Add(r)
	}
	want := oracle.Evaluate(dq, view)

	rep, err := Run(nil, db, WithStrategy(SelfJoin("paths", atoms...)), WithServers(16), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if !EqualRelations(rep.Output, want) {
		t.Errorf("self-join output (%d tuples) differs from oracle (%d tuples)",
			rep.Output.NumTuples(), want.NumTuples())
	}
}
