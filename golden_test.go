package mpcquery

import (
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden files from current output")

// goldenCase is one pinned (strategy family, fixed workload, fixed seed)
// run. The golden file holds Report.Fingerprint() on the first line and
// Report.String() after it; any diff means a user-visible report field or
// the fingerprint scheme changed, which must be a conscious decision (run
// with -update-golden and review the diff), never an accident.
type goldenCase struct {
	name string
	run  func() (*Report, error)
}

func goldenCases() []goldenCase {
	const seed = 7
	mk := func(q *Query, db *Database, s Strategy, extra ...RunOption) func() (*Report, error) {
		return func() (*Report, error) {
			return Run(q, db, append([]RunOption{
				WithStrategy(s), WithServers(16), WithSeed(seed), WithHeavyCap(8),
			}, extra...)...)
		}
	}
	// Workloads are rebuilt per case from fixed generator seeds, so cases
	// stay independent and order-insensitive.
	triDB := func() *Database {
		return SkewedTriangleDatabase(rand.New(rand.NewSource(101)), 120, 1<<12, 7, 30)
	}
	starDB := func() *Database {
		return SkewedStarDatabase(rand.New(rand.NewSource(102)), 2, 120, 1<<12, map[int64]int{5: 40})
	}
	chainDB := func() *Database {
		return ChainMatchingDatabase(rand.New(rand.NewSource(103)), 4, 120, 1<<12)
	}
	matchDB := func(q *Query) *Database {
		return MatchingDatabase(rand.New(rand.NewSource(104)), q, 120, 1<<12)
	}

	return []goldenCase{
		{"hypercube", mk(Triangle(), matchDB(Triangle()), HyperCube())},
		{"hypercube-oblivious", mk(Triangle(), matchDB(Triangle()), HyperCubeOblivious())},
		{"hypercube-shares", mk(Star(2), starDB(), HyperCubeShares(4, 2, 2))},
		{"skewed-star", mk(Star(2), starDB(), SkewedStar())},
		{"skewed-star-sampled", mk(Star(2), starDB(), SkewedStarSampled(30))},
		{"skewed-triangle", mk(Triangle(), triDB(), SkewedTriangle())},
		{"skewed-generic", mk(Triangle(), triDB(), SkewedGeneric())},
		{"chain-plan", mk(Chain(4), chainDB(), ChainPlan(0.5))},
		{"greedy-plan", mk(Chain(4), chainDB(), GreedyPlan(0.5))},
		{"greedy-plan-skew", mk(Chain(4), chainDB(), GreedyPlanSkewAware(0.5))},
		{"auto", mk(Chain(4), chainDB(), Auto())},
		{"selfjoin", func() (*Report, error) {
			edges := NewRelation("E", 2)
			rng := rand.New(rand.NewSource(105))
			for i := 0; i < 120; i++ {
				edges.Append(rng.Int63n(48), rng.Int63n(48))
			}
			db := NewDatabase(1 << 12)
			db.Add(edges)
			sj := SelfJoin("paths",
				Atom{Name: "E", Vars: []string{"x", "y"}},
				Atom{Name: "E", Vars: []string{"y", "z"}})
			return Run(nil, db, WithStrategy(sj), WithServers(16), WithSeed(seed))
		}},
		// Aggregate families, pushdown on and off: the pair also documents
		// that only the bit accounting may differ between the two.
		{"hypercube-agg-count", mk(Star(2), starDB(), HyperCube(),
			WithAggregate(AggCount, "", "z"))},
		{"hypercube-agg-count-nopushdown", mk(Star(2), starDB(), HyperCube(),
			WithAggregate(AggCount, "", "z"), WithAggregatePushdown(false))},
		{"hypercube-agg-sum-global", mk(Star(2), starDB(), HyperCube(),
			WithAggregate(AggSum, "x1"))},
		{"chain-plan-agg-count", mk(Chain(4), chainDB(), ChainPlan(0.5),
			WithAggregate(AggCount, "", Chain(4).Vars()[0]))},
	}
}

func TestGoldenReports(t *testing.T) {
	for _, c := range goldenCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			rep, err := c.run()
			if err != nil {
				t.Fatal(err)
			}
			got := rep.Fingerprint() + "\n" + rep.String()
			path := filepath.Join("testdata", "golden", c.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("report diverged from %s (rerun with -update-golden only if the change is intended)\n--- got ---\n%s\n--- want ---\n%s",
					path, got, want)
			}
		})
	}
}

// TestGoldenAggregatePairBitIdenticalValues asserts, on the golden pair, the
// acceptance property in its sharpest form: everything except the bit
// accounting of the aggregate round is identical between pushdown and
// no-pushdown — same groups, same values, same rounds, same input shuffle.
func TestGoldenAggregatePairBitIdenticalValues(t *testing.T) {
	var on, off *Report
	for _, c := range goldenCases() {
		switch c.name {
		case "hypercube-agg-count":
			r, err := c.run()
			if err != nil {
				t.Fatal(err)
			}
			on = r
		case "hypercube-agg-count-nopushdown":
			r, err := c.run()
			if err != nil {
				t.Fatal(err)
			}
			off = r
		}
	}
	if !EqualRelations(on.Output, off.Output) {
		t.Fatal("golden aggregate pair: values differ between pushdown and no-pushdown")
	}
	strip := func(r *Report) string {
		fp := r.Fingerprint()
		// Blank the fields that legitimately differ: per-round loads of the
		// aggregate round, totals, replication, and the saved-bits meter.
		for _, cut := range []string{"|r2=", "|L=", "|T=", "|rep=", "|aggsaved="} {
			if i := strings.Index(fp, cut); i >= 0 {
				j := strings.IndexByte(fp[i+1:], '|')
				if j < 0 {
					fp = fp[:i]
				} else {
					fp = fp[:i] + fp[i+1+j:]
				}
			}
		}
		return fp
	}
	if a, b := strip(on), strip(off); a != b {
		t.Fatalf("golden aggregate pair differs beyond bit accounting:\n%s\n%s", a, b)
	}
}
