package mpcquery_test

import (
	"fmt"
	"math/rand"

	"mpcquery"
)

// The default strategy is the one-round HyperCube algorithm with LP-optimal
// skew-free shares (Theorem 3.4).
func ExampleRun() {
	q := mpcquery.Triangle()
	rng := rand.New(rand.NewSource(1))
	db := mpcquery.MatchingDatabase(rng, q, 2000, 1<<20)

	rep, err := mpcquery.Run(q, db, mpcquery.WithServers(64), mpcquery.WithSeed(42))
	if err != nil {
		panic(err)
	}
	fmt.Println("strategy:", rep.Strategy)
	fmt.Println("rounds:", rep.Rounds)
	fmt.Println("matches sequential:", mpcquery.EqualRelations(rep.Output, mpcquery.SequentialAnswer(q, db)))
	// Output:
	// strategy: hypercube
	// rounds: 1
	// matches sequential: true
}

// The skew-oblivious shares of LP (18) guarantee the worst-case load over
// every data distribution (Section 4.1).
func ExampleRun_hyperCubeOblivious() {
	q := mpcquery.Star(2)
	rng := rand.New(rand.NewSource(2))
	db := mpcquery.SkewedStarDatabase(rng, 2, 500, 1<<20, map[int64]int{7: 250})

	rep, err := mpcquery.Run(q, db,
		mpcquery.WithStrategy(mpcquery.HyperCubeOblivious()),
		mpcquery.WithServers(16))
	if err != nil {
		panic(err)
	}
	fmt.Println("strategy:", rep.Strategy)
	fmt.Println("matches sequential:", mpcquery.EqualRelations(rep.Output, mpcquery.SequentialAnswer(q, db)))
	// Output:
	// strategy: hypercube-oblivious
	// matches sequential: true
}

// Explicit shares reproduce the naive parallel hash join of Example 4.1:
// all shares on the join variable.
func ExampleRun_hyperCubeShares() {
	q := mpcquery.Star(2) // S1(z,x1), S2(z,x2)
	rng := rand.New(rand.NewSource(3))
	db := mpcquery.MatchingDatabase(rng, q, 500, 1<<20)

	shares := []int{1, 1, 1}
	shares[q.VarIndex("z")] = 16
	rep, err := mpcquery.Run(q, db, mpcquery.WithStrategy(mpcquery.HyperCubeShares(shares...)))
	if err != nil {
		panic(err)
	}
	fmt.Println("strategy:", rep.Strategy)
	fmt.Println("shares:", rep.Shares)
	// Output:
	// strategy: hypercube-shares
	// shares: [16 1 1]
}

// The Section 4.2.1 star strategy gives each heavy hitter its own server
// group; here half of both relations share one z-value.
func ExampleRun_skewedStar() {
	q := mpcquery.Star(2)
	rng := rand.New(rand.NewSource(4))
	db := mpcquery.SkewedStarDatabase(rng, 2, 600, 1<<20, map[int64]int{9: 300})

	rep, err := mpcquery.Run(q, db,
		mpcquery.WithStrategy(mpcquery.SkewedStar()),
		mpcquery.WithServers(16))
	if err != nil {
		panic(err)
	}
	fmt.Println("strategy:", rep.Strategy)
	fmt.Println("heavy hitters:", rep.HeavyHitters)
	fmt.Println("matches sequential:", mpcquery.EqualRelations(rep.Output, mpcquery.SequentialAnswer(q, db)))
	// Output:
	// strategy: skewed-star
	// heavy hitters: 1
	// matches sequential: true
}

// SkewedStarSampled gathers the frequency statistics with a one-round
// sampling protocol instead of an oracle, so the run takes two rounds.
func ExampleRun_skewedStarSampled() {
	q := mpcquery.Star(2)
	rng := rand.New(rand.NewSource(5))
	db := mpcquery.SkewedStarDatabase(rng, 2, 600, 1<<20, map[int64]int{9: 300})

	rep, err := mpcquery.Run(q, db,
		mpcquery.WithStrategy(mpcquery.SkewedStarSampled(150)),
		mpcquery.WithServers(16))
	if err != nil {
		panic(err)
	}
	fmt.Println("strategy:", rep.Strategy)
	fmt.Println("rounds:", rep.Rounds)
	// Output:
	// strategy: skewed-star-sampled
	// rounds: 2
}

// The Section 4.2.2 three-case strategy handles a triangle input with one
// planted heavy x1-value.
func ExampleRun_skewedTriangle() {
	rng := rand.New(rand.NewSource(6))
	db := mpcquery.SkewedTriangleDatabase(rng, 600, 1<<20, 5, 200)
	q := mpcquery.Triangle()

	rep, err := mpcquery.Run(q, db,
		mpcquery.WithStrategy(mpcquery.SkewedTriangle()),
		mpcquery.WithServers(27))
	if err != nil {
		panic(err)
	}
	fmt.Println("strategy:", rep.Strategy)
	fmt.Println("matches sequential:", mpcquery.EqualRelations(rep.Output, mpcquery.SequentialAnswer(q, db)))
	// Output:
	// strategy: skewed-triangle
	// matches sequential: true
}

// The generalized heavy/light pattern strategy covers queries outside the
// star/triangle special cases; WithHeavyCap bounds the heavy sets.
func ExampleRun_skewedGeneric() {
	q := mpcquery.Chain(3)
	rng := rand.New(rand.NewSource(7))
	db := mpcquery.MatchingDatabase(rng, q, 500, 1<<20)

	rep, err := mpcquery.Run(q, db,
		mpcquery.WithStrategy(mpcquery.SkewedGeneric()),
		mpcquery.WithHeavyCap(16),
		mpcquery.WithServers(16))
	if err != nil {
		panic(err)
	}
	fmt.Println("strategy:", rep.Strategy)
	fmt.Println("matches sequential:", mpcquery.EqualRelations(rep.Output, mpcquery.SequentialAnswer(q, db)))
	// Output:
	// strategy: skewed-generic
	// matches sequential: true
}

// A chain query runs in ⌈log_kε k⌉ rounds through the Example 5.2 plan;
// at ε=0 the plan for L8 is the 3-round binary-join tree.
func ExampleRun_chainPlan() {
	k := 8
	q := mpcquery.Chain(k)
	rng := rand.New(rand.NewSource(8))
	db := mpcquery.ChainMatchingDatabase(rng, k, 500, 1<<20)

	rep, err := mpcquery.Run(q, db,
		mpcquery.WithStrategy(mpcquery.ChainPlan(0)),
		mpcquery.WithServers(32))
	if err != nil {
		panic(err)
	}
	fmt.Println("rounds:", rep.Rounds)
	fmt.Println("per-round stats:", len(rep.RoundStats))
	fmt.Println("output tuples:", rep.Output.NumTuples())
	// Output:
	// rounds: 3
	// per-round stats: 3
	// output tuples: 500
}

// GreedyPlan handles any connected query at a chosen space exponent.
func ExampleRun_greedyPlan() {
	q := mpcquery.Cycle(6)
	rng := rand.New(rand.NewSource(9))
	db := mpcquery.MatchingDatabase(rng, q, 400, 1<<20)

	rep, err := mpcquery.Run(q, db,
		mpcquery.WithStrategy(mpcquery.GreedyPlan(0)),
		mpcquery.WithServers(16))
	if err != nil {
		panic(err)
	}
	fmt.Println("matches sequential:", mpcquery.EqualRelations(rep.Output, mpcquery.SequentialAnswer(q, db)))
	// Output:
	// matches sequential: true
}

// Self-joins (footnote 2): repeated relation names are renamed apart and
// the strategy carries its own query, so Run takes a nil *Query.
func ExampleRun_selfJoin() {
	e := mpcquery.NewRelation("E", 2)
	e.Append(1, 2)
	e.Append(2, 3)
	e.Append(3, 1)
	db := mpcquery.NewDatabase(16)
	db.Add(e)

	rep, err := mpcquery.Run(nil, db, mpcquery.WithStrategy(mpcquery.SelfJoin("paths",
		mpcquery.Atom{Name: "E", Vars: []string{"x", "y"}},
		mpcquery.Atom{Name: "E", Vars: []string{"y", "z"}},
	)), mpcquery.WithServers(4))
	if err != nil {
		panic(err)
	}
	fmt.Println("length-2 paths in a 3-cycle:", rep.Output.NumTuples())
	// Output:
	// length-2 paths in a 3-cycle: 3
}

// Auto asks the advisor for the Table 3 tradeoff and runs the best option
// within the round budget; the report names the delegate it picked.
func ExampleRun_auto() {
	k := 8
	q := mpcquery.Chain(k)
	rng := rand.New(rand.NewSource(10))
	db := mpcquery.ChainMatchingDatabase(rng, k, 400, 1<<20)

	budget1, err := mpcquery.Run(q, db,
		mpcquery.WithStrategy(mpcquery.Auto()),
		mpcquery.WithServers(16),
		mpcquery.WithRoundBudget(1))
	if err != nil {
		panic(err)
	}
	unlimited, err := mpcquery.Run(q, db,
		mpcquery.WithStrategy(mpcquery.Auto()),
		mpcquery.WithServers(16))
	if err != nil {
		panic(err)
	}
	fmt.Println("budget 1 rounds:", budget1.Rounds)
	fmt.Println("unlimited rounds:", unlimited.Rounds)
	fmt.Println("unlimited load < budget-1 load:", unlimited.MaxLoadBits < budget1.MaxLoadBits)
	// Output:
	// budget 1 rounds: 1
	// unlimited rounds: 3
	// unlimited load < budget-1 load: true
}

// Run never panics: errors cross the boundary as values.
func ExampleRun_errors() {
	q := mpcquery.Triangle()
	_, err := mpcquery.Run(q, mpcquery.NewDatabase(16)) // no relations loaded
	fmt.Println(err != nil)
	// Output:
	// true
}
