package mpcquery_test

import (
	"fmt"
	"math/rand"

	"mpcquery"
)

// ExampleRunHyperCube computes the triangle query on 64 simulated servers
// and verifies the result against a sequential join.
func ExampleRunHyperCube() {
	q := mpcquery.Triangle()
	rng := rand.New(rand.NewSource(1))
	db := mpcquery.MatchingDatabase(rng, q, 1000, 1<<20)

	res := mpcquery.RunHyperCube(q, db, 64, 42)
	want := mpcquery.SequentialAnswer(q, db)
	fmt.Println("servers:", res.ServersUsed)
	fmt.Println("matches sequential:", res.Output.NumTuples() == want.NumTuples())
	// Output:
	// servers: 64
	// matches sequential: true
}

// ExampleTauStar computes the fractional vertex covering number of the
// Table 2 families.
func ExampleTauStar() {
	for _, q := range []*mpcquery.Query{
		mpcquery.Triangle(), mpcquery.Chain(5), mpcquery.Star(7),
	} {
		tau, _ := mpcquery.TauStar(q)
		fmt.Printf("%s: τ* = %g\n", q.Name, tau)
	}
	// Output:
	// C3: τ* = 1.5
	// L5: τ* = 3
	// T7: τ* = 1
}

// ExamplePlanChain shows the Example 5.2 plan: L16 in two rounds of
// four-way joins at space exponent 1/2.
func ExamplePlanChain() {
	plan := mpcquery.PlanChain(16, 0.5)
	fmt.Println("rounds:", plan.Rounds())
	fmt.Println("formula:", mpcquery.ChainRounds(16, 0.5))
	// Output:
	// rounds: 2
	// formula: 2
}

// ExampleParseQuery parses datalog-like notation and inspects the
// hypergraph.
func ExampleParseQuery() {
	q := mpcquery.MustParseQuery("q(x,y,z) :- R(x,y), S(y,z), T(z,x)")
	fmt.Println("atoms:", q.NumAtoms())
	fmt.Println("tree-like:", q.IsTreeLike())
	fmt.Println("acyclic:", q.IsAcyclic())
	fmt.Printf("χ(q) = %d\n", q.Characteristic())
	// Output:
	// atoms: 3
	// tree-like: false
	// acyclic: false
	// χ(q) = 1
}

// ExampleAdvise prints the rounds/load tradeoff for L4.
func ExampleAdvise() {
	q := mpcquery.Chain(4)
	M := []float64{1 << 20, 1 << 20, 1 << 20, 1 << 20}
	for _, o := range mpcquery.Advise(q, M, 64) {
		fmt.Printf("%d round(s): %s\n", o.Rounds, o.Name)
	}
	// Output:
	// 1 round(s): 1-round HyperCube (LP 10)
	// 1 round(s): 1-round HyperCube, skew-oblivious (LP 18)
	// 2 round(s): 2-round plan (ε=0.00)
}
