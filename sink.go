package mpcquery

import (
	"sync"

	"mpcquery/internal/engine"
	"mpcquery/internal/hashing"
)

// OutputSink receives the query output as a stream of row-major chunks
// instead of a materialized relation (install with WithOutputSink). Chunk
// may be called concurrently for different servers — one goroutine per
// server at a time; within one server, calls arrive in output order. The
// vals slice is reused by the caller after Chunk returns: consume or copy
// it synchronously.
type OutputSink = engine.OutputSink

// DigestSink is an OutputSink that verifies a streamed output without
// holding it: per server it folds the chunk stream into a running
// order-sensitive FNV-1a digest and a row count, in O(servers) memory
// total. Digest() then merges the per-server streams in ascending server
// order — the order data.Concat stacks per-server outputs — so a barrier
// run's materialized output and a streamed run's sink agree digest for
// digest. The giant-output scenarios of cmd/mpcload -benchstream and the
// streaming equivalence tests are its consumers.
type DigestSink struct {
	mu      sync.Mutex
	servers []digestStream
}

type digestStream struct {
	rows   int
	arity  int
	digest uint64
	live   bool
}

// fnvOffset/fnvPrime are the standard FNV-1a 64-bit parameters, matching
// the hashing package's relation digests.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Chunk folds one row-major block of server s's output into its stream.
func (d *DigestSink) Chunk(server, arity int, vals []int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for len(d.servers) <= server {
		d.servers = append(d.servers, digestStream{})
	}
	st := &d.servers[server]
	if !st.live {
		st.live = true
		st.arity = arity
		st.digest = fnvOffset
	}
	if arity > 0 {
		st.rows += len(vals) / arity
	}
	h := st.digest
	for _, v := range vals {
		x := uint64(v)
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= fnvPrime
			x >>= 8
		}
	}
	st.digest = h
}

// Tuples returns the total rows streamed so far, across all servers.
func (d *DigestSink) Tuples() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for i := range d.servers {
		n += d.servers[i].rows
	}
	return n
}

// Digest returns an order-sensitive digest of the whole streamed output:
// the per-server stream digests combined in ascending server order. Two
// runs produce the same Digest exactly when every server emitted the same
// rows in the same order — the property the streaming differential tests
// pin against a barrier run's materialized relation.
func (d *DigestSink) Digest() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	h := uint64(fnvOffset)
	for i := range d.servers {
		st := &d.servers[i]
		if !st.live {
			continue
		}
		h = hashing.Combine(h, uint64(i))
		h = hashing.Combine(h, uint64(st.rows))
		h = hashing.Combine(h, st.digest)
	}
	return h
}

// ServerDigest is one server's folded output stream, as PerServer reports
// it.
type ServerDigest struct {
	Server int
	Rows   int
	Arity  int
	Digest uint64
}

// PerServer returns the live per-server streams in ascending server order.
// A materialized relation built by stacking per-server outputs in the same
// order (data.Concat) can be reconciled against it slice by slice: fold
// each server's slice through a fresh DigestSink and compare digests.
func (d *DigestSink) PerServer() []ServerDigest {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]ServerDigest, 0, len(d.servers))
	for i := range d.servers {
		st := &d.servers[i]
		if !st.live {
			continue
		}
		out = append(out, ServerDigest{Server: i, Rows: st.rows, Arity: st.arity, Digest: st.digest})
	}
	return out
}
