package mpcquery

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestTracingPreservesFingerprint is the tentpole contract at the public
// API: for every strategy family, attaching a trace and a drift monitor
// changes nothing the Report's Fingerprint covers — observability is
// purely observational. The scenario list is the same one the distributed
// runtime's equivalence test drives, so every built-in strategy family is
// covered.
func TestTracingPreservesFingerprint(t *testing.T) {
	for _, sc := range distScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			plain, err := sc.run()
			if err != nil {
				t.Fatal(err)
			}
			tr := NewTrace()
			dm := NewDriftMonitor(0)
			traced, err := sc.run(WithTrace(tr), WithDriftMonitor(dm))
			if err != nil {
				t.Fatal(err)
			}
			if got, want := traced.Fingerprint(), plain.Fingerprint(); got != want {
				t.Errorf("fingerprint changed under tracing\n got %s\nwant %s", got, want)
			}
			// The trace must have actually observed the run: at least one
			// cluster with at least one round.
			if s := tr.Structure(); strings.HasPrefix(s, "trace clusters=0") {
				t.Errorf("trace observed no clusters:\n%s", s)
			}
		})
	}
}

// TestTraceStructureDeterministicAcrossRuns: two traced runs of the same
// seeded request produce structurally identical traces — same clusters,
// rounds, per-round bit and tuple accounting, kernel cache totals —
// differing only in timings, which Structure excludes.
func TestTraceStructureDeterministicAcrossRuns(t *testing.T) {
	for _, sc := range distScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			a, b := NewTrace(), NewTrace()
			if _, err := sc.run(WithTrace(a)); err != nil {
				t.Fatal(err)
			}
			if _, err := sc.run(WithTrace(b)); err != nil {
				t.Fatal(err)
			}
			if sa, sb := a.Structure(), b.Structure(); sa != sb {
				t.Errorf("trace structure diverged between identical runs\n--- run 1\n%s\n--- run 2\n%s", sa, sb)
			}
		})
	}
}

// TestTraceChromeExport: the Chrome trace-event export of a real run is
// valid JSON with the schema chrome://tracing and Perfetto load — a
// top-level traceEvents array whose entries carry the required phase and
// timestamp fields.
func TestTraceChromeExport(t *testing.T) {
	tr := NewTrace()
	sc := distScenarios()[0]
	if _, err := sc.run(WithTrace(tr)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("export is not valid JSON:\n%.400s", buf.String())
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("export has no trace events")
	}
	for i, ev := range doc.TraceEvents {
		if _, ok := ev["name"].(string); !ok {
			t.Fatalf("event %d has no name: %v", i, ev)
		}
		ph, ok := ev["ph"].(string)
		if !ok || (ph != "X" && ph != "i") {
			t.Fatalf("event %d has unexpected phase %q", i, ev["ph"])
		}
		if _, ok := ev["ts"].(float64); !ok {
			t.Fatalf("event %d has no timestamp: %v", i, ev)
		}
		if ph == "X" {
			if _, ok := ev["dur"].(float64); !ok {
				t.Fatalf("complete event %d has no duration: %v", i, ev)
			}
		}
	}
}

// TestServiceObservability exercises the service-level integration in one
// pass: a service with a drift monitor and a debug listener serves
// queries, its drift counters move, and the debug endpoint answers with
// Prometheus metrics, the stats JSON, and pprof.
func TestServiceObservability(t *testing.T) {
	svc := NewService(
		WithServiceDriftFactor(1.0), // tightest factor: skewed loads will violate
		WithDebugListener("127.0.0.1:0"))
	defer svc.Close()
	addr := svc.DebugAddr()
	if addr == "" {
		t.Fatal("debug listener did not bind")
	}

	// HyperCube carries an LP load prediction, so every run is checkable
	// by the drift monitor (skew-aware strategies without predictions are
	// skipped by design).
	q := Triangle()
	db := MatchingDatabase(rand.New(rand.NewSource(104)), q, 120, 1<<12)
	for i := 0; i < 2; i++ {
		if _, err := svc.Run(context.Background(), q, db,
			WithStrategy(HyperCube()), WithServers(16), WithSeed(7)); err != nil {
			t.Fatal(err)
		}
	}

	st := svc.Stats()
	if st.Completed != 2 {
		t.Fatalf("Completed = %d, want 2", st.Completed)
	}
	if st.DriftChecks == 0 {
		t.Error("drift monitor never checked a round")
	}
	if st.DriftViolations > 0 && len(svc.DriftEvents()) == 0 {
		t.Error("violations counted but no events recorded")
	}

	get := func(path string) (int, string) {
		t.Helper()
		cl := &http.Client{Timeout: 5 * time.Second}
		resp, err := cl.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, string(b)
	}

	if code, body := get("/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "mpc_service_requests_completed_total 2") ||
		!strings.Contains(body, "mpc_service_latency_seconds_bucket") ||
		!strings.Contains(body, "mpc_engine_rounds_total") {
		t.Errorf("/metrics = %d:\n%.600s", code, body)
	}
	code, body := get("/debug/stats")
	if code != http.StatusOK {
		t.Fatalf("/debug/stats = %d", code)
	}
	var stats map[string]any
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatalf("/debug/stats is not JSON: %v\n%.400s", err, body)
	}
	if got, ok := stats["Completed"].(float64); !ok || got != 2 {
		t.Errorf("/debug/stats Completed = %v, want 2", stats["Completed"])
	}
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}

	svc.Close()
	if cl := (&http.Client{Timeout: time.Second}); true {
		if _, err := cl.Get("http://" + addr + "/metrics"); err == nil {
			t.Error("debug endpoint still serving after Close")
		}
	}
}
