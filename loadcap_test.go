package mpcquery

import (
	"math/rand"
	"testing"
)

// TestWithLoadCapSetsAbortedAllStrategies is the regression test for the
// load-cap plumbing: every strategy family — not just the HyperCube
// adapters — must honor WithLoadCap and surface the cluster's abort flag in
// Report.Aborted. A 1-bit cap is below any round's load, so every capped
// run must abort; the same run without a cap must not.
func TestWithLoadCapSetsAbortedAllStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := 200
	n := int64(1 << 12)

	star := Star(2)
	starDB := SkewedStarDatabase(rng, 2, m, n, map[int64]int{7: m / 4})
	tri := Triangle()
	triDB := SkewedTriangleDatabase(rng, m, n, 7, m/4)
	chain := Chain(4)
	chainDB := ChainMatchingDatabase(rng, 4, m, n)

	cases := []struct {
		family string
		q      *Query
		db     *Database
		s      Strategy
	}{
		{"hypercube", star, starDB, HyperCube()},
		{"hypercube-oblivious", star, starDB, HyperCubeOblivious()},
		{"hypercube-shares", star, starDB, HyperCubeShares(4, 1, 1)},
		{"skewed-star", star, starDB, SkewedStar()},
		{"skewed-star-sampled", star, starDB, SkewedStarSampled(50)},
		{"skewed-triangle", tri, triDB, SkewedTriangle()},
		{"skewed-generic", star, starDB, SkewedGeneric()},
		{"chain-plan", chain, chainDB, ChainPlan(0)},
		{"greedy-plan", chain, chainDB, GreedyPlan(0)},
		{"greedy-plan-skew", chain, chainDB, GreedyPlanSkewAware(0)},
		{"auto", chain, chainDB, Auto()},
	}
	for _, tc := range cases {
		t.Run(tc.family, func(t *testing.T) {
			capped, err := Run(tc.q, tc.db, WithStrategy(tc.s), WithServers(8),
				WithSeed(3), WithLoadCap(1))
			if err != nil {
				t.Fatalf("capped run: %v", err)
			}
			if !capped.Aborted {
				t.Errorf("%s: 1-bit load cap must set Report.Aborted", tc.family)
			}
			free, err := Run(tc.q, tc.db, WithStrategy(tc.s), WithServers(8), WithSeed(3))
			if err != nil {
				t.Fatalf("uncapped run: %v", err)
			}
			if free.Aborted {
				t.Errorf("%s: uncapped run must not abort", tc.family)
			}
			// The cap changes accounting, never the answer.
			if !EqualRelations(capped.Output, free.Output) {
				t.Errorf("%s: load cap changed the output", tc.family)
			}
		})
	}
}

// TestWithLoadCapSelfJoin covers the SelfJoin strategy family, which
// carries its own query.
func TestWithLoadCapSelfJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	edges := NewRelation("E", 2)
	for i := 0; i < 300; i++ {
		edges.Append(rng.Int63n(500), rng.Int63n(500))
	}
	db := NewDatabase(500)
	db.Add(edges)
	atoms := []Atom{
		{Name: "E", Vars: []string{"x", "y"}},
		{Name: "E", Vars: []string{"y", "z"}},
	}
	capped, err := Run(nil, db, WithStrategy(SelfJoin("paths", atoms...)),
		WithServers(8), WithSeed(3), WithLoadCap(1))
	if err != nil {
		t.Fatal(err)
	}
	if !capped.Aborted {
		t.Error("selfjoin: 1-bit load cap must set Report.Aborted")
	}
	free, err := Run(nil, db, WithStrategy(SelfJoin("paths", atoms...)),
		WithServers(8), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if free.Aborted {
		t.Error("selfjoin: uncapped run must not abort")
	}
}

// TestGenerousLoadCapDoesNotAbort: a cap far above the observed load leaves
// Aborted unset for every family (the flag reflects a genuine violation,
// not the mere presence of a cap).
func TestGenerousLoadCapDoesNotAbort(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	star := Star(2)
	db := SkewedStarDatabase(rng, 2, 200, 1<<12, map[int64]int{7: 50})
	for _, s := range []Strategy{HyperCube(), SkewedStar(), SkewedStarSampled(50), SkewedGeneric()} {
		rep, err := Run(star, db, WithStrategy(s), WithServers(8), WithSeed(3),
			WithLoadCap(1e12))
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if rep.Aborted {
			t.Errorf("%s: generous cap aborted (load %v)", s.Name(), rep.MaxLoadBits)
		}
	}
}
