package mpcquery

import (
	"fmt"
	"math"

	"mpcquery/internal/advisor"
	"mpcquery/internal/core"
	"mpcquery/internal/engine"
	"mpcquery/internal/multiround"
	"mpcquery/internal/query"
	"mpcquery/internal/skew"
)

// ExecContext carries everything a Strategy needs to execute one query: the
// validated query and database plus the knobs set through RunOptions.
type ExecContext struct {
	Query   *Query
	DB      *Database
	Servers int
	Seed    int64

	LoadCapBits float64 // 0 = no cap (WithLoadCap)
	HeavyCap    int     // per-variable heavy-hitter cap (WithHeavyCap)
	RoundBudget int     // max rounds for Auto, 0 = unlimited (WithRoundBudget)

	// Aggregate is the aggregate attached by WithAggregate (nil for plain
	// join runs); AggPushdown selects pre-shuffle partial aggregation.
	// Strategies without an aggregate path must return
	// ErrAggregateUnsupported when Aggregate is set.
	Aggregate   *AggregateSpec
	AggPushdown bool

	// cache is the Service's plan/statistics cache handle; nil for plain
	// Run. Built-in strategies consult it through cachedPlan/cachedStats;
	// caching is transparent to external Strategy implementations.
	cache *execCache

	// env is the execution environment every cluster is created against:
	// the delivery transport (nil Net = in-process, the default; set by
	// WithRuntime) and the trace sink (nil Trace = tracing off; set by
	// WithTrace).
	env engine.Env
}

// Strategy is one executable point in the paper's rounds/load tradeoff
// space. Implementations adapt the internal algorithms — one-round
// HyperCube variants, the skew-aware algorithms of Section 4.2, the
// multi-round plans of Section 5 — to the one unified Report.
//
// Execute must return an error rather than panic; Run additionally guards
// the boundary by converting any escaped panic into a *StrategyError.
type Strategy interface {
	Name() string
	Execute(ctx ExecContext) (*Report, error)
}

// queryProvider is implemented by strategies that carry their own query
// (SelfJoin), letting Run(nil, db, ...) work.
type queryProvider interface {
	provideQuery() *Query
}

// aggregateCapable marks the built-in strategies with an aggregate path.
// Run refuses WithAggregate for any strategy that does not declare support,
// so a strategy that would silently ignore ExecContext.Aggregate — and
// return plain join tuples mislabeled as aggregate rows — can never execute
// one. The method is deliberately unexported: external Strategy
// implementations cannot opt in yet, and get ErrAggregateUnsupported.
type aggregateCapable interface {
	supportsAggregate() bool
}

// supportsAggregateStrategy reports whether s declares an aggregate path.
func supportsAggregateStrategy(s Strategy) bool {
	ac, ok := s.(aggregateCapable)
	return ok && ac.supportsAggregate()
}

// ---- one-round HyperCube ---------------------------------------------------

type hyperCubeStrategy struct {
	mode core.Mode
}

// HyperCube returns the default strategy: the one-round HyperCube algorithm
// of Section 3.1 with LP-optimal skew-free shares (Theorem 3.4).
func HyperCube() Strategy { return hyperCubeStrategy{mode: core.SkewFree} }

// HyperCubeOblivious returns the one-round HyperCube strategy with the
// skew-oblivious worst-case shares of LP (18) (Section 4.1).
func HyperCubeOblivious() Strategy { return hyperCubeStrategy{mode: core.SkewOblivious} }

func (s hyperCubeStrategy) Name() string {
	if s.mode == core.SkewOblivious {
		return "hypercube-oblivious"
	}
	return "hypercube"
}

func (hyperCubeStrategy) supportsAggregate() bool { return true }

func (s hyperCubeStrategy) Execute(ctx ExecContext) (*Report, error) {
	plan := ctx.cachedPlan(fmt.Sprintf("hc|m%d", s.mode), func() any {
		return core.PlanForDatabase(ctx.Query, ctx.DB, ctx.Servers, s.mode)
	}).(*core.Plan)
	var res *core.Result
	if ap := ctx.aggregatePlan(); ap != nil {
		res = core.RunPlanAggregateNet(plan, ctx.DB, ctx.Seed, ctx.LoadCapBits, ap, ctx.env)
	} else {
		res = core.RunPlanWithCapNet(plan, ctx.DB, ctx.Seed, ctx.LoadCapBits, ctx.env)
	}
	rep := reportFromCore(s.Name(), ctx.Query, res)
	rep.PredictedLoadBits = plan.PredictedLoadBits()
	return rep, nil
}

// ---- explicit shares -------------------------------------------------------

type sharesStrategy struct {
	shares []int
}

// HyperCubeShares returns a one-round HyperCube strategy with explicit
// per-variable integer shares (one per query variable, in Query.Vars()
// order) instead of LP-optimal ones — e.g. all shares on the join variable
// reproduces the naive parallel hash join of Example 4.1.
func HyperCubeShares(shares ...int) Strategy {
	return sharesStrategy{shares: append([]int(nil), shares...)}
}

func (s sharesStrategy) Name() string { return "hypercube-shares" }

func (sharesStrategy) supportsAggregate() bool { return true }

func (s sharesStrategy) Execute(ctx ExecContext) (*Report, error) {
	if got, want := len(s.shares), ctx.Query.NumVars(); got != want {
		return nil, fmt.Errorf("mpcquery: HyperCubeShares: %d shares for %d variables", got, want)
	}
	for _, sh := range s.shares {
		if sh < 1 {
			return nil, fmt.Errorf("mpcquery: HyperCubeShares: shares must be ≥ 1, got %v", s.shares)
		}
	}
	var res *core.Result
	if ap := ctx.aggregatePlan(); ap != nil {
		res = core.RunWithSharesAggregateNet(ctx.Query, ctx.DB, s.shares, ctx.Seed, ctx.LoadCapBits, ap, ctx.env)
	} else {
		res = core.RunWithSharesCapNet(ctx.Query, ctx.DB, s.shares, ctx.Seed, ctx.LoadCapBits, ctx.env)
	}
	return reportFromCore(s.Name(), ctx.Query, res), nil
}

// ---- self-joins ------------------------------------------------------------

type selfJoinStrategy struct {
	name  string
	atoms []Atom
}

// SelfJoin returns a strategy evaluating a query that repeats relation
// names (footnote 2 of the paper), e.g. paths E(x,y), E(y,z) over one edge
// relation, with the one-round HyperCube algorithm. The strategy carries
// its own query, so Run may be called with a nil *Query:
//
//	Run(nil, db, WithStrategy(SelfJoin("paths", atoms...)))
func SelfJoin(name string, atoms ...Atom) Strategy {
	return selfJoinStrategy{name: name, atoms: append([]Atom(nil), atoms...)}
}

func (s selfJoinStrategy) Name() string { return "hypercube-selfjoin" }

func (s selfJoinStrategy) provideQuery() *Query {
	q, _ := core.DesugarSelfJoins(s.name, s.atoms)
	return q
}

func (s selfJoinStrategy) Execute(ctx ExecContext) (*Report, error) {
	if len(s.atoms) == 0 {
		return nil, fmt.Errorf("mpcquery: SelfJoin: no atoms")
	}
	for _, a := range s.atoms {
		if _, ok := ctx.DB.Relations[a.Name]; !ok {
			return nil, fmt.Errorf("mpcquery: SelfJoin: %w: %q", ErrMissingRelation, a.Name)
		}
	}
	res := core.RunWithSelfJoinsCapNet(s.name, s.atoms, ctx.DB, ctx.Servers, ctx.Seed, core.SkewFree, ctx.LoadCapBits, ctx.env)
	rep := reportFromCore(s.Name(), res.Plan.Query, res)
	rep.PredictedLoadBits = res.Plan.PredictedLoadBits()
	return rep, nil
}

// ---- skew-aware one-round strategies ---------------------------------------

type skewedStarStrategy struct {
	sampled    bool
	sampleSize int
}

// SkewedStar returns the Section 4.2.1 heavy-hitter strategy for star
// queries T_k (which covers the simple join as k=2), with exact frequency
// statistics (the paper's oracle assumption).
func SkewedStar() Strategy { return skewedStarStrategy{} }

// SkewedStarSampled is SkewedStar with statistics gathered by the one-round
// sampling protocol instead of an oracle; sampleSize tuples are sampled per
// server. Correctness is unconditional; only load depends on the estimates.
func SkewedStarSampled(sampleSize int) Strategy {
	return skewedStarStrategy{sampled: true, sampleSize: sampleSize}
}

func (s skewedStarStrategy) Name() string {
	if s.sampled {
		return "skewed-star-sampled"
	}
	return "skewed-star"
}

func (s skewedStarStrategy) Execute(ctx ExecContext) (*Report, error) {
	if s.sampled && s.sampleSize < 1 {
		return nil, fmt.Errorf("mpcquery: SkewedStarSampled: sample size must be ≥ 1, got %d", s.sampleSize)
	}
	if !isStarQuery(ctx.Query) {
		return nil, fmt.Errorf("mpcquery: %s needs a star query (every atom S_j(z, x_j...) sharing the first variable); got %s",
			s.Name(), ctx.Query)
	}
	var res *skew.Result
	if s.sampled {
		// The sampling protocol costs a genuine communication round; its
		// result lives in the STATS cache and a hit skips the recomputation,
		// but AddStatsCharges below always charges the round's bits to the
		// Report — cached vs charged (see execCache).
		st := ctx.cachedStats(fmt.Sprintf("star-stats|s%d|ss%d|c%g", ctx.Seed, s.sampleSize, ctx.LoadCapBits), func() any {
			return skew.StarStatsSpec(ctx.Query, ctx.DB, ctx.Servers).
				RunNet(ctx.Servers, s.sampleSize, ctx.Seed, ctx.LoadCapBits, ctx.env)
		}).(*skew.StatsResult)
		sp := ctx.cachedPlan(fmt.Sprintf("star-sampled|s%d|ss%d", ctx.Seed, s.sampleSize), func() any {
			return skew.PrepareStarWithFrequencies(ctx.Query, ctx.DB, ctx.Servers, st.PerAtom)
		}).(*skew.StarPlan)
		res = skew.RunStarPlannedNet(sp, ctx.Query, ctx.DB, ctx.Servers, ctx.Seed, ctx.LoadCapBits, ctx.env)
		skew.AddStatsCharges(res, st)
	} else {
		sp := ctx.cachedPlan("star", func() any {
			return skew.PrepareStar(ctx.Query, ctx.DB, ctx.Servers)
		}).(*skew.StarPlan)
		res = skew.RunStarPlannedNet(sp, ctx.Query, ctx.DB, ctx.Servers, ctx.Seed, ctx.LoadCapBits, ctx.env)
	}
	return reportFromSkew(s.Name(), ctx.Query, res), nil
}

// isStarQuery reports whether every atom starts with the same variable —
// the shape RunStar assumes (T_k with a shared z in position 0).
func isStarQuery(q *Query) bool {
	if q.NumAtoms() < 2 {
		return false
	}
	z := q.Atoms[0].Vars[0]
	for _, a := range q.Atoms {
		if len(a.Vars) < 2 || a.Vars[0] != z {
			return false
		}
	}
	return true
}

type skewedTriangleStrategy struct{}

// SkewedTriangle returns the Section 4.2.2 three-case strategy for the
// triangle query C3.
func SkewedTriangle() Strategy { return skewedTriangleStrategy{} }

func (skewedTriangleStrategy) Name() string { return "skewed-triangle" }

func (s skewedTriangleStrategy) Execute(ctx ExecContext) (*Report, error) {
	if ctx.Query.NumAtoms() != 3 || ctx.Query.NumVars() != 3 {
		return nil, fmt.Errorf("mpcquery: skewed-triangle needs the triangle query C3; got %s", ctx.Query)
	}
	tp := ctx.cachedPlan("triangle", func() any {
		return skew.PrepareTriangle(ctx.Query, ctx.DB, ctx.Servers)
	}).(*skew.TrianglePlan)
	res := skew.RunTrianglePlannedNet(tp, ctx.Query, ctx.DB, ctx.Servers, ctx.Seed, ctx.LoadCapBits, ctx.env)
	return reportFromSkew(s.Name(), ctx.Query, res), nil
}

type skewedGenericStrategy struct{}

// SkewedGeneric returns the generalized heavy/light pattern strategy
// (reference [6] of the paper) for any connected query; WithHeavyCap bounds
// the per-variable heavy sets.
func SkewedGeneric() Strategy { return skewedGenericStrategy{} }

func (skewedGenericStrategy) Name() string { return "skewed-generic" }

func (s skewedGenericStrategy) Execute(ctx ExecContext) (*Report, error) {
	gp := ctx.cachedPlan(fmt.Sprintf("generic|h%d", ctx.HeavyCap), func() any {
		return skew.PrepareGeneric(ctx.Query, ctx.DB, ctx.Servers, ctx.HeavyCap)
	}).(*skew.GenericPlan)
	res := skew.RunGenericPlannedNet(gp, ctx.Query, ctx.DB, ctx.Servers, ctx.Seed, ctx.LoadCapBits, ctx.env)
	return reportFromSkew(s.Name(), ctx.Query, res), nil
}

// ---- multi-round strategies ------------------------------------------------

type multiRoundStrategy struct {
	eps       float64
	chain     bool
	skewAware bool
}

// ChainPlan returns the multi-round strategy of Example 5.2 for the chain
// query L_k: ⌈log_kε k⌉ rounds of kε-atom blocks at space exponent eps.
// The query passed to Run must be a chain (atoms S1..Sk in path shape).
func ChainPlan(eps float64) Strategy { return multiRoundStrategy{eps: eps, chain: true} }

// GreedyPlan returns the generic multi-round strategy: the greedy grouping
// of Lemma 5.4 over any connected query at space exponent eps, executed
// level by level with per-round load metering.
func GreedyPlan(eps float64) Strategy { return multiRoundStrategy{eps: eps} }

// GreedyPlanSkewAware is GreedyPlan with every plan node computed by the
// generalized pattern algorithm, containing hotspots in skewed intermediate
// views; WithHeavyCap bounds the heavy sets.
func GreedyPlanSkewAware(eps float64) Strategy {
	return multiRoundStrategy{eps: eps, skewAware: true}
}

// supportsAggregate: the plain executors aggregate at the root node; the
// skew-aware executor does not have an aggregate path yet.
func (s multiRoundStrategy) supportsAggregate() bool { return !s.skewAware }

func (s multiRoundStrategy) Name() string {
	switch {
	case s.chain:
		return fmt.Sprintf("chain-plan(ε=%.2f)", s.eps)
	case s.skewAware:
		return fmt.Sprintf("greedy-plan-skew(ε=%.2f)", s.eps)
	default:
		return fmt.Sprintf("greedy-plan(ε=%.2f)", s.eps)
	}
}

func (s multiRoundStrategy) Execute(ctx ExecContext) (*Report, error) {
	if s.eps < 0 || s.eps >= 1 {
		return nil, fmt.Errorf("mpcquery: %s: space exponent must be in [0,1)", s.Name())
	}
	if !ctx.Query.IsConnected() {
		return nil, fmt.Errorf("mpcquery: %s needs a connected query; got %s", s.Name(), ctx.Query)
	}
	if s.chain {
		k := ctx.Query.NumAtoms()
		if !query.Chain(k).SameShape(ctx.Query) {
			return nil, fmt.Errorf("mpcquery: chain-plan needs the chain query L%d (atoms S1..S%d); got %s", k, k, ctx.Query)
		}
	}
	planKey := fmt.Sprintf("mr|c%t|sk%t|e%g", s.chain, s.skewAware, s.eps)
	plan := ctx.cachedPlan(planKey, func() any {
		if s.chain {
			return multiround.ChainPlan(ctx.Query.NumAtoms(), s.eps)
		}
		return multiround.GreedyPlan(ctx.Query, s.eps)
	}).(*multiround.Plan)
	return executeMultiRound(planKey, s.Name(), plan, s.eps, s.skewAware, ctx)
}

// executeMultiRound runs a prepared plan and folds its ExecResult into a
// Report, predicting load as M_max/p^{1−ε} (the Section 5 target). The
// cacheKey scopes per-node memoized artifacts (share LPs, skew layouts over
// intermediate views) to this particular plan — node names repeat across
// plans, so the key must identify the plan, not just the node.
func executeMultiRound(cacheKey string, name string, plan *multiround.Plan, eps float64, skewAware bool, ctx ExecContext) (*Report, error) {
	var memo multiround.Memo
	if ctx.cache != nil {
		memo = func(key string, compute func() any) any {
			return ctx.cachedPlan(cacheKey+"|"+key, compute)
		}
	}
	ap := ctx.aggregatePlan()
	if ap != nil && skewAware {
		return nil, errAggregateUnsupported(name)
	}
	var res *multiround.ExecResult
	if skewAware {
		res = multiround.ExecuteSkewAwareCapMemoNet(plan, ctx.DB, ctx.Servers, ctx.Seed, ctx.HeavyCap, ctx.LoadCapBits, memo, ctx.env)
	} else {
		res = multiround.ExecuteAggregateCapMemoNet(plan, ctx.DB, ctx.Servers, ctx.Seed, ctx.LoadCapBits, ap, memo, ctx.env)
	}
	rep := &Report{
		Strategy:           name,
		Query:              ctx.Query,
		Output:             res.Output,
		Rounds:             res.Rounds,
		ServersUsed:        ctx.Servers,
		MaxLoadBits:        res.MaxLoadBits,
		TotalBits:          res.TotalBits,
		InputBits:          res.InputBits,
		Aborted:            res.Aborted,
		AggregateBitsSaved: res.AggregateBitsSaved,
		ComputeSeconds:     res.ComputeSeconds,
		CommSeconds:        res.CommSeconds,
	}
	for i, l := range res.RoundLoads {
		rep.RoundStats = append(rep.RoundStats, RoundStat{Round: i + 1, MaxLoadBits: l})
	}
	if res.InputBits > 0 {
		rep.ReplicationRate = res.TotalBits / res.InputBits
	}
	maxM := 0.0
	for _, r := range ctx.DB.Relations {
		if m := r.SizeBits(ctx.DB.N); m > maxM {
			maxM = m
		}
	}
	rep.PredictedLoadBits = maxM / math.Pow(float64(ctx.Servers), 1-eps)
	return rep, nil
}

// ---- auto ------------------------------------------------------------------

type autoStrategy struct{}

// Auto returns the self-tuning strategy: it asks the advisor for every
// executable option (one-round HyperCube variants, multi-round plans over
// an ε grid — the Table 3 tradeoff), picks the lowest predicted load within
// WithRoundBudget, and executes the winner.
func Auto() Strategy { return autoStrategy{} }

func (autoStrategy) Name() string { return "auto" }

// supportsAggregate: every strategy Auto delegates to (HyperCube variants,
// plain multi-round plans) has an aggregate path.
func (autoStrategy) supportsAggregate() bool { return true }

func (s autoStrategy) Execute(ctx ExecContext) (*Report, error) {
	if !ctx.Query.IsConnected() {
		return nil, fmt.Errorf("mpcquery: auto needs a connected query; got %s", ctx.Query)
	}
	// The advisor's full option enumeration (two share LPs plus a greedy
	// plan per ε-grid point) is shape+stats determined; memoize it and keep
	// only the cheap budget-dependent Best pick per request.
	opts := ctx.cachedPlan("advice", func() any {
		return advisor.AdviseDatabase(ctx.Query, ctx.DB, ctx.Servers)
	}).([]advisor.Option)
	best, ok := advisor.Best(opts, ctx.RoundBudget)
	if !ok {
		return nil, fmt.Errorf("mpcquery: %w: no option fits a budget of %d round(s)",
			ErrNoFeasibleStrategy, ctx.RoundBudget)
	}
	var (
		rep *Report
		err error
	)
	switch {
	case best.Plan != nil:
		rep, err = executeMultiRound("auto|"+best.Name, s.Name(), best.Plan, best.SpaceExponent, false, ctx)
	case best.SkewRobust:
		rep, err = HyperCubeOblivious().Execute(ctx)
	default:
		rep, err = HyperCube().Execute(ctx)
	}
	if err != nil {
		return nil, err
	}
	rep.Strategy = "auto → " + best.Name
	rep.PredictedLoadBits = best.PredictedLoadBits
	return rep, nil
}

// reportFromCore folds a one-round core.Result into the unified Report
// (two rounds when the run carried an aggregate shuffle).
func reportFromCore(name string, q *Query, res *core.Result) *Report {
	rep := &Report{
		Strategy:           name,
		Query:              q,
		Output:             res.Output,
		Rounds:             1,
		RoundStats:         []RoundStat{{Round: 1, MaxLoadBits: res.MaxLoadBits}},
		ServersUsed:        res.ServersUsed,
		MaxLoadBits:        res.MaxLoadBits,
		TotalBits:          res.TotalBits,
		InputBits:          res.InputBits,
		ReplicationRate:    res.ReplicationRate,
		Aborted:            res.Aborted,
		AggregateBitsSaved: res.AggregateBitsSaved,
		ComputeSeconds:     res.ComputeSeconds,
		CommSeconds:        res.CommSeconds,
	}
	if len(res.RoundLoads) > 0 {
		rep.Rounds = len(res.RoundLoads)
		rep.RoundStats = rep.RoundStats[:0]
		for i, l := range res.RoundLoads {
			rep.RoundStats = append(rep.RoundStats, RoundStat{Round: i + 1, MaxLoadBits: l})
		}
	}
	if res.Plan != nil {
		rep.Shares = append([]int(nil), res.Plan.Shares...)
	}
	return rep
}

// reportFromSkew folds a skew.Result into the unified Report.
func reportFromSkew(name string, q *Query, res *skew.Result) *Report {
	return &Report{
		Strategy:        name,
		Query:           q,
		Output:          res.Output,
		Rounds:          res.Rounds,
		ServersUsed:     res.ServersUsed,
		MaxLoadBits:     res.MaxLoadBits,
		TotalBits:       res.TotalBits,
		InputBits:       res.InputBits,
		ReplicationRate: res.ReplicationRate,
		HeavyHitters:    res.HeavyHitters,
		Aborted:         res.Aborted,
		ComputeSeconds:  res.ComputeSeconds,
		CommSeconds:     res.CommSeconds,
	}
}
