package mpcquery

import (
	"fmt"
	"math"
	"testing"
)

// The degenerate-input suite: empty relations, a single server, and
// all-duplicate tuples must never produce NaN/Inf/panic in any strategy
// family's report — including the aggregate paths and their bits
// accounting. These are exactly the inputs where ratio fields
// (ReplicationRate = TotalBits/InputBits, LoadRatio = observed/predicted)
// can divide by zero if unguarded.

// degenerateDBs builds the pathological databases for a query.
func degenerateDBs(q *Query) map[string]*Database {
	empty := NewDatabase(1 << 8)
	for _, a := range q.Atoms {
		empty.Add(NewRelation(a.Name, a.Arity()))
	}
	oneEmpty := NewDatabase(1 << 8)
	for j, a := range q.Atoms {
		r := NewRelation(a.Name, a.Arity())
		if j > 0 {
			row := make([]int64, a.Arity())
			for c := range row {
				row[c] = int64(c + 1)
			}
			for i := 0; i < 20; i++ {
				r.AppendTuple(row)
			}
		}
		oneEmpty.Add(r)
	}
	allDup := NewDatabase(1 << 8)
	for _, a := range q.Atoms {
		r := NewRelation(a.Name, a.Arity())
		row := make([]int64, a.Arity())
		for c := range row {
			row[c] = 3 // every column the same single value, 30 copies
		}
		for i := 0; i < 30; i++ {
			r.AppendTuple(row)
		}
		allDup.Add(r)
	}
	tiny := NewDatabase(2) // domain of two values: 1-bit encoding
	for _, a := range q.Atoms {
		r := NewRelation(a.Name, a.Arity())
		row := make([]int64, a.Arity())
		r.AppendTuple(row)
		tiny.Add(r)
	}
	return map[string]*Database{
		"all-empty": empty, "one-empty": oneEmpty, "all-duplicates": allDup, "tiny-domain": tiny,
	}
}

func checkFinite(t *testing.T, label string, rep *Report) {
	t.Helper()
	fields := map[string]float64{
		"MaxLoadBits":        rep.MaxLoadBits,
		"TotalBits":          rep.TotalBits,
		"InputBits":          rep.InputBits,
		"ReplicationRate":    rep.ReplicationRate,
		"PredictedLoadBits":  rep.PredictedLoadBits,
		"LoadRatio":          rep.LoadRatio(),
		"AggregateBitsSaved": rep.AggregateBitsSaved,
	}
	for name, v := range fields {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s: %s = %v", label, name, v)
		}
		if name != "LoadRatio" && v < 0 {
			t.Errorf("%s: %s negative: %v", label, name, v)
		}
	}
	for _, rs := range rep.RoundStats {
		if math.IsNaN(rs.MaxLoadBits) || math.IsInf(rs.MaxLoadBits, 0) {
			t.Errorf("%s: round %d load = %v", label, rs.Round, rs.MaxLoadBits)
		}
	}
	// String and Fingerprint must render without panicking.
	_ = rep.String()
	_ = rep.Fingerprint()
}

func degenerateStrategiesFor(q *Query) []Strategy {
	ss := []Strategy{HyperCube(), HyperCubeOblivious(), SkewedGeneric(), GreedyPlan(0.5), GreedyPlanSkewAware(0.5), Auto()}
	if isStarQuery(q) {
		ss = append(ss, SkewedStar(), SkewedStarSampled(10))
	}
	if q.NumAtoms() == 3 && q.NumVars() == 3 {
		ss = append(ss, SkewedTriangle())
	}
	if Chain(q.NumAtoms()).SameShape(q) {
		ss = append(ss, ChainPlan(0.5))
	}
	return ss
}

func TestDegenerateInputsAcrossFamilies(t *testing.T) {
	for _, q := range []*Query{Star(2), Triangle(), Chain(3)} {
		for dbName, db := range degenerateDBs(q) {
			for _, s := range degenerateStrategiesFor(q) {
				for _, servers := range []int{1, 16} {
					label := fmt.Sprintf("%s/%s/%s/p%d", q.Name, dbName, s.Name(), servers)
					rep, err := Run(q, db, WithStrategy(s), WithServers(servers), WithSeed(1), WithHeavyCap(4))
					if err != nil {
						t.Errorf("%s: %v", label, err)
						continue
					}
					checkFinite(t, label, rep)
				}
			}
		}
	}
}

func TestDegenerateAggregates(t *testing.T) {
	for _, q := range []*Query{Star(2), Chain(3)} {
		groupVar := q.Vars()[0]
		aggVar := q.Vars()[len(q.Vars())-1]
		specs := []AggregateQuery{
			{Join: q, Op: AggCount, GroupBy: []string{groupVar}},
			{Join: q, Op: AggCount},
			{Join: q, Op: AggSum, Of: aggVar, GroupBy: []string{groupVar}},
			{Join: q, Op: AggMin, Of: aggVar},
			{Join: q, Op: AggMax, Of: aggVar, GroupBy: []string{groupVar}},
		}
		strategies := []Strategy{HyperCube(), GreedyPlan(0.5)}
		if Chain(q.NumAtoms()).SameShape(q) {
			strategies = append(strategies, ChainPlan(0.5))
		}
		for dbName, db := range degenerateDBs(q) {
			for _, aq := range specs {
				for _, s := range strategies {
					for _, pushdown := range []bool{true, false} {
						for _, servers := range []int{1, 16} {
							label := fmt.Sprintf("%s/%s/%s/%v/p%d/push%t", q.Name, dbName, s.Name(), aq.Op, servers, pushdown)
							rep, err := RunAggregate(aq, db, WithStrategy(s), WithServers(servers),
								WithSeed(1), WithAggregatePushdown(pushdown))
							if err != nil {
								t.Errorf("%s: %v", label, err)
								continue
							}
							checkFinite(t, label, rep)
							// Empty joins must yield empty aggregates, never a
							// zero-group row; all-duplicate joins exactly one
							// group per distinct key.
							if dbName == "all-empty" || dbName == "one-empty" {
								if rep.Output.NumTuples() != 0 {
									t.Errorf("%s: empty join produced %d aggregate rows", label, rep.Output.NumTuples())
								}
							}
							if dbName == "all-duplicates" && rep.Output.NumTuples() > 1 {
								t.Errorf("%s: single-key input produced %d groups", label, rep.Output.NumTuples())
							}
						}
					}
				}
			}
		}
	}
}

// TestDegenerateSingleServerMatchesOracleCounts pins the all-duplicates
// COUNT value: with every relation holding c copies of one tuple, the join
// has c^ℓ rows, so the global count must be exactly that — on one server and
// on many, pushdown on and off.
func TestDegenerateAllDuplicateCounts(t *testing.T) {
	q := Star(2)
	db := degenerateDBs(q)["all-duplicates"]
	want := int64(30 * 30)
	for _, servers := range []int{1, 16} {
		for _, pushdown := range []bool{true, false} {
			rep, err := RunAggregate(AggregateQuery{Join: q, Op: AggCount}, db,
				WithServers(servers), WithSeed(2), WithAggregatePushdown(pushdown))
			if err != nil {
				t.Fatal(err)
			}
			if rep.Output.NumTuples() != 1 || rep.Output.At(0, 0) != want {
				t.Fatalf("p=%d pushdown=%t: count = %v, want single row %d",
					servers, pushdown, rep.Output.Vals(), want)
			}
		}
	}
}
