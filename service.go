package mpcquery

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"mpcquery/internal/service"
)

// Service errors; test with errors.Is.
var (
	// ErrOverloaded: the request was refused at admission because the
	// service's queue is full — the caller should back off and retry.
	ErrOverloaded = service.ErrOverloaded
	// ErrServiceClosed: the request arrived after Close.
	ErrServiceClosed = service.ErrClosed
)

// Service turns the one-shot Run path into a long-lived, concurrency-safe
// query service that amortizes planning and statistics work across a query
// stream:
//
//   - a PLAN cache keyed by Query.ShapeKey() plus a database fingerprint
//     memoizes HyperCube share allocations (the LP solutions), skew-aware
//     layouts (heavy-hitter blocks, pattern grids), multi-round plan trees,
//     and the Auto advisor's option enumeration;
//   - a STATISTICS cache memoizes results of statistics protocols that cost
//     genuine communication (the sampling round of SkewedStarSampled).
//     Cache hits skip the recomputation but every Report still charges the
//     protocol's bits, so cached and uncached runs are bit-identical — the
//     paper's cost model meters the algorithm, not the memoization;
//   - admission control: a bounded worker pool with a queue-depth limit
//     sheds load (ErrOverloaded) instead of building an unbounded backlog;
//   - aggregate metrics: throughput, latency percentiles, total
//     communication across the stream, cache hit rates.
//
// All methods are safe for concurrent use. A zero Service is not valid; use
// NewService.
//
//	svc := mpcquery.NewService(mpcquery.WithServiceWorkers(8))
//	defer svc.Close()
//	rep, err := svc.Run(q, db, mpcquery.WithStrategy(mpcquery.SkewedStar()))
type Service struct {
	pool    *service.Pool
	metrics *service.Metrics
	plans   *service.Cache
	stats   *service.Cache
	planOn  bool
	statsOn bool

	mu      sync.Mutex
	dbs     map[*Database]*dbEntry
	dbOrder []*Database // registration order, for bounded tracking
	nextID  int64
}

// maxTrackedDatabases bounds the database-identity map: a long-lived
// service streaming over many short-lived databases must not pin them (and
// their relations) forever. Beyond the bound the oldest registration is
// forgotten and its cache entries purged; re-serving that database simply
// re-registers it under a fresh id (a cache miss, never a stale hit).
const maxTrackedDatabases = 1024

// dbEntry tracks the identity and version of a registered database; the
// version is bumped by InvalidateDatabase so stale cache entries become
// unreachable.
type dbEntry struct {
	id      int64
	version int64
}

// serviceConfig collects the NewService knobs.
type serviceConfig struct {
	workers       int
	queueDepth    int
	cacheCapacity int
	planCaching   bool
	statsCaching  bool
}

// ServiceOption configures NewService.
type ServiceOption func(*serviceConfig)

// WithServiceWorkers sets how many queries may execute concurrently
// (default GOMAXPROCS). Each query already parallelizes internally across
// cores, so the default slightly oversubscribes to hide per-query serial
// phases.
func WithServiceWorkers(n int) ServiceOption { return func(c *serviceConfig) { c.workers = n } }

// WithServiceQueue sets the admission queue depth (default 8× workers).
// Requests beyond workers+queue are shed with ErrOverloaded.
func WithServiceQueue(n int) ServiceOption { return func(c *serviceConfig) { c.queueDepth = n } }

// WithPlanCaching toggles the plan cache (default on).
func WithPlanCaching(on bool) ServiceOption { return func(c *serviceConfig) { c.planCaching = on } }

// WithStatsCaching toggles the statistics cache (default on).
func WithStatsCaching(on bool) ServiceOption { return func(c *serviceConfig) { c.statsCaching = on } }

// WithServiceCacheCapacity bounds each cache's entry count (default 1024).
func WithServiceCacheCapacity(n int) ServiceOption {
	return func(c *serviceConfig) { c.cacheCapacity = n }
}

// NewService starts a query service. Close it when done to release the
// worker goroutines.
func NewService(opts ...ServiceOption) *Service {
	cfg := serviceConfig{
		workers:       runtime.GOMAXPROCS(0),
		cacheCapacity: 1024,
		planCaching:   true,
		statsCaching:  true,
	}
	for _, opt := range opts {
		if opt != nil {
			opt(&cfg)
		}
	}
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	if cfg.queueDepth <= 0 {
		cfg.queueDepth = 8 * cfg.workers
	}
	return &Service{
		pool:    service.NewPool(cfg.workers, cfg.queueDepth),
		metrics: service.NewMetrics(),
		plans:   service.NewCache(cfg.cacheCapacity),
		stats:   service.NewCache(cfg.cacheCapacity),
		planOn:  cfg.planCaching,
		statsOn: cfg.statsCaching,
		dbs:     make(map[*Database]*dbEntry),
	}
}

// Run executes one query through the service: the request is admitted to
// the bounded worker pool (or shed with ErrOverloaded), executed by Run
// with the service's caches attached, and recorded in the aggregate
// metrics. The returned Report is bit-identical to what a plain Run of the
// same request would produce, whether or not any cache was hit.
func (s *Service) Run(q *Query, db *Database, opts ...RunOption) (*Report, error) {
	type outcome struct {
		rep *Report
		err error
	}
	ec := s.execCacheFor(db)
	runOpts := make([]RunOption, 0, len(opts)+1)
	runOpts = append(runOpts, withExecCache(ec))
	runOpts = append(runOpts, opts...)

	start := time.Now()
	ch := make(chan outcome, 1)
	if err := s.pool.Submit(func() {
		// Run converts strategy panics into *StrategyError, but a panic can
		// fire before its recover boundary (e.g. a caller-supplied RunOption
		// that panics). Contain it here so one bad request neither kills
		// the worker nor leaves this caller blocked on ch forever.
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{nil, fmt.Errorf("mpcquery: service request panicked: %v", r)}
			}
		}()
		rep, err := Run(q, db, runOpts...)
		ch <- outcome{rep, err}
	}); err != nil {
		if err == ErrOverloaded {
			s.metrics.RecordShed()
		}
		return nil, fmt.Errorf("mpcquery: service admission: %w", err)
	}
	out := <-ch
	latency := time.Since(start)
	if out.err != nil {
		s.metrics.RecordFailure(latency)
		return nil, out.err
	}
	s.metrics.RecordSuccess(latency, out.rep.TotalBits, out.rep.MaxLoadBits, out.rep.Rounds)
	return out.rep, nil
}

// execCacheFor returns the cache handle for one request, tagging keys with
// the database's identity and current version. With both caches disabled it
// returns nil and Run behaves exactly like the plain path.
func (s *Service) execCacheFor(db *Database) *execCache {
	if db == nil || (!s.planOn && !s.statsOn) {
		return nil
	}
	s.mu.Lock()
	e, ok := s.dbs[db]
	if !ok {
		s.nextID++
		e = &dbEntry{id: s.nextID}
		s.dbs[db] = e
		s.dbOrder = append(s.dbOrder, db)
		if len(s.dbOrder) > maxTrackedDatabases {
			oldest := s.dbOrder[0]
			s.dbOrder = s.dbOrder[1:]
			if old, ok := s.dbs[oldest]; ok {
				delete(s.dbs, oldest)
				defer s.purgeDB(old)
			}
		}
	}
	tag := fmt.Sprintf("db%d.v%d", e.id, e.version)
	s.mu.Unlock()
	return &execCache{
		plans:   s.plans,
		stats:   s.stats,
		planOn:  s.planOn,
		statsOn: s.statsOn,
		dbTag:   tag,
	}
}

// InvalidateDatabase declares that db's contents changed in place, bumping
// its version so every cached plan and statistic derived from it becomes
// unreachable, and purging the now-dead entries from both caches.
// Appending tuples to a relation is detected automatically (relation sizes
// are part of every cache key); only in-place value edits need this call.
func (s *Service) InvalidateDatabase(db *Database) {
	s.mu.Lock()
	e, ok := s.dbs[db]
	var stale dbEntry
	if ok {
		stale = *e
		e.version++
	}
	s.mu.Unlock()
	if ok {
		s.purgeDB(&stale)
	}
}

// purgeDB drops every cache entry keyed under one database version. Keys
// embed the tag as a |-delimited field, so the substring match is exact.
func (s *Service) purgeDB(e *dbEntry) {
	tag := fmt.Sprintf("|db%d.v%d|", e.id, e.version)
	s.plans.PurgeMatching(tag)
	s.stats.PurgeMatching(tag)
}

// ServiceCacheStats reports one cache's effectiveness (hits, misses,
// entries, evictions, and a HitRate method).
type ServiceCacheStats = service.CacheStats

// ServiceStats is a point-in-time snapshot of the service's aggregate
// behavior across every query it has served.
type ServiceStats struct {
	Completed int64 // queries that returned a Report
	Failed    int64 // queries that returned an error
	Shed      int64 // requests refused with ErrOverloaded

	Uptime     time.Duration
	Throughput float64 // completed queries per second of uptime

	// Wall-clock latency percentiles (queue wait + execution) over the most
	// recent queries.
	LatencyP50 time.Duration
	LatencyP95 time.Duration
	LatencyP99 time.Duration
	LatencyMax time.Duration

	TotalBits   float64 // Σ Report.TotalBits over the stream
	MaxLoadBits float64 // max Report.MaxLoadBits seen
	TotalRounds int64   // Σ Report.Rounds

	PlanCache  ServiceCacheStats
	StatsCache ServiceCacheStats

	Workers    int // concurrent query executions allowed
	QueueDepth int // admission queue capacity
	Queued     int // requests waiting right now (snapshot)
}

// Stats returns the service's aggregate metrics.
func (s *Service) Stats() ServiceStats {
	sum := s.metrics.Snapshot()
	pc, sc := s.plans.Stats(), s.stats.Stats()
	return ServiceStats{
		Completed:   sum.Completed,
		Failed:      sum.Failed,
		Shed:        sum.Shed,
		Uptime:      sum.Uptime,
		Throughput:  sum.Throughput,
		LatencyP50:  sum.LatencyP50,
		LatencyP95:  sum.LatencyP95,
		LatencyP99:  sum.LatencyP99,
		LatencyMax:  sum.LatencyMax,
		TotalBits:   sum.TotalBits,
		MaxLoadBits: sum.MaxLoadBits,
		TotalRounds: sum.TotalRounds,
		PlanCache:   pc,
		StatsCache:  sc,
		Workers:     s.pool.Workers(),
		QueueDepth:  s.pool.QueueDepth(),
		Queued:      s.pool.Queued(),
	}
}

// Close stops admission (subsequent Runs return ErrServiceClosed), waits
// for queued and in-flight queries to finish, and releases the workers.
// Close is idempotent.
func (s *Service) Close() {
	s.pool.Close()
}
