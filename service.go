package mpcquery

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mpcquery/internal/engine"
	"mpcquery/internal/obs"
	"mpcquery/internal/service"
)

// Service errors; test with errors.Is.
var (
	// ErrOverloaded: the request was refused at admission because the
	// service's queue is full — the caller should back off and retry.
	ErrOverloaded = service.ErrOverloaded
	// ErrServiceClosed: the request arrived after Close.
	ErrServiceClosed = service.ErrClosed
)

// Service turns the one-shot Run path into a long-lived, concurrency-safe
// query service that amortizes planning and statistics work across a query
// stream:
//
//   - a PLAN cache keyed by Query.ShapeKey() plus a database fingerprint
//     memoizes HyperCube share allocations (the LP solutions), skew-aware
//     layouts (heavy-hitter blocks, pattern grids), multi-round plan trees,
//     and the Auto advisor's option enumeration;
//   - a STATISTICS cache memoizes results of statistics protocols that cost
//     genuine communication (the sampling round of SkewedStarSampled).
//     Cache hits skip the recomputation but every Report still charges the
//     protocol's bits, so cached and uncached runs are bit-identical — the
//     paper's cost model meters the algorithm, not the memoization;
//   - admission control: a bounded worker pool with a queue-depth limit
//     sheds load (ErrOverloaded) instead of building an unbounded backlog;
//   - aggregate metrics: throughput, latency percentiles, total
//     communication across the stream, cache hit rates.
//
// All methods are safe for concurrent use. A zero Service is not valid; use
// NewService.
//
//	svc := mpcquery.NewService(mpcquery.WithServiceWorkers(8))
//	defer svc.Close()
//	rep, err := svc.Run(ctx, q, db, mpcquery.WithStrategy(mpcquery.SkewedStar()))
type Service struct {
	pool    *service.Pool
	metrics *service.Metrics
	plans   *service.Cache
	stats   *service.Cache
	planOn  bool
	statsOn bool

	flight     *service.Flight
	coalesceOn bool
	bpDepth    func() int64 // send-queue depth probe; nil = no backpressure
	bpLimit    int64

	breakerOn        bool // WithCircuitBreaker enabled
	breakerThreshold int
	breakerCooldown  time.Duration
	brMu             sync.Mutex
	breakers         map[engine.Transport]*service.Breaker // one per distributed runtime
	degraded         atomic.Int64                          // requests answered by the in-process fallback

	drift    *obs.DriftMonitor // nil = drift monitoring off
	debugLn  net.Listener      // nil = no debug listener
	debugSrv *http.Server

	mu      sync.Mutex
	dbs     map[*Database]*dbEntry
	dbOrder []*Database // registration order, for bounded tracking
	nextID  int64
}

// maxTrackedDatabases bounds the database-identity map: a long-lived
// service streaming over many short-lived databases must not pin them (and
// their relations) forever. Beyond the bound the oldest registration is
// forgotten and its cache entries purged; re-serving that database simply
// re-registers it under a fresh id (a cache miss, never a stale hit).
const maxTrackedDatabases = 1024

// dbEntry tracks the identity and version of a registered database; the
// version is bumped by InvalidateDatabase so stale cache entries become
// unreachable.
type dbEntry struct {
	id      int64
	version int64
}

// serviceConfig collects the NewService knobs.
type serviceConfig struct {
	workers       int
	queueDepth    int
	cacheCapacity int
	planCaching   bool
	statsCaching  bool
	coalescing    bool
	bpDepth       func() int64
	bpLimit       int64
	driftFactor   float64
	debugAddr     string
	breakerThresh int
	breakerCool   time.Duration
}

// ServiceOption configures NewService.
type ServiceOption func(*serviceConfig)

// WithServiceWorkers sets how many queries may execute concurrently
// (default GOMAXPROCS). Each query already parallelizes internally across
// cores, so the default slightly oversubscribes to hide per-query serial
// phases.
func WithServiceWorkers(n int) ServiceOption { return func(c *serviceConfig) { c.workers = n } }

// WithServiceQueue sets the admission queue depth (default 8× workers).
// Requests beyond workers+queue are shed with ErrOverloaded.
func WithServiceQueue(n int) ServiceOption { return func(c *serviceConfig) { c.queueDepth = n } }

// WithPlanCaching toggles the plan cache (default on).
func WithPlanCaching(on bool) ServiceOption { return func(c *serviceConfig) { c.planCaching = on } }

// WithStatsCaching toggles the statistics cache (default on).
func WithStatsCaching(on bool) ServiceOption { return func(c *serviceConfig) { c.statsCaching = on } }

// WithServiceCacheCapacity bounds each cache's entry count (default 1024).
func WithServiceCacheCapacity(n int) ServiceOption {
	return func(c *serviceConfig) { c.cacheCapacity = n }
}

// WithRequestCoalescing toggles single-flight request coalescing (default
// on): while one request executes, concurrent requests that are
// byte-for-byte identical — same strategy, options, query, and database —
// wait for its result instead of executing again, and all callers receive
// the same Report (treat it as read-only). Sound because identical
// requests are deterministic: the coalesced Report is bit-identical to
// what a separate execution would have produced. Requests that carry a
// DistributedRuntime are never coalesced — every rank of an SPMD group
// must execute every run, so skipping one rank's execution would desync
// the group. Requests carrying a WithTrace trace or their own
// WithDriftMonitor are never coalesced either: those observers only see
// runs that actually execute.
func WithRequestCoalescing(on bool) ServiceOption {
	return func(c *serviceConfig) { c.coalescing = on }
}

// WithSendQueueBackpressure ties admission to transport pressure: when
// depth() exceeds limit at admission time, the request is shed with
// ErrOverloaded before it queues. Pass DistributedRuntime.QueuedSendBytes
// as the probe to stop accepting work while the runtime's sockets are
// backed up; a nil probe or non-positive limit disables the check.
func WithSendQueueBackpressure(depth func() int64, limit int64) ServiceOption {
	return func(c *serviceConfig) { c.bpDepth, c.bpLimit = depth, limit }
}

// WithServiceDriftFactor attaches a drift monitor to every query the
// service executes: each round with a plan prediction is checked and a
// violation is recorded when observed load exceeds factor × predicted —
// the signal that the optimizer's skew assumptions no longer hold for the
// data the service is actually seeing. Totals appear in Stats()
// (DriftChecks, DriftViolations) and recent events in DriftEvents().
// factor <= 0 selects the default (1.5); the zero serviceConfig leaves
// monitoring off entirely. A request's own WithDriftMonitor overrides the
// service's monitor for that request.
func WithServiceDriftFactor(factor float64) ServiceOption {
	return func(c *serviceConfig) {
		if factor <= 0 {
			factor = obs.DefaultDriftFactor
		}
		c.driftFactor = factor
	}
}

// WithCircuitBreaker guards every distributed runtime the service's
// requests carry with a circuit breaker: threshold consecutive
// ErrPeerUnavailable failures trip it, and while it is open the service
// answers those requests from the in-process runtime instead of queuing
// them on a dead worker group — the Report is identical (the in-process
// path is the reference semantics) and carries Degraded=true so callers
// can see the downgrade. After cooldown (jittered deterministically per
// trip) a single probe request is allowed through distributed; its
// success closes the breaker. threshold < 1 is clamped to 1, cooldown
// <= 0 defaults to one second; the zero serviceConfig leaves breaking
// off entirely (distributed failures surface as errors, as before).
//
// Note the SPMD caveat: a degraded rank executes locally while its run
// is no longer mirrored on the (failed) peers. That is the point — the
// worker group is already broken when the breaker trips — but it means
// degradation is for service tiers answering callers, not for mid-group
// coordination.
func WithCircuitBreaker(threshold int, cooldown time.Duration) ServiceOption {
	return func(c *serviceConfig) { c.breakerThresh, c.breakerCool = threshold, cooldown }
}

// WithDebugListener serves the service's debug endpoint on addr:
// /metrics (Prometheus text: the service's own series plus the
// process-wide engine/kernel/transport registry), /debug/stats
// (ServiceStats as JSON), and /debug/pprof/. Use "127.0.0.1:0" to bind an
// ephemeral local port and read it back with DebugAddr. A failure to bind
// leaves the service fully functional with no listener (DebugAddr returns
// ""). The listener shuts down with Close.
func WithDebugListener(addr string) ServiceOption {
	return func(c *serviceConfig) { c.debugAddr = addr }
}

// NewService starts a query service. Close it when done to release the
// worker goroutines.
func NewService(opts ...ServiceOption) *Service {
	cfg := serviceConfig{
		workers:       runtime.GOMAXPROCS(0),
		cacheCapacity: 1024,
		planCaching:   true,
		statsCaching:  true,
		coalescing:    true,
	}
	for _, opt := range opts {
		if opt != nil {
			opt(&cfg)
		}
	}
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	if cfg.queueDepth <= 0 {
		cfg.queueDepth = 8 * cfg.workers
	}
	s := &Service{
		pool:       service.NewPool(cfg.workers, cfg.queueDepth),
		metrics:    service.NewMetrics(),
		plans:      service.NewCache(cfg.cacheCapacity),
		stats:      service.NewCache(cfg.cacheCapacity),
		planOn:     cfg.planCaching,
		statsOn:    cfg.statsCaching,
		flight:     service.NewFlight(),
		coalesceOn: cfg.coalescing,
		bpDepth:    cfg.bpDepth,
		bpLimit:    cfg.bpLimit,
		dbs:        make(map[*Database]*dbEntry),
	}
	if cfg.breakerThresh > 0 || cfg.breakerCool > 0 {
		s.breakerOn = true
		s.breakerThreshold = cfg.breakerThresh
		s.breakerCooldown = cfg.breakerCool
		s.breakers = make(map[engine.Transport]*service.Breaker)
	}
	if cfg.driftFactor > 0 {
		s.drift = obs.NewDriftMonitor(cfg.driftFactor)
	}
	// Pool and cache state is computed on demand, so it publishes as gauge
	// functions sampled at scrape time rather than stored series.
	reg := s.metrics.Registry()
	reg.GaugeFunc("mpc_service_pool_workers", func() float64 { return float64(s.pool.Workers()) })
	reg.GaugeFunc("mpc_service_pool_queue_depth", func() float64 { return float64(s.pool.QueueDepth()) })
	reg.GaugeFunc("mpc_service_pool_queued", func() float64 { return float64(s.pool.Queued()) })
	reg.GaugeFunc("mpc_service_plan_cache_hits", func() float64 { return float64(s.plans.Stats().Hits) })
	reg.GaugeFunc("mpc_service_plan_cache_misses", func() float64 { return float64(s.plans.Stats().Misses) })
	reg.GaugeFunc("mpc_service_plan_cache_entries", func() float64 { return float64(s.plans.Stats().Entries) })
	reg.GaugeFunc("mpc_service_stats_cache_hits", func() float64 { return float64(s.stats.Stats().Hits) })
	reg.GaugeFunc("mpc_service_stats_cache_misses", func() float64 { return float64(s.stats.Stats().Misses) })
	reg.GaugeFunc("mpc_service_stats_cache_entries", func() float64 { return float64(s.stats.Stats().Entries) })
	reg.GaugeFunc("mpc_service_coalesced_requests", func() float64 { return float64(s.flight.Stats().Hits) })
	reg.GaugeFunc("mpc_service_drift_checks", func() float64 { return float64(s.drift.Checks()) })
	reg.GaugeFunc("mpc_service_drift_violations", func() float64 { return float64(s.drift.Violations()) })
	if s.breakerOn {
		// Worst state across the guarded runtimes: 0 closed, 1 half-open,
		// 2 open — an alerting threshold of >= 2 means "degrading now".
		reg.GaugeFunc("mpc_circuit_state", func() float64 { return float64(s.breakerState()) })
		reg.GaugeFunc("mpc_service_degraded_requests", func() float64 { return float64(s.degraded.Load()) })
	}
	if cfg.debugAddr != "" {
		s.startDebug(cfg.debugAddr)
	}
	return s
}

// startDebug binds the debug listener and serves the endpoint on it. Bind
// failure is not fatal: the service runs without a listener and DebugAddr
// reports "".
func (s *Service) startDebug(addr string) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return
	}
	mux := http.NewServeMux()
	mux.Handle("/", obs.Handler(nil, s.metrics.Registry(), obs.Default()))
	mux.HandleFunc("/debug/stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s.Stats()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	s.debugLn = ln
	s.debugSrv = &http.Server{Handler: mux}
	go s.debugSrv.Serve(ln)
}

// DebugAddr returns the bound address of the debug listener (see
// WithDebugListener), or "" when none is serving.
func (s *Service) DebugAddr() string {
	if s.debugLn == nil {
		return ""
	}
	return s.debugLn.Addr().String()
}

// DriftEvents returns the drift violations recorded so far (bounded to
// the most recent; see WithServiceDriftFactor). Nil without a monitor.
func (s *Service) DriftEvents() []DriftEvent {
	return s.drift.Events()
}

// Run executes one query through the service: the request is admitted to
// the bounded worker pool (or shed with ErrOverloaded), executed by Run
// with the service's caches attached, and recorded in the aggregate
// metrics. The returned Report is bit-identical to what a plain Run of the
// same request would produce, whether or not any cache was hit.
//
// ctx bounds the request's whole lifetime, queue wait included: when it is
// canceled before execution starts, the queued work is abandoned; when it
// is canceled mid-execution, Run returns immediately with ctx.Err() and
// the execution's result is discarded on completion. A nil ctx means
// context.Background().
//
// Concurrent identical requests are coalesced onto one execution by
// default — see WithRequestCoalescing.
func (s *Service) Run(ctx context.Context, q *Query, db *Database, opts ...RunOption) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("mpcquery: service request canceled: %w", err)
	}
	if s.bpDepth != nil && s.bpLimit > 0 && s.bpDepth() > s.bpLimit {
		s.metrics.RecordShed()
		return nil, fmt.Errorf("mpcquery: service admission: %w (transport send queue over limit)", ErrOverloaded)
	}
	if s.coalesceOn {
		// Resolve the options once to decide coalescing soundness and build
		// the identity key. A request carrying a DistributedRuntime is never
		// coalesced: in an SPMD group every rank must execute every run.
		// Caller-supplied options may panic; contain that here just as the
		// pooled execution path does, so the worker answer is an error.
		cfg, perr := resolveOpts(opts)
		if perr != nil {
			s.metrics.RecordFailure(0)
			return nil, perr
		}
		// A request carrying a trace or its own drift monitor must actually
		// execute — a coalesced completion would leave the caller's trace
		// empty and its monitor blind — so only plain requests coalesce.
		if cfg.net == nil && cfg.trace == nil && cfg.drift == nil {
			//lint:allow nondeterminism request-latency metric; service metrics are never fingerprinted
			start := time.Now()
			v, coalesced, err := s.flight.Do(s.requestKey(&cfg, q, db), func() (any, error) {
				return s.execute(ctx, q, db, opts)
			})
			rep, _ := v.(*Report)
			if coalesced {
				// A coalesced completion is a served request — it counts
				// toward throughput with its real wait latency — that moved
				// no bits of its own.
				if err != nil {
					//lint:allow nondeterminism request-latency metric; service metrics are never fingerprinted
					s.metrics.RecordFailure(time.Since(start))
				} else {
					//lint:allow nondeterminism request-latency metric; service metrics are never fingerprinted
					s.metrics.RecordSuccess(time.Since(start), 0, 0, 0)
				}
			}
			return rep, err
		}
	}
	return s.execute(ctx, q, db, opts)
}

// resolveOpts materializes a request's RunOptions into a runConfig,
// containing any panic from a caller-supplied option (the same
// containment the pooled execution path applies).
func resolveOpts(opts []RunOption) (cfg runConfig, perr error) {
	defer func() {
		if r := recover(); r != nil {
			perr = fmt.Errorf("mpcquery: service request panicked: %v", r)
		}
	}()
	cfg = defaultConfig()
	for _, opt := range opts {
		if opt != nil {
			opt(&cfg)
		}
	}
	return cfg, nil
}

// breakerFor returns (creating on first use) the circuit breaker guarding
// one distributed runtime.
func (s *Service) breakerFor(t engine.Transport) *service.Breaker {
	s.brMu.Lock()
	defer s.brMu.Unlock()
	b, ok := s.breakers[t]
	if !ok {
		b = service.NewBreaker(s.breakerThreshold, s.breakerCooldown)
		s.breakers[t] = b
	}
	return b
}

// breakerState reports the worst breaker state across the guarded
// runtimes (0 closed, 1 half-open, 2 open) for the mpc_circuit_state
// gauge.
func (s *Service) breakerState() service.BreakerState {
	s.brMu.Lock()
	defer s.brMu.Unlock()
	worst := service.BreakerClosed
	for _, b := range s.breakers {
		if st := b.State(); st > worst {
			worst = st
		}
	}
	return worst
}

// breakerTrips sums lifetime trips across the guarded runtimes.
func (s *Service) breakerTrips() int64 {
	s.brMu.Lock()
	defer s.brMu.Unlock()
	var n int64
	for _, b := range s.breakers {
		n += b.Trips()
	}
	return n
}

// execute admits one request to the pool and waits for its result or the
// context, recording metrics either way.
func (s *Service) execute(ctx context.Context, q *Query, db *Database, opts []RunOption) (*Report, error) {
	type outcome struct {
		rep *Report
		err error
	}
	ec := s.execCacheFor(db)
	runOpts := make([]RunOption, 0, len(opts)+4)
	runOpts = append(runOpts, withExecCache(ec))
	if s.drift != nil {
		// Prepended so a request's own WithDriftMonitor (in opts) wins.
		runOpts = append(runOpts, WithDriftMonitor(s.drift))
	}
	// Propagate the request deadline into the run: a distributed round
	// waiting on a wedged peer fails with ctx's error instead of holding a
	// worker for the full RoundTimeout. Prepended so a request's own
	// WithContext (in opts) wins.
	runOpts = append(runOpts, WithContext(ctx))
	runOpts = append(runOpts, opts...)

	// Circuit breaker: a request carrying a distributed runtime whose
	// breaker is open is downgraded to the in-process runtime — appended
	// last so it overrides the request's own WithRuntime — and its Report
	// marked Degraded. Closed (or probing half-open) breakers let the
	// request through and learn from its outcome.
	var br *service.Breaker
	degradedReq := false
	if s.breakerOn {
		cfg, perr := resolveOpts(runOpts)
		if perr != nil {
			s.metrics.RecordFailure(0)
			return nil, perr
		}
		if cfg.net != nil {
			br = s.breakerFor(cfg.net)
			if !br.Allow() {
				degradedReq = true
				runOpts = append(runOpts, WithRuntime(nil))
			}
		}
	}

	//lint:allow nondeterminism request-latency metric; service metrics are never fingerprinted
	start := time.Now()
	ch := make(chan outcome, 1)
	var abandoned atomic.Bool
	if err := s.pool.Submit(func() {
		if abandoned.Load() {
			return // caller already gone; skip the work entirely
		}
		// Run converts strategy panics into *StrategyError, but a panic can
		// fire before its recover boundary (e.g. a caller-supplied RunOption
		// that panics). Contain it here so one bad request neither kills
		// the worker nor leaves this caller blocked on ch forever.
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{nil, fmt.Errorf("mpcquery: service request panicked: %v", r)}
			}
		}()
		rep, err := Run(q, db, runOpts...)
		if br != nil && !degradedReq {
			// A degraded run never touched the runtime, so it teaches the
			// breaker nothing. Of runs that did, only peer unavailability is
			// a dependency failure; strategy errors and canceled contexts
			// say nothing about the runtime.
			switch {
			case err == nil:
				br.RecordSuccess()
			case errors.Is(err, ErrPeerUnavailable):
				br.RecordFailure()
			}
		}
		if degradedReq && err == nil {
			rep.Degraded = true
			s.degraded.Add(1)
		}
		ch <- outcome{rep, err}
	}); err != nil {
		if errors.Is(err, ErrOverloaded) {
			s.metrics.RecordShed()
		}
		return nil, fmt.Errorf("mpcquery: service admission: %w", err)
	}
	select {
	case out := <-ch:
		//lint:allow nondeterminism request-latency metric; service metrics are never fingerprinted
		latency := time.Since(start)
		if out.err != nil {
			s.metrics.RecordFailure(latency)
			return nil, out.err
		}
		s.metrics.RecordSuccess(latency, out.rep.TotalBits, out.rep.MaxLoadBits, out.rep.Rounds)
		return out.rep, nil
	case <-ctx.Done():
		abandoned.Store(true)
		//lint:allow nondeterminism request-latency metric; service metrics are never fingerprinted
		s.metrics.RecordFailure(time.Since(start))
		return nil, fmt.Errorf("mpcquery: service request canceled: %w", ctx.Err())
	}
}

// requestKey renders a request's full identity — strategy and every
// result-affecting option, the query, and the database's registration id
// and version — for single-flight coalescing. Two requests with equal keys
// are guaranteed (by seeded determinism) to produce bit-identical Reports.
func (s *Service) requestKey(cfg *runConfig, q *Query, db *Database) string {
	qs := "<nil>"
	if q != nil {
		qs = q.Name + "|" + q.String()
	}
	// Per-atom tuple counts fingerprint growth, exactly as the plan cache's
	// composePrefix does (deterministic order: the query's atoms, never a
	// map walk).
	sizes := ""
	if q != nil && db != nil {
		for _, a := range q.Atoms {
			if rel, ok := db.Relations[a.Name]; ok {
				sizes += fmt.Sprintf("|%d", rel.NumTuples())
			} else {
				sizes += "|-"
			}
		}
	}
	return fmt.Sprintf("%#v|p%d|s%d|cap%g|h%d|rb%d|agg%#v|push%t|%s|%s%s",
		cfg.strategy, cfg.servers, cfg.seed, cfg.loadCapBits, cfg.heavyCap,
		cfg.roundBudget, cfg.aggregate, cfg.aggPushdown, qs, s.dbTag(db), sizes)
}

// dbTag registers db (if new) and returns its identity-and-version tag —
// the field both cache keys and coalescing keys embed so entries die with
// InvalidateDatabase.
func (s *Service) dbTag(db *Database) string {
	if db == nil {
		return "db<nil>"
	}
	s.mu.Lock()
	e, ok := s.dbs[db]
	if !ok {
		s.nextID++
		e = &dbEntry{id: s.nextID}
		s.dbs[db] = e
		s.dbOrder = append(s.dbOrder, db)
		if len(s.dbOrder) > maxTrackedDatabases {
			oldest := s.dbOrder[0]
			s.dbOrder = s.dbOrder[1:]
			if old, ok := s.dbs[oldest]; ok {
				delete(s.dbs, oldest)
				defer s.purgeDB(old)
			}
		}
	}
	tag := fmt.Sprintf("db%d.v%d", e.id, e.version)
	s.mu.Unlock()
	return tag
}

// execCacheFor returns the cache handle for one request, tagging keys with
// the database's identity and current version. With both caches disabled it
// returns nil and Run behaves exactly like the plain path.
func (s *Service) execCacheFor(db *Database) *execCache {
	if db == nil || (!s.planOn && !s.statsOn) {
		return nil
	}
	return &execCache{
		plans:   s.plans,
		stats:   s.stats,
		planOn:  s.planOn,
		statsOn: s.statsOn,
		dbTag:   s.dbTag(db),
	}
}

// InvalidateDatabase declares that db's contents changed in place, bumping
// its version so every cached plan and statistic derived from it becomes
// unreachable, and purging the now-dead entries from both caches.
// Appending tuples to a relation is detected automatically (relation sizes
// are part of every cache key); only in-place value edits need this call.
func (s *Service) InvalidateDatabase(db *Database) {
	s.mu.Lock()
	e, ok := s.dbs[db]
	var stale dbEntry
	if ok {
		stale = *e
		e.version++
	}
	s.mu.Unlock()
	if ok {
		s.purgeDB(&stale)
	}
}

// purgeDB drops every cache entry keyed under one database version. Keys
// embed the tag as a |-delimited field, so the substring match is exact.
func (s *Service) purgeDB(e *dbEntry) {
	tag := fmt.Sprintf("|db%d.v%d|", e.id, e.version)
	s.plans.PurgeMatching(tag)
	s.stats.PurgeMatching(tag)
}

// ServiceCacheStats reports one cache's effectiveness (hits, misses,
// entries, evictions, and a HitRate method).
type ServiceCacheStats = service.CacheStats

// ServiceStats is a point-in-time snapshot of the service's aggregate
// behavior across every query it has served.
type ServiceStats struct {
	Completed int64 // queries that returned a Report
	Failed    int64 // queries that returned an error
	Shed      int64 // requests refused with ErrOverloaded

	Uptime     time.Duration
	Throughput float64 // completed queries per second of uptime

	// Wall-clock latency percentiles (queue wait + execution) over the most
	// recent queries.
	LatencyP50 time.Duration
	LatencyP95 time.Duration
	LatencyP99 time.Duration
	LatencyMax time.Duration

	TotalBits   float64 // Σ Report.TotalBits over the stream
	MaxLoadBits float64 // max Report.MaxLoadBits seen
	TotalRounds int64   // Σ Report.Rounds

	PlanCache  ServiceCacheStats
	StatsCache ServiceCacheStats

	// Request coalescing (WithRequestCoalescing): completed requests served
	// by another in-flight execution's result, and the fraction of all
	// resolved requests they represent.
	Coalesced    int64
	CoalesceRate float64

	// Drift monitoring (WithServiceDriftFactor): predicted rounds checked
	// against observed load, and checks whose ratio exceeded the factor.
	// Zero without a monitor.
	DriftChecks     int64
	DriftViolations int64

	// Circuit breaking (WithCircuitBreaker): requests answered by the
	// in-process fallback while a runtime's breaker was open, lifetime
	// breaker trips, and the worst current breaker state ("closed",
	// "half-open", "open"; "closed" when breaking is off or no runtime has
	// been seen).
	Degraded     int64
	BreakerTrips int64
	CircuitState string

	Workers    int // concurrent query executions allowed
	QueueDepth int // admission queue capacity
	Queued     int // requests waiting right now (snapshot)
}

// Stats returns the service's aggregate metrics.
func (s *Service) Stats() ServiceStats {
	sum := s.metrics.Snapshot()
	pc, sc := s.plans.Stats(), s.stats.Stats()
	fl := s.flight.Stats()
	return ServiceStats{
		Completed:       sum.Completed,
		Failed:          sum.Failed,
		Shed:            sum.Shed,
		Uptime:          sum.Uptime,
		Throughput:      sum.Throughput,
		LatencyP50:      sum.LatencyP50,
		LatencyP95:      sum.LatencyP95,
		LatencyP99:      sum.LatencyP99,
		LatencyMax:      sum.LatencyMax,
		TotalBits:       sum.TotalBits,
		MaxLoadBits:     sum.MaxLoadBits,
		TotalRounds:     sum.TotalRounds,
		PlanCache:       pc,
		StatsCache:      sc,
		Coalesced:       fl.Hits,
		CoalesceRate:    fl.HitRate(),
		DriftChecks:     s.drift.Checks(),
		DriftViolations: s.drift.Violations(),
		Degraded:        s.degraded.Load(),
		BreakerTrips:    s.breakerTrips(),
		CircuitState:    s.breakerState().String(),
		Workers:         s.pool.Workers(),
		QueueDepth:      s.pool.QueueDepth(),
		Queued:          s.pool.Queued(),
	}
}

// Close stops admission (subsequent Runs return ErrServiceClosed), waits
// for queued and in-flight queries to finish, releases the workers, and
// shuts down the debug listener, if any. Close is idempotent.
func (s *Service) Close() {
	if s.debugSrv != nil {
		s.debugSrv.Close()
	}
	s.pool.Close()
}
