package mpcquery

import (
	"math/rand"
	"sync"
	"testing"

	"mpcquery/internal/transport"
)

// streamChunkSweep is the chunk-size grid the streaming differential tests
// sweep: degenerate one-tuple chunks, a small prime that never divides the
// workload evenly, 0 (the engine default), and a chunk larger than any
// round's traffic (streaming machinery on, but nothing ever splits).
var streamChunkSweep = []int{1, 7, 0, 1 << 20}

// TestStreamingMatchesBarrier is the tentpole contract at the public API:
// for every strategy family and every chunk size, a WithStreaming run is
// bit-identical to the barrier run — same Report.Fingerprint (output, load
// vector, replication, abort flag), exactly the same TotalBits (not within
// epsilon: the accounting sums identical per-chunk integers), and the same
// deterministic trace structure (round skeleton, kernel-cache totals).
// Only wall-clock and PeakBufferedBytes may differ.
func TestStreamingMatchesBarrier(t *testing.T) {
	for _, sc := range distScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			baseTr := NewTrace()
			want, err := sc.run(WithTrace(baseTr))
			if err != nil {
				t.Fatal(err)
			}
			wantFP := want.Fingerprint()
			wantStruct := baseTr.Structure()

			for _, chunk := range streamChunkSweep {
				tr := NewTrace()
				rep, err := sc.run(WithStreaming(true), WithStreamChunk(chunk), WithTrace(tr))
				if err != nil {
					t.Fatalf("chunk=%d: %v", chunk, err)
				}
				if fp := rep.Fingerprint(); fp != wantFP {
					t.Errorf("chunk=%d fingerprint diverged\n got %s\nwant %s", chunk, fp, wantFP)
				}
				if rep.TotalBits != want.TotalBits {
					t.Errorf("chunk=%d TotalBits = %v, want exactly %v", chunk, rep.TotalBits, want.TotalBits)
				}
				if s := tr.Structure(); s != wantStruct {
					t.Errorf("chunk=%d trace structure diverged\n--- streaming ---\n%s--- barrier ---\n%s", chunk, s, wantStruct)
				}
			}
		})
	}
}

// TestStreamingDistributedMatchesInProcess runs a cross-section of the
// scenario table on a 3-rank TCP-loopback worker group with streaming on
// (small chunks, so frames actually split): every rank's Report must be
// bit-identical to the plain in-process barrier run, and the ranks' summed
// wire-charged bits must equal TotalBits exactly — chunk-granular framing
// changes frame counts, never charged bits.
func TestStreamingDistributedMatchesInProcess(t *testing.T) {
	const ranks = 3
	pick := map[string]bool{
		"hypercube":           true,
		"skewed-star":         true,
		"chain-plan":          true,
		"hypercube-agg-count": true,
	}
	for _, sc := range distScenarios() {
		if !pick[sc.name] {
			continue
		}
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			want, err := sc.run()
			if err != nil {
				t.Fatal(err)
			}
			wantFP := want.Fingerprint()

			addrs, err := transport.FreeLoopbackAddrs(ranks)
			if err != nil {
				t.Fatal(err)
			}
			var (
				wg    sync.WaitGroup
				fps   [ranks]string
				stats [ranks]TransportWireStats
				errs  [ranks]error
			)
			for r := 0; r < ranks; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					rt, err := DialRuntime(r, addrs)
					if err != nil {
						errs[r] = err
						return
					}
					defer rt.Close()
					rep, err := sc.run(WithRuntime(rt), WithStreaming(true), WithStreamChunk(7))
					if err != nil {
						errs[r] = err
						return
					}
					fps[r] = rep.Fingerprint()
					stats[r] = rt.WireStats()
				}(r)
			}
			wg.Wait()
			var charged int64
			for r := 0; r < ranks; r++ {
				if errs[r] != nil {
					t.Fatalf("rank %d: %v", r, errs[r])
				}
				if fps[r] != wantFP {
					t.Errorf("rank %d fingerprint diverged from in-process barrier run\n got %s\nwant %s", r, fps[r], wantFP)
				}
				charged += stats[r].ChargedBits()
			}
			if got := float64(charged); got != want.TotalBits {
				t.Errorf("Σ ranks charged bits = %v, Report.TotalBits = %v", got, want.TotalBits)
			}
		})
	}
}

// TestStreamingPeakMemoryRegression pins the reason streaming exists: on a
// star-skewed workload whose shuffle concentrates traffic, the streaming
// run's deterministic engine-buffer high-water must come in strictly below
// the barrier run's. (The quantified ≥40% gate lives in cmd/mpcload
// -benchstream; this is the always-on regression tripwire.)
func TestStreamingPeakMemoryRegression(t *testing.T) {
	q := Star(2)
	db := func() *Database {
		return SkewedStarDatabase(rand.New(rand.NewSource(77)), 2, 4000, 1<<12, map[int64]int{5: 800})
	}
	barrier, err := Run(q, db(), WithStrategy(HyperCube()), WithServers(16), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := Run(q, db(), WithStrategy(HyperCube()), WithServers(16), WithSeed(7),
		WithStreaming(true), WithStreamChunk(256))
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Fingerprint() != barrier.Fingerprint() {
		t.Fatalf("fingerprints diverged\n got %s\nwant %s", streamed.Fingerprint(), barrier.Fingerprint())
	}
	if barrier.PeakBufferedBytes <= 0 || streamed.PeakBufferedBytes <= 0 {
		t.Fatalf("peak gauges not wired: barrier=%d streamed=%d", barrier.PeakBufferedBytes, streamed.PeakBufferedBytes)
	}
	if streamed.PeakBufferedBytes >= barrier.PeakBufferedBytes {
		t.Errorf("streaming peak %d B >= barrier peak %d B; streaming must buffer less",
			streamed.PeakBufferedBytes, barrier.PeakBufferedBytes)
	}
}

// TestStreamingOutputSink covers the never-materialize path: a run with an
// output sink leaves Report.Output nil and streams chunks whose per-server
// digests reconcile exactly against the barrier run's materialized
// relation (which stacks per-server outputs in ascending server order) —
// and the sink runs themselves fingerprint identically whether the engine
// streams or not.
func TestStreamingOutputSink(t *testing.T) {
	q := Star(2)
	db := func() *Database {
		return SkewedStarDatabase(rand.New(rand.NewSource(102)), 2, 120, 1<<12, map[int64]int{5: 40})
	}
	base := []RunOption{WithStrategy(HyperCube()), WithServers(16), WithSeed(7)}

	want, err := Run(q, db(), base...)
	if err != nil {
		t.Fatal(err)
	}
	if want.Output == nil || want.Output.NumTuples() == 0 {
		t.Fatal("workload produced no output; sink test needs rows")
	}

	barrierSink := &DigestSink{}
	repA, err := Run(q, db(), append(base, WithOutputSink(barrierSink))...)
	if err != nil {
		t.Fatal(err)
	}
	streamSink := &DigestSink{}
	repB, err := Run(q, db(), append(base,
		WithOutputSink(streamSink), WithStreaming(true), WithStreamChunk(7))...)
	if err != nil {
		t.Fatal(err)
	}

	if repA.Output != nil || repB.Output != nil {
		t.Fatalf("sink runs materialized output: barrier=%v streaming=%v", repA.Output, repB.Output)
	}
	if fa, fb := repA.Fingerprint(), repB.Fingerprint(); fa != fb {
		t.Errorf("sink-run fingerprints diverged\n got %s\nwant %s", fb, fa)
	}
	if repA.TotalBits != want.TotalBits || repB.TotalBits != want.TotalBits {
		t.Errorf("sink changed accounting: barrier-sink=%v streaming-sink=%v materialized=%v",
			repA.TotalBits, repB.TotalBits, want.TotalBits)
	}
	if n := barrierSink.Tuples(); n != want.Output.NumTuples() {
		t.Errorf("sink saw %d rows, materialized output has %d", n, want.Output.NumTuples())
	}
	if da, dbg := barrierSink.Digest(), streamSink.Digest(); da != dbg {
		t.Errorf("sink digests diverged between engine modes: %x vs %x", da, dbg)
	}

	// Slice the materialized relation by the sink's per-server row counts
	// (ascending server order, Concat's stacking order) and refold each
	// slice: every per-server digest must match the streamed one.
	per := barrierSink.PerServer()
	vals := want.Output.Vals()
	arity := want.Output.Arity
	off := 0
	total := 0
	for _, sd := range per {
		total += sd.Rows
	}
	if total != want.Output.NumTuples() {
		t.Fatalf("per-server rows sum to %d, materialized output has %d", total, want.Output.NumTuples())
	}
	for _, sd := range per {
		ref := &DigestSink{}
		ref.Chunk(sd.Server, arity, vals[off*arity:(off+sd.Rows)*arity])
		if got := ref.PerServer()[0].Digest; got != sd.Digest {
			t.Errorf("server %d: streamed digest %x != materialized slice digest %x", sd.Server, sd.Digest, got)
		}
		off += sd.Rows
	}
}
