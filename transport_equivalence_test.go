package mpcquery

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mpcquery/internal/transport"
)

// distScenario is one strategy-family workload, rebuildable from fixed
// generator seeds so every rank (and the in-process reference) constructs
// an identical database — exactly what real worker processes do.
type distScenario struct {
	name string
	run  func(extra ...RunOption) (*Report, error)
}

// distScenarios covers every built-in strategy family: the distributed
// runtime is a delivery substrate under all of them, so all of them must
// be bit-identical across it.
func distScenarios() []distScenario {
	const seed = 7
	mk := func(q func() *Query, db func() *Database, s Strategy, fixed ...RunOption) distScenario {
		return distScenario{run: func(extra ...RunOption) (*Report, error) {
			opts := append([]RunOption{
				WithStrategy(s), WithServers(16), WithSeed(seed), WithHeavyCap(8),
			}, fixed...)
			return Run(q(), db(), append(opts, extra...)...)
		}}
	}
	named := func(name string, sc distScenario) distScenario { sc.name = name; return sc }
	triDB := func() *Database {
		return SkewedTriangleDatabase(rand.New(rand.NewSource(101)), 120, 1<<12, 7, 30)
	}
	starDB := func() *Database {
		return SkewedStarDatabase(rand.New(rand.NewSource(102)), 2, 120, 1<<12, map[int64]int{5: 40})
	}
	chainDB := func() *Database {
		return ChainMatchingDatabase(rand.New(rand.NewSource(103)), 4, 120, 1<<12)
	}
	matchDB := func(q func() *Query, n int64) func() *Database {
		return func() *Database { return MatchingDatabase(rand.New(rand.NewSource(104)), q(), 120, n) }
	}
	star2 := func() *Query { return Star(2) }
	chain4 := func() *Query { return Chain(4) }

	return []distScenario{
		named("hypercube", mk(Triangle, matchDB(Triangle, 1<<12), HyperCube())),
		named("hypercube-oblivious", mk(Triangle, matchDB(Triangle, 1<<12), HyperCubeOblivious())),
		named("hypercube-shares", mk(star2, starDB, HyperCubeShares(4, 2, 2))),
		named("skewed-star", mk(star2, starDB, SkewedStar())),
		named("skewed-star-sampled", mk(star2, starDB, SkewedStarSampled(30))),
		named("skewed-triangle", mk(Triangle, triDB, SkewedTriangle())),
		named("skewed-generic", mk(Triangle, triDB, SkewedGeneric())),
		named("chain-plan", mk(chain4, chainDB, ChainPlan(0.5))),
		named("greedy-plan", mk(chain4, chainDB, GreedyPlan(0.5))),
		named("greedy-plan-skew", mk(chain4, chainDB, GreedyPlanSkewAware(0.5))),
		named("auto", mk(chain4, chainDB, Auto())),
		named("selfjoin", distScenario{run: func(extra ...RunOption) (*Report, error) {
			edges := NewRelation("E", 2)
			rng := rand.New(rand.NewSource(105))
			for i := 0; i < 120; i++ {
				edges.Append(rng.Int63n(48), rng.Int63n(48))
			}
			db := NewDatabase(1 << 12)
			db.Add(edges)
			sj := SelfJoin("paths",
				Atom{Name: "E", Vars: []string{"x", "y"}},
				Atom{Name: "E", Vars: []string{"y", "z"}})
			return Run(nil, db, append([]RunOption{
				WithStrategy(sj), WithServers(16), WithSeed(seed)}, extra...)...)
		}}),
		named("hypercube-agg-count", mk(star2, starDB, HyperCube(),
			WithAggregate(AggCount, "", "z"))),
		named("hypercube-agg-sum-nopushdown", mk(star2, starDB, HyperCube(),
			WithAggregate(AggSum, "x1"), WithAggregatePushdown(false))),
		named("chain-plan-agg-count", mk(chain4, chainDB, ChainPlan(0.5),
			WithAggregate(AggCount, "", Chain(4).Vars()[0]))),
		// Byte-exact scenario: with a 16-bit domain (bitsPerValue a multiple
		// of 8) and no value outgrowing its width, charged model bits equal
		// billed payload bytes ×8 exactly, not just within padding.
		named("hypercube-16bit-exact", mk(Triangle, matchDB(Triangle, 1<<16), HyperCube())),
	}
}

// TestDistributedMatchesInProcess is the PR's headline contract at the
// public API: for every strategy family, a fixed-seed workload run by a
// 3-rank TCP-loopback worker group yields, at every rank, a Report
// bit-identical (Fingerprint) to the plain in-process run — and the
// ranks' summed wire-charged bits equal the Report's TotalBits exactly,
// with charged bits never exceeding billed payload bytes ×8.
func TestDistributedMatchesInProcess(t *testing.T) {
	const ranks = 3
	for _, sc := range distScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			want, err := sc.run()
			if err != nil {
				t.Fatal(err)
			}
			wantFP := want.Fingerprint()

			addrs, err := transport.FreeLoopbackAddrs(ranks)
			if err != nil {
				t.Fatal(err)
			}
			var (
				wg    sync.WaitGroup
				fps   [ranks]string
				stats [ranks]TransportWireStats
				errs  [ranks]error
			)
			for r := 0; r < ranks; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					rt, err := DialRuntime(r, addrs)
					if err != nil {
						errs[r] = err
						return
					}
					defer rt.Close()
					rep, err := sc.run(WithRuntime(rt))
					if err != nil {
						errs[r] = err
						return
					}
					fps[r] = rep.Fingerprint()
					stats[r] = rt.WireStats()
				}(r)
			}
			wg.Wait()
			for r, err := range errs {
				if err != nil {
					t.Fatalf("rank %d: %v", r, err)
				}
			}
			var charged, billed, payload, wire int64
			for r := 0; r < ranks; r++ {
				if fps[r] != wantFP {
					t.Errorf("rank %d fingerprint diverged from in-process run\n got %s\nwant %s", r, fps[r], wantFP)
				}
				if c, b := stats[r].ChargedBits(), stats[r].BilledPayloadBytes*8; c > b {
					t.Errorf("rank %d charged %d bits > billed payload %d bits", r, c, b)
				}
				charged += stats[r].ChargedBits()
				billed += stats[r].BilledPayloadBytes * 8
				payload += stats[r].PayloadBytes
				wire += stats[r].WireBytes
			}
			if got := float64(charged); got != want.TotalBits {
				t.Errorf("Σ ranks charged bits = %v, Report.TotalBits = %v", got, want.TotalBits)
			}
			if sc.name == "hypercube-16bit-exact" && charged != billed {
				t.Errorf("16-bit domain: charged %d bits != billed %d bits (padding should vanish)", charged, billed)
			}
			// The framing overhead on the wire is documented and bounded:
			// every serialized data frame costs DataFrameOverheadBytes.
			var frames, ctrl int64
			for r := 0; r < ranks; r++ {
				frames += stats[r].DataFrames
				ctrl += stats[r].CtrlFrames
			}
			if overhead := wire - int64(ranks)*payload - frames*int64(ranks)*transport.DataFrameOverheadBytes; ctrl == 0 || overhead < 0 {
				t.Errorf("wire accounting off: wire=%d payload=%d frames=%d ctrl=%d", wire, payload, frames, ctrl)
			}
		})
	}
}

// TestDistributedPeerFailure: a rank that joins the group and then goes
// away fails the other rank's Run with the ErrPeerUnavailable sentinel —
// surfaced as an error through the public API, never a panic, and not
// wrapped as an opaque StrategyError.
func TestDistributedPeerFailure(t *testing.T) {
	addrs, err := transport.FreeLoopbackAddrs(2)
	if err != nil {
		t.Fatal(err)
	}
	short := []RuntimeOption{
		WithRoundTimeout(300 * time.Millisecond),
		WithDialBudget(4, 10*time.Millisecond),
		WithWriteRetries(1),
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rt, err := DialRuntime(1, addrs, short...)
		if err != nil {
			return // rank 0 already failed; its assertion reports
		}
		// Join the group, then leave without ever delivering a round.
		time.Sleep(50 * time.Millisecond)
		rt.Close()
	}()
	rt, err := DialRuntime(0, addrs, short...)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer rt.Close()
	q := Triangle()
	db := MatchingDatabase(rand.New(rand.NewSource(1)), q, 60, 1<<12)
	_, err = Run(q, db, WithServers(8), WithRuntime(rt))
	wg.Wait()
	if err == nil {
		t.Fatal("Run with a vanished peer succeeded; want ErrPeerUnavailable")
	}
	if !errors.Is(err, ErrPeerUnavailable) && !errors.Is(err, ErrRuntimeClosed) {
		t.Fatalf("err = %v; want ErrPeerUnavailable or ErrRuntimeClosed", err)
	}
	var se *StrategyError
	if errors.As(err, &se) {
		t.Fatalf("peer failure surfaced as StrategyError: %v", err)
	}
}
