package mpcquery

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
)

func TestRunDefaultStrategy(t *testing.T) {
	q := Triangle()
	rng := rand.New(rand.NewSource(1))
	db := MatchingDatabase(rng, q, 1000, 1<<20)
	rep, err := Run(q, db, WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Strategy != "hypercube" {
		t.Errorf("strategy=%q want hypercube", rep.Strategy)
	}
	if rep.Rounds != 1 || len(rep.RoundStats) != 1 {
		t.Errorf("rounds=%d stats=%d want 1/1", rep.Rounds, len(rep.RoundStats))
	}
	if rep.MaxLoadBits <= 0 || rep.InputBits <= 0 || rep.ReplicationRate <= 0 {
		t.Errorf("degenerate report: %+v", rep)
	}
	if len(rep.Shares) != q.NumVars() {
		t.Errorf("shares=%v want one per variable", rep.Shares)
	}
	if rep.PredictedLoadBits <= 0 || rep.LoadRatio() <= 0 {
		t.Errorf("no load prediction: %+v", rep)
	}
	if !EqualRelations(rep.Output, SequentialAnswer(q, db)) {
		t.Fatal("output mismatch vs sequential join")
	}
	if s := rep.String(); !strings.Contains(s, "hypercube") || !strings.Contains(s, "rounds") {
		t.Errorf("report string: %q", s)
	}
}

// TestRunCrossStrategyChain is the redesign's raison d'être: every strategy
// applicable to the chain L4, executed through the one entry point, must
// produce the same output relation on a shared database.
func TestRunCrossStrategyChain(t *testing.T) {
	k := 4
	q := Chain(k)
	rng := rand.New(rand.NewSource(2))
	db := ChainMatchingDatabase(rng, k, 400, 1<<20)
	want := SequentialAnswer(q, db)

	shares := make([]int, q.NumVars())
	for i := range shares {
		shares[i] = 1
	}
	shares[q.VarIndex("x2")] = 4 // a deliberately bad manual grid

	strategies := []Strategy{
		HyperCube(),
		HyperCubeOblivious(),
		HyperCubeShares(shares...),
		SkewedGeneric(),
		ChainPlan(0),
		ChainPlan(0.5),
		GreedyPlan(0),
		GreedyPlanSkewAware(0),
		Auto(),
	}
	for _, s := range strategies {
		rep, err := Run(q, db, WithStrategy(s), WithServers(16), WithSeed(7))
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if !EqualRelations(rep.Output, want) {
			t.Errorf("%s: output %d tuples, want %d", s.Name(), rep.Output.NumTuples(), want.NumTuples())
		}
		if rep.Rounds < 1 || rep.MaxLoadBits <= 0 {
			t.Errorf("%s: degenerate report rounds=%d load=%v", s.Name(), rep.Rounds, rep.MaxLoadBits)
		}
	}
}

func TestRunStarStrategies(t *testing.T) {
	q := Star(2)
	rng := rand.New(rand.NewSource(3))
	db := SkewedStarDatabase(rng, 2, 400, 1<<20, map[int64]int{7: 200})
	want := SequentialAnswer(q, db)

	for _, s := range []Strategy{HyperCube(), SkewedStar(), SkewedStarSampled(100), SkewedGeneric()} {
		rep, err := Run(q, db, WithStrategy(s), WithServers(8), WithSeed(5))
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if !EqualRelations(rep.Output, want) {
			t.Errorf("%s: output mismatch", s.Name())
		}
	}

	rep, err := Run(q, db, WithStrategy(SkewedStar()), WithServers(8), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if rep.HeavyHitters == 0 {
		t.Error("skewed-star saw no heavy hitters on a half-skewed input")
	}
	sampled, err := Run(q, db, WithStrategy(SkewedStarSampled(100)), WithServers(8), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if sampled.Rounds != 2 {
		t.Errorf("sampled rounds=%d want 2 (stats round + data round)", sampled.Rounds)
	}
}

func TestRunTriangleStrategies(t *testing.T) {
	q := Triangle()
	rng := rand.New(rand.NewSource(4))
	db := SkewedTriangleDatabase(rng, 400, 1<<20, 5, 100)
	want := SequentialAnswer(q, db)
	for _, s := range []Strategy{HyperCube(), SkewedTriangle(), SkewedGeneric(), Auto()} {
		rep, err := Run(q, db, WithStrategy(s), WithServers(27), WithSeed(5))
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if !EqualRelations(rep.Output, want) {
			t.Errorf("%s: output mismatch", s.Name())
		}
	}
}

func TestRunSelfJoin(t *testing.T) {
	e := NewRelation("E", 2)
	e.Append(1, 2)
	e.Append(2, 3)
	e.Append(3, 1)
	db := NewDatabase(16)
	db.Add(e)
	atoms := []Atom{{Name: "E", Vars: []string{"x", "y"}}, {Name: "E", Vars: []string{"y", "z"}}}
	rep, err := Run(nil, db, WithStrategy(SelfJoin("paths", atoms...)), WithServers(4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Output.NumTuples() != 3 {
		t.Errorf("paths in a 3-cycle: %d want 3", rep.Output.NumTuples())
	}
	if rep.Strategy != "hypercube-selfjoin" {
		t.Errorf("strategy=%q", rep.Strategy)
	}
}

func TestRunAutoRoundBudget(t *testing.T) {
	k := 8
	q := Chain(k)
	rng := rand.New(rand.NewSource(6))
	db := ChainMatchingDatabase(rng, k, 300, 1<<20)
	want := SequentialAnswer(q, db)

	one, err := Run(q, db, WithStrategy(Auto()), WithServers(16), WithRoundBudget(1))
	if err != nil {
		t.Fatal(err)
	}
	if one.Rounds != 1 {
		t.Errorf("budget 1: rounds=%d", one.Rounds)
	}
	free, err := Run(q, db, WithStrategy(Auto()), WithServers(16))
	if err != nil {
		t.Fatal(err)
	}
	// With unlimited rounds the advisor trades rounds for load: more rounds,
	// never a worse prediction than the one-round pick.
	if free.Rounds <= 1 {
		t.Errorf("unlimited budget picked a %d-round plan for L8", free.Rounds)
	}
	if free.PredictedLoadBits > one.PredictedLoadBits {
		t.Errorf("unlimited budget predicted %v > budget-1 %v", free.PredictedLoadBits, one.PredictedLoadBits)
	}
	for _, rep := range []*Report{one, free} {
		if !EqualRelations(rep.Output, want) {
			t.Errorf("%s: output mismatch", rep.Strategy)
		}
		if !strings.HasPrefix(rep.Strategy, "auto → ") {
			t.Errorf("auto report should name the delegate, got %q", rep.Strategy)
		}
	}
}

func TestRunLoadCapAborts(t *testing.T) {
	q := Triangle()
	rng := rand.New(rand.NewSource(8))
	db := MatchingDatabase(rng, q, 500, 1<<20)
	rep, err := Run(q, db, WithLoadCap(1)) // 1 bit: everything exceeds it
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Aborted {
		t.Error("1-bit load cap not reported as exceeded")
	}
	ok, err := Run(q, db, WithLoadCap(1e12))
	if err != nil {
		t.Fatal(err)
	}
	if ok.Aborted {
		t.Error("huge load cap reported as exceeded")
	}
}

type panickyStrategy struct{}

func (panickyStrategy) Name() string                         { return "panicky" }
func (panickyStrategy) Execute(ExecContext) (*Report, error) { panic("boom") }

func TestRunErrorBoundaries(t *testing.T) {
	q := Triangle()
	rng := rand.New(rand.NewSource(9))
	db := MatchingDatabase(rng, q, 50, 1<<16)

	if _, err := Run(nil, db); !errors.Is(err, ErrNilQuery) {
		t.Errorf("nil query: %v", err)
	}
	if _, err := Run(q, nil); !errors.Is(err, ErrNilDatabase) {
		t.Errorf("nil database: %v", err)
	}
	if _, err := Run(q, db, WithServers(0)); err == nil {
		t.Error("0 servers accepted")
	}
	if _, err := Run(q, NewDatabase(16)); !errors.Is(err, ErrMissingRelation) {
		t.Errorf("empty database: %v", err)
	}
	bad := NewDatabase(16)
	bad.Add(NewRelation("S1", 3))
	bad.Add(NewRelation("S2", 2))
	bad.Add(NewRelation("S3", 2))
	if _, err := Run(q, bad); !errors.Is(err, ErrMissingRelation) {
		t.Errorf("arity mismatch: %v", err)
	}
	if _, err := Run(q, db, WithStrategy(HyperCubeShares(2, 2))); err == nil {
		t.Error("wrong share count accepted")
	}
	if _, err := Run(q, db, WithStrategy(SkewedStar())); err == nil {
		t.Error("skewed-star accepted a triangle query")
	}
	if _, err := Run(q, db, WithStrategy(ChainPlan(0))); err == nil {
		t.Error("chain-plan accepted a triangle query")
	}
	star := Star(2)
	sdb := SkewedStarDatabase(rand.New(rand.NewSource(10)), 2, 50, 1<<16, nil)
	if _, err := Run(star, sdb, WithStrategy(SkewedStarSampled(0))); err == nil {
		t.Error("sample size 0 accepted")
	}
	if _, err := Run(q, db, WithStrategy(GreedyPlan(1.5))); err == nil {
		t.Error("space exponent 1.5 accepted")
	}

	_, err := Run(q, db, WithStrategy(panickyStrategy{}))
	var se *StrategyError
	if !errors.As(err, &se) || se.Strategy != "panicky" {
		t.Errorf("panic not converted to StrategyError: %v", err)
	}
}
