// Generalized skew handling: the paper's specialized algorithms cover star
// and triangle queries; its reference [6] generalizes the technique to
// arbitrary conjunctive queries by splitting every variable's domain into
// heavy and light values and giving each heavy/light *pattern* its own
// HyperCube block. This example runs that pattern strategy on a query
// outside the specialized cases — the chain L3 with a heavy middle value —
// and compares it with the vanilla (skew-free-optimal) HyperCube, both
// through Run.
package main

import (
	"fmt"
	"math/rand"

	"mpcquery"
)

func main() {
	q := mpcquery.Chain(3) // S1(x0,x1), S2(x1,x2), S3(x2,x3)
	const (
		m = 6000
		p = 64
		n = 1 << 20
	)
	fmt.Printf("query %s, m=%d, p=%d\n\n", q, m, p)
	fmt.Printf("%-18s  %14s  %14s  %10s\n", "heavy middle frac", "vanilla L", "pattern L", "ratio")

	for _, frac := range []float64{0, 0.25, 0.5} {
		rng := rand.New(rand.NewSource(9))
		db := mpcquery.NewDatabase(n)
		db.Add(randomMatchingRel(rng, "S1", m, n))
		db.Add(heavyMiddle(rng, "S2", m, n, frac))
		db.Add(randomMatchingRel(rng, "S3", m, n))

		vanilla, err := mpcquery.Run(q, db, mpcquery.WithServers(p), mpcquery.WithSeed(3))
		if err != nil {
			panic(err)
		}
		pattern, err := mpcquery.Run(q, db,
			mpcquery.WithStrategy(mpcquery.SkewedGeneric()),
			mpcquery.WithHeavyCap(16),
			mpcquery.WithServers(p), mpcquery.WithSeed(3))
		if err != nil {
			panic(err)
		}

		if !mpcquery.EqualRelations(vanilla.Output, pattern.Output) {
			panic("outputs differ")
		}
		fmt.Printf("%-18.2f  %14.0f  %14.0f  %10.2f\n",
			frac, vanilla.MaxLoadBits, pattern.MaxLoadBits,
			vanilla.MaxLoadBits/pattern.MaxLoadBits)
	}

	fmt.Println("\nthe pattern algorithm peels the heavy value of x1 into its own")
	fmt.Println("server block (a residual join on the remaining variables). On L3")
	fmt.Println("the vanilla HyperCube is partially protected by the x2 hash, so the")
	fmt.Println("gain is moderate and grows with the heavy fraction; the dramatic")
	fmt.Println("separations live in examples/skewedjoin, where hashing has no")
	fmt.Println("second coordinate to hide behind. The point here is generality:")
	fmt.Println("chains are outside the paper's specialized star/triangle cases.")
}

func randomMatchingRel(rng *rand.Rand, name string, m int, n int64) *mpcquery.Relation {
	rel := mpcquery.NewRelation(name, 2)
	a := sample(rng, m, n)
	b := sample(rng, m, n)
	for i := 0; i < m; i++ {
		rel.Append(a[i], b[i])
	}
	return rel
}

// heavyMiddle builds S2 where frac of the tuples share x1 = 7.
func heavyMiddle(rng *rand.Rand, name string, m int, n int64, frac float64) *mpcquery.Relation {
	rel := mpcquery.NewRelation(name, 2)
	heavy := int(frac * float64(m))
	left := sample(rng, m, n)
	right := sample(rng, m, n)
	for i := 0; i < m; i++ {
		if i < heavy {
			rel.Append(7, right[i])
		} else {
			rel.Append(left[i], right[i])
		}
	}
	return rel
}

func sample(rng *rand.Rand, m int, n int64) []int64 {
	seen := make(map[int64]bool, m)
	out := make([]int64, 0, m)
	for len(out) < m {
		v := rng.Int63n(n)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
