// Self-joins (footnote 2 of the paper): the model formally excludes
// repeated relation names, but the paper notes the restriction is without
// loss of generality — rename the occurrences apart and copy the relation.
// The SelfJoin strategy packages that reduction: it carries its own query,
// so Run takes a nil *Query. This example computes graph patterns inside a
// single edge relation E with the one-round HyperCube algorithm:
//
//   - length-2 paths  E(x,y), E(y,z)
//   - triangles       E(x,y), E(y,z), E(z,x)
package main

import (
	"fmt"
	"math/rand"

	"mpcquery"
)

func main() {
	const (
		vertices = 800
		edges    = 6000
		p        = 64
	)
	rng := rand.New(rand.NewSource(13))
	db := mpcquery.NewDatabase(vertices)
	e := mpcquery.NewRelation("E", 2)
	for i := 0; i < edges; i++ {
		u := rng.Int63n(vertices)
		v := rng.Int63n(vertices)
		for v == u {
			v = rng.Int63n(vertices)
		}
		e.Append(u, v)
	}
	db.Add(e)
	fmt.Printf("random digraph: %d vertices, %d edges, p=%d servers\n\n", vertices, edges, p)

	patterns := []struct {
		name  string
		atoms []mpcquery.Atom
	}{
		{"length-2 paths", []mpcquery.Atom{
			{Name: "E", Vars: []string{"x", "y"}},
			{Name: "E", Vars: []string{"y", "z"}},
		}},
		{"triangles", []mpcquery.Atom{
			{Name: "E", Vars: []string{"x", "y"}},
			{Name: "E", Vars: []string{"y", "z"}},
			{Name: "E", Vars: []string{"z", "x"}},
		}},
	}
	for _, pat := range patterns {
		q, _ := mpcquery.DesugarSelfJoins(pat.name, pat.atoms)
		rep, err := mpcquery.Run(nil, db,
			mpcquery.WithStrategy(mpcquery.SelfJoin(pat.name, pat.atoms...)),
			mpcquery.WithServers(p), mpcquery.WithSeed(7))
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-16s desugared to %s\n", pat.name, q)
		fmt.Printf("%-16s %d matches, max load %.0f bits, replication %.2f\n\n",
			"", rep.Output.NumTuples(), rep.MaxLoadBits, rep.ReplicationRate)
	}

	fmt.Println("each E-copy is a renamed view of the same relation — the paper's")
	fmt.Println("reduction costs at most an ℓ-times larger input, nothing else.")
}
