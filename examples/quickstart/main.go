// Quickstart: compute the triangle query C3 = S1(x1,x2), S2(x2,x3),
// S3(x3,x1) with the one-round HyperCube algorithm on 64 simulated servers
// and compare the measured maximum load against the paper's M/p^{2/3} bound
// (Section 3, the headline one-round result).
package main

import (
	"fmt"
	"math"
	"math/rand"

	"mpcquery"
)

func main() {
	q := mpcquery.Triangle()
	fmt.Println("query:", q)

	rng := rand.New(rand.NewSource(7))
	const (
		m = 20000   // tuples per relation
		n = 1 << 20 // domain size
	)
	db := mpcquery.MatchingDatabase(rng, q, m, n)
	fmt.Printf("generated 3 random matchings with %d tuples each (%.0f bits total)\n\n",
		m, db.TotalBits())

	for _, p := range []int{8, 64, 512} {
		plan := mpcquery.PlanHyperCube(q, db, p)
		res := mpcquery.RunHyperCube(q, db, p, 42)
		M := db.TotalBits() / 3
		bound := M / math.Pow(float64(p), 2.0/3)
		fmt.Printf("p=%4d  shares=%v  measured L=%8.0f bits  M/p^(2/3)=%8.0f  ratio=%.2f\n",
			p, plan.Shares, res.MaxLoadBits, bound, res.MaxLoadBits/bound)
	}

	// Correctness: the union of per-server outputs equals a sequential join.
	res := mpcquery.RunHyperCube(q, db, 64, 42)
	want := mpcquery.SequentialAnswer(q, db)
	fmt.Printf("\noutput %d tuples; matches sequential join: %v\n",
		res.Output.NumTuples(), res.Output.NumTuples() == want.NumTuples())
	fmt.Printf("replication rate: %.2f (each input bit sent ≈p^(1/3) times)\n",
		res.ReplicationRate)
}
