// Quickstart: compute the triangle query C3 = S1(x1,x2), S2(x2,x3),
// S3(x3,x1) with the one-round HyperCube algorithm on 64 simulated servers
// and compare the measured maximum load against the paper's M/p^{2/3} bound
// (Section 3, the headline one-round result).
//
// Everything goes through the unified entry point: Run(q, db, opts...)
// returns one Report whatever the strategy.
package main

import (
	"fmt"
	"math"
	"math/rand"

	"mpcquery"
)

func main() {
	q := mpcquery.Triangle()
	fmt.Println("query:", q)

	rng := rand.New(rand.NewSource(7))
	const (
		m = 20000   // tuples per relation
		n = 1 << 20 // domain size
	)
	db := mpcquery.MatchingDatabase(rng, q, m, n)
	fmt.Printf("generated 3 random matchings with %d tuples each (%.0f bits total)\n\n",
		m, db.TotalBits())

	for _, p := range []int{8, 64, 512} {
		rep, err := mpcquery.Run(q, db, mpcquery.WithServers(p), mpcquery.WithSeed(42))
		if err != nil {
			panic(err)
		}
		M := db.TotalBits() / 3
		bound := M / math.Pow(float64(p), 2.0/3)
		fmt.Printf("p=%4d  shares=%v  measured L=%8.0f bits  M/p^(2/3)=%8.0f  ratio=%.2f\n",
			p, rep.Shares, rep.MaxLoadBits, bound, rep.MaxLoadBits/bound)
	}

	// Correctness: the union of per-server outputs equals a sequential join.
	rep, err := mpcquery.Run(q, db, mpcquery.WithServers(64), mpcquery.WithSeed(42))
	if err != nil {
		panic(err)
	}
	want := mpcquery.SequentialAnswer(q, db)
	fmt.Printf("\noutput %d tuples; matches sequential join: %v\n",
		rep.Output.NumTuples(), mpcquery.EqualRelations(rep.Output, want))
	fmt.Printf("replication rate: %.2f (each input bit sent ≈p^(1/3) times)\n",
		rep.ReplicationRate)
}
