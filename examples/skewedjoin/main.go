// Skewed join (Example 4.1): the simple join q(x,y,z) = S1(x,z), S2(y,z)
// where a growing fraction of both relations shares a single z-value.
// Three algorithms face the same input:
//
//   - the naive parallel hash join (all shares on z), which collapses to
//     load Θ(M) because every heavy tuple lands on one server;
//   - the skew-oblivious HyperCube with the worst-case shares of LP (18),
//     which holds M/p^{1/3} regardless of the data;
//   - the skew-aware algorithm of Section 4.2.1, which knows the heavy
//     hitters and computes their residual Cartesian products on dedicated
//     server groups, tracking the optimal bound (20).
package main

import (
	"fmt"
	"math/rand"

	"mpcquery"
	"mpcquery/internal/data"
)

func main() {
	q := mpcquery.Star(2) // S1(z,x1), S2(z,x2): the simple join
	const (
		m = 8000
		p = 16
		n = 1 << 20
	)
	fmt.Printf("query %s, m=%d tuples per relation, p=%d servers\n\n", q, m, p)
	fmt.Printf("%-14s  %14s  %14s  %14s  %12s\n",
		"heavy frac", "naive L(bits)", "oblivious L", "skew-aware L", "LB (20)")

	for _, frac := range []float64{0, 0.25, 0.5, 1.0} {
		rng := rand.New(rand.NewSource(11))
		heavy := map[int64]int{}
		if frac > 0 {
			heavy[7] = int(frac * float64(m))
		}
		db := mpcquery.SkewedStarDatabase(rng, 2, m, n, heavy)

		// Naive hash join: hash both relations on z only.
		shares := []int{1, 1, 1}
		shares[q.VarIndex("z")] = p
		naive := mpcquery.RunHyperCubeWithShares(q, db, shares, 3)

		oblivious := mpcquery.RunHyperCubeOblivious(q, db, p, 3)
		aware := mpcquery.RunSkewedStar(q, db, p, 3)

		freq := make([]map[int64]float64, 2)
		for j, a := range q.Atoms {
			rel := db.Get(a.Name)
			freq[j] = data.FrequenciesBits(data.ColumnFrequencies(rel, 0), 2, n)
		}
		lb := mpcquery.StarSkewLB(freq, p)

		fmt.Printf("%-14.2f  %14.0f  %14.0f  %14.0f  %12.0f\n",
			frac, naive.MaxLoadBits, oblivious.MaxLoadBits, aware.MaxLoadBits, lb)
	}

	fmt.Println("\nreading the table: the naive join degrades linearly with the heavy")
	fmt.Println("fraction (at frac=1 one server receives all 2m tuples), while the")
	fmt.Println("skew-aware algorithm stays within a constant of the lower bound.")
}
