// Skewed join (Example 4.1): the simple join q(x,y,z) = S1(x,z), S2(y,z)
// where a growing fraction of both relations shares a single z-value.
// Three strategies face the same input through the one Run entry point:
//
//   - HyperCubeShares with all shares on z — the naive parallel hash join,
//     which collapses to load Θ(M) because every heavy tuple lands on one
//     server;
//   - HyperCubeOblivious — the worst-case shares of LP (18), which hold
//     M/p^{1/3} regardless of the data;
//   - SkewedStar — the Section 4.2.1 algorithm, which knows the heavy
//     hitters and computes their residual Cartesian products on dedicated
//     server groups, tracking the optimal bound (20).
package main

import (
	"fmt"
	"math/rand"

	"mpcquery"
)

func main() {
	q := mpcquery.Star(2) // S1(z,x1), S2(z,x2): the simple join
	const (
		m = 8000
		p = 16
		n = 1 << 20
	)
	fmt.Printf("query %s, m=%d tuples per relation, p=%d servers\n\n", q, m, p)
	fmt.Printf("%-14s  %14s  %14s  %14s  %12s\n",
		"heavy frac", "naive L(bits)", "oblivious L", "skew-aware L", "LB (20)")

	// Naive parallel hash join: all shares on z.
	shares := []int{1, 1, 1}
	shares[q.VarIndex("z")] = p

	for _, frac := range []float64{0, 0.25, 0.5, 1.0} {
		rng := rand.New(rand.NewSource(11))
		heavy := map[int64]int{}
		if frac > 0 {
			heavy[7] = int(frac * float64(m))
		}
		db := mpcquery.SkewedStarDatabase(rng, 2, m, n, heavy)

		loads := make(map[string]float64, 3)
		for name, s := range map[string]mpcquery.Strategy{
			"naive":     mpcquery.HyperCubeShares(shares...),
			"oblivious": mpcquery.HyperCubeOblivious(),
			"aware":     mpcquery.SkewedStar(),
		} {
			rep, err := mpcquery.Run(q, db,
				mpcquery.WithStrategy(s), mpcquery.WithServers(p), mpcquery.WithSeed(3))
			if err != nil {
				panic(err)
			}
			loads[name] = rep.MaxLoadBits
		}

		freq := make([]map[int64]float64, 2)
		for j, a := range q.Atoms {
			rel := db.Get(a.Name)
			freq[j] = mpcquery.FrequenciesBits(mpcquery.ColumnFrequencies(rel, 0), 2, n)
		}
		lb := mpcquery.StarSkewLB(freq, p)

		fmt.Printf("%-14.2f  %14.0f  %14.0f  %14.0f  %12.0f\n",
			frac, loads["naive"], loads["oblivious"], loads["aware"], lb)
	}

	fmt.Println("\nreading the table: the naive join degrades linearly with the heavy")
	fmt.Println("fraction (at frac=1 one server receives all 2m tuples), while the")
	fmt.Println("skew-aware algorithm stays within a constant of the lower bound.")
}
