// Example aggregation: COUNT over a skewed join with pre-shuffle partial
// aggregation — the workload where combining tuples before the shuffle
// provably shrinks communication.
//
// The query is the simple join T2(z,x1,x2) = S1(z,x1), S2(z,x2) over data
// with two hot z values; COUNT(*) GROUP BY z therefore has a few groups with
// enormous multiplicity. The example runs it twice, with and without
// pushdown, and prints the identical group counts next to the very different
// bits-on-the-wire.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mpcquery"
)

func main() {
	const m = 2000
	rng := rand.New(rand.NewSource(1))
	// Hot values 7 and 11 carry three quarters of both relations.
	db := mpcquery.SkewedStarDatabase(rng, 2, m, 1<<16, map[int64]int{7: m / 2, 11: m / 4})

	aq := mpcquery.AggregateQuery{
		Join:    mpcquery.Star(2), // T2(z,x1,x2) :- S1(z,x1), S2(z,x2)
		Op:      mpcquery.AggCount,
		GroupBy: []string{"z"},
	}

	pushdown, err := mpcquery.RunAggregate(aq, db, mpcquery.WithServers(64))
	if err != nil {
		log.Fatal(err)
	}
	raw, err := mpcquery.RunAggregate(aq, db, mpcquery.WithServers(64),
		mpcquery.WithAggregatePushdown(false))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("count(*) by z, top groups (identical in both runs):")
	for i := 0; i < pushdown.Output.NumTuples() && i < 5; i++ {
		fmt.Printf("  z=%-6d count=%d\n", pushdown.Output.At(i, 0), pushdown.Output.At(i, 1))
	}
	fmt.Printf("\nvalues identical: %t\n", mpcquery.EqualRelations(pushdown.Output, raw.Output))
	fmt.Printf("total bits, no pushdown : %14.0f\n", raw.TotalBits)
	fmt.Printf("total bits, pushdown    : %14.0f  (%.0fx less)\n",
		pushdown.TotalBits, raw.TotalBits/pushdown.TotalBits)
	fmt.Printf("bits saved by combining : %14.0f\n", pushdown.AggregateBitsSaved)
}
