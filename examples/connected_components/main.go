// Connected components in the MPC model (Theorem 5.20 context): the paper
// proves that any tuple-based MPC algorithm with load O(m/p^{1−ε}) needs
// Ω(log p) rounds to label connected components. This example runs two
// executable algorithms on the theorem's hard instances — disjoint paths of
// growing diameter — and shows the round counts:
//
//   - min-label propagation takes Θ(diameter) rounds;
//   - min-pointer doubling takes O(log diameter) iterations,
//     within a constant of the lower bound.
package main

import (
	"fmt"
	"math"
	"math/rand"

	"mpcquery"
)

func main() {
	const (
		p        = 32
		perLayer = 50
	)
	fmt.Printf("p=%d servers; graphs are %d disjoint paths of length d\n\n", p, perLayer)
	fmt.Printf("%8s  %16s  %18s  %12s  %14s\n",
		"diam d", "label-prop rnds", "pointer-jump rnds", "log2(d)", "PJ load (bits)")

	rng := rand.New(rand.NewSource(3))
	for _, d := range []int{8, 16, 32, 64, 128} {
		g := mpcquery.LayeredPathGraph(rng, d, perLayer)
		lp := mpcquery.ConnectedComponentsLabelProp(g, p, 1)
		pj := mpcquery.ConnectedComponentsPointerJump(g, p, 1)

		// Both must agree with ground truth.
		for v, want := range g.ComponentsSequential() {
			if lp.Labels[v] != want || pj.Labels[v] != want {
				panic("component labels disagree with sequential union-find")
			}
		}
		fmt.Printf("%8d  %16d  %18d  %12.1f  %14.0f\n",
			d, lp.IterRounds, pj.IterRounds, math.Log2(float64(d)), pj.MaxLoadBits)
	}

	fmt.Println("\nreading the table: label propagation scales linearly with the")
	fmt.Println("diameter, pointer jumping logarithmically — no algorithm at this")
	fmt.Println("load can beat Ω(log p) rounds (Theorem 5.20).")
}
