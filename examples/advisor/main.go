// Strategy advisor: the paper's Table 3 is a tradeoff — more rounds buy
// lower load. This example asks the advisor for every executable strategy
// for the chain L16 on 64 servers, picks the best option under different
// round budgets, and actually executes the chosen plans to confirm the
// predictions.
package main

import (
	"fmt"
	"math/rand"

	"mpcquery"
)

func main() {
	const (
		k = 16
		m = 5000
		p = 64
		n = 1 << 20
	)
	q := mpcquery.Chain(k)
	rng := rand.New(rand.NewSource(21))
	db := mpcquery.ChainMatchingDatabase(rng, k, m, n)
	M := make([]float64, q.NumAtoms())
	for j, a := range q.Atoms {
		M[j] = db.Get(a.Name).SizeBits(n)
	}

	fmt.Printf("strategies for %s on p=%d (M=%.0f bits per relation):\n\n", q.Name, p, M[0])
	opts := mpcquery.Advise(q, M, p)
	for _, o := range opts {
		tag := ""
		if o.SkewRobust {
			tag = "  [skew-robust]"
		}
		fmt.Printf("  %-44s rounds=%d  predicted load=%10.0f bits%s\n",
			o.Name, o.Rounds, o.PredictedLoadBits, tag)
	}

	fmt.Println("\nexecuting the best option under each round budget:")
	for _, budget := range []int{1, 2, 0} {
		opt, ok := mpcquery.BestStrategy(opts, budget)
		if !ok {
			continue
		}
		label := fmt.Sprintf("budget %d", budget)
		if budget == 0 {
			label = "unlimited"
		}
		var measured float64
		var rounds int
		if opt.Plan != nil {
			res := mpcquery.ExecutePlan(opt.Plan, db, p, 3)
			measured, rounds = res.MaxLoadBits, res.Rounds
			if res.Output.NumTuples() != m {
				panic("wrong output")
			}
		} else {
			res := mpcquery.RunHyperCube(q, db, p, 3)
			measured, rounds = res.MaxLoadBits, 1
		}
		fmt.Printf("  %-10s -> %-44s measured load %10.0f bits in %d round(s)\n",
			label, opt.Name, measured, rounds)
	}

	fmt.Println("\nreading the output: one round costs M/p^{1/8} for L16 (τ*=8);")
	fmt.Println("two rounds (ε=1/2) drop to ≈M/√p; four rounds (ε=0) reach ≈M/p.")
}
