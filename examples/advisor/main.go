// Strategy advisor: the paper's Table 3 is a tradeoff — more rounds buy
// lower load. This example asks the advisor for every executable strategy
// for the chain L16 on 64 servers, then lets the Auto strategy pick and
// execute the best option under different round budgets through the one
// Run entry point, confirming the predictions against measured loads.
package main

import (
	"fmt"
	"math/rand"

	"mpcquery"
)

func main() {
	const (
		k = 16
		m = 5000
		p = 64
		n = 1 << 20
	)
	q := mpcquery.Chain(k)
	rng := rand.New(rand.NewSource(21))
	db := mpcquery.ChainMatchingDatabase(rng, k, m, n)
	M := make([]float64, q.NumAtoms())
	for j, a := range q.Atoms {
		M[j] = db.Get(a.Name).SizeBits(n)
	}

	fmt.Printf("strategies for %s on p=%d (M=%.0f bits per relation):\n\n", q.Name, p, M[0])
	for _, o := range mpcquery.Advise(q, M, p) {
		tag := ""
		if o.SkewRobust {
			tag = "  [skew-robust]"
		}
		fmt.Printf("  %-44s rounds=%d  predicted load=%10.0f bits%s\n",
			o.Name, o.Rounds, o.PredictedLoadBits, tag)
	}

	fmt.Println("\nexecuting Auto under each round budget:")
	for _, budget := range []int{1, 2, 0} {
		rep, err := mpcquery.Run(q, db,
			mpcquery.WithStrategy(mpcquery.Auto()),
			mpcquery.WithServers(p),
			mpcquery.WithSeed(3),
			mpcquery.WithRoundBudget(budget))
		if err != nil {
			panic(err)
		}
		if rep.Output.NumTuples() != m {
			panic("wrong output")
		}
		label := fmt.Sprintf("budget %d", budget)
		if budget == 0 {
			label = "unlimited"
		}
		fmt.Printf("  %-10s -> %-44s measured load %10.0f bits in %d round(s)\n",
			label, rep.Strategy, rep.MaxLoadBits, rep.Rounds)
	}

	fmt.Println("\nreading the output: one round costs M/p^{1/8} for L16 (τ*=8);")
	fmt.Println("two rounds (ε=1/2) drop to ≈M/√p; four rounds (ε=0) reach ≈M/p.")
}
