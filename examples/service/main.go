// Serving concurrent workloads: a Service wraps the one-shot Run path in a
// long-lived, concurrency-safe query service with a plan cache (HyperCube
// shares, skew layouts, advisor choices keyed by Query.ShapeKey plus a
// database fingerprint), a statistics cache (the sampling round's
// heavy-hitter estimates — skipped on a hit but still charged to the
// Report), and admission control (a bounded worker pool that sheds load
// with ErrOverloaded instead of queueing without bound).
//
// This example fires the same skewed star join from many client goroutines:
// the first request pays for statistics and layout, every later one reuses
// them, and all Reports are bit-identical to a plain Run.
package main

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"mpcquery"
)

func main() {
	const (
		m = 2000
		n = 1 << 18
		p = 32
	)
	q := mpcquery.Star(2)
	rng := rand.New(rand.NewSource(1))
	db := mpcquery.SkewedStarDatabase(rng, 2, m, n, map[int64]int{7: m / 8, 9: m / 16})

	svc := mpcquery.NewService(
		mpcquery.WithServiceWorkers(4),
		mpcquery.WithServiceQueue(64),
	)
	defer svc.Close()

	// The reference: a plain, uncached Run of the same request.
	want, err := mpcquery.Run(q, db,
		mpcquery.WithStrategy(mpcquery.SkewedStarSampled(200)),
		mpcquery.WithServers(p), mpcquery.WithSeed(5))
	if err != nil {
		panic(err)
	}

	const clients = 16
	var wg sync.WaitGroup
	mismatches := 0
	var mu sync.Mutex
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rep, err := svc.Run(context.Background(), q, db,
				mpcquery.WithStrategy(mpcquery.SkewedStarSampled(200)),
				mpcquery.WithServers(p), mpcquery.WithSeed(5))
			if errors.Is(err, mpcquery.ErrOverloaded) {
				return // a real client would back off and retry
			}
			if err != nil {
				panic(err)
			}
			if rep.Fingerprint() != want.Fingerprint() {
				mu.Lock()
				mismatches++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	st := svc.Stats()
	fmt.Printf("served %d queries (%d shed), %d bit-identical mismatches\n",
		st.Completed, st.Shed, mismatches)
	fmt.Printf("plan cache: %d hits / %d misses (rate %.2f)\n",
		st.PlanCache.Hits, st.PlanCache.Misses, st.PlanCache.HitRate())
	fmt.Printf("stats cache: %d hits / %d misses — sampling round executed once, charged %d times\n",
		st.StatsCache.Hits, st.StatsCache.Misses, st.Completed)
	fmt.Printf("latency p50 %v, p99 %v; total communication %.0f bits over the stream\n",
		st.LatencyP50, st.LatencyP99, st.TotalBits)
	fmt.Printf("every report still meters the stats round: rounds=%d (1 stats + %d data)\n",
		want.Rounds, want.Rounds-1)
}
