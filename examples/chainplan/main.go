// Multi-round chains (Example 5.2): the chain query L16 cannot be computed
// in one round with load O(M/p^{1/2}) — τ*(L16) = 8 forces load M/p^{1/8}.
// But a two-round bushy plan whose operators are L4 blocks (each with
// τ* = 2) achieves load O(M/p^{1/2}), and at ε=0 a four-round plan of
// binary joins achieves O(M/p). This example executes both through
// Run(..., WithStrategy(ChainPlan(ε))) and prints the Report's per-round
// measured loads, alongside the (ε,r)-plan round lower bound which matches
// exactly (Corollary 5.15). (mpcplan -query "..." -eps 0.5 prints the plan
// tree itself.)
package main

import (
	"fmt"
	"math"
	"math/rand"

	"mpcquery"
)

func main() {
	const (
		k = 16
		m = 10000
		p = 64
		n = 1 << 20
	)
	q := mpcquery.Chain(k)
	rng := rand.New(rand.NewSource(5))
	db := mpcquery.ChainMatchingDatabase(rng, k, m, n)
	M := db.Get("S1").SizeBits(n)
	fmt.Printf("query L%d, m=%d tuples per relation (M=%.0f bits), p=%d servers\n\n", k, m, M, p)

	for _, eps := range []float64{0.5, 0} {
		rep, err := mpcquery.Run(q, db,
			mpcquery.WithStrategy(mpcquery.ChainPlan(eps)),
			mpcquery.WithServers(p), mpcquery.WithSeed(9))
		if err != nil {
			panic(err)
		}
		fmt.Printf("ε=%.1f: executed %d rounds (formula ⌈log_kε k⌉ = %d)\n",
			eps, rep.Rounds, mpcquery.ChainRounds(k, eps))
		target := M / math.Pow(p, 1-eps)
		for _, rs := range rep.RoundStats {
			fmt.Printf("  round %d: max load %8.0f bits (target M/p^{1-ε} = %.0f, ratio %.2f)\n",
				rs.Round, rs.MaxLoadBits, target, rs.MaxLoadBits/target)
		}
		fmt.Printf("  output: %d tuples (want %d)\n\n", rep.Output.NumTuples(), m)
	}

	// The one-round alternative pays for it in load: τ*(L16)=8.
	one, err := mpcquery.Run(q, db, mpcquery.WithServers(p), mpcquery.WithSeed(9))
	if err != nil {
		panic(err)
	}
	fmt.Printf("one-round HyperCube for comparison: load %.0f bits (M/p^{1/8} = %.0f)\n",
		one.MaxLoadBits, M/math.Pow(p, 1.0/8))
}
