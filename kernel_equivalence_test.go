package mpcquery

import (
	"math/rand"
	"testing"

	"mpcquery/internal/localjoin"
)

// TestKernelFingerprintIdenticalToBaselinePerStrategy is the whole-system
// equivalence pin for the columnar join kernel: every strategy family is
// executed twice on identical inputs and seeds — once with the kernel, once
// with the frozen baseline evaluator (localjoin.SetBaselineForTest) — and
// the two Reports must have bit-identical Fingerprints. Fingerprint hashes
// the output tuples in order and renders every float as its exact bit
// pattern, so this asserts that the kernel changes nothing observable: not
// the answer, not its order, not a single bit of the communication
// accounting.
func TestKernelFingerprintIdenticalToBaselinePerStrategy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := 400
	n := int64(1 << 14)

	tri := Triangle()
	triSkew := SkewedTriangleDatabase(rng, m, n, 7, m/4)
	star := Star(2)
	starSkew := SkewedStarDatabase(rng, 2, m, n, map[int64]int{5: m / 4, 9: m / 8})
	chain := Chain(4)
	chainDB := ChainMatchingDatabase(rng, 4, m, n)
	triFree := MatchingDatabase(rng, tri, m, n)

	edges := NewRelation("E", 2)
	for i := 0; i < m; i++ {
		edges.Append(rng.Int63n(64), rng.Int63n(64))
	}
	pathsDB := NewDatabase(n)
	pathsDB.Add(edges)
	pathAtoms := []Atom{
		{Name: "E", Vars: []string{"x", "y"}},
		{Name: "E", Vars: []string{"y", "z"}},
	}

	cases := []struct {
		name     string
		q        *Query
		db       *Database
		strategy Strategy
		extra    []RunOption
	}{
		{"hypercube", tri, triSkew, HyperCube(), nil},
		{"hypercube-oblivious", tri, triSkew, HyperCubeOblivious(), nil},
		{"hypercube-shares", tri, triFree, HyperCubeShares(4, 4, 4), nil},
		{"selfjoin", nil, pathsDB, SelfJoin("paths", pathAtoms...), nil},
		{"skewed-star", star, starSkew, SkewedStar(), nil},
		{"skewed-star-sampled", star, starSkew, SkewedStarSampled(100), nil},
		{"skewed-triangle", tri, triSkew, SkewedTriangle(), nil},
		{"skewed-generic", tri, triSkew, SkewedGeneric(), []RunOption{WithHeavyCap(4)}},
		{"chain-plan", chain, chainDB, ChainPlan(0), nil},
		{"greedy-plan", chain, chainDB, GreedyPlan(0), nil},
		{"greedy-plan-skewaware", chain, chainDB, GreedyPlanSkewAware(0), []RunOption{WithHeavyCap(4)}},
		{"auto", chain, chainDB, Auto(), nil},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := append([]RunOption{
				WithStrategy(tc.strategy), WithServers(32), WithSeed(3),
			}, tc.extra...)

			kernelRep, err := Run(tc.q, tc.db, opts...)
			if err != nil {
				t.Fatalf("kernel run: %v", err)
			}

			localjoin.SetBaselineForTest(true)
			baseRep, err := Run(tc.q, tc.db, opts...)
			localjoin.SetBaselineForTest(false)
			if err != nil {
				t.Fatalf("baseline run: %v", err)
			}

			kfp, bfp := kernelRep.Fingerprint(), baseRep.Fingerprint()
			if kfp != bfp {
				t.Errorf("kernel fingerprint diverges from baseline\nkernel:   %s\nbaseline: %s", kfp, bfp)
			}
			if !EqualRelations(kernelRep.Output, baseRep.Output) {
				t.Error("output multisets differ")
			}
		})
	}
}
