package mpcquery

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

// highDuplicateStarDB builds the workload pushdown shines on: a simple join
// T2 = S1(z,x1), S2(z,x2) where a handful of hot z values carry most tuples,
// so the join output has huge per-group multiplicity.
func highDuplicateStarDB(m int) *Database {
	rng := rand.New(rand.NewSource(21))
	heavy := map[int64]int{7: m / 2, 11: m / 4}
	return SkewedStarDatabase(rng, 2, m, int64(1<<16), heavy)
}

func aggFamilies() []Strategy {
	return []Strategy{
		HyperCube(), HyperCubeOblivious(), HyperCubeShares(4, 2, 2),
		GreedyPlan(0.5), Auto(),
	}
}

// TestAggregatePushdownValueIdentical pins the acceptance bar: pushdown and
// no-pushdown produce bit-identical final aggregate values for every
// supporting family, while pushdown strictly reduces TotalBits on
// high-duplicate data and meters the difference in AggregateBitsSaved.
func TestAggregatePushdownValueIdentical(t *testing.T) {
	q := Star(2)
	db := highDuplicateStarDB(400)
	aq := AggregateQuery{Join: q, Op: AggCount, GroupBy: []string{"z"}}
	for _, s := range aggFamilies() {
		on, err := RunAggregate(aq, db, WithStrategy(s), WithServers(16), WithSeed(3))
		if err != nil {
			t.Fatalf("%s pushdown: %v", s.Name(), err)
		}
		off, err := RunAggregate(aq, db, WithStrategy(s), WithServers(16), WithSeed(3),
			WithAggregatePushdown(false))
		if err != nil {
			t.Fatalf("%s no-pushdown: %v", s.Name(), err)
		}
		if !EqualRelations(on.Output, off.Output) {
			t.Errorf("%s: pushdown changed the aggregate values", s.Name())
		}
		if on.TotalBits >= off.TotalBits {
			t.Errorf("%s: pushdown did not reduce TotalBits (%f >= %f)", s.Name(), on.TotalBits, off.TotalBits)
		}
		if on.AggregateBitsSaved <= 0 {
			t.Errorf("%s: AggregateBitsSaved = %f, want > 0", s.Name(), on.AggregateBitsSaved)
		}
		if got := off.TotalBits - on.TotalBits; got != on.AggregateBitsSaved {
			t.Errorf("%s: saved bits %f do not equal the TotalBits delta %f",
				s.Name(), on.AggregateBitsSaved, got)
		}
		if off.AggregateBitsSaved != 0 {
			t.Errorf("%s: no-pushdown run claims savings", s.Name())
		}
		if on.Aggregate == "" || off.Aggregate == "" {
			t.Errorf("%s: Report.Aggregate not set", s.Name())
		}
		if on.Rounds != off.Rounds {
			t.Errorf("%s: pushdown changed the round count (%d vs %d)", s.Name(), on.Rounds, off.Rounds)
		}
	}
}

// TestAggregateRoundAccounting checks the aggregate shuffle is a metered
// round: one extra round over the plain join, present in RoundStats, with
// the report internally consistent.
func TestAggregateRoundAccounting(t *testing.T) {
	q := Star(2)
	db := highDuplicateStarDB(200)
	plain, err := Run(q, db, WithServers(16), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	agg, err := Run(q, db, WithServers(16), WithSeed(3), WithAggregate(AggCount, "", "z"))
	if err != nil {
		t.Fatal(err)
	}
	if agg.Rounds != plain.Rounds+1 {
		t.Fatalf("aggregate run used %d rounds, want %d", agg.Rounds, plain.Rounds+1)
	}
	if len(agg.RoundStats) != agg.Rounds {
		t.Fatalf("RoundStats has %d entries for %d rounds", len(agg.RoundStats), agg.Rounds)
	}
	if agg.RoundStats[0].MaxLoadBits != plain.MaxLoadBits {
		t.Fatal("the input shuffle round must be unchanged by aggregation")
	}
	if agg.TotalBits <= plain.TotalBits {
		t.Fatal("the aggregate shuffle must charge bits")
	}
}

func TestAggregateGlobalAndOps(t *testing.T) {
	q := Star(2)
	db := highDuplicateStarDB(120)
	join, err := Run(q, db, WithServers(8), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	// Global count = join size.
	rep, err := RunAggregate(AggregateQuery{Join: q, Op: AggCount}, db, WithServers(8), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Output.Arity != 1 || rep.Output.NumTuples() != 1 {
		t.Fatalf("global count output shape: arity %d, %d tuples", rep.Output.Arity, rep.Output.NumTuples())
	}
	if got, want := rep.Output.At(0, 0), int64(join.Output.NumTuples()); got != want {
		t.Fatalf("global count = %d, join has %d tuples", got, want)
	}
	// Min ≤ Max per group, same groups as count.
	mn, err := RunAggregate(AggregateQuery{Join: q, Op: AggMin, Of: "x1", GroupBy: []string{"z"}}, db,
		WithServers(8), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	mx, err := RunAggregate(AggregateQuery{Join: q, Op: AggMax, Of: "x1", GroupBy: []string{"z"}}, db,
		WithServers(8), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if mn.Output.NumTuples() != mx.Output.NumTuples() {
		t.Fatal("min and max must have the same groups")
	}
	for i := 0; i < mn.Output.NumTuples(); i++ {
		if mn.Output.At(i, 0) != mx.Output.At(i, 0) {
			t.Fatal("group keys diverged between min and max")
		}
		if mn.Output.At(i, 1) > mx.Output.At(i, 1) {
			t.Fatal("min exceeds max within a group")
		}
	}
}

func TestAggregateValidation(t *testing.T) {
	q := Star(2)
	db := highDuplicateStarDB(50)
	cases := []struct {
		name string
		opts []RunOption
	}{
		{"unknown var in group-by", []RunOption{WithAggregate(AggCount, "", "nope")}},
		{"unknown aggregated var", []RunOption{WithAggregate(AggSum, "nope")}},
		{"sum without var", []RunOption{WithAggregate(AggSum, "")}},
		{"count with var", []RunOption{WithAggregate(AggCount, "x1")}},
		{"duplicate group-by", []RunOption{WithAggregate(AggCount, "", "z", "z")}},
		{"bad op", []RunOption{WithAggregate(AggregateOp(99), "")}},
	}
	for _, c := range cases {
		if _, err := Run(q, db, c.opts...); !errors.Is(err, ErrInvalidAggregate) {
			t.Errorf("%s: err = %v, want ErrInvalidAggregate", c.name, err)
		}
	}
}

func TestAggregateUnsupportedStrategies(t *testing.T) {
	db := highDuplicateStarDB(50)
	unsupported := []struct {
		q *Query
		s Strategy
	}{
		{Star(2), SkewedStar()},
		{Star(2), SkewedStarSampled(20)},
		{Star(2), SkewedGeneric()},
		{Triangle(), SkewedTriangle()},
		{Star(2), GreedyPlanSkewAware(0.5)},
	}
	for _, c := range unsupported {
		d := db
		if c.q.NumAtoms() == 3 {
			d = MatchingDatabase(rand.New(rand.NewSource(1)), c.q, 50, 1<<12)
		}
		_, err := Run(c.q, d, WithStrategy(c.s), WithAggregate(AggCount, "", c.q.Vars()[0]))
		if !errors.Is(err, ErrAggregateUnsupported) {
			t.Errorf("%s: err = %v, want ErrAggregateUnsupported", c.s.Name(), err)
		}
	}
	// SelfJoin carries its own query.
	sj := SelfJoin("paths",
		Atom{Name: "S1", Vars: []string{"x", "y"}},
		Atom{Name: "S1", Vars: []string{"y", "z"}})
	if _, err := Run(nil, db, WithStrategy(sj), WithAggregate(AggCount, "")); !errors.Is(err, ErrAggregateUnsupported) {
		t.Errorf("selfjoin: err = %v, want ErrAggregateUnsupported", err)
	}
	// An external Strategy implementation must be refused before it executes
	// — otherwise its plain join output would be mislabeled as aggregate
	// rows.
	if _, err := Run(Star(2), db, WithStrategy(plainJoinStrategy{}), WithAggregate(AggCount, "", "z")); !errors.Is(err, ErrAggregateUnsupported) {
		t.Errorf("external strategy: err = %v, want ErrAggregateUnsupported", err)
	}
}

// plainJoinStrategy is a minimal external Strategy implementation that
// ignores ExecContext.Aggregate entirely; it must never be handed one.
type plainJoinStrategy struct{}

func (plainJoinStrategy) Name() string { return "external-plain" }
func (plainJoinStrategy) Execute(ctx ExecContext) (*Report, error) {
	return HyperCube().Execute(ExecContext{Query: ctx.Query, DB: ctx.DB, Servers: ctx.Servers, Seed: ctx.Seed})
}

// TestAggregateServiceCachingBitIdentical extends the service's caching
// contract to aggregates: cached and uncached aggregate runs fingerprint
// identically, and plan-cache hits occur (planning is aggregate-independent,
// so a plain run warms the cache for aggregate runs of the same shape).
func TestAggregateServiceCachingBitIdentical(t *testing.T) {
	q := Star(2)
	db := highDuplicateStarDB(150)
	aq := AggregateQuery{Join: q, Op: AggSum, Of: "x2", GroupBy: []string{"z"}}

	plain, err := RunAggregate(aq, db, WithServers(16), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(WithServiceWorkers(2))
	defer svc.Close()
	// Warm the plan cache with a plain join of the same shape.
	if _, err := svc.Run(context.Background(), q, db, WithServers(16), WithSeed(5)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		rep, err := svc.RunAggregate(context.Background(), aq, db, WithServers(16), WithSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Fingerprint() != plain.Fingerprint() {
			t.Fatalf("cached aggregate run %d diverged from the plain path", i)
		}
	}
	if hits := svc.Stats().PlanCache.Hits; hits == 0 {
		t.Fatal("aggregate runs must hit the shape-keyed plan cache")
	}
}
