package mpcquery

import (
	"testing"
)

// TestEqualRelationsRespectsMultiplicity pins the bag semantics of
// EqualRelations: {t, t} and {t} are different bags even though they are
// the same set.
func TestEqualRelationsRespectsMultiplicity(t *testing.T) {
	single := NewRelation("R", 2)
	single.Append(1, 2)
	double := NewRelation("R", 2)
	double.Append(1, 2)
	double.Append(1, 2)

	if EqualRelations(single, double) {
		t.Error("EqualRelations must distinguish {t} from {t, t}")
	}
	if !EqualRelations(double, double.Clone()) {
		t.Error("a bag must equal its clone")
	}
	if !EqualRelationsSet(single, double) {
		t.Error("EqualRelationsSet must ignore multiplicity")
	}
}

// TestDuplicateInputTuplesPreserveBagSemantics: when an input relation
// contains a duplicated tuple, the parallel run must reproduce the
// sequential answer's multiplicities exactly — HyperCube routes both copies
// to the same server, where the local join multiplies multiplicities just
// as the sequential evaluation does.
func TestDuplicateInputTuplesPreserveBagSemantics(t *testing.T) {
	q := MustParseQuery("q(x,y,z) :- R(x,y), S(y,z)")
	db := NewDatabase(1 << 10)
	r := NewRelation("R", 2)
	r.Append(1, 2)
	r.Append(1, 2) // duplicated input tuple
	r.Append(3, 4)
	s := NewRelation("S", 2)
	s.Append(2, 5)
	s.Append(4, 6)
	s.Append(4, 6) // duplicated on the other side too
	db.Add(r)
	db.Add(s)

	want := SequentialAnswer(q, db)
	// (1,2,5) appears twice (two copies of R(1,2)); (3,4,6) twice (two
	// copies of S(4,6)).
	if want.NumTuples() != 4 {
		t.Fatalf("sequential bag size=%d want 4", want.NumTuples())
	}

	for _, s := range []Strategy{HyperCube(), HyperCubeOblivious(), SkewedGeneric()} {
		rep, err := Run(q, db, WithStrategy(s), WithServers(8), WithSeed(7))
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if !EqualRelations(rep.Output, want) {
			t.Errorf("%s: parallel bag (%d tuples) differs from sequential bag (%d tuples)",
				s.Name(), rep.Output.NumTuples(), want.NumTuples())
		}
	}
}
