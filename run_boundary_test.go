package mpcquery

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"mpcquery/internal/localjoin"
	"mpcquery/internal/transport"
)

// panickingStrategy panics with val from Execute, exercising Run's recover
// boundary with an arbitrary panic value class.
type panickingStrategy struct {
	name string
	val  any
}

func (s *panickingStrategy) Name() string { return s.name }

func (s *panickingStrategy) Execute(ExecContext) (*Report, error) { panic(s.val) }

// TestRunRecoverBoundary injects each panic value class panicdiscipline
// distinguishes through a faulting strategy and checks the rewrap contract:
// wrapped kernel/transport sentinels keep their errors.Is identity, and
// everything else becomes a *StrategyError carrying the original value.
func TestRunRecoverBoundary(t *testing.T) {
	q := Triangle()
	rng := rand.New(rand.NewSource(1))
	db := MatchingDatabase(rng, q, 100, 1<<20)

	cases := []struct {
		name  string
		val   any
		check func(t *testing.T, err error)
	}{
		{
			name: "wrapped kernel sentinel keeps ErrMissingRelation",
			val:  &localjoin.MissingRelationError{Atom: "R"},
			check: func(t *testing.T, err error) {
				if !errors.Is(err, ErrMissingRelation) {
					t.Fatalf("errors.Is(err, ErrMissingRelation) = false for %v", err)
				}
				var se *StrategyError
				if errors.As(err, &se) {
					t.Fatalf("kernel sentinel leaked as StrategyError: %v", err)
				}
			},
		},
		{
			name: "fmt-wrapped kernel sentinel keeps ErrMissingRelation",
			val:  fmt.Errorf("localjoin: atom %q: %w", "R", localjoin.ErrMissingRelation),
			check: func(t *testing.T, err error) {
				if !errors.Is(err, ErrMissingRelation) {
					t.Fatalf("errors.Is(err, ErrMissingRelation) = false for %v", err)
				}
			},
		},
		{
			name: "wrapped transport sentinel keeps ErrPeerUnavailable",
			val:  fmt.Errorf("transport: rank 2: %w", transport.ErrPeerUnavailable),
			check: func(t *testing.T, err error) {
				if !errors.Is(err, ErrPeerUnavailable) {
					t.Fatalf("errors.Is(err, ErrPeerUnavailable) = false for %v", err)
				}
			},
		},
		{
			name: "wrapped session-closed sentinel keeps ErrRuntimeClosed",
			val:  fmt.Errorf("transport: round aborted: %w", transport.ErrSessionClosed),
			check: func(t *testing.T, err error) {
				if !errors.Is(err, ErrRuntimeClosed) {
					t.Fatalf("errors.Is(err, ErrRuntimeClosed) = false for %v", err)
				}
			},
		},
		{
			name: "string panic becomes StrategyError with the string",
			val:  "boom",
			check: func(t *testing.T, err error) {
				var se *StrategyError
				if !errors.As(err, &se) {
					t.Fatalf("err = %v (%T), want *StrategyError", err, err)
				}
				if se.Value != "boom" || se.Strategy != "faulting" {
					t.Fatalf("StrategyError = %+v, want Value \"boom\" Strategy \"faulting\"", se)
				}
			},
		},
		{
			name: "non-error non-string panic becomes StrategyError with the value",
			val:  42,
			check: func(t *testing.T, err error) {
				var se *StrategyError
				if !errors.As(err, &se) {
					t.Fatalf("err = %v (%T), want *StrategyError", err, err)
				}
				if se.Value != 42 {
					t.Fatalf("StrategyError.Value = %v, want 42", se.Value)
				}
			},
		},
		{
			name: "unrelated error panic becomes StrategyError, not a sentinel",
			val:  errors.New("some subsystem exploded"),
			check: func(t *testing.T, err error) {
				var se *StrategyError
				if !errors.As(err, &se) {
					t.Fatalf("err = %v (%T), want *StrategyError", err, err)
				}
				if errors.Is(err, ErrMissingRelation) || errors.Is(err, ErrPeerUnavailable) {
					t.Fatalf("unrelated error matched a sentinel: %v", err)
				}
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := Run(q, db, WithStrategy(&panickingStrategy{name: "faulting", val: tc.val}))
			if rep != nil {
				t.Fatalf("rep = %v, want nil after a strategy panic", rep)
			}
			if err == nil {
				t.Fatal("err = nil, want the rewrapped panic")
			}
			tc.check(t, err)
		})
	}
}
