// Package mpcquery is a Go implementation of the algorithms and bounds of
// Beame, Koutris and Suciu, "Communication Cost in Parallel Query
// Processing": the Massively Parallel Communication (MPC) model, the
// one-round HyperCube algorithm with LP-optimal shares, skew-aware
// algorithms for star and triangle queries, multi-round query plans, and
// the accompanying load and round lower bounds.
//
// The package is a façade over the internal packages; it exposes everything
// a downstream user needs:
//
//   - conjunctive queries: Chain, Cycle, Star, Triangle, Binom,
//     SpokedWheel, ParseQuery, and the hypergraph machinery on Query;
//   - workloads: MatchingDatabase and the skewed generators;
//   - algorithms: the single entry point Run with a Strategy per paper
//     algorithm — HyperCube variants (one round), SkewedStar /
//     SkewedTriangle / SkewedGeneric (one round with heavy-hitter
//     statistics), ChainPlan / GreedyPlan (multi-round), and Auto (the
//     advisor-driven pick) — all returning the unified Report; plus the
//     connected-components algorithms;
//   - bounds: TauStar, LoadLowerBound, ShareExponents, SpaceExponentLB,
//     round-count bounds, and the skewed bounds;
//   - the experiment harness regenerating every table in the paper;
//   - serving: NewService wraps Run in a long-lived, concurrency-safe query
//     service with plan and statistics caching (keyed by Query.ShapeKey and
//     a database fingerprint), admission control (ErrOverloaded), and
//     aggregate metrics — see Service and cmd/mpcload;
//   - aggregation: AggregateQuery / RunAggregate / WithAggregate compute
//     COUNT/SUM/MIN/MAX over a join with group-by, with pre-shuffle partial
//     aggregation (senders combine same-group tuples before routing —
//     WithAggregatePushdown, Report.AggregateBitsSaved).
//
// Quick start:
//
//	q := mpcquery.Triangle()
//	db := mpcquery.MatchingDatabase(rand.New(rand.NewSource(1)), q, 10000, 1<<20)
//	rep, err := mpcquery.Run(q, db, mpcquery.WithServers(64), mpcquery.WithSeed(42))
//	if err != nil { ... }
//	fmt.Println(rep.MaxLoadBits) // ≈ M/p^{2/3}
//
// The pre-Run free functions (RunHyperCube, RunSkewedStar, ExecutePlan, …)
// remain as thin deprecated wrappers; new code should go through Run.
package mpcquery

import (
	"io"
	"math/rand"

	"mpcquery/internal/advisor"

	"mpcquery/internal/bounds"
	"mpcquery/internal/core"
	"mpcquery/internal/data"
	"mpcquery/internal/entropy"
	"mpcquery/internal/experiments"
	"mpcquery/internal/multiround"
	"mpcquery/internal/packing"
	"mpcquery/internal/query"
	"mpcquery/internal/skew"
)

// ---- queries ---------------------------------------------------------------

// Query is a full conjunctive query without self-joins (Section 2.2).
type Query = query.Query

// Atom is one relational atom of a query.
type Atom = query.Atom

// NewQuery builds a query from atoms; relation names must be distinct.
func NewQuery(name string, atoms ...Atom) *Query { return query.New(name, atoms...) }

// ParseQuery reads datalog-like notation, e.g. "q(x,y,z) :- R(x,y), S(y,z)".
func ParseQuery(s string) (*Query, error) { return query.Parse(s) }

// MustParseQuery is ParseQuery that panics on error.
func MustParseQuery(s string) *Query { return query.MustParse(s) }

// Chain returns L_k, the chain query S1(x0,x1),…,Sk(x_{k−1},x_k).
func Chain(k int) *Query { return query.Chain(k) }

// Cycle returns C_k, the cycle query; Cycle(3) is the triangle.
func Cycle(k int) *Query { return query.Cycle(k) }

// Triangle returns C3 = S1(x1,x2), S2(x2,x3), S3(x3,x1).
func Triangle() *Query { return query.Triangle() }

// Star returns T_k = S1(z,x1),…,Sk(z,xk); Star(2) is the simple join.
func Star(k int) *Query { return query.Star(k) }

// Binom returns B_{k,m}: one m-ary atom per m-subset of k variables.
func Binom(k, m int) *Query { return query.Binom(k, m) }

// SpokedWheel returns SP_k = ∧ R_i(z,x_i), S_i(x_i,y_i) (Example 5.3).
func SpokedWheel(k int) *Query { return query.SpokedWheel(k) }

// ---- data ------------------------------------------------------------------

// Relation is a bag of fixed-arity tuples over int64 values.
type Relation = data.Relation

// Database is a set of named relations over a common domain [n].
type Database = data.Database

// Graph is an undirected graph given by an edge relation.
type Graph = data.Graph

// NewDatabase returns an empty database with domain size n.
func NewDatabase(n int64) *Database { return data.NewDatabase(n) }

// NewRelation returns an empty relation with the given name and arity.
func NewRelation(name string, arity int) *Relation { return data.NewRelation(name, arity) }

// MatchingDatabase generates one random matching per atom of q (m tuples
// each, domain [0,n)) — the paper's skew-free probability space.
func MatchingDatabase(rng *rand.Rand, q *Query, m int, n int64) *Database {
	return data.MatchingDatabase(rng, q, m, n)
}

// ChainMatchingDatabase generates composing matchings for L_k, so the full
// chain join has exactly m answers.
func ChainMatchingDatabase(rng *rand.Rand, k, m int, n int64) *Database {
	return data.ChainMatchingDatabase(rng, k, m, n)
}

// SkewedStarDatabase generates star-query data with planted heavy hitters
// on z (value → frequency).
func SkewedStarDatabase(rng *rand.Rand, k, m int, n int64, heavy map[int64]int) *Database {
	return data.SkewedStarDatabase(rng, k, m, n, heavy)
}

// SkewedTriangleDatabase plants one heavy x1 value in S1 and S3 of C3.
func SkewedTriangleDatabase(rng *rand.Rand, m int, n int64, heavyVal int64, heavyCount int) *Database {
	return data.SkewedTriangleDatabase(rng, m, n, heavyVal, heavyCount)
}

// LayeredPathGraph builds the Theorem 5.20 hard instance for connected
// components: perLayer disjoint paths of length k.
func LayeredPathGraph(rng *rand.Rand, k, perLayer int) *Graph {
	return data.LayeredPathGraph(rng, k, perLayer)
}

// ---- one-round algorithms ----------------------------------------------------

// HyperCubePlan is an executable HyperCube share configuration.
type HyperCubePlan = core.Plan

// HyperCubeResult reports loads and output of a one-round run.
type HyperCubeResult = core.Result

// PlanHyperCube computes LP-optimal shares (Theorem 3.4) for q on db.
func PlanHyperCube(q *Query, db *Database, p int) *HyperCubePlan {
	return core.PlanForDatabase(q, db, p, core.SkewFree)
}

// RunHyperCube plans and executes the one-round HyperCube algorithm.
//
// Deprecated: use Run with WithStrategy(HyperCube()); it returns the
// unified *Report and an error instead of panicking.
func RunHyperCube(q *Query, db *Database, p int, seed int64) *HyperCubeResult {
	return core.Run(q, db, p, seed, core.SkewFree)
}

// RunHyperCubeOblivious uses the skew-oblivious shares of LP (18).
//
// Deprecated: use Run with WithStrategy(HyperCubeOblivious()).
func RunHyperCubeOblivious(q *Query, db *Database, p int, seed int64) *HyperCubeResult {
	return core.Run(q, db, p, seed, core.SkewOblivious)
}

// RunHyperCubeWithShares executes with explicit per-variable integer shares.
//
// Deprecated: use Run with WithStrategy(HyperCubeShares(shares...)).
func RunHyperCubeWithShares(q *Query, db *Database, shares []int, seed int64) *HyperCubeResult {
	return core.RunWithShares(q, db, shares, seed)
}

// SequentialAnswer computes q(db) on one node (ground truth).
func SequentialAnswer(q *Query, db *Database) *Relation {
	return core.SequentialAnswer(q, db)
}

// SkewResult reports a skew-aware run.
type SkewResult = skew.Result

// RunSkewedStar computes a star query with the Section 4.2.1 heavy-hitter
// algorithm.
//
// Deprecated: use Run with WithStrategy(SkewedStar()).
func RunSkewedStar(q *Query, db *Database, p int, seed int64) *SkewResult {
	return skew.RunStar(q, db, p, seed)
}

// RunSkewedTriangle computes C3 with the Section 4.2.2 three-case algorithm.
//
// Deprecated: use Run with WithStrategy(SkewedTriangle()).
func RunSkewedTriangle(q *Query, db *Database, p int, seed int64) *SkewResult {
	return skew.RunTriangle(q, db, p, seed)
}

// ---- multi-round ----------------------------------------------------------

// MultiRoundPlan is a tree of one-round subqueries (Section 5.1).
type MultiRoundPlan = multiround.Plan

// MultiRoundResult reports an executed plan.
type MultiRoundResult = multiround.ExecResult

// CCResult reports a connected-components computation.
type CCResult = multiround.CCResult

// PlanChain builds the ⌈log_kε k⌉-round plan for L_k (Example 5.2).
//
// Deprecated: use Run with WithStrategy(ChainPlan(eps)) to build and
// execute in one call; PlanChain remains for plan inspection.
func PlanChain(k int, eps float64) *MultiRoundPlan { return multiround.ChainPlan(k, eps) }

// PlanGreedy builds a plan for any connected query at space exponent ε.
//
// Deprecated: use Run with WithStrategy(GreedyPlan(eps)) to build and
// execute in one call; PlanGreedy remains for plan inspection.
func PlanGreedy(q *Query, eps float64) *MultiRoundPlan { return multiround.GreedyPlan(q, eps) }

// ExecutePlan runs a multi-round plan with p servers per round.
//
// Deprecated: use Run with WithStrategy(ChainPlan(eps)) or
// WithStrategy(GreedyPlan(eps)).
func ExecutePlan(p *MultiRoundPlan, db *Database, servers int, seed int64) *MultiRoundResult {
	return multiround.Execute(p, db, servers, seed)
}

// ConnectedComponentsLabelProp runs min-label propagation (Θ(diameter)
// rounds).
func ConnectedComponentsLabelProp(g *Graph, p int, seed int64) *CCResult {
	return multiround.LabelPropagation(g, p, seed, 0)
}

// ConnectedComponentsPointerJump runs min-pointer doubling (O(log diameter)
// iterations on paths).
func ConnectedComponentsPointerJump(g *Graph, p int, seed int64) *CCResult {
	return multiround.PointerJumping(g, p, seed, 0)
}

// ---- bounds ----------------------------------------------------------------

// TauStar returns the fractional vertex covering number τ*(q) with an
// optimal fractional edge packing.
func TauStar(q *Query) (float64, []float64) { return packing.TauStar(q) }

// LoadLowerBound returns L_lower = max_u L(u,M,p) (Theorem 3.5) and the
// maximizing packing; M is per-atom sizes in bits.
func LoadLowerBound(q *Query, M []float64, p float64) (float64, []float64) {
	return packing.LLower(q, M, p)
}

// ShareExponents solves LP (10); the optimal one-round load is p^λ.
func ShareExponents(q *Query, M []float64, p float64) packing.Shares {
	return packing.ShareExponents(q, M, p)
}

// SpaceExponentLB returns 1 − 1/τ*(q) (Section 3.4).
func SpaceExponentLB(q *Query) float64 { return bounds.SpaceExponentLB(q) }

// ChainRounds returns the optimal round count ⌈log_kε k⌉ for L_k.
func ChainRounds(k int, eps float64) int { return bounds.ChainRounds(k, eps) }

// RoundsUB returns the Lemma 5.4 upper bound on rounds for any connected
// query at space exponent ε.
func RoundsUB(q *Query, eps float64) int { return bounds.RoundsUB(q, eps) }

// StarSkewLB evaluates the heavy-hitter lower bound (20) for star queries;
// freq[j] maps z-values to M_j(h) in bits.
func StarSkewLB(freq []map[int64]float64, p float64) float64 {
	return bounds.StarSkewLB(freq, p)
}

// ---- experiments -------------------------------------------------------------

// ExperimentConfig controls experiment sizes.
type ExperimentConfig = experiments.Config

// ExperimentTable is one regenerated paper artifact.
type ExperimentTable = experiments.Table

// RunAllExperiments regenerates every table/figure of the paper.
func RunAllExperiments(cfg ExperimentConfig) []*ExperimentTable {
	return experiments.All(cfg)
}

// ---- lower-bound machinery ---------------------------------------------------

// CappedResult reports a load-capped HyperCube run (Theorem 3.5 observed).
type CappedResult = core.CappedResult

// RunHyperCubeCapped executes the HyperCube routing but lets every server
// keep only capBits of received data, measuring the fraction of answers an
// algorithm with maximum load capBits can report (Theorems 3.5/3.7).
func RunHyperCubeCapped(q *Query, db *Database, p int, seed int64, capBits float64) *CappedResult {
	return core.RunPlanCapped(core.PlanForDatabase(q, db, p, core.SkewFree), db, seed, capBits)
}

// RunHyperCubeInputServers executes under the input-server model of
// Section 2.1 (relation j starts wholly on server j); loads match the
// partitioned-input run.
func RunHyperCubeInputServers(q *Query, db *Database, p int, seed int64) *HyperCubeResult {
	return core.RunPlanInputServers(core.PlanForDatabase(q, db, p, core.SkewFree), db, seed)
}

// AnswerFractionUB returns the Theorem 3.5 bound on the fraction of the
// expected answers reportable with maximum load L.
func AnswerFractionUB(q *Query, M []float64, p, L float64) float64 {
	return bounds.AnswerFractionUB(q, M, p, L)
}

// ---- information-theoretic toolkit -------------------------------------------

// MatchingEntropyBits returns the exact encoding size (entropy) of an
// a-dimensional matching with m tuples over [n] — equation (12).
func MatchingEntropyBits(arity int, m, n float64) float64 {
	return entropy.MatchingBits(arity, m, n)
}

// FriedgutCheck evaluates both sides of Friedgut's inequality (7) for the
// given per-atom weight vectors over [n]^{a_j} and fractional edge cover u.
func FriedgutCheck(q *Query, w [][]float64, n int, u []float64) (lhs, rhs float64) {
	return entropy.Friedgut(q, w, n, u)
}

// AGMBound returns the output-size bound Π_j |S_j|^{u_j} for a fractional
// edge cover u (Section 2.4).
func AGMBound(sizes, u []float64) float64 { return entropy.AGMBound(sizes, u) }

// RunSkewedGeneric computes any connected query in one round with
// heavy-hitter statistics, the generalized pattern algorithm sketched by
// the paper's reference [6]. maxHeavyPerVar caps the per-variable heavy
// sets (values beyond the cap are treated as light, which stays correct).
//
// Deprecated: use Run with WithStrategy(SkewedGeneric()) and
// WithHeavyCap(maxHeavyPerVar).
func RunSkewedGeneric(q *Query, db *Database, p int, seed int64, maxHeavyPerVar int) *SkewResult {
	return skew.RunGeneric(q, db, p, seed, maxHeavyPerVar)
}

// ReadRelationCSV reads a relation from comma-separated integer rows.
func ReadRelationCSV(r io.Reader, name string, arity int) (*Relation, error) {
	return data.ReadCSV(r, name, arity)
}

// ColumnFrequencies returns the frequency of every value in one column of a
// relation (m_j(h) of Section 4.2, as counts).
func ColumnFrequencies(rel *Relation, col int) map[int64]int {
	return data.ColumnFrequencies(rel, col)
}

// FrequenciesBits converts count frequencies to the paper's bit measure
// M_j(h) = a_j · m_j(h) · ⌈log₂ n⌉ — the input StarSkewLB expects.
func FrequenciesBits(freq map[int64]int, arity int, n int64) map[int64]float64 {
	return data.FrequenciesBits(freq, arity, n)
}

// ---- planning ------------------------------------------------------------

// AdviceOption is one executable strategy with predicted rounds and load.
type AdviceOption = advisor.Option

// Advise enumerates executable strategies for a connected query (one-round
// HyperCube variants and multi-round plans over an ε grid), sorted by round
// count — the Table 3 tradeoff as a planning service.
func Advise(q *Query, M []float64, p int) []AdviceOption {
	return advisor.Advise(q, M, p)
}

// BestStrategy picks the lowest-load option within a round budget
// (0 = unlimited).
func BestStrategy(opts []AdviceOption, maxRounds int) (AdviceOption, bool) {
	return advisor.Best(opts, maxRounds)
}

// RoundBounds summarizes what the paper's theory says about q at space
// exponent eps: the Lemma 5.4 upper bound and, for tree-like queries, the
// matching lower bound.
func RoundBounds(q *Query, eps float64) (ub, lb int) {
	return advisor.RoundBounds(q, eps)
}

// RunSkewedStarSampled runs the star algorithm end to end with statistics
// gathered by the one-round sampling protocol instead of an oracle.
//
// Deprecated: use Run with WithStrategy(SkewedStarSampled(sampleSize)).
func RunSkewedStarSampled(q *Query, db *Database, p int, seed int64, sampleSize int) *SkewResult {
	return skew.RunStarSampled(q, db, p, seed, sampleSize)
}

// DesugarSelfJoins renames repeated relation occurrences apart, returning a
// self-join-free query plus the new-name → original-name mapping
// (footnote 2 of the paper).
func DesugarSelfJoins(name string, atoms []Atom) (*Query, map[string]string) {
	return core.DesugarSelfJoins(name, atoms)
}

// RunHyperCubeSelfJoins evaluates a query that may repeat relation names
// (e.g. paths E(x,y),E(y,z) over one edge relation) with the one-round
// HyperCube algorithm.
//
// Deprecated: use Run(nil, db, WithStrategy(SelfJoin(name, atoms...))).
func RunHyperCubeSelfJoins(name string, atoms []Atom, db *Database, p int, seed int64) *HyperCubeResult {
	return core.RunWithSelfJoins(name, atoms, db, p, seed, core.SkewFree)
}

// ExecutePlanSkewAware runs a multi-round plan with every node computed by
// the generalized pattern algorithm, containing hotspots in skewed
// intermediate views (the paper leaves multi-round skew open; this is the
// engineering answer).
//
// Deprecated: use Run with WithStrategy(GreedyPlanSkewAware(eps)) and
// WithHeavyCap(maxHeavyPerVar).
func ExecutePlanSkewAware(p *MultiRoundPlan, db *Database, servers int, seed int64, maxHeavyPerVar int) *MultiRoundResult {
	return multiround.ExecuteSkewAware(p, db, servers, seed, maxHeavyPerVar)
}
