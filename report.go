package mpcquery

import (
	"fmt"
	"hash/fnv"
	"math"
	"strings"

	"mpcquery/internal/data"
)

// RoundStat is the communication cost of one MPC round.
type RoundStat struct {
	Round       int     // 1-based round number
	MaxLoadBits float64 // L_r: max bits received by any server in this round
}

// Report is the unified result of executing any Strategy through Run. It
// carries the paper's two cost dimensions — rounds and maximum load — plus
// the bookkeeping needed to compare strategies side by side (the Table 3
// tradeoff): total communication, replication rate, and the strategy's own
// load prediction next to the observed value.
//
// Fields that a strategy cannot report stay at their zero value
// (e.g. Shares is nil for multi-round plans, HeavyHitters is 0 for
// skew-free HyperCube).
type Report struct {
	Strategy string    // name of the executed strategy
	Query    *Query    // the query that was evaluated
	Output   *Relation // full query result (union over servers)

	Rounds     int         // communication rounds used
	RoundStats []RoundStat // per-round loads, when the strategy meters them

	ServersUsed int     // servers actually touched (may exceed requested p for skew-aware runs)
	MaxLoadBits float64 // L: max bits received by any server in any round
	TotalBits   float64 // total bits communicated over all rounds
	InputBits   float64 // Σ_j M_j, the input size in bits

	// ReplicationRate is TotalBits / InputBits — the paper's r.
	ReplicationRate float64

	// PredictedLoadBits is the strategy's own a-priori load prediction
	// (LP value or M/p^{1−ε}); 0 when the strategy makes no prediction.
	PredictedLoadBits float64

	Shares       []int // per-variable integer HyperCube shares, when one grid was used
	HeavyHitters int   // heavy hitters handled by a skew-aware strategy
	Aborted      bool  // a declared load cap (WithLoadCap) was exceeded

	// Aggregate describes the aggregate computed over the join output
	// ("count() by z"); empty for plain join runs. Output then holds the
	// sorted (group key..., value) relation instead of join tuples.
	Aggregate string
	// AggregateBitsSaved is the communication removed by pre-shuffle
	// partial aggregation (WithAggregatePushdown): the bits the raw
	// join-output rows would have cost minus the bits the folded partial
	// aggregates actually cost. 0 for plain runs and no-pushdown runs.
	AggregateBitsSaved float64

	// ComputeSeconds and CommSeconds split the run's wall-clock between the
	// computation phases (local evaluation, the localjoin kernel) and the
	// simulated communication (engine delivery). They are simulation
	// diagnostics, not model costs, and are deliberately excluded from
	// Fingerprint — two bit-identical runs will time differently.
	ComputeSeconds float64
	CommSeconds    float64

	// PeakBufferedBytes is the run's engine-buffer high-water across all
	// clusters and rounds: the most bytes simultaneously resident in
	// emitter batches and inbox arenas at any round boundary (sampled
	// deterministically, once per round, independent of goroutine
	// scheduling). It is the number streaming mode exists to shrink —
	// compare a WithStreaming run against a barrier run of the same
	// workload. A wall-clock-free memory diagnostic, deliberately excluded
	// from Fingerprint like the timing fields above.
	PeakBufferedBytes int64

	// Recovered counts the abandoned attempts a WithRecovery run replayed
	// past before this (successful) one: 0 for an undisturbed run. The
	// replayed run is bit-identical to an undisturbed one, so Recovered is
	// operational metadata, deliberately excluded from Fingerprint.
	Recovered int
	// Degraded is set by the service tier when a tripped circuit breaker
	// answered this request from the in-process runtime instead of the
	// (failing) distributed one. The answer is identical — the in-process
	// path is the reference semantics — so Degraded is likewise excluded
	// from Fingerprint.
	Degraded bool
}

// LoadRatio returns observed/predicted load, or 0 when there is no
// prediction — the "how tight is the theory" number the paper's tables
// report.
func (r *Report) LoadRatio() float64 {
	if r.PredictedLoadBits <= 0 {
		return 0
	}
	return r.MaxLoadBits / r.PredictedLoadBits
}

func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "strategy : %s\n", r.Strategy)
	if r.Query != nil {
		fmt.Fprintf(&b, "query    : %s\n", r.Query)
	}
	fmt.Fprintf(&b, "servers  : %d\n", r.ServersUsed)
	fmt.Fprintf(&b, "rounds   : %d\n", r.Rounds)
	fmt.Fprintf(&b, "max load : %.0f bits", r.MaxLoadBits)
	if r.PredictedLoadBits > 0 {
		fmt.Fprintf(&b, " (predicted %.0f, ratio %.2f)", r.PredictedLoadBits, r.LoadRatio())
	}
	b.WriteByte('\n')
	if len(r.RoundStats) > 1 { // one round would just repeat the max-load line
		for _, rs := range r.RoundStats {
			fmt.Fprintf(&b, "  round %d: %.0f bits\n", rs.Round, rs.MaxLoadBits)
		}
	}
	fmt.Fprintf(&b, "total    : %.0f bits, replication %.2f\n", r.TotalBits, r.ReplicationRate)
	if r.Aggregate != "" {
		fmt.Fprintf(&b, "aggregate: %s, pushdown saved %.0f bits\n", r.Aggregate, r.AggregateBitsSaved)
	}
	if r.Shares != nil {
		fmt.Fprintf(&b, "shares   : %v\n", r.Shares)
	}
	if r.HeavyHitters > 0 {
		fmt.Fprintf(&b, "heavy    : %d hitters\n", r.HeavyHitters)
	}
	if r.Aborted {
		b.WriteString("ABORTED  : load cap exceeded\n")
	}
	if r.Output != nil {
		fmt.Fprintf(&b, "output   : %d tuples\n", r.Output.NumTuples())
	}
	return b.String()
}

// Fingerprint returns a canonical digest of everything the Report asserts
// about a run: the executed strategy, rounds, per-round and aggregate bit
// accounting (floats rendered exactly, as hex bit patterns — no formatting
// rounding), shares, heavy-hitter count, abort flag, and an order-sensitive
// hash of the output tuples. Two runs with equal Fingerprints produced the
// same answer with the same communication cost.
//
// This is the equality the service's caching contract is stated in: a
// cached-plan or cached-statistics run must fingerprint identically to the
// uncached run, and the seeded-determinism tests use it to assert that
// concurrent same-seed runs are byte-identical. The output relation's Name
// is excluded (it is presentation, not result).
func (r *Report) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "strategy=%s|rounds=%d|servers=%d", r.Strategy, r.Rounds, r.ServersUsed)
	for _, rs := range r.RoundStats {
		fmt.Fprintf(&b, "|r%d=%x", rs.Round, math.Float64bits(rs.MaxLoadBits))
	}
	fmt.Fprintf(&b, "|L=%x|T=%x|I=%x|rep=%x|pred=%x",
		math.Float64bits(r.MaxLoadBits), math.Float64bits(r.TotalBits),
		math.Float64bits(r.InputBits), math.Float64bits(r.ReplicationRate),
		math.Float64bits(r.PredictedLoadBits))
	fmt.Fprintf(&b, "|shares=%v|heavy=%d|aborted=%t", r.Shares, r.HeavyHitters, r.Aborted)
	if r.Aggregate != "" {
		fmt.Fprintf(&b, "|agg=%s|aggsaved=%x", r.Aggregate, math.Float64bits(r.AggregateBitsSaved))
	}
	if r.Output == nil {
		b.WriteString("|out=nil")
	} else {
		h := fnv.New64a()
		var buf [8]byte
		m := r.Output.NumTuples()
		for i := 0; i < m; i++ {
			for _, v := range r.Output.Tuple(i) {
				for s := 0; s < 8; s++ {
					buf[s] = byte(uint64(v) >> (8 * s))
				}
				h.Write(buf[:])
			}
		}
		fmt.Fprintf(&b, "|out=%d/%d#%016x", m, r.Output.Arity, h.Sum64())
	}
	return b.String()
}

// EqualRelations reports whether two relations hold the same bag of tuples,
// in any order — the check every example and test uses to validate a
// parallel run against the sequential answer. The comparison is a true
// multiset compare: order is ignored but multiplicity is respected, so a
// run that duplicated or deduplicated output tuples does not pass.
func EqualRelations(a, b *Relation) bool { return data.EqualMultiset(a, b) }

// EqualRelationsSet reports whether two relations hold the same set of
// tuples, ignoring both order and multiplicity — the looser comparison for
// workloads whose inputs contain duplicate tuples (where per-server bag
// semantics and a deduplicating consumer may legitimately disagree on
// counts).
func EqualRelationsSet(a, b *Relation) bool { return data.Equal(a, b) }
