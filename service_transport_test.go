package mpcquery

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mpcquery/internal/transport"
)

// TestServiceContextCanceled asserts both cancellation points: a request
// arriving with a dead context is refused before admission, and a request
// canceled while queued returns the context error instead of blocking.
func TestServiceContextCanceled(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	q := Star(2)
	db := MatchingDatabase(rng, q, 2000, 1<<16)

	svc := NewService(WithRequestCoalescing(false), WithServiceWorkers(1), WithServiceQueue(8))
	defer svc.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.Run(ctx, q, db, WithServers(16)); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run with pre-canceled context = %v, want context.Canceled", err)
	}

	// Occupy the single worker, then cancel a queued request mid-wait.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		svc.Run(context.Background(), q, db, WithServers(16), WithStrategy(HyperCube()))
	}()
	ctx2, cancel2 := context.WithCancel(context.Background())
	wg.Add(1)
	var queuedErr error
	go func() {
		defer wg.Done()
		_, queuedErr = svc.Run(ctx2, q, db, WithServers(16), WithStrategy(HyperCubeOblivious()))
	}()
	cancel2()
	wg.Wait()
	// The queued request either lost the race with cancellation (error) or
	// had already completed; an error must carry the context cause.
	if queuedErr != nil && !errors.Is(queuedErr, context.Canceled) {
		t.Fatalf("canceled queued request = %v, want context.Canceled", queuedErr)
	}
}

// TestServiceRequestCoalescing asserts concurrent identical requests share
// one execution: at least one hit is counted, every caller still gets the
// bit-identical Report, and the stats expose the hit rate.
func TestServiceRequestCoalescing(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	q := Star(2)
	db := SkewedStarDatabase(rng, 2, 4000, 1<<16, map[int64]int{7: 500})

	svc := NewService(WithServiceWorkers(1), WithServiceQueue(64),
		WithPlanCaching(false), WithStatsCaching(false))
	defer svc.Close()

	const clients = 16
	fps := make([]string, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rep, err := svc.Run(context.Background(), q, db,
				WithStrategy(HyperCube()), WithServers(32), WithSeed(5))
			if err != nil {
				errs[c] = err
				return
			}
			fps[c] = rep.Fingerprint()
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}
	for c := 1; c < clients; c++ {
		if fps[c] != fps[0] {
			t.Fatalf("client %d got a different Report:\n%s\n%s", c, fps[c], fps[0])
		}
	}
	st := svc.Stats()
	if st.Coalesced == 0 {
		t.Fatal("no request was coalesced across 16 concurrent identical requests")
	}
	if st.CoalesceRate <= 0 || st.CoalesceRate >= 1 {
		t.Fatalf("CoalesceRate = %v, want in (0,1)", st.CoalesceRate)
	}
	if st.Completed != clients {
		t.Fatalf("Completed = %d, want %d (coalesced requests count as served)", st.Completed, clients)
	}
}

// TestServiceCoalescingDisjointKeys asserts requests that differ in any
// result-affecting option never share an execution: different seeds must
// yield their own Reports (loads differ seed to seed).
func TestServiceCoalescingDisjointKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	q := Star(2)
	db := MatchingDatabase(rng, q, 400, 1<<16)

	svc := NewService(WithPlanCaching(false), WithStatsCaching(false))
	defer svc.Close()

	a, err := svc.Run(context.Background(), q, db, WithStrategy(HyperCube()), WithServers(16), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := svc.Run(context.Background(), q, db, WithStrategy(HyperCube()), WithServers(16), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("different seeds produced identical fingerprints — key too coarse?")
	}
}

// TestServiceBackpressureShed asserts the transport-coupled admission
// valve: a send-queue depth probe over the limit sheds with ErrOverloaded
// (counted in Stats.Shed) and a healthy depth admits normally.
func TestServiceBackpressureShed(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	q := Star(2)
	db := MatchingDatabase(rng, q, 200, 1<<12)

	depth := int64(0)
	var mu sync.Mutex
	svc := NewService(WithSendQueueBackpressure(func() int64 {
		mu.Lock()
		defer mu.Unlock()
		return depth
	}, 1<<20))
	defer svc.Close()

	if _, err := svc.Run(context.Background(), q, db, WithServers(8)); err != nil {
		t.Fatalf("healthy depth must admit: %v", err)
	}
	mu.Lock()
	depth = 1<<20 + 1
	mu.Unlock()
	if _, err := svc.Run(context.Background(), q, db, WithServers(8)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-limit depth = %v, want ErrOverloaded", err)
	}
	if st := svc.Stats(); st.Shed == 0 {
		t.Fatal("shed request not counted in Stats.Shed")
	}
	mu.Lock()
	depth = 0
	mu.Unlock()
	if _, err := svc.Run(context.Background(), q, db, WithServers(8)); err != nil {
		t.Fatalf("recovered depth must admit again: %v", err)
	}
}

// deadPeerRuntime joins a 2-rank loopback group whose rank 1 dials in and
// immediately leaves: rank 0's runtime is connected but every distributed
// run on it fails with ErrPeerUnavailable within the round timeout.
func deadPeerRuntime(t *testing.T, timeout time.Duration) *DistributedRuntime {
	t.Helper()
	addrs, err := transport.FreeLoopbackAddrs(2)
	if err != nil {
		t.Fatal(err)
	}
	short := []RuntimeOption{
		WithRoundTimeout(timeout),
		WithDialBudget(40, 5*time.Millisecond),
		WithWriteRetries(1),
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if rt1, err := DialRuntime(1, addrs, short...); err == nil {
			time.Sleep(30 * time.Millisecond) // let rank 0 finish its handshake
			rt1.Close()
		}
	}()
	rt, err := DialRuntime(0, addrs, short...)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { rt.Close(); <-done })
	<-done
	return rt
}

// TestServiceCircuitBreakerDegrades is the graceful-degradation contract:
// once a runtime's breaker trips, requests that carry it are answered by
// the in-process runtime — bit-identical Report, Degraded flag set —
// instead of failing, and the downgrade is visible in Stats (Degraded
// count, BreakerTrips, CircuitState) and the mpc_circuit_state gauge.
func TestServiceCircuitBreakerDegrades(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	q := Triangle()
	db := MatchingDatabase(rng, q, 60, 1<<12)

	want, err := Run(q, db, WithServers(8), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}

	rt := deadPeerRuntime(t, 300*time.Millisecond)
	svc := NewService(WithCircuitBreaker(1, time.Hour),
		WithServiceWorkers(2), WithPlanCaching(false), WithStatsCaching(false))
	defer svc.Close()

	// First request probes the dead group, fails, and trips the breaker
	// (threshold 1).
	if _, err := svc.Run(context.Background(), q, db,
		WithServers(8), WithSeed(3), WithRuntime(rt)); !errors.Is(err, ErrPeerUnavailable) {
		t.Fatalf("first request = %v, want ErrPeerUnavailable", err)
	}
	if st := svc.Stats(); st.BreakerTrips != 1 || st.CircuitState != "open" {
		t.Fatalf("after trip: BreakerTrips=%d CircuitState=%q, want 1/open", st.BreakerTrips, st.CircuitState)
	}

	// Tripped: the same request now succeeds degraded, bit-identical to
	// the in-process reference.
	rep, err := svc.Run(context.Background(), q, db,
		WithServers(8), WithSeed(3), WithRuntime(rt))
	if err != nil {
		t.Fatalf("degraded request failed: %v", err)
	}
	if !rep.Degraded {
		t.Fatal("tripped-breaker Report lacks Degraded flag")
	}
	if got := rep.Fingerprint(); got != want.Fingerprint() {
		t.Fatalf("degraded run diverged from in-process reference\n got %s\nwant %s", got, want.Fingerprint())
	}
	st := svc.Stats()
	if st.Degraded != 1 {
		t.Fatalf("Stats.Degraded = %d, want 1", st.Degraded)
	}
	// Requests without a runtime never consult the breaker and never
	// carry the flag.
	rep2, err := svc.Run(context.Background(), q, db, WithServers(8), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Degraded {
		t.Fatal("in-process request wrongly marked Degraded")
	}
}

// TestServiceCloseDrainBounded is the Close-wedge regression: Close must
// wait for an in-flight distributed request, but that wait is bounded by
// the runtime's RoundTimeout — a peer that never delivers cannot wedge
// shutdown indefinitely.
func TestServiceCloseDrainBounded(t *testing.T) {
	addrs, err := transport.FreeLoopbackAddrs(2)
	if err != nil {
		t.Fatal(err)
	}
	const roundTimeout = 400 * time.Millisecond
	short := []RuntimeOption{WithRoundTimeout(roundTimeout), WithDialBudget(40, 5*time.Millisecond)}
	done := make(chan struct{})
	var silent *DistributedRuntime
	go func() {
		defer close(done)
		// Rank 1 joins the group and sits silent: connected, never
		// delivering — the wedged-peer shape.
		silent, _ = DialRuntime(1, addrs, short...)
	}()
	rt, err := DialRuntime(0, addrs, short...)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() {
		rt.Close()
		<-done
		if silent != nil {
			silent.Close()
		}
	}()

	svc := NewService(WithServiceWorkers(1))
	q := Triangle()
	db := MatchingDatabase(rand.New(rand.NewSource(26)), q, 60, 1<<12)
	started := make(chan struct{})
	var runErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(started)
		_, runErr = svc.Run(context.Background(), q, db, WithServers(8), WithRuntime(rt))
	}()
	<-started
	time.Sleep(50 * time.Millisecond) // let the request reach the wedged round

	closeStart := time.Now()
	svc.Close()
	elapsed := time.Since(closeStart)
	wg.Wait()
	if limit := 10 * roundTimeout; elapsed > limit {
		t.Fatalf("Close took %v with a wedged peer; want bounded by the %v round timeout", elapsed, roundTimeout)
	}
	if runErr == nil {
		t.Fatal("in-flight request against a silent peer succeeded")
	}
	if !errors.Is(runErr, ErrPeerUnavailable) && !errors.Is(runErr, ErrRuntimeClosed) {
		t.Fatalf("drained request error = %v, want ErrPeerUnavailable or ErrRuntimeClosed", runErr)
	}
}
