package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestDriftMonitorObserve(t *testing.T) {
	m := NewDriftMonitor(1.5)
	if m.Factor() != 1.5 {
		t.Fatalf("factor = %v", m.Factor())
	}
	// Under the bound and exactly at the bound: no event.
	if _, viol := m.Observe("hypercube", 1, 1000, 1000); viol {
		t.Fatal("ratio 1.0 must not violate")
	}
	if _, viol := m.Observe("hypercube", 2, 1500, 1000); viol {
		t.Fatal("ratio exactly at factor must not violate")
	}
	// Over the bound: structured event.
	ev, viol := m.Observe("hypercube", 3, 1501, 1000)
	if !viol {
		t.Fatal("ratio 1.501 must violate")
	}
	if ev.Strategy != "hypercube" || ev.Round != 3 || ev.ObservedBits != 1501 ||
		ev.PredictedBits != 1000 || ev.Factor != 1.5 || ev.Ratio <= 1.5 {
		t.Fatalf("event fields wrong: %+v", ev)
	}
	if !strings.Contains(ev.String(), "strategy=hypercube round=3") {
		t.Fatalf("String() = %q", ev.String())
	}
	// No prediction: not checkable, not counted.
	if _, viol := m.Observe("skew-star", 1, 99999, 0); viol {
		t.Fatal("unpredicted round must not violate")
	}
	if m.Checks() != 3 || m.Violations() != 1 || len(m.Events()) != 1 {
		t.Fatalf("checks/violations/events = %d/%d/%d, want 3/1/1",
			m.Checks(), m.Violations(), len(m.Events()))
	}
}

func TestDriftMonitorDefaults(t *testing.T) {
	if NewDriftMonitor(0).Factor() != DefaultDriftFactor {
		t.Fatal("factor <= 0 must select the default")
	}
	var m *DriftMonitor
	if _, viol := m.Observe("x", 1, 10, 1); viol {
		t.Fatal("nil monitor must be a no-op")
	}
	if m.Checks() != 0 || m.Violations() != 0 || m.Events() != nil || m.Factor() != 0 {
		t.Fatal("nil monitor accessors must read zero")
	}
}

func TestDriftMonitorEventCapAndRegistry(t *testing.T) {
	before := driftViolations.Value()
	m := NewDriftMonitor(1.0)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				m.Observe("s", i, 2, 1)
			}
		}()
	}
	wg.Wait()
	if m.Violations() != 1600 {
		t.Fatalf("violations = %d, want 1600", m.Violations())
	}
	if len(m.Events()) != maxDriftEvents {
		t.Fatalf("retained events = %d, want cap %d", len(m.Events()), maxDriftEvents)
	}
	if got := driftViolations.Value() - before; got != 1600 {
		t.Fatalf("registry violation counter delta = %d, want 1600", got)
	}
}
