package obs

import (
	"net/http"
	"net/http/pprof"
)

// Handler returns the debug endpoint used by cmd/mpcload worker processes
// and the opt-in Service listener:
//
//	/                 — plain-text index of the routes below
//	/metrics          — every registry in regs, Prometheus text format
//	/debug/trace      — latest() as Chrome trace-event JSON (404 when nil)
//	/debug/pprof/...  — the standard net/http/pprof handlers
//
// latest may be nil (or return nil) when no trace is being captured; regs
// may be empty, in which case /metrics serves the Default registry.
func Handler(latest func() *Trace, regs ...*Registry) http.Handler {
	if len(regs) == 0 {
		regs = []*Registry{Default()}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("mpcquery debug endpoint\n\n/metrics\n/debug/trace\n/debug/pprof/\n"))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, reg := range regs {
			if reg == nil {
				continue
			}
			if err := reg.WritePrometheus(w); err != nil {
				return
			}
		}
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		var t *Trace
		if latest != nil {
			t = latest()
		}
		if t == nil {
			http.Error(w, "no trace captured", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="mpcquery-trace.json"`)
		_ = t.WriteChrome(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
