package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNearestRankCeiling(t *testing.T) {
	// The defining cases of the ceiling rule, including the exact bug this
	// fixed: the old int(q*n+0.5)-1 rounded, so p54 of 10 samples landed on
	// rank 5 instead of ceil(5.4) = 6.
	cases := []struct {
		n    int64
		q    float64
		want int64
	}{
		{10, 0.54, 6}, // the motivating bug: round(5.4+0.5)=5, ceiling=6
		{10, 0.50, 5},
		{10, 0.95, 10},
		{10, 0.99, 10},
		{101, 0.50, 51},
		{101, 0.99, 100},
		{1, 0.50, 1},
		{5, 1.0, 5},
		{5, 0.0, 1},  // clamped low
		{5, -0.5, 1}, // clamped low
		{5, 1.5, 5},  // clamped high
		{0, 0.5, 0},  // no samples
	}
	for _, c := range cases {
		if got := NearestRank(c.n, c.q); got != c.want {
			t.Errorf("NearestRank(%d, %v) = %d, want %d", c.n, c.q, got, c.want)
		}
	}
}

// TestHistogramQuantilesHandComputed pins p50/p95/p99 on hand-computed
// samples: each sample sits in its own bucket, so the nearest-rank bucket
// upper bound is exactly the nearest-rank sample and the expected values
// can be read off the sorted list directly.
func TestHistogramQuantilesHandComputed(t *testing.T) {
	// Buckets at 1..10: sample i lands exactly in bucket "le=i".
	bounds := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		name             string
		samples          []float64
		p50, p95, p99    float64
		p54              float64 // the regression case from the old rounding bug
		max              float64
		wantCount        int64
		wantSum, wantMin float64
	}{
		{
			// 10 distinct samples 1..10. Ranks: p50=ceil(5)=5 → 5;
			// p54=ceil(5.4)=6 → 6 (the old code returned sample 5);
			// p95=ceil(9.5)=10 → 10; p99=ceil(9.9)=10 → 10.
			name:    "ten-distinct",
			samples: []float64{10, 3, 7, 1, 9, 5, 2, 8, 4, 6},
			p50:     5, p54: 6, p95: 10, p99: 10,
			max: 10, wantCount: 10, wantSum: 55, wantMin: 1,
		},
		{
			// 20 samples: 1..10 each twice. p50=ceil(10)=10th → 5;
			// p54=ceil(10.8)=11th → 6; p95=ceil(19)=19th → 10;
			// p99=ceil(19.8)=20th → 10.
			name:    "ten-doubled",
			samples: []float64{1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10},
			p50:     5, p54: 6, p95: 10, p99: 10,
			max: 10, wantCount: 20, wantSum: 110, wantMin: 1,
		},
		{
			// Skewed: nineteen 1s and one 10. p50..p95=ceil(19)=19th → 1;
			// p99=ceil(19.8)=20th → 10.
			name:    "skewed-tail",
			samples: append(repeat(1, 19), 10),
			p50:     1, p54: 1, p95: 1, p99: 10,
			max: 10, wantCount: 20, wantSum: 29, wantMin: 1,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			h := newHistogram(bounds)
			for _, s := range c.samples {
				h.Observe(s)
			}
			for _, pq := range []struct {
				q    float64
				want float64
			}{{0.50, c.p50}, {0.54, c.p54}, {0.95, c.p95}, {0.99, c.p99}} {
				if got := h.Quantile(pq.q); got != pq.want {
					t.Errorf("Quantile(%v) = %v, want %v", pq.q, got, pq.want)
				}
			}
			if h.Count() != c.wantCount || h.Sum() != c.wantSum || h.Min() != c.wantMin || h.Max() != c.max {
				t.Errorf("count/sum/min/max = %d/%v/%v/%v, want %d/%v/%v/%v",
					h.Count(), h.Sum(), h.Min(), h.Max(), c.wantCount, c.wantSum, c.wantMin, c.max)
			}
		})
	}
}

func repeat(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestHistogramOverflowResolvesToMax(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(0.5)
	h.Observe(7.25) // overflow bucket
	if got := h.Quantile(1.0); got != 7.25 {
		t.Fatalf("Quantile(1.0) = %v, want exact max 7.25", got)
	}
	if got := h.Quantile(0.5); got != 1 {
		t.Fatalf("Quantile(0.5) = %v, want bucket bound 1", got)
	}
}

// TestHistogramQuantileClampedToMax: a quantile never exceeds the largest
// observation, so when nearest-rank lands in a bucket whose upper bound is
// above the exact Max, the bound is clamped to Max. This keeps
// Quantile(q) <= Max for every q — the invariant service Snapshot consumers
// rely on (p50 must not exceed the reported maximum latency).
func TestHistogramQuantileClampedToMax(t *testing.T) {
	h := newHistogram([]float64{1, 10})
	h.Observe(7) // lands in the le=10 bucket; max is 7, below the bound
	if got := h.Quantile(0.5); got != 7 {
		t.Fatalf("Quantile(0.5) = %v, want exact max 7 (clamped from bound 10)", got)
	}
	h.Observe(0.5) // le=1 bucket bound is below max: no clamp there
	if got := h.Quantile(0.25); got != 1 {
		t.Fatalf("Quantile(0.25) = %v, want bucket bound 1", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := newHistogram([]float64{1})
	if h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestRegistryKinds(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a_total")
	c.Inc()
	c.Add(2)
	if r.Counter("a_total") != c || c.Value() != 3 {
		t.Fatalf("counter identity or value wrong: %d", c.Value())
	}
	g := r.Gauge("b")
	g.Set(1.5)
	g.Add(0.5)
	g.SetMax(1.0) // lower: no-op
	if g.Value() != 2.0 {
		t.Fatalf("gauge = %v, want 2.0", g.Value())
	}
	g.SetMax(3.0)
	if g.Value() != 3.0 {
		t.Fatalf("gauge after SetMax = %v, want 3.0", g.Value())
	}
	h := r.Histogram("c", 1, 2, 3)
	if r.Histogram("c", 1, 2, 3) != h {
		t.Fatal("histogram not memoized")
	}
	r.GaugeFunc("d", func() float64 { return 42 })

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("cross-kind registration must panic")
			}
		}()
		r.Gauge("a_total")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("histogram bound mismatch must panic")
			}
		}()
		r.Histogram("c", 1, 2, 4)
	}()
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Add(1)
	c.Inc()
	g.Set(1)
	g.Add(1)
	g.SetMax(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil handles must read as zero")
	}
}

func TestWritePrometheusSortedAndWellFormed(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total").Add(7)
	r.Gauge("aa_gauge").Set(1.25)
	h := r.Histogram("mm_seconds", 0.1, 1)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.GaugeFunc("ff_func", func() float64 { return 9 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Names appear in sorted order regardless of shard/map iteration.
	idx := func(s string) int { return strings.Index(out, "# TYPE "+s) }
	if !(idx("aa_gauge") < idx("ff_func") && idx("ff_func") < idx("mm_seconds") && idx("mm_seconds") < idx("zz_total")) {
		t.Fatalf("metrics not sorted by name:\n%s", out)
	}
	for _, want := range []string{
		"zz_total 7\n",
		"aa_gauge 1.25\n",
		"ff_func 9\n",
		`mm_seconds_bucket{le="0.1"} 1`,
		`mm_seconds_bucket{le="1"} 2`,
		`mm_seconds_bucket{le="+Inf"} 3`,
		"mm_seconds_sum 5.55\n",
		"mm_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Deterministic output on repeated export.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Fatal("repeated export differs")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("shared_total").Inc()
				r.Gauge("shared_gauge").Add(1)
				r.Gauge("shared_max").SetMax(float64(i))
				r.Histogram("shared_hist", 100, 500, 1000).Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("shared_gauge").Value(); got != 8000 {
		t.Fatalf("gauge add = %v, want 8000", got)
	}
	if got := r.Gauge("shared_max").Value(); got != 999 {
		t.Fatalf("gauge max = %v, want 999", got)
	}
	h := r.Histogram("shared_hist", 100, 500, 1000)
	if h.Count() != 8000 || h.Min() != 0 || h.Max() != 999 {
		t.Fatalf("histogram count/min/max = %d/%v/%v", h.Count(), h.Min(), h.Max())
	}
	wantSum := 8 * (999.0 * 1000.0 / 2.0)
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Fatalf("histogram sum = %v, want %v", h.Sum(), wantSum)
	}
}

func TestHistogramObserveAllocationFree(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	c := &Counter{}
	g := &Gauge{}
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(42)
		c.Inc()
		g.Add(1)
	})
	if allocs != 0 {
		t.Fatalf("hot path allocates %v per op, want 0", allocs)
	}
}
