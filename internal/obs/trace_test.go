package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func populate(t *Trace) {
	ct := t.NewCluster(4, 32)
	now := time.Now()
	ct.ObserveRound(RoundObservation{
		Name:         "shuffle",
		ComputeStart: now, ComputeSeconds: 0.010,
		DeliverStart: now.Add(10 * time.Millisecond), DeliverSeconds: 0.005,
		ServerComputeSeconds: []float64{0.001, 0.002, 0.003, 0.004},
		DestDeliverSeconds:   []float64{0.001, 0, 0.001, 0},
		RecvBits:             []float64{100, 200, 300, 400},
		RecvTuples:           []int{1, 2, 3, 4},
		MaxRecvBits:          400, TotalRecvBits: 1000,
		MaxRecvTuples: 4, TotalRecvTuples: 10,
	})
	ct.ObserveCompute(now.Add(20*time.Millisecond), 0.002)
	ct.ObserveKernelCache(5, 3)
	t.Instant("drift", KV{"strategy", "hypercube"}, KV{"round", "1"})
	t.ObserveWire(WireObservation{DataFrames: 7, WireBytes: 512})
}

func TestTraceStructureDeterministicModuloTiming(t *testing.T) {
	a, b := NewTrace(), NewTrace()
	populate(a)
	time.Sleep(2 * time.Millisecond) // different wall-clock offsets on purpose
	populate(b)
	if a.Structure() != b.Structure() {
		t.Fatalf("structures differ:\n--- a ---\n%s--- b ---\n%s", a.Structure(), b.Structure())
	}
	if !strings.Contains(a.Structure(), `name="shuffle"`) ||
		!strings.Contains(a.Structure(), "kernel_cache hits=5 misses=3") ||
		!strings.Contains(a.Structure(), `instant "drift" strategy=hypercube round=1`) {
		t.Fatalf("structure missing expected lines:\n%s", a.Structure())
	}
	// Wire counters are timing-dependent and must stay out of Structure.
	c := NewTrace()
	populate(c)
	c.ObserveWire(WireObservation{DataFrames: 9999})
	if c.Structure() != a.Structure() {
		t.Fatal("wire observations leaked into Structure")
	}
}

func TestTraceStructureSensitiveToBits(t *testing.T) {
	a, b := NewTrace(), NewTrace()
	populate(a)
	populate(b)
	b.clusters[0].rounds[0].RecvBits[2] = 301 // structural change must show
	if a.Structure() == b.Structure() {
		t.Fatal("structure insensitive to per-server bits")
	}
}

func TestWriteChromeValidSchema(t *testing.T) {
	tr := NewTrace()
	populate(tr)
	var b strings.Builder
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   *float64       `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  *int           `json:"pid"`
			Tid  *int           `json:"tid"`
			S    string         `json:"s"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no events")
	}
	var spans, instants int
	for _, ev := range doc.TraceEvents {
		if ev.Name == "" || ev.Ts == nil || ev.Pid == nil || ev.Tid == nil {
			t.Fatalf("event missing required field: %+v", ev)
		}
		switch ev.Ph {
		case "X":
			spans++
			if ev.Dur < 0 {
				t.Fatalf("negative duration: %+v", ev)
			}
		case "i":
			instants++
			if ev.S == "" {
				t.Fatalf("instant without scope: %+v", ev)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	// populate() records: compute span + deliver span + 4 server emits +
	// 2 nonzero dest delivers + 1 compute phase = 9 spans; kernel-cache +
	// drift + wire = 3 instants.
	if spans != 9 || instants != 3 {
		t.Fatalf("spans=%d instants=%d, want 9 and 3", spans, instants)
	}
}

func TestWriteChromeNilAndEmpty(t *testing.T) {
	var nilTrace *Trace
	var b strings.Builder
	if err := nilTrace.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("nil trace export invalid: %v", err)
	}
	b.Reset()
	if err := NewTrace().WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("empty trace export invalid: %v", err)
	}
	if _, ok := doc["traceEvents"].([]any); !ok {
		t.Fatal("traceEvents must be an array even when empty")
	}
}

func TestNilTraceObservationsNoOp(t *testing.T) {
	var tr *Trace
	ct := tr.NewCluster(4, 32)
	if ct != nil {
		t.Fatal("nil trace must hand out nil cluster sinks")
	}
	ct.ObserveRound(RoundObservation{Name: "x"})
	ct.ObserveCompute(time.Time{}, 1)
	ct.ObserveKernelCache(1, 1)
	tr.Instant("x")
	tr.ObserveWire(WireObservation{})
	if tr.Structure() != "" || len(tr.Instants()) != 0 || len(ct.Rounds()) != 0 {
		t.Fatal("nil trace must observe nothing")
	}
}

func TestTraceObserveRoundCopiesBuffers(t *testing.T) {
	tr := NewTrace()
	ct := tr.NewCluster(2, 8)
	bits := []float64{1, 2}
	tuples := []int{1, 2}
	ct.ObserveRound(RoundObservation{Name: "r", RecvBits: bits, RecvTuples: tuples})
	bits[0], tuples[1] = 99, 99 // engine reuses its buffers between rounds
	got := ct.Rounds()[0]
	if got.RecvBits[0] != 1 || got.RecvTuples[1] != 2 {
		t.Fatal("ObserveRound must copy caller buffers")
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ct := tr.NewCluster(2, 8)
			for i := 0; i < 50; i++ {
				ct.ObserveRound(RoundObservation{Name: "r", RecvBits: []float64{1}, RecvTuples: []int{1}})
				ct.ObserveKernelCache(1, 0)
				tr.Instant("tick")
			}
		}()
	}
	wg.Wait()
	var b strings.Builder
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if tr.Structure() == "" {
		t.Fatal("empty structure after concurrent writes")
	}
}
