package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, h *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := h.Client().Get(h.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestHandlerRoutes(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("probe_total").Add(5)
	tr := NewTrace()
	populate(tr)
	srv := httptest.NewServer(Handler(func() *Trace { return tr }, reg))
	defer srv.Close()

	if code, body := get(t, srv, "/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: code=%d body=%q", code, body)
	}
	if code, body := get(t, srv, "/metrics"); code != 200 || !strings.Contains(body, "probe_total 5") {
		t.Fatalf("metrics: code=%d body=%q", code, body)
	}
	code, body := get(t, srv, "/debug/trace")
	if code != 200 {
		t.Fatalf("trace: code=%d", code)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil || len(doc.TraceEvents) == 0 {
		t.Fatalf("trace download not valid Chrome JSON: err=%v events=%d", err, len(doc.TraceEvents))
	}
	if code, body := get(t, srv, "/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Fatalf("pprof cmdline: code=%d", code)
	}
	if code, _ := get(t, srv, "/no-such"); code != 404 {
		t.Fatalf("unknown path: code=%d, want 404", code)
	}
}

func TestHandlerNoTrace(t *testing.T) {
	srv := httptest.NewServer(Handler(nil))
	defer srv.Close()
	if code, _ := get(t, srv, "/debug/trace"); code != 404 {
		t.Fatalf("no-trace download: code=%d, want 404", code)
	}
	// Default registry serves without explicit regs.
	if code, body := get(t, srv, "/metrics"); code != 200 || !strings.Contains(body, "# TYPE") {
		t.Fatalf("default metrics: code=%d body=%q", code, body)
	}
}
