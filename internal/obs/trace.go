package obs

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"strings"
	"sync"
	"time"
)

// Trace captures one run's execution timeline: per-cluster round spans
// with phase timings and per-server bit accounting, compute phases,
// kernel-cache totals, wire deltas, and run-level instant events (drift
// violations). A Trace is attached to a run with the root WithTrace
// option; the engine and strategies populate it.
//
// All methods are safe for concurrent use, and every observation method
// tolerates a nil receiver as a no-op — the disabled path is a nil check.
//
// Two faces of the same data serve two different contracts:
//
//   - WriteChrome emits the full timeline (timestamps, durations) as
//     Chrome trace-event JSON for chrome://tracing / Perfetto.
//   - Structure renders only the deterministic skeleton — cluster
//     geometry, round names, per-server bits/tuples, phase counts,
//     kernel-cache totals, drift events — so two seeded runs of the same
//     query can be asserted structurally identical modulo timing.
type Trace struct {
	mu       sync.Mutex
	start    time.Time
	clusters []*ClusterTrace
	instants []Instant
	wire     []WireObservation
}

// NewTrace returns an empty trace whose clock starts now.
func NewTrace() *Trace {
	// obs is on the nondeterminism time allowlist: wall-clock offsets are
	// telemetry and never reach a fingerprint.
	return &Trace{start: time.Now()}
}

// KV is one ordered key/value pair of an Instant's arguments. A slice of
// KV (rather than a map) keeps instant rendering deterministic.
type KV struct {
	Key   string
	Value string
}

// Instant is a run-level point event, e.g. a drift violation.
type Instant struct {
	Name   string
	Offset time.Duration // since the trace epoch
	Args   []KV
}

// WireObservation is the transport-layer delta attributed to one run:
// frames, bytes, and retry counts accumulated between the run's start and
// end on this rank's session. Frame/byte/resend counts depend on socket
// timing (write coalescing, redials), so wire observations appear in the
// Chrome export but are excluded from Structure.
type WireObservation struct {
	DataFrames         int64
	CtrlFrames         int64
	WireBytes          int64
	PayloadBytes       int64
	BilledPayloadBytes int64
	Redials            int64
	Resends            int64
}

// Instant records a run-level point event.
func (t *Trace) Instant(name string, args ...KV) {
	if t == nil {
		return
	}
	off := time.Since(t.start)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.instants = append(t.instants, Instant{Name: name, Offset: off, Args: append([]KV(nil), args...)})
}

// ObserveWire records a transport delta for this run.
func (t *Trace) ObserveWire(w WireObservation) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.wire = append(t.wire, w)
}

// Instants returns a copy of the run-level point events recorded so far.
func (t *Trace) Instants() []Instant {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Instant(nil), t.instants...)
}

// NewCluster registers a cluster (p model servers, bitsPerValue-bit
// values) with the trace and returns its per-cluster sink. Returns nil —
// a valid no-op sink — when the trace itself is nil.
func (t *Trace) NewCluster(p, bitsPerValue int) *ClusterTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ct := &ClusterTrace{tr: t, id: len(t.clusters), p: p, bitsPerValue: bitsPerValue}
	t.clusters = append(t.clusters, ct)
	return ct
}

// ClusterTrace collects one cluster's rounds and compute phases. All
// observation methods are nil-receiver-safe no-ops.
type ClusterTrace struct {
	tr           *Trace
	id           int
	p            int
	bitsPerValue int

	mu            sync.Mutex
	rounds        []RoundObservation
	computePhases []ComputePhase
	kernelHits    int64
	kernelMisses  int64
	kernelSamples int
}

// RoundObservation is one communication round's record: the compute/emit
// phase and the delivery phase, with per-server timings and the
// per-destination bit/tuple accounting the load L is defined over.
type RoundObservation struct {
	Name string

	ComputeStart   time.Time
	ComputeSeconds float64
	DeliverStart   time.Time
	DeliverSeconds float64

	// ServerComputeSeconds[s] is server s's emit/compute closure time;
	// DestDeliverSeconds[d] is destination d's local assembly time (zeros
	// under a network link, which delivers remotely).
	ServerComputeSeconds []float64
	DestDeliverSeconds   []float64

	// RecvBits[d] / RecvTuples[d]: bits and tuples charged to destination
	// d this round. MaxRecvBits over d is the round's load.
	RecvBits   []float64
	RecvTuples []int

	MaxRecvBits     float64
	TotalRecvBits   float64
	MaxRecvTuples   int
	TotalRecvTuples int
	Aborted         bool

	// ChunkFlushes counts the streaming chunks flushed (pipelined) or
	// closed (staged) this round; 0 in barrier mode. Chunk granularity is
	// a wall-clock/memory concern, not an accounting one, so the count
	// appears in the Chrome export but is deliberately excluded from
	// Structure — streamed and barrier runs must render identically.
	ChunkFlushes int
}

// ComputePhase is one Cluster.Compute call (a local computation phase
// between rounds).
type ComputePhase struct {
	Start   time.Time
	Seconds float64
}

// ObserveRound appends one round's record. Slices are copied, so callers
// may reuse their buffers.
func (ct *ClusterTrace) ObserveRound(ro RoundObservation) {
	if ct == nil {
		return
	}
	ro.ServerComputeSeconds = append([]float64(nil), ro.ServerComputeSeconds...)
	ro.DestDeliverSeconds = append([]float64(nil), ro.DestDeliverSeconds...)
	ro.RecvBits = append([]float64(nil), ro.RecvBits...)
	ro.RecvTuples = append([]int(nil), ro.RecvTuples...)
	ct.mu.Lock()
	defer ct.mu.Unlock()
	ct.rounds = append(ct.rounds, ro)
}

// ObserveCompute appends one local computation phase.
func (ct *ClusterTrace) ObserveCompute(start time.Time, seconds float64) {
	if ct == nil {
		return
	}
	ct.mu.Lock()
	defer ct.mu.Unlock()
	ct.computePhases = append(ct.computePhases, ComputePhase{Start: start, Seconds: seconds})
}

// ObserveKernelCache accumulates the join-kernel IndexCache totals of one
// compute phase.
func (ct *ClusterTrace) ObserveKernelCache(hits, misses int64) {
	if ct == nil {
		return
	}
	ct.mu.Lock()
	defer ct.mu.Unlock()
	ct.kernelHits += hits
	ct.kernelMisses += misses
	ct.kernelSamples++
}

// Rounds returns a copy of the observed rounds.
func (ct *ClusterTrace) Rounds() []RoundObservation {
	if ct == nil {
		return nil
	}
	ct.mu.Lock()
	defer ct.mu.Unlock()
	return append([]RoundObservation(nil), ct.rounds...)
}

// hashFloats folds a float64 slice into an FNV-64a digest (bit-exact, so
// structurally identical runs agree and any numeric drift shows).
func hashFloats(vals []float64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		_, _ = h.Write(b[:])
	}
	return h.Sum64()
}

func hashInts(vals []int) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		_, _ = h.Write(b[:])
	}
	return h.Sum64()
}

// Structure renders the trace's deterministic skeleton: everything except
// wall-clock timings and wire counters. Two seeded runs of the same query
// must produce byte-identical Structure output.
func (t *Trace) Structure() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	clusters := append([]*ClusterTrace(nil), t.clusters...)
	instants := append([]Instant(nil), t.instants...)
	t.mu.Unlock()

	var b strings.Builder
	fmt.Fprintf(&b, "trace clusters=%d instants=%d\n", len(clusters), len(instants))
	for _, ct := range clusters {
		ct.mu.Lock()
		fmt.Fprintf(&b, "cluster %d p=%d bpv=%d rounds=%d compute_phases=%d\n",
			ct.id, ct.p, ct.bitsPerValue, len(ct.rounds), len(ct.computePhases))
		for i, ro := range ct.rounds {
			fmt.Fprintf(&b, "  round %d name=%q max_bits=%x total_bits=%x max_tuples=%d total_tuples=%d aborted=%v recv_bits_fnv=%016x recv_tuples_fnv=%016x\n",
				i, ro.Name, ro.MaxRecvBits, ro.TotalRecvBits, ro.MaxRecvTuples,
				ro.TotalRecvTuples, ro.Aborted, hashFloats(ro.RecvBits), hashInts(ro.RecvTuples))
		}
		if ct.kernelSamples > 0 {
			fmt.Fprintf(&b, "  kernel_cache hits=%d misses=%d samples=%d\n",
				ct.kernelHits, ct.kernelMisses, ct.kernelSamples)
		}
		ct.mu.Unlock()
	}
	for _, in := range instants {
		fmt.Fprintf(&b, "instant %q", in.Name)
		for _, kv := range in.Args {
			fmt.Fprintf(&b, " %s=%s", kv.Key, kv.Value)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// chromeEvent is one entry of the Chrome trace-event format's JSON array
// (ph "X" = complete span, "i" = instant).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds since trace epoch
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func (t *Trace) micros(at time.Time) float64 {
	return float64(at.Sub(t.start)) / float64(time.Microsecond)
}

// WriteChrome writes the trace in Chrome trace-event JSON ("JSON object
// format": a traceEvents array of complete/instant events). Load the
// output in chrome://tracing or https://ui.perfetto.dev. Events map as
// pid = cluster index, tid 0 = the cluster's phase track, tid s+1 =
// model server s.
func (t *Trace) WriteChrome(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`)
		return err
	}
	t.mu.Lock()
	clusters := append([]*ClusterTrace(nil), t.clusters...)
	instants := append([]Instant(nil), t.instants...)
	wire := append([]WireObservation(nil), t.wire...)
	t.mu.Unlock()

	var evs []chromeEvent
	for _, ct := range clusters {
		ct.mu.Lock()
		for i, ro := range ct.rounds {
			evs = append(evs, chromeEvent{
				Name: fmt.Sprintf("round %d %s: compute", i, ro.Name),
				Cat:  "round", Ph: "X",
				Ts: t.micros(ro.ComputeStart), Dur: ro.ComputeSeconds * 1e6,
				Pid: ct.id, Tid: 0,
			})
			deliverArgs := map[string]any{
				"max_recv_bits":   ro.MaxRecvBits,
				"total_recv_bits": ro.TotalRecvBits,
				"max_recv_tuples": ro.MaxRecvTuples,
				"aborted":         ro.Aborted,
			}
			if ro.ChunkFlushes > 0 {
				deliverArgs["chunk_flushes"] = ro.ChunkFlushes
			}
			evs = append(evs, chromeEvent{
				Name: fmt.Sprintf("round %d %s: deliver", i, ro.Name),
				Cat:  "round", Ph: "X",
				Ts: t.micros(ro.DeliverStart), Dur: ro.DeliverSeconds * 1e6,
				Pid: ct.id, Tid: 0,
				Args: deliverArgs,
			})
			for s, secs := range ro.ServerComputeSeconds {
				ev := chromeEvent{
					Name: "emit", Cat: "server", Ph: "X",
					Ts: t.micros(ro.ComputeStart), Dur: secs * 1e6,
					Pid: ct.id, Tid: s + 1,
				}
				if s < len(ro.RecvBits) {
					ev.Args = map[string]any{"recv_bits": ro.RecvBits[s], "recv_tuples": ro.RecvTuples[s]}
				}
				evs = append(evs, ev)
			}
			for d, secs := range ro.DestDeliverSeconds {
				if secs == 0 {
					continue // network delivery: local per-dest assembly not measured
				}
				evs = append(evs, chromeEvent{
					Name: "deliver", Cat: "server", Ph: "X",
					Ts: t.micros(ro.DeliverStart), Dur: secs * 1e6,
					Pid: ct.id, Tid: d + 1,
				})
			}
		}
		for _, cp := range ct.computePhases {
			evs = append(evs, chromeEvent{
				Name: "compute", Cat: "compute", Ph: "X",
				Ts: t.micros(cp.Start), Dur: cp.Seconds * 1e6,
				Pid: ct.id, Tid: 0,
			})
		}
		if ct.kernelSamples > 0 {
			evs = append(evs, chromeEvent{
				Name: "kernel-cache", Cat: "kernel", Ph: "i", S: "p",
				Ts:  0,
				Pid: ct.id, Tid: 0,
				Args: map[string]any{"hits": ct.kernelHits, "misses": ct.kernelMisses},
			})
		}
		ct.mu.Unlock()
	}
	for _, in := range instants {
		args := make(map[string]any, len(in.Args))
		for _, kv := range in.Args {
			args[kv.Key] = kv.Value
		}
		evs = append(evs, chromeEvent{
			Name: in.Name, Cat: "run", Ph: "i", S: "g",
			Ts:  float64(in.Offset) / float64(time.Microsecond),
			Pid: 0, Tid: 0, Args: args,
		})
	}
	for _, wo := range wire {
		evs = append(evs, chromeEvent{
			Name: "wire", Cat: "transport", Ph: "i", S: "g",
			Ts:  0,
			Pid: 0, Tid: 0,
			Args: map[string]any{
				"data_frames":          wo.DataFrames,
				"ctrl_frames":          wo.CtrlFrames,
				"wire_bytes":           wo.WireBytes,
				"payload_bytes":        wo.PayloadBytes,
				"billed_payload_bytes": wo.BilledPayloadBytes,
				"redials":              wo.Redials,
				"resends":              wo.Resends,
			},
		})
	}
	if evs == nil {
		evs = []chromeEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{TraceEvents: evs, DisplayTimeUnit: "ms"})
}
