package obs

import (
	"fmt"
	"sync"
)

// DefaultDriftFactor is the violation threshold used when a monitor is
// constructed with factor <= 0: observed load may exceed the prediction
// by 50% before an event fires. The share-LP prediction is an expectation
// over hash placements, so modest overshoot is normal; sustained 1.5x is
// the paper's signal that the skew assumptions behind the plan no longer
// hold.
const DefaultDriftFactor = 1.5

// maxDriftEvents bounds the retained event list; the violation counter
// keeps counting past it.
const maxDriftEvents = 1024

// DriftEvent is one bound violation: a round whose observed max load
// exceeded factor × the plan's predicted load.
type DriftEvent struct {
	// Strategy that produced the plan (Report.Strategy).
	Strategy string
	// Round is the 1-based round index within the run, or 0 when the
	// strategy reports only a whole-run load.
	Round int
	// ObservedBits is the round's MaxLoadBits; PredictedBits the plan's
	// PredictedLoadBits; Ratio their quotient; Factor the threshold that
	// was exceeded.
	ObservedBits  float64
	PredictedBits float64
	Ratio         float64
	Factor        float64
}

func (e DriftEvent) String() string {
	return fmt.Sprintf("drift: strategy=%s round=%d observed=%.0f predicted=%.0f ratio=%.2f factor=%.2f",
		e.Strategy, e.Round, e.ObservedBits, e.PredictedBits, e.Ratio, e.Factor)
}

// DriftMonitor compares observed per-round load against the planner's
// prediction and records a DriftEvent whenever observed/predicted exceeds
// the configured factor. Checks and violations also feed the Default
// registry (mpc_drift_checks_total, mpc_drift_violations_total), so the
// alert is visible on the /metrics endpoint without holding the monitor.
// Safe for concurrent use; nil-receiver methods are no-ops.
type DriftMonitor struct {
	factor float64

	mu         sync.Mutex
	checks     int64
	violations int64
	events     []DriftEvent
}

var (
	driftChecks     = Default().Counter("mpc_drift_checks_total")
	driftViolations = Default().Counter("mpc_drift_violations_total")
)

// NewDriftMonitor returns a monitor that fires when observed load exceeds
// factor × predicted. factor <= 0 selects DefaultDriftFactor.
func NewDriftMonitor(factor float64) *DriftMonitor {
	if factor <= 0 {
		factor = DefaultDriftFactor
	}
	return &DriftMonitor{factor: factor}
}

// Factor returns the violation threshold.
func (m *DriftMonitor) Factor() float64 {
	if m == nil {
		return 0
	}
	return m.factor
}

// Observe checks one round's observed max load against the plan's
// prediction. Rounds without a prediction (predictedBits <= 0) are not
// checkable and are skipped. Returns the event and true when the round
// violates the bound.
func (m *DriftMonitor) Observe(strategy string, round int, observedBits, predictedBits float64) (DriftEvent, bool) {
	if m == nil || predictedBits <= 0 {
		return DriftEvent{}, false
	}
	driftChecks.Inc()
	ratio := observedBits / predictedBits
	m.mu.Lock()
	defer m.mu.Unlock()
	m.checks++
	if ratio <= m.factor {
		return DriftEvent{}, false
	}
	ev := DriftEvent{
		Strategy:      strategy,
		Round:         round,
		ObservedBits:  observedBits,
		PredictedBits: predictedBits,
		Ratio:         ratio,
		Factor:        m.factor,
	}
	m.violations++
	driftViolations.Inc()
	if len(m.events) < maxDriftEvents {
		m.events = append(m.events, ev)
	}
	return ev, true
}

// Checks returns how many predicted rounds this monitor has examined.
func (m *DriftMonitor) Checks() int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.checks
}

// Violations returns how many checks exceeded the factor.
func (m *DriftMonitor) Violations() int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.violations
}

// Events returns a copy of the retained violation events (bounded at
// maxDriftEvents; Violations keeps the true count).
func (m *DriftMonitor) Events() []DriftEvent {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]DriftEvent(nil), m.events...)
}
