// Package obs is the cluster observability layer: a process-wide metrics
// registry (counters, gauges, fixed-bucket histograms), a per-run Trace
// with round/phase spans exportable as Chrome trace-event JSON, and a
// drift monitor comparing observed per-round load against the planner's
// prediction.
//
// The package is stdlib-only and sits at the bottom of the dependency
// graph: engine, localjoin, service, and transport all publish into it,
// and nothing here imports back into them. Every hot-path operation
// (Counter.Add, Gauge.Add, Histogram.Observe) is a handful of atomic ops
// and allocation-free; registration (the only path that touches maps and
// locks) happens at setup time.
//
// obs legitimately reads the wall clock: trace spans and latency
// histograms are operational telemetry that never reaches a
// Report.Fingerprint(). The package is therefore on mpclint's
// nondeterminism time allowlist.
package obs

import (
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// NearestRank returns the 1-based nearest-rank index of quantile q over n
// ordered samples: ceil(q*n), clamped to [1, n]. The ceiling is the
// defining property of the nearest-rank method — rounding instead (the
// bug this replaces: int(q*n+0.5)-1) understates any quantile whose exact
// rank has fractional part in (0, 0.5), e.g. p54 of 10 samples, whose
// rank is ceil(5.4)=6, not round(5.4)=5.
func NearestRank(n int64, q float64) int64 {
	if n <= 0 {
		return 0
	}
	r := int64(math.Ceil(q * float64(n)))
	if r < 1 {
		r = 1
	}
	if r > n {
		r = n
	}
	return r
}

// Counter is a monotonically increasing int64. The zero value is unusable;
// obtain counters from a Registry. All methods are safe for concurrent
// use and tolerate a nil receiver (no-op / zero), so disabled telemetry
// paths need no branching.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can be set, accumulated, or max-tracked.
// Concurrency-safe and allocation-free: the value lives as float bits in
// one atomic word.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add accumulates v into the gauge via a CAS loop.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// SetMax raises the gauge to v if v is larger.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: ascending upper bounds plus an
// implicit +Inf overflow bucket. Observe is lock-free and allocation-free;
// exact min/max are tracked alongside the buckets so Quantile(1) and Max
// are not bucket-quantized at the top end.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is the +Inf overflow bucket
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
	minBits atomic.Uint64 // float64 bits; +Inf until first observation
	maxBits atomic.Uint64 // float64 bits; -Inf until first observation
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bucket bounds not strictly ascending at index %d", i))
		}
	}
	h := &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for ; i < len(h.bounds); i++ {
		if v <= h.bounds[i] {
			break
		}
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if v >= math.Float64frombits(old) {
			break
		}
		if h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Min returns the smallest observation, or 0 before any observation.
func (h *Histogram) Min() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.minBits.Load())
}

// Max returns the largest observation, or 0 before any observation.
func (h *Histogram) Max() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.maxBits.Load())
}

// Quantile returns the nearest-rank q-quantile as the upper bound of the
// bucket holding that rank — an over-estimate by at most one bucket
// width, clamped to the exact observed Max (a true quantile never exceeds
// the maximum, so the clamp only tightens the estimate and keeps
// Quantile(q) <= Max for every q). Samples landing in the overflow bucket
// resolve to Max directly. Returns 0 before any observation.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := NearestRank(n, q)
	var cum int64
	for i := range h.bounds {
		cum += h.buckets[i].Load()
		if cum >= rank {
			if max := h.Max(); max < h.bounds[i] {
				return max
			}
			return h.bounds[i]
		}
	}
	return h.Max()
}

// numShards splits the registry's name→metric maps so concurrent
// registration from many clusters does not serialize on one lock.
const numShards = 16

type registryShard struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() float64
}

// Registry is a name-indexed set of metrics. Metric handles are
// registered once (get-or-create by name) and then operated on without
// touching the registry again, so the hot path never sees a lock.
// Registering one name as two different kinds panics.
type Registry struct {
	shards [numShards]registryShard
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	for i := range r.shards {
		s := &r.shards[i]
		s.counters = make(map[string]*Counter)
		s.gauges = make(map[string]*Gauge)
		s.hists = make(map[string]*Histogram)
		s.funcs = make(map[string]func() float64)
	}
	return r
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that engine, localjoin, and
// transport publish into.
func Default() *Registry { return defaultRegistry }

func (r *Registry) shard(name string) *registryShard {
	h := fnv.New32a()
	_, _ = io.WriteString(h, name)
	return &r.shards[h.Sum32()%numShards]
}

func (s *registryShard) checkKind(name, want string) {
	has := ""
	switch {
	case s.counters[name] != nil:
		has = "counter"
	case s.gauges[name] != nil:
		has = "gauge"
	case s.hists[name] != nil:
		has = "histogram"
	case s.funcs[name] != nil:
		has = "gaugefunc"
	}
	if has != "" && has != want {
		panic(fmt.Sprintf("obs: metric %q already registered as %s, requested as %s", name, has, want))
	}
}

// Counter returns the counter registered under name, creating it if
// needed.
func (r *Registry) Counter(name string) *Counter {
	s := r.shard(name)
	s.mu.RLock()
	c := s.counters[name]
	s.mu.RUnlock()
	if c != nil {
		return c
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c = s.counters[name]; c != nil {
		return c
	}
	s.checkKind(name, "counter")
	c = &Counter{}
	s.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	s := r.shard(name)
	s.mu.RLock()
	g := s.gauges[name]
	s.mu.RUnlock()
	if g != nil {
		return g
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if g = s.gauges[name]; g != nil {
		return g
	}
	s.checkKind(name, "gauge")
	g = &Gauge{}
	s.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given ascending bucket upper bounds if needed. Re-registering an
// existing histogram with different bounds panics.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	s := r.shard(name)
	s.mu.RLock()
	h := s.hists[name]
	s.mu.RUnlock()
	if h == nil {
		s.mu.Lock()
		if h = s.hists[name]; h == nil {
			s.checkKind(name, "histogram")
			h = newHistogram(bounds)
			s.hists[name] = h
			s.mu.Unlock()
			return h
		}
		s.mu.Unlock()
	}
	if len(h.bounds) != len(bounds) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with different bucket bounds", name))
	}
	for i := range bounds {
		if h.bounds[i] != bounds[i] {
			panic(fmt.Sprintf("obs: histogram %q re-registered with different bucket bounds", name))
		}
	}
	return h
}

// GaugeFunc registers a callback gauge evaluated at export time —
// suitable for values another subsystem already tracks (pool depth, cache
// size). Re-registering a name replaces the callback.
func (r *Registry) GaugeFunc(name string, f func() float64) {
	if f == nil {
		panic("obs: nil GaugeFunc callback")
	}
	s := r.shard(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.checkKind(name, "gaugefunc")
	s.funcs[name] = f
}

// formatFloat renders a metric value the way the Prometheus text
// exposition expects (shortest round-trip decimal).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every metric in the Prometheus text exposition
// format, sorted by name (map iteration order never reaches the output).
func (r *Registry) WritePrometheus(w io.Writer) error {
	type entry struct {
		name string
		kind string
		c    *Counter
		g    *Gauge
		h    *Histogram
		f    func() float64
	}
	var entries []entry
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for name, c := range s.counters {
			entries = append(entries, entry{name: name, kind: "counter", c: c})
		}
		for name, g := range s.gauges {
			entries = append(entries, entry{name: name, kind: "gauge", g: g})
		}
		for name, h := range s.hists {
			entries = append(entries, entry{name: name, kind: "histogram", h: h})
		}
		for name, f := range s.funcs {
			entries = append(entries, entry{name: name, kind: "gauge", f: f})
		}
		s.mu.RUnlock()
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	for _, e := range entries {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.name, e.kind); err != nil {
			return err
		}
		var err error
		switch {
		case e.c != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", e.name, e.c.Value())
		case e.g != nil:
			_, err = fmt.Fprintf(w, "%s %s\n", e.name, formatFloat(e.g.Value()))
		case e.f != nil:
			_, err = fmt.Fprintf(w, "%s %s\n", e.name, formatFloat(e.f()))
		case e.h != nil:
			var cum int64
			for i, b := range e.h.bounds {
				cum += e.h.buckets[i].Load()
				if _, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", e.name, formatFloat(b), cum); err != nil {
					return err
				}
			}
			cum += e.h.buckets[len(e.h.bounds)].Load()
			if _, err = fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", e.name, cum); err != nil {
				return err
			}
			if _, err = fmt.Fprintf(w, "%s_sum %s\n", e.name, formatFloat(e.h.Sum())); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s_count %d\n", e.name, e.h.Count())
		}
		if err != nil {
			return err
		}
	}
	return nil
}
