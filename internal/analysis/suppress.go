package analysis

import (
	"go/token"
	"sort"
	"strings"
)

const allowPrefix = "//lint:allow"

// An Allow is one parsed //lint:allow directive.
type Allow struct {
	Analyzer string
	Reason   string
	Pos      token.Position
	used     bool
}

// collectAllows scans every file of every package for //lint:allow
// directives. Malformed directives (missing analyzer, missing reason, or an
// analyzer name the running set does not know) are returned as diagnostics
// attributed to the pseudo-analyzer "lintdirective" — a suppression that
// cannot be audited is itself a finding.
func collectAllows(pkgs []*Package, known map[string]bool) (map[string]map[int][]*Allow, []Diagnostic) {
	allows := map[string]map[int][]*Allow{} // filename -> line -> directives
	var malformed []Diagnostic
	bad := func(pos token.Position, msg string) {
		malformed = append(malformed, Diagnostic{Analyzer: "lintdirective", Pos: pos, Message: msg})
	}
	for _, pkg := range pkgs {
		if !strings.HasPrefix(pkg.ImportPath, ModulePrefix) {
			continue
		}
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, allowPrefix) {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					rest := strings.TrimPrefix(c.Text, allowPrefix)
					if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
						continue // some other //lint:allowX token
					}
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						bad(pos, "malformed //lint:allow: missing analyzer name and reason")
						continue
					}
					name := fields[0]
					if !known[name] {
						bad(pos, "//lint:allow names unknown analyzer "+name)
						continue
					}
					if len(fields) < 2 {
						bad(pos, "//lint:allow "+name+" needs a reason")
						continue
					}
					byLine := allows[pos.Filename]
					if byLine == nil {
						byLine = map[int][]*Allow{}
						allows[pos.Filename] = byLine
					}
					byLine[pos.Line] = append(byLine[pos.Line], &Allow{
						Analyzer: name,
						Reason:   strings.Join(fields[1:], " "),
						Pos:      pos,
					})
				}
			}
		}
	}
	return allows, malformed
}

// Filter applies //lint:allow suppressions to raw diagnostics. It returns
// the surviving diagnostics — including, appended, any directive-audit
// findings: malformed directives and directives that suppressed nothing.
// A directive suppresses a diagnostic of its analyzer on the same line or
// the line directly below it (i.e. the comment sits on the flagged line or
// immediately above).
func Filter(pkgs []*Package, analyzers []*Analyzer, diags []Diagnostic) []Diagnostic {
	known := byName(analyzers)
	allows, audit := collectAllows(pkgs, known)
	var kept []Diagnostic
	for _, d := range diags {
		byLine := allows[d.Pos.Filename]
		suppressed := false
		for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
			for _, a := range byLine[line] {
				if a.Analyzer == d.Analyzer {
					a.used = true
					suppressed = true
				}
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	// Deterministic audit order: the maps are keyed by file and line, so
	// walk them sorted (our own maporder analyzer flags the naive range).
	files := make([]string, 0, len(allows))
	for f := range allows {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		byLine := allows[f]
		lines := make([]int, 0, len(byLine))
		for l := range byLine {
			lines = append(lines, l)
		}
		sort.Ints(lines)
		for _, l := range lines {
			for _, a := range byLine[l] {
				if !a.used {
					audit = append(audit, Diagnostic{
						Analyzer: "lintdirective",
						Pos:      a.Pos,
						Message:  "unused //lint:allow " + a.Analyzer + ": no diagnostic here to suppress",
					})
				}
			}
		}
	}
	kept = append(kept, audit...)
	sortDiagnostics(kept)
	return kept
}
