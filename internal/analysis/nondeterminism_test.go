package analysis_test

import (
	"testing"

	"mpcquery/internal/analysis"
	"mpcquery/internal/analysis/analysistest"
)

func TestNondeterminism(t *testing.T) {
	// nd is deterministic code; service, obs, and the fault injector are
	// on the operational allowlist and must stay silent.
	analysistest.Run(t, "testdata",
		[]*analysis.Analyzer{analysis.Nondeterminism},
		"mpcquery/internal/nd", "mpcquery/internal/service",
		"mpcquery/internal/obs", "mpcquery/internal/transport/fault")
}
