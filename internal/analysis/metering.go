package analysis

import (
	"go/ast"
)

// meteredPackages are the strategy packages whose cross-server data
// movement must be bit-accounted: every value that travels between model
// servers has to pass through an Emitter inside a Cluster.Round, where
// RoundStats charges it. Writing into an Inbox directly, draining an
// Emitter with the transport-facing EachPending, invoking the delivery
// kernel by hand, or constructing engine delivery machinery from a
// composite literal would all move data the Report never meters.
var meteredPackages = []string{
	"internal/core",
	"internal/skew",
	"internal/multiround",
	"internal/aggregate",
}

// Metering enforces the bit-accounting boundary in strategy packages. The
// engine itself and internal/transport legitimately touch these APIs (they
// ARE the accounting and delivery layer); the packages above must not.
var Metering = &Analyzer{
	Name: "metering",
	Doc:  "strategy packages must move cross-server data through engine.Emitter, never by direct inbox/delivery writes",
	Run:  runMetering,
}

func runMetering(pass *Pass) error {
	metered := false
	for _, p := range meteredPackages {
		if pathHasSuffix(pass.Pkg.Path(), p) {
			metered = true
			break
		}
	}
	if !metered {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.CallExpr:
				f := calleeFunc(pass.TypesInfo, v)
				if f == nil {
					return true
				}
				pkgPath, typeName := recvTypeName(f)
				if typeName == "" {
					pkgPath = funcPkgPath(f)
				}
				if !pathHasSuffix(pkgPath, "internal/engine") {
					return true
				}
				switch {
				case typeName == "Inbox" && f.Name() == "Append":
					pass.Reportf(v.Pos(),
						"direct Inbox.Append bypasses bit accounting; emit through engine.Emitter inside Cluster.Round")
				case typeName == "Inbox" && f.Name() == "AppendChunk":
					pass.Reportf(v.Pos(),
						"direct Inbox.AppendChunk bypasses the Emitter's chunk flush and its bit accounting; emit through engine.Emitter inside Cluster.Round")
				case typeName == "Emitter" && f.Name() == "EachPending":
					pass.Reportf(v.Pos(),
						"Emitter.EachPending is the transport-facing drain; strategies must let Cluster.Round deliver")
				case typeName == "" && f.Name() == "DeliverLocal":
					pass.Reportf(v.Pos(),
						"calling engine.DeliverLocal directly skips RoundStats charging; use Cluster.Round")
				}
			case *ast.CompositeLit:
				t := pass.TypeOf(v)
				switch named := namedTypeName(t); named {
				case "Inbox", "Emitter", "DeliveryRound":
					if pathHasSuffix(typePkgPath(t), "internal/engine") {
						pass.Reportf(v.Pos(),
							"constructing engine.%s directly creates unmetered delivery state; obtain it from a Cluster", named)
					}
				}
			}
			return true
		})
	}
	return nil
}
