// Package analysis is mpclint's home: a stdlib-only implementation of the
// go/analysis idea (Analyzer, Pass, Diagnostic, a loader, a driver) plus the
// project's analyzers. The repo's correctness story leans on invariants the
// compiler cannot see — SPMD determinism, bit-accounted communication, a
// single panic-recover boundary — and two of them have already been violated
// in shipped code (PR 3's viewCounter race, PR 6's SkewedStarDatabase
// map-iteration bug). The analyzers in this package turn those postmortems
// into machine-checked rules.
//
// The framework mirrors golang.org/x/tools/go/analysis deliberately, but is
// built on go/ast + go/types + `go list -export` alone so the module keeps
// its zero-dependency go.mod. If x/tools ever becomes a dependency, each
// Analyzer here ports to a x/tools analysis.Analyzer mechanically.
//
// Suppressions: a diagnostic is silenced by a comment
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line directly above it. The reason is
// mandatory, unknown analyzer names are errors, and allows that silence
// nothing are themselves reported — suppressions stay auditable.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ModulePrefix scopes every analyzer: packages outside this module (stdlib,
// future vendored deps) are never analyzed, which keeps `go vet -vettool`
// runs — where the driver is invoked for every dependency — quiet.
const ModulePrefix = "mpcquery"

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:allow comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass is one (analyzer, package) unit of work.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when the checker recorded none.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if t := p.TypesInfo.TypeOf(e); t != nil {
		return t
	}
	return nil
}

// A Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// All returns every analyzer mpclint ships, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		MapOrder,
		Metering,
		PanicDiscipline,
		Nondeterminism,
		ErrCmp,
		RetryBound,
	}
}

// byName maps analyzer names for //lint:allow validation.
func byName(analyzers []*Analyzer) map[string]bool {
	m := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		m[a.Name] = true
	}
	return m
}

// Analyze runs every analyzer over every package and returns the raw
// (unsuppressed) diagnostics sorted by position. Packages outside
// ModulePrefix are skipped.
func Analyze(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if !strings.HasPrefix(pkg.ImportPath, ModulePrefix) {
			continue
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
