package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// pathHasSuffix reports whether an import path is, or ends with, suffix as
// a whole path element ("internal/engine" matches "mpcquery/internal/engine"
// but not "mpcquery/internal/engine2" or "myinternal/engine").
func pathHasSuffix(path, suffix string) bool {
	if path == suffix {
		return true
	}
	return strings.HasSuffix(path, "/"+suffix) ||
		strings.Contains(path, "/"+suffix+"/") ||
		strings.HasPrefix(path, suffix+"/")
}

// calleeFunc resolves the *types.Func a call invokes (method or package
// function), or nil for builtins, conversions, and indirect calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// funcPkgPath returns the import path of the package declaring f ("" for
// universe-scope functions like error.Error).
func funcPkgPath(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// recvTypeName returns (package path, type name) of a method's receiver
// base type, or ("", "") when f is not a method on a named type.
func recvTypeName(f *types.Func) (pkgPath, typeName string) {
	if f == nil {
		return "", ""
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name()
	}
	return obj.Pkg().Path(), obj.Name()
}

// namedTypeName returns the name of t's named type, unwrapping one
// pointer, or "" for unnamed types.
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// typePkgPath returns the declaring package path of t's named type,
// unwrapping one pointer, or "" when there is none.
func typePkgPath(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil {
		return n.Obj().Pkg().Path()
	}
	return ""
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t implements the error interface (directly or
// through a pointer receiver).
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if types.Implements(t, errorInterface) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), errorInterface)
	}
	return false
}

// isErrorInterface reports whether t IS an interface type implementing
// error (the static type carries no concrete identity).
func isErrorInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok && types.Implements(t, errorInterface)
}

// constStringValue returns the compile-time string value of e, if any.
func constStringValue(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// leftmostString digs through a + concatenation chain and returns the
// constant value of its leftmost operand, if it is a constant string.
func leftmostString(info *types.Info, e ast.Expr) (string, bool) {
	for {
		if s, ok := constStringValue(info, e); ok {
			return s, true
		}
		bin, ok := ast.Unparen(e).(*ast.BinaryExpr)
		if !ok {
			return "", false
		}
		e = bin.X
	}
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// objectOf resolves the object an identifier or selector leaf denotes:
// for `x` the variable, for `s.f` the field. Returns nil otherwise.
func objectOf(info *types.Info, e ast.Expr) types.Object {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		if o := info.Uses[v]; o != nil {
			return o
		}
		return info.Defs[v]
	case *ast.SelectorExpr:
		return info.Uses[v.Sel]
	case *ast.IndexExpr:
		return objectOf(info, v.X)
	}
	return nil
}

// usesObject reports whether the subtree rooted at n mentions obj.
func usesObject(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if id, ok := c.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
