package analysis

import (
	"go/ast"
	"go/token"
)

// ErrCmp flags error comparisons that break under wrapping. Run's contract
// is explicit — "Sentinel errors returned (wrapped) by Run; test with
// errors.Is" — and every sentinel this module surfaces is wrapped at least
// once (fmt.Errorf("...: %w", ErrX)) before a caller sees it, so `err ==
// ErrX` is not merely unidiomatic, it is wrong. Flagged shapes:
//
//   - err == sentinel / err != sentinel (either operand error-typed,
//     neither nil);
//   - switch err { case ErrA, ErrB: } on an error-typed tag;
//   - string-matching an error: err.Error() compared with == / !=, or
//     passed to strings.Contains/HasPrefix/HasSuffix/EqualFold/Index.
var ErrCmp = &Analyzer{
	Name: "errcmp",
	Doc:  "sentinel errors must be compared with errors.Is, never == / != or string matching",
	Run:  runErrCmp,
}

func runErrCmp(pass *Pass) error {
	info := pass.TypesInfo
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.BinaryExpr:
				if v.Op != token.EQL && v.Op != token.NEQ {
					return true
				}
				if isNilIdent(info, v.X) || isNilIdent(info, v.Y) {
					return true // err == nil is the one sanctioned identity test
				}
				if isErrorStringCall(pass, v.X) || isErrorStringCall(pass, v.Y) {
					pass.Reportf(v.Pos(),
						"comparing err.Error() text; match the sentinel with errors.Is (messages are not API)")
					return true
				}
				if isErrorInterface(pass.TypeOf(v.X)) || isErrorInterface(pass.TypeOf(v.Y)) {
					op := "=="
					if v.Op == token.NEQ {
						op = "!="
					}
					pass.Reportf(v.Pos(),
						"error compared with %s; use errors.Is — sentinels are wrapped before callers see them", op)
				}
			case *ast.SwitchStmt:
				if v.Tag == nil || !isErrorInterface(pass.TypeOf(v.Tag)) {
					return true
				}
				for _, stmt := range v.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if !isNilIdent(info, e) {
							pass.Reportf(e.Pos(),
								"switch on an error value matches by identity; use an errors.Is chain")
							return true
						}
					}
				}
			case *ast.CallExpr:
				f := calleeFunc(info, v)
				if f == nil || funcPkgPath(f) != "strings" {
					return true
				}
				switch f.Name() {
				case "Contains", "HasPrefix", "HasSuffix", "EqualFold", "Index":
					for _, arg := range v.Args {
						if isErrorStringCall(pass, arg) {
							pass.Reportf(v.Pos(),
								"string-matching err.Error() with strings.%s; match the sentinel with errors.Is", f.Name())
							break
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// isErrorStringCall reports whether e is a call of the form err.Error()
// on an error-typed receiver.
func isErrorStringCall(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return false
	}
	return isErrorType(pass.TypeOf(sel.X))
}
