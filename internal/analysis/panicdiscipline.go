package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// PanicDiscipline classifies every panic site against the contract of
// Run's recover boundary (run.go): internal packages use panics as their
// error channel through the engine's parallel workers, and the boundary
// rewraps what reaches it — typed errors keep their sentinel identity
// (errors.Is works through the wrap), everything else becomes an opaque
// *StrategyError whose message is all the operator ever sees. The
// discipline that keeps those messages attributable and the sentinels
// intact:
//
//   - string panics must carry a subsystem prefix ("engine: ...",
//     "skew: ..."), including through fmt.Sprintf and string
//     concatenation — an unprefixed "index out of range" in a
//     StrategyError is undebuggable;
//   - error panics must be classifiable at the panic site: a typed error
//     value (&MissingRelationError{...}, a constructor returning a
//     concrete error type) or fmt.Errorf with a subsystem prefix.
//     Re-raising an opaque `err` of interface type is flagged — wrap it
//     (fmt.Errorf("pkg: context: %w", err)) so the boundary and the log
//     both know where it came from;
//   - panics with non-error, non-string values (ints, structs) are always
//     flagged;
//   - public (non-internal, non-main) packages may not panic at all: the
//     API contract is "Run never panics", and a panic before the recover
//     boundary is installed escapes to the caller.
//
// Deliberate re-panic propagation sites (recover-and-rethrow in the
// engine's worker pool and the service cache) carry //lint:allow.
var PanicDiscipline = &Analyzer{
	Name: "panicdiscipline",
	Doc:  "panics must be typed errors or subsystem-prefixed strings inside internal/, and absent from public packages",
	Run:  runPanicDiscipline,
}

// panicPrefixRe is the required shape of a string panic's prefix: a
// lowercase subsystem name followed by ": ". The subsystem need not equal
// the package name (internal/localjoin/baseline deliberately reports as
// "localjoin:") — the requirement is that SOME subsystem owns the message.
var panicPrefixRe = regexp.MustCompile(`^[a-z][a-zA-Z0-9_/]*: `)

func runPanicDiscipline(pass *Pass) error {
	path := pass.Pkg.Path()
	internal := strings.Contains(path, "/internal/") || strings.HasPrefix(path, "internal/")
	isMain := pass.Pkg.Name() == "main"
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "panic" {
				return true
			}
			if len(call.Args) != 1 {
				return true
			}
			switch {
			case isMain:
				// Tools own their process; a panic is theirs to spend.
			case !internal:
				pass.Reportf(call.Pos(),
					"public package %s must return errors, not panic: nothing above this frame recovers", pass.Pkg.Name())
			default:
				classifyInternalPanic(pass, call.Args[0])
			}
			return true
		})
	}
	return nil
}

func classifyInternalPanic(pass *Pass, arg ast.Expr) {
	info := pass.TypesInfo

	// Constant string (possibly the head of a + concatenation chain).
	if s, ok := leftmostString(info, arg); ok {
		if !panicPrefixRe.MatchString(s) {
			pass.Reportf(arg.Pos(),
				"panic string %q lacks a subsystem prefix (want \"<subsystem>: ...\"): the StrategyError it becomes is unattributable", truncate(s, 40))
		}
		return
	}

	switch v := ast.Unparen(arg).(type) {
	case *ast.CallExpr:
		f := calleeFunc(info, v)
		if f != nil && funcPkgPath(f) == "fmt" && (f.Name() == "Sprintf" || f.Name() == "Errorf") {
			if len(v.Args) == 0 {
				return
			}
			if s, ok := constStringValue(info, v.Args[0]); ok && !panicPrefixRe.MatchString(s) {
				pass.Reportf(arg.Pos(),
					"panic(fmt.%s) format %q lacks a subsystem prefix (want \"<subsystem>: ...\")", f.Name(), truncate(s, 40))
			}
			return
		}
		// Constructor-style call: fine if it returns a concrete error type,
		// opaque if it returns the bare error interface.
		t := pass.TypeOf(v)
		if isErrorType(t) && !isErrorInterface(t) {
			return
		}
		if isErrorInterface(t) {
			pass.Reportf(arg.Pos(),
				"panic with an opaque error value: wrap it with a subsystem prefix (fmt.Errorf(\"<subsystem>: ...: %%w\", err)) so the recover boundary can attribute it")
			return
		}
		pass.Reportf(arg.Pos(), "panic value of type %s is neither an error nor a prefixed string", typeString(t))
	case *ast.UnaryExpr, *ast.CompositeLit:
		t := pass.TypeOf(arg)
		if isErrorType(t) {
			return // typed error panic, e.g. &MissingRelationError{...}
		}
		pass.Reportf(arg.Pos(), "panic value of type %s is neither an error nor a prefixed string", typeString(t))
	default:
		t := pass.TypeOf(arg)
		switch {
		case isErrorInterface(t):
			pass.Reportf(arg.Pos(),
				"panic with an opaque error value: wrap it with a subsystem prefix (fmt.Errorf(\"<subsystem>: ...: %%w\", err)) so the recover boundary can attribute it")
		case isErrorType(t):
			// A concrete error value re-raised by name keeps its type
			// through the boundary; errors.Is still works.
		case t != nil && t.String() == "string":
			pass.Reportf(arg.Pos(),
				"panic with a non-constant string: prefix it with its subsystem (\"<subsystem>: \" + ...)")
		default:
			pass.Reportf(arg.Pos(), "panic value of type %s is neither an error nor a prefixed string", typeString(t))
		}
	}
}

func typeString(t types.Type) string {
	if t == nil {
		return "<unknown>"
	}
	return t.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
