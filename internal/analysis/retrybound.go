package analysis

import (
	"go/ast"
	"go/token"
)

// RetryBound flags retry loops that can spin forever: a `for` loop with no
// condition whose body sleeps (time.Sleep) without ever consulting a
// context. PR 9's recovery machinery made sleep-and-retry a sanctioned
// pattern — redial backoff, replay settling, half-open probes — and every
// such loop must terminate on its own: either the loop condition bounds
// the attempts (`for attempt <= max`) or the body polls ctx.Done()/
// ctx.Err() so cancellation reaches it. An unbounded sleeping loop is a
// wedge: a dead peer turns it into a goroutine that never exits and a
// Close that never drains.
//
// `for range` loops and condition-bounded loops are accepted as is; sleeps
// inside nested loops or function literals are attributed to their own
// scope, not the enclosing loop.
var RetryBound = &Analyzer{
	Name: "retrybound",
	Doc:  "sleeping retry loops must bound their attempts in the loop condition or poll a context",
	Run:  runRetryBound,
}

func runRetryBound(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok || loop.Cond != nil {
				// Conditioned loops carry their bound in the condition;
				// range loops are bounded by their operand.
				return true
			}
			sleepPos := token.NoPos
			ctxPolled := false
			ast.Inspect(loop.Body, func(m ast.Node) bool {
				switch v := m.(type) {
				case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
					// A nested loop or closure sleeps on its own account.
					return false
				case *ast.CallExpr:
					f := calleeFunc(pass.TypesInfo, v)
					if f == nil {
						return true
					}
					if funcPkgPath(f) == "time" && f.Name() == "Sleep" {
						if _, typeName := recvTypeName(f); typeName == "" && !sleepPos.IsValid() {
							sleepPos = v.Pos()
						}
					}
					if pkg, typeName := recvTypeName(f); pkg == "context" && typeName == "Context" &&
						(f.Name() == "Done" || f.Name() == "Err") {
						ctxPolled = true
					}
				}
				return true
			})
			if sleepPos.IsValid() && !ctxPolled {
				pass.Reportf(sleepPos,
					"time.Sleep in an unbounded for-loop; bound the retries in the loop condition or poll ctx.Done()/ctx.Err() so the loop can be canceled")
			}
			return true
		})
	}
	return nil
}
