package analysis_test

import (
	"testing"

	"mpcquery/internal/analysis"
	"mpcquery/internal/analysis/analysistest"
)

func TestRetryBound(t *testing.T) {
	analysistest.Run(t, "testdata",
		[]*analysis.Analyzer{analysis.RetryBound},
		"mpcquery/internal/rb")
}
