package analysis_test

import (
	"testing"

	"mpcquery/internal/analysis"
)

// TestLoadPackagesModule smoke-tests the production loader against the real
// module: the analyzed package must come back type-checked with its imports
// resolved through export data.
func TestLoadPackagesModule(t *testing.T) {
	pkgs, err := analysis.LoadPackages(".", "mpcquery/internal/data")
	if err != nil {
		t.Fatalf("LoadPackages: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.ImportPath != "mpcquery/internal/data" {
		t.Errorf("ImportPath = %q", p.ImportPath)
	}
	if p.Types == nil || p.TypesInfo == nil || len(p.Files) == 0 {
		t.Errorf("package not fully loaded: Types=%v files=%d", p.Types, len(p.Files))
	}
	if p.Types.Scope().Lookup("Relation") == nil {
		t.Errorf("data.Relation not found in loaded package scope")
	}
}

// TestAnalyzeSkipsForeignPackages checks the ModulePrefix scope: analyzers
// never fire on packages outside the module.
func TestAnalyzeSkipsForeignPackages(t *testing.T) {
	diags, err := analysis.Analyze([]*analysis.Package{{ImportPath: "example.com/foreign"}}, analysis.All())
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(diags) != 0 {
		t.Errorf("got %d diagnostics for a foreign package, want 0", len(diags))
	}
}
