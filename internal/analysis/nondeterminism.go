package analysis

import (
	"go/ast"
)

// ndTimeAllowedPkgs may call time.Now/time.Since: operational layers whose
// wall-clock readings never reach a Report fingerprint. internal/service
// feeds latency metrics; internal/transport arms dial/IO deadlines;
// internal/obs is telemetry by definition — traces carry timestamps and a
// trace's deterministic skeleton (Structure) excludes them. The engine's
// phase timers are NOT allowlisted wholesale — its sites carry individual
// //lint:allow comments so any new wall-clock read in the engine has to
// justify itself.
var ndTimeAllowedPkgs = []string{
	"internal/obs",
	"internal/service",
	"internal/transport",
	// The fault injector is operational by construction: its schedule is a
	// pure seeded hash, but executing a scheduled delay or straggle stalls
	// on the wall clock. Those stalls never reach a fingerprint — chaos
	// runs assert bit-identity against fault-free references.
	"internal/transport/fault",
}

// ndRandAllowedFuncs are the package-level math/rand functions that do not
// touch the global (process-seeded) source: constructors for explicit
// seeded sources. Everything else (rand.Intn, rand.Int63, rand.Perm,
// rand.Shuffle, rand.Seed, ...) draws from process-global state that SPMD
// ranks cannot replicate.
var ndRandAllowedFuncs = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true, // takes an explicit *rand.Rand
}

// Nondeterminism flags ambient-entropy reads in deterministic code. Every
// rank of the distributed runtime re-executes the full strategy and must
// derive bit-identical plans, layouts, and outputs; the only sanctioned
// randomness is a *rand.Rand built from a seed threaded through options,
// and the only sanctioned clocks live in the operational allowlist above.
// Tools (package main) are exempt: stamping a benchmark JSON with
// time.Now is their job.
var Nondeterminism = &Analyzer{
	Name: "nondeterminism",
	Doc:  "time.Now only in the operational allowlist; math/rand only through explicitly seeded sources",
	Run:  runNondeterminism,
}

func runNondeterminism(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	timeAllowed := false
	for _, p := range ndTimeAllowedPkgs {
		if pathHasSuffix(pass.Pkg.Path(), p) {
			timeAllowed = true
			break
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := calleeFunc(pass.TypesInfo, call)
			if f == nil {
				return true
			}
			if _, typeName := recvTypeName(f); typeName != "" {
				return true // methods (e.g. (*rand.Rand).Intn) are seeded-source calls
			}
			switch funcPkgPath(f) {
			case "time":
				if !timeAllowed && (f.Name() == "Now" || f.Name() == "Since" || f.Name() == "Until") {
					pass.Reportf(call.Pos(),
						"time.%s reads the wall clock in deterministic code; only the phase-timing/metrics allowlist may (ranks would disagree)", f.Name())
				}
			case "math/rand", "math/rand/v2":
				if !ndRandAllowedFuncs[f.Name()] {
					pass.Reportf(call.Pos(),
						"rand.%s draws from the process-global source; thread a seeded *rand.Rand from options instead", f.Name())
				}
			}
			return true
		})
	}
	return nil
}
