package analysis_test

import (
	"testing"

	"mpcquery/internal/analysis"
	"mpcquery/internal/analysis/analysistest"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata",
		[]*analysis.Analyzer{analysis.MapOrder},
		"mpcquery/internal/maporder")
}
