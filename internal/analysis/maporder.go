package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags `range` statements over maps whose iteration order feeds
// an order-sensitive sink. Go randomizes map iteration, so any value built
// by such a loop differs from run to run — and, fatally for the SPMD
// distributed runtime, from rank to rank: PR 6's SkewedStarDatabase bug
// planted heavy hitters in map order, truncated the tail, and left three
// ranks holding three different star plans.
//
// Sinks, checked inside the loop body:
//
//   - append to a slice declared outside the loop (the appended order
//     escapes the iteration) — unless the same variable is passed to a
//     sort.*/slices.* call or a *Sort* function later in the enclosing
//     function, which is the canonical collect-then-sort idiom;
//   - engine emission and seeding (Emitter.EmitTuple/EmitBatch,
//     Combiner.Add, Cluster.Seed/SeedBatch, Inbox.Append): emission order
//     becomes inbox order becomes output order;
//   - data.Relation appends (Append/AppendTuple/AppendVals/...): tuple
//     order is fingerprint-visible;
//   - byte-accumulator writes (strings.Builder, bytes.Buffer, hash.Hash,
//     maphash.Hash): fingerprints and rendered plans must not depend on
//     map order.
//
// Iterating a map to fill another map, a set, or per-iteration locals is
// fine and not flagged. Loops whose order is genuinely harmless at a sink
// (e.g. summed into a commutative accumulator the analyzer cannot prove)
// take a `//lint:allow maporder <reason>`.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flags map iteration feeding order-sensitive sinks (appends, emissions, fingerprints)",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkMapRanges(pass, fn.Body)
		}
	}
	return nil
}

func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	var ranges []*ast.RangeStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if rs, ok := n.(*ast.RangeStmt); ok && isMapType(pass.TypeOf(rs.X)) {
			ranges = append(ranges, rs)
		}
		return true
	})
	for _, rs := range ranges {
		reportMapRangeSinks(pass, body, rs)
	}
}

func reportMapRangeSinks(pass *Pass, enclosing *ast.BlockStmt, rs *ast.RangeStmt) {
	info := pass.TypesInfo
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Builtin append whose target lives beyond the loop.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(call.Args) > 0 {
				obj := objectOf(info, call.Args[0])
				if obj != nil && !insideNode(rs, obj.Pos()) && !sortedLater(pass, enclosing, rs, obj) {
					pass.Reportf(call.Pos(),
						"append to %q inside range over map %s leaks map iteration order; sort the keys first (or sort %q before use)",
						obj.Name(), exprString(rs.X), obj.Name())
				}
				return true
			}
		}
		f := calleeFunc(info, call)
		if f == nil {
			return true
		}
		if msg := orderSensitiveCall(f); msg != "" {
			pass.Reportf(call.Pos(),
				"%s inside range over map %s makes %s depend on map iteration order; iterate sorted keys instead",
				f.Name(), exprString(rs.X), msg)
		}
		return true
	})
}

// orderSensitiveCall classifies f as an order-sensitive sink, returning a
// short description of what the call makes order-dependent ("" = not a
// sink).
func orderSensitiveCall(f *types.Func) string {
	pkgPath, typeName := recvTypeName(f)
	name := f.Name()
	switch {
	case pathHasSuffix(pkgPath, "internal/engine"):
		switch {
		case typeName == "Emitter" && (name == "EmitTuple" || name == "EmitBatch"),
			typeName == "Combiner" && name == "Add",
			typeName == "Cluster" && (name == "Seed" || name == "SeedBatch"),
			typeName == "Inbox" && name == "Append":
			return "emission/inbox order (and therefore output order and fingerprints)"
		}
	case pathHasSuffix(pkgPath, "internal/data") && typeName == "Relation" && strings.HasPrefix(name, "Append"):
		return "relation tuple order (fingerprint-visible)"
	case pkgPath == "strings" && typeName == "Builder" && strings.HasPrefix(name, "Write"):
		return "the built string"
	case pkgPath == "bytes" && typeName == "Buffer" && strings.HasPrefix(name, "Write"):
		return "the buffered bytes"
	case pkgPath == "hash/maphash" && typeName == "Hash" && strings.HasPrefix(name, "Write"):
		return "the hash value"
	case name == "Write" && isHashInterfaceMethod(f):
		return "the hash value"
	}
	return ""
}

// isHashInterfaceMethod reports whether f is a method reached through the
// hash package's interfaces (hash.Hash, hash.Hash32, hash.Hash64). A
// generic io.Writer receiver is deliberately NOT a sink — too coarse.
func isHashInterfaceMethod(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	if named, ok := sig.Recv().Type().(*types.Named); ok {
		obj := named.Obj()
		return obj.Pkg() != nil && obj.Pkg().Path() == "hash"
	}
	return false
}

// insideNode reports whether pos falls within n's source extent.
func insideNode(n ast.Node, pos token.Pos) bool {
	return n.Pos() <= pos && pos < n.End()
}

// sortedLater reports whether obj is passed, after the range statement, to
// a call that establishes a deterministic order: anything from sort or
// slices, or a function/method whose name contains "Sort".
func sortedLater(pass *Pass, enclosing *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	info := pass.TypesInfo
	found := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		if !isSortingCall(info, call) {
			return true
		}
		for _, arg := range call.Args {
			if usesObject(info, arg, obj) {
				found = true
				break
			}
		}
		return !found
	})
	return found
}

func isSortingCall(info *types.Info, call *ast.CallExpr) bool {
	f := calleeFunc(info, call)
	if f == nil {
		return false
	}
	if p := funcPkgPath(f); p == "sort" || p == "slices" {
		return true
	}
	return strings.Contains(f.Name(), "Sort") || strings.Contains(f.Name(), "sort")
}

func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.IndexExpr:
		return exprString(v.X) + "[...]"
	case *ast.CallExpr:
		return exprString(v.Fun) + "(...)"
	case *ast.ParenExpr:
		return exprString(v.X)
	}
	return "expression"
}
