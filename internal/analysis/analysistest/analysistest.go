// Package analysistest runs an analyzer over a GOPATH-style fixture tree and
// checks its diagnostics against // want "regexp" comments, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract on the stdlib-only
// framework in internal/analysis.
//
// A fixture line earns a diagnostic by carrying a trailing comment of the form
//
//	code here // want "must match the message"
//	more code // want "first" "second"
//
// Each quoted string is a regular expression matched against the diagnostic
// message; expectations and diagnostics on the same file:line are matched as
// a multiset, so two identical wants require two diagnostics.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"mpcquery/internal/analysis"
)

// want is one expectation parsed from a fixture comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// Run loads the fixture packages under testdata/src (paths are import paths
// relative to that root, e.g. "mpcquery/internal/maporder"), applies the
// analyzers, filters through the //lint:allow machinery, and reports any
// mismatch between the produced diagnostics and the // want expectations in
// the fixture sources as test errors.
func Run(t *testing.T, testdata string, analyzers []*analysis.Analyzer, paths ...string) {
	t.Helper()
	srcRoot := filepath.Join(testdata, "src")
	pkgs, err := analysis.LoadTestdata(srcRoot, paths...)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", paths, err)
	}
	diags, err := analysis.Analyze(pkgs, analyzers)
	if err != nil {
		t.Fatalf("analyzing fixtures %v: %v", paths, err)
	}
	diags = analysis.Filter(pkgs, analyzers, diags)

	wants, err := collectWants(pkgs)
	if err != nil {
		t.Fatal(err)
	}

	for _, d := range diags {
		if !claim(wants, d.Pos, d.Message) {
			t.Errorf("unexpected diagnostic at %s:%d: %s (%s)",
				filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("missing diagnostic at %s:%d: no message matched %q",
				filepath.Base(w.file), w.line, w.raw)
		}
	}
}

// claim marks the first unhit expectation on the diagnostic's line whose
// regexp matches the message. Returns false when no expectation claims it.
func claim(wants []*want, pos token.Position, msg string) bool {
	for _, w := range wants {
		if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(msg) {
			w.hit = true
			return true
		}
	}
	return false
}

// collectWants scans every fixture file's comments for // want clauses.
func collectWants(pkgs []*analysis.Package) ([]*want, error) {
	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := c.Text
					i := strings.Index(text, "want ")
					if !strings.HasPrefix(text, "//") || i < 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					res, err := parseWants(text[i+len("want "):])
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
					}
					for _, r := range res {
						re, err := regexp.Compile(r)
						if err != nil {
							return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, r, err)
						}
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: r})
					}
				}
			}
		}
	}
	return wants, nil
}

// parseWants splits `"a" "b"` into its quoted regexp strings.
func parseWants(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' {
			return nil, fmt.Errorf("expected quoted regexp, got %q", s)
		}
		// Find the closing quote, honoring backslash escapes.
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated quoted regexp in %q", s)
		}
		q, err := strconv.Unquote(s[:end+1])
		if err != nil {
			return nil, fmt.Errorf("unquoting %q: %v", s[:end+1], err)
		}
		out = append(out, q)
		s = strings.TrimSpace(s[end+1:])
	}
	return out, nil
}
