package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// loader resolves imports three ways, in priority order: export data
// produced by `go list -export` (module deps and stdlib), then source
// directories registered for the path (analysis targets, testdata
// fixtures), then failure. One loader instance is one consistent
// type-checking universe: a FileSet plus a package identity per path.
type loader struct {
	fset    *token.FileSet
	exports map[string]string // import path -> export data file
	srcDirs map[string]string // import path -> source directory
	loaded  map[string]*Package
	gc      types.Importer
}

func newLoader() *loader {
	l := &loader{
		fset:    token.NewFileSet(),
		exports: map[string]string{},
		srcDirs: map[string]string{},
		loaded:  map[string]*Package{},
	}
	l.gc = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	return l
}

// Import implements types.Importer over the loader's universe. Export
// data wins over source-loaded packages: analysis targets are loaded from
// source AND imported by later targets, and serving the source instance
// would clash with the gc-imported instance already referenced through
// transitive dependencies' export data (one import path, two
// *types.Package identities).
func (l *loader) Import(path string) (*types.Package, error) {
	if _, ok := l.exports[path]; ok {
		return l.gc.Import(path)
	}
	if p, ok := l.loaded[path]; ok {
		return p.Types, nil
	}
	if dir, ok := l.srcDirs[path]; ok {
		p, err := l.loadSource(path, dir)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return nil, fmt.Errorf("cannot resolve import %q: no export data or source directory", path)
}

// loadSource parses and type-checks the package in dir (non-test files).
func (l *loader) loadSource(importPath, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return l.loadFiles(importPath, dir, names)
}

func (l *loader) loadFiles(importPath, dir string, names []string) (*Package, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("package %s: no Go files in %s", importPath, dir)
	}
	var files []*ast.File
	for _, n := range names {
		path := n
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, n)
		}
		f, err := parser.ParseFile(l.fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}
	p := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}
	l.loaded[importPath] = p
	return p, nil
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
}

func goList(dir string, args ...string) ([]listPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %s: decoding: %w", strings.Join(args, " "), err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadPackages loads the packages matched by patterns in the module rooted
// at (or containing) dir, type-checked from source, with all dependencies
// resolved through `go list -export` build-cache export data. This is the
// production entry point used by cmd/mpclint.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, err := goList(dir, append([]string{"-json=ImportPath,Dir,GoFiles"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	deps, err := goList(dir, append([]string{"-e", "-export", "-deps", "-json=ImportPath,Export"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	l := newLoader()
	for _, d := range deps {
		if d.Export != "" {
			l.exports[d.ImportPath] = d.Export
		}
	}
	var out []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		l.srcDirs[t.ImportPath] = t.Dir
		p, err := l.loadFiles(t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// LoadUnit type-checks one package from an explicit file list with imports
// resolved through pre-built export data — the `go vet -vettool` unit of
// work, where cmd/go supplies the import map and export files and the tool
// must not run the build itself.
func LoadUnit(importPath string, goFiles []string, importMap, packageFile map[string]string) (*Package, error) {
	l := newLoader()
	for path, file := range packageFile {
		l.exports[path] = file
	}
	// Route source-level import paths through the vet config's ImportMap
	// (vendoring, "std" remapping) before the export lookup.
	for src, canonical := range importMap {
		if src == canonical {
			continue
		}
		if f, ok := packageFile[canonical]; ok {
			l.exports[src] = f
		}
	}
	return l.loadFiles(importPath, "", goFiles)
}

// LoadTestdata loads fixture packages from a GOPATH-style tree: srcRoot
// contains one directory per import path (srcRoot/<importPath>/*.go).
// Imports between fixtures resolve within the tree; everything else is
// expected to be standard library and resolves through export data from
// one `go list -export` call. This is the analysistest entry point.
func LoadTestdata(srcRoot string, paths ...string) ([]*Package, error) {
	l := newLoader()
	var std []string
	seenStd := map[string]bool{}
	// Register every fixture directory, collecting external imports.
	err := filepath.WalkDir(srcRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		dir := filepath.Dir(path)
		rel, err := filepath.Rel(srcRoot, dir)
		if err != nil {
			return err
		}
		importPath := filepath.ToSlash(rel)
		l.srcDirs[importPath] = dir
		f, err := parser.ParseFile(token.NewFileSet(), path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			ip := strings.Trim(imp.Path.Value, `"`)
			if !seenStd[ip] {
				seenStd[ip] = true
				std = append(std, ip)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var external []string
	for _, ip := range std {
		if _, ok := l.srcDirs[ip]; !ok {
			external = append(external, ip)
		}
	}
	if len(external) > 0 {
		sort.Strings(external)
		deps, err := goList(srcRoot, append([]string{"-e", "-export", "-deps", "-json=ImportPath,Export"}, external...)...)
		if err != nil {
			return nil, err
		}
		for _, d := range deps {
			if d.Export != "" {
				l.exports[d.ImportPath] = d.Export
			}
		}
	}
	var out []*Package
	for _, p := range paths {
		dir, ok := l.srcDirs[p]
		if !ok {
			return nil, fmt.Errorf("no fixture package %q under %s", p, srcRoot)
		}
		pkg, err := l.loadSource(p, dir)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}
