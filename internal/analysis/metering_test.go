package analysis_test

import (
	"testing"

	"mpcquery/internal/analysis"
	"mpcquery/internal/analysis/analysistest"
)

func TestMetering(t *testing.T) {
	// skew is on the metered list; driver is not and must stay silent.
	analysistest.Run(t, "testdata",
		[]*analysis.Analyzer{analysis.Metering},
		"mpcquery/internal/skew", "mpcquery/internal/driver")
}
