package analysis_test

import (
	"strings"
	"testing"

	"mpcquery/internal/analysis"
)

// TestSuppression drives the //lint:allow machinery end-to-end on the sup
// fixture: well-formed directives suppress, malformed and unused ones are
// audit findings, and a missing-reason directive does NOT suppress.
func TestSuppression(t *testing.T) {
	analyzers := []*analysis.Analyzer{analysis.Nondeterminism}
	pkgs, err := analysis.LoadTestdata("testdata/src", "mpcquery/internal/sup")
	if err != nil {
		t.Fatalf("loading sup fixture: %v", err)
	}
	diags, err := analysis.Analyze(pkgs, analyzers)
	if err != nil {
		t.Fatalf("analyzing sup fixture: %v", err)
	}
	filtered := analysis.Filter(pkgs, analyzers, diags)

	// Raw run: three time.Now findings (two suppressed later, one under the
	// reasonless directive).
	if len(diags) != 3 {
		t.Errorf("raw diagnostics = %d, want 3:\n%s", len(diags), render(diags))
	}

	wantSubstrings := []string{
		"needs a reason",                     // //lint:allow nondeterminism (no reason)
		"reads the wall clock",               // the time.Now the reasonless allow failed to cover
		"unknown analyzer doesnotexist",      // //lint:allow doesnotexist ...
		"unused //lint:allow nondeterminism", // allow over a clean line
	}
	if len(filtered) != len(wantSubstrings) {
		t.Fatalf("filtered diagnostics = %d, want %d:\n%s", len(filtered), len(wantSubstrings), render(filtered))
	}
	for _, sub := range wantSubstrings {
		found := false
		for _, d := range filtered {
			if strings.Contains(d.Message, sub) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no filtered diagnostic contains %q:\n%s", sub, render(filtered))
		}
	}
	// The two well-formed allows must have silenced their time.Now calls.
	nd := 0
	for _, d := range filtered {
		if d.Analyzer == "nondeterminism" {
			nd++
		}
	}
	if nd != 1 {
		t.Errorf("surviving nondeterminism diagnostics = %d, want 1 (only the reasonless-allow line):\n%s", nd, render(filtered))
	}
}

func render(diags []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("  " + d.String() + "\n")
	}
	return b.String()
}
