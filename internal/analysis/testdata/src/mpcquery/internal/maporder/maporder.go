// Package maporder exercises the maporder analyzer: map ranges feeding
// order-sensitive sinks are flagged; collect-then-sort and map-to-map
// shapes are not.
package maporder

import (
	"sort"
	"strings"

	"mpcquery/internal/data"
	"mpcquery/internal/engine"
)

// appendLeak builds a slice in map iteration order and returns it.
func appendLeak(m map[int64]int) []int64 {
	var keys []int64
	for k := range m {
		keys = append(keys, k) // want "leaks map iteration order"
	}
	return keys
}

// collectThenSort is the sanctioned idiom: the appended slice is sorted
// before use, so the map's order never escapes.
func collectThenSort(m map[int64]int) []int64 {
	var keys []int64
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// emitInMapRange makes wire order depend on map order.
func emitInMapRange(m map[int64][]int64, em *engine.Emitter) {
	for dst, tuple := range m {
		em.EmitTuple(int(dst), tuple) // want "emission/inbox order"
	}
}

// seedInMapRange makes the cluster's initial placement order map-dependent.
func seedInMapRange(m map[int64][]int64, c *engine.Cluster) {
	for s, tuple := range m {
		c.Seed(int(s), tuple) // want "emission/inbox order"
	}
}

// combineInMapRange makes partial-aggregate accumulation order map-dependent.
func combineInMapRange(m map[int64]int64, cb *engine.Combiner) {
	for k, v := range m {
		cb.Add(0, []int64{k}, v) // want "emission/inbox order"
	}
}

// relationAppend makes tuple order (fingerprint-visible) map-dependent.
func relationAppend(m map[int64]int64, r *data.Relation) {
	for k, v := range m {
		r.Append(k, v) // want "relation tuple order"
	}
}

// renderPlan makes a rendered string map-dependent.
func renderPlan(m map[int64]string) string {
	var b strings.Builder
	for _, s := range m {
		b.WriteString(s) // want "the built string"
	}
	return b.String()
}

// mapToMap copies a map into a map: order-insensitive, not flagged.
func mapToMap(m map[int64]int) map[int64]int {
	out := make(map[int64]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// localAppend appends to a slice declared inside the loop: the order never
// escapes an iteration, not flagged.
func localAppend(m map[int64][]int64) int {
	n := 0
	for _, vs := range m {
		var local []int64
		local = append(local, vs...)
		n += len(local)
	}
	return n
}
