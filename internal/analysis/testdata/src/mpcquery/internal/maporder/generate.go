package maporder

import "sort"

// skewedStarIDs is the PR 6 SkewedStarDatabase regression shape: heavy-hitter
// ids collected in map iteration order and then truncated. The truncation
// keeps a DIFFERENT k-subset on every rank, so three ranks built three
// different star layouts. maporder must catch the collection.
func skewedStarIDs(heavy map[int64]int, k int) []int64 {
	var ids []int64
	for v := range heavy {
		ids = append(ids, v) // want "leaks map iteration order"
	}
	if len(ids) > k {
		ids = ids[:k]
	}
	return ids
}

// skewedStarIDsFixed is the PR 6 fix: sort before truncating, so every rank
// keeps the same k-subset in the same order.
func skewedStarIDsFixed(heavy map[int64]int, k int) []int64 {
	var ids []int64
	for v := range heavy {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if len(ids) > k {
		ids = ids[:k]
	}
	return ids
}
