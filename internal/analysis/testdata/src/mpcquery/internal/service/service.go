// Package service sits on the nondeterminism time allowlist: its wall-clock
// readings feed operational latency metrics that never reach a fingerprint,
// so time.Now here is clean.
package service

import "time"

func latency(t0 time.Time) time.Duration {
	return time.Since(t0)
}

func stamp() time.Time {
	return time.Now()
}
