// Package nd exercises nondeterminism: ambient clocks and the process-global
// rand source are flagged; explicitly seeded sources and their methods are
// the sanctioned randomness.
package nd

import (
	"math/rand"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want "reads the wall clock"
}

func elapsed(t0 time.Time) float64 {
	return time.Since(t0).Seconds() // want "reads the wall clock"
}

func globalRand() int {
	return rand.Intn(10) // want "process-global source"
}

func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // fine: explicit seeded source
	return r.Intn(10)                   // fine: method on seeded *rand.Rand
}
