// Package rb exercises retrybound: sleeping retry loops must bound their
// attempts in the loop condition or poll a context so cancellation can
// reach them; everything else stays silent.
package rb

import (
	"context"
	"time"
)

func unboundedRetry(try func() error) {
	for {
		if try() == nil {
			return
		}
		time.Sleep(10 * time.Millisecond) // want "unbounded for-loop"
	}
}

func boundedByCondition(try func() error, max int) error {
	var err error
	for attempt := 0; attempt <= max; attempt++ {
		if err = try(); err == nil {
			return nil
		}
		time.Sleep(10 * time.Millisecond) // fine: the condition bounds the attempts
	}
	return err
}

func ctxPolled(ctx context.Context, try func() error) error {
	for {
		if try() == nil {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		time.Sleep(10 * time.Millisecond) // fine: ctx.Err ends the loop on cancellation
	}
}

func ctxSelect(ctx context.Context, try func() error) error {
	for {
		if try() == nil {
			return nil
		}
		time.Sleep(time.Millisecond) // fine: ctx.Done is consulted each pass
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
	}
}

func rangeLoop(tries []func()) {
	for _, try := range tries {
		try()
		time.Sleep(time.Millisecond) // fine: range loops are bounded by their operand
	}
}

func nestedScopes(try func() error, max int) {
	for {
		// The closure's sleep belongs to the closure, not this loop; the
		// inner bounded loop owns its own sleep. Neither reaches here, and
		// this loop itself never sleeps.
		go func() {
			time.Sleep(time.Millisecond)
		}()
		for i := 0; i < max; i++ {
			time.Sleep(time.Millisecond) // fine: bounded inner loop
		}
		if try() == nil {
			return
		}
	}
}

func innerUnbounded(try func() error) {
	for i := 0; i < 3; i++ {
		for {
			if try() == nil {
				break
			}
			time.Sleep(time.Millisecond) // want "unbounded for-loop"
		}
	}
}
