// Package fault sits on the nondeterminism time allowlist: the fault
// schedule itself is a pure seeded hash, but executing a scheduled delay
// measures and stalls on the wall clock, and none of it reaches a Report
// fingerprint — chaos runs assert bit-identity against fault-free
// references. time.Now/Since here is clean.
package fault

import "time"

func stallStart() time.Time {
	return time.Now()
}

func stalledFor(t0 time.Time) time.Duration {
	return time.Since(t0)
}
