// Package driver is NOT on the metering list: it may touch the delivery
// machinery freely (this is the engine-adjacent layer's privilege), so
// metering reports nothing here.
package driver

import "mpcquery/internal/engine"

func deliver(in *engine.Inbox, tuple []int64) {
	in.Append(tuple)
	in.AppendChunk(0, 0, 1, 2, tuple, false)
	io := &engine.DeliveryRound{Round: 0, P: 2}
	engine.DeliverLocal(io)
}
