// Package skew is a METERED fixture package (its import path suffix is on
// the metering list): cross-server data movement must go through
// engine.Emitter inside Cluster.Round. Direct inbox writes, transport-facing
// drains, hand-invoked delivery, and hand-built delivery state are flagged.
package skew

import "mpcquery/internal/engine"

func goodEmit(em *engine.Emitter, tuple []int64) {
	em.EmitTuple(0, tuple) // metered path: not flagged
}

func badInboxWrite(in *engine.Inbox, tuple []int64) {
	in.Append(tuple) // want "bypasses bit accounting"
}

func badChunkWrite(in *engine.Inbox, vals []int64) {
	in.AppendChunk(0, 0, 1, 2, vals, false) // want "bypasses the Emitter's chunk flush"
}

func badDrain(em *engine.Emitter) {
	em.EachPending(func(dst int, t []int64) {}) // want "transport-facing drain"
}

func badDeliver() {
	io := &engine.DeliveryRound{Round: 0, P: 2} // want "unmetered delivery state"
	engine.DeliverLocal(io)                     // want "skips RoundStats charging"
}

func badInboxLit() engine.Inbox {
	return engine.Inbox{} // want "unmetered delivery state"
}
