// Package ec exercises errcmp: sentinels are wrapped before callers see
// them, so identity and string comparison are wrong, not just unidiomatic.
package ec

import (
	"errors"
	"strings"
)

var ErrGone = errors.New("ec: gone")
var ErrBusy = errors.New("ec: busy")

func identity(err error) bool {
	return err == ErrGone // want "use errors.Is"
}

func negIdentity(err error) bool {
	return err != ErrBusy // want "use errors.Is"
}

func nilCheck(err error) bool {
	return err == nil // fine: the one sanctioned identity test
}

func textMatch(err error) bool {
	return err.Error() == "ec: gone" // want "err.Error\\(\\) text"
}

func switchIdentity(err error) int {
	switch err { // matching by identity through the tag
	case ErrGone: // want "errors.Is chain"
		return 1
	case nil:
		return 0
	}
	return 2
}

func containsMatch(err error) bool {
	return strings.Contains(err.Error(), "gone") // want "strings.Contains"
}

func sanctioned(err error) bool {
	return errors.Is(err, ErrGone) // fine
}
