// Package obs sits on the nondeterminism time allowlist: it is the
// telemetry layer — traces and metrics carry wall-clock readings by
// design, and the deterministic views (a trace's Structure, a Report's
// fingerprint) exclude them. time.Now here is clean.
package obs

import "time"

func spanStart() time.Time {
	return time.Now()
}

func spanDuration(t0 time.Time) time.Duration {
	return time.Since(t0)
}
