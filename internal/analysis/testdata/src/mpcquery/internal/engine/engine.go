// Package engine is a fixture stub exposing the API shapes the analyzers
// classify: emission/seeding sinks for maporder and the delivery machinery
// metering fences off. Signatures only; no behavior.
package engine

// Emitter is the metered emission path.
type Emitter struct{}

func (e *Emitter) EmitTuple(dst int, tuple []int64)       {}
func (e *Emitter) EmitBatch(dst int, tuples [][]int64)    {}
func (e *Emitter) EachPending(f func(dst int, t []int64)) {}

// Combiner accumulates pre-shuffle partial aggregates in add order.
type Combiner struct{}

func (c *Combiner) Add(dst int, key []int64, val int64) {}

// Inbox is a destination's received-tuple arena.
type Inbox struct{}

func (i *Inbox) Append(tuple []int64) {}

// AppendChunk is the streaming chunk-delivery entry (Emitter flush only).
func (i *Inbox) AppendChunk(sender, seq, kind, arity int, vals []int64, broadcast bool) {}

// Cluster is the round driver.
type Cluster struct{}

func (c *Cluster) Seed(server int, tuple []int64)    {}
func (c *Cluster) SeedBatch(server int, t [][]int64) {}

// DeliveryRound is one round's transport view.
type DeliveryRound struct {
	Round int
	P     int
}

// DeliverLocal is the in-process delivery kernel.
func DeliverLocal(io *DeliveryRound) {}
