// Package pd exercises panicdiscipline inside internal/: panics are the
// error channel to Run's recover boundary, so every panic value must be
// attributable — a typed error or a subsystem-prefixed string.
package pd

import (
	"errors"
	"fmt"
)

// BadInputError is a typed error the recover boundary can classify.
type BadInputError struct{ Atom string }

func (e *BadInputError) Error() string { return "pd: bad input " + e.Atom }

func prefixedString() {
	panic("pd: invariant violated") // fine: subsystem-prefixed
}

func unprefixedString() {
	panic("invariant violated") // want "lacks a subsystem prefix"
}

func prefixedConcat(what string) {
	panic("pd: unknown " + what) // fine: prefixed concatenation head
}

func prefixedSprintf(n int) {
	panic(fmt.Sprintf("pd: bad count %d", n)) // fine: prefixed format
}

func unprefixedSprintf(n int) {
	panic(fmt.Sprintf("bad count %d", n)) // want "lacks a subsystem prefix"
}

func typedError(atom string) {
	panic(&BadInputError{Atom: atom}) // fine: typed error value
}

func wrappedError(err error) {
	panic(fmt.Errorf("pd: stage failed: %w", err)) // fine: prefixed wrap
}

func opaqueError(err error) {
	if err != nil {
		panic(err) // want "opaque error value"
	}
}

func nonErrorValue() {
	panic(42) // want "neither an error nor a prefixed string"
}

func opaqueConstructor() {
	panic(errors.New("no prefix here")) // want "opaque error value"
}
