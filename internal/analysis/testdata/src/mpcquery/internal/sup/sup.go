// Package sup exercises the //lint:allow machinery (run with the
// nondeterminism analyzer; see suppress_test.go for the expected set): a
// well-formed directive suppresses its line, a missing reason and an
// unknown analyzer name are audit findings, and a directive with nothing
// to suppress is flagged as unused.
package sup

import "time"

func allowedAbove() time.Time {
	//lint:allow nondeterminism startup stamp for a log line, never fingerprinted
	return time.Now()
}

func allowedInline() time.Time {
	return time.Now() //lint:allow nondeterminism startup stamp for a log line, never fingerprinted
}

func missingReason() time.Time {
	//lint:allow nondeterminism
	return time.Now()
}

func unknownAnalyzer() int {
	//lint:allow doesnotexist some reason
	return 1
}

func unusedAllow() int {
	//lint:allow nondeterminism nothing here needs this
	return 2
}
