// Package data is a fixture stub of the relation container whose append
// order is fingerprint-visible.
package data

// Relation is an ordered tuple container.
type Relation struct{}

func (r *Relation) Append(tuple ...int64)     {}
func (r *Relation) AppendTuple(tuple []int64) {}
