// Package pub is a public (non-internal) fixture: the API contract is
// "Run never panics", so any panic here escapes to the caller and is
// flagged regardless of its value.
package pub

func explode() {
	panic("pub: even a prefixed string escapes the caller") // want "must return errors, not panic"
}
