package analysis_test

import (
	"testing"

	"mpcquery/internal/analysis"
	"mpcquery/internal/analysis/analysistest"
)

func TestPanicDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata",
		[]*analysis.Analyzer{analysis.PanicDiscipline},
		"mpcquery/internal/pd", "mpcquery/pub")
}
