package analysis_test

import (
	"testing"

	"mpcquery/internal/analysis"
	"mpcquery/internal/analysis/analysistest"
)

func TestErrCmp(t *testing.T) {
	analysistest.Run(t, "testdata",
		[]*analysis.Analyzer{analysis.ErrCmp},
		"mpcquery/internal/ec")
}
