package multiround

import (
	"fmt"

	"mpcquery/internal/bounds"
	"mpcquery/internal/query"
)

// This file implements the (ε,r)-plan machinery of Definition 5.5, the
// combinatorial object behind the multi-round lower bound (Theorem 5.8).
//
// Notation: a set M of atoms is the *surviving* set; its complement M̄ is
// contracted. M is ε-good for q when (1) every connected subquery of q that
// lies in Γ¹ε contains at most one atom of M, and (2) χ(M̄) = 0 (so
// contraction preserves the characteristic, Lemma 2.1). An (ε,r)-plan is a
// chain atoms(q) = M0 ⊃ M1 ⊃ … ⊃ Mr with M_{j+1} ε-good for q/M̄_j and
// q/M̄_r ∉ Γ¹ε; its existence makes any tuple-based MPC algorithm with
// load O(M/p^{1−ε}) take more than r+1 rounds, i.e. at least r+2.

// Complement returns the atom indices of q not in m.
func Complement(q *query.Query, m []int) []int {
	in := make(map[int]bool, len(m))
	for _, j := range m {
		in[j] = true
	}
	var out []int
	for j := 0; j < q.NumAtoms(); j++ {
		if !in[j] {
			out = append(out, j)
		}
	}
	return out
}

// EpsGood reports whether the surviving set m (atom indices) is ε-good for
// q per Definition 5.5. Connected subqueries are enumerated exhaustively,
// so this is meant for the small queries of the lower-bound experiments.
func EpsGood(q *query.Query, m []int, eps float64) bool {
	comp := Complement(q, m)
	if len(comp) > 0 {
		if q.Subquery("comp", comp).Characteristic() != 0 {
			return false
		}
	}
	inM := make(map[int]bool, len(m))
	for _, j := range m {
		inM[j] = true
	}
	n := q.NumAtoms()
	if n > 20 {
		panic("multiround: EpsGood enumeration limited to 20 atoms")
	}
	for mask := 1; mask < 1<<uint(n); mask++ {
		cnt := 0
		var subset []int
		for j := 0; j < n; j++ {
			if mask&(1<<uint(j)) != 0 {
				subset = append(subset, j)
				if inM[j] {
					cnt++
				}
			}
		}
		if cnt < 2 {
			continue
		}
		sub := q.Subquery("s", subset)
		if !sub.IsConnected() {
			continue
		}
		if bounds.InGammaOne(sub, eps) {
			return false
		}
	}
	return true
}

// EpsPlan is a verified (ε,r)-plan: Sets[j] lists the names of the atoms in
// M_{j+1} (names survive contraction, unlike indices).
type EpsPlan struct {
	Query *query.Query
	Eps   float64
	Sets  [][]string
}

// R returns the plan length r.
func (p *EpsPlan) R() int { return len(p.Sets) }

// RoundsLB returns the Theorem 5.8 round lower bound implied by the plan:
// any tuple-based algorithm with load O(M/p^{1−ε}) needs ≥ r+2 rounds.
// When the plan is empty because the query is already in Γ¹ε, no
// Theorem 5.8 bound applies and the trivial bound of 1 round is returned.
func (p *EpsPlan) RoundsLB() int {
	if p.R() == 0 && bounds.InGammaOne(p.Query, p.Eps) {
		return 1
	}
	return p.R() + 2
}

// Verify checks the plan against Definition 5.5, returning an error
// describing the first violated condition.
func (p *EpsPlan) Verify() error {
	cur := p.Query.Clone()
	prev := atomNames(cur)
	for step, names := range p.Sets {
		if !subsetOf(names, prev) {
			return fmt.Errorf("step %d: M_%d ⊄ M_%d", step, step+1, step)
		}
		idx, err := indicesOf(cur, names)
		if err != nil {
			return fmt.Errorf("step %d: %v", step, err)
		}
		if !EpsGood(cur, idx, p.Eps) {
			return fmt.Errorf("step %d: %v is not ε-good for %s", step, names, cur)
		}
		cur = cur.Contract(Complement(cur, idx))
		prev = names
	}
	if bounds.InGammaOne(cur, p.Eps) {
		return fmt.Errorf("final contracted query %s is in Γ¹ε (τ* too small)", cur)
	}
	return nil
}

func atomNames(q *query.Query) []string {
	out := make([]string, q.NumAtoms())
	for j, a := range q.Atoms {
		out[j] = a.Name
	}
	return out
}

func subsetOf(a, b []string) bool {
	set := make(map[string]bool, len(b))
	for _, x := range b {
		set[x] = true
	}
	for _, x := range a {
		if !set[x] {
			return false
		}
	}
	return true
}

func indicesOf(q *query.Query, names []string) ([]int, error) {
	var out []int
	for _, n := range names {
		j := q.AtomIndex(n)
		if j < 0 {
			return nil, fmt.Errorf("atom %q not in %s", n, q)
		}
		out = append(out, j)
	}
	return out, nil
}

// ChainEpsPlan constructs the Lemma 5.6 (ε,r)-plan for L_k with
// r = ⌈log_kε k⌉ − 2 (valid for k > kε): every level keeps every kε-th
// surviving atom, starting with S1.
func ChainEpsPlan(k int, eps float64) *EpsPlan {
	ke := bounds.KEpsilon(eps)
	q := query.Chain(k)
	plan := &EpsPlan{Query: q, Eps: eps}
	// Current surviving chain, as original atom names in chain order.
	names := atomNames(q)
	for {
		// Contracting to ⌈len/kε⌉ atoms; stop while the remaining chain is
		// still outside Γ¹ε (condition (b) needs the final query ∉ Γ¹ε).
		var next []string
		for i := 0; i < len(names); i += ke {
			next = append(next, names[i])
		}
		if len(next) <= ke { // L_{len(next)} with len ≤ kε is in Γ¹ε: stop before
			break
		}
		plan.Sets = append(plan.Sets, next)
		names = next
	}
	return plan
}

// CycleEpsPlan constructs the Lemma 5.7 (ε,r)-plan for C_k: every level
// keeps atoms kε apart along the cycle, while the remaining cycle stays
// longer than mε.
func CycleEpsPlan(k int, eps float64) *EpsPlan {
	ke := bounds.KEpsilon(eps)
	me := bounds.MEpsilon(eps)
	q := query.Cycle(k)
	plan := &EpsPlan{Query: q, Eps: eps}
	names := atomNames(q)
	for {
		if len(names)/ke <= me { // remaining cycle must stay ∉ Γ¹ε
			break
		}
		var next []string
		for i := 0; i+ke <= len(names); i += ke {
			next = append(next, names[i])
		}
		plan.Sets = append(plan.Sets, next)
		names = next
	}
	return plan
}
