package multiround

import (
	"math"
	"testing"

	"mpcquery/internal/query"
)

func TestMinimalNonGamma(t *testing.T) {
	// For L5 at ε=0: Γ¹₀ holds subqueries with τ* ≤ 1 (single atoms and
	// adjacent pairs). Minimal non-Γ subqueries are the length-3 subchains:
	// {S1,S2,S3}, {S2,S3,S4}, {S3,S4,S5}.
	subs := MinimalNonGamma(query.Chain(5), 0)
	if len(subs) != 3 {
		t.Fatalf("|Sε(L5)|=%d want 3", len(subs))
	}
	for _, s := range subs {
		if s.NumAtoms() != 3 {
			t.Errorf("minimal subquery has %d atoms, want 3: %s", s.NumAtoms(), s)
		}
	}
	// Triangle at ε=0: τ*(C3)=1.5 > 1, and every proper connected subquery
	// is a path with τ* ≤ 1, so C3 itself is the unique minimal element.
	subs2 := MinimalNonGamma(query.Triangle(), 0)
	if len(subs2) != 1 || subs2[0].NumAtoms() != 3 {
		t.Fatalf("Sε(C3)=%v", subs2)
	}
	// Stars are entirely inside Γ¹₀.
	if got := MinimalNonGamma(query.Star(4), 0); len(got) != 0 {
		t.Fatalf("Sε(T4)=%d want 0", len(got))
	}
}

func TestContractionsSequence(t *testing.T) {
	plan := ChainEpsPlan(8, 0)
	qs := plan.Contractions()
	if len(qs) != plan.R()+1 {
		t.Fatalf("contractions=%d want %d", len(qs), plan.R()+1)
	}
	// Each contraction shrinks the atom count to the surviving set size.
	for i, names := range plan.Sets {
		if qs[i+1].NumAtoms() != len(names) {
			t.Errorf("step %d: %d atoms want %d", i, qs[i+1].NumAtoms(), len(names))
		}
	}
	// χ is preserved along the plan (ε-goodness condition 2 + Lemma 2.1).
	for _, q := range qs {
		if q.Characteristic() != 0 {
			t.Errorf("contraction broke χ: %s has χ=%d", q, q.Characteristic())
		}
	}
}

func TestTauStarOfPlan(t *testing.T) {
	// For L8 at ε=0 (kε=2): minimal non-Γ subqueries are L3-shaped with
	// τ* = 2, and the final contraction is L2 or larger with τ* ≥ ... the
	// definition takes the min, which must exceed 1/(1−ε) = 1
	// (Proposition 5.10).
	plan := ChainEpsPlan(8, 0)
	tau := plan.TauStarOfPlan()
	if tau <= 1 {
		t.Fatalf("τ*(M)=%v must exceed 1", tau)
	}
	if math.Abs(tau-2) > 1e-9 {
		t.Errorf("τ*(M)=%v want 2 for chains at ε=0", tau)
	}
}

func TestBetaBounded(t *testing.T) {
	// The proof of Theorem 5.20 bounds β(L_k, M) ≤ (2k+1)(1−ε)^{τ*(M)}; our
	// construction must respect that shape.
	for _, k := range []int{5, 8, 16} {
		plan := ChainEpsPlan(k, 0)
		beta := plan.Beta()
		if beta <= 0 {
			t.Fatalf("β=%v for L%d", beta, k)
		}
		limit := float64(2*k+1) * math.Pow(1, plan.TauStarOfPlan()) // (1−ε)=1 at ε=0... use raw bound
		if beta > limit {
			t.Errorf("L%d: β=%v exceeds (2k+1)=%v", k, beta, limit)
		}
	}
}

// TestOutputFractionUB checks the Theorem 5.11 shape: at load L = cM/p the
// bound must vanish as p grows for L16 (which needs 4 rounds at ε=0, so a
// 2-round algorithm is hopeless), and must be vacuous (1) at huge loads.
func TestOutputFractionUB(t *testing.T) {
	plan := ChainEpsPlan(16, 0)
	M := math.Pow(2, 24)
	f64 := plan.OutputFractionUB(4*M/64, M, 64)
	f4096 := plan.OutputFractionUB(4*M/4096, M, 4096)
	if f4096 >= f64 {
		t.Errorf("fraction bound should shrink with p: %v -> %v", f64, f4096)
	}
	if got := plan.OutputFractionUB(M, M, 64); got != 1 {
		t.Errorf("load = M should give the vacuous bound, got %v", got)
	}
	// Trivial plans (queries already in Γ¹ε) have no bound.
	triv := ChainEpsPlan(2, 0)
	if got := triv.OutputFractionUB(1, M, 64); got != 1 {
		t.Errorf("trivial plan bound=%v want 1", got)
	}
}
