// Package multiround implements Section 5: multi-round MPC computation of
// conjunctive queries. A query plan is a tree whose internal nodes are
// subqueries computable in one round with load O(M/p^{1−ε}) (members of
// Γ¹ε, i.e. τ* ≤ 1/(1−ε)); the plan's height is the number of rounds
// (Proposition 5.1). The package provides plan builders (chains per
// Example 5.2, the generic greedy grouping achieving the Lemma 5.4 bound on
// the paper's query families), an executor that runs plans on the MPC
// engine with per-round load metering, the (ε,r)-plan lower-bound
// machinery of Definition 5.5, and the connected-components algorithms
// discussed around Theorem 5.20.
package multiround

import (
	"fmt"
	"strings"

	"mpcquery/internal/bounds"
	"mpcquery/internal/query"
)

// Node is one vertex of a query plan tree. A leaf references a base
// relation; an internal node computes a full conjunctive query whose atoms
// are its children's outputs.
type Node struct {
	Name     string       // output view name (base relation name for leaves)
	Query    *query.Query // nil for leaves; atoms reference children by Name
	Children []*Node
}

// IsLeaf reports whether the node is a base relation.
func (n *Node) IsLeaf() bool { return n.Query == nil }

// Depth returns the number of rounds needed below and including this node:
// leaves take 0 rounds; an internal node takes 1 + max over children.
func (n *Node) Depth() int {
	if n.IsLeaf() {
		return 0
	}
	d := 0
	for _, c := range n.Children {
		if cd := c.Depth(); cd > d {
			d = cd
		}
	}
	return d + 1
}

// Vars returns the output variables of the node (the base relation's
// columns are unnamed, so leaves return nil).
func (n *Node) Vars() []string {
	if n.IsLeaf() {
		return nil
	}
	return n.Query.Vars()
}

func (n *Node) String() string {
	var b strings.Builder
	n.describe(&b, 0)
	return b.String()
}

func (n *Node) describe(b *strings.Builder, indent int) {
	pad := strings.Repeat("  ", indent)
	if n.IsLeaf() {
		fmt.Fprintf(b, "%sscan %s\n", pad, n.Name)
		return
	}
	fmt.Fprintf(b, "%s%s := %s\n", pad, n.Name, n.Query)
	for _, c := range n.Children {
		c.describe(b, indent+1)
	}
}

// Plan is a complete multi-round plan for a query.
type Plan struct {
	Root *Node
	Eps  float64
}

// Rounds returns the number of communication rounds the plan uses.
func (p *Plan) Rounds() int { return p.Root.Depth() }

func (p *Plan) String() string {
	return fmt.Sprintf("plan (ε=%.2f, %d rounds):\n%s", p.Eps, p.Rounds(), p.Root)
}

// viewNamer hands out view names V1, V2, … scoped to one plan construction.
// Scoping the counter (instead of a package global) keeps GreedyPlan
// deterministic — the same query always yields the same plan, names
// included — and race-free when plans are built from concurrent Runs.
type viewNamer int

func (v *viewNamer) fresh() string {
	*v++
	return fmt.Sprintf("V%d", *v)
}

// leaf returns a leaf node for a base atom.
func leaf(name string) *Node { return &Node{Name: name} }

// GreedyPlan builds a plan for any connected query by repeatedly grouping
// adjacent atoms into connected subqueries with τ* ≤ 1/(1−ε) (members of
// Γ¹ε), replacing each group by a view over the union of its variables, and
// recursing. On chains it produces the optimal ⌈log_kε k⌉-round plan of
// Example 5.2; on SP_k the 2-round plan of Example 5.3.
func GreedyPlan(q *query.Query, eps float64) *Plan {
	if !q.IsConnected() {
		panic("multiround: GreedyPlan requires a connected query")
	}
	nodes := make([]*Node, q.NumAtoms())
	for j, a := range q.Atoms {
		nodes[j] = leaf(a.Name)
	}
	var views viewNamer
	cur := q.Clone()
	for !bounds.InGammaOne(cur, eps) {
		groups := groupAtoms(cur, eps)
		if len(groups) == cur.NumAtoms() {
			panic(fmt.Sprintf("multiround: no progress planning %s at ε=%v", q, eps))
		}
		var nextAtoms []query.Atom
		var nextNodes []*Node
		for _, g := range groups {
			if len(g) == 1 {
				// Single-atom group: pass the child through unchanged.
				nextAtoms = append(nextAtoms, cur.Atoms[g[0]])
				nextNodes = append(nextNodes, nodes[g[0]])
				continue
			}
			sub := cur.Subquery(views.fresh(), g)
			children := make([]*Node, len(g))
			for i, j := range g {
				children[i] = nodes[j]
			}
			node := &Node{Name: sub.Name, Query: sub, Children: children}
			nextAtoms = append(nextAtoms, query.Atom{Name: sub.Name, Vars: sub.Vars()})
			nextNodes = append(nextNodes, node)
		}
		cur = query.New(cur.Name, nextAtoms...)
		nodes = nextNodes
	}
	var root *Node
	if len(nodes) == 1 && !nodes[0].IsLeaf() && sameVars(nodes[0].Query, q) {
		root = nodes[0]
	} else {
		children := nodes
		rq := query.New(q.Name, cur.Atoms...)
		root = &Node{Name: q.Name, Query: rq, Children: children}
	}
	return &Plan{Root: root, Eps: eps}
}

func sameVars(a, b *query.Query) bool {
	if a.NumVars() != b.NumVars() {
		return false
	}
	for _, v := range a.Vars() {
		if b.VarIndex(v) < 0 {
			return false
		}
	}
	return true
}

// groupAtoms greedily partitions the atoms of q into connected groups, each
// in Γ¹ε, preferring runs of adjacent atoms in declaration order (which is
// optimal for chains and cycles, whose builders declare atoms along the
// walk).
func groupAtoms(q *query.Query, eps float64) [][]int {
	n := q.NumAtoms()
	assigned := make([]bool, n)
	var groups [][]int
	for start := 0; start < n; start++ {
		if assigned[start] {
			continue
		}
		group := []int{start}
		assigned[start] = true
		for {
			extended := false
			for j := 0; j < n; j++ {
				if assigned[j] {
					continue
				}
				if !adjacent(q, group, j) {
					continue
				}
				candidate := append(append([]int(nil), group...), j)
				sub := q.Subquery("g", candidate)
				if sub.IsConnected() && bounds.InGammaOne(sub, eps) {
					group = candidate
					assigned[j] = true
					extended = true
					break
				}
			}
			if !extended {
				break
			}
		}
		groups = append(groups, group)
	}
	return groups
}

func adjacent(q *query.Query, group []int, j int) bool {
	for _, g := range group {
		for _, v := range q.Atoms[g].DistinctVars() {
			if q.Atoms[j].HasVar(v) {
				return true
			}
		}
	}
	return false
}

// ChainPlan builds the Example 5.2 plan for L_k at space exponent ε:
// consecutive runs of kε atoms per level, depth ⌈log_kε k⌉.
func ChainPlan(k int, eps float64) *Plan {
	return GreedyPlan(query.Chain(k), eps)
}

// CyclePlan builds a plan for C_k at space exponent ε via the greedy
// grouping (runs of kε atoms leave a shorter cycle, until the remaining
// cycle fits in one round).
func CyclePlan(k int, eps float64) *Plan {
	return GreedyPlan(query.Cycle(k), eps)
}
