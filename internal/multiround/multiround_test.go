package multiround

import (
	"math/rand"
	"testing"

	"mpcquery/internal/bounds"
	"mpcquery/internal/core"
	"mpcquery/internal/data"
	"mpcquery/internal/query"
)

// TestChainPlanDepths checks Example 5.2 and Table 3: plan depth for L_k is
// ⌈log_kε k⌉.
func TestChainPlanDepths(t *testing.T) {
	tests := []struct {
		k      int
		eps    float64
		rounds int
	}{
		{16, 0.5, 2}, // Example 5.2: two rounds of L4 blocks
		{16, 0, 4},
		{8, 0, 3},
		{4, 0, 2},
		{2, 0, 1},
		{9, 0, 4},
		{27, 2.0 / 3, 2}, // kε=6: ⌈log6 27⌉ = 2
	}
	for _, tt := range tests {
		p := ChainPlan(tt.k, tt.eps)
		if got := p.Rounds(); got != tt.rounds {
			t.Errorf("L%d ε=%v: rounds=%d want %d\n%s", tt.k, tt.eps, got, tt.rounds, p)
		}
		if got, want := p.Rounds(), bounds.ChainRounds(tt.k, tt.eps); got != want {
			t.Errorf("L%d ε=%v: plan %d != formula %d", tt.k, tt.eps, got, want)
		}
	}
}

// TestSpokedWheelPlan checks Example 5.3: SP_k has a 2-round plan at ε=0
// even though τ*(SP_k)=k.
func TestSpokedWheelPlan(t *testing.T) {
	for _, k := range []int{2, 3, 4} {
		p := GreedyPlan(query.SpokedWheel(k), 0)
		if got := p.Rounds(); got != 2 {
			t.Errorf("SP%d: rounds=%d want 2\n%s", k, got, p)
		}
	}
}

// TestStarPlanOneRound: stars are in Γ¹₀, so the plan is a single round.
func TestStarPlanOneRound(t *testing.T) {
	p := GreedyPlan(query.Star(5), 0)
	if got := p.Rounds(); got != 1 {
		t.Errorf("T5: rounds=%d want 1", got)
	}
}

// TestCyclePlanDepth checks cycles against the Lemma 5.4 upper bound.
func TestCyclePlanDepth(t *testing.T) {
	for _, k := range []int{5, 6, 8, 12} {
		p := CyclePlan(k, 0)
		ub := bounds.RoundsUB(query.Cycle(k), 0)
		if got := p.Rounds(); got > ub {
			t.Errorf("C%d: plan rounds=%d exceeds Lemma 5.4 bound %d\n%s", k, got, ub, p)
		}
	}
}

// TestExecuteChainCorrect runs the L8 plan end to end and compares with the
// sequential answer.
func TestExecuteChainCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	k := 8
	db := data.ChainMatchingDatabase(rng, k, 300, 1<<20)
	q := query.Chain(k)
	plan := ChainPlan(k, 0.5)
	res := Execute(plan, db, 64, 7)
	want := core.SequentialAnswer(q, db)
	if !data.Equal(res.Output, want) {
		t.Fatalf("chain exec: got %d want %d tuples", res.Output.NumTuples(), want.NumTuples())
	}
	if res.Output.NumTuples() != 300 {
		t.Fatalf("composing chain should have 300 outputs, got %d", res.Output.NumTuples())
	}
	if res.Rounds != plan.Rounds() {
		t.Errorf("executed rounds=%d plan says %d", res.Rounds, plan.Rounds())
	}
	if len(res.RoundLoads) != res.Rounds {
		t.Errorf("round loads=%d rounds=%d", len(res.RoundLoads), res.Rounds)
	}
}

// TestExecuteCycleCorrect runs the C6 plan end to end.
func TestExecuteCycleCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	q := query.Cycle(6)
	db := data.MatchingDatabase(rng, q, 400, 1<<20)
	plan := CyclePlan(6, 0)
	res := Execute(plan, db, 64, 9)
	want := core.SequentialAnswer(q, db)
	if !data.Equal(res.Output, want) {
		t.Fatalf("cycle exec: got %d want %d tuples", res.Output.NumTuples(), want.NumTuples())
	}
}

// TestExecuteSpokedWheel runs SP_2 (τ*=2) through its 2-round plan.
func TestExecuteSpokedWheel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q := query.SpokedWheel(2)
	db := data.MatchingDatabase(rng, q, 300, 1<<20)
	plan := GreedyPlan(q, 0)
	res := Execute(plan, db, 32, 11)
	want := core.SequentialAnswer(q, db)
	if !data.Equal(res.Output, want) {
		t.Fatalf("SP2 exec: got %d want %d tuples", res.Output.NumTuples(), want.NumTuples())
	}
}

// TestMultiRoundLoadAdvantage checks the Section 5 tradeoff on L4: the
// 2-round plan at ε=0 achieves a smaller per-round load than the 1-round
// HyperCube (which needs load ~M/p^{1/2} since τ*(L4)=2).
func TestMultiRoundLoadAdvantage(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	k, m, p := 4, 4000, 64
	db := data.ChainMatchingDatabase(rng, k, m, 1<<22)
	q := query.Chain(k)

	oneRound := core.Run(q, db, p, 13, core.SkewFree)
	twoRound := Execute(ChainPlan(k, 0), db, p, 13)
	if !data.Equal(oneRound.Output, twoRound.Output) {
		t.Fatal("outputs differ")
	}
	if twoRound.Rounds != 2 {
		t.Fatalf("rounds=%d want 2", twoRound.Rounds)
	}
	// One-round load should be ≈ sqrt(p) = 8 times larger per server.
	ratio := oneRound.MaxLoadBits / twoRound.MaxLoadBits
	if ratio < 2 {
		t.Errorf("expected multi-round load advantage, got ratio %.2f (1r=%v 2r=%v)",
			ratio, oneRound.MaxLoadBits, twoRound.MaxLoadBits)
	}
}

func TestPlanStringRendering(t *testing.T) {
	p := ChainPlan(4, 0)
	s := p.String()
	if s == "" {
		t.Error("empty plan string")
	}
}

// ---- (ε,r)-plan machinery --------------------------------------------------

func TestEpsGoodChain(t *testing.T) {
	q := query.Chain(5)
	// Lemma 5.6 set {S1,S3,S5} (indices 0,2,4) is ε-good at ε=0.
	if !EpsGood(q, []int{0, 2, 4}, 0) {
		t.Error("{S1,S3,S5} should be ε-good for L5")
	}
	// Adjacent atoms {S1,S2} are not: the connected subquery {S1,S2} ∈ Γ¹₀
	// contains both.
	if EpsGood(q, []int{0, 1}, 0) {
		t.Error("{S1,S2} should not be ε-good for L5")
	}
	// χ(complement) must be 0: {S1,S4} leaves complement {S2,S3,S5};
	// subquery S2,S3 is a path (χ=0) plus single S5 (χ=0) -> χ=0, and no
	// Γ¹₀ subquery holds S1 and S4 (distance 3), so it is ε-good.
	if !EpsGood(q, []int{0, 3}, 0) {
		t.Error("{S1,S4} should be ε-good for L5")
	}
}

func TestChainEpsPlanMatchesLemma(t *testing.T) {
	for _, tt := range []struct {
		k   int
		eps float64
	}{
		{5, 0}, {8, 0}, {9, 0}, {16, 0.5},
	} {
		plan := ChainEpsPlan(tt.k, tt.eps)
		if err := plan.Verify(); err != nil {
			t.Errorf("L%d ε=%v: %v", tt.k, tt.eps, err)
		}
		want := bounds.ChainRoundsLB(tt.k, tt.eps)
		if got := plan.RoundsLB(); got != want {
			t.Errorf("L%d ε=%v: plan LB %d want %d", tt.k, tt.eps, got, want)
		}
	}
}

func TestCycleEpsPlanMatchesLemma(t *testing.T) {
	for _, tt := range []struct {
		k       int
		eps     float64
		roundLB int
	}{
		{5, 0, 2}, // Example 5.19
		{6, 0, 3}, // Example 5.19
		{12, 0, 4},
	} {
		plan := CycleEpsPlan(tt.k, tt.eps)
		if err := plan.Verify(); err != nil {
			t.Errorf("C%d ε=%v: %v", tt.k, tt.eps, err)
		}
		if got := plan.RoundsLB(); got != tt.roundLB {
			t.Errorf("C%d: plan LB %d want %d", tt.k, got, tt.roundLB)
		}
		if got, want := plan.RoundsLB(), bounds.CycleRoundsLB(tt.k, tt.eps); got != want {
			t.Errorf("C%d: plan %d != formula %d", tt.k, got, want)
		}
	}
}

// TestUpperMeetsLower: for chains the executable plan's rounds equal the
// (ε,r)-plan lower bound — the paper's headline tightness result
// (Corollary 5.15).
func TestUpperMeetsLower(t *testing.T) {
	for _, k := range []int{4, 5, 8, 9, 16} {
		for _, eps := range []float64{0, 0.5} {
			ub := ChainPlan(k, eps).Rounds()
			lb := ChainEpsPlan(k, eps).RoundsLB()
			if ub != lb {
				t.Errorf("L%d ε=%v: UB %d != LB %d", k, eps, ub, lb)
			}
		}
	}
}

// ---- connected components ---------------------------------------------------

func TestLabelPropagationCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := data.LayeredPathGraph(rng, 8, 50)
	res := LabelPropagation(g, 16, 3, 0)
	want := g.ComponentsSequential()
	checkLabels(t, res.Labels, want, g)
}

func TestPointerJumpingCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := data.LayeredPathGraph(rng, 8, 50)
	res := PointerJumping(g, 16, 3, 0)
	want := g.ComponentsSequential()
	checkLabels(t, res.Labels, want, g)
}

func TestCCRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		g := data.RandomGraph(rng, 200, 150)
		want := g.ComponentsSequential()
		lp := LabelPropagation(g, 8, int64(trial), 0)
		checkLabels(t, lp.Labels, want, g)
		pj := PointerJumping(g, 8, int64(trial), 0)
		checkLabels(t, pj.Labels, want, g)
	}
}

// checkLabels verifies that both labelings induce the same partition.
func checkLabels(t *testing.T, got, want map[int64]int64, g *data.Graph) {
	t.Helper()
	for v, l := range want {
		gl, ok := got[v]
		if !ok {
			t.Fatalf("vertex %d unlabeled", v)
		}
		if gl != l {
			t.Fatalf("vertex %d: label %d want %d (component min)", v, gl, l)
		}
	}
	_ = g
}

// TestCCRoundScaling is the Theorem 5.20 experiment in miniature: on a path
// of diameter d, label propagation needs Θ(d) rounds while pointer jumping
// needs O(log d)-ish — the separation must widen with d.
func TestCCRoundScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	type row struct{ lp, pj int }
	rows := map[int]row{}
	for _, d := range []int{8, 32, 64} {
		g := data.LayeredPathGraph(rng, d, 20)
		lp := LabelPropagation(g, 16, 1, 0)
		pj := PointerJumping(g, 16, 1, 0)
		want := g.ComponentsSequential()
		checkLabels(t, lp.Labels, want, g)
		checkLabels(t, pj.Labels, want, g)
		rows[d] = row{lp.IterRounds, pj.IterRounds}
	}
	if rows[64].lp <= rows[8].lp {
		t.Errorf("label propagation rounds should grow with diameter: %v", rows)
	}
	if rows[64].pj >= rows[64].lp {
		t.Errorf("pointer jumping (%d) should beat label propagation (%d) at diameter 64",
			rows[64].pj, rows[64].lp)
	}
}

func TestCCSingleServer(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := data.LayeredPathGraph(rng, 4, 5)
	res := LabelPropagation(g, 1, 1, 0)
	checkLabels(t, res.Labels, g.ComponentsSequential(), g)
}

// TestIntermediatesStayLinear: on composing chain matchings every view has
// exactly m tuples — the premise of the Section 5 load analysis.
func TestIntermediatesStayLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	m := 500
	db := data.ChainMatchingDatabase(rng, 8, m, 1<<20)
	res := Execute(ChainPlan(8, 0), db, 32, 5)
	if res.MaxViewTuples != m {
		t.Errorf("max intermediate=%d want %d (matchings compose 1:1)", res.MaxViewTuples, m)
	}
}

// TestExecuteSkewAwareCorrect: the skew-aware executor must produce the
// same output as the vanilla executor and the sequential join.
func TestExecuteSkewAwareCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	db := data.ChainMatchingDatabase(rng, 4, 400, 1<<20)
	q := query.Chain(4)
	plan := ChainPlan(4, 0)
	aware := ExecuteSkewAware(plan, db, 32, 7, 16)
	want := core.SequentialAnswer(q, db)
	if !data.Equal(aware.Output, want) {
		t.Fatalf("skew-aware exec: %d vs %d tuples", aware.Output.NumTuples(), want.NumTuples())
	}
	if aware.Rounds != plan.Rounds() {
		t.Errorf("rounds=%d plan=%d", aware.Rounds, plan.Rounds())
	}
}

// TestExecuteSkewAwareBeatsVanillaOnSkew: a chain whose middle relation has
// a heavy join value produces a skewed intermediate view; per-node skew
// handling must contain the hotspot that the vanilla executor hits.
func TestExecuteSkewAwareBeatsVanillaOnSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	n := int64(1 << 20)
	m := 3000
	db := data.NewDatabase(n)
	// S1(x0,x1): half the tuples end in the heavy value 7.
	s1 := data.NewRelation("S1", 2)
	left := data.SampleDistinct(rng, m, n)
	right := data.SampleDistinct(rng, m, n)
	for i := 0; i < m; i++ {
		if i < m/2 {
			s1.Append(left[i], 7)
		} else {
			s1.Append(left[i], right[i])
		}
	}
	db.Add(s1)
	// S2(x1,x2): the heavy value 7 also appears on the left m/2 times.
	s2 := data.NewRelation("S2", 2)
	l2 := data.SampleDistinct(rng, m, n)
	r2 := data.SampleDistinct(rng, m, n)
	for i := 0; i < m; i++ {
		if i < 8 { // keep the join output small but the routing skewed
			s2.Append(7, r2[i])
		} else {
			s2.Append(l2[i], r2[i])
		}
	}
	db.Add(s2)
	db.Add(data.RandomMatching(rng, "S3", 2, m, n))
	db.Add(data.RandomMatching(rng, "S4", 2, m, n))

	q := query.Chain(4)
	plan := ChainPlan(4, 0)
	vanilla := Execute(plan, db, 64, 5)
	aware := ExecuteSkewAware(plan, db, 64, 5, 16)
	if !data.Equal(vanilla.Output, aware.Output) {
		t.Fatal("outputs differ")
	}
	wantSeq := core.SequentialAnswer(q, db)
	if !data.Equal(aware.Output, wantSeq) {
		t.Fatal("output != sequential")
	}
	if aware.MaxLoadBits > vanilla.MaxLoadBits {
		t.Errorf("skew-aware %v should not exceed vanilla %v on skewed input",
			aware.MaxLoadBits, vanilla.MaxLoadBits)
	}
}
