package multiround

import (
	"fmt"

	"mpcquery/internal/aggregate"
	"mpcquery/internal/core"
	"mpcquery/internal/data"
	"mpcquery/internal/engine"
	"mpcquery/internal/skew"
)

// ExecResult reports an executed multi-round plan.
type ExecResult struct {
	Output *data.Relation

	Rounds      int
	RoundLoads  []float64 // max bits received by any server, per round
	MaxLoadBits float64   // L = max over rounds
	TotalBits   float64
	InputBits   float64
	// MaxViewTuples is the largest materialized intermediate view. On
	// matching databases the paper's multi-round analysis relies on
	// intermediates staying O(m); this makes that observable.
	MaxViewTuples int
	// Aborted is set when a declared load cap was exceeded by any node of
	// any round (Section 2.1's abort semantics).
	Aborted bool

	// AggregateBitsSaved is the communication the root node's pre-shuffle
	// partial aggregation removed; 0 for plain and no-pushdown runs.
	AggregateBitsSaved float64

	// Wall-clock split summed over every node's cluster (not model costs):
	// seconds in local computation vs simulated communication delivery.
	ComputeSeconds float64
	CommSeconds    float64
}

// nodeResult is what the pluggable one-round operator reports per node.
type nodeResult struct {
	out       *data.Relation
	loadBits  float64 // load of the node's primary round
	totalBits float64
	aborted   bool
	computeS  float64
	commS     float64

	// extraLoads are per-round loads beyond the node's primary round (the
	// root's aggregate shuffle); each is an additional plan round.
	extraLoads []float64
	aggSaved   float64
}

// Memo is an optional per-node artifact memoizer supplied by a caching
// caller (the query service). It must return the value computed by an
// earlier call with the same key, or run compute and return its result. The
// per-node artifacts memoized here (HyperCube plans, skew layouts for the
// intermediate views) are deterministic in (plan, database, servers, seed),
// which the caller encodes in the key prefix; a nil Memo recomputes
// everything, and both paths execute identically.
type Memo func(key string, compute func() any) any

func (m Memo) do(key string, compute func() any) any {
	if m == nil {
		return compute()
	}
	return m(key, compute)
}

// Execute runs the plan on db with a budget of p servers per round. Nodes
// at the same depth execute in the same communication round, splitting the
// p servers evenly; the round's load is the maximum over its nodes, and the
// plan's load L is the maximum over rounds — exactly the model's metric.
func Execute(p *Plan, db *data.Database, servers int, seed int64) *ExecResult {
	return ExecuteCap(p, db, servers, seed, 0)
}

// ExecuteCap is Execute with a declared per-round load cap in bits
// (0 = none): every node of every round runs under the cap, and the
// result's Aborted flag is set if any of them exceeded it.
func ExecuteCap(p *Plan, db *data.Database, servers int, seed int64, capBits float64) *ExecResult {
	return ExecuteCapMemo(p, db, servers, seed, capBits, nil)
}

// ExecuteCapMemo is ExecuteCap with per-node HyperCube plans drawn from
// memo: every node of every round needs a share-LP solve over its
// intermediate views, and a service replaying the same multi-round query
// can reuse them all.
func ExecuteCapMemo(p *Plan, db *data.Database, servers int, seed int64, capBits float64, memo Memo) *ExecResult {
	return ExecuteAggregateCapMemo(p, db, servers, seed, capBits, nil, memo)
}

// ExecuteAggregateCapMemo is ExecuteCapMemo with an optional aggregate
// computed at the root node: intermediate views stay full joins (later
// rounds need every binding), and the root runs core.RunPlanAggregate — its
// aggregate-shuffle round is appended to the plan's round accounting. A nil
// agg executes the plain plan.
func ExecuteAggregateCapMemo(p *Plan, db *data.Database, servers int, seed int64, capBits float64, agg *aggregate.Plan, memo Memo) *ExecResult {
	return ExecuteAggregateCapMemoNet(p, db, servers, seed, capBits, agg, memo, engine.Env{})
}

// ExecuteAggregateCapMemoNet is ExecuteAggregateCapMemo with every node's
// round delivery through net (nil = in-process). Nodes execute
// sequentially, so a distributed run attaches one cluster at a time, in
// the same deterministic order at every rank.
func ExecuteAggregateCapMemoNet(p *Plan, db *data.Database, servers int, seed int64, capBits float64, agg *aggregate.Plan, memo Memo, env engine.Env) *ExecResult {
	return executeWith(p, db, servers, func(n *Node, sub *data.Database, perNode int, d int) nodeResult {
		pl := memo.do(fmt.Sprintf("node|%s|d%d|pn%d|s%d", n.Name, d, perNode, seed), func() any {
			return core.PlanForDatabase(n.Query, sub, perNode, core.SkewFree)
		}).(*core.Plan)
		if agg != nil && n == p.Root {
			run := core.RunPlanAggregateNet(pl, sub, seed+int64(d), capBits, agg, env)
			return nodeResult{out: run.Output, loadBits: run.RoundLoads[0], totalBits: run.TotalBits, aborted: run.Aborted,
				computeS: run.ComputeSeconds, commS: run.CommSeconds,
				extraLoads: run.RoundLoads[1:], aggSaved: run.AggregateBitsSaved}
		}
		run := core.RunPlanWithCapNet(pl, sub, seed+int64(d), capBits, env)
		return nodeResult{out: run.Output, loadBits: run.MaxLoadBits, totalBits: run.TotalBits, aborted: run.Aborted,
			computeS: run.ComputeSeconds, commS: run.CommSeconds}
	})
}

// executeWith runs the plan with a pluggable one-round operator.
func executeWith(p *Plan, db *data.Database, servers int,
	operator func(n *Node, sub *data.Database, perNode, depth int) nodeResult) *ExecResult {
	if servers < 1 {
		panic("multiround: need at least one server")
	}
	levels := make(map[int][]*Node)
	maxDepth := 0
	var collect func(n *Node)
	collect = func(n *Node) {
		if n.IsLeaf() {
			return
		}
		d := n.Depth()
		levels[d] = append(levels[d], n)
		if d > maxDepth {
			maxDepth = d
		}
		for _, c := range n.Children {
			collect(c)
		}
	}
	collect(p.Root)

	materialized := make(map[string]*data.Relation, len(db.Relations))
	for name, r := range db.Relations {
		materialized[name] = r
	}

	res := &ExecResult{}
	for _, r := range db.Relations {
		res.InputBits += r.SizeBits(db.N)
	}

	for d := 1; d <= maxDepth; d++ {
		nodes := levels[d]
		if len(nodes) == 0 {
			continue
		}
		perNode := servers / len(nodes)
		if perNode < 1 {
			perNode = 1
		}
		roundLoad := 0.0
		var extraLoads []float64
		for _, n := range nodes {
			sub := data.NewDatabase(db.N)
			for _, a := range n.Query.Atoms {
				r, ok := materialized[a.Name]
				if !ok {
					panic(fmt.Sprintf("multiround: view %q not materialized before round %d", a.Name, d))
				}
				if r.Arity != a.Arity() {
					panic(fmt.Sprintf("multiround: view %q arity %d, atom wants %d", a.Name, r.Arity, a.Arity()))
				}
				if r.Name != a.Name {
					r = r.Clone()
					r.Name = a.Name
				}
				sub.Add(r)
			}
			nr := operator(n, sub, perNode, d)
			nr.out.Name = n.Name
			materialized[n.Name] = nr.out
			if nr.out.NumTuples() > res.MaxViewTuples {
				res.MaxViewTuples = nr.out.NumTuples()
			}
			if nr.loadBits > roundLoad {
				roundLoad = nr.loadBits
			}
			res.TotalBits += nr.totalBits
			res.Aborted = res.Aborted || nr.aborted
			res.ComputeSeconds += nr.computeS
			res.CommSeconds += nr.commS
			res.AggregateBitsSaved += nr.aggSaved
			extraLoads = append(extraLoads, nr.extraLoads...)
		}
		res.RoundLoads = append(res.RoundLoads, roundLoad)
		if roundLoad > res.MaxLoadBits {
			res.MaxLoadBits = roundLoad
		}
		res.Rounds++
		// Extra per-node rounds (the root's aggregate shuffle) extend the
		// plan's round accounting; only the deepest level, which holds the
		// lone root node, ever contributes them.
		for _, l := range extraLoads {
			res.RoundLoads = append(res.RoundLoads, l)
			if l > res.MaxLoadBits {
				res.MaxLoadBits = l
			}
			res.Rounds++
		}
	}
	res.Output = materialized[p.Root.Name]
	return res
}

// ExecuteSkewAware is Execute with every plan node computed by the
// generalized heavy/light pattern algorithm instead of the vanilla
// HyperCube. The paper leaves multi-round skew open (Section 7); this is
// the natural engineering answer: intermediate views can become skewed even
// when the input is not (joins concentrate values), and per-node skew
// handling contains the resulting hotspots. maxHeavyPerVar caps the pattern
// enumeration per node.
func ExecuteSkewAware(p *Plan, db *data.Database, servers int, seed int64, maxHeavyPerVar int) *ExecResult {
	return ExecuteSkewAwareCap(p, db, servers, seed, maxHeavyPerVar, 0)
}

// ExecuteSkewAwareCap is ExecuteSkewAware with a declared per-round load
// cap in bits (0 = none).
func ExecuteSkewAwareCap(p *Plan, db *data.Database, servers int, seed int64, maxHeavyPerVar int, capBits float64) *ExecResult {
	return ExecuteSkewAwareCapMemo(p, db, servers, seed, maxHeavyPerVar, capBits, nil)
}

// ExecuteSkewAwareCapMemo is ExecuteSkewAwareCap with per-node skew layouts
// (heavy-hitter statistics plus pattern grids over the intermediate views)
// drawn from memo — the per-node statistics recomputation is the bulk of
// the skew-aware executor's planning cost.
func ExecuteSkewAwareCapMemo(p *Plan, db *data.Database, servers int, seed int64, maxHeavyPerVar int, capBits float64, memo Memo) *ExecResult {
	return ExecuteSkewAwareCapMemoNet(p, db, servers, seed, maxHeavyPerVar, capBits, memo, engine.Env{})
}

// ExecuteSkewAwareCapMemoNet is ExecuteSkewAwareCapMemo with every node's
// round delivery through net (nil = in-process).
func ExecuteSkewAwareCapMemoNet(p *Plan, db *data.Database, servers int, seed int64, maxHeavyPerVar int, capBits float64, memo Memo, env engine.Env) *ExecResult {
	return executeWith(p, db, servers, func(n *Node, sub *data.Database, perNode int, d int) nodeResult {
		gp := memo.do(fmt.Sprintf("node-skew|%s|d%d|pn%d|s%d|h%d", n.Name, d, perNode, seed, maxHeavyPerVar), func() any {
			return skew.PrepareGeneric(n.Query, sub, perNode, maxHeavyPerVar)
		}).(*skew.GenericPlan)
		run := skew.RunGenericPlannedNet(gp, n.Query, sub, perNode, seed+int64(d), capBits, env)
		return nodeResult{out: run.Output, loadBits: run.MaxLoadBits, totalBits: run.TotalBits, aborted: run.Aborted,
			computeS: run.ComputeSeconds, commS: run.CommSeconds}
	})
}
