package multiround

import (
	"fmt"
	"math"

	"mpcquery/internal/bounds"
	"mpcquery/internal/packing"
	"mpcquery/internal/query"
)

// This file computes the precise constants of Theorem 5.11: the factor
// β(q,M) and τ*(M) (Definition 5.9) that bound the expected fraction of
// answers any tuple-based (r+1)-round algorithm with load L can report:
//
//	E[|A(I)|] ≤ β(q,M) · ((r+1)L/M)^{τ*(M)} · p · E[|q(I)|].

// Contractions returns the sequence q/M̄_0 = q, q/M̄_1, …, q/M̄_r of
// contracted queries along the plan.
func (p *EpsPlan) Contractions() []*query.Query {
	out := []*query.Query{p.Query.Clone()}
	cur := p.Query.Clone()
	for _, names := range p.Sets {
		idx, err := indicesOf(cur, names)
		if err != nil {
			panic(fmt.Errorf("multiround: contraction set: %w", err))
		}
		cur = cur.Contract(Complement(cur, idx))
		out = append(out, cur)
	}
	return out
}

// MinimalNonGamma enumerates Sε(q): the minimal connected subqueries of q
// that are not in Γ¹ε (Definition 5.9's Sε set). A subquery is minimal when
// it contains no smaller connected non-Γ¹ε subquery.
func MinimalNonGamma(q *query.Query, eps float64) []*query.Query {
	n := q.NumAtoms()
	if n > 20 {
		panic("multiround: MinimalNonGamma enumeration limited to 20 atoms")
	}
	// Order subsets by popcount so minimality reduces to containment of an
	// already-found witness.
	bySize := make([][]int, n+1)
	for mask := 1; mask < 1<<uint(n); mask++ {
		bySize[popcount(mask)] = append(bySize[popcount(mask)], mask)
	}
	var witnesses []int // masks of found minimal non-Γ subqueries
	var out []*query.Query
	for size := 1; size <= n; size++ {
		for _, mask := range bySize[size] {
			covered := false
			for _, w := range witnesses {
				if w&mask == w {
					covered = true
					break
				}
			}
			if covered {
				continue
			}
			subset := maskToSlice(mask, n)
			sub := q.Subquery("s", subset)
			if !sub.IsConnected() || bounds.InGammaOne(sub, eps) {
				continue
			}
			witnesses = append(witnesses, mask)
			out = append(out, sub)
		}
	}
	return out
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

func maskToSlice(mask, n int) []int {
	var out []int
	for j := 0; j < n; j++ {
		if mask&(1<<uint(j)) != 0 {
			out = append(out, j)
		}
	}
	return out
}

// TauStarOfPlan returns τ*(M) of Definition 5.9: the minimum of
// τ*(q/M̄_r) and τ*(q') over all minimal connected non-Γ¹ε subqueries q' of
// the contracted queries q/M̄_{j−1}, j ∈ [r]. By Proposition 5.10 it always
// exceeds 1/(1−ε).
func (p *EpsPlan) TauStarOfPlan() float64 {
	qs := p.Contractions()
	last := qs[len(qs)-1]
	tau, _ := packing.TauStar(last)
	best := tau
	for j := 0; j < len(qs)-1; j++ {
		for _, sub := range MinimalNonGamma(qs[j], p.Eps) {
			t, _ := packing.TauStar(sub)
			if t < best {
				best = t
			}
		}
	}
	return best
}

// Beta evaluates β(q,M) of Theorem 5.11:
//
//	β = (1/τ*(q/M̄_r))^{τ*(M)} + Σ_{k=1..r} Σ_{q' ∈ Sε(q/M̄_{k−1})} (1/τ*(q'))^{τ*(M)}.
func (p *EpsPlan) Beta() float64 {
	tauM := p.TauStarOfPlan()
	qs := p.Contractions()
	last := qs[len(qs)-1]
	tauLast, _ := packing.TauStar(last)
	beta := math.Pow(1/tauLast, tauM)
	for j := 0; j < len(qs)-1; j++ {
		for _, sub := range MinimalNonGamma(qs[j], p.Eps) {
			t, _ := packing.TauStar(sub)
			beta += math.Pow(1/t, tauM)
		}
	}
	return beta
}

// OutputFractionUB evaluates the Theorem 5.11 bound on the expected
// fraction of answers reported by a tuple-based algorithm running r+1
// rounds with maximum load L (bits) on matching databases with relation
// size M (bits) and p servers, clamped to [0,1].
func (p *EpsPlan) OutputFractionUB(L, M float64, servers int) float64 {
	if p.R() == 0 && bounds.InGammaOne(p.Query, p.Eps) {
		return 1 // no Theorem 5.11 bound applies
	}
	tauM := p.TauStarOfPlan()
	r := float64(p.R())
	f := p.Beta() * math.Pow((r+1)*L/M, tauM) * float64(servers)
	if f > 1 {
		return 1
	}
	if f < 0 {
		return 0
	}
	return f
}
