package multiround

import (
	"mpcquery/internal/data"
	"mpcquery/internal/engine"
	"mpcquery/internal/hashing"
)

// CCResult reports a connected-components computation in the MPC model.
type CCResult struct {
	Labels map[int64]int64 // vertex -> component label (min vertex id)

	SetupRounds int // rounds spent distributing adjacency (always 1)
	IterRounds  int // communication rounds of the iterative phase
	MaxLoadBits float64
	TotalBits   float64
}

// message kinds for the CC protocols.
const (
	ccEdge    = iota // (v, u): u is a neighbor of v, delivered to owner(v)
	ccLabel          // (v, label): min-label update for v
	ccPtrReq         // (v, w): owner(v) asks owner(w) for ptr[w]
	ccPtrResp        // (v, val): response, delivered to owner(v)
)

// ccState is the per-server local state (the model allows servers to keep
// what they received; only communication is metered).
type ccState struct {
	adj   map[int64][]int64
	label map[int64]int64
}

func ccSetup(g *data.Graph, p int, seed int64) (*engine.Cluster, []*ccState, *hashing.Family) {
	bpv := data.BitsPerValue(g.NumVertices)
	cluster := engine.NewCluster(p, bpv)
	family := hashing.NewFamily(seed, 1)
	m := g.Edges.NumTuples()
	for i := 0; i < m; i++ {
		cluster.Seed(i%p, ccEdge, g.Edges.Tuple(i))
	}
	owner := func(v int64) int { return family.Bin(0, v, p) }

	// Setup round: deliver each edge to both endpoint owners.
	cluster.Round("cc-setup", func(s int, inbox *engine.Inbox, emit *engine.Emitter) {
		pair := make([]int64, 2)
		inbox.Each(func(kind int, t []int64) {
			u, v := t[0], t[1]
			pair[0], pair[1] = u, v
			emit.EmitTuple(owner(u), ccEdge, pair)
			pair[0], pair[1] = v, u
			emit.EmitTuple(owner(v), ccEdge, pair)
		})
	})

	states := make([]*ccState, p)
	for s := 0; s < p; s++ {
		st := &ccState{adj: make(map[int64][]int64), label: make(map[int64]int64)}
		cluster.Inbox(s).Each(func(kind int, t []int64) {
			st.adj[t[0]] = append(st.adj[t[0]], t[1])
		})
		states[s] = st
	}
	return cluster, states, family
}

// LabelPropagation computes connected components by iterative min-label
// exchange along edges: Θ(diameter) rounds with load O(m/p) per round.
// maxRounds caps the iteration (0 means no cap).
func LabelPropagation(g *data.Graph, p int, seed int64, maxRounds int) *CCResult {
	cluster, states, family := ccSetup(g, p, seed)
	owner := func(v int64) int { return family.Bin(0, v, p) }

	changed := make([]map[int64]bool, p)
	for s, st := range states {
		changed[s] = make(map[int64]bool)
		for v := range st.adj {
			st.label[v] = v
			changed[s][v] = true
		}
	}

	iter := 0
	for {
		if maxRounds > 0 && iter >= maxRounds {
			break
		}
		st := cluster.Round("cc-propagate", func(s int, inbox *engine.Inbox, emit *engine.Emitter) {
			// Apply updates received last round, then announce changes.
			local := states[s]
			inbox.Each(func(kind int, t []int64) {
				if kind != ccLabel {
					return
				}
				v, l := t[0], t[1]
				if l < local.label[v] {
					local.label[v] = l
					changed[s][v] = true
				}
			})
			pair := make([]int64, 2)
			// Sorted, not map order: emission order is inbox order is wire
			// order, and SPMD ranks must serialize identical frames.
			for _, v := range data.SortedKeys(changed[s]) {
				l := local.label[v]
				for _, u := range local.adj[v] {
					if l < u { // only useful updates travel
						pair[0], pair[1] = u, l
						emit.EmitTuple(owner(u), ccLabel, pair)
					}
				}
			}
			changed[s] = make(map[int64]bool)
		})
		iter++
		if st.TotalRecvTuples == 0 {
			break
		}
	}
	// Deliver any final pending updates (the loop exits after an empty
	// round, so labels are already stable).

	labels := collectLabels(g, states, family, p)
	defer cluster.Release()
	return &CCResult{
		Labels:      labels,
		SetupRounds: 1,
		IterRounds:  iter,
		MaxLoadBits: cluster.MaxLoadBits(),
		TotalBits:   cluster.TotalBits(),
	}
}

// PointerJumping computes connected components with min-pointer doubling:
// each vertex maintains ptr[v] (a smaller-id vertex in its component);
// every iteration both relaxes along edges and jumps ptr[v] ← ptr[ptr[v]],
// converging in O(log diameter) iterations on paths (two communication
// rounds per iteration: request + response).
func PointerJumping(g *data.Graph, p int, seed int64, maxRounds int) *CCResult {
	cluster, states, family := ccSetup(g, p, seed)
	owner := func(v int64) int { return family.Bin(0, v, p) }

	for _, st := range states {
		for v, ns := range st.adj {
			best := v
			for _, u := range ns {
				if u < best {
					best = u
				}
			}
			st.label[v] = best // label doubles as ptr
		}
	}

	iter := 0
	for {
		if maxRounds > 0 && iter >= maxRounds {
			break
		}
		anyChange := false
		// Round A: send pointer requests and edge relaxations.
		cluster.Round("cc-jump-request", func(s int, inbox *engine.Inbox, emit *engine.Emitter) {
			local := states[s]
			pair := make([]int64, 2)
			// Sorted for deterministic emission order (see cc-update above).
			for _, v := range data.SortedKeys(local.label) {
				ptr := local.label[v]
				if ptr != v {
					pair[0], pair[1] = v, ptr
					emit.EmitTuple(owner(ptr), ccPtrReq, pair)
				}
				for _, u := range local.adj[v] {
					if ptr < u {
						pair[0], pair[1] = u, ptr
						emit.EmitTuple(owner(u), ccLabel, pair)
					}
				}
			}
		})
		// Round B: answer requests; apply relaxations.
		relaxChanged := make([]bool, p)
		cluster.Round("cc-jump-response", func(s int, inbox *engine.Inbox, emit *engine.Emitter) {
			local := states[s]
			pair := make([]int64, 2)
			inbox.Each(func(kind int, t []int64) {
				switch kind {
				case ccPtrReq:
					v, w := t[0], t[1]
					lw, ok := local.label[w]
					if !ok {
						lw = w // w unknown here (cannot happen for edge vertices)
					}
					pair[0], pair[1] = v, lw
					emit.EmitTuple(owner(v), ccPtrResp, pair)
				case ccLabel:
					v, l := t[0], t[1]
					if cur, ok := local.label[v]; ok && l < cur {
						local.label[v] = l
						relaxChanged[s] = true
					}
				}
			})
		})
		// Apply responses locally (no further communication needed).
		for s := 0; s < p; s++ {
			local := states[s]
			cluster.Inbox(s).Each(func(kind int, t []int64) {
				if kind != ccPtrResp {
					return
				}
				v, l := t[0], t[1]
				if l < local.label[v] {
					local.label[v] = l
					relaxChanged[s] = true
				}
			})
			if relaxChanged[s] {
				anyChange = true
			}
		}
		iter++
		if !anyChange {
			break
		}
	}

	labels := collectLabels(g, states, family, p)
	defer cluster.Release()
	return &CCResult{
		Labels:      labels,
		SetupRounds: 1,
		IterRounds:  2 * iter,
		MaxLoadBits: cluster.MaxLoadBits(),
		TotalBits:   cluster.TotalBits(),
	}
}

func collectLabels(g *data.Graph, states []*ccState, family *hashing.Family, p int) map[int64]int64 {
	labels := make(map[int64]int64)
	for _, st := range states {
		for v, l := range st.label {
			labels[v] = l
		}
	}
	// Isolated vertices label themselves.
	for v := int64(0); v < g.NumVertices; v++ {
		if _, ok := labels[v]; !ok {
			labels[v] = v
		}
	}
	return labels
}
