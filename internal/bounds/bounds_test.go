package bounds

import (
	"math"
	"testing"

	"mpcquery/internal/query"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestSpaceExponentTable2 checks the last column of Table 2:
// C_k: 1−2/k, T_k: 0, L_k: 1−1/⌈k/2⌉, B_{k,m}: 1−m/k.
func TestSpaceExponentTable2(t *testing.T) {
	tests := []struct {
		q    *query.Query
		want float64
	}{
		{query.Cycle(3), 1 - 2.0/3},
		{query.Cycle(6), 1 - 2.0/6},
		{query.Star(2), 0},
		{query.Star(7), 0},
		{query.Chain(3), 0.5},
		{query.Chain(5), 1 - 1.0/3},
		{query.Binom(4, 2), 0.5},
		{query.Binom(4, 3), 0.25},
	}
	for _, tt := range tests {
		if got := SpaceExponentLB(tt.q); !approx(got, tt.want, 1e-6) {
			t.Errorf("%s: ε=%v want %v", tt.q.Name, got, tt.want)
		}
	}
}

func TestExpectedOutput(t *testing.T) {
	// Triangle with m1=m2=m3=m, n: E = n^{3-6}·m³ = m³/n³.
	q := query.Triangle()
	n, m := 1000.0, 500.0
	want := m * m * m / (n * n * n)
	if got := ExpectedOutput(q, []float64{m, m, m}, n); !approx(got, want, 1e-6) {
		t.Errorf("E[|C3|]=%v want %v", got, want)
	}
	// Chain L2: k=3, a=4 => n^{-1}·m².
	q2 := query.Chain(2)
	want2 := m * m / n
	if got := ExpectedOutput(q2, []float64{m, m}, n); !approx(got, want2, 1e-6) {
		t.Errorf("E[|L2|]=%v want %v", got, want2)
	}
}

// TestAnswerFraction checks that algorithms with load below L_lower report a
// vanishing fraction: for C3 with equal sizes, L = M/p gives fraction
// (4L·2/(3·L_lower·2))^{3/2} -> 0 as p grows, while L = L_lower gives Ω(1)·const.
func TestAnswerFraction(t *testing.T) {
	q := query.Triangle()
	M := 1 << 30
	stats := []float64{float64(M), float64(M), float64(M)}
	fLow := AnswerFractionUB(q, stats, 64, float64(M)/64)
	fHigh := AnswerFractionUB(q, stats, 64, float64(M)/math.Pow(64, 2.0/3))
	if fLow >= fHigh {
		t.Errorf("smaller load should bound a smaller fraction: %v vs %v", fLow, fHigh)
	}
	// The fraction at L = M/p must shrink as p grows (space exponent 0 < 1/3).
	f1 := AnswerFractionUB(q, stats, 64, float64(M)/64)
	f2 := AnswerFractionUB(q, stats, 4096, float64(M)/4096)
	if f2 >= f1 {
		t.Errorf("fraction should decrease with p: p=64 %v, p=4096 %v", f1, f2)
	}
}

// TestReplicationRate checks Example 3.20: for C3 with equal sizes the
// replication bound scales as sqrt(M/L).
func TestReplicationRate(t *testing.T) {
	q := query.Triangle()
	M := math.Pow(2, 30)
	r1 := ReplicationRateShape(q, M, M/4)
	if !approx(r1, 2, 1e-9) {
		t.Errorf("shape at L=M/4: %v want 2", r1)
	}
	r2 := ReplicationRateShape(q, M, M/16)
	if !approx(r2, 4, 1e-9) {
		t.Errorf("shape at L=M/16: %v want 4", r2)
	}
	// The constant-carrying bound must also grow as L decreases.
	lb1 := ReplicationRateLB(q, []float64{M, M, M}, M/4)
	lb2 := ReplicationRateLB(q, []float64{M, M, M}, M/16)
	if lb2 <= lb1 {
		t.Errorf("replication LB should grow as L shrinks: %v vs %v", lb1, lb2)
	}
}

// TestStarSkewLB checks the bound on a two-relation star (simple join).
// With a single heavy hitter h of frequency M in both relations, the bound
// must be sqrt(M·M/p) for I={1,2} — much larger than M/p.
func TestStarSkewLB(t *testing.T) {
	p := 64.0
	M := 1 << 20
	freq := []map[int64]float64{
		{7: float64(M)},
		{7: float64(M)},
	}
	got := StarSkewLB(freq, p)
	want := math.Sqrt(float64(M) * float64(M) / p)
	if !approx(got, want, 1e-6) {
		t.Errorf("single-heavy bound=%v want %v", got, want)
	}
	// Uniform frequencies: every value degree 1, m values. Bound becomes
	// max(M/p, sqrt(m/p)) = M/p for m=M.
	uniform := make(map[int64]float64, 1000)
	for i := int64(0); i < 1000; i++ {
		uniform[i] = 1
	}
	got2 := StarSkewLB([]map[int64]float64{uniform, uniform}, p)
	want2 := 1000 / p
	if !approx(got2, want2, 1e-6) {
		t.Errorf("uniform bound=%v want %v", got2, want2)
	}
}

func TestTriangleSkewUB(t *testing.T) {
	p := 64.0
	M := float64(1 << 20)
	empty := map[int64]float64{}
	// No heavy hitters: bound is the skew-free M/p^{2/3}.
	got := TriangleSkewUB(M, empty, empty, empty, empty, empty, empty, p)
	if !approx(got, M/math.Pow(p, 2.0/3), 1e-6) {
		t.Errorf("no-skew bound=%v", got)
	}
	// One x-value heavy in both R and T with full weight M:
	// sqrt(M²/p) dominates.
	h := map[int64]float64{1: M}
	got2 := TriangleSkewUB(M, h, h, empty, empty, empty, empty, p)
	if !approx(got2, math.Sqrt(M*M/p), 1e-6) {
		t.Errorf("heavy bound=%v want %v", got2, math.Sqrt(M*M/p))
	}
}

// TestSkewedLBStar checks that the general Theorem 4.4 machinery reproduces
// the star-specific bound (20) on the simple join.
func TestSkewedLBStar(t *testing.T) {
	q := query.Star(2) // S1(z,x1), S2(z,x2)
	p := 64.0
	M := float64(1 << 18)
	freq := []map[int64]float64{
		{3: M, 5: M / 2},
		{3: M, 5: M / 4},
	}
	general := SkewedLB(q, FreqStats{Var: "z", Bits: freq}, p)
	specific := StarSkewLB(freq, p)
	if !approx(general, specific, specific*1e-6) {
		t.Errorf("general LB %v != star LB %v", general, specific)
	}
}

func TestKEpsilon(t *testing.T) {
	tests := []struct {
		eps    float64
		ke, me int
	}{
		{0, 2, 2},
		{0.5, 4, 4},
		{2.0 / 3, 6, 6},
		{0.75, 8, 8},
	}
	for _, tt := range tests {
		if got := KEpsilon(tt.eps); got != tt.ke {
			t.Errorf("kε(%v)=%d want %d", tt.eps, got, tt.ke)
		}
		if got := MEpsilon(tt.eps); got != tt.me {
			t.Errorf("mε(%v)=%d want %d", tt.eps, got, tt.me)
		}
	}
}

func TestInGammaOne(t *testing.T) {
	if !InGammaOne(query.Chain(2), 0) {
		t.Error("L2 ∈ Γ¹₀")
	}
	if InGammaOne(query.Chain(3), 0) {
		t.Error("L3 ∉ Γ¹₀ (τ*=2)")
	}
	if !InGammaOne(query.Chain(4), 0.5) {
		t.Error("L4 ∈ Γ¹_{1/2}")
	}
	if !InGammaOne(query.Star(9), 0) {
		t.Error("T9 ∈ Γ¹₀ (τ*=1)")
	}
}

// TestChainRounds checks Table 3 and Example 5.2: L16 at ε=1/2 needs
// exactly 2 rounds; at ε=0 it needs ⌈log2 16⌉=4.
func TestChainRounds(t *testing.T) {
	if got := ChainRounds(16, 0.5); got != 2 {
		t.Errorf("L16 ε=1/2: rounds=%d want 2", got)
	}
	if got := ChainRounds(16, 0); got != 4 {
		t.Errorf("L16 ε=0: rounds=%d want 4", got)
	}
	if got := ChainRounds(5, 0); got != 3 {
		t.Errorf("L5 ε=0: rounds=%d want 3", got)
	}
	if got := ChainRoundsLB(16, 0.5); got != 2 {
		t.Errorf("LB should equal UB for chains")
	}
}

// TestCycleRounds checks Example 5.19: at ε=0, C6 has LB 3 and UB 3;
// C5 has LB 2 and UB 3 (the paper leaves C5 open).
func TestCycleRounds(t *testing.T) {
	if got := CycleRoundsLB(6, 0); got != 3 {
		t.Errorf("C6 LB=%d want 3", got)
	}
	if got := RoundsUB(query.Cycle(6), 0); got != 3 {
		t.Errorf("C6 UB=%d want 3", got)
	}
	if got := CycleRoundsLB(5, 0); got != 2 {
		t.Errorf("C5 LB=%d want 2", got)
	}
	if got := RoundsUB(query.Cycle(5), 0); got != 3 {
		t.Errorf("C5 UB=%d want 3", got)
	}
}

// TestTreeLikeGap checks that for tree-like queries UB − LB ≤ 1 and that at
// ε < 1/2 the bounds match (Section 5.3 discussion).
func TestTreeLikeGap(t *testing.T) {
	for k := 3; k <= 12; k++ {
		q := query.Chain(k)
		lb := TreeLikeRoundsLB(q, 0)
		ub := RoundsUB(q, 0)
		if ub < lb {
			t.Errorf("L%d: UB %d < LB %d", k, ub, lb)
		}
		if ub-lb > 1 {
			t.Errorf("L%d: gap %d > 1", k, ub-lb)
		}
		if lb != ub { // ε=0 < 1/2: bounds must match for tree-like queries
			t.Errorf("L%d at ε=0: LB %d != UB %d", k, lb, ub)
		}
	}
}

func TestRoundsUBStar(t *testing.T) {
	// Stars have radius 1: computable in 1 round at any ε (Table 3: Tk -> 1).
	if got := RoundsUB(query.Star(5), 0); got != 1 {
		t.Errorf("T5 rounds=%d want 1", got)
	}
}

func TestCeilFloorLog(t *testing.T) {
	if CeilLog(2, 1) != 0 || CeilLog(2, 2) != 1 || CeilLog(2, 3) != 2 || CeilLog(4, 16) != 2 || CeilLog(4, 17) != 3 {
		t.Error("CeilLog broken")
	}
	if FloorLogRatio(2, 6, 3) != 1 || FloorLogRatio(2, 5, 3) != 0 || FloorLogRatio(2, 12, 3) != 2 {
		t.Error("FloorLogRatio broken")
	}
}

func TestCCRoundsLBGrows(t *testing.T) {
	prev := -1
	grew := false
	for _, p := range []int{1 << 10, 1 << 20, 1 << 30, 1 << 40} {
		lb := ConnectedComponentsRoundsLB(p, 2)
		if lb < prev {
			t.Errorf("CC LB not monotone: %d then %d", prev, lb)
		}
		if lb > prev && prev >= 0 {
			grew = true
		}
		prev = lb
	}
	if !grew {
		t.Error("CC LB should grow with p (Ω(log p))")
	}
}
