package bounds

import (
	"math"

	"mpcquery/internal/packing"
	"mpcquery/internal/query"
)

// KEpsilon returns kε = 2⌊1/(1−ε)⌋, the longest chain computable in one
// round with space exponent ε (Section 5.1): τ*(L_k) ≤ 1/(1−ε) iff k ≤ kε.
func KEpsilon(eps float64) int {
	return 2 * int(1/(1-eps)+1e-9)
}

// MEpsilon returns mε = ⌊2/(1−ε)⌋, the longest cycle computable in one
// round with space exponent ε (Lemma 5.7): τ*(C_k) = k/2 ≤ 1/(1−ε) iff
// k ≤ mε.
func MEpsilon(eps float64) int {
	return int(2/(1-eps) + 1e-9)
}

// InGammaOne reports whether q ∈ Γ¹ε, i.e. τ*(q) ≤ 1/(1−ε): q is computable
// in one round with load O(M/p^{1−ε}) on matching databases.
func InGammaOne(q *query.Query, eps float64) bool {
	tau, _ := packing.TauStar(q)
	return tau <= 1/(1-eps)+1e-9
}

// CeilLog returns ⌈log_base(x)⌉ for integers base ≥ 2, x ≥ 1, computed in
// exact integer arithmetic (the smallest r ≥ 0 with base^r ≥ x).
func CeilLog(base, x int) int {
	if base < 2 || x < 1 {
		panic("bounds: CeilLog requires base >= 2 and x >= 1")
	}
	r, pow := 0, 1
	for pow < x {
		pow *= base
		r++
	}
	return r
}

// FloorLogRatio returns ⌊log_base(num/den)⌋ for num ≥ den ≥ 1 (the largest
// r ≥ 0 with base^r ≤ num/den), in exact integer arithmetic.
func FloorLogRatio(base, num, den int) int {
	if base < 2 || den < 1 || num < den {
		panic("bounds: FloorLogRatio requires base >= 2 and num >= den >= 1")
	}
	r := 0
	pow := den
	for pow*base <= num {
		pow *= base
		r++
	}
	return r
}

// ChainRounds returns the depth ⌈log_kε k⌉ of the optimal multi-round plan
// for L_k with load O(M/p^{1−ε}) (Section 5.1; tight by Corollary 5.15).
func ChainRounds(k int, eps float64) int {
	ke := KEpsilon(eps)
	if ke < 2 {
		panic("bounds: ChainRounds needs kε >= 2 (eps >= 0)")
	}
	return CeilLog(ke, k)
}

// ChainRoundsLB returns the Corollary 5.15 lower bound ⌈log_kε k⌉ on the
// number of rounds of any tuple-based MPC algorithm for L_k with load
// O(M/p^{1−ε}). It coincides with ChainRounds (the bound is tight).
func ChainRoundsLB(k int, eps float64) int { return ChainRounds(k, eps) }

// TreeLikeRoundsLB returns the Corollary 5.17 lower bound
// ⌈log_kε diam(q)⌉ for a tree-like query q.
func TreeLikeRoundsLB(q *query.Query, eps float64) int {
	if !q.IsTreeLike() {
		panic("bounds: TreeLikeRoundsLB requires a tree-like query")
	}
	return CeilLog(KEpsilon(eps), q.Diameter())
}

// RoundsUB returns the Lemma 5.4 upper bound r(q) on the rounds needed to
// compute a connected query q with load O(M/p^{1−ε}):
//
//	r(q) = ⌈log_kε rad(q)⌉ + 1   if q is tree-like,
//	       ⌊log_kε rad(q)⌋ + 2   otherwise.
func RoundsUB(q *query.Query, eps float64) int {
	ke := KEpsilon(eps)
	rad := q.Radius()
	if rad == 0 {
		return 1
	}
	if q.IsTreeLike() {
		return CeilLog(ke, rad) + 1
	}
	return FloorLogRatio(ke, rad, 1) + 2
}

// CycleRoundsLB returns the Lemma 5.18 lower bound
// ⌊log_kε(k/(mε+1))⌋ + 2 on the rounds needed for C_k with load
// O(M/p^{1−ε}), valid for k > mε.
func CycleRoundsLB(k int, eps float64) int {
	ke := KEpsilon(eps)
	me := MEpsilon(eps)
	if k <= me {
		return 1
	}
	return FloorLogRatio(ke, k, me+1) + 2
}

// ConnectedComponentsRoundsLB returns the Theorem 5.20 round lower bound
// shape for computing connected components with load O(m/p^{1−ε}),
// ε = 1−1/t: the construction reduces from L_k with k = ⌊p^δ⌋,
// δ = 1/(2t(t+2)), yielding Ω(log p) rounds. We return the asymptotic form
// ⌈δ·log p / log kε⌉ with the additive constants of the reduction dropped
// (the theorem is an Ω-bound; the constants make the exact expression
// vacuous at laptop-scale p).
func ConnectedComponentsRoundsLB(p int, t int) int {
	if t < 2 {
		panic("bounds: ConnectedComponentsRoundsLB requires t >= 2")
	}
	eps := 1 - 1/float64(t)
	delta := 1 / float64(2*t*(t+2))
	ke := float64(KEpsilon(eps))
	lb := int(math.Ceil(delta * math.Log(float64(p)) / math.Log(ke)))
	if lb < 0 {
		lb = 0
	}
	return lb
}
