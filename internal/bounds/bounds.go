// Package bounds evaluates the paper's closed-form lower and upper bounds:
// the one-round load bounds of Section 3, the skewed bounds of Section 4,
// and the multi-round round-count bounds of Section 5. These are the
// "paper-predicted" columns that the experiment harness compares against
// measured loads.
package bounds

import (
	"math"

	"mpcquery/internal/packing"
	"mpcquery/internal/query"
)

// SpaceExponentLB returns 1 − 1/τ*(q), the smallest space exponent ε for
// which a one-round algorithm can compute q on skew-free data (Section 3.4,
// Table 2). An algorithm with load O(M/p^{1−ε'}) for ε' < this value
// reports a vanishing fraction of answers as p grows.
func SpaceExponentLB(q *query.Query) float64 {
	tau, _ := packing.TauStar(q)
	return 1 - 1/tau
}

// ExpectedOutput returns E[|q(I)|] = n^{k−a} Π_j m_j for the matching
// probability space with cardinalities m and domain size n (Lemma 3.6).
func ExpectedOutput(q *query.Query, m []float64, n float64) float64 {
	logOut := float64(q.NumVars()-q.TotalArity()) * math.Log(n)
	for _, mj := range m {
		logOut += math.Log(mj)
	}
	return math.Exp(logOut)
}

// AnswerFractionUB returns the strongest Theorem 3.5 bound on the fraction
// of the expected answers that p servers with maximum load L can report:
//
//	min over packing vertices u ≠ 0 of (4L / (Σu_j · L(u,M,p)))^{Σ u_j},
//
// clamped to [0,1].
func AnswerFractionUB(q *query.Query, M []float64, p, L float64) float64 {
	best := 1.0
	for _, u := range packing.Vertices(q) {
		su := 0.0
		for _, w := range u {
			su += w
		}
		if su <= 0 {
			continue
		}
		lu := packing.Load(u, M, p)
		if lu <= 0 {
			continue
		}
		f := math.Pow(4*L/(su*lu), su)
		if f < best {
			best = f
		}
	}
	if best < 0 {
		best = 0
	}
	return best
}

// ReplicationRateLB returns the Corollary 3.19 lower bound on the
// replication rate of any one-round algorithm with maximum load L:
//
//	r ≥ c·L/ΣM_j · max_u Π_j (M_j/L)^{u_j},  c = (Σu_j/4)^{Σu_j},
//
// maximized over packing vertices.
func ReplicationRateLB(q *query.Query, M []float64, L float64) float64 {
	totalM := 0.0
	for _, mj := range M {
		totalM += mj
	}
	best := 0.0
	for _, u := range packing.Vertices(q) {
		su := 0.0
		logProd := 0.0
		for j, w := range u {
			su += w
			if w > 0 {
				logProd += w * math.Log(M[j]/L)
			}
		}
		if su < 1 {
			continue // the corollary's derivation needs Σu_j ≥ 1
		}
		c := math.Pow(su/4, su)
		r := c * L / totalM * math.Exp(logProd)
		if r > best {
			best = r
		}
	}
	return best
}

// ReplicationRateShape returns the constant-free shape (M/L)^{τ*−1} of the
// replication-rate bound for equal relation sizes M (Example 3.20: for C3
// this is Ω(sqrt(M/L))).
func ReplicationRateShape(q *query.Query, M, L float64) float64 {
	tau, _ := packing.TauStar(q)
	return math.Pow(M/L, tau-1)
}
