package bounds

import (
	"fmt"
	"math"

	"mpcquery/internal/lp"
	"mpcquery/internal/query"
)

// FreqStats carries x-statistics for a single distinguished variable
// (Section 4.2): for each atom j that contains the variable, Bits[j] maps a
// domain value h to M_j(h), the size in bits of σ_{x=h}(S_j). Atoms that do
// not contain the variable have a nil map and are treated as unsplit.
type FreqStats struct {
	Var  string
	Bits []map[int64]float64
}

// StarSkewLB evaluates the Section 4.2.3 star-query lower bound (up to the
// paper's 1/8 constant, which we omit to compare shapes):
//
//	L ≥ max_{I ⊆ [ℓ], I≠∅} ( Σ_h Π_{j∈I} M_j(h) / p )^{1/|I|}.
//
// freq[j] maps each z-value h to M_j(h) in bits.
func StarSkewLB(freq []map[int64]float64, p float64) float64 {
	l := len(freq)
	best := 0.0
	for mask := 1; mask < 1<<uint(l); mask++ {
		var members []int
		for j := 0; j < l; j++ {
			if mask&(1<<uint(j)) != 0 {
				members = append(members, j)
			}
		}
		sum := 0.0
		for h, m0 := range freq[members[0]] {
			prod := m0
			for _, j := range members[1:] {
				prod *= freq[j][h] // missing key => 0, kills the product
			}
			sum += prod
		}
		if sum <= 0 {
			continue
		}
		val := math.Pow(sum/p, 1/float64(len(members)))
		if val > best {
			best = val
		}
	}
	return best
}

// TriangleSkewUB evaluates the Section 4.2.2 upper bound on the load of the
// skew-aware triangle algorithm (dropping polylog factors):
//
//	L = Õ(max( M/p^{2/3},
//	           sqrt(Σ_h M_R(h)M_T(h)/p),   // h ranges over heavy x values
//	           sqrt(Σ_h M_R(h)M_S(h)/p),   // heavy y values
//	           sqrt(Σ_h M_S(h)M_T(h)/p) )) // heavy z values
//
// for C3 = R(x,y), S(y,z), T(z,x) with |R|=|S|=|T|=M bits. The maps give
// per-value frequencies in bits for the heavy values of each variable in
// each adjacent relation.
func TriangleSkewUB(m float64, rx, tx, ry, sy, sz, tz map[int64]float64, p float64) float64 {
	best := m / math.Pow(p, 2.0/3)
	for _, pair := range []struct{ a, b map[int64]float64 }{{rx, tx}, {ry, sy}, {sz, tz}} {
		sum := 0.0
		for h, va := range pair.a {
			sum += va * pair.b[h]
		}
		if v := math.Sqrt(sum / p); v > best {
			best = v
		}
	}
	return best
}

// SkewedLB evaluates the general Theorem 4.4 lower bound for statistics of
// type x = {stats.Var} (a single distinguished variable):
//
//	L ≥ min_j (a_j−d_j)/(4a_j) · max_u ( Σ_h Π_j M_j(h_j)^{u_j} / p )^{1/Σu_j}
//
// where u ranges over fractional edge packings of the residual query q_x
// that saturate x. We maximize over the vertices of that polytope. The
// returned value omits the min_j constant factor (shape comparison).
func SkewedLB(q *query.Query, stats FreqStats, p float64) float64 {
	vi := q.VarIndex(stats.Var)
	if vi < 0 {
		panic("bounds: SkewedLB variable not in query")
	}
	// Collect all distinguished values appearing in any atom's statistics.
	values := make(map[int64]bool)
	for _, m := range stats.Bits {
		for h := range m {
			values[h] = true
		}
	}
	best := 0.0
	for _, u := range saturatingVertices(q, stats.Var) {
		su := 0.0
		for _, w := range u {
			su += w
		}
		if su <= 0 {
			continue
		}
		sum := 0.0
		for h := range values {
			logProd := 0.0
			dead := false
			for j, w := range u {
				if w <= 0 {
					continue
				}
				var mjh float64
				if stats.Bits[j] != nil {
					mjh = stats.Bits[j][h]
				}
				if mjh <= 0 {
					dead = true
					break
				}
				logProd += w * math.Log(mjh)
			}
			if !dead {
				sum += math.Exp(logProd)
			}
		}
		if sum <= 0 {
			continue
		}
		if v := math.Pow(sum/p, 1/su); v > best {
			best = v
		}
	}
	return best
}

// saturatingVertices enumerates the vertices of the polytope of fractional
// edge packings of the residual query q_x (constraints only on variables
// other than x) that saturate x: Σ_{j: x ∈ Sj} u_j ≥ 1.
func saturatingVertices(q *query.Query, x string) [][]float64 {
	l := q.NumAtoms()
	type row struct {
		coeffs []float64
		rhs    float64
	}
	var rows []row
	for _, v := range q.Vars() {
		if v == x {
			continue
		}
		r := row{coeffs: make([]float64, l), rhs: 1}
		for _, j := range q.AtomsOf(v) {
			r.coeffs[j] = 1
		}
		rows = append(rows, r)
	}
	sat := row{coeffs: make([]float64, l), rhs: 1}
	for _, j := range q.AtomsOf(x) {
		sat.coeffs[j] = 1
	}
	rows = append(rows, sat)
	for j := 0; j < l; j++ {
		r := row{coeffs: make([]float64, l), rhs: 0}
		r.coeffs[j] = 1
		rows = append(rows, r)
	}

	feasible := func(u []float64) bool {
		for _, w := range u {
			if w < -1e-7 {
				return false
			}
		}
		for _, v := range q.Vars() {
			if v == x {
				continue
			}
			s := 0.0
			for _, j := range q.AtomsOf(v) {
				s += u[j]
			}
			if s > 1+1e-7 {
				return false
			}
		}
		s := 0.0
		for _, j := range q.AtomsOf(x) {
			s += u[j]
		}
		return s >= 1-1e-7
	}

	seen := make(map[string]bool)
	var out [][]float64
	idx := make([]int, l)
	var rec func(start, d int)
	rec = func(start, d int) {
		if d == l {
			a := make([][]float64, l)
			b := make([]float64, l)
			for i, ri := range idx {
				a[i] = rows[ri].coeffs
				b[i] = rows[ri].rhs
			}
			u, ok := lp.SolveSquare(a, b)
			if !ok || !feasible(u) {
				return
			}
			key := ""
			for _, w := range u {
				r := math.Round(w*1e7) / 1e7
				if r == 0 {
					r = 0
				}
				key += fmt.Sprintf("%.7f,", r)
			}
			if !seen[key] {
				seen[key] = true
				out = append(out, u)
			}
			return
		}
		for i := start; i < len(rows); i++ {
			idx[d] = i
			rec(i+1, d+1)
		}
	}
	rec(0, 0)
	return out
}
