package packing

import (
	"testing"

	"mpcquery/internal/query"
)

// BenchmarkShareExponents measures LP (10) on the triangle (the planner's
// hot path).
func BenchmarkShareExponents(b *testing.B) {
	q := query.Triangle()
	M := []float64{1 << 20, 1 << 22, 1 << 24}
	for i := 0; i < b.N; i++ {
		sh := ShareExponents(q, M, 64)
		if sh.Lambda <= 0 {
			b.Fatal("bad lambda")
		}
	}
}

// BenchmarkVertices measures packing-polytope vertex enumeration on L8
// (C(17,8) candidate bases).
func BenchmarkVertices(b *testing.B) {
	q := query.Chain(8)
	for i := 0; i < b.N; i++ {
		if len(Vertices(q)) == 0 {
			b.Fatal("no vertices")
		}
	}
}

func BenchmarkTauStar(b *testing.B) {
	q := query.Binom(5, 2)
	for i := 0; i < b.N; i++ {
		if tau, _ := TauStar(q); tau <= 0 {
			b.Fatal("bad tau")
		}
	}
}
