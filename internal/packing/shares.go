package packing

import (
	"fmt"
	"math"

	"mpcquery/internal/lp"
	"mpcquery/internal/query"
)

// Shares is the solution of a share-optimization LP for the HyperCube
// algorithm: one exponent per variable of the query, plus the optimal load
// exponent λ = log_p L.
type Shares struct {
	Query     *query.Query
	Exponents []float64 // e_i per variable, Σ e_i ≤ 1
	Lambda    float64   // λ = log_p(L)
	P         float64   // number of servers used to form µ_j

	// trivial marks the degenerate single-server solution (p ≤ 1), where
	// λ = log_p L is undefined: the lone server receives every input bit, so
	// Load() reports trivialLoad = Σ_j M_j instead of p^λ.
	trivial     bool
	trivialLoad float64
}

// Load returns the optimized load L = p^λ (in the same units as the
// statistics passed to the solver, i.e. bits if M was in bits). On the
// degenerate single-server instance it returns Σ_j M_j.
func (s Shares) Load() float64 {
	if s.trivial {
		return s.trivialLoad
	}
	return math.Pow(s.P, s.Lambda)
}

// trivialShares is the p ≤ 1 solution shared by both LPs: all exponents
// zero (every share is 1), load = the whole input.
func trivialShares(q *query.Query, M []float64, p float64) Shares {
	return Shares{Query: q, Exponents: make([]float64, q.NumVars()), P: p,
		trivial: true, trivialLoad: sum(M)}
}

// Share returns the (real-valued) share p^{e_i} of variable i.
func (s Shares) Share(i int) float64 { return math.Pow(s.P, s.Exponents[i]) }

// ShareExponents solves the paper's LP (10): given statistics M (sizes of
// the ℓ relations, in bits) and p servers, find share exponents e minimizing
// λ subject to
//
//	Σ_i e_i ≤ 1,   ∀j: Σ_{i ∈ Sj} e_i + λ ≥ µ_j,   e ≥ 0, λ ≥ 0,
//
// where µ_j = log_p M_j. The optimal load of the HyperCube algorithm is then
// L_upper = p^λ (Theorem 3.4).
func ShareExponents(q *query.Query, M []float64, p float64) Shares {
	if len(M) != q.NumAtoms() {
		panic(fmt.Sprintf("packing: %d statistics for %d atoms", len(M), q.NumAtoms()))
	}
	if p <= 1 {
		// One server: shares are all 1 and it receives everything; there is
		// no LP to solve (µ_j = log_p M_j is undefined at p = 1).
		return trivialShares(q, M, p)
	}
	k := q.NumVars()
	n := k + 1 // e_1..e_k, λ
	obj := make([]float64, n)
	obj[k] = 1 // minimize λ
	prob := &lp.Problem{NumVars: n, Objective: obj}
	// Σ e_i ≤ 1
	row := make([]float64, n)
	for i := 0; i < k; i++ {
		row[i] = 1
	}
	prob.Constraints = append(prob.Constraints, lp.Constraint{Coeffs: row, Op: lp.LE, RHS: 1})
	// ∀j: Σ_{i∈Sj} e_i + λ ≥ µ_j
	for j, a := range q.Atoms {
		mu := math.Log(M[j]) / math.Log(p)
		r := make([]float64, n)
		for _, v := range a.DistinctVars() {
			r[q.VarIndex(v)] = 1
		}
		r[k] = 1
		prob.Constraints = append(prob.Constraints, lp.Constraint{Coeffs: r, Op: lp.GE, RHS: mu})
	}
	s := lp.Solve(prob)
	if s.Status != lp.Optimal {
		panic(fmt.Sprintf("packing: share LP %v for %s", s.Status, q))
	}
	return Shares{Query: q, Exponents: s.X[:k], Lambda: s.X[k], P: p}
}

// SkewShareExponents solves LP (18), the skew-oblivious share optimization
// of Section 4.1: the worst-case load of the HyperCube algorithm over all
// data distributions is governed by M_j / min_{i ∈ Sj} p_i, so the LP is
//
//	min λ  s.t.  Σ_i e_i ≤ 1,  ∀j: h_j + λ ≥ µ_j,
//	             ∀j ∀i ∈ Sj: e_i − h_j ≥ 0,   e, h, λ ≥ 0.
func SkewShareExponents(q *query.Query, M []float64, p float64) Shares {
	if len(M) != q.NumAtoms() {
		panic(fmt.Sprintf("packing: %d statistics for %d atoms", len(M), q.NumAtoms()))
	}
	if p <= 1 {
		return trivialShares(q, M, p)
	}
	k := q.NumVars()
	l := q.NumAtoms()
	n := k + l + 1 // e_1..e_k, h_1..h_ℓ, λ
	obj := make([]float64, n)
	obj[k+l] = 1
	prob := &lp.Problem{NumVars: n, Objective: obj}
	row := make([]float64, n)
	for i := 0; i < k; i++ {
		row[i] = 1
	}
	prob.Constraints = append(prob.Constraints, lp.Constraint{Coeffs: row, Op: lp.LE, RHS: 1})
	for j, a := range q.Atoms {
		mu := math.Log(M[j]) / math.Log(p)
		r := make([]float64, n)
		r[k+j] = 1
		r[k+l] = 1
		prob.Constraints = append(prob.Constraints, lp.Constraint{Coeffs: r, Op: lp.GE, RHS: mu})
		for _, v := range a.DistinctVars() {
			r2 := make([]float64, n)
			r2[q.VarIndex(v)] = 1
			r2[k+j] = -1
			prob.Constraints = append(prob.Constraints, lp.Constraint{Coeffs: r2, Op: lp.GE, RHS: 0})
		}
	}
	s := lp.Solve(prob)
	if s.Status != lp.Optimal {
		panic(fmt.Sprintf("packing: skew share LP %v for %s", s.Status, q))
	}
	return Shares{Query: q, Exponents: s.X[:k], Lambda: s.X[k+l], P: p}
}

// Load evaluates the paper's formula (11),
//
//	L(u, M, p) = (Π_j M_j^{u_j} / p)^{1 / Σ_j u_j},
//
// the one-round load lower bound induced by the fractional edge packing u.
// By the paper's convention the all-zero packing yields 0.
func Load(u, M []float64, p float64) float64 {
	su := sum(u)
	if su <= 0 {
		return 0
	}
	logNum := 0.0
	for j, w := range u {
		if w > 0 {
			logNum += w * math.Log(M[j])
		}
	}
	return math.Exp((logNum - math.Log(p)) / su)
}

// LLower returns L_lower = max_u L(u, M, p) over the extreme points of the
// packing polytope, along with the maximizing packing (Section 3.2 and
// Theorem 3.15).
func LLower(q *query.Query, M []float64, p float64) (float64, []float64) {
	best := 0.0
	var bestU []float64
	for _, u := range Vertices(q) {
		if l := Load(u, M, p); l > best {
			best = l
			bestU = u
		}
	}
	if bestU == nil {
		bestU = make([]float64, q.NumAtoms())
	}
	return best, bestU
}

// SpeedupExponent returns 1/Σ_j u*_j for the load-maximizing packing u*:
// the HyperCube load decreases as p^{-1/Σ u*_j} (Section 3.4). For equal
// cardinalities this equals 1/τ*.
func SpeedupExponent(q *query.Query, M []float64, p float64) float64 {
	_, u := LLower(q, M, p)
	su := sum(u)
	if su == 0 {
		return 1 // degenerate: broadcast everything, linear speedup
	}
	return 1 / su
}
