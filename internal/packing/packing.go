// Package packing computes the fractional edge packings, vertex covers and
// share exponents at the heart of the paper's one-round bounds (Sections 2.2,
// 3.1 and 3.3):
//
//   - τ*(q), the fractional vertex covering number (= max fractional edge
//     packing by LP duality);
//   - ρ*(q), the fractional edge cover number;
//   - the extreme points pk(q) of the edge packing polytope;
//   - the share exponents of the HyperCube algorithm via LP (10), and the
//     skew-oblivious variant via LP (18).
package packing

import (
	"fmt"
	"math"
	"sort"

	"mpcquery/internal/lp"
	"mpcquery/internal/query"
)

// TauStar returns τ*(q) together with an optimal fractional edge packing u
// (one weight per atom): maximize Σ uj subject to, for every variable x,
// Σ_{j: x ∈ Sj} uj ≤ 1.
func TauStar(q *query.Query) (float64, []float64) {
	l := q.NumAtoms()
	obj := make([]float64, l)
	for j := range obj {
		obj[j] = 1
	}
	p := &lp.Problem{NumVars: l, Objective: obj, Maximize: true}
	addPackingConstraints(p, q)
	s := lp.Solve(p)
	if s.Status != lp.Optimal {
		panic(fmt.Sprintf("packing: edge packing LP %v for %s", s.Status, q))
	}
	return s.Value, s.X
}

func addPackingConstraints(p *lp.Problem, q *query.Query) {
	for _, v := range q.Vars() {
		row := make([]float64, q.NumAtoms())
		for _, j := range q.AtomsOf(v) {
			row[j] = 1
		}
		p.Constraints = append(p.Constraints, lp.Constraint{Coeffs: row, Op: lp.LE, RHS: 1})
	}
}

// VertexCover returns the fractional vertex covering number (equal to τ* by
// duality) with an optimal fractional vertex cover v (one weight per
// variable): minimize Σ vi subject to, for every atom Sj, Σ_{i ∈ Sj} vi ≥ 1.
func VertexCover(q *query.Query) (float64, []float64) {
	k := q.NumVars()
	obj := make([]float64, k)
	for i := range obj {
		obj[i] = 1
	}
	p := &lp.Problem{NumVars: k, Objective: obj}
	for _, a := range q.Atoms {
		row := make([]float64, k)
		for _, v := range a.DistinctVars() {
			row[q.VarIndex(v)] = 1
		}
		p.Constraints = append(p.Constraints, lp.Constraint{Coeffs: row, Op: lp.GE, RHS: 1})
	}
	s := lp.Solve(p)
	if s.Status != lp.Optimal {
		panic(fmt.Sprintf("packing: vertex cover LP %v for %s", s.Status, q))
	}
	return s.Value, s.X
}

// RhoStar returns the fractional edge cover number ρ*(q) with an optimal
// fractional edge cover: minimize Σ uj subject to, for every variable x,
// Σ_{j: x ∈ Sj} uj ≥ 1.
func RhoStar(q *query.Query) (float64, []float64) {
	l := q.NumAtoms()
	obj := make([]float64, l)
	for j := range obj {
		obj[j] = 1
	}
	p := &lp.Problem{NumVars: l, Objective: obj}
	for _, v := range q.Vars() {
		row := make([]float64, l)
		for _, j := range q.AtomsOf(v) {
			row[j] = 1
		}
		p.Constraints = append(p.Constraints, lp.Constraint{Coeffs: row, Op: lp.GE, RHS: 1})
	}
	s := lp.Solve(p)
	if s.Status != lp.Optimal {
		panic(fmt.Sprintf("packing: edge cover LP %v for %s", s.Status, q))
	}
	return s.Value, s.X
}

// IsPacking reports whether u is a feasible fractional edge packing of q
// (within tolerance tol).
func IsPacking(q *query.Query, u []float64, tol float64) bool {
	if len(u) != q.NumAtoms() {
		return false
	}
	for _, w := range u {
		if w < -tol {
			return false
		}
	}
	for _, v := range q.Vars() {
		sum := 0.0
		for _, j := range q.AtomsOf(v) {
			sum += u[j]
		}
		if sum > 1+tol {
			return false
		}
	}
	return true
}

// Saturates reports whether packing u saturates every variable in vars:
// Σ_{j: x ∈ Sj} uj ≥ 1 for each x in vars (Section 4.2.3).
func Saturates(q *query.Query, u []float64, vars []string, tol float64) bool {
	for _, v := range vars {
		sum := 0.0
		for _, j := range q.AtomsOf(v) {
			sum += u[j]
		}
		if sum < 1-tol {
			return false
		}
	}
	return true
}

// Vertices enumerates the extreme points pk(q) of the fractional edge
// packing polytope of q (Section 3.3). Each vertex is obtained by choosing
// ℓ of the k+ℓ defining inequalities to hold with equality and solving the
// square system; infeasible or duplicate solutions are discarded.
func Vertices(q *query.Query) [][]float64 {
	l := q.NumAtoms()
	// Build constraint rows: first k variable constraints (≤ 1), then ℓ
	// non-negativity constraints (uj ≥ 0, i.e. tight means uj = 0).
	type row struct {
		coeffs []float64
		rhs    float64
	}
	var rows []row
	for _, v := range q.Vars() {
		r := row{coeffs: make([]float64, l), rhs: 1}
		for _, j := range q.AtomsOf(v) {
			r.coeffs[j] = 1
		}
		rows = append(rows, r)
	}
	for j := 0; j < l; j++ {
		r := row{coeffs: make([]float64, l), rhs: 0}
		r.coeffs[j] = 1
		rows = append(rows, r)
	}

	seen := make(map[string]bool)
	var out [][]float64
	idx := make([]int, l)
	var rec func(start, d int)
	rec = func(start, d int) {
		if d == l {
			a := make([][]float64, l)
			b := make([]float64, l)
			for i, ri := range idx {
				a[i] = rows[ri].coeffs
				b[i] = rows[ri].rhs
			}
			u, ok := lp.SolveSquare(a, b)
			if !ok {
				return
			}
			if !IsPacking(q, u, 1e-7) {
				return
			}
			key := vertexKey(u)
			if !seen[key] {
				seen[key] = true
				out = append(out, clean(u))
			}
			return
		}
		for i := start; i < len(rows); i++ {
			idx[d] = i
			rec(i+1, d+1)
		}
	}
	rec(0, 0)
	sortVertices(out)
	return out
}

func vertexKey(u []float64) string {
	key := ""
	for _, w := range u {
		key += fmt.Sprintf("%.7f,", w+0) // +0 normalizes -0
	}
	return key
}

// clean snaps nearly-integral and tiny coordinates to exact values.
func clean(u []float64) []float64 {
	out := make([]float64, len(u))
	for i, w := range u {
		r := math.Round(w*2) / 2 // most packing vertices are half-integral
		if math.Abs(w-r) < 1e-7 {
			w = r
		}
		if w == 0 { // normalize -0
			w = 0
		}
		out[i] = w
	}
	return out
}

func sortVertices(vs [][]float64) {
	sort.Slice(vs, func(i, j int) bool {
		si, sj := sum(vs[i]), sum(vs[j])
		if math.Abs(si-sj) > 1e-9 {
			return si > sj
		}
		for t := range vs[i] {
			if math.Abs(vs[i][t]-vs[j][t]) > 1e-9 {
				return vs[i][t] > vs[j][t]
			}
		}
		return false
	})
}

func sum(u []float64) float64 {
	s := 0.0
	for _, w := range u {
		s += w
	}
	return s
}
