package packing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mpcquery/internal/query"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestTauStarTable2 checks τ* for the query families in Table 2:
// τ*(C_k) = k/2, τ*(T_k) = 1, τ*(L_k) = ⌈k/2⌉, τ*(B_{k,m}) = k/m.
func TestTauStarTable2(t *testing.T) {
	tests := []struct {
		q    *query.Query
		want float64
	}{
		{query.Cycle(3), 1.5},
		{query.Cycle(4), 2},
		{query.Cycle(5), 2.5},
		{query.Cycle(6), 3},
		{query.Star(2), 1},
		{query.Star(5), 1},
		{query.Chain(2), 1},
		{query.Chain(3), 2},
		{query.Chain(4), 2},
		{query.Chain(5), 3},
		{query.Binom(3, 2), 1.5}, // = C3
		{query.Binom(4, 2), 2},   // = K4: τ* = 4/2
		{query.Binom(4, 3), 4.0 / 3},
		{query.SpokedWheel(3), 3}, // τ*(SP_k) = k
	}
	for _, tt := range tests {
		got, u := TauStar(tt.q)
		if !approx(got, tt.want, 1e-6) {
			t.Errorf("τ*(%s)=%v want %v", tt.q.Name, got, tt.want)
		}
		if !IsPacking(tt.q, u, 1e-7) {
			t.Errorf("optimal u for %s is not a packing: %v", tt.q.Name, u)
		}
	}
}

// TestDuality checks max edge packing = min vertex cover (LP duality),
// on the Table 2 families and random queries.
func TestDuality(t *testing.T) {
	queries := []*query.Query{
		query.Cycle(3), query.Cycle(5), query.Star(4), query.Chain(6),
		query.K4(), query.SpokedWheel(2), query.Binom(5, 3),
	}
	for _, q := range queries {
		tp, _ := TauStar(q)
		vc, _ := VertexCover(q)
		if !approx(tp, vc, 1e-6) {
			t.Errorf("%s: packing %v != cover %v", q.Name, tp, vc)
		}
	}
}

// TestPackingVsCover checks the paper's Section 2.2 examples: for
// q = S1(x,y),S2(y,z): τ*=1, ρ*=2; for q = S1(x),S2(x,y),S3(y): τ*=2, ρ*=1.
func TestPackingVsCover(t *testing.T) {
	q1 := query.MustParse("S1(x,y), S2(y,z)")
	tau, _ := TauStar(q1)
	rho, _ := RhoStar(q1)
	if !approx(tau, 1, 1e-6) || !approx(rho, 2, 1e-6) {
		t.Errorf("L2: τ*=%v ρ*=%v want 1, 2", tau, rho)
	}
	q2 := query.MustParse("S1(x), S2(x,y), S3(y)")
	tau2, _ := TauStar(q2)
	rho2, _ := RhoStar(q2)
	if !approx(tau2, 2, 1e-6) || !approx(rho2, 1, 1e-6) {
		t.Errorf("unary-sandwich: τ*=%v ρ*=%v want 2, 1", tau2, rho2)
	}
}

// TestTriangleVertices checks Example 3.17: pk(C3) has exactly five
// vertices: (1/2,1/2,1/2), the three unit vectors, and zero.
func TestTriangleVertices(t *testing.T) {
	vs := Vertices(query.Triangle())
	if len(vs) != 5 {
		t.Fatalf("|pk(C3)|=%d want 5: %v", len(vs), vs)
	}
	want := [][]float64{
		{0.5, 0.5, 0.5},
		{1, 0, 0}, {0, 1, 0}, {0, 0, 1},
		{0, 0, 0},
	}
	for _, w := range want {
		found := false
		for _, v := range vs {
			if approx(v[0], w[0], 1e-7) && approx(v[1], w[1], 1e-7) && approx(v[2], w[2], 1e-7) {
				found = true
			}
		}
		if !found {
			t.Errorf("vertex %v missing from %v", w, vs)
		}
	}
}

func TestChainPackingExample(t *testing.T) {
	// Example 2.3: for L3, (1,0,1) is an optimal tight packing with τ*=2.
	q := query.Chain(3)
	if !IsPacking(q, []float64{1, 0, 1}, 1e-9) {
		t.Error("(1,0,1) should be a packing of L3")
	}
	if IsPacking(q, []float64{1, 0.5, 1}, 1e-9) {
		t.Error("(1,0.5,1) violates variable x1")
	}
	tau, _ := TauStar(q)
	if !approx(tau, 2, 1e-6) {
		t.Errorf("τ*(L3)=%v", tau)
	}
	vs := Vertices(q)
	found := false
	for _, v := range vs {
		if approx(v[0], 1, 1e-7) && approx(v[1], 0, 1e-7) && approx(v[2], 1, 1e-7) {
			found = true
		}
	}
	if !found {
		t.Errorf("(1,0,1) should be a vertex of pk(L3): %v", vs)
	}
}

// TestTriangleLoadTable checks the L(u,M,p) table of Example 3.17.
func TestTriangleLoadTable(t *testing.T) {
	M := []float64{1 << 20, 1 << 24, 1 << 24}
	p := 64.0
	if got := Load([]float64{0.5, 0.5, 0.5}, M, p); !approx(got, math.Cbrt(M[0]*M[1]*M[2])/math.Pow(p, 2.0/3), 1e-3) {
		t.Errorf("symmetric packing load=%v", got)
	}
	if got := Load([]float64{1, 0, 0}, M, p); !approx(got, M[0]/p, 1e-6) {
		t.Errorf("(1,0,0) load=%v want %v", got, M[0]/p)
	}
	if got := Load([]float64{0, 0, 0}, M, p); got != 0 {
		t.Errorf("zero packing load=%v want 0", got)
	}
}

// TestTriangleCrossover reproduces the crossover of Example 3.17: with
// M1 < M2 = M3 = M, for p ≤ M/M1 the best packing is a unit vector (linear
// speedup, load M/p); for p > M/M1 it is (1/2,1/2,1/2).
func TestTriangleCrossover(t *testing.T) {
	q := query.Triangle()
	M1, M := 1024.0, 1024.0*64
	stats := []float64{M1, M, M}
	pSmall := 16.0 // < M/M1 = 64
	load, u := LLower(q, stats, pSmall)
	if !approx(sum(u), 1, 1e-6) {
		t.Errorf("p=%v: expected unit-vector packing, got %v", pSmall, u)
	}
	if !approx(load, M/pSmall, 1e-6) {
		t.Errorf("p=%v: load=%v want %v", pSmall, load, M/pSmall)
	}
	pLarge := 4096.0 // > M/M1
	_, u2 := LLower(q, stats, pLarge)
	if !approx(sum(u2), 1.5, 1e-6) {
		t.Errorf("p=%v: expected symmetric packing, got %v", pLarge, u2)
	}
	// Speedup exponent degrades from 1 to 2/3 (Lemma 3.18(3)).
	if se := SpeedupExponent(q, stats, pSmall); !approx(se, 1, 1e-6) {
		t.Errorf("speedup exponent at small p = %v want 1", se)
	}
	if se := SpeedupExponent(q, stats, pLarge); !approx(se, 2.0/3, 1e-6) {
		t.Errorf("speedup exponent at large p = %v want 2/3", se)
	}
}

// TestShareExponentsEqualSizes checks the closed form of Section 3.1: with
// equal cardinalities, λ* = µ − 1/τ* and L_upper = M / p^{1/τ*}.
func TestShareExponentsEqualSizes(t *testing.T) {
	p := 64.0
	M := math.Pow(p, 3) // µ = 3
	for _, q := range []*query.Query{query.Triangle(), query.Chain(3), query.Star(3), query.Cycle(4), query.K4()} {
		stats := make([]float64, q.NumAtoms())
		for j := range stats {
			stats[j] = M
		}
		tau, _ := TauStar(q)
		sh := ShareExponents(q, stats, p)
		wantLambda := 3 - 1/tau
		if !approx(sh.Lambda, wantLambda, 1e-6) {
			t.Errorf("%s: λ=%v want %v", q.Name, sh.Lambda, wantLambda)
		}
		if !approx(sh.Load(), M/math.Pow(p, 1/tau), 1e-3) {
			t.Errorf("%s: L_upper=%v want %v", q.Name, sh.Load(), M/math.Pow(p, 1/tau))
		}
		// Share exponents must be e_i = v*_i / τ* for some optimal vertex
		// cover; check feasibility: Σe ≤ 1 and per-atom constraints hold.
		sumE := 0.0
		for _, e := range sh.Exponents {
			sumE += e
			if e < -1e-9 {
				t.Errorf("%s: negative exponent %v", q.Name, e)
			}
		}
		if sumE > 1+1e-6 {
			t.Errorf("%s: Σe=%v > 1", q.Name, sumE)
		}
	}
}

// TestLowerEqualsUpper checks Theorem 3.15 (L_lower = L_upper) on the Table 2
// families with assorted statistics.
func TestLowerEqualsUpper(t *testing.T) {
	p := 64.0
	queries := []*query.Query{
		query.Triangle(), query.Chain(4), query.Star(3), query.Cycle(5),
		query.K4(), query.SpokedWheel(2),
	}
	statsList := [][]float64{nil, nil} // filled per query below
	for _, q := range queries {
		l := q.NumAtoms()
		equal := make([]float64, l)
		skewed := make([]float64, l)
		for j := 0; j < l; j++ {
			equal[j] = 1 << 22
			skewed[j] = float64(int64(1) << (18 + 2*uint(j%4)))
		}
		statsList[0], statsList[1] = equal, skewed
		for _, M := range statsList {
			lower, _ := LLower(q, M, p)
			upper := ShareExponents(q, M, p).Load()
			if !approx(math.Log(lower), math.Log(upper), 1e-5) {
				t.Errorf("%s with M=%v: L_lower=%v != L_upper=%v", q.Name, M, lower, upper)
			}
		}
	}
}

// TestLowerEqualsUpperRandom is the property-test version of Theorem 3.15
// over random binary queries and random statistics (experiment E12).
func TestLowerEqualsUpperRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := randomConnectedQuery(r)
		p := math.Pow(2, float64(2+r.Intn(8)))
		M := make([]float64, q.NumAtoms())
		for j := range M {
			// Keep M_j ≥ p so that µ_j ≥ 1 as the paper assumes.
			M[j] = p * math.Pow(2, float64(r.Intn(16)))
		}
		lower, _ := LLower(q, M, p)
		upper := ShareExponents(q, M, p).Load()
		if math.Abs(math.Log(lower)-math.Log(upper)) > 1e-4 {
			t.Logf("%s p=%v M=%v: lower=%v upper=%v", q, p, M, lower, upper)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func randomConnectedQuery(r *rand.Rand) *query.Query {
	k := 2 + r.Intn(4)
	l := 1 + r.Intn(4)
	atoms := make([]query.Atom, 0, l)
	for j := 0; j < l; j++ {
		a := r.Intn(k)
		if j > 0 {
			a = r.Intn(minInt(k, j+1))
		}
		b := r.Intn(k)
		atoms = append(atoms, query.Atom{
			Name: "S" + string(rune('A'+j)),
			Vars: []string{vn(a), vn(b)},
		})
	}
	return query.New("rand", atoms...)
}

func vn(i int) string { return string(rune('a' + i)) }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestSkewShareExponents checks LP (18) on the simple join and the triangle:
// the skew-oblivious optimum hashes all variables equally, giving load
// M/p^{1/3} for both (shares p^{1/3} per variable).
func TestSkewShareExponents(t *testing.T) {
	p := 64.0
	M := math.Pow(p, 3)
	join := query.SimpleJoin()
	stats := []float64{M, M}
	sh := SkewShareExponents(join, stats, p)
	if !approx(sh.Lambda, 3-1.0/3, 1e-6) {
		t.Errorf("join: λ=%v want %v", sh.Lambda, 3-1.0/3)
	}
	tri := query.Triangle()
	sh2 := SkewShareExponents(tri, []float64{M, M, M}, p)
	if !approx(sh2.Lambda, 3-1.0/3, 1e-6) {
		t.Errorf("triangle: λ=%v want %v", sh2.Lambda, 3-1.0/3)
	}
	// Sanity: the skew-oblivious load can never beat the skew-free load.
	free := ShareExponents(tri, []float64{M, M, M}, p)
	if sh2.Lambda+1e-9 < free.Lambda {
		t.Errorf("skew λ=%v < skew-free λ=%v", sh2.Lambda, free.Lambda)
	}
}

// TestStarSharesConcentrate checks that for star queries the share LP puts
// everything on the shared variable z (Table 2 row T_k: shares 1,0,...,0).
func TestStarSharesConcentrate(t *testing.T) {
	q := query.Star(4)
	M := make([]float64, 4)
	for j := range M {
		M[j] = 1 << 24
	}
	sh := ShareExponents(q, M, 64)
	zi := q.VarIndex("z")
	if !approx(sh.Exponents[zi], 1, 1e-6) {
		t.Errorf("e_z=%v want 1 (exponents %v)", sh.Exponents[zi], sh.Exponents)
	}
	for i, e := range sh.Exponents {
		if i != zi && !approx(e, 0, 1e-6) {
			t.Errorf("e_%s=%v want 0", q.Vars()[i], e)
		}
	}
}

func TestSaturates(t *testing.T) {
	q := query.Star(2)
	// u = (1,1) saturates z (sum=2 ≥ 1) and both x's.
	if !Saturates(q, []float64{1, 1}, []string{"z"}, 1e-9) {
		t.Error("(1,1) should saturate z")
	}
	if Saturates(q, []float64{0.4, 0.4}, []string{"z"}, 1e-9) {
		t.Error("(0.4,0.4) should not saturate z")
	}
}

func TestVerticesCountsSmall(t *testing.T) {
	// pk of a single binary atom S(x,y): vertices {0} and {1}.
	q := query.MustParse("S(x,y)")
	vs := Vertices(q)
	if len(vs) != 2 {
		t.Fatalf("|pk(S)|=%d want 2: %v", len(vs), vs)
	}
}

// TestLemma318SmallRelations checks Lemma 3.18 items (1) and (2): relations
// smaller than M/p get weight 0 in the load-maximizing packing (the HC
// broadcasts them instead of sharing on them).
func TestLemma318SmallRelations(t *testing.T) {
	q := query.Triangle()
	p := 64.0
	M := 1 << 24
	// M1 far below M/p.
	stats := []float64{float64(M) / (4 * p), float64(M), float64(M)}
	_, u := LLower(q, stats, p)
	if u[0] > 1e-9 {
		t.Errorf("tiny relation got packing weight %v (Lemma 3.18(2))", u[0])
	}
	// Item (1): any relation with M_j < L gets weight 0.
	l, _ := LLower(q, stats, p)
	for j, mj := range stats {
		if mj < l && u[j] > 1e-9 {
			t.Errorf("relation %d with M=%v < L=%v has weight %v", j, mj, l, u[j])
		}
	}
}

// TestLemma318SpeedupMonotone checks item (3): as p grows, the speedup
// exponent never increases, eventually reaching 1/τ*.
func TestLemma318SpeedupMonotone(t *testing.T) {
	q := query.Triangle()
	stats := []float64{1 << 14, 1 << 24, 1 << 24}
	prev := math.Inf(1)
	for _, p := range []float64{2, 8, 32, 128, 512, 4096, 1 << 20} {
		se := SpeedupExponent(q, stats, p)
		if se > prev+1e-9 {
			t.Errorf("speedup exponent increased at p=%v: %v -> %v", p, prev, se)
		}
		prev = se
	}
	tau, _ := TauStar(q)
	if math.Abs(prev-1/tau) > 1e-9 {
		t.Errorf("limit exponent %v want 1/τ* = %v", prev, 1/tau)
	}
}

// TestLoadMonotoneInP: L_lower decreases in p for fixed statistics.
func TestLoadMonotoneInP(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		q := randomConnectedQuery(rng)
		M := make([]float64, q.NumAtoms())
		for j := range M {
			M[j] = math.Pow(2, float64(14+rng.Intn(10)))
		}
		prev := math.Inf(1)
		for _, p := range []float64{4, 16, 64, 256} {
			l, _ := LLower(q, M, p)
			if l > prev+1e-6 {
				t.Fatalf("%s: L_lower increased with p: %v -> %v", q, prev, l)
			}
			prev = l
		}
	}
}
