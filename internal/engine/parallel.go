package engine

import (
	"runtime"
	"sync"
)

// ParallelFor runs f(i) for i in [0,n) on up to GOMAXPROCS goroutines and
// waits for completion. It is the computation-phase helper for work outside
// a communication round (e.g. final local joins). Panics in f propagate to
// the caller.
func ParallelFor(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked any
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Recover per item so a panicking iteration does not stop this
			// worker from draining the channel (which would deadlock the
			// sender).
			for i := range next {
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicOnce.Do(func() { panicked = r })
						}
					}()
					f(i)
				}()
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
