package engine

import (
	"runtime"
	"sync"
)

// ParallelFor runs f(i) for i in [0,n) on up to GOMAXPROCS goroutines and
// waits for completion. It is the computation-phase helper for work outside
// a communication round (e.g. final local joins). Panics in f propagate to
// the caller.
func ParallelFor(n int, f func(i int)) {
	ParallelForWorkers(n, func(i, _ int) { f(i) })
}

// ParallelForWorkers is ParallelFor with the executing worker's id passed
// alongside each item: f(i, w) runs with 0 ≤ w < min(GOMAXPROCS, n), and
// items handled by the same w run sequentially on one goroutine. The worker
// id is the hook for per-worker reusable state — a computation phase keeps
// one localjoin.Scratch per worker and reuses its arenas across all the
// servers that worker evaluates, the same way the engine reuses inbox
// arenas across rounds. Panics in f propagate to the caller.
func ParallelForWorkers(n int, f func(i, worker int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i, 0)
		}
		return
	}
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked any
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Recover per item so a panicking iteration does not stop this
			// worker from draining the channel (which would deadlock the
			// sender).
			for i := range next {
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicOnce.Do(func() { panicked = r })
						}
					}()
					f(i, w)
				}()
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	if panicked != nil {
		//lint:allow panicdiscipline re-panic of the captured worker panic, already classified at its original site
		panic(panicked)
	}
}
