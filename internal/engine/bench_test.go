package engine

import "testing"

// benchRound runs one steady-state communication round on a pre-seeded
// cluster: 64 servers each forwarding their ~1000 binary tuples. The
// cluster is created and seeded once, so the benchmark measures the
// per-round cost of the batched path — emission buffers and inbox arenas
// are reused across iterations.
const benchP, benchPerServer = 64, 1000

func newBenchCluster() *Cluster {
	c := NewCluster(benchP, 20)
	for s := 0; s < benchP; s++ {
		for t := 0; t < benchPerServer; t++ {
			c.Seed(s, 0, []int64{int64(t), int64(s)})
		}
	}
	return c
}

// BenchmarkRound measures the batched columnar round: per-(sender→dest)
// flat buffers, destination-sharded parallel delivery, arena reuse.
// Compare allocs/op against BenchmarkRoundPerTupleBaseline — the acceptance
// bar for the batched engine is ≥ 2× fewer allocations per round.
func BenchmarkRound(b *testing.B) {
	c := newBenchCluster()
	route := func(s int, inbox *Inbox, emit *Emitter) {
		inbox.Each(func(kind int, tuple []int64) {
			emit.EmitTuple(int(tuple[0])%benchP, kind, tuple)
		})
	}
	c.Round("warmup", route)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Round("bench", route)
	}
	b.ReportMetric(float64(benchP*benchPerServer), "msgs/round")
}

// BenchmarkRoundEmitBatch is BenchmarkRound using the bulk EmitBatch path:
// each server forwards its inbox batches wholesale to one destination.
func BenchmarkRoundEmitBatch(b *testing.B) {
	c := newBenchCluster()
	route := func(s int, inbox *Inbox, emit *Emitter) {
		inbox.EachBatch(func(bt Batch) {
			emit.EmitBatch((s+1)%benchP, bt.Kind, bt.Arity, bt.Vals)
		})
	}
	c.Round("warmup", route)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Round("bench", route)
	}
	b.ReportMetric(float64(benchP*benchPerServer), "msgs/round")
}

// ---- per-tuple baseline ----------------------------------------------------

// The baseline reproduces the engine's original per-tuple design — a heap
// Message per routed tuple, per-sender []routed buffers, a single-threaded
// delivery loop, and fresh inbox slices every round — so the batched
// engine's allocation and throughput win stays measurable in one tree.

type baselineMessage struct {
	Kind  int
	Tuple []int64
}

type baselineRouted struct {
	dest int
	m    baselineMessage
}

type baselineCluster struct {
	p            int
	bitsPerValue int
	inbox        [][]baselineMessage
}

func (c *baselineCluster) round(f func(s int, inbox []baselineMessage, emit func(dest int, m baselineMessage))) {
	out := make([][]baselineRouted, c.p)
	ParallelFor(c.p, func(s int) {
		var buf []baselineRouted
		f(s, c.inbox[s], func(dest int, m baselineMessage) {
			buf = append(buf, baselineRouted{dest: dest, m: m})
		})
		out[s] = buf
	})
	next := make([][]baselineMessage, c.p)
	recvBits := make([]float64, c.p)
	for s := 0; s < c.p; s++ {
		for _, r := range out[s] {
			next[r.dest] = append(next[r.dest], r.m)
			recvBits[r.dest] += float64(len(r.m.Tuple) * c.bitsPerValue)
		}
	}
	c.inbox = next
}

// BenchmarkRoundPerTupleBaseline is the allocation baseline: the same
// 64×1000 forwarding round through the original per-tuple Message path.
func BenchmarkRoundPerTupleBaseline(b *testing.B) {
	c := &baselineCluster{p: benchP, bitsPerValue: 20, inbox: make([][]baselineMessage, benchP)}
	for s := 0; s < benchP; s++ {
		for t := 0; t < benchPerServer; t++ {
			c.inbox[s] = append(c.inbox[s], baselineMessage{Kind: 0, Tuple: []int64{int64(t), int64(s)}})
		}
	}
	route := func(s int, inbox []baselineMessage, emit func(dest int, m baselineMessage)) {
		for _, m := range inbox {
			emit(int(m.Tuple[0])%benchP, m)
		}
	}
	c.round(route)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.round(route)
	}
	b.ReportMetric(float64(benchP*benchPerServer), "msgs/round")
}

func BenchmarkParallelFor(b *testing.B) {
	sink := make([]int, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ParallelFor(256, func(j int) { sink[j] = j * j })
	}
}
