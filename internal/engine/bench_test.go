package engine

import "testing"

// BenchmarkRoundThroughput measures raw message routing: 64 servers each
// forwarding 1000 binary tuples per round.
func BenchmarkRoundThroughput(b *testing.B) {
	const p, perServer = 64, 1000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := NewCluster(p, 20)
		for s := 0; s < p; s++ {
			for t := 0; t < perServer; t++ {
				c.Seed(s, Message{Kind: 0, Tuple: []int64{int64(t), int64(s)}})
			}
		}
		b.StartTimer()
		c.Round("bench", func(s int, inbox []Message, emit Emitter) {
			for _, m := range inbox {
				emit(int(m.Tuple[0])%p, m)
			}
		})
	}
	b.ReportMetric(float64(p*perServer), "msgs/round")
}

func BenchmarkParallelFor(b *testing.B) {
	sink := make([]int, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ParallelFor(256, func(j int) { sink[j] = j * j })
	}
}
