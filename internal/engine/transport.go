package engine

import (
	"context"
	"fmt"
	"time"

	"mpcquery/internal/obs"
)

// This file is the engine's delivery seam: everything a transport needs to
// move one round of emissions into the next round's inboxes, without seeing
// any other engine internals. The engine stays the authority on *charging*
// (RoundStats, loads, TotalBits are computed from what lands in the
// inboxes); a Transport is the authority on *moving* (and may additionally
// meter real wire bytes, as internal/transport's TCP session does).
//
// The default path — no transport attached — is DeliverLocal, today's
// sharded zero-copy in-memory delivery, unchanged.

// Transport provisions per-cluster delivery links. Implementations live in
// internal/transport; the engine only defines the seam. Attach is called
// once per NewClusterNet, in cluster-creation order — a distributed
// transport uses that order to agree on cluster identities across
// processes, so strategies must create clusters deterministically (they do:
// all control flow is seeded).
type Transport interface {
	// Attach creates the delivery link for a new cluster of p servers
	// exchanging bitsPerValue-bit values. The returned Link is used by
	// exactly one cluster, from one goroutine at a time.
	Attach(p, bitsPerValue int) (Link, error)
}

// Link delivers the rounds of one cluster.
type Link interface {
	// Deliver moves one round of emissions into io.Inboxes and fills the
	// per-destination receive accounting. The engine has already reset the
	// inboxes; Deliver must produce exactly the delivery order documented
	// on Cluster.Round (per destination: senders ascending, each sender's
	// broadcasts after its unicasts), or fingerprints diverge between
	// transports. A non-nil error aborts the run (the engine panics with
	// it; the public API maps it to a typed error).
	Deliver(io *DeliveryRound) error
	// Close releases the link. Called once, by Cluster.Release.
	Close() error
}

// DeliveryRound is one round's worth of pending communication: every
// server's emitter on the sending side, every server's (already reset)
// inbox on the receiving side, and the accounting slots the delivery must
// fill. RecvBits is charged at BitsPerValue per value landed, the model's
// cost; a transport's wire bytes are its own, separate, measurement.
type DeliveryRound struct {
	Round        int // 0-based index of this round within the cluster
	P            int
	BitsPerValue int
	Senders      []*Emitter
	Inboxes      []*Inbox
	RecvBits     []float64
	RecvTuples   []int

	// PerDestSeconds, when non-nil (a traced round), asks the delivery to
	// record each destination's assembly wall time. DeliverLocal fills it;
	// a network link may leave it zeroed (its delivery time is dominated by
	// the wire, which the transport meters separately).
	PerDestSeconds []float64

	// Ctx, when non-nil, bounds the delivery: a network transport must
	// honor its cancellation/deadline while waiting on remote frames, so a
	// wedged round cannot outlive its request. DeliverLocal ignores it
	// (local delivery never blocks on a peer).
	Ctx context.Context

	// Trace, when non-nil, receives the transport's instant events
	// (injected faults, replays). Telemetry only — never fingerprinted.
	Trace *obs.Trace
}

// DeliverLocal is the in-process delivery kernel: sharded by destination,
// each destination collects its batches from every sender in sender order
// into a recycled arena and accounts its own received bits — no
// cross-goroutine writes, no copies beyond the arena append. This is both
// the default (nil-transport) path and the reference semantics every other
// Transport must reproduce.
func DeliverLocal(io *DeliveryRound) {
	ParallelFor(io.P, func(d int) {
		var t0 time.Time
		if io.PerDestSeconds != nil {
			//lint:allow nondeterminism per-destination delivery spans are trace telemetry, excluded from Report.Fingerprint
			t0 = time.Now()
		}
		ib := io.Inboxes[d]
		bits, tuples := 0.0, 0
		for s := 0; s < io.P; s++ {
			em := io.Senders[s]
			if em.perDest != nil {
				for _, b := range em.perDest[d].batches {
					ib.appendBlock(b.kind, b.arity, b.vals)
					tuples += len(b.vals) / b.arity
					bits += float64(len(b.vals) * io.BitsPerValue)
				}
			}
			for _, b := range em.bcast.batches {
				ib.appendBlock(b.kind, b.arity, b.vals)
				tuples += len(b.vals) / b.arity
				bits += float64(len(b.vals) * io.BitsPerValue)
			}
		}
		io.RecvBits[d] = bits
		io.RecvTuples[d] = tuples
		if io.PerDestSeconds != nil {
			//lint:allow nondeterminism per-destination delivery spans are trace telemetry, excluded from Report.Fingerprint
			io.PerDestSeconds[d] = time.Since(t0).Seconds()
		}
	})
}

// EachPending visits the emitter's pending batches in emission order:
// unicast destinations in first-touch order (each destination's batches in
// emission order), then broadcasts (dest == Broadcast). A transport
// serializes exactly this sequence; combined with sender-ascending
// iteration it reproduces DeliverLocal's delivery order.
func (e *Emitter) EachPending(f func(dest, kind, arity int, vals []int64)) {
	for _, d := range e.touched {
		for _, b := range e.perDest[d].batches {
			f(d, b.kind, b.arity, b.vals)
		}
	}
	for _, b := range e.bcast.batches {
		f(Broadcast, b.kind, b.arity, b.vals)
	}
}

// Append appends one columnar block of len(vals)/arity tuples to the inbox
// — the transport-facing twin of local delivery's arena append, with the
// same consecutive same-kind span coalescing. vals is copied.
func (ib *Inbox) Append(kind, arity int, vals []int64) {
	if arity < 1 {
		panic("engine: inbox append arity must be positive")
	}
	if len(vals)%arity != 0 {
		panic(fmt.Sprintf("engine: inbox append of %d values is not a multiple of arity %d", len(vals), arity))
	}
	if len(vals) == 0 {
		return
	}
	ib.appendBlock(kind, arity, vals)
}

// NewClusterNet creates a cluster whose round delivery goes through the
// given transport. A nil transport yields a plain in-process cluster —
// every call site can thread its transport unconditionally. Attach errors
// panic (cluster construction sits deep inside strategies, which already
// use panics for internal errors; the public API's recover boundary maps
// them to typed errors).
func NewClusterNet(t Transport, p, bitsPerValue int) *Cluster {
	c := NewCluster(p, bitsPerValue)
	if t != nil {
		link, err := t.Attach(p, bitsPerValue)
		if err != nil {
			c.Release()
			panic(fmt.Errorf("engine: transport attach failed: %w", err))
		}
		c.link = link
	}
	return c
}
