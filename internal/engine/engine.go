// Package engine implements the Massively Parallel Communication (MPC)
// substrate of Section 2.1: p servers connected by a complete network of
// private channels, computing in synchronized rounds that alternate a
// communication phase (all-to-all tuple exchange) and a computation phase
// (arbitrary local work).
//
// The engine meters exactly the quantities the model is parameterized by:
// the number of rounds r, and the maximum load L — the number of bits any
// server *receives* in a round. The initial partitioned input (each server
// holds M/p bits) is free, as in the paper; every subsequent delivery is
// charged at Arity·⌈log₂ n⌉ bits per tuple.
//
// Servers run as goroutines during the computation phase (bounded by
// GOMAXPROCS); message delivery is deterministic given the algorithm's
// emissions, so seeded runs are reproducible.
package engine

import (
	"fmt"
	"runtime"
	"sync"
)

// Broadcast is the destination pseudo-id that delivers a message to every
// server. Each of the p copies is charged to its receiver, as the model
// requires.
const Broadcast = -1

// Message is one unit of communication: a tuple of domain values tagged
// with a small integer kind (typically the index of the relation or
// subquery it belongs to). In the tuple-based MPC model of Section 5.2,
// messages after round 1 are exactly join tuples of this form.
type Message struct {
	Kind  int
	Tuple []int64
}

// RoundStats records the communication metrics of one round.
type RoundStats struct {
	Name            string
	MaxRecvBits     float64
	TotalRecvBits   float64
	MaxRecvTuples   int
	TotalRecvTuples int
	// Aborted is set when a load cap was configured (SetLoadCap) and some
	// server received more than the cap this round — the paper's abort
	// semantics (Section 2.1): randomized algorithms declare a load L and
	// abort when it is exceeded, which happens with exponentially small
	// probability for the HyperCube analyses.
	Aborted bool
}

// Cluster simulates p MPC servers. A Cluster is not safe for concurrent use
// by multiple goroutines; the parallelism lives inside Round.
type Cluster struct {
	p            int
	bitsPerValue int
	inbox        [][]Message // current contents of each server's inbox
	rounds       []RoundStats
	workers      int
	loadCap      float64 // 0 = unlimited; otherwise rounds flag Aborted
}

// NewCluster creates a cluster of p servers exchanging values of
// bitsPerValue bits each (⌈log₂ n⌉ for domain [n]).
func NewCluster(p, bitsPerValue int) *Cluster {
	if p < 1 {
		panic("engine: need at least one server")
	}
	if bitsPerValue < 1 {
		panic("engine: bitsPerValue must be positive")
	}
	return &Cluster{
		p:            p,
		bitsPerValue: bitsPerValue,
		inbox:        make([][]Message, p),
		workers:      runtime.GOMAXPROCS(0),
	}
}

// P returns the number of servers.
func (c *Cluster) P() int { return c.p }

// BitsPerValue returns the configured per-value bit width.
func (c *Cluster) BitsPerValue() int { return c.bitsPerValue }

// Seed places initial input messages directly into a server's inbox without
// charging communication — the partitioned-input assumption of Section 2.1.
func (c *Cluster) Seed(server int, msgs ...Message) {
	c.inbox[server] = append(c.inbox[server], msgs...)
}

// Inbox returns the messages currently held by a server (the deliveries of
// the most recent round, or the seeded input before the first round).
func (c *Cluster) Inbox(server int) []Message { return c.inbox[server] }

// Emitter delivers outgoing messages for one server during a round.
type Emitter func(dest int, m Message)

// Round executes one MPC round: every server runs f concurrently over its
// current inbox, emitting messages; the engine then delivers all emissions,
// replacing each inbox with what the server received, and records load
// statistics. Delivery order is deterministic: messages arrive grouped by
// sending server id, in emission order.
func (c *Cluster) Round(name string, f func(server int, inbox []Message, emit Emitter)) RoundStats {
	out := make([][]routed, c.p) // per-sender buffers
	var wg sync.WaitGroup
	sem := make(chan struct{}, c.workers)
	var panicOnce sync.Once
	var panicked any
	for s := 0; s < c.p; s++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(s int) {
			defer wg.Done()
			defer func() { <-sem }()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			var buf []routed
			f(s, c.inbox[s], func(dest int, m Message) {
				if dest != Broadcast && (dest < 0 || dest >= c.p) {
					panic(fmt.Sprintf("engine: destination %d out of range [0,%d)", dest, c.p))
				}
				buf = append(buf, routed{dest: dest, m: m})
			})
			out[s] = buf
		}(s)
	}
	wg.Wait()
	if panicked != nil {
		// Re-raise server panics on the caller's goroutine so tests and
		// callers see them as ordinary panics.
		panic(panicked)
	}

	next := make([][]Message, c.p)
	recvBits := make([]float64, c.p)
	recvTuples := make([]int, c.p)
	deliver := func(dest int, m Message) {
		next[dest] = append(next[dest], m)
		recvBits[dest] += float64(len(m.Tuple) * c.bitsPerValue)
		recvTuples[dest]++
	}
	for s := 0; s < c.p; s++ {
		for _, r := range out[s] {
			if r.dest == Broadcast {
				for d := 0; d < c.p; d++ {
					deliver(d, r.m)
				}
			} else {
				deliver(r.dest, r.m)
			}
		}
	}
	c.inbox = next

	st := RoundStats{Name: name}
	for s := 0; s < c.p; s++ {
		if recvBits[s] > st.MaxRecvBits {
			st.MaxRecvBits = recvBits[s]
		}
		if recvTuples[s] > st.MaxRecvTuples {
			st.MaxRecvTuples = recvTuples[s]
		}
		st.TotalRecvBits += recvBits[s]
		st.TotalRecvTuples += recvTuples[s]
	}
	if c.loadCap > 0 && st.MaxRecvBits > c.loadCap {
		st.Aborted = true
	}
	c.rounds = append(c.rounds, st)
	return st
}

// SetLoadCap declares the maximum load L: any subsequent round in which a
// server receives more than capBits is flagged Aborted (the run's results
// are still available; callers decide whether to retry with a fresh seed).
// A cap of 0 removes the limit.
func (c *Cluster) SetLoadCap(capBits float64) { c.loadCap = capBits }

// Aborted reports whether any executed round exceeded the declared load cap.
func (c *Cluster) Aborted() bool {
	for _, r := range c.rounds {
		if r.Aborted {
			return true
		}
	}
	return false
}

type routed struct {
	dest int
	m    Message
}

// Rounds returns the statistics of all executed rounds in order.
func (c *Cluster) Rounds() []RoundStats { return c.rounds }

// NumRounds returns r, the number of communication rounds executed.
func (c *Cluster) NumRounds() int { return len(c.rounds) }

// MaxLoadBits returns L, the maximum number of bits received by any server
// in any round — the paper's load parameter.
func (c *Cluster) MaxLoadBits() float64 {
	best := 0.0
	for _, r := range c.rounds {
		if r.MaxRecvBits > best {
			best = r.MaxRecvBits
		}
	}
	return best
}

// MaxLoadTuples is MaxLoadBits measured in tuples.
func (c *Cluster) MaxLoadTuples() int {
	best := 0
	for _, r := range c.rounds {
		if r.MaxRecvTuples > best {
			best = r.MaxRecvTuples
		}
	}
	return best
}

// TotalBits returns the total communication Σ_s Σ_r (bits received).
func (c *Cluster) TotalBits() float64 {
	total := 0.0
	for _, r := range c.rounds {
		total += r.TotalRecvBits
	}
	return total
}

// ReplicationRate returns r = (Σ_s Σ_rounds L_s) / inputBits, the average
// number of times each input bit is communicated (Section 3.4).
func (c *Cluster) ReplicationRate(inputBits float64) float64 {
	if inputBits <= 0 {
		return 0
	}
	return c.TotalBits() / inputBits
}

// Gather collects every server's current inbox into one slice, in server
// order — used to assemble the final query output, which the model requires
// to be present in the union of the servers.
func (c *Cluster) Gather() []Message {
	var all []Message
	for s := 0; s < c.p; s++ {
		all = append(all, c.inbox[s]...)
	}
	return all
}
