// Package engine implements the Massively Parallel Communication (MPC)
// substrate of Section 2.1: p servers connected by a complete network of
// private channels, computing in synchronized rounds that alternate a
// communication phase (all-to-all tuple exchange) and a computation phase
// (arbitrary local work).
//
// The engine meters exactly the quantities the model is parameterized by:
// the number of rounds r, and the maximum load L — the number of bits any
// server *receives* in a round. The initial partitioned input (each server
// holds M/p bits) is free, as in the paper; every subsequent delivery is
// charged at Arity·⌈log₂ n⌉ bits per tuple, and a broadcast is charged to
// every one of its p receivers.
//
// Communication is batched and columnar: a server's emissions are grouped
// into per-(sender → destination) flat []int64 buffers partitioned by
// message kind, delivery is sharded by destination across GOMAXPROCS
// goroutines, and each server's inbox arena is reused across rounds — no
// per-tuple allocation happens on the steady-state path. Delivery order is
// deterministic given the algorithm's emissions, so seeded runs are
// reproducible: each destination receives batches grouped by sending server
// id, and within one sender in emission order (with a sender's broadcasts
// following its unicasts to that destination).
package engine

import (
	"context"
	"fmt"
	"sync"
	"time"

	"mpcquery/internal/obs"
)

// Broadcast is the destination pseudo-id that delivers a batch to every
// server. Each of the p copies is charged to its receiver, as the model
// requires.
const Broadcast = -1

// Batch is a read-only view of one columnar group of same-kind tuples: the
// values of NumTuples() tuples of the given arity, stored row-major in one
// flat slice. The kind is a small integer tag, typically the index of the
// relation or subquery the tuples belong to.
type Batch struct {
	Kind  int
	Arity int
	Vals  []int64
}

// NumTuples returns the number of tuples in the batch.
func (b Batch) NumTuples() int {
	if b.Arity == 0 {
		return 0
	}
	return len(b.Vals) / b.Arity
}

// Tuple returns a view of tuple i. The view aliases the batch's values: it
// is valid only until the owning inbox is recycled (the second next Round).
func (b Batch) Tuple(i int) []int64 {
	return b.Vals[i*b.Arity : (i+1)*b.Arity : (i+1)*b.Arity]
}

// span is one kind-homogeneous run of tuples inside an inbox arena.
type span struct {
	kind  int
	arity int
	start int // arena offset of the first value
	end   int // arena offset past the last value

	// Streaming tags, meaningful only while an inbox is accumulating
	// pipelined chunks (see stream.go): the sending server, its per-round
	// flush sequence number, and the class (0 = unicast, 1 = broadcast).
	// finalizeStream sorts on (sender, cls, seq) to reproduce the barrier
	// delivery order; barrier-path spans leave the tags zero.
	sender int32
	seq    int32
	cls    int8
}

// Inbox holds what one server received in the most recent round (or its
// seeded input before the first round): an ordered sequence of columnar
// batches backed by a single flat arena that the engine reuses across
// rounds. Tuple views handed out by Each/Tuple/Batch alias the arena and
// are invalidated when the arena is recycled, two Rounds later; copy values
// that must outlive a round.
type Inbox struct {
	arena  []int64
	spans  []span
	tuples int
	prefix []int // lazy cumulative tuple counts per span, for Tuple(i)

	// streamed marks an inbox holding unsorted pipelined chunks; cleared
	// when finalizeStream restores the barrier delivery order.
	streamed bool
}

// NumTuples returns the total number of tuples in the inbox.
func (ib *Inbox) NumTuples() int { return ib.tuples }

// NumBatches returns the number of columnar batches.
func (ib *Inbox) NumBatches() int { return len(ib.spans) }

// Batch returns a view of batch i, in delivery order.
func (ib *Inbox) Batch(i int) Batch {
	sp := ib.spans[i]
	return Batch{Kind: sp.kind, Arity: sp.arity, Vals: ib.arena[sp.start:sp.end:sp.end]}
}

// Each calls f for every tuple in delivery order. The tuple slice aliases
// the inbox arena; see Inbox for its lifetime.
func (ib *Inbox) Each(f func(kind int, tuple []int64)) {
	for _, sp := range ib.spans {
		for off := sp.start; off < sp.end; off += sp.arity {
			f(sp.kind, ib.arena[off:off+sp.arity:off+sp.arity])
		}
	}
}

// EachBatch calls f for every batch in delivery order — the bulk
// counterpart of Each for algorithms that can process a whole kind-group at
// once.
func (ib *Inbox) EachBatch(f func(b Batch)) {
	for i := range ib.spans {
		f(ib.Batch(i))
	}
}

// Tuple returns tuple i (0 ≤ i < NumTuples()) and its kind, in delivery
// order — random access for sampling protocols.
func (ib *Inbox) Tuple(i int) (kind int, tuple []int64) {
	if ib.prefix == nil {
		ib.prefix = make([]int, len(ib.spans)+1)
		for j, sp := range ib.spans {
			ib.prefix[j+1] = ib.prefix[j] + (sp.end-sp.start)/sp.arity
		}
	}
	// Binary search for the span holding tuple i.
	lo, hi := 0, len(ib.spans)
	for lo < hi {
		mid := (lo + hi) / 2
		if ib.prefix[mid+1] <= i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	sp := ib.spans[lo]
	off := sp.start + (i-ib.prefix[lo])*sp.arity
	return sp.kind, ib.arena[off : off+sp.arity : off+sp.arity]
}

// reset empties the inbox, keeping the arena's capacity for reuse.
func (ib *Inbox) reset() {
	ib.arena = ib.arena[:0]
	ib.spans = ib.spans[:0]
	ib.tuples = 0
	ib.prefix = nil
	ib.streamed = false
}

// appendBlock appends count tuples of one kind, coalescing with the
// previous span when kinds and arities match.
func (ib *Inbox) appendBlock(kind, arity int, vals []int64) {
	start := len(ib.arena)
	ib.arena = append(ib.arena, vals...)
	if n := len(ib.spans); n > 0 && ib.spans[n-1].kind == kind && ib.spans[n-1].arity == arity {
		ib.spans[n-1].end = len(ib.arena)
	} else {
		ib.spans = append(ib.spans, span{kind: kind, arity: arity, start: start, end: len(ib.arena)})
	}
	ib.tuples += len(vals) / arity
	ib.prefix = nil
}

// RoundStats records the communication metrics of one round.
type RoundStats struct {
	Name            string
	MaxRecvBits     float64
	TotalRecvBits   float64
	MaxRecvTuples   int
	TotalRecvTuples int
	// Aborted is set when a load cap was configured (SetLoadCap) and some
	// server received more than the cap this round — the paper's abort
	// semantics (Section 2.1): randomized algorithms declare a load L and
	// abort when it is exceeded, which happens with exponentially small
	// probability for the HyperCube analyses.
	Aborted bool
}

// outBatch is one pending same-kind batch from a sender to one destination.
type outBatch struct {
	kind  int
	arity int
	vals  []int64
}

// sendBuf accumulates a sender's pending batches for one destination (or
// its broadcasts). Resetting keeps every vals backing array for reuse.
type sendBuf struct {
	batches []outBatch
}

func (sb *sendBuf) reset() {
	sb.batches = sb.batches[:0]
}

// open returns the batch to append to for (kind, arity): the last one when
// it matches, otherwise a fresh (possibly recycled) batch.
func (sb *sendBuf) open(kind, arity int) *outBatch {
	if n := len(sb.batches); n > 0 {
		if last := &sb.batches[n-1]; last.kind == kind && last.arity == arity {
			return last
		}
	}
	return sb.openNew(kind, arity)
}

// openNew always starts a fresh (possibly recycled) batch slot — the
// staged streaming path uses it to close a chunk-full batch.
func (sb *sendBuf) openNew(kind, arity int) *outBatch {
	n := len(sb.batches)
	if n < cap(sb.batches) {
		// Recycle the slot (and its vals capacity) from an earlier round.
		sb.batches = sb.batches[:n+1]
		b := &sb.batches[n]
		b.kind, b.arity = kind, arity
		b.vals = b.vals[:0]
		return b
	}
	sb.batches = append(sb.batches, outBatch{kind: kind, arity: arity})
	return &sb.batches[n]
}

// Emitter buffers one server's outgoing communication during a round. It is
// handed to the round function and must not be retained or used from other
// goroutines. Emitted values are copied immediately, so callers may reuse
// (or mutate) the tuple slices they pass in.
type Emitter struct {
	c       *Cluster
	self    int       // this emitter's server id (the chunk span's sender tag)
	perDest []sendBuf // lazily allocated, one per destination
	touched []int     // destinations with pending batches, in first-touch order
	bcast   sendBuf

	// Streaming state (see stream.go). chunkTuples caches the cluster's
	// chunk size for the round (0 = barrier); pipelined selects the
	// in-process chunked path, where full chunks flush into destination
	// spare inboxes mid-emission instead of accumulating in sendBufs.
	chunkTuples int
	pipelined   bool
	pchunks     []outBatch // pipelined: pending chunk per destination
	ptracked    []bool     // pipelined: pchunks[d] touched this round
	ptouched    []int      // pipelined: touched destinations, for O(touched) reset
	pbcast      outBatch   // pipelined: pending broadcast chunk
	seq         int32      // pipelined: per-round flush sequence number
	flushes     int        // chunks flushed (pipelined) or closed (staged) this round
	resident    int        // pipelined: values currently buffered
	residentHW  int        // pipelined: high-water of resident this round
}

func (e *Emitter) reset() {
	for _, d := range e.touched {
		e.perDest[d].reset()
	}
	e.touched = e.touched[:0]
	e.bcast.reset()
	e.chunkTuples = e.c.streamChunk
	e.pipelined = e.chunkTuples > 0 && e.c.link == nil
	e.seq = 0
	e.flushes = 0
	e.resident = 0
	e.residentHW = 0
	for _, d := range e.ptouched {
		e.pchunks[d].vals = e.pchunks[d].vals[:0]
		e.ptracked[d] = false
	}
	e.ptouched = e.ptouched[:0]
	e.pbcast.vals = e.pbcast.vals[:0]
}

func (e *Emitter) buf(dest int) *sendBuf {
	if dest == Broadcast {
		return &e.bcast
	}
	if dest < 0 || dest >= e.c.p {
		panic(fmt.Sprintf("engine: destination %d out of range [0,%d)", dest, e.c.p))
	}
	if e.perDest == nil {
		e.perDest = make([]sendBuf, e.c.p)
	}
	sb := &e.perDest[dest]
	if len(sb.batches) == 0 {
		e.touched = append(e.touched, dest)
	}
	return sb
}

// open returns the batch to append tuples of (kind, arity) to for dest. In
// staged streaming mode (chunked delivery over a transport link) a full
// batch is closed and a fresh one opened so EachPending yields
// chunk-granular frames; barrier mode coalesces unboundedly as before.
func (e *Emitter) open(dest, kind, arity int) *outBatch {
	sb := e.buf(dest)
	if e.chunkTuples > 0 {
		if n := len(sb.batches); n > 0 {
			if last := &sb.batches[n-1]; last.kind == kind && last.arity == arity {
				if len(last.vals) < e.chunkTuples*arity {
					return last
				}
				e.flushes++
			}
		}
		return sb.openNew(kind, arity)
	}
	return sb.open(kind, arity)
}

// EmitTuple sends one tuple of the given kind to dest (or Broadcast). This
// is the fast path for per-tuple routing decisions; the values are copied
// into the sender's batch buffer for dest.
func (e *Emitter) EmitTuple(dest, kind int, tuple []int64) {
	if len(tuple) == 0 {
		panic("engine: cannot emit an empty tuple")
	}
	if e.pipelined {
		e.emitStream(dest, kind, len(tuple), tuple)
		return
	}
	b := e.open(dest, kind, len(tuple))
	b.vals = append(b.vals, tuple...)
}

// EmitBatch sends a whole flat block of same-kind tuples (len(vals) must be
// a multiple of arity) to dest (or Broadcast) in one call — the bulk path
// for algorithms that route contiguous runs of tuples to one destination.
func (e *Emitter) EmitBatch(dest, kind, arity int, vals []int64) {
	if arity < 1 {
		panic("engine: batch arity must be positive")
	}
	if len(vals)%arity != 0 {
		panic(fmt.Sprintf("engine: batch of %d values is not a multiple of arity %d", len(vals), arity))
	}
	if len(vals) == 0 {
		return
	}
	if e.pipelined {
		e.emitStream(dest, kind, arity, vals)
		return
	}
	if e.chunkTuples > 0 {
		// Staged streaming: split the block across chunk-capped batches so
		// the concatenated value stream is unchanged but no single batch
		// exceeds the chunk size.
		capVals := e.chunkTuples * arity
		for len(vals) > 0 {
			b := e.open(dest, kind, arity)
			take := capVals - len(b.vals)
			if take > len(vals) {
				take = len(vals)
			}
			b.vals = append(b.vals, vals[:take]...)
			vals = vals[take:]
		}
		return
	}
	b := e.buf(dest).open(kind, arity)
	b.vals = append(b.vals, vals...)
}

// Cluster simulates p MPC servers. A Cluster is not safe for concurrent use
// by multiple goroutines; the parallelism lives inside Round.
type Cluster struct {
	p            int
	bitsPerValue int
	inbox        []*Inbox // current contents of each server's inbox
	spare        []*Inbox // previous round's inboxes, recycled as delivery targets
	emitters     []*Emitter
	recvBits     []float64
	recvTuples   []int
	rounds       []RoundStats
	loadCap      float64 // 0 = unlimited; otherwise rounds flag Aborted
	link         Link    // non-nil when delivery goes through a Transport

	// streamChunk > 0 enables chunked streaming rounds (SetStreamChunk):
	// pipelined mid-emission flushes when link is nil, chunk-capped staged
	// batches when delivery goes over a transport. destMu guards the spare
	// inboxes during concurrent pipelined flushes; mem, when set, receives
	// the per-round engine-buffer high-water (see stream.go).
	streamChunk int
	destMu      []sync.Mutex
	mem         *MemGauge

	// tr receives round/phase spans when the run carries a Trace (see
	// NewClusterEnv); nil — the default — disables tracing, and every
	// tracing branch below is gated on that nil check so the disabled
	// path costs a predicted branch and zero allocations.
	tr *obs.ClusterTrace

	// runCtx / runTrace are the Env's request context and run trace,
	// threaded into every DeliveryRound so a network transport can honor
	// cancellation and report injected faults. Both nil by default.
	runCtx   context.Context
	runTrace *obs.Trace

	// Wall-clock split of the simulation, not a model cost: time spent in
	// server computation (round functions and Compute phases) vs delivery
	// (the simulated communication). cmd/mpcload reports the split per
	// scenario so perf work knows which phase dominates.
	computeSeconds float64
	commSeconds    float64
}

// inboxPool recycles inbox arenas across clusters, so a service executing a
// stream of queries reuses the same backing memory instead of growing fresh
// arenas for every Run. Inboxes enter the pool only through
// Cluster.Release, already reset; their arena/span capacity is retained.
var inboxPool = sync.Pool{New: func() any { return &Inbox{} }}

// NewCluster creates a cluster of p servers exchanging values of
// bitsPerValue bits each (⌈log₂ n⌉ for domain [n]). Inbox arenas are drawn
// from a shared pool; call Release when the run's results have been copied
// out to hand them back.
func NewCluster(p, bitsPerValue int) *Cluster {
	if p < 1 {
		panic("engine: need at least one server")
	}
	if bitsPerValue < 1 {
		panic("engine: bitsPerValue must be positive")
	}
	c := &Cluster{
		p:            p,
		bitsPerValue: bitsPerValue,
		inbox:        make([]*Inbox, p),
		spare:        make([]*Inbox, p),
		emitters:     make([]*Emitter, p),
		recvBits:     make([]float64, p),
		recvTuples:   make([]int, p),
	}
	for s := 0; s < p; s++ {
		c.inbox[s] = inboxPool.Get().(*Inbox)
		c.spare[s] = inboxPool.Get().(*Inbox)
		c.emitters[s] = &Emitter{c: c, self: s}
	}
	obsClustersTotal.Inc()
	return c
}

// Release returns the cluster's inbox arenas to the shared pool for reuse by
// later clusters, and closes the cluster's transport link, if any. It must
// be the last use of the cluster: every Inbox, Batch, or tuple view
// previously obtained from it is invalidated (round statistics, being plain
// values, stay valid). Release is idempotent.
func (c *Cluster) Release() {
	if c.link != nil {
		_ = c.link.Close()
		c.link = nil
	}
	for s := 0; s < c.p; s++ {
		if c.inbox[s] != nil {
			c.inbox[s].reset()
			inboxPool.Put(c.inbox[s])
			c.inbox[s] = nil
		}
		if c.spare[s] != nil {
			c.spare[s].reset()
			inboxPool.Put(c.spare[s])
			c.spare[s] = nil
		}
	}
}

// P returns the number of servers.
func (c *Cluster) P() int { return c.p }

// BitsPerValue returns the configured per-value bit width.
func (c *Cluster) BitsPerValue() int { return c.bitsPerValue }

// Seed places one initial input tuple directly into a server's inbox
// without charging communication — the partitioned-input assumption of
// Section 2.1. Consecutive same-kind seeds coalesce into one batch.
func (c *Cluster) Seed(server, kind int, tuple []int64) {
	c.inbox[server].appendBlock(kind, len(tuple), tuple)
}

// SeedBatch seeds a whole flat block of same-kind tuples at once.
func (c *Cluster) SeedBatch(server, kind, arity int, vals []int64) {
	if len(vals) == 0 {
		return
	}
	c.inbox[server].appendBlock(kind, arity, vals)
}

// Inbox returns the batches currently held by a server (the deliveries of
// the most recent round, or the seeded input before the first round).
func (c *Cluster) Inbox(server int) *Inbox { return c.inbox[server] }

// Round executes one MPC round: every server runs f concurrently over its
// current inbox, emitting batches; the engine then delivers all emissions
// in parallel (sharded by destination), replacing each inbox with what the
// server received, and records load statistics. Delivery is deterministic:
// batches arrive grouped by sending server id, in emission order (a
// sender's broadcasts follow its unicasts to the same destination).
func (c *Cluster) Round(name string, f func(server int, inbox *Inbox, emit *Emitter)) RoundStats {
	// Computation + emission phase: every server concurrently on a small
	// worker set (ParallelFor), not a goroutine per server — skew-aware
	// layouts routinely span hundreds of servers, and per-server goroutine
	// spawning would dominate small rounds. ParallelFor re-raises server
	// panics on the caller's goroutine, so callers see them as ordinary
	// panics.
	//lint:allow nondeterminism phase wall-clock timing; PhaseSeconds is a simulation metric, excluded from Report.Fingerprint
	t0 := time.Now()
	for s := 0; s < c.p; s++ {
		c.emitters[s].reset()
	}
	pipelined := c.streamChunk > 0 && c.link == nil
	if pipelined {
		// Pipelined rounds retire the previous arenas up front: full chunks
		// flush into the spare inboxes concurrently with emission, under
		// per-destination locks, so the spares must be empty before the
		// first emitted value rather than at delivery time.
		if c.destMu == nil {
			c.destMu = make([]sync.Mutex, c.p)
		}
		for d := 0; d < c.p; d++ {
			c.spare[d].reset()
		}
	}
	// When tracing, each server's closure is individually timed so the
	// trace can show per-server emit spans (the skew the load L is about);
	// untraced, the closures run bare — same calls, no per-server clock
	// reads, no slice.
	var serverSecs []float64
	if c.tr != nil {
		serverSecs = make([]float64, c.p)
		ParallelFor(c.p, func(s int) {
			//lint:allow nondeterminism per-server emit spans are trace telemetry, excluded from Report.Fingerprint
			ts := time.Now()
			f(s, c.inbox[s], c.emitters[s])
			//lint:allow nondeterminism per-server emit spans are trace telemetry, excluded from Report.Fingerprint
			serverSecs[s] = time.Since(ts).Seconds()
		})
	} else {
		ParallelFor(c.p, func(s int) {
			f(s, c.inbox[s], c.emitters[s])
		})
	}
	//lint:allow nondeterminism phase wall-clock timing; PhaseSeconds is a simulation metric, excluded from Report.Fingerprint
	computeDur := time.Since(t0).Seconds()
	c.computeSeconds += computeDur

	// Delivery phase, through the transport seam: the default (no link) is
	// DeliverLocal — sharded by destination, each destination collecting its
	// batches from every sender in sender order into a recycled arena. A
	// linked cluster hands the round to its Transport instead, which must
	// reproduce the same delivery order (see Link.Deliver); a delivery error
	// aborts the run via panic, mapped to a typed error at the API boundary.
	//lint:allow nondeterminism phase wall-clock timing; PhaseSeconds is a simulation metric, excluded from Report.Fingerprint
	t1 := time.Now()
	var destSecs []float64
	if pipelined {
		// Most of the round's traffic already flushed during emission; what
		// remains is the leftover partial chunks, then each destination
		// finalizes: its tagged spans sort into exactly the barrier delivery
		// order and its receive accounting accumulates from the span
		// lengths (integral bit counts, so float accumulation is exact).
		ParallelFor(c.p, func(s int) { c.emitters[s].flushPending() })
		if c.tr != nil {
			destSecs = make([]float64, c.p)
		}
		ParallelFor(c.p, func(d int) {
			var td time.Time
			if destSecs != nil {
				//lint:allow nondeterminism per-destination finalize spans are trace telemetry, excluded from Report.Fingerprint
				td = time.Now()
			}
			bits, tuples := c.spare[d].finalizeStream(c.bitsPerValue)
			c.recvBits[d] = bits
			c.recvTuples[d] = tuples
			if destSecs != nil {
				//lint:allow nondeterminism per-destination finalize spans are trace telemetry, excluded from Report.Fingerprint
				destSecs[d] = time.Since(td).Seconds()
			}
		})
	} else {
		for d := 0; d < c.p; d++ {
			c.spare[d].reset()
		}
		io := &DeliveryRound{
			Round:        len(c.rounds),
			P:            c.p,
			BitsPerValue: c.bitsPerValue,
			Senders:      c.emitters,
			Inboxes:      c.spare,
			RecvBits:     c.recvBits,
			RecvTuples:   c.recvTuples,
			Ctx:          c.runCtx,
			Trace:        c.runTrace,
		}
		if c.tr != nil {
			io.PerDestSeconds = make([]float64, c.p)
		}
		if c.link != nil {
			if err := c.link.Deliver(io); err != nil {
				panic(fmt.Errorf("engine: round %q delivery failed: %w", name, err))
			}
		} else {
			DeliverLocal(io)
		}
		destSecs = io.PerDestSeconds
	}
	//lint:allow nondeterminism phase wall-clock timing; PhaseSeconds is a simulation metric, excluded from Report.Fingerprint
	commDur := time.Since(t1).Seconds()
	c.commSeconds += commDur
	c.inbox, c.spare = c.spare, c.inbox
	chunkFlushes := 0
	if c.streamChunk > 0 {
		for s := 0; s < c.p; s++ {
			chunkFlushes += c.emitters[s].flushes
		}
	}

	st := RoundStats{Name: name}
	for s := 0; s < c.p; s++ {
		if c.recvBits[s] > st.MaxRecvBits {
			st.MaxRecvBits = c.recvBits[s]
		}
		if c.recvTuples[s] > st.MaxRecvTuples {
			st.MaxRecvTuples = c.recvTuples[s]
		}
		st.TotalRecvBits += c.recvBits[s]
		st.TotalRecvTuples += c.recvTuples[s]
	}
	if c.loadCap > 0 && st.MaxRecvBits > c.loadCap {
		st.Aborted = true
	}
	c.rounds = append(c.rounds, st)
	c.observeBufferedMemory()

	obsRoundsTotal.Inc()
	obsRecvTuplesTotal.Add(int64(st.TotalRecvTuples))
	obsRecvBitsTotal.Add(st.TotalRecvBits)
	if chunkFlushes > 0 {
		obsChunkFlushesTotal.Add(int64(chunkFlushes))
	}
	if st.Aborted {
		obsRoundAborts.Inc()
	}
	if c.tr != nil {
		c.tr.ObserveRound(obs.RoundObservation{
			Name:                 name,
			ComputeStart:         t0,
			ComputeSeconds:       computeDur,
			DeliverStart:         t1,
			DeliverSeconds:       commDur,
			ServerComputeSeconds: serverSecs,
			DestDeliverSeconds:   destSecs,
			ChunkFlushes:         chunkFlushes,
			RecvBits:             c.recvBits,
			RecvTuples:           c.recvTuples,
			MaxRecvBits:          st.MaxRecvBits,
			TotalRecvBits:        st.TotalRecvBits,
			MaxRecvTuples:        st.MaxRecvTuples,
			TotalRecvTuples:      st.TotalRecvTuples,
			Aborted:              st.Aborted,
		})
	}
	return st
}

// Compute runs one computation phase outside a communication round: f runs
// for every server on the ParallelForWorkers pool (worker ids for per-worker
// scratch), and the elapsed wall time is accounted to the cluster's
// compute-phase total. This is the hook strategies use for their final
// local-evaluation phase so PhaseSeconds covers it.
func (c *Cluster) Compute(f func(server, worker int)) {
	//lint:allow nondeterminism phase wall-clock timing; PhaseSeconds is a simulation metric, excluded from Report.Fingerprint
	t0 := time.Now()
	ParallelForWorkers(c.p, f)
	//lint:allow nondeterminism phase wall-clock timing; PhaseSeconds is a simulation metric, excluded from Report.Fingerprint
	dur := time.Since(t0).Seconds()
	c.computeSeconds += dur
	c.tr.ObserveCompute(t0, dur)
}

// PhaseSeconds returns the cluster's accumulated wall-clock split: seconds
// spent computing (round functions + Compute phases) and seconds spent
// delivering (the simulated communication). These are simulation metrics
// for perf work, not model costs — the model only charges bits and rounds.
func (c *Cluster) PhaseSeconds() (compute, comm float64) {
	return c.computeSeconds, c.commSeconds
}

// SetLoadCap declares the maximum load L: any subsequent round in which a
// server receives more than capBits is flagged Aborted (the run's results
// are still available; callers decide whether to retry with a fresh seed).
// A cap of 0 removes the limit.
func (c *Cluster) SetLoadCap(capBits float64) { c.loadCap = capBits }

// Aborted reports whether any executed round exceeded the declared load cap.
func (c *Cluster) Aborted() bool {
	for _, r := range c.rounds {
		if r.Aborted {
			return true
		}
	}
	return false
}

// Rounds returns the statistics of all executed rounds in order.
func (c *Cluster) Rounds() []RoundStats { return c.rounds }

// NumRounds returns r, the number of communication rounds executed.
func (c *Cluster) NumRounds() int { return len(c.rounds) }

// MaxLoadBits returns L, the maximum number of bits received by any server
// in any round — the paper's load parameter.
func (c *Cluster) MaxLoadBits() float64 {
	best := 0.0
	for _, r := range c.rounds {
		if r.MaxRecvBits > best {
			best = r.MaxRecvBits
		}
	}
	return best
}

// MaxLoadTuples is MaxLoadBits measured in tuples.
func (c *Cluster) MaxLoadTuples() int {
	best := 0
	for _, r := range c.rounds {
		if r.MaxRecvTuples > best {
			best = r.MaxRecvTuples
		}
	}
	return best
}

// TotalBits returns the total communication Σ_s Σ_r (bits received).
func (c *Cluster) TotalBits() float64 {
	total := 0.0
	for _, r := range c.rounds {
		total += r.TotalRecvBits
	}
	return total
}

// ReplicationRate returns r = (Σ_s Σ_rounds L_s) / inputBits, the average
// number of times each input bit is communicated (Section 3.4).
func (c *Cluster) ReplicationRate(inputBits float64) float64 {
	if inputBits <= 0 {
		return 0
	}
	return c.TotalBits() / inputBits
}

// Gather collects every server's current inbox into one batch sequence, in
// server order — used to assemble the final query output, which the model
// requires to be present in the union of the servers. The returned batches
// are views; see Inbox for their lifetime.
func (c *Cluster) Gather() []Batch {
	var all []Batch
	for s := 0; s < c.p; s++ {
		ib := c.inbox[s]
		for i := 0; i < ib.NumBatches(); i++ {
			all = append(all, ib.Batch(i))
		}
	}
	return all
}
