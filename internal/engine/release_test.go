package engine

import (
	"fmt"
	"testing"
)

// runEcho seeds p servers with tagged tuples, shifts every tuple one server
// to the right in a round, and returns a deterministic transcript of every
// inbox plus the round stats.
func runEcho(p, rounds int) string {
	c := NewCluster(p, 8)
	defer c.Release()
	for s := 0; s < p; s++ {
		c.Seed(s, 0, []int64{int64(s), int64(s * 10)})
	}
	for r := 0; r < rounds; r++ {
		c.Round(fmt.Sprintf("shift-%d", r), func(s int, inbox *Inbox, emit *Emitter) {
			inbox.Each(func(kind int, t []int64) {
				emit.EmitTuple((s+1)%p, kind, t)
			})
		})
	}
	out := ""
	for s := 0; s < p; s++ {
		c.Inbox(s).Each(func(kind int, t []int64) {
			out += fmt.Sprintf("s%d k%d %v;", s, kind, t)
		})
	}
	out += fmt.Sprintf("|L=%.0f T=%.0f", c.MaxLoadBits(), c.TotalBits())
	return out
}

// TestReleaseReuseIsClean runs many released clusters of varying sizes back
// to back and asserts each run is byte-identical to a reference taken before
// any arena ever entered the pool: recycled arenas must never leak stale
// tuples or stats into a later cluster.
func TestReleaseReuseIsClean(t *testing.T) {
	ref3 := runEcho(3, 2)
	ref5 := runEcho(5, 1)
	for i := 0; i < 10; i++ {
		if got := runEcho(3, 2); got != ref3 {
			t.Fatalf("iteration %d (p=3): transcript diverged after pooling:\n got %s\nwant %s", i, got, ref3)
		}
		if got := runEcho(5, 1); got != ref5 {
			t.Fatalf("iteration %d (p=5): transcript diverged after pooling:\n got %s\nwant %s", i, got, ref5)
		}
	}
}

// TestReleaseIdempotent ensures a double Release (e.g. a deferred call after
// an explicit one) is harmless.
func TestReleaseIdempotent(t *testing.T) {
	c := NewCluster(2, 4)
	c.Seed(0, 0, []int64{1})
	c.Round("noop", func(s int, inbox *Inbox, emit *Emitter) {})
	c.Release()
	c.Release()
}

// TestReleaseKeepsStats asserts the metered quantities survive Release —
// only inbox views are invalidated.
func TestReleaseKeepsStats(t *testing.T) {
	c := NewCluster(2, 4)
	c.Seed(0, 0, []int64{1, 2})
	c.Round("send", func(s int, inbox *Inbox, emit *Emitter) {
		inbox.Each(func(kind int, t []int64) { emit.EmitTuple(1, kind, t) })
	})
	wantLoad, wantTotal, wantRounds := c.MaxLoadBits(), c.TotalBits(), c.NumRounds()
	c.Release()
	if c.MaxLoadBits() != wantLoad || c.TotalBits() != wantTotal || c.NumRounds() != wantRounds {
		t.Fatalf("stats changed across Release: load %v total %v rounds %v", c.MaxLoadBits(), c.TotalBits(), c.NumRounds())
	}
}
