package engine

import (
	"sync/atomic"
	"testing"
)

func TestRoundDeliveryAndLoad(t *testing.T) {
	c := NewCluster(4, 10)
	c.Seed(0, Message{Kind: 1, Tuple: []int64{1, 2}})
	c.Seed(1, Message{Kind: 1, Tuple: []int64{3, 4}})
	st := c.Round("shuffle", func(s int, inbox []Message, emit Emitter) {
		for _, m := range inbox {
			emit(int(m.Tuple[0])%4, m) // route by first value
		}
	})
	if st.TotalRecvTuples != 2 {
		t.Fatalf("total tuples=%d want 2", st.TotalRecvTuples)
	}
	if st.MaxRecvBits != 20 { // one binary tuple at 10 bits/value
		t.Fatalf("max bits=%v want 20", st.MaxRecvBits)
	}
	if len(c.Inbox(1)) != 1 || c.Inbox(1)[0].Tuple[0] != 1 {
		t.Fatalf("server 1 inbox wrong: %v", c.Inbox(1))
	}
	if len(c.Inbox(3)) != 1 || c.Inbox(3)[0].Tuple[0] != 3 {
		t.Fatalf("server 3 inbox wrong: %v", c.Inbox(3))
	}
	if c.NumRounds() != 1 {
		t.Fatalf("rounds=%d", c.NumRounds())
	}
}

func TestBroadcastChargesEveryReceiver(t *testing.T) {
	c := NewCluster(8, 4)
	c.Seed(2, Message{Tuple: []int64{9}})
	st := c.Round("bcast", func(s int, inbox []Message, emit Emitter) {
		for _, m := range inbox {
			emit(Broadcast, m)
		}
	})
	if st.TotalRecvTuples != 8 {
		t.Fatalf("broadcast should deliver to all 8: %d", st.TotalRecvTuples)
	}
	if st.MaxRecvBits != 4 {
		t.Fatalf("each receiver charged once: %v", st.MaxRecvBits)
	}
	for s := 0; s < 8; s++ {
		if len(c.Inbox(s)) != 1 {
			t.Fatalf("server %d inbox %v", s, c.Inbox(s))
		}
	}
}

func TestSeedIsFree(t *testing.T) {
	c := NewCluster(2, 8)
	c.Seed(0, Message{Tuple: []int64{1, 2, 3}})
	if c.MaxLoadBits() != 0 {
		t.Error("seeding must not count as load")
	}
	if got := len(c.Inbox(0)); got != 1 {
		t.Fatalf("inbox=%d", got)
	}
}

func TestMultiRoundStatsAndMaxLoad(t *testing.T) {
	c := NewCluster(2, 1)
	c.Seed(0, Message{Tuple: []int64{1}}, Message{Tuple: []int64{2}})
	// Round 1: send both tuples to server 1 (load 2 bits there).
	c.Round("r1", func(s int, inbox []Message, emit Emitter) {
		for _, m := range inbox {
			emit(1, m)
		}
	})
	// Round 2: send one tuple back (load 1 bit).
	c.Round("r2", func(s int, inbox []Message, emit Emitter) {
		if s == 1 && len(inbox) > 0 {
			emit(0, inbox[0])
		}
	})
	if c.NumRounds() != 2 {
		t.Fatalf("rounds=%d", c.NumRounds())
	}
	if c.MaxLoadBits() != 2 {
		t.Fatalf("L=%v want 2 (max over rounds)", c.MaxLoadBits())
	}
	if c.TotalBits() != 3 {
		t.Fatalf("total=%v want 3", c.TotalBits())
	}
	if rr := c.ReplicationRate(3); rr != 1 {
		t.Fatalf("replication=%v want 1", rr)
	}
}

func TestGatherOrderAndContent(t *testing.T) {
	c := NewCluster(3, 1)
	c.Seed(0, Message{Kind: 7, Tuple: []int64{0}})
	c.Seed(2, Message{Kind: 7, Tuple: []int64{2}})
	all := c.Gather()
	if len(all) != 2 || all[0].Tuple[0] != 0 || all[1].Tuple[0] != 2 {
		t.Fatalf("gather: %v", all)
	}
}

func TestRoundRunsEveryServer(t *testing.T) {
	c := NewCluster(16, 1)
	var ran int32
	c.Round("noop", func(s int, inbox []Message, emit Emitter) {
		atomic.AddInt32(&ran, 1)
	})
	if ran != 16 {
		t.Fatalf("ran=%d want 16", ran)
	}
}

func TestDeterministicDelivery(t *testing.T) {
	run := func() []int64 {
		c := NewCluster(4, 1)
		for s := 0; s < 4; s++ {
			c.Seed(s, Message{Tuple: []int64{int64(s * 10)}}, Message{Tuple: []int64{int64(s*10 + 1)}})
		}
		c.Round("all-to-one", func(s int, inbox []Message, emit Emitter) {
			for _, m := range inbox {
				emit(0, m)
			}
		})
		var got []int64
		for _, m := range c.Inbox(0) {
			got = append(got, m.Tuple[0])
		}
		return got
	}
	a, b := run(), run()
	if len(a) != 8 || len(b) != 8 {
		t.Fatalf("lengths %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic delivery: %v vs %v", a, b)
		}
	}
}

func TestBadDestinationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range destination should panic")
		}
	}()
	c := NewCluster(2, 1)
	c.Seed(0, Message{Tuple: []int64{1}})
	c.Round("bad", func(s int, inbox []Message, emit Emitter) {
		for range inbox {
			emit(5, Message{})
		}
	})
}

// TestConservation: total received bits equal total emitted bits (with
// broadcast counting p receivers) — the engine neither loses nor invents
// communication.
func TestConservation(t *testing.T) {
	c := NewCluster(5, 3)
	c.Seed(0, Message{Tuple: []int64{1, 2}}, Message{Tuple: []int64{3}})
	c.Seed(2, Message{Tuple: []int64{4, 5, 6}})
	st := c.Round("mix", func(s int, inbox []Message, emit Emitter) {
		for i, m := range inbox {
			if i%2 == 0 {
				emit(Broadcast, m)
			} else {
				emit((s+1)%5, m)
			}
		}
	})
	// Broadcast tuples: (1,2) from s0 and (4,5,6) from s2 => (2+3)*3 bits × 5.
	// Unicast: (3) => 1*3 bits.
	want := float64((2+3)*3*5 + 1*3)
	if st.TotalRecvBits != want {
		t.Fatalf("total=%v want %v", st.TotalRecvBits, want)
	}
}

// TestEmptyRoundIsFree: a round with no emissions records zero load.
func TestEmptyRoundIsFree(t *testing.T) {
	c := NewCluster(3, 8)
	st := c.Round("idle", func(s int, inbox []Message, emit Emitter) {})
	if st.TotalRecvBits != 0 || st.MaxRecvTuples != 0 {
		t.Fatalf("idle round: %+v", st)
	}
}

func TestAccessorsAndCaps(t *testing.T) {
	c := NewCluster(4, 7)
	if c.P() != 4 || c.BitsPerValue() != 7 {
		t.Fatalf("accessors: %d %d", c.P(), c.BitsPerValue())
	}
	c.SetLoadCap(10)
	c.Seed(0, Message{Tuple: []int64{1, 2}}) // 14 bits once delivered
	st := c.Round("over", func(s int, inbox []Message, emit Emitter) {
		for _, m := range inbox {
			emit(1, m)
		}
	})
	if !st.Aborted || !c.Aborted() {
		t.Error("14 bits against a 10-bit cap should abort")
	}
	if len(c.Rounds()) != 1 {
		t.Errorf("rounds list: %d", len(c.Rounds()))
	}
	if c.MaxLoadTuples() != 1 {
		t.Errorf("max tuples: %d", c.MaxLoadTuples())
	}
	if c.ReplicationRate(0) != 0 {
		t.Error("zero input bits should give replication 0")
	}
	c.SetLoadCap(0)
	st2 := c.Round("under", func(s int, inbox []Message, emit Emitter) {})
	if st2.Aborted {
		t.Error("uncapped round cannot abort")
	}
}

func TestNewClusterValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewCluster(0, 8) },
		func() { NewCluster(4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid NewCluster should panic")
				}
			}()
			f()
		}()
	}
}
