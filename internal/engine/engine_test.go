package engine

import (
	"sync/atomic"
	"testing"
)

func TestRoundDeliveryAndLoad(t *testing.T) {
	c := NewCluster(4, 10)
	c.Seed(0, 1, []int64{1, 2})
	c.Seed(1, 1, []int64{3, 4})
	st := c.Round("shuffle", func(s int, inbox *Inbox, emit *Emitter) {
		inbox.Each(func(kind int, tuple []int64) {
			emit.EmitTuple(int(tuple[0])%4, kind, tuple) // route by first value
		})
	})
	if st.TotalRecvTuples != 2 {
		t.Fatalf("total tuples=%d want 2", st.TotalRecvTuples)
	}
	if st.MaxRecvBits != 20 { // one binary tuple at 10 bits/value
		t.Fatalf("max bits=%v want 20", st.MaxRecvBits)
	}
	if ib := c.Inbox(1); ib.NumTuples() != 1 {
		t.Fatalf("server 1 inbox size %d", ib.NumTuples())
	} else if _, tup := ib.Tuple(0); tup[0] != 1 {
		t.Fatalf("server 1 inbox wrong: %v", tup)
	}
	if ib := c.Inbox(3); ib.NumTuples() != 1 {
		t.Fatalf("server 3 inbox size %d", ib.NumTuples())
	} else if _, tup := ib.Tuple(0); tup[0] != 3 {
		t.Fatalf("server 3 inbox wrong: %v", tup)
	}
	if c.NumRounds() != 1 {
		t.Fatalf("rounds=%d", c.NumRounds())
	}
}

// TestBroadcastChargesEveryReceiver pins the model's broadcast accounting:
// one broadcast tuple is charged once to EVERY one of the p receivers, both
// in tuples and in bits, under the batched parallel delivery.
func TestBroadcastChargesEveryReceiver(t *testing.T) {
	c := NewCluster(8, 4)
	c.Seed(2, 0, []int64{9})
	st := c.Round("bcast", func(s int, inbox *Inbox, emit *Emitter) {
		inbox.Each(func(kind int, tuple []int64) {
			emit.EmitTuple(Broadcast, kind, tuple)
		})
	})
	if st.TotalRecvTuples != 8 {
		t.Fatalf("broadcast should deliver to all 8: %d", st.TotalRecvTuples)
	}
	if st.MaxRecvBits != 4 {
		t.Fatalf("each receiver charged once: %v", st.MaxRecvBits)
	}
	if st.TotalRecvBits != 8*4 {
		t.Fatalf("total bits=%v want 32 (4 bits × 8 receivers)", st.TotalRecvBits)
	}
	for s := 0; s < 8; s++ {
		if c.Inbox(s).NumTuples() != 1 {
			t.Fatalf("server %d inbox %d tuples", s, c.Inbox(s).NumTuples())
		}
	}
}

// TestBroadcastBatchCharges is the EmitBatch counterpart: a whole batch
// broadcast to p servers is charged per receiver per tuple.
func TestBroadcastBatchCharges(t *testing.T) {
	c := NewCluster(4, 8)
	c.Seed(0, 3, []int64{1, 2})
	st := c.Round("bcast-batch", func(s int, inbox *Inbox, emit *Emitter) {
		if s == 0 {
			emit.EmitBatch(Broadcast, 3, 2, []int64{1, 2, 3, 4, 5, 6}) // 3 tuples
		}
	})
	if st.TotalRecvTuples != 3*4 {
		t.Fatalf("tuples=%d want 12", st.TotalRecvTuples)
	}
	if st.MaxRecvBits != 3*2*8 {
		t.Fatalf("per-receiver bits=%v want 48", st.MaxRecvBits)
	}
}

func TestSeedIsFree(t *testing.T) {
	c := NewCluster(2, 8)
	c.Seed(0, 0, []int64{1, 2, 3})
	if c.MaxLoadBits() != 0 {
		t.Error("seeding must not count as load")
	}
	if got := c.Inbox(0).NumTuples(); got != 1 {
		t.Fatalf("inbox=%d", got)
	}
}

func TestSeedCoalescesIntoBatches(t *testing.T) {
	c := NewCluster(2, 8)
	for i := 0; i < 10; i++ {
		c.Seed(0, 0, []int64{int64(i), 0})
	}
	for i := 0; i < 5; i++ {
		c.Seed(0, 1, []int64{int64(i)})
	}
	ib := c.Inbox(0)
	if ib.NumBatches() != 2 {
		t.Fatalf("batches=%d want 2 (one per kind)", ib.NumBatches())
	}
	if b := ib.Batch(0); b.Kind != 0 || b.Arity != 2 || b.NumTuples() != 10 {
		t.Fatalf("batch 0: %+v", b)
	}
	if b := ib.Batch(1); b.Kind != 1 || b.Arity != 1 || b.NumTuples() != 5 {
		t.Fatalf("batch 1: %+v", b)
	}
	if ib.NumTuples() != 15 {
		t.Fatalf("tuples=%d want 15", ib.NumTuples())
	}
}

func TestMultiRoundStatsAndMaxLoad(t *testing.T) {
	c := NewCluster(2, 1)
	c.Seed(0, 0, []int64{1})
	c.Seed(0, 0, []int64{2})
	// Round 1: send both tuples to server 1 (load 2 bits there).
	c.Round("r1", func(s int, inbox *Inbox, emit *Emitter) {
		inbox.Each(func(kind int, tuple []int64) {
			emit.EmitTuple(1, kind, tuple)
		})
	})
	// Round 2: send one tuple back (load 1 bit).
	c.Round("r2", func(s int, inbox *Inbox, emit *Emitter) {
		if s == 1 && inbox.NumTuples() > 0 {
			kind, tup := inbox.Tuple(0)
			emit.EmitTuple(0, kind, tup)
		}
	})
	if c.NumRounds() != 2 {
		t.Fatalf("rounds=%d", c.NumRounds())
	}
	if c.MaxLoadBits() != 2 {
		t.Fatalf("L=%v want 2 (max over rounds)", c.MaxLoadBits())
	}
	if c.TotalBits() != 3 {
		t.Fatalf("total=%v want 3", c.TotalBits())
	}
	if rr := c.ReplicationRate(3); rr != 1 {
		t.Fatalf("replication=%v want 1", rr)
	}
}

func TestGatherOrderAndContent(t *testing.T) {
	c := NewCluster(3, 1)
	c.Seed(0, 7, []int64{0})
	c.Seed(2, 7, []int64{2})
	all := c.Gather()
	if len(all) != 2 || all[0].Tuple(0)[0] != 0 || all[1].Tuple(0)[0] != 2 {
		t.Fatalf("gather: %v", all)
	}
	if all[0].Kind != 7 {
		t.Fatalf("kind: %d", all[0].Kind)
	}
}

func TestRoundRunsEveryServer(t *testing.T) {
	c := NewCluster(16, 1)
	var ran int32
	c.Round("noop", func(s int, inbox *Inbox, emit *Emitter) {
		atomic.AddInt32(&ran, 1)
	})
	if ran != 16 {
		t.Fatalf("ran=%d want 16", ran)
	}
}

func TestDeterministicDelivery(t *testing.T) {
	run := func() []int64 {
		c := NewCluster(4, 1)
		for s := 0; s < 4; s++ {
			c.Seed(s, 0, []int64{int64(s * 10)})
			c.Seed(s, 0, []int64{int64(s*10 + 1)})
		}
		c.Round("all-to-one", func(s int, inbox *Inbox, emit *Emitter) {
			inbox.Each(func(kind int, tuple []int64) {
				emit.EmitTuple(0, kind, tuple)
			})
		})
		var got []int64
		c.Inbox(0).Each(func(kind int, tuple []int64) {
			got = append(got, tuple[0])
		})
		return got
	}
	a, b := run(), run()
	if len(a) != 8 || len(b) != 8 {
		t.Fatalf("lengths %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic delivery: %v vs %v", a, b)
		}
	}
	// Batches must arrive grouped by sender in sender order.
	want := []int64{0, 1, 10, 11, 20, 21, 30, 31}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("delivery order %v, want %v", a, want)
		}
	}
}

func TestBadDestinationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range destination should panic")
		}
	}()
	c := NewCluster(2, 1)
	c.Seed(0, 0, []int64{1})
	c.Round("bad", func(s int, inbox *Inbox, emit *Emitter) {
		inbox.Each(func(kind int, tuple []int64) {
			emit.EmitTuple(5, kind, tuple)
		})
	})
}

// TestRoundPanicPropagates: a panic in one server's round function must
// surface as an ordinary panic on the caller's goroutine, even though
// servers run concurrently and delivery is parallel.
func TestRoundPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("server panic should propagate to the Round caller")
		}
		if s, ok := r.(string); !ok || s != "server 7 exploded" {
			t.Fatalf("wrong panic value: %v", r)
		}
	}()
	c := NewCluster(16, 1)
	c.Round("boom", func(s int, inbox *Inbox, emit *Emitter) {
		if s == 7 {
			panic("server 7 exploded")
		}
		emit.EmitTuple((s+1)%16, 0, []int64{int64(s)})
	})
}

// TestRoundPanicLeavesClusterUsable: after a recovered panic no partial
// round statistics must have been recorded.
func TestRoundPanicLeavesClusterUsable(t *testing.T) {
	c := NewCluster(4, 1)
	func() {
		defer func() { recover() }()
		c.Round("boom", func(s int, inbox *Inbox, emit *Emitter) {
			panic("boom")
		})
	}()
	if c.NumRounds() != 0 {
		t.Fatalf("aborted round recorded stats: %d rounds", c.NumRounds())
	}
}

// TestConservation: total received bits equal total emitted bits (with
// broadcast counting p receivers) — the engine neither loses nor invents
// communication.
func TestConservation(t *testing.T) {
	c := NewCluster(5, 3)
	c.Seed(0, 0, []int64{1, 2})
	c.Seed(0, 1, []int64{3})
	c.Seed(2, 0, []int64{4, 5, 6})
	st := c.Round("mix", func(s int, inbox *Inbox, emit *Emitter) {
		i := 0
		inbox.Each(func(kind int, tuple []int64) {
			if i%2 == 0 {
				emit.EmitTuple(Broadcast, kind, tuple)
			} else {
				emit.EmitTuple((s+1)%5, kind, tuple)
			}
			i++
		})
	})
	// Broadcast tuples: (1,2) from s0 and (4,5,6) from s2 => (2+3)*3 bits × 5.
	// Unicast: (3) => 1*3 bits.
	want := float64((2+3)*3*5 + 1*3)
	if st.TotalRecvBits != want {
		t.Fatalf("total=%v want %v", st.TotalRecvBits, want)
	}
}

// TestEmptyRoundIsFree: a round with no emissions records zero load.
func TestEmptyRoundIsFree(t *testing.T) {
	c := NewCluster(3, 8)
	st := c.Round("idle", func(s int, inbox *Inbox, emit *Emitter) {})
	if st.TotalRecvBits != 0 || st.MaxRecvTuples != 0 {
		t.Fatalf("idle round: %+v", st)
	}
}

// TestInboxMutationDoesNotCorruptDelivery: emitted values are copied at
// emit time, so a server that mutates its inbox after emitting (or reuses
// the emitted slice) cannot corrupt what other servers receive.
func TestInboxMutationDoesNotCorruptDelivery(t *testing.T) {
	c := NewCluster(2, 4)
	c.Seed(0, 0, []int64{42, 43})
	c.Round("mutate-after-emit", func(s int, inbox *Inbox, emit *Emitter) {
		inbox.Each(func(kind int, tuple []int64) {
			emit.EmitTuple(1, kind, tuple)
			tuple[0], tuple[1] = -1, -1 // scribble over the inbox view
		})
	})
	_, tup := c.Inbox(1).Tuple(0)
	if tup[0] != 42 || tup[1] != 43 {
		t.Fatalf("delivered tuple corrupted by sender-side mutation: %v", tup)
	}
}

// TestInboxReuseAcrossRounds: the engine recycles inbox arenas two rounds
// later; a server that mutates its *current* inbox during a round must not
// corrupt the next round's deliveries, and tuple contents observed in each
// round must be exactly what the previous round emitted.
func TestInboxReuseAcrossRounds(t *testing.T) {
	const p, rounds = 4, 6
	c := NewCluster(p, 8)
	for s := 0; s < p; s++ {
		c.Seed(s, 0, []int64{int64(100 + s), int64(s)})
	}
	for r := 0; r < rounds; r++ {
		round := r
		c.Round("cycle", func(s int, inbox *Inbox, emit *Emitter) {
			inbox.Each(func(kind int, tuple []int64) {
				want := int64(100 + (int(tuple[1])+round)%p)
				if tuple[0] != want {
					panic("corrupted tuple observed")
				}
				next := []int64{int64(100 + (int(tuple[1])+round+1)%p), tuple[1]}
				emit.EmitTuple((s+1)%p, kind, next)
				tuple[0] = -999 // scribble over the current inbox
			})
		})
	}
	if c.NumRounds() != rounds {
		t.Fatalf("rounds=%d", c.NumRounds())
	}
	if c.MaxLoadBits() != 2*8 {
		t.Fatalf("steady-state load=%v want 16", c.MaxLoadBits())
	}
}

// TestEmitBatchMatchesEmitTuple: routing the same tuples via EmitBatch and
// via EmitTuple must produce identical inboxes and identical accounting.
func TestEmitBatchMatchesEmitTuple(t *testing.T) {
	vals := []int64{1, 2, 3, 4, 5, 6}
	run := func(batch bool) ([]int64, RoundStats) {
		c := NewCluster(3, 5)
		c.SeedBatch(0, 2, 2, vals)
		st := c.Round("r", func(s int, inbox *Inbox, emit *Emitter) {
			if batch {
				inbox.EachBatch(func(b Batch) {
					emit.EmitBatch(1, b.Kind, b.Arity, b.Vals)
				})
			} else {
				inbox.Each(func(kind int, tuple []int64) {
					emit.EmitTuple(1, kind, tuple)
				})
			}
		})
		var got []int64
		c.Inbox(1).Each(func(kind int, tuple []int64) {
			got = append(got, int64(kind))
			got = append(got, tuple...)
		})
		return got, st
	}
	a, sa := run(false)
	b, sb := run(true)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("contents differ: %v vs %v", a, b)
		}
	}
	if sa.TotalRecvBits != sb.TotalRecvBits || sa.MaxRecvTuples != sb.MaxRecvTuples {
		t.Fatalf("stats differ: %+v vs %+v", sa, sb)
	}
}

func TestEmitBatchValidation(t *testing.T) {
	c := NewCluster(2, 1)
	c.Seed(0, 0, []int64{1})
	defer func() {
		if recover() == nil {
			t.Error("ragged batch should panic")
		}
	}()
	c.Round("bad", func(s int, inbox *Inbox, emit *Emitter) {
		if s == 0 {
			emit.EmitBatch(1, 0, 2, []int64{1, 2, 3}) // not a multiple of arity
		}
	})
}

func TestInboxRandomAccess(t *testing.T) {
	c := NewCluster(1, 1)
	for i := 0; i < 7; i++ {
		c.Seed(0, 0, []int64{int64(i), 0})
	}
	for i := 0; i < 4; i++ {
		c.Seed(0, 1, []int64{int64(100 + i)})
	}
	ib := c.Inbox(0)
	for i := 0; i < 7; i++ {
		if kind, tup := ib.Tuple(i); kind != 0 || tup[0] != int64(i) {
			t.Fatalf("tuple %d: kind=%d %v", i, kind, tup)
		}
	}
	for i := 7; i < 11; i++ {
		if kind, tup := ib.Tuple(i); kind != 1 || tup[0] != int64(100+i-7) {
			t.Fatalf("tuple %d: kind=%d %v", i, kind, tup)
		}
	}
}

func TestAccessorsAndCaps(t *testing.T) {
	c := NewCluster(4, 7)
	if c.P() != 4 || c.BitsPerValue() != 7 {
		t.Fatalf("accessors: %d %d", c.P(), c.BitsPerValue())
	}
	c.SetLoadCap(10)
	c.Seed(0, 0, []int64{1, 2}) // 14 bits once delivered
	st := c.Round("over", func(s int, inbox *Inbox, emit *Emitter) {
		inbox.Each(func(kind int, tuple []int64) {
			emit.EmitTuple(1, kind, tuple)
		})
	})
	if !st.Aborted || !c.Aborted() {
		t.Error("14 bits against a 10-bit cap should abort")
	}
	if len(c.Rounds()) != 1 {
		t.Errorf("rounds list: %d", len(c.Rounds()))
	}
	if c.MaxLoadTuples() != 1 {
		t.Errorf("max tuples: %d", c.MaxLoadTuples())
	}
	if c.ReplicationRate(0) != 0 {
		t.Error("zero input bits should give replication 0")
	}
	c.SetLoadCap(0)
	st2 := c.Round("under", func(s int, inbox *Inbox, emit *Emitter) {})
	if st2.Aborted {
		t.Error("uncapped round cannot abort")
	}
}

func TestNewClusterValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewCluster(0, 8) },
		func() { NewCluster(4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid NewCluster should panic")
				}
			}()
			f()
		}()
	}
}

func TestEmptyTuplePanics(t *testing.T) {
	c := NewCluster(2, 1)
	c.Seed(0, 0, []int64{1})
	defer func() {
		if recover() == nil {
			t.Error("empty tuple should panic")
		}
	}()
	c.Round("bad", func(s int, inbox *Inbox, emit *Emitter) {
		if s == 0 {
			emit.EmitTuple(1, 0, nil)
		}
	})
}
