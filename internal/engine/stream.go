package engine

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// This file is the engine's streaming execution path: chunked pipelined
// rounds with bounded memory. In barrier mode (the default) every server
// fully materializes its outbound batches, then delivery moves everything
// at once — peak memory scales with total round traffic, roughly twice the
// received load, because the emitters still hold the full round when the
// delivered arenas land. In streaming mode the Emitter flushes fixed-size
// chunks while senders are still producing, and the flushed buffers are
// recycled immediately, so the emitter-side residency collapses to O(p ·
// chunk) per sender instead of O(traffic).
//
// Two sub-modes share the chunk-size knob:
//
//   - Pipelined (no transport link): chunks flush mid-emission directly
//     into the destination spare inboxes under per-destination locks,
//     tagged with (sender, class, sequence). Finalization sorts each
//     destination's tagged spans into exactly the barrier delivery order
//     (per destination: senders ascending; within one sender, unicasts in
//     emission order, then broadcasts in emission order), so consumers —
//     and therefore fingerprints — cannot tell the two paths apart. Only
//     physical arena layout and span granularity differ, and no consumer
//     observes span boundaries (they concatenate per-kind values).
//
//   - Staged (transport link attached): emission still stages into
//     sendBufs — a remote delivery cannot write into local inboxes early —
//     but batches are capped at the chunk size, so EachPending yields
//     chunk-granular frames and the wire, the fault injector, and the
//     recovery replay all operate at chunk granularity. Receive-side
//     span coalescing (Inbox.Append) makes the landed inboxes identical
//     to barrier delivery, and bits are charged per value, so accounting
//     is chunking-invariant.
//
// Every metered quantity — RecvBits, RoundStats, TotalBits, trace
// Structure — is preserved exactly; only wall-clock and peak memory move.

// DefaultStreamChunk is the chunk size, in tuples, used when streaming is
// enabled without an explicit chunk size. Large enough that per-chunk
// overhead (a lock acquisition and a span tag per flush) is amortized into
// noise, small enough that per-sender residency stays far below round
// traffic.
const DefaultStreamChunk = 4096

// MemGauge tracks a high-water mark of engine-buffered bytes across the
// clusters of one run. All methods are atomic and nil-receiver-safe, so
// clusters observe unconditionally. The gauge measures the engine's own
// communication buffers (emitter staging + delivered inbox arenas) — a
// deterministic, scheduler-independent stand-in for peak RSS that the
// -benchstream gate and the regression tests can assert exact numbers on.
type MemGauge struct {
	peak atomic.Int64
}

// Observe raises the high-water mark to b if it is higher.
func (g *MemGauge) Observe(b int64) {
	if g == nil {
		return
	}
	for {
		cur := g.peak.Load()
		if b <= cur || g.peak.CompareAndSwap(cur, b) {
			return
		}
	}
}

// Peak returns the highest observation so far (0 for a nil gauge).
func (g *MemGauge) Peak() int64 {
	if g == nil {
		return 0
	}
	return g.peak.Load()
}

// OutputSink receives the query output as a stream of row-major chunks
// instead of a materialized relation — the escape hatch for outputs larger
// than memory. Chunk may be called concurrently for different servers (one
// goroutine per server at a time); within one server, calls arrive in
// output order. vals is reused by the caller after Chunk returns: consume
// or copy synchronously. The interface lives in the engine (carried on
// Env) so strategies can reach it without import cycles.
type OutputSink interface {
	Chunk(server, arity int, vals []int64)
}

// SetStreamChunk sets the streaming chunk size in tuples; 0 (the default)
// selects barrier mode. Must be called before the cluster's first Round.
func (c *Cluster) SetStreamChunk(tuples int) {
	if tuples < 0 {
		panic("engine: stream chunk must be non-negative")
	}
	c.streamChunk = tuples
}

// AppendChunk appends one streamed chunk as a tagged, non-coalescing span:
// the pipelined twin of Append, carrying the ordering tags finalizeStream
// sorts on. sender is the emitting server, seq its per-round flush
// sequence number, broadcast the chunk's class (a sender's broadcasts
// order after its unicasts). Only the Emitter's chunk flush path may call
// this during a round — direct appends bypass the engine's metering (the
// mpclint metering analyzer flags them in strategy packages).
func (ib *Inbox) AppendChunk(sender, seq, kind, arity int, vals []int64, broadcast bool) {
	if arity < 1 {
		panic("engine: inbox chunk append arity must be positive")
	}
	if len(vals)%arity != 0 {
		panic(fmt.Sprintf("engine: inbox chunk append of %d values is not a multiple of arity %d", len(vals), arity))
	}
	if len(vals) == 0 {
		return
	}
	ib.appendChunk(sender, seq, kind, arity, vals, broadcast)
}

// appendChunk is AppendChunk without the boundary validation — the
// internal fast path for the Emitter's chunk flush, which emits only
// well-formed chunks. Caller holds the destination's lock.
func (ib *Inbox) appendChunk(sender, seq, kind, arity int, vals []int64, broadcast bool) {
	start := len(ib.arena)
	ib.arena = append(ib.arena, vals...)
	cls := int8(0)
	if broadcast {
		cls = 1
	}
	ib.spans = append(ib.spans, span{
		kind: kind, arity: arity, start: start, end: len(ib.arena),
		sender: int32(sender), seq: int32(seq), cls: cls,
	})
	ib.tuples += len(vals) / arity
	ib.prefix = nil
	ib.streamed = true
}

// finalizeStream orders a streamed inbox's spans into the barrier delivery
// order — (sender ascending, unicasts before broadcasts, flush sequence) —
// and returns the inbox's receive accounting. The sort key is unique per
// span (a sender's sequence numbers never repeat within a class), so the
// logical tuple order is exactly DeliverLocal's. On a non-streamed inbox
// it only computes the accounting.
func (ib *Inbox) finalizeStream(bitsPerValue int) (bits float64, tuples int) {
	if ib.streamed {
		sort.Slice(ib.spans, func(i, j int) bool {
			a, b := &ib.spans[i], &ib.spans[j]
			if a.sender != b.sender {
				return a.sender < b.sender
			}
			if a.cls != b.cls {
				return a.cls < b.cls
			}
			return a.seq < b.seq
		})
		ib.streamed = false
		ib.prefix = nil
	}
	for _, sp := range ib.spans {
		bits += float64((sp.end - sp.start) * bitsPerValue)
	}
	return bits, ib.tuples
}

// chunkBuf returns the emitter's pending pipelined chunk for dest,
// tracking first touches so reset stays O(touched).
func (e *Emitter) chunkBuf(dest int) *outBatch {
	if dest == Broadcast {
		return &e.pbcast
	}
	if dest < 0 || dest >= e.c.p {
		panic(fmt.Sprintf("engine: destination %d out of range [0,%d)", dest, e.c.p))
	}
	if e.pchunks == nil {
		e.pchunks = make([]outBatch, e.c.p)
		e.ptracked = make([]bool, e.c.p)
	}
	if !e.ptracked[dest] {
		e.ptracked[dest] = true
		e.ptouched = append(e.ptouched, dest)
	}
	return &e.pchunks[dest]
}

// emitStream is the pipelined emission path: values accumulate in the
// destination's chunk buffer and flush into its spare inbox whenever the
// buffer fills or the (kind, arity) changes — mid-emission, while other
// senders are still producing. The buffer is recycled in place after every
// flush, which is the whole memory story: a sender's residency is bounded
// by p+1 chunk buffers instead of its full round traffic.
func (e *Emitter) emitStream(dest, kind, arity int, vals []int64) {
	b := e.chunkBuf(dest)
	if len(b.vals) > 0 && (b.kind != kind || b.arity != arity) {
		e.flushChunk(dest, b)
	}
	b.kind, b.arity = kind, arity
	capVals := e.chunkTuples * arity
	for {
		room := capVals - len(b.vals)
		if room > len(vals) {
			b.vals = append(b.vals, vals...)
			e.noteResident(len(vals))
			return
		}
		b.vals = append(b.vals, vals[:room]...)
		e.noteResident(room)
		vals = vals[room:]
		e.flushChunk(dest, b)
		if len(vals) == 0 {
			return
		}
	}
}

// noteResident tracks the emitter's buffered-value high-water for the
// cluster's memory gauge.
func (e *Emitter) noteResident(n int) {
	e.resident += n
	if e.resident > e.residentHW {
		e.residentHW = e.resident
	}
}

// flushChunk moves one pending chunk into its destination's spare inbox
// (all p of them for a broadcast, each charged to its receiver at
// finalize), tagged for deterministic reordering, and recycles the buffer.
func (e *Emitter) flushChunk(dest int, b *outBatch) {
	n := len(b.vals)
	if n == 0 {
		return
	}
	c := e.c
	seq := e.seq
	e.seq++
	if dest == Broadcast {
		for d := 0; d < c.p; d++ {
			c.destMu[d].Lock()
			c.spare[d].appendChunk(e.self, int(seq), b.kind, b.arity, b.vals, true)
			c.destMu[d].Unlock()
		}
	} else {
		c.destMu[dest].Lock()
		c.spare[dest].appendChunk(e.self, int(seq), b.kind, b.arity, b.vals, false)
		c.destMu[dest].Unlock()
	}
	e.flushes++
	e.resident -= n
	b.vals = b.vals[:0]
}

// flushPending flushes the emitter's leftover partial chunks at the end of
// the emission phase — the pipelined counterpart of the barrier's delivery
// hand-off, after which every emitted value is in some destination arena.
func (e *Emitter) flushPending() {
	for _, d := range e.ptouched {
		e.flushChunk(d, &e.pchunks[d])
	}
	e.flushChunk(Broadcast, &e.pbcast)
}

// observeBufferedMemory records this round's engine-buffered high-water
// into the cluster's gauge: emitter-resident values plus the delivered
// inbox arenas, in bytes. Called at the end of Round, after the inbox
// swap. Barrier rounds hold the full round traffic on both sides at once —
// emitters are only reset at the next round's start — so streaming's
// recycled chunk buffers show up here as a direct, deterministic peak
// reduction; this is the number the -benchstream gate asserts on.
func (c *Cluster) observeBufferedMemory() {
	if c.mem == nil {
		return
	}
	var vals int64
	for s := 0; s < c.p; s++ {
		e := c.emitters[s]
		if e.pipelined {
			vals += int64(e.residentHW)
			continue
		}
		if e.perDest != nil {
			for _, d := range e.touched {
				for _, b := range e.perDest[d].batches {
					vals += int64(len(b.vals))
				}
			}
		}
		for _, b := range e.bcast.batches {
			vals += int64(len(b.vals))
		}
	}
	for d := 0; d < c.p; d++ {
		vals += int64(len(c.inbox[d].arena))
	}
	c.mem.Observe(vals * 8)
}
