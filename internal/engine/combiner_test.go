package engine

import (
	"math/rand"
	"testing"
)

// TestCombinerMergesSameKeyRows drives duplicate-keyed rows through the
// combiner on a 2-server cluster and checks that the destination receives
// one row per (dest, key) with the combined annotation, and that the round's
// bit accounting reflects only the shipped rows.
func TestCombinerMergesSameKeyRows(t *testing.T) {
	c := NewCluster(2, 8)
	defer c.Release()
	var raw, sent int
	st := c.Round("combine", func(s int, _ *Inbox, emit *Emitter) {
		if s != 0 {
			return
		}
		cb := emit.Combiner(3, 1, func(a, b int64) int64 { return a + b })
		cb.Add(1, []int64{10, 1})
		cb.Add(1, []int64{20, 5})
		cb.Add(1, []int64{10, 2}) // merges into the first row
		cb.Add(0, []int64{10, 7}) // different destination: no merge
		raw, sent = cb.Flush()
	})
	if raw != 4 || sent != 3 {
		t.Fatalf("raw=%d sent=%d, want 4 and 3", raw, sent)
	}
	// 3 rows of 2 values at 8 bits each.
	if st.TotalRecvBits != 3*2*8 {
		t.Fatalf("TotalRecvBits = %f, want %d", st.TotalRecvBits, 3*2*8)
	}
	ib := c.Inbox(1)
	if ib.NumTuples() != 2 {
		t.Fatalf("dest 1 received %d rows, want 2", ib.NumTuples())
	}
	kind, row := ib.Tuple(0)
	if kind != 3 || row[0] != 10 || row[1] != 3 {
		t.Fatalf("first row = kind %d %v, want kind 3 [10 3]", kind, row)
	}
	_, row = ib.Tuple(1)
	if row[0] != 20 || row[1] != 5 {
		t.Fatalf("second row = %v, want [20 5]", row)
	}
	if c.Inbox(0).NumTuples() != 1 {
		t.Fatal("dest 0 must receive the one row routed to it")
	}
}

// TestCombinerEquivalentToPostFold checks the core contract: combining
// before the shuffle and folding after it yield the same per-destination
// totals as shipping every raw row — fewer bits, same values.
func TestCombinerEquivalentToPostFold(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const p = 4
	type row struct {
		dest int
		key  int64
		val  int64
	}
	rows := make([]row, 600)
	for i := range rows {
		rows[i] = row{dest: rng.Intn(p), key: rng.Int63n(9), val: rng.Int63n(50)}
	}

	fold := func(combined bool) (map[int]map[int64]int64, float64) {
		c := NewCluster(p, 10)
		defer c.Release()
		c.Round("agg", func(s int, _ *Inbox, emit *Emitter) {
			if s != 0 {
				return
			}
			if combined {
				cb := emit.Combiner(0, 1, func(a, b int64) int64 { return a + b })
				for _, r := range rows {
					cb.Add(r.dest, []int64{r.key, r.val})
				}
				cb.Flush()
			} else {
				for _, r := range rows {
					emit.EmitTuple(r.dest, 0, []int64{r.key, r.val})
				}
			}
		})
		got := make(map[int]map[int64]int64)
		for d := 0; d < p; d++ {
			got[d] = make(map[int64]int64)
			c.Inbox(d).Each(func(_ int, t []int64) {
				got[d][t[0]] += t[1]
			})
		}
		return got, c.TotalBits()
	}

	combinedTotals, combinedBits := fold(true)
	rawTotals, rawBits := fold(false)
	for d := 0; d < p; d++ {
		for k, v := range rawTotals[d] {
			if combinedTotals[d][k] != v {
				t.Fatalf("dest %d key %d: combined %d, raw %d", d, k, combinedTotals[d][k], v)
			}
		}
		if len(rawTotals[d]) != len(combinedTotals[d]) {
			t.Fatalf("dest %d: group count diverged", d)
		}
	}
	if combinedBits >= rawBits {
		t.Fatalf("combining saved nothing: %f >= %f", combinedBits, rawBits)
	}
}

func TestCombinerPanics(t *testing.T) {
	c := NewCluster(1, 8)
	defer c.Release()
	mustPanic := func(name string, f func(emit *Emitter)) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		// Drive through a round so the emitter is live; re-panic on the
		// caller's goroutine per ParallelFor's contract.
		c.Round("t", func(_ int, _ *Inbox, emit *Emitter) { f(emit) })
	}
	mustPanic("bad row width", func(emit *Emitter) {
		cb := emit.Combiner(0, 2, func(a, b int64) int64 { return a + b })
		cb.Add(0, []int64{1, 2})
	})
	mustPanic("zero key arity", func(emit *Emitter) {
		emit.Combiner(0, 0, func(a, b int64) int64 { return a + b })
	})
	mustPanic("nil combine", func(emit *Emitter) {
		emit.Combiner(0, 1, nil)
	})
	mustPanic("use after flush", func(emit *Emitter) {
		cb := emit.Combiner(0, 1, func(a, b int64) int64 { return a + b })
		cb.Flush()
		cb.Add(0, []int64{1, 2})
	})
}
