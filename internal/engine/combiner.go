package engine

import (
	"fmt"

	"mpcquery/internal/hashing"
)

// Combiner is the Emitter's pre-shuffle partial-aggregation hook: it accepts
// (key..., annotation) rows of arity keyArity+1 bound for per-tuple-decided
// destinations, merges rows with equal destination and key through the
// supplied combine function *before* any bits are charged, and ships each
// destination's surviving rows as one columnar batch on Flush. Fewer tuples
// on the wire means fewer bits, metered by the engine's ordinary accounting
// — the combiner is invisible to the cost model except through the rows it
// removes.
//
// A Combiner belongs to one round function invocation: obtain it from the
// round's Emitter, Add rows, and Flush before returning. Like the Emitter it
// wraps, it must not be retained or shared across goroutines. Determinism:
// surviving rows keep first-insertion order per destination, destinations
// flush in first-touch order, and combine is applied in arrival order — with
// an associative, commutative combine the shipped values are independent of
// arrival order entirely.
type Combiner struct {
	e        *Emitter
	kind     int
	keyArity int
	combine  func(a, b int64) int64

	tables  map[int]*combTable
	touched []int // destinations in first-touch order
	raw     int   // rows accepted by Add
	flushed bool
}

// combTable accumulates one destination's pending rows: flat (key..., annot)
// storage plus hash chains over the key columns, collisions resolved by
// comparing keys in place (the local-join kernel's index discipline).
type combTable struct {
	rows   []int64
	chains map[uint64][]int32 // key hash -> row indices
}

// Combiner returns a fresh pre-shuffle combiner for same-key aggregate rows
// of the given kind. keyArity is the number of key columns; every row passed
// to Add must have keyArity+1 values, the last being the annotation. combine
// must be associative and commutative for the result to be order-independent.
func (e *Emitter) Combiner(kind, keyArity int, combine func(a, b int64) int64) *Combiner {
	if keyArity < 1 {
		panic("engine: combiner key arity must be positive")
	}
	if combine == nil {
		panic("engine: combiner needs a combine function")
	}
	return &Combiner{e: e, kind: kind, keyArity: keyArity, combine: combine,
		tables: make(map[int]*combTable)}
}

func combHashKey(key []int64) uint64 {
	return hashing.CombineSlice(0x243f_6a88_85a3_08d3, key)
}

// Add routes one (key..., annotation) row toward dest, combining it into an
// already-pending row with the same key when one exists.
func (cb *Combiner) Add(dest int, row []int64) {
	if len(row) != cb.keyArity+1 {
		panic(fmt.Sprintf("engine: combiner row of %d values, want key arity %d + 1", len(row), cb.keyArity))
	}
	if cb.flushed {
		panic("engine: combiner used after Flush")
	}
	cb.raw++
	t := cb.tables[dest]
	if t == nil {
		t = &combTable{chains: make(map[uint64][]int32)}
		cb.tables[dest] = t
		cb.touched = append(cb.touched, dest)
	}
	w := cb.keyArity + 1
	key := row[:cb.keyArity]
	h := combHashKey(key)
	for _, ri := range t.chains[h] {
		base := int(ri) * w
		match := true
		for c, v := range key {
			if t.rows[base+c] != v {
				match = false
				break
			}
		}
		if match {
			t.rows[base+cb.keyArity] = cb.combine(t.rows[base+cb.keyArity], row[cb.keyArity])
			return
		}
	}
	t.chains[h] = append(t.chains[h], int32(len(t.rows)/w))
	t.rows = append(t.rows, row...)
}

// Flush emits every destination's combined rows as one batch (first-touch
// destination order, first-insertion row order) and returns the number of
// rows accepted and the number actually shipped — the difference, times the
// row width and the cluster's bits per value, is exactly the communication
// the pre-shuffle combining saved. Flush must be called before the round
// function returns; the combiner is dead afterwards.
func (cb *Combiner) Flush() (raw, sent int) {
	if cb.flushed {
		panic("engine: combiner flushed twice")
	}
	cb.flushed = true
	for _, dest := range cb.touched {
		t := cb.tables[dest]
		cb.e.EmitBatch(dest, cb.kind, cb.keyArity+1, t.rows)
		sent += len(t.rows) / (cb.keyArity + 1)
	}
	return cb.raw, sent
}
