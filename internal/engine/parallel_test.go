package engine

import (
	"sync/atomic"
	"testing"
)

func TestParallelForRunsAll(t *testing.T) {
	var sum int64
	ParallelFor(100, func(i int) { atomic.AddInt64(&sum, int64(i)) })
	if sum != 4950 {
		t.Fatalf("sum=%d want 4950", sum)
	}
}

func TestParallelForSmallN(t *testing.T) {
	hits := make([]bool, 1)
	ParallelFor(1, func(i int) { hits[i] = true })
	if !hits[0] {
		t.Error("n=1 not executed")
	}
	ParallelFor(0, func(i int) { t.Error("n=0 must not call f") })
}

func TestParallelForPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("panic should propagate to the caller")
		}
	}()
	ParallelFor(50, func(i int) {
		if i == 25 {
			panic("boom")
		}
	})
}
