package engine

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestParallelForRunsAll(t *testing.T) {
	var sum int64
	ParallelFor(100, func(i int) { atomic.AddInt64(&sum, int64(i)) })
	if sum != 4950 {
		t.Fatalf("sum=%d want 4950", sum)
	}
}

func TestParallelForSmallN(t *testing.T) {
	hits := make([]bool, 1)
	ParallelFor(1, func(i int) { hits[i] = true })
	if !hits[0] {
		t.Error("n=1 not executed")
	}
	ParallelFor(0, func(i int) { t.Error("n=0 must not call f") })
}

func TestParallelForPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("panic should propagate to the caller")
		}
	}()
	ParallelFor(50, func(i int) {
		if i == 25 {
			panic("boom")
		}
	})
}

func TestParallelForWorkersIdsInRange(t *testing.T) {
	workers := runtime.GOMAXPROCS(0)
	const n = 200
	seen := make([]int32, n)
	ParallelForWorkers(n, func(i, w int) {
		if w < 0 || w >= workers {
			t.Errorf("worker id %d out of [0,%d)", w, workers)
		}
		atomic.AddInt32(&seen[i], 1)
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("item %d executed %d times", i, c)
		}
	}
}

// TestParallelForWorkersSequentialPerWorker pins the property per-worker
// scratch reuse relies on: items assigned to one worker id never run
// concurrently, so unsynchronized per-worker state is safe.
func TestParallelForWorkersSequentialPerWorker(t *testing.T) {
	workers := runtime.GOMAXPROCS(0)
	busy := make([]atomic.Bool, workers)
	ParallelForWorkers(500, func(i, w int) {
		if !busy[w].CompareAndSwap(false, true) {
			t.Errorf("worker %d entered concurrently", w)
		}
		busy[w].Store(false)
	})
}

func TestClusterComputeTimesPhases(t *testing.T) {
	c := NewCluster(4, 8)
	defer c.Release()
	c.Seed(0, 0, []int64{1, 2})
	c.Round("r", func(s int, inbox *Inbox, emit *Emitter) {
		inbox.Each(func(kind int, tu []int64) { emit.EmitTuple((s+1)%4, kind, tu) })
	})
	c.Compute(func(server, worker int) {})
	compute, comm := c.PhaseSeconds()
	if compute <= 0 {
		t.Errorf("compute seconds not accounted: %g", compute)
	}
	if comm <= 0 {
		t.Errorf("comm seconds not accounted: %g", comm)
	}
}
