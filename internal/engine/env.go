package engine

import (
	"context"

	"mpcquery/internal/obs"
)

// Env bundles the per-run execution environment a strategy threads down to
// every cluster it creates: the delivery transport (nil = in-process), the
// trace sink (nil = tracing disabled), and the request context (nil =
// unbounded). Strategies receive one Env at the API boundary and pass it
// unchanged to NewClusterEnv, so a new environment concern never changes
// their signatures again.
type Env struct {
	Net   Transport
	Trace *obs.Trace

	// Ctx bounds distributed round delivery: the transport honors its
	// cancellation/deadline while waiting on remote frames. Local compute
	// is not preempted — rounds are short; the wire waits are what can
	// wedge.
	Ctx context.Context

	// Streaming enables chunked streaming rounds on every cluster of the
	// run (see stream.go): pipelined mid-emission flushes in-process,
	// chunk-capped wire frames over a transport. StreamChunk sets the
	// chunk size in tuples; <= 0 selects DefaultStreamChunk. Bit
	// accounting, fingerprints, and trace structure are identical to
	// barrier mode — only wall-clock and peak memory change.
	Streaming   bool
	StreamChunk int

	// Sink, when non-nil, receives the query output as row-major chunks
	// instead of a materialized relation (Report.Output stays nil) — the
	// escape hatch for outputs larger than memory. Honored by the plain
	// join strategies' computation phase, in both modes, so a sink never
	// changes the fingerprinted accounting.
	Sink OutputSink

	// Mem, when non-nil, collects the run's engine-buffer high-water
	// across all clusters — the deterministic peak-memory metric behind
	// Report.PeakBufferedBytes.
	Mem *MemGauge
}

// NewClusterEnv creates a cluster wired to the environment: delivery goes
// through env.Net (nil = in-process, as NewClusterNet) and, when env.Trace
// is set, the cluster registers itself with the trace and records a span
// per round. Cluster registration order is the trace's cluster identity;
// strategies create clusters deterministically (seeded control flow), so
// traces of seeded runs are structurally reproducible.
func NewClusterEnv(env Env, p, bitsPerValue int) *Cluster {
	c := NewClusterNet(env.Net, p, bitsPerValue)
	c.tr = env.Trace.NewCluster(p, bitsPerValue)
	c.runCtx = env.Ctx
	c.runTrace = env.Trace
	if env.Streaming {
		chunk := env.StreamChunk
		if chunk <= 0 {
			chunk = DefaultStreamChunk
		}
		c.SetStreamChunk(chunk)
	}
	c.mem = env.Mem
	return c
}

// Trace returns the cluster's trace sink, nil when tracing is disabled.
// The nil sink is valid: all its observation methods are no-ops.
func (c *Cluster) Trace() *obs.ClusterTrace { return c.tr }

// Engine totals in the process-wide registry. Bumped with one atomic op
// per round/cluster — never per tuple — so the always-on cost is
// negligible and allocation-free.
var (
	obsClustersTotal   = obs.Default().Counter("mpc_engine_clusters_total")
	obsRoundsTotal     = obs.Default().Counter("mpc_engine_rounds_total")
	obsRoundAborts     = obs.Default().Counter("mpc_engine_round_aborts_total")
	obsRecvTuplesTotal   = obs.Default().Counter("mpc_engine_recv_tuples_total")
	obsRecvBitsTotal     = obs.Default().Gauge("mpc_engine_recv_bits_total")
	obsChunkFlushesTotal = obs.Default().Counter("mpc_engine_chunk_flushes_total")
)
