package engine

import (
	"fmt"
	"math/rand"
	"testing"
)

// inboxSnapshot flattens an inbox to a comparable string: every tuple, in
// delivery order, with its kind — the engine's full observable content.
func inboxSnapshot(ib *Inbox) string {
	s := ""
	for i := 0; i < ib.NumTuples(); i++ {
		kind, row := ib.Tuple(i)
		s += fmt.Sprintf("k%d%v;", kind, row)
	}
	return s
}

// runScripted drives a deterministic random emission script (seeded per
// round and server, mixing unicast tuples, batches, broadcasts, and
// broadcast batches) through nRounds rounds of a cluster and returns the
// per-round stats plus every inbox's final snapshot.
func runScripted(c *Cluster, p, nRounds int) (stats []RoundStats, inboxes []string) {
	for r := 0; r < nRounds; r++ {
		st := c.Round("scripted", func(s int, _ *Inbox, emit *Emitter) {
			rng := rand.New(rand.NewSource(int64(r*100 + s)))
			for i := 0; i < 30; i++ {
				kind := rng.Intn(3)
				switch rng.Intn(4) {
				case 0:
					emit.EmitTuple(rng.Intn(p), kind, []int64{int64(s), int64(i)})
				case 1:
					vals := make([]int64, 0, 12)
					for j := 0; j < 2+rng.Intn(5); j++ {
						vals = append(vals, int64(s), int64(i*10+j))
					}
					emit.EmitBatch(rng.Intn(p), kind, 2, vals)
				case 2:
					emit.EmitTuple(Broadcast, kind, []int64{int64(s), int64(i), 7})
				case 3:
					emit.EmitBatch(Broadcast, kind, 3, []int64{int64(s), int64(i), 1, int64(s), int64(i), 2})
				}
			}
		})
		stats = append(stats, st)
	}
	for s := 0; s < p; s++ {
		inboxes = append(inboxes, inboxSnapshot(c.Inbox(s)))
	}
	return stats, inboxes
}

// TestPipelinedDeliveryMatchesBarrier is the engine-level differential: the
// same scripted emissions, run through barrier delivery and through
// pipelined streaming at several chunk sizes, must produce byte-identical
// inbox contents (tuples, kinds, order) and identical round accounting
// (bits, tuples, max load). This pins the delivery-order contract — per
// destination: senders ascending; within a sender: emission order, then
// its broadcasts — independently of when chunks physically flush.
func TestPipelinedDeliveryMatchesBarrier(t *testing.T) {
	const p, nRounds = 5, 3
	ref := NewCluster(p, 10)
	defer ref.Release()
	wantStats, wantInboxes := runScripted(ref, p, nRounds)

	for _, chunk := range []int{1, 3, 7, 1 << 20} {
		c := NewCluster(p, 10)
		c.SetStreamChunk(chunk)
		gotStats, gotInboxes := runScripted(c, p, nRounds)
		for r := range wantStats {
			if gotStats[r].TotalRecvBits != wantStats[r].TotalRecvBits ||
				gotStats[r].MaxRecvBits != wantStats[r].MaxRecvBits ||
				gotStats[r].TotalRecvTuples != wantStats[r].TotalRecvTuples {
				t.Errorf("chunk=%d round %d stats = %+v, want %+v", chunk, r, gotStats[r], wantStats[r])
			}
		}
		for s := range wantInboxes {
			if gotInboxes[s] != wantInboxes[s] {
				t.Errorf("chunk=%d server %d inbox diverged\n got %s\nwant %s", chunk, s, gotInboxes[s], wantInboxes[s])
			}
		}
		c.Release()
	}
}

// TestCombinerChunkBoundaryOrder pins a regression the streaming rework
// could have introduced: the combiner's first-touch insertion order for
// same-key merges must survive the chunked flush even when the merged
// batch spans a chunk boundary. Five distinct keys flush as chunks of two;
// keys 10 and 30 were re-Added after other keys — their merged rows must
// still sit at their first-touch positions, one row per key.
func TestCombinerChunkBoundaryOrder(t *testing.T) {
	run := func(chunk int) *Cluster {
		c := NewCluster(2, 8)
		if chunk > 0 {
			c.SetStreamChunk(chunk)
		}
		c.Round("combine", func(s int, _ *Inbox, emit *Emitter) {
			if s != 0 {
				return
			}
			cb := emit.Combiner(3, 1, func(a, b int64) int64 { return a + b })
			cb.Add(1, []int64{10, 1})
			cb.Add(1, []int64{20, 2})
			cb.Add(1, []int64{30, 3})
			cb.Add(1, []int64{40, 4})
			cb.Add(1, []int64{10, 100}) // merge across what becomes a chunk boundary
			cb.Add(1, []int64{50, 5})
			cb.Add(1, []int64{30, 300})
			cb.Flush()
		})
		return c
	}

	want := [][2]int64{{10, 101}, {20, 2}, {30, 303}, {40, 4}, {50, 5}}
	for _, chunk := range []int{0, 1, 2, 3} {
		c := run(chunk)
		ib := c.Inbox(1)
		if ib.NumTuples() != len(want) {
			t.Fatalf("chunk=%d: %d rows, want %d", chunk, ib.NumTuples(), len(want))
		}
		for i, w := range want {
			kind, row := ib.Tuple(i)
			if kind != 3 || row[0] != w[0] || row[1] != w[1] {
				t.Errorf("chunk=%d row %d = kind %d %v, want kind 3 %v", chunk, i, kind, row, w)
			}
		}
		c.Release()
	}
}

// TestMemGauge covers the gauge's high-water semantics and nil safety.
func TestMemGauge(t *testing.T) {
	var g *MemGauge
	g.Observe(100) // nil-safe no-op
	g = &MemGauge{}
	g.Observe(10)
	g.Observe(50)
	g.Observe(20)
	if g.Peak() != 50 {
		t.Fatalf("Peak = %d, want 50", g.Peak())
	}
}

// TestSetStreamChunkValidation: negative chunk sizes are a caller bug.
func TestSetStreamChunkValidation(t *testing.T) {
	c := NewCluster(2, 8)
	defer c.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("SetStreamChunk(-1) did not panic")
		}
	}()
	c.SetStreamChunk(-1)
}

// TestAppendChunkValidation: malformed chunk appends are caller bugs and
// must fail loudly, not corrupt the arena.
func TestAppendChunkValidation(t *testing.T) {
	ib := &Inbox{}
	for _, bad := range []func(){
		func() { ib.AppendChunk(0, 0, 0, 0, []int64{1}, false) },     // arity < 1
		func() { ib.AppendChunk(0, 0, 0, 2, []int64{1, 2, 3}, false) }, // ragged vals
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("malformed AppendChunk did not panic")
				}
			}()
			bad()
		}()
	}
}
