// Package advisor turns the paper's bounds into a planning service: given a
// query, statistics and a server count, it enumerates executable strategies
// (one-round HyperCube, skew-oblivious HyperCube, multi-round plans over an
// ε grid) with their predicted rounds and loads — the rounds/communication
// tradeoff of Table 3 — and recommends the cheapest strategy under a round
// budget.
package advisor

import (
	"fmt"
	"math"
	"sort"

	"mpcquery/internal/bounds"
	"mpcquery/internal/data"
	"mpcquery/internal/multiround"
	"mpcquery/internal/packing"
	"mpcquery/internal/query"
)

// Option is one executable strategy with its predicted cost.
type Option struct {
	Name              string
	Rounds            int
	PredictedLoadBits float64
	SpaceExponent     float64 // ε such that load ≈ M/p^{1−ε}
	Plan              *multiround.Plan
	SkewRobust        bool // worst-case guarantee over all data distributions
}

func (o Option) String() string {
	return fmt.Sprintf("%s: %d round(s), predicted load %.4g bits (ε=%.3f)",
		o.Name, o.Rounds, o.PredictedLoadBits, o.SpaceExponent)
}

// Advise enumerates the strategies for a connected query q with per-atom
// statistics M (bits) on p servers. Options are sorted by round count, and
// within equal rounds by predicted load; dominated options (same or more
// rounds and same or more load) are pruned.
func Advise(q *query.Query, M []float64, p int) []Option {
	if !q.IsConnected() {
		panic("advisor: query must be connected")
	}
	maxM := 0.0
	for _, m := range M {
		if m > maxM {
			maxM = m
		}
	}
	pf := float64(p)
	var opts []Option

	// One-round HyperCube, skew-free optimal.
	sh := packing.ShareExponents(q, M, pf)
	load := sh.Load()
	opts = append(opts, Option{
		Name:              "1-round HyperCube (LP 10)",
		Rounds:            1,
		PredictedLoadBits: load,
		SpaceExponent:     spaceExp(load, maxM, pf),
	})

	// One-round skew-oblivious.
	shO := packing.SkewShareExponents(q, M, pf)
	loadO := shO.Load()
	opts = append(opts, Option{
		Name:              "1-round HyperCube, skew-oblivious (LP 18)",
		Rounds:            1,
		PredictedLoadBits: loadO,
		SpaceExponent:     spaceExp(loadO, maxM, pf),
		SkewRobust:        true,
	})

	// Multi-round plans over the ε grid; each level's load is M/p^{1−ε}
	// times the number of parallel groups at the widest level.
	for _, eps := range []float64{0, 0.25, 0.5, 2.0 / 3, 0.75} {
		plan := multiround.GreedyPlan(q, eps)
		r := plan.Rounds()
		if r <= 1 {
			continue // covered by the one-round options
		}
		opts = append(opts, Option{
			Name:              fmt.Sprintf("%d-round plan (ε=%.2f)", r, eps),
			Rounds:            r,
			PredictedLoadBits: maxM / math.Pow(pf, 1-eps),
			SpaceExponent:     eps,
			Plan:              plan,
		})
	}

	sort.Slice(opts, func(i, j int) bool {
		if opts[i].Rounds != opts[j].Rounds {
			return opts[i].Rounds < opts[j].Rounds
		}
		return opts[i].PredictedLoadBits < opts[j].PredictedLoadBits
	})
	return prune(opts)
}

func spaceExp(load, maxM, p float64) float64 {
	if load <= 0 || maxM <= 0 {
		return 0
	}
	// load = M/p^{1−ε}  =>  ε = 1 − log_p(M/load).
	return 1 - math.Log(maxM/load)/math.Log(p)
}

// prune removes options dominated by an earlier one (fewer-or-equal rounds
// and smaller-or-equal load), keeping skew-robust options regardless.
func prune(opts []Option) []Option {
	var out []Option
	bestLoad := math.Inf(1)
	for _, o := range opts {
		if o.SkewRobust || o.PredictedLoadBits < bestLoad-1e-9 {
			out = append(out, o)
			if !o.SkewRobust && o.PredictedLoadBits < bestLoad {
				bestLoad = o.PredictedLoadBits
			}
		}
	}
	return out
}

// Best returns the lowest-load option using at most maxRounds rounds
// (0 means unlimited), or false when none fits.
func Best(opts []Option, maxRounds int) (Option, bool) {
	best := Option{PredictedLoadBits: math.Inf(1)}
	found := false
	for _, o := range opts {
		if maxRounds > 0 && o.Rounds > maxRounds {
			continue
		}
		if o.PredictedLoadBits < best.PredictedLoadBits {
			best = o
			found = true
		}
	}
	return best, found
}

// RoundBounds summarizes what the paper's theory says about q at ε=0:
// the Lemma 5.4 upper bound and, for chains/cycles/tree-like queries,
// the matching lower bounds.
func RoundBounds(q *query.Query, eps float64) (ub int, lb int) {
	if bounds.InGammaOne(q, eps) {
		return 1, 1
	}
	ub = bounds.RoundsUB(q, eps)
	lb = 1
	if q.IsTreeLike() {
		lb = bounds.TreeLikeRoundsLB(q, eps)
	}
	return ub, lb
}

// AdviseDatabase is Advise with statistics taken from an actual database.
func AdviseDatabase(q *query.Query, db *data.Database, p int) []Option {
	M := make([]float64, q.NumAtoms())
	for j, a := range q.Atoms {
		M[j] = db.Get(a.Name).SizeBits(db.N)
	}
	return Advise(q, M, p)
}
