package advisor

import (
	"math"
	"strings"
	"testing"

	"mpcquery/internal/query"
)

func equalStats(q *query.Query, m float64) []float64 {
	out := make([]float64, q.NumAtoms())
	for j := range out {
		out[j] = m
	}
	return out
}

func TestAdviseTriangle(t *testing.T) {
	q := query.Triangle()
	M := equalStats(q, 1<<24)
	opts := Advise(q, M, 64)
	if len(opts) == 0 {
		t.Fatal("no options")
	}
	// First option: 1-round HC at M/p^{2/3}.
	first := opts[0]
	if first.Rounds != 1 {
		t.Fatalf("first option rounds=%d", first.Rounds)
	}
	want := float64(1<<24) / math.Pow(64, 2.0/3)
	if math.Abs(first.PredictedLoadBits-want)/want > 0.01 {
		t.Errorf("triangle 1-round load=%v want %v", first.PredictedLoadBits, want)
	}
	// A skew-robust option must be present.
	robust := false
	for _, o := range opts {
		if o.SkewRobust {
			robust = true
		}
	}
	if !robust {
		t.Error("missing skew-oblivious option")
	}
}

func TestAdviseChainTradeoff(t *testing.T) {
	q := query.Chain(16)
	M := equalStats(q, 1<<24)
	opts := Advise(q, M, 64)
	// Loads must decrease as rounds increase (that's the tradeoff).
	var prevRounds int
	var prevLoad = math.Inf(1)
	seen2, seen4 := false, false
	for _, o := range opts {
		if o.SkewRobust {
			continue
		}
		if o.Rounds > prevRounds && o.PredictedLoadBits >= prevLoad {
			t.Errorf("non-dominating option survived pruning: %v", o)
		}
		if o.Rounds >= prevRounds {
			prevRounds, prevLoad = o.Rounds, o.PredictedLoadBits
		}
		if o.Rounds == 2 {
			seen2 = true
		}
		if o.Rounds == 4 {
			seen4 = true
		}
	}
	if !seen2 || !seen4 {
		t.Errorf("expected 2-round (ε=1/2) and 4-round (ε=0) plans for L16: %v", opts)
	}
}

func TestBestUnderBudget(t *testing.T) {
	q := query.Chain(16)
	M := equalStats(q, 1<<24)
	opts := Advise(q, M, 64)
	one, ok := Best(opts, 1)
	if !ok || one.Rounds != 1 {
		t.Fatalf("budget 1: %v ok=%v", one, ok)
	}
	unlimited, ok := Best(opts, 0)
	if !ok {
		t.Fatal("no unlimited best")
	}
	if unlimited.PredictedLoadBits >= one.PredictedLoadBits {
		t.Error("more rounds should buy lower load on L16")
	}
	if _, ok := Best(nil, 3); ok {
		t.Error("empty options should report none")
	}
}

func TestRoundBounds(t *testing.T) {
	if ub, lb := RoundBounds(query.Star(4), 0); ub != 1 || lb != 1 {
		t.Errorf("star bounds: %d %d", ub, lb)
	}
	ub, lb := RoundBounds(query.Chain(8), 0)
	if lb != 3 || ub < lb {
		t.Errorf("L8 bounds: ub=%d lb=%d (want lb=3)", ub, lb)
	}
	ubC, lbC := RoundBounds(query.Cycle(6), 0)
	if ubC != 3 || lbC != 1 {
		t.Errorf("C6 bounds: ub=%d lb=%d", ubC, lbC)
	}
}

func TestOptionString(t *testing.T) {
	o := Option{Name: "x", Rounds: 2, PredictedLoadBits: 100, SpaceExponent: 0.5}
	if s := o.String(); !strings.Contains(s, "2 round") {
		t.Errorf("string: %s", s)
	}
}
