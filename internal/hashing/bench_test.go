package hashing

import "testing"

func BenchmarkBin(b *testing.B) {
	f := NewFamily(1, 3)
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += f.Bin(i%3, int64(i), 16)
	}
	_ = sink
}

// BenchmarkDestinations measures subcube enumeration for a binary atom on a
// 3-dimensional grid (the routing inner loop of the HyperCube shuffle).
func BenchmarkDestinations(b *testing.B) {
	g := NewGrid([]int{4, 4, 4})
	count := 0
	for i := 0; i < b.N; i++ {
		g.Destinations([]int{0, 1}, []int{i % 4, (i + 1) % 4}, func(s int) { count++ })
	}
	_ = count
}
