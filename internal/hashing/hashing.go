// Package hashing provides the seeded per-dimension hash functions and the
// hypercube coordinate grid used by the HyperCube algorithm (Section 3.1):
// servers are points of [p1]×…×[pk], and a tuple t of relation Sj is routed
// to the destination subcube D(t) = {y | ∀m: h_{i_m}(t[i_m]) = y_{i_m}}.
//
// The paper assumes perfectly random (strongly universal) hash functions;
// we substitute a SplitMix64 finalizer keyed per (seed, dimension), whose
// balls-in-bins tails are validated empirically against the Appendix A
// bounds in package ballsbins.
package hashing

import "fmt"

// Family is a collection of independent hash functions, one per dimension
// (query variable), all derived from a single seed.
type Family struct {
	seeds []uint64
}

// NewFamily derives dims independent hash functions from seed.
func NewFamily(seed int64, dims int) *Family {
	f := &Family{seeds: make([]uint64, dims)}
	s := uint64(seed)
	for i := range f.seeds {
		s += 0x9e3779b97f4a7c15
		f.seeds[i] = mix64(s)
	}
	return f
}

// Hash returns the full 64-bit hash of value v under dimension dim's
// function.
func (f *Family) Hash(dim int, v int64) uint64 {
	return mix64(uint64(v) ^ f.seeds[dim])
}

// Bin returns h_dim(v) reduced to [0, share) — the coordinate of v along
// dimension dim in a grid with that many shares.
func (f *Family) Bin(dim int, v int64, share int) int {
	if share <= 1 {
		return 0
	}
	// Multiply-shift reduction avoids modulo bias for small share counts.
	h := f.Hash(dim, v)
	return int((h >> 32) * uint64(share) >> 32)
}

// mix64 is the SplitMix64 finalizer: a fast, well-distributed 64-bit mixer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 exposes the SplitMix64 finalizer for hash-table keying elsewhere in
// the tree (the local-join kernel's open-addressed indexes, relation content
// identities): a stateless, allocation-free 64-bit mixer.
func Mix64(z uint64) uint64 { return mix64(z) }

// Combine folds one more 64-bit value into a running hash. Chaining Combine
// over a sequence gives an order-sensitive digest suitable for multi-column
// join keys and content fingerprints.
func Combine(h, v uint64) uint64 {
	return mix64(h ^ (v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)))
}

// CombineSlice folds a whole []int64 key into a running hash starting from
// seed — the shared shape of every composite-key hash in the tree (group
// keys, combiner keys, routing keys). Distinct call sites keep distinct
// seeds so their hash spaces stay independent.
func CombineSlice(seed uint64, vals []int64) uint64 {
	h := seed
	for _, v := range vals {
		h = Combine(h, uint64(v))
	}
	return h
}

// Grid maps between linear server ids [0,p) and coordinate vectors of the
// k-dimensional hypercube [p1]×…×[pk], where p = Πᵢ pᵢ.
type Grid struct {
	Shares  []int
	strides []int
	p       int
}

// NewGrid builds a grid with the given per-dimension shares (each ≥ 1).
func NewGrid(shares []int) *Grid {
	p := 1
	strides := make([]int, len(shares))
	for i := len(shares) - 1; i >= 0; i-- {
		if shares[i] < 1 {
			panic(fmt.Sprintf("hashing: share %d of dimension %d", shares[i], i))
		}
		strides[i] = p
		p *= shares[i]
	}
	return &Grid{Shares: append([]int(nil), shares...), strides: strides, p: p}
}

// P returns the number of servers Πᵢ pᵢ covered by the grid.
func (g *Grid) P() int { return g.p }

// ServerOf linearizes a coordinate vector.
func (g *Grid) ServerOf(coords []int) int {
	s := 0
	for i, c := range coords {
		if c < 0 || c >= g.Shares[i] {
			panic(fmt.Sprintf("hashing: coordinate %d out of range for dimension %d (share %d)", c, i, g.Shares[i]))
		}
		s += c * g.strides[i]
	}
	return s
}

// CoordsOf writes the coordinate vector of a server id into out (which must
// have length len(Shares)) and returns it.
func (g *Grid) CoordsOf(server int, out []int) []int {
	for i := range g.Shares {
		out[i] = server / g.strides[i] % g.Shares[i]
	}
	return out
}

// Destinations calls yield for every server in the destination subcube
// determined by fixing dimensions dims[i] to coordinates bins[i] and
// ranging over all other dimensions — the set D(t) of equation (9).
func (g *Grid) Destinations(dims, bins []int, yield func(server int)) {
	base := 0
	fixed := make([]bool, len(g.Shares))
	for i, d := range dims {
		// A dimension may be fixed twice (repeated variable in an atom);
		// if the two bins disagree the subcube is empty.
		if fixed[d] {
			prev := 0 // recover previously set coordinate
			prev = (base / g.strides[d]) % g.Shares[d]
			if prev != bins[i] {
				return
			}
			continue
		}
		fixed[d] = true
		base += bins[i] * g.strides[d]
	}
	var free []int
	for i, f := range fixed {
		if !f && g.Shares[i] > 1 {
			free = append(free, i)
		}
	}
	// Odometer over the free dimensions.
	counters := make([]int, len(free))
	for {
		s := base
		for i, d := range free {
			s += counters[i] * g.strides[d]
		}
		yield(s)
		i := 0
		for ; i < len(free); i++ {
			counters[i]++
			if counters[i] < g.Shares[free[i]] {
				break
			}
			counters[i] = 0
		}
		if i == len(free) {
			return
		}
	}
}

// SubcubeSize returns |D(t)| for a tuple fixing the given dimensions: the
// product of the shares of all unfixed dimensions (the replication factor
// of the routed tuple).
func (g *Grid) SubcubeSize(dims []int) int {
	fixed := make([]bool, len(g.Shares))
	for _, d := range dims {
		fixed[d] = true
	}
	size := 1
	for i, f := range fixed {
		if !f {
			size *= g.Shares[i]
		}
	}
	return size
}
