package hashing

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFamilyDeterministicAndIndependent(t *testing.T) {
	f1 := NewFamily(42, 3)
	f2 := NewFamily(42, 3)
	f3 := NewFamily(43, 3)
	if f1.Hash(0, 7) != f2.Hash(0, 7) {
		t.Error("same seed must give same hashes")
	}
	if f1.Hash(0, 7) == f3.Hash(0, 7) {
		t.Error("different seeds should give different hashes")
	}
	if f1.Hash(0, 7) == f1.Hash(1, 7) {
		t.Error("dimensions should hash independently")
	}
}

func TestBinRange(t *testing.T) {
	f := NewFamily(1, 2)
	rng := rand.New(rand.NewSource(1))
	check := func(v int64, share int) bool {
		if share < 1 {
			share = 1
		}
		share = share%100 + 1
		b := f.Bin(0, v, share)
		return b >= 0 && b < share
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1000, Rand: rng}); err != nil {
		t.Error(err)
	}
	if f.Bin(0, 12345, 1) != 0 {
		t.Error("share=1 must map everything to bin 0")
	}
}

func TestBinBalance(t *testing.T) {
	f := NewFamily(99, 1)
	const share = 16
	counts := make([]int, share)
	const n = 160000
	for v := int64(0); v < n; v++ {
		counts[f.Bin(0, v, share)]++
	}
	want := n / share
	for b, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("bin %d: %d items, want ≈%d", b, c, want)
		}
	}
}

func TestGridRoundTrip(t *testing.T) {
	g := NewGrid([]int{4, 3, 2})
	if g.P() != 24 {
		t.Fatalf("P=%d want 24", g.P())
	}
	coords := make([]int, 3)
	seen := make(map[int]bool)
	for a := 0; a < 4; a++ {
		for b := 0; b < 3; b++ {
			for c := 0; c < 2; c++ {
				s := g.ServerOf([]int{a, b, c})
				if s < 0 || s >= 24 || seen[s] {
					t.Fatalf("bad/duplicate server %d for (%d,%d,%d)", s, a, b, c)
				}
				seen[s] = true
				got := g.CoordsOf(s, coords)
				if got[0] != a || got[1] != b || got[2] != c {
					t.Fatalf("CoordsOf(%d)=%v want (%d,%d,%d)", s, got, a, b, c)
				}
			}
		}
	}
}

func TestDestinationsSubcube(t *testing.T) {
	g := NewGrid([]int{4, 4, 4})
	// Fix dimension 0 to 2 and dimension 1 to 3: 4 destinations (free dim 2).
	var got []int
	g.Destinations([]int{0, 1}, []int{2, 3}, func(s int) { got = append(got, s) })
	if len(got) != 4 {
		t.Fatalf("destinations=%d want 4", len(got))
	}
	coords := make([]int, 3)
	for _, s := range got {
		g.CoordsOf(s, coords)
		if coords[0] != 2 || coords[1] != 3 {
			t.Errorf("server %d coords %v: fixed dims wrong", s, coords)
		}
	}
	if g.SubcubeSize([]int{0, 1}) != 4 {
		t.Errorf("SubcubeSize=%d want 4", g.SubcubeSize([]int{0, 1}))
	}
}

func TestDestinationsAllFree(t *testing.T) {
	g := NewGrid([]int{2, 3})
	count := 0
	g.Destinations(nil, nil, func(s int) { count++ })
	if count != 6 {
		t.Errorf("broadcast subcube size=%d want 6", count)
	}
}

func TestDestinationsRepeatedDim(t *testing.T) {
	g := NewGrid([]int{4, 4})
	// Same dimension fixed twice with equal bins: one free dim remains.
	count := 0
	g.Destinations([]int{0, 0}, []int{1, 1}, func(s int) { count++ })
	if count != 4 {
		t.Errorf("consistent repeat: %d want 4", count)
	}
	// Conflicting bins: empty subcube.
	count = 0
	g.Destinations([]int{0, 0}, []int{1, 2}, func(s int) { count++ })
	if count != 0 {
		t.Errorf("conflicting repeat: %d want 0", count)
	}
}

func TestDestinationsCoverGrid(t *testing.T) {
	// Over all values v, destinations with dim 0 fixed by hash partition the
	// grid: each server appears for exactly the v values hashing to its
	// coordinate. Sanity-check totals.
	g := NewGrid([]int{3, 2})
	f := NewFamily(5, 2)
	counts := make([]int, g.P())
	for v := int64(0); v < 300; v++ {
		g.Destinations([]int{0}, []int{f.Bin(0, v, 3)}, func(s int) { counts[s]++ })
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 600 { // 300 values × subcube size 2
		t.Errorf("total deliveries=%d want 600", total)
	}
}
