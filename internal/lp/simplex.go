// Package lp provides a small, dependency-free linear-programming toolkit:
// a dense two-phase simplex solver with Bland's anti-cycling rule, and a
// Gaussian-elimination linear-system solver.
//
// The paper's share optimization (LP (10)), the skew-oblivious share LP (18),
// the fractional edge packing/cover LPs of Section 2.2, and the extreme-point
// enumeration of Section 3.3 are all tiny dense LPs, for which this solver is
// exact enough (tolerances around 1e-9 on well-scaled inputs).
package lp

import (
	"fmt"
	"math"
)

// Op is a constraint comparison operator.
type Op int

// Constraint operators.
const (
	LE Op = iota // Σ aᵢxᵢ ≤ b
	GE           // Σ aᵢxᵢ ≥ b
	EQ           // Σ aᵢxᵢ = b
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// Constraint is a single linear constraint over the problem variables.
// Coeffs may be shorter than NumVars; missing coefficients are zero.
type Constraint struct {
	Coeffs []float64
	Op     Op
	RHS    float64
}

// Problem is a linear program over n non-negative variables.
type Problem struct {
	NumVars     int
	Objective   []float64
	Maximize    bool
	Constraints []Constraint
}

// Status reports the outcome of Solve.
type Status int

// Solver outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return "unknown"
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status Status
	X      []float64 // length NumVars; valid only when Status == Optimal
	Value  float64   // objective value in the problem's own sense
}

const eps = 1e-9

// Solve runs two-phase simplex on p. Variables are implicitly non-negative.
func Solve(p *Problem) Solution {
	n := p.NumVars
	m := len(p.Constraints)
	if n == 0 {
		return Solution{Status: Optimal, X: nil, Value: 0}
	}

	// Count auxiliary columns.
	numSlack := 0
	for _, c := range p.Constraints {
		if c.Op != EQ {
			numSlack++
		}
	}
	numArt := 0
	// Rows with GE/EQ (after sign normalization) need artificials. We decide
	// after normalizing signs; upper bound m.
	total := n + numSlack + m // n originals, slacks/surplus, artificials (upper bound)

	// tab has m rows for constraints and one cost row; column total is the
	// RHS column.
	tab := make([][]float64, m+1)
	for i := range tab {
		tab[i] = make([]float64, total+1)
	}
	basis := make([]int, m)
	artCols := make(map[int]bool)

	slackAt := n
	artAt := n + numSlack
	for i, c := range p.Constraints {
		row := tab[i]
		for j, v := range c.Coeffs {
			if j >= n {
				panic(fmt.Sprintf("lp: constraint %d has %d coeffs for %d vars", i, len(c.Coeffs), n))
			}
			row[j] = v
		}
		rhs := c.RHS
		op := c.Op
		if rhs < 0 {
			for j := 0; j < n; j++ {
				row[j] = -row[j]
			}
			rhs = -rhs
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		row[total] = rhs
		switch op {
		case LE:
			row[slackAt] = 1
			basis[i] = slackAt
			slackAt++
		case GE:
			row[slackAt] = -1
			slackAt++
			row[artAt] = 1
			basis[i] = artAt
			artCols[artAt] = true
			artAt++
			numArt++
		case EQ:
			row[artAt] = 1
			basis[i] = artAt
			artCols[artAt] = true
			artAt++
			numArt++
		}
	}

	// Phase 1: minimize sum of artificials.
	if numArt > 0 {
		cost := tab[m]
		for j := range cost {
			cost[j] = 0
		}
		for col := range artCols {
			cost[col] = 1
		}
		// Zero out basic artificial columns in the cost row.
		for i, b := range basis {
			if artCols[b] {
				addRow(cost, tab[i], -1)
			}
		}
		if status := iterate(tab, basis, total, artCols); status == Unbounded {
			// Phase-1 objective is bounded below by 0; unbounded is impossible
			// unless numerics break down. Treat as infeasible.
			return Solution{Status: Infeasible}
		}
		if -tab[m][total] > 1e-7 {
			return Solution{Status: Infeasible}
		}
		// Drive any artificial still in the basis out (degenerate at zero).
		for i, b := range basis {
			if !artCols[b] {
				continue
			}
			pivoted := false
			for j := 0; j < n+numSlack; j++ {
				if math.Abs(tab[i][j]) > eps {
					pivot(tab, basis, i, j, total)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row: zero it so it can't interfere.
				for j := 0; j <= total; j++ {
					tab[i][j] = 0
				}
			}
		}
	}

	// Phase 2: original objective (convert to minimization).
	cost := tab[m]
	for j := range cost {
		cost[j] = 0
	}
	for j := 0; j < n && j < len(p.Objective); j++ {
		if p.Maximize {
			cost[j] = -p.Objective[j]
		} else {
			cost[j] = p.Objective[j]
		}
	}
	for i, b := range basis {
		if b < total && math.Abs(cost[b]) > eps {
			addRow(cost, tab[i], -cost[b])
		}
	}
	if status := iterate(tab, basis, total, artCols); status == Unbounded {
		return Solution{Status: Unbounded}
	}

	x := make([]float64, n)
	for i, b := range basis {
		if b < n {
			x[b] = tab[i][total]
		}
	}
	val := objectiveValue(p, x)
	return Solution{Status: Optimal, X: x, Value: val}
}

func objectiveValue(p *Problem, x []float64) float64 {
	v := 0.0
	for j := 0; j < len(p.Objective) && j < len(x); j++ {
		v += p.Objective[j] * x[j]
	}
	return v
}

// iterate runs simplex pivots (minimization) until optimal or unbounded,
// using Bland's rule. banned columns (artificials in phase 2) never enter.
func iterate(tab [][]float64, basis []int, total int, banned map[int]bool) Status {
	m := len(basis)
	cost := tab[m]
	inBasis := make(map[int]int, m)
	for i, b := range basis {
		inBasis[b] = i
	}
	for iterCount := 0; ; iterCount++ {
		if iterCount > 100000 {
			panic("lp: simplex iteration limit exceeded (cycling?)")
		}
		// Bland: entering = smallest-index column with negative reduced cost.
		enter := -1
		for j := 0; j < total; j++ {
			if banned[j] {
				continue
			}
			if _, basic := inBasis[j]; basic {
				continue
			}
			if cost[j] < -eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			return Optimal
		}
		// Ratio test; Bland ties broken by smallest basis variable index.
		leave := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			a := tab[i][enter]
			if a <= eps {
				continue
			}
			r := tab[i][total] / a
			if r < best-eps || (r < best+eps && (leave < 0 || basis[i] < basis[leave])) {
				best = r
				leave = i
			}
		}
		if leave < 0 {
			return Unbounded
		}
		delete(inBasis, basis[leave])
		pivot(tab, basis, leave, enter, total)
		inBasis[enter] = leave
	}
}

// pivot makes column col basic in row r.
func pivot(tab [][]float64, basis []int, r, col, total int) {
	pr := tab[r]
	pv := pr[col]
	for j := 0; j <= total; j++ {
		pr[j] /= pv
	}
	for i := range tab {
		if i == r {
			continue
		}
		if f := tab[i][col]; math.Abs(f) > eps {
			addRow(tab[i], pr, -f)
		} else {
			tab[i][col] = 0
		}
	}
	basis[r] = col
}

func addRow(dst, src []float64, f float64) {
	for j := range dst {
		dst[j] += f * src[j]
	}
}
