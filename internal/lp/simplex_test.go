package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMaximizeSimple(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  => x=2, y=6, z=36.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{3, 5},
		Maximize:  true,
		Constraints: []Constraint{
			{Coeffs: []float64{1, 0}, Op: LE, RHS: 4},
			{Coeffs: []float64{0, 2}, Op: LE, RHS: 12},
			{Coeffs: []float64{3, 2}, Op: LE, RHS: 18},
		},
	}
	s := Solve(p)
	if s.Status != Optimal {
		t.Fatalf("status=%v", s.Status)
	}
	if !approx(s.Value, 36, 1e-6) || !approx(s.X[0], 2, 1e-6) || !approx(s.X[1], 6, 1e-6) {
		t.Fatalf("got %v value %v", s.X, s.Value)
	}
}

func TestMinimizeWithGE(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 10, x <= 8, y <= 8 => x=8, y=2, z=22.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{2, 3},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Op: GE, RHS: 10},
			{Coeffs: []float64{1, 0}, Op: LE, RHS: 8},
			{Coeffs: []float64{0, 1}, Op: LE, RHS: 8},
		},
	}
	s := Solve(p)
	if s.Status != Optimal {
		t.Fatalf("status=%v", s.Status)
	}
	if !approx(s.Value, 22, 1e-6) {
		t.Fatalf("value=%v want 22 (x=%v)", s.Value, s.X)
	}
}

func TestEquality(t *testing.T) {
	// min x + y s.t. x + 2y = 4, x >= 0, y >= 0 => y=2, x=0, z=2.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 2}, Op: EQ, RHS: 4},
		},
	}
	s := Solve(p)
	if s.Status != Optimal || !approx(s.Value, 2, 1e-6) {
		t.Fatalf("status=%v value=%v", s.Status, s.Value)
	}
}

func TestInfeasible(t *testing.T) {
	p := &Problem{
		NumVars:   1,
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Op: LE, RHS: 1},
			{Coeffs: []float64{1}, Op: GE, RHS: 2},
		},
	}
	if s := Solve(p); s.Status != Infeasible {
		t.Fatalf("status=%v want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Maximize:  true,
		Constraints: []Constraint{
			{Coeffs: []float64{1, -1}, Op: LE, RHS: 1},
		},
	}
	if s := Solve(p); s.Status != Unbounded {
		t.Fatalf("status=%v want unbounded", s.Status)
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x s.t. -x <= -3  (i.e. x >= 3) => x=3.
	p := &Problem{
		NumVars:   1,
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{-1}, Op: LE, RHS: -3},
		},
	}
	s := Solve(p)
	if s.Status != Optimal || !approx(s.X[0], 3, 1e-6) {
		t.Fatalf("status=%v x=%v", s.Status, s.X)
	}
}

func TestDegenerate(t *testing.T) {
	// A classic degenerate LP that can cycle without Bland's rule.
	p := &Problem{
		NumVars:   4,
		Objective: []float64{0.75, -150, 0.02, -6},
		Maximize:  true,
		Constraints: []Constraint{
			{Coeffs: []float64{0.25, -60, -0.04, 9}, Op: LE, RHS: 0},
			{Coeffs: []float64{0.5, -90, -0.02, 3}, Op: LE, RHS: 0},
			{Coeffs: []float64{0, 0, 1, 0}, Op: LE, RHS: 1},
		},
	}
	s := Solve(p)
	if s.Status != Optimal {
		t.Fatalf("status=%v", s.Status)
	}
	if !approx(s.Value, 0.05, 1e-6) {
		t.Fatalf("value=%v want 0.05", s.Value)
	}
}

// TestWeakDuality checks, on random feasible bounded primal pairs, that the
// solver's optimum for max c·x (Ax<=b) equals the optimum of the dual
// min b·y (Aᵀy>=c), which simplex must satisfy (strong duality).
func TestStrongDualityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(4)
		m := 1 + r.Intn(4)
		A := make([][]float64, m)
		b := make([]float64, m)
		c := make([]float64, n)
		for i := 0; i < m; i++ {
			A[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				A[i][j] = float64(r.Intn(5)) // non-negative => primal bounded by b>=0 box... not quite, but feasible at 0
			}
			b[i] = float64(1 + r.Intn(9))
		}
		allZeroCol := false
		for j := 0; j < n; j++ {
			zero := true
			for i := 0; i < m; i++ {
				if A[i][j] != 0 {
					zero = false
				}
			}
			if zero {
				allZeroCol = true
			}
		}
		for j := 0; j < n; j++ {
			c[j] = float64(r.Intn(5))
		}
		if allZeroCol {
			return true // primal may be unbounded; skip
		}
		primal := &Problem{NumVars: n, Objective: c, Maximize: true}
		for i := 0; i < m; i++ {
			primal.Constraints = append(primal.Constraints, Constraint{Coeffs: A[i], Op: LE, RHS: b[i]})
		}
		ps := Solve(primal)
		if ps.Status != Optimal {
			return true // skip unbounded corner cases
		}
		dual := &Problem{NumVars: m, Objective: b}
		for j := 0; j < n; j++ {
			col := make([]float64, m)
			for i := 0; i < m; i++ {
				col[i] = A[i][j]
			}
			dual.Constraints = append(dual.Constraints, Constraint{Coeffs: col, Op: GE, RHS: c[j]})
		}
		ds := Solve(dual)
		if ds.Status != Optimal {
			t.Logf("dual not optimal: %v", ds.Status)
			return false
		}
		if !approx(ps.Value, ds.Value, 1e-5) {
			t.Logf("duality gap: primal=%v dual=%v", ps.Value, ds.Value)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestSolveSquare(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, ok := SolveSquare(a, b)
	if !ok {
		t.Fatal("singular")
	}
	if !approx(x[0], 1, 1e-9) || !approx(x[1], 3, 1e-9) {
		t.Fatalf("x=%v", x)
	}
}

func TestSolveSquareSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	b := []float64{1, 2}
	if _, ok := SolveSquare(a, b); ok {
		t.Fatal("expected singular")
	}
}

func TestSolveSquareRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(6)
		a := make([][]float64, n)
		want := make([]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.NormFloat64()
			}
			want[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		for i := range b {
			for j := range want {
				b[i] += a[i][j] * want[j]
			}
		}
		x, ok := SolveSquare(a, b)
		if !ok {
			continue // randomly singular; skip
		}
		for i := range x {
			if !approx(x[i], want[i], 1e-6) {
				t.Fatalf("trial %d: x=%v want %v", trial, x, want)
			}
		}
	}
}

func TestEmptyProblem(t *testing.T) {
	s := Solve(&Problem{})
	if s.Status != Optimal || s.Value != 0 {
		t.Fatalf("empty problem: %+v", s)
	}
}

func TestStatusAndOpStrings(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Error("status strings")
	}
	if Status(99).String() != "unknown" {
		t.Error("unknown status string")
	}
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" || Op(9).String() != "?" {
		t.Error("op strings")
	}
}

func TestRedundantEqualityRows(t *testing.T) {
	// Two identical equality constraints: phase 1 must drop the redundant
	// artificial row rather than declare infeasibility.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Op: EQ, RHS: 2},
			{Coeffs: []float64{1, 1}, Op: EQ, RHS: 2},
			{Coeffs: []float64{1, 0}, Op: LE, RHS: 2},
		},
	}
	s := Solve(p)
	if s.Status != Optimal || !approx(s.Value, 2, 1e-6) {
		t.Fatalf("redundant rows: %v value %v", s.Status, s.Value)
	}
}

// TestBruteForceCrossCheck2D compares simplex against exhaustive vertex
// enumeration on random 2-variable LPs: the optimum of a bounded LP lies on
// a vertex (intersection of two tight constraints or axes).
func TestBruteForceCrossCheck2D(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		m := 2 + rng.Intn(4)
		prob := &Problem{NumVars: 2, Maximize: true,
			Objective: []float64{float64(1 + rng.Intn(5)), float64(1 + rng.Intn(5))}}
		// Ax <= b with positive coefficients: feasible at 0, bounded.
		rowsA := make([][]float64, m)
		rowsB := make([]float64, m)
		for i := 0; i < m; i++ {
			rowsA[i] = []float64{float64(1 + rng.Intn(4)), float64(1 + rng.Intn(4))}
			rowsB[i] = float64(1 + rng.Intn(20))
			prob.Constraints = append(prob.Constraints,
				Constraint{Coeffs: rowsA[i], Op: LE, RHS: rowsB[i]})
		}
		s := Solve(prob)
		if s.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, s.Status)
		}
		// Brute force: all pairwise intersections of {constraints, axes}.
		lines := append([][]float64{{1, 0}, {0, 1}}, rowsA...)
		rhs := append([]float64{0, 0}, rowsB...)
		best := 0.0 // origin is feasible
		for i := 0; i < len(lines); i++ {
			for j := i + 1; j < len(lines); j++ {
				x, ok := SolveSquare([][]float64{lines[i], lines[j]}, []float64{rhs[i], rhs[j]})
				if !ok || x[0] < -1e-9 || x[1] < -1e-9 {
					continue
				}
				feasible := true
				for r := range rowsA {
					if rowsA[r][0]*x[0]+rowsA[r][1]*x[1] > rowsB[r]+1e-7 {
						feasible = false
						break
					}
				}
				if feasible {
					v := prob.Objective[0]*x[0] + prob.Objective[1]*x[1]
					if v > best {
						best = v
					}
				}
			}
		}
		if !approx(s.Value, best, 1e-5) {
			t.Fatalf("trial %d: simplex %v vs brute force %v", trial, s.Value, best)
		}
	}
}
