package lp

import "math"

// SolveSquare solves the n×n linear system Ax = b by Gaussian elimination
// with partial pivoting. It returns (x, true) on success and (nil, false)
// when the matrix is (numerically) singular. A and b are not modified.
func SolveSquare(a [][]float64, b []float64) ([]float64, bool) {
	n := len(a)
	if n == 0 {
		return nil, true
	}
	// Copy into augmented matrix.
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n+1)
		copy(m[i], a[i])
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		best := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[best][col]) {
				best = r
			}
		}
		if math.Abs(m[best][col]) < 1e-10 {
			return nil, false
		}
		m[col], m[best] = m[best], m[col]
		pv := m[col][col]
		for j := col; j <= n; j++ {
			m[col][j] /= pv
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			if f := m[r][col]; math.Abs(f) > 0 {
				for j := col; j <= n; j++ {
					m[r][j] -= f * m[col][j]
				}
			}
		}
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = m[i][n]
	}
	return x, true
}
