package entropy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mpcquery/internal/data"
	"mpcquery/internal/localjoin"
	"mpcquery/internal/packing"
	"mpcquery/internal/query"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestShannon(t *testing.T) {
	if got := Shannon([]float64{1, 1}); !approx(got, 1, 1e-12) {
		t.Errorf("fair coin H=%v want 1", got)
	}
	if got := Shannon([]float64{1, 1, 1, 1}); !approx(got, 2, 1e-12) {
		t.Errorf("4-uniform H=%v want 2", got)
	}
	if got := Shannon([]float64{5, 0, 0}); got != 0 {
		t.Errorf("deterministic H=%v want 0", got)
	}
	if got := Shannon(nil); got != 0 {
		t.Errorf("empty H=%v", got)
	}
}

func TestConditionalChainRule(t *testing.T) {
	// H(X,Y) = H(Y) + H(X|Y) (equation (5)).
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		ny, nx := 2+rng.Intn(4), 2+rng.Intn(4)
		joint := make([][]float64, ny)
		var flat []float64
		ymarg := make([]float64, ny)
		for y := range joint {
			joint[y] = make([]float64, nx)
			for x := range joint[y] {
				w := rng.Float64()
				joint[y][x] = w
				flat = append(flat, w)
				ymarg[y] += w
			}
		}
		hxy := Shannon(flat)
		hy := Shannon(ymarg)
		hxGy := Conditional(joint)
		if !approx(hxy, hy+hxGy, 1e-9) {
			t.Fatalf("chain rule: H(X,Y)=%v H(Y)+H(X|Y)=%v", hxy, hy+hxGy)
		}
		// Conditioning cannot increase entropy: H(X|Y) ≤ H(X).
		xmarg := make([]float64, nx)
		for y := range joint {
			for x, w := range joint[y] {
				xmarg[x] += w
			}
		}
		if hxGy > Shannon(xmarg)+1e-9 {
			t.Fatalf("H(X|Y)=%v > H(X)=%v", hxGy, Shannon(xmarg))
		}
	}
}

func TestBinaryEntropy(t *testing.T) {
	if !approx(Binary(0.5), 1, 1e-12) {
		t.Errorf("H(1/2)=%v", Binary(0.5))
	}
	if Binary(0) != 0 || Binary(1) != 0 {
		t.Error("H(0)=H(1)=0")
	}
	// Proposition 3.11's helper: H(x) ≤ 2·(−x·log₂x) for x ≤ 1/2.
	for _, x := range []float64{0.01, 0.1, 0.3, 0.5} {
		if Binary(x) > 2*(-x*math.Log2(x))+1e-12 {
			t.Errorf("H(%v) exceeds 2f(%v)", x, x)
		}
	}
}

func TestLogChoose(t *testing.T) {
	if !approx(LogChoose(5, 2), math.Log2(10), 1e-9) {
		t.Errorf("C(5,2): %v", LogChoose(5, 2))
	}
	if !approx(LogFactorial(5), math.Log2(120), 1e-9) {
		t.Errorf("5!: %v", LogFactorial(5))
	}
	if !math.IsInf(LogChoose(3, 5), -1) {
		t.Error("C(3,5) should be -inf")
	}
}

// TestMatchingBitsCountsSmall cross-checks equation (12) against explicit
// enumeration: the number of a-dimensional matchings with m tuples over [n]
// is C(n,m)^a · (m!)^{a−1}.
func TestMatchingBitsCountsSmall(t *testing.T) {
	// a=2, n=4, m=2: C(4,2)²·2! = 36·2 = 72.
	want := math.Log2(72)
	if got := MatchingBits(2, 2, 4); !approx(got, want, 1e-9) {
		t.Errorf("H=%v want %v", got, want)
	}
	// a=1: just subsets, C(4,2)=6.
	if got := MatchingBits(1, 2, 4); !approx(got, math.Log2(6), 1e-9) {
		t.Errorf("1-dim H=%v", got)
	}
}

// TestProposition314 checks both regimes of Proposition 3.14.
func TestProposition314(t *testing.T) {
	// (a) n = m²: H ≥ M/2.
	for _, m := range []float64{10, 100, 1000} {
		if !Proposition314Holds(2, m, m*m) {
			t.Errorf("(a) fails at m=%v", m)
		}
	}
	// (b) n = m, arity 2: H ≥ M/4.
	for _, m := range []float64{10, 100, 1000} {
		if !Proposition314Holds(2, m, m) {
			t.Errorf("(b) fails at m=%v", m)
		}
	}
	if !Proposition314Holds(3, 50, 2500) {
		t.Error("(a) arity 3 fails")
	}
}

// TestFriedgutTriangleWorkedExample checks the C3 instance of Section 2.4
// with the cover (1/2,1/2,1/2):
//
//	Σ αxy·βyz·γzx ≤ sqrt(Σα² · Σβ² · Σγ²)
func TestFriedgutTriangleWorkedExample(t *testing.T) {
	q := query.Triangle()
	n := 4
	rng := rand.New(rand.NewSource(2))
	w := randomWeights(rng, q, n)
	lhs, rhs := Friedgut(q, w, n, []float64{0.5, 0.5, 0.5})
	if lhs > rhs+1e-9 {
		t.Errorf("Friedgut violated: lhs=%v rhs=%v", lhs, rhs)
	}
	// Hand-check rhs = sqrt(prod of squared sums).
	prod := 1.0
	for j := range w {
		s := 0.0
		for _, x := range w[j] {
			s += x * x
		}
		prod *= s
	}
	if !approx(rhs, math.Sqrt(prod), 1e-6) {
		t.Errorf("rhs=%v want %v", rhs, math.Sqrt(prod))
	}
}

// TestFriedgutChainMaxNorm checks the L3 instance of Section 2.4 with the
// cover (1,0,1): the middle factor becomes max β.
func TestFriedgutChainMaxNorm(t *testing.T) {
	q := query.Chain(3)
	n := 3
	rng := rand.New(rand.NewSource(3))
	w := randomWeights(rng, q, n)
	lhs, rhs := Friedgut(q, w, n, []float64{1, 0, 1})
	if lhs > rhs+1e-9 {
		t.Errorf("Friedgut violated: lhs=%v rhs=%v", lhs, rhs)
	}
	s1, s3, maxB := 0.0, 0.0, 0.0
	for _, x := range w[0] {
		s1 += x
	}
	for _, x := range w[1] {
		if x > maxB {
			maxB = x
		}
	}
	for _, x := range w[2] {
		s3 += x
	}
	if !approx(rhs, s1*maxB*s3, 1e-6) {
		t.Errorf("rhs=%v want %v", rhs, s1*maxB*s3)
	}
}

// TestFriedgutRandom is the property test: the inequality holds for random
// weights on random queries with their optimal fractional edge cover.
func TestFriedgutRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := randomSmallQuery(r)
		n := 2 + r.Intn(3)
		w := randomWeights(r, q, n)
		_, cover := packing.RhoStar(q)
		lhs, rhs := Friedgut(q, w, n, cover)
		return lhs <= rhs+1e-6*math.Max(1, rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// TestAGMBound checks that the Friedgut-derived output bound dominates the
// actual join size on random instances (the Section 2.4 corollary).
func TestAGMBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := query.Triangle()
	for trial := 0; trial < 20; trial++ {
		rels := make(map[string]*data.Relation)
		sizes := make([]float64, 3)
		for j, a := range q.Atoms {
			rel := data.NewRelation(a.Name, 2)
			m := 1 + rng.Intn(40)
			for i := 0; i < m; i++ {
				rel.Append(int64(rng.Intn(6)), int64(rng.Intn(6)))
			}
			rels[a.Name] = rel.Canonical() // set semantics for the bound
			sizes[j] = float64(rels[a.Name].NumTuples())
		}
		out := localjoin.Evaluate(q, rels).Canonical()
		bound := AGMBound(sizes, []float64{0.5, 0.5, 0.5})
		if float64(out.NumTuples()) > bound+1e-9 {
			t.Fatalf("AGM violated: |out|=%d bound=%v sizes=%v", out.NumTuples(), bound, sizes)
		}
	}
}

func randomWeights(rng *rand.Rand, q *query.Query, n int) [][]float64 {
	w := make([][]float64, q.NumAtoms())
	for j, a := range q.Atoms {
		size := 1
		for range a.Vars {
			size *= n
		}
		w[j] = make([]float64, size)
		for i := range w[j] {
			if rng.Intn(3) > 0 { // sprinkle zeros
				w[j][i] = rng.Float64()
			}
		}
	}
	return w
}

func randomSmallQuery(r *rand.Rand) *query.Query {
	k := 2 + r.Intn(2)
	l := 1 + r.Intn(3)
	atoms := make([]query.Atom, 0, l)
	for j := 0; j < l; j++ {
		a := r.Intn(k)
		b := r.Intn(k)
		atoms = append(atoms, query.Atom{
			Name: "S" + string(rune('A'+j)),
			Vars: []string{string(rune('a' + a)), string(rune('a' + b))},
		})
	}
	return query.New("rand", atoms...)
}
