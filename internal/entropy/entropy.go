// Package entropy implements the information-theoretic toolkit of
// Sections 2.3, 2.4 and 3.2.1 of the paper:
//
//   - Shannon entropy and conditional entropy of discrete distributions;
//   - the encoding size (entropy) of an a-dimensional matching,
//     equation (12): H(S) = a·log C(n,m) + (a−1)·log(m!), with the
//     Proposition 3.14 relations to the trivial size M = a·m·log n;
//   - Friedgut's inequality (7), whose application to tight fractional
//     edge coverings powers the one-round lower bound.
//
// Everything is computed in log-space with math.Lgamma, so the formulas
// stay exact for the large n, m of the experiments.
package entropy

import (
	"math"

	"mpcquery/internal/query"
)

// Shannon returns H(X) = −Σ p·log₂(p) for the given distribution. Zero
// probabilities contribute zero; probabilities must be non-negative (they
// are normalized internally, so counts work too).
func Shannon(weights []float64) float64 {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("entropy: negative weight")
		}
		total += w
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, w := range weights {
		if w > 0 {
			p := w / total
			h -= p * math.Log2(p)
		}
	}
	return h
}

// Conditional returns H(X|Y) = Σ_y P(y)·H(X|Y=y) for a joint distribution
// given as joint[y][x] (equation (4)).
func Conditional(joint [][]float64) float64 {
	total := 0.0
	for _, row := range joint {
		for _, w := range row {
			total += w
		}
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, row := range joint {
		py := 0.0
		for _, w := range row {
			py += w
		}
		if py > 0 {
			h += py / total * Shannon(row)
		}
	}
	return h
}

// Binary returns the binary entropy H(x) = −x·log₂x − (1−x)·log₂(1−x),
// used in Proposition 3.11.
func Binary(x float64) float64 {
	if x <= 0 || x >= 1 {
		return 0
	}
	return -x*math.Log2(x) - (1-x)*math.Log2(1-x)
}

// LogChoose returns log₂ C(n, m) via log-gamma.
func LogChoose(n, m float64) float64 {
	if m < 0 || m > n {
		return math.Inf(-1)
	}
	ln, _ := math.Lgamma(n + 1)
	lm, _ := math.Lgamma(m + 1)
	lnm, _ := math.Lgamma(n - m + 1)
	return (ln - lm - lnm) / math.Ln2
}

// LogFactorial returns log₂(m!).
func LogFactorial(m float64) float64 {
	l, _ := math.Lgamma(m + 1)
	return l / math.Ln2
}

// MatchingBits returns the exact number of bits needed to encode an
// a-dimensional matching of [n] with m tuples — the entropy of the
// paper's matching probability space, equation (12):
//
//	H(S) = a·log C(n,m) + (a−1)·log(m!)
func MatchingBits(arity int, m, n float64) float64 {
	return float64(arity)*LogChoose(n, m) + float64(arity-1)*LogFactorial(m)
}

// TrivialBits returns M = a·m·log₂ n, the paper's working size measure.
func TrivialBits(arity int, m, n float64) float64 {
	return float64(arity) * m * math.Log2(n)
}

// Proposition314Holds checks the Proposition 3.14 relations between the
// matching entropy H(S) and the trivial size M:
//
//	(a) n ≥ m²      ⇒ H(S) ≥ M/2
//	(b) n = m, a ≥ 2 ⇒ H(S) ≥ M/4
func Proposition314Holds(arity int, m, n float64) bool {
	h := MatchingBits(arity, m, n)
	big := TrivialBits(arity, m, n)
	if n >= m*m {
		return h >= big/2-1e-6
	}
	if n == m && arity >= 2 {
		return h >= big/4-1e-6
	}
	return true // the proposition makes no claim otherwise
}

// Friedgut evaluates both sides of Friedgut's inequality (7) for query q,
// weights w (one non-negative weight per atom per tuple over [n]^{a_j},
// given as w[j][flatIndex]), domain size n, and fractional edge cover u:
//
//	Σ_{a∈[n]^k} Π_j w_j(a_j)  ≤  Π_j ( Σ_{a_j} w_j(a_j)^{1/u_j} )^{u_j}
//
// It returns (lhs, rhs). Atoms with u_j = 0 use the max-norm limit
// lim_{u→0} (Σ w^{1/u})^u = max w.
func Friedgut(q *query.Query, w [][]float64, n int, u []float64) (lhs, rhs float64) {
	k := q.NumVars()
	assign := make([]int, k)
	var rec func(d int)
	rec = func(d int) {
		if d == k {
			prod := 1.0
			for j, atom := range q.Atoms {
				prod *= w[j][flatIndex(q, atom, assign, n)]
				if prod == 0 {
					return
				}
			}
			lhs += prod
			return
		}
		for v := 0; v < n; v++ {
			assign[d] = v
			rec(d + 1)
		}
	}
	rec(0)

	rhs = 1.0
	for j, uj := range u {
		if uj == 0 {
			maxW := 0.0
			for _, x := range w[j] {
				if x > maxW {
					maxW = x
				}
			}
			rhs *= maxW
			continue
		}
		sum := 0.0
		for _, x := range w[j] {
			if x > 0 {
				sum += math.Pow(x, 1/uj)
			}
		}
		rhs *= math.Pow(sum, uj)
	}
	return lhs, rhs
}

// flatIndex maps the projection of the assignment onto an atom's variables
// to a flat index in [n]^{arity}.
func flatIndex(q *query.Query, atom query.Atom, assign []int, n int) int {
	idx := 0
	for _, v := range atom.Vars {
		idx = idx*n + assign[q.VarIndex(v)]
	}
	return idx
}

// AGMBound returns the Atserias–Grohe–Marx output-size bound implied by
// Friedgut's inequality with 0/1 weights (Section 2.4):
//
//	|q(I)| ≤ Π_j |S_j|^{u_j}   for any fractional edge cover u.
func AGMBound(sizes []float64, u []float64) float64 {
	logB := 0.0
	for j, uj := range u {
		if uj > 0 {
			logB += uj * math.Log(sizes[j])
		}
	}
	return math.Exp(logB)
}
