package query

import (
	"fmt"
	"strings"
)

// DOT renders the query's hypergraph in Graphviz format for visual
// inspection: variables are circles; binary atoms become labeled edges and
// higher-arity (or unary) atoms become box nodes connected to their
// variables.
func (q *Query) DOT() string {
	var b strings.Builder
	name := q.Name
	if name == "" {
		name = "q"
	}
	fmt.Fprintf(&b, "graph %q {\n", sanitizeID(name))
	b.WriteString("  node [shape=circle];\n")
	for _, v := range q.Vars() {
		fmt.Fprintf(&b, "  %q;\n", v)
	}
	for _, a := range q.Atoms {
		dv := a.DistinctVars()
		if len(dv) == 2 && a.Arity() == 2 {
			fmt.Fprintf(&b, "  %q -- %q [label=%q];\n", a.Vars[0], a.Vars[1], a.Name)
			continue
		}
		boxID := "atom_" + sanitizeID(a.Name)
		fmt.Fprintf(&b, "  %q [shape=box, label=%q];\n", boxID, a.Name)
		for _, v := range dv {
			fmt.Fprintf(&b, "  %q -- %q;\n", boxID, v)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func sanitizeID(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == '"' || r == '\\' {
			continue
		}
		out = append(out, r)
	}
	return string(out)
}
