package query

import (
	"math/rand"
	"testing"
)

// TestParseNeverPanics feeds the parser random byte soup and mutated valid
// queries: it must return errors, never panic.
func TestParseNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	alphabet := []byte("abcxyz,():- S123")
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(40)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = alphabet[rng.Intn(len(alphabet))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse(%q) panicked: %v", buf, r)
				}
			}()
			_, _ = Parse(string(buf))
		}()
	}
	// Mutations of a valid query.
	valid := "q(x,y,z) :- S1(x,y), S2(y,z), S3(z,x)"
	for trial := 0; trial < 2000; trial++ {
		b := []byte(valid)
		for k := 0; k < 1+rng.Intn(3); k++ {
			switch rng.Intn(3) {
			case 0: // delete
				i := rng.Intn(len(b))
				b = append(b[:i], b[i+1:]...)
			case 1: // substitute
				b[rng.Intn(len(b))] = alphabet[rng.Intn(len(alphabet))]
			case 2: // duplicate
				i := rng.Intn(len(b))
				b = append(b[:i], append([]byte{b[i]}, b[i:]...)...)
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse(%q) panicked: %v", b, r)
				}
			}()
			_, _ = Parse(string(b))
		}()
	}
}
