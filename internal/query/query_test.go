package query

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBasicCounts(t *testing.T) {
	tests := []struct {
		q               *Query
		k, l, a, c, chi int
	}{
		{Chain(3), 4, 3, 6, 1, 0},
		{Chain(5), 6, 5, 10, 1, 0},
		{Cycle(3), 3, 3, 6, 1, 1},
		{Cycle(6), 6, 6, 12, 1, 1},
		{Star(3), 4, 3, 6, 1, 0},
		{K4(), 4, 6, 12, 1, 3},
		{SpokedWheel(2), 5, 4, 8, 1, 0},
		{Binom(4, 2), 4, 6, 12, 1, 3}, // B4,2 == K4
	}
	for _, tt := range tests {
		if got := tt.q.NumVars(); got != tt.k {
			t.Errorf("%s: NumVars=%d want %d", tt.q.Name, got, tt.k)
		}
		if got := tt.q.NumAtoms(); got != tt.l {
			t.Errorf("%s: NumAtoms=%d want %d", tt.q.Name, got, tt.l)
		}
		if got := tt.q.TotalArity(); got != tt.a {
			t.Errorf("%s: TotalArity=%d want %d", tt.q.Name, got, tt.a)
		}
		if got := tt.q.NumComponents(); got != tt.c {
			t.Errorf("%s: NumComponents=%d want %d", tt.q.Name, got, tt.c)
		}
		if got := tt.q.Characteristic(); got != tt.chi {
			t.Errorf("%s: Characteristic=%d want %d", tt.q.Name, got, tt.chi)
		}
	}
}

func TestTreeLike(t *testing.T) {
	if !Chain(5).IsTreeLike() {
		t.Error("L5 should be tree-like")
	}
	if !Star(4).IsTreeLike() {
		t.Error("T4 should be tree-like")
	}
	if Cycle(4).IsTreeLike() {
		t.Error("C4 should not be tree-like")
	}
	// q = S1(x0,x1,x2), S2(x1,x2,x3) is acyclic but not tree-like (Section 2.2).
	q := MustParse("S1(x0,x1,x2), S2(x1,x2,x3)")
	if q.IsTreeLike() {
		t.Error("ternary chain should not be tree-like")
	}
	if q.Characteristic() != 1 {
		t.Errorf("χ=%d want 1", q.Characteristic())
	}
}

func TestDisconnected(t *testing.T) {
	q := MustParse("R(x), S(y)")
	if q.IsConnected() {
		t.Error("R(x),S(y) should be disconnected")
	}
	if got := q.NumComponents(); got != 2 {
		t.Errorf("components=%d want 2", got)
	}
	q2 := MustParse("R(x), S(y), T(x,y)")
	if !q2.IsConnected() {
		t.Error("R(x),S(y),T(x,y) should be connected")
	}
}

// TestContractL5 checks the paper's worked example:
// L5/{S2,S4} = S1(x0,x1), S3(x1,x3), S5(x3,x5), with χ preserved.
func TestContractL5(t *testing.T) {
	q := Chain(5)
	m := []int{1, 3} // S2, S4 (0-based)
	c := q.Contract(m)
	if c.NumAtoms() != 3 {
		t.Fatalf("atoms=%d want 3", c.NumAtoms())
	}
	if c.NumVars() != 4 {
		t.Fatalf("vars=%d want 4 (isomorphic to L3), got %v", c.NumVars(), c.Vars())
	}
	if c.Characteristic() != 0 {
		t.Errorf("χ(L5/M)=%d want 0", c.Characteristic())
	}
	// The contraction merges x1~x2 and x3~x4.
	s3 := c.Atoms[1]
	if s3.Name != "S3" {
		t.Fatalf("middle atom=%s want S3", s3.Name)
	}
	if s3.Vars[0] != s3.Vars[0] || len(s3.DistinctVars()) != 2 {
		t.Errorf("S3 after contraction should keep two distinct vars, got %v", s3.Vars)
	}
}

// TestContractK4 checks χ(K4)=3, χ(M)=1, χ(K4/M)=2 for M={S1,S2,S3}
// (Section 2.2 worked example).
func TestContractK4(t *testing.T) {
	q := K4()
	if got := q.Characteristic(); got != 3 {
		t.Fatalf("χ(K4)=%d want 3", got)
	}
	m := []int{0, 1, 2}
	sub := q.Subquery("M", m)
	if got := sub.Characteristic(); got != 1 {
		t.Errorf("χ(M)=%d want 1", got)
	}
	c := q.Contract(m)
	if got := c.Characteristic(); got != 2 {
		t.Errorf("χ(K4/M)=%d want 2", got)
	}
	if c.NumVars() != 2 || c.NumAtoms() != 3 {
		t.Errorf("K4/M should have 2 vars and 3 atoms, got %d vars %d atoms", c.NumVars(), c.NumAtoms())
	}
}

func TestRadiusDiameter(t *testing.T) {
	tests := []struct {
		q         *Query
		rad, diam int
	}{
		{Chain(4), 2, 4},
		{Chain(5), 3, 5}, // rad(Lk) = ceil(k/2)
		{Cycle(5), 2, 2},
		{Cycle(6), 3, 3}, // rad(Ck) = floor(k/2)
		{Star(4), 1, 2},
		{Triangle(), 1, 1},
	}
	for _, tt := range tests {
		if got := tt.q.Radius(); got != tt.rad {
			t.Errorf("%s: radius=%d want %d", tt.q.Name, got, tt.rad)
		}
		if got := tt.q.Diameter(); got != tt.diam {
			t.Errorf("%s: diameter=%d want %d", tt.q.Name, got, tt.diam)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	q := MustParse("q(x,y,z) :- S1(x,y), S2(y,z), S3(z,x)")
	if q.NumVars() != 3 || q.NumAtoms() != 3 {
		t.Fatalf("parsed wrong shape: %s", q)
	}
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if !reflect.DeepEqual(q.Atoms, q2.Atoms) {
		t.Errorf("round trip mismatch: %v vs %v", q.Atoms, q2.Atoms)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"q(x) :- ",
		"q(x,y) :- S(x)",      // not full
		"S(x), S(y)",          // self-join
		"q(x) :- S(x), T(x,)", // empty var
		"q(x) :- S(x",         // unbalanced
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

// randomQuery builds a random connected binary query for property tests.
func randomQuery(rng *rand.Rand) *Query {
	k := 2 + rng.Intn(5) // vars
	l := 1 + rng.Intn(6) // atoms
	atoms := make([]Atom, 0, l)
	for j := 0; j < l; j++ {
		a := rng.Intn(k)
		b := rng.Intn(k)
		// Connect atom j to the variables seen so far to bias toward connected.
		if j > 0 {
			a = rng.Intn(min(k, j+1))
		}
		atoms = append(atoms, Atom{
			Name: "S" + string(rune('A'+j)),
			Vars: []string{varName(a), varName(b)},
		})
	}
	return New("rand", atoms...)
}

func varName(i int) string { return string(rune('a' + i)) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestCharacteristicProperties checks Lemma 2.1 on random queries:
// (a) χ(q) = Σ χ(qi) over connected components,
// (c) χ(q) >= 0,
// (b,d) for random M ⊆ atoms(q): χ(q/M) = χ(q) − χ(M) and χ(q) >= χ(q/M).
func TestCharacteristicProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := randomQuery(r)
		// (c)
		if q.Characteristic() < 0 {
			t.Logf("χ<0 for %s", q)
			return false
		}
		// (a)
		sum := 0
		for _, comp := range q.ConnectedComponents() {
			sum += q.Subquery("c", comp).Characteristic()
		}
		if sum != q.Characteristic() {
			t.Logf("χ component sum mismatch for %s: %d vs %d", q, sum, q.Characteristic())
			return false
		}
		// (b) and (d)
		var m []int
		for j := 0; j < q.NumAtoms(); j++ {
			if r.Intn(2) == 0 {
				m = append(m, j)
			}
		}
		chiM := q.Subquery("m", m).Characteristic()
		if len(m) == 0 {
			chiM = 0
		}
		contracted := q.Contract(m)
		if got := contracted.Characteristic(); got != q.Characteristic()-chiM {
			t.Logf("Lemma 2.1(b) fails for %s with M=%v: χ(q/M)=%d χ(q)=%d χ(M)=%d",
				q, m, got, q.Characteristic(), chiM)
			return false
		}
		if contracted.Characteristic() > q.Characteristic() {
			t.Logf("Lemma 2.1(d) fails")
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestAtomsOfAndIndex(t *testing.T) {
	q := Triangle()
	if got := q.AtomsOf("x1"); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("AtomsOf(x1)=%v want [0 2]", got)
	}
	if q.AtomIndex("S2") != 1 {
		t.Errorf("AtomIndex(S2)=%d want 1", q.AtomIndex("S2"))
	}
	if q.AtomIndex("nope") != -1 {
		t.Error("AtomIndex of missing relation should be -1")
	}
	if q.VarIndex("x3") != 2 {
		t.Errorf("VarIndex(x3)=%d", q.VarIndex("x3"))
	}
	if q.VarIndex("zzz") != -1 {
		t.Error("VarIndex of missing var should be -1")
	}
}

func TestCloneIndependence(t *testing.T) {
	q := Chain(3)
	c := q.Clone()
	c.Atoms[0].Vars[0] = "mutated"
	if q.Atoms[0].Vars[0] == "mutated" {
		t.Error("Clone should deep-copy atom vars")
	}
}

func TestSelfJoinPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with duplicate relation names should panic")
		}
	}()
	New("bad", Atom{Name: "S", Vars: []string{"x"}}, Atom{Name: "S", Vars: []string{"y"}})
}

func TestIsAcyclic(t *testing.T) {
	if !Chain(5).IsAcyclic() {
		t.Error("chains are acyclic")
	}
	if !Star(4).IsAcyclic() {
		t.Error("stars are acyclic")
	}
	if Cycle(3).IsAcyclic() || Cycle(5).IsAcyclic() {
		t.Error("cycles are not acyclic")
	}
	if K4().IsAcyclic() {
		t.Error("K4 is not acyclic")
	}
	// The paper's example: acyclic but not tree-like.
	q := MustParse("S1(x0,x1,x2), S2(x1,x2,x3)")
	if !q.IsAcyclic() {
		t.Error("ternary chain is acyclic")
	}
	if q.IsTreeLike() {
		t.Error("ternary chain is not tree-like")
	}
	// Tree-like implies acyclic (Section 2.2).
	for _, tl := range []*Query{Chain(4), Star(3), SpokedWheel(2)} {
		if tl.IsTreeLike() && !tl.IsAcyclic() {
			t.Errorf("%s: tree-like must imply acyclic", tl.Name)
		}
	}
	// Disconnected unions of acyclic components are acyclic.
	if !MustParse("R(x), S(y)").IsAcyclic() {
		t.Error("R(x),S(y) acyclic")
	}
}

func TestSameShape(t *testing.T) {
	if !Chain(4).SameShape(Chain(4)) {
		t.Error("L4 should match itself")
	}
	renamed := New("q",
		Atom{Name: "S1", Vars: []string{"a", "b"}},
		Atom{Name: "S2", Vars: []string{"b", "c"}},
		Atom{Name: "S3", Vars: []string{"c", "d"}},
		Atom{Name: "S4", Vars: []string{"d", "e"}})
	if !Chain(4).SameShape(renamed) {
		t.Error("renamed L4 should match")
	}
	if Chain(4).SameShape(Chain(5)) {
		t.Error("L4 vs L5")
	}
	if Chain(3).SameShape(Triangle()) {
		t.Error("different atom names should not match")
	}
	broken := New("q",
		Atom{Name: "S1", Vars: []string{"a", "b"}},
		Atom{Name: "S2", Vars: []string{"a", "c"}}, // reuses a, not a path
		Atom{Name: "S3", Vars: []string{"c", "d"}},
		Atom{Name: "S4", Vars: []string{"d", "e"}})
	if Chain(4).SameShape(broken) {
		t.Error("different variable pattern should not match")
	}
	star := Star(2)
	if star.SameShape(nil) {
		t.Error("nil should not match")
	}
	// Two distinct variables may not collapse onto one.
	merged := New("q",
		Atom{Name: "S1", Vars: []string{"z", "x"}},
		Atom{Name: "S2", Vars: []string{"z", "x"}})
	if star.SameShape(merged) {
		t.Error("variable collapse should not match")
	}
}
