// Package query represents full conjunctive queries (CQs) and the
// hypergraph-theoretic machinery of Beame, Koutris and Suciu,
// "Communication Cost in Parallel Query Processing" (Section 2.2):
// connected components, the characteristic χ(q), contraction q/M,
// radius and diameter, and the tree-like property.
//
// A query q(x1,...,xk) = S1(x̄1),...,Sℓ(x̄ℓ) is full (every variable in the
// body appears in the head) and has no self-joins (each relation symbol
// appears once); both assumptions follow the paper.
package query

import (
	"fmt"
	"sort"
	"strings"
)

// Atom is a single relational atom S(x̄) of a conjunctive query. Vars lists
// the variables in column order; a variable may repeat (e.g. after
// contraction), in which case matching tuples must agree on those columns.
type Atom struct {
	Name string
	Vars []string
}

// Arity returns the number of columns of the atom.
func (a Atom) Arity() int { return len(a.Vars) }

// DistinctVars returns the atom's variables with duplicates removed,
// preserving first-occurrence order.
func (a Atom) DistinctVars() []string {
	seen := make(map[string]bool, len(a.Vars))
	out := make([]string, 0, len(a.Vars))
	for _, v := range a.Vars {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

func (a Atom) String() string {
	return a.Name + "(" + strings.Join(a.Vars, ",") + ")"
}

// HasVar reports whether variable v occurs in the atom.
func (a Atom) HasVar(v string) bool {
	for _, w := range a.Vars {
		if w == v {
			return true
		}
	}
	return false
}

// Query is a full conjunctive query without self-joins.
type Query struct {
	Name  string
	Atoms []Atom

	vars     []string       // distinct variables, first-occurrence order
	varIndex map[string]int // variable -> position in vars
}

// New builds a query from its atoms. Relation names must be distinct
// (no self-joins); New panics otherwise since such a query is outside the
// model and indicates a programming error.
func New(name string, atoms ...Atom) *Query {
	q := &Query{Name: name, Atoms: atoms}
	seen := make(map[string]bool, len(atoms))
	for _, a := range atoms {
		if seen[a.Name] {
			panic(fmt.Sprintf("query: self-join on relation %q not supported", a.Name))
		}
		seen[a.Name] = true
	}
	q.index()
	return q
}

func (q *Query) index() {
	q.varIndex = make(map[string]int)
	q.vars = q.vars[:0]
	for _, a := range q.Atoms {
		for _, v := range a.Vars {
			if _, ok := q.varIndex[v]; !ok {
				q.varIndex[v] = len(q.vars)
				q.vars = append(q.vars, v)
			}
		}
	}
}

// Vars returns the distinct variables of q in first-occurrence order.
// The returned slice must not be modified.
func (q *Query) Vars() []string { return q.vars }

// NumVars returns k, the number of distinct variables.
func (q *Query) NumVars() int { return len(q.vars) }

// NumAtoms returns ℓ, the number of atoms.
func (q *Query) NumAtoms() int { return len(q.Atoms) }

// TotalArity returns a = Σj aj, the sum of the arities of all atoms.
func (q *Query) TotalArity() int {
	a := 0
	for _, at := range q.Atoms {
		a += at.Arity()
	}
	return a
}

// VarIndex returns the position of variable v in Vars(), or -1.
func (q *Query) VarIndex(v string) int {
	if i, ok := q.varIndex[v]; ok {
		return i
	}
	return -1
}

// AtomsOf returns the indices of the atoms containing variable v
// (the paper's atoms(x_i)).
func (q *Query) AtomsOf(v string) []int {
	var out []int
	for j, a := range q.Atoms {
		if a.HasVar(v) {
			out = append(out, j)
		}
	}
	return out
}

// AtomIndex returns the index of the atom with the given relation name, or -1.
func (q *Query) AtomIndex(name string) int {
	for j, a := range q.Atoms {
		if a.Name == name {
			return j
		}
	}
	return -1
}

func (q *Query) String() string {
	parts := make([]string, len(q.Atoms))
	for i, a := range q.Atoms {
		parts[i] = a.String()
	}
	name := q.Name
	if name == "" {
		name = "q"
	}
	return name + "(" + strings.Join(q.vars, ",") + ") :- " + strings.Join(parts, ", ")
}

// ConnectedComponents partitions the atom indices into the maximal connected
// subqueries of q. Two atoms are connected when they share a variable.
// Atoms with no variables (nullary) each form their own component.
func (q *Query) ConnectedComponents() [][]int {
	n := len(q.Atoms)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(x, y int) { parent[find(x)] = find(y) }

	byVar := make(map[string]int) // variable -> first atom index seen
	for j, a := range q.Atoms {
		for _, v := range a.Vars {
			if first, ok := byVar[v]; ok {
				union(first, j)
			} else {
				byVar[v] = j
			}
		}
	}
	groups := make(map[int][]int)
	for j := range q.Atoms {
		r := find(j)
		groups[r] = append(groups[r], j)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	out := make([][]int, 0, len(groups))
	for _, r := range roots {
		out = append(out, groups[r])
	}
	return out
}

// NumComponents returns c, the number of connected components.
func (q *Query) NumComponents() int { return len(q.ConnectedComponents()) }

// IsConnected reports whether the hypergraph of q is connected.
func (q *Query) IsConnected() bool { return len(q.Atoms) > 0 && q.NumComponents() == 1 }

// Characteristic returns χ(q) = a − k − ℓ + c (Section 2.2). By Lemma 2.1,
// χ(q) ≥ 0 for every query.
func (q *Query) Characteristic() int {
	return q.TotalArity() - q.NumVars() - q.NumAtoms() + q.NumComponents()
}

// IsTreeLike reports whether q is connected and χ(q) = 0 (Definition 2.2).
// Over binary vocabularies this holds exactly when the hypergraph is a tree.
func (q *Query) IsTreeLike() bool { return q.IsConnected() && q.Characteristic() == 0 }

// Subquery returns the query induced by the given atom indices, preserving
// order. The head of the subquery is the set of variables occurring in it.
func (q *Query) Subquery(name string, atomIdx []int) *Query {
	atoms := make([]Atom, 0, len(atomIdx))
	for _, j := range atomIdx {
		atoms = append(atoms, q.Atoms[j])
	}
	return New(name, atoms...)
}

// Contract returns q/M, the query resulting from contracting the atoms with
// indices in m in the hypergraph of q (Section 2.2): all variables of each
// connected component of M are merged into a single variable, and the atoms
// of M are removed. Variables are renamed to the representative (the first
// variable of the merged class in Vars() order).
func (q *Query) Contract(m []int) *Query {
	inM := make(map[int]bool, len(m))
	for _, j := range m {
		inM[j] = true
	}
	// Union-find over variables, merging within each contracted atom.
	parent := make(map[string]string, len(q.vars))
	for _, v := range q.vars {
		parent[v] = v
	}
	var find func(string) string
	find = func(x string) string {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(x, y string) {
		rx, ry := find(x), find(y)
		if rx == ry {
			return
		}
		// Keep the variable that appears earlier in Vars() as representative.
		if q.varIndex[rx] < q.varIndex[ry] {
			parent[ry] = rx
		} else {
			parent[rx] = ry
		}
	}
	for j, a := range q.Atoms {
		if !inM[j] {
			continue
		}
		dv := a.DistinctVars()
		for i := 1; i < len(dv); i++ {
			union(dv[0], dv[i])
		}
	}
	var atoms []Atom
	for j, a := range q.Atoms {
		if inM[j] {
			continue
		}
		vars := make([]string, len(a.Vars))
		for i, v := range a.Vars {
			vars[i] = find(v)
		}
		atoms = append(atoms, Atom{Name: a.Name, Vars: vars})
	}
	return New(q.Name+"/M", atoms...)
}

// varAdjacency builds the variable adjacency lists of the hypergraph:
// two variables are adjacent when they co-occur in an atom.
func (q *Query) varAdjacency() map[string][]string {
	adj := make(map[string]map[string]bool, len(q.vars))
	for _, v := range q.vars {
		adj[v] = make(map[string]bool)
	}
	for _, a := range q.Atoms {
		dv := a.DistinctVars()
		for i := 0; i < len(dv); i++ {
			for j := i + 1; j < len(dv); j++ {
				adj[dv[i]][dv[j]] = true
				adj[dv[j]][dv[i]] = true
			}
		}
	}
	out := make(map[string][]string, len(adj))
	for v, set := range adj {
		lst := make([]string, 0, len(set))
		for w := range set {
			lst = append(lst, w)
		}
		sort.Strings(lst)
		out[v] = lst
	}
	return out
}

// Distances returns the BFS distances from variable v to every variable of q
// in the hypergraph (d(u,v) of Section 5.1). Unreachable variables are
// absent from the map.
func (q *Query) Distances(v string) map[string]int {
	adj := q.varAdjacency()
	dist := map[string]int{v: 0}
	queue := []string{v}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range adj[u] {
			if _, ok := dist[w]; !ok {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Radius returns rad(q) = min_u max_v d(u,v) over variables of q.
// It panics if q is not connected (distances are infinite).
func (q *Query) Radius() int {
	if !q.IsConnected() {
		panic("query: radius of a disconnected query is infinite")
	}
	best := -1
	for _, u := range q.vars {
		ecc := q.eccentricity(u)
		if best < 0 || ecc < best {
			best = ecc
		}
	}
	return best
}

// Diameter returns diam(q) = max_{u,v} d(u,v). It panics if q is not
// connected.
func (q *Query) Diameter() int {
	if !q.IsConnected() {
		panic("query: diameter of a disconnected query is infinite")
	}
	best := 0
	for _, u := range q.vars {
		if ecc := q.eccentricity(u); ecc > best {
			best = ecc
		}
	}
	return best
}

func (q *Query) eccentricity(u string) int {
	dist := q.Distances(u)
	if len(dist) != len(q.vars) {
		panic("query: eccentricity on disconnected query")
	}
	ecc := 0
	for _, d := range dist {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Clone returns a deep copy of q.
func (q *Query) Clone() *Query {
	atoms := make([]Atom, len(q.Atoms))
	for i, a := range q.Atoms {
		atoms[i] = Atom{Name: a.Name, Vars: append([]string(nil), a.Vars...)}
	}
	return New(q.Name, atoms...)
}

// SameShape reports whether q and other have identical atom names, arities,
// and variable-equality pattern up to a renaming of variables — the check a
// planner uses to recognize a query family instance (e.g. "is this L_k?")
// regardless of how the caller named the variables.
func (q *Query) SameShape(other *Query) bool {
	if other == nil || len(q.Atoms) != len(other.Atoms) {
		return false
	}
	rename := make(map[string]string, len(q.vars))
	seen := make(map[string]bool, len(q.vars))
	for i, a := range q.Atoms {
		b := other.Atoms[i]
		if a.Name != b.Name || len(a.Vars) != len(b.Vars) {
			return false
		}
		for c, v := range a.Vars {
			w := b.Vars[c]
			if r, ok := rename[v]; ok {
				if r != w {
					return false
				}
				continue
			}
			if seen[w] {
				return false // w already the image of a different variable
			}
			rename[v] = w
			seen[w] = true
		}
	}
	return true
}
