package query

// IsAcyclic reports whether the query's hypergraph is α-acyclic, via the
// GYO reduction: repeatedly (1) drop variables that occur in a single atom
// and (2) drop atoms whose variable set is contained in another atom's.
// The query is acyclic iff every connected component reduces to one atom.
//
// Section 2.2 notes the relationship to tree-likeness: tree-like queries
// are acyclic, but not conversely (e.g. S1(x0,x1,x2), S2(x1,x2,x3) is
// acyclic with χ = 1).
func (q *Query) IsAcyclic() bool {
	// Work on variable sets per remaining atom.
	sets := make([]map[string]bool, 0, len(q.Atoms))
	for _, a := range q.Atoms {
		s := make(map[string]bool)
		for _, v := range a.Vars {
			s[v] = true
		}
		sets = append(sets, s)
	}
	for {
		changed := false
		// (1) Remove variables occurring in exactly one atom.
		count := make(map[string]int)
		for _, s := range sets {
			for v := range s {
				count[v]++
			}
		}
		for _, s := range sets {
			for v := range s {
				if count[v] == 1 {
					delete(s, v)
					changed = true
				}
			}
		}
		// (2) Remove atoms contained in another atom (including empties and
		// duplicates; keep one representative).
		for i := 0; i < len(sets); i++ {
			for j := 0; j < len(sets); j++ {
				if i == j {
					continue
				}
				if subset(sets[i], sets[j]) {
					sets = append(sets[:i], sets[i+1:]...)
					changed = true
					i--
					break
				}
			}
		}
		if !changed {
			break
		}
	}
	return len(sets) <= 1
}

func subset(a, b map[string]bool) bool {
	if len(a) > len(b) {
		return false
	}
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}
