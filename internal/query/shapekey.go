package query

import (
	"strconv"
	"strings"
)

// ShapeKey returns a canonical encoding of the query's shape: the ordered
// atom names and arities plus the variable-equality pattern, with variables
// replaced by their first-occurrence index. Two queries have equal ShapeKeys
// exactly when SameShape holds between them, so the key can index caches of
// shape-derived artifacts (HyperCube share allocations, skew layouts,
// multi-round plans) regardless of how callers named their variables:
//
//	Chain(3).ShapeKey() == "S1(0,1);S2(1,2);S3(2,3)"
//
// The query's own Name is deliberately excluded — it never affects planning.
func (q *Query) ShapeKey() string {
	var b strings.Builder
	for i, a := range q.Atoms {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(a.Name)
		b.WriteByte('(')
		for c, v := range a.Vars {
			if c > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(q.varIndex[v]))
		}
		b.WriteByte(')')
	}
	return b.String()
}
