package query

import "testing"

func TestShapeKeyCanonical(t *testing.T) {
	if got, want := Chain(3).ShapeKey(), "S1(0,1);S2(1,2);S3(2,3)"; got != want {
		t.Errorf("Chain(3).ShapeKey() = %q, want %q", got, want)
	}
	// Renamed variables produce the same key.
	a := MustParse("q(x,y,z) :- S1(x,y), S2(y,z)")
	b := MustParse("other(u,v,w) :- S1(u,v), S2(v,w)")
	if a.ShapeKey() != b.ShapeKey() {
		t.Errorf("renamed queries disagree: %q vs %q", a.ShapeKey(), b.ShapeKey())
	}
}

// TestShapeKeyMatchesSameShape asserts the documented contract: equal keys
// exactly when SameShape holds, over a corpus of related shapes.
func TestShapeKeyMatchesSameShape(t *testing.T) {
	corpus := []*Query{
		Chain(2),
		Chain(3),
		Star(2),
		Star(3),
		Triangle(),
		Cycle(4),
		MustParse("q(x,y) :- S1(x,y), S2(y,x)"), // reversed columns
		MustParse("q(x,y) :- S1(x,y), S2(x,y)"), // parallel edges
		MustParse("q(x) :- S1(x,x), S2(x,x)"),   // repeated variable
		MustParse("q(u,v,w) :- S1(u,v), S2(v,w)"),   // Chain(2) renamed
		MustParse("q(z,a,b) :- S1(z,a), S2(z,b)"),   // Star(2) renamed
		MustParse("q(x,y,z) :- S1(x,y), S2(z,y)"),   // not a chain: S2 flipped
		MustParse("q(x,y,z,w) :- S1(x,y), S2(z,w)"), // disconnected
		MustParse("q(x,y,z) :- R(x,y), S(y,z)"),     // different relation names
	}
	for i, qi := range corpus {
		for j, qj := range corpus {
			same := qi.SameShape(qj)
			keys := qi.ShapeKey() == qj.ShapeKey()
			if same != keys {
				t.Errorf("corpus[%d]=%s vs corpus[%d]=%s: SameShape=%v but key equality=%v (%q vs %q)",
					i, qi, j, qj, same, keys, qi.ShapeKey(), qj.ShapeKey())
			}
		}
	}
}
