package query

import (
	"strings"
	"testing"
)

func TestDOTTriangle(t *testing.T) {
	dot := Triangle().DOT()
	for _, want := range []string{"graph", `"x1" -- "x2"`, `label="S1"`, `"x3" -- "x1"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestDOTHigherArity(t *testing.T) {
	q := MustParse("S1(x0,x1,x2), S2(x1,x2,x3)")
	dot := q.DOT()
	if !strings.Contains(dot, "shape=box") {
		t.Errorf("ternary atoms should render as boxes:\n%s", dot)
	}
	// Box connects to all three variables.
	if strings.Count(dot, `"atom_S1" -- `) != 3 {
		t.Errorf("S1 box should connect to 3 vars:\n%s", dot)
	}
}

func TestDOTUnary(t *testing.T) {
	q := MustParse("R(x), S(x,y)")
	dot := q.DOT()
	if !strings.Contains(dot, `"atom_R"`) {
		t.Errorf("unary atom should render as box:\n%s", dot)
	}
}

func TestDOTRepeatedVarAtom(t *testing.T) {
	q := New("q", Atom{Name: "S", Vars: []string{"x", "x"}})
	dot := q.DOT()
	// Repeated-variable binary atom has one distinct var: box rendering.
	if !strings.Contains(dot, `"atom_S"`) {
		t.Errorf("S(x,x) should render as box:\n%s", dot)
	}
}
