package query

import (
	"fmt"
	"testing"
)

// queryFromBytes decodes a small query from fuzz input: atom count, then per
// atom an arity and variable picks from a bounded alphabet. Relation names
// are positional (R0, R1, ...), so two decoded queries always share a name
// space and shape comparison is meaningful. Returns nil when the input is
// too short.
func queryFromBytes(b []byte) *Query {
	if len(b) < 2 {
		return nil
	}
	nAtoms := 1 + int(b[0])%4
	b = b[1:]
	atoms := make([]Atom, 0, nAtoms)
	for j := 0; j < nAtoms; j++ {
		if len(b) < 1 {
			return nil
		}
		arity := 1 + int(b[0])%3
		b = b[1:]
		if len(b) < arity {
			return nil
		}
		vars := make([]string, arity)
		for c := 0; c < arity; c++ {
			vars[c] = fmt.Sprintf("v%d", int(b[c])%6)
		}
		b = b[arity:]
		atoms = append(atoms, Atom{Name: fmt.Sprintf("R%d", j), Vars: vars})
	}
	return New("fz", atoms...)
}

// renameVars applies a systematic variable renaming (v<i> -> w<i>), which
// must preserve the shape and therefore the ShapeKey.
func renameVars(q *Query) *Query {
	atoms := make([]Atom, len(q.Atoms))
	for j, a := range q.Atoms {
		vars := make([]string, len(a.Vars))
		for c, v := range a.Vars {
			vars[c] = "w" + v
		}
		atoms[j] = Atom{Name: a.Name, Vars: vars}
	}
	return New(q.Name, atoms...)
}

// FuzzShapeKey pins the cache-key contract the service's plan cache depends
// on: equal ShapeKeys exactly when SameShape holds, and the key is stable
// under cloning and under variable renaming.
func FuzzShapeKey(f *testing.F) {
	f.Add([]byte{2, 2, 0, 1, 2, 1, 2}, []byte{2, 2, 3, 4, 2, 4, 5})
	f.Add([]byte{0, 1, 0}, []byte{0, 1, 1})
	f.Add([]byte{3, 2, 0, 0, 2, 0, 1, 2, 1, 1}, []byte{3, 2, 0, 1, 2, 1, 1, 2, 1, 0})
	f.Add([]byte{1, 3, 0, 1, 2, 9}, []byte{1, 3, 2, 1, 0, 9})
	f.Fuzz(func(t *testing.T, ab, bb []byte) {
		qa := queryFromBytes(ab)
		qb := queryFromBytes(bb)
		if qa == nil || qb == nil {
			t.Skip()
		}
		keyEq := qa.ShapeKey() == qb.ShapeKey()
		shapeEq := qa.SameShape(qb)
		if keyEq != shapeEq {
			t.Fatalf("ShapeKey equality (%t) disagrees with SameShape (%t)\n  a: %s -> %q\n  b: %s -> %q",
				keyEq, shapeEq, qa, qa.ShapeKey(), qb, qb.ShapeKey())
		}
		// SameShape must be symmetric; the key equality trivially is.
		if shapeEq != qb.SameShape(qa) {
			t.Fatalf("SameShape not symmetric for %s / %s", qa, qb)
		}
		// Round-trip stability: cloning and recomputing never changes the key.
		if qa.ShapeKey() != qa.Clone().ShapeKey() {
			t.Fatalf("ShapeKey unstable across Clone for %s", qa)
		}
		if qa.ShapeKey() != qa.ShapeKey() {
			t.Fatalf("ShapeKey unstable across calls for %s", qa)
		}
		// Renaming variables preserves shape and key.
		ren := renameVars(qa)
		if !qa.SameShape(ren) || qa.ShapeKey() != ren.ShapeKey() {
			t.Fatalf("variable renaming changed the shape key: %s vs %s", qa, ren)
		}
	})
}
