package query

import (
	"fmt"
	"strings"
)

// Parse reads a conjunctive query in datalog-like notation, e.g.
//
//	q(x,y,z) :- S1(x,y), S2(y,z), S3(z,x)
//
// The head is optional; when present it must list exactly the variables of
// the body (the paper only considers full queries). Whitespace is ignored.
func Parse(s string) (*Query, error) {
	s = strings.TrimSpace(s)
	name := "q"
	body := s
	if i := strings.Index(s, ":-"); i >= 0 {
		head := strings.TrimSpace(s[:i])
		body = strings.TrimSpace(s[i+2:])
		hn, hv, err := parseAtom(head)
		if err != nil {
			return nil, fmt.Errorf("query: bad head: %w", err)
		}
		name = hn
		atoms, err := parseBody(body)
		if err != nil {
			return nil, err
		}
		q, err := build(name, atoms)
		if err != nil {
			return nil, err
		}
		if err := checkFull(q, hv); err != nil {
			return nil, err
		}
		return q, nil
	}
	atoms, err := parseBody(body)
	if err != nil {
		return nil, err
	}
	return build(name, atoms)
}

// MustParse is like Parse but panics on error; it is intended for
// tests and package-level declarations.
func MustParse(s string) *Query {
	q, err := Parse(s)
	if err != nil {
		panic(fmt.Errorf("query: MustParse: %w", err))
	}
	return q
}

func build(name string, atoms []Atom) (q *Query, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	return New(name, atoms...), nil
}

func checkFull(q *Query, headVars []string) error {
	if len(headVars) != q.NumVars() {
		return fmt.Errorf("query: head has %d variables, body has %d (query must be full)", len(headVars), q.NumVars())
	}
	for _, v := range headVars {
		if q.VarIndex(v) < 0 {
			return fmt.Errorf("query: head variable %q does not appear in body", v)
		}
	}
	return nil
}

func parseBody(body string) ([]Atom, error) {
	var atoms []Atom
	depth := 0
	start := 0
	flush := func(end int) error {
		part := strings.TrimSpace(body[start:end])
		if part == "" {
			return fmt.Errorf("query: empty atom in %q", body)
		}
		n, vs, err := parseAtom(part)
		if err != nil {
			return err
		}
		atoms = append(atoms, Atom{Name: n, Vars: vs})
		return nil
	}
	for i, r := range body {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("query: unbalanced parentheses in %q", body)
			}
		case ',':
			if depth == 0 {
				if err := flush(i); err != nil {
					return nil, err
				}
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("query: unbalanced parentheses in %q", body)
	}
	if err := flush(len(body)); err != nil {
		return nil, err
	}
	return atoms, nil
}

func parseAtom(s string) (name string, vars []string, err error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open <= 0 || !strings.HasSuffix(s, ")") {
		return "", nil, fmt.Errorf("query: malformed atom %q", s)
	}
	name = strings.TrimSpace(s[:open])
	inner := s[open+1 : len(s)-1]
	for _, part := range strings.Split(inner, ",") {
		v := strings.TrimSpace(part)
		if v == "" {
			return "", nil, fmt.Errorf("query: empty variable in atom %q", s)
		}
		vars = append(vars, v)
	}
	return name, vars, nil
}
