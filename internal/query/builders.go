package query

import "fmt"

// Chain returns the chain (linear) query
// L_k(x0,...,xk) = S1(x0,x1), S2(x1,x2), ..., Sk(x_{k-1},x_k)
// from Table 2 of the paper.
func Chain(k int) *Query {
	if k < 1 {
		panic("query: Chain requires k >= 1")
	}
	atoms := make([]Atom, k)
	for j := 1; j <= k; j++ {
		atoms[j-1] = Atom{
			Name: fmt.Sprintf("S%d", j),
			Vars: []string{fmt.Sprintf("x%d", j-1), fmt.Sprintf("x%d", j)},
		}
	}
	return New(fmt.Sprintf("L%d", k), atoms...)
}

// Cycle returns the cycle query
// C_k(x1,...,xk) = S1(x1,x2), S2(x2,x3), ..., Sk(xk,x1)
// from Table 2. Cycle(3) is the triangle query.
func Cycle(k int) *Query {
	if k < 2 {
		panic("query: Cycle requires k >= 2")
	}
	atoms := make([]Atom, k)
	for j := 1; j <= k; j++ {
		next := j%k + 1
		atoms[j-1] = Atom{
			Name: fmt.Sprintf("S%d", j),
			Vars: []string{fmt.Sprintf("x%d", j), fmt.Sprintf("x%d", next)},
		}
	}
	return New(fmt.Sprintf("C%d", k), atoms...)
}

// Triangle returns the triangle query C3 = S1(x1,x2), S2(x2,x3), S3(x3,x1).
func Triangle() *Query { return Cycle(3) }

// Star returns the star query
// T_k(z,x1,...,xk) = S1(z,x1), S2(z,x2), ..., Sk(z,xk)
// from Table 2 and Section 4.2. Star(2) is the simple join query.
func Star(k int) *Query {
	if k < 1 {
		panic("query: Star requires k >= 1")
	}
	atoms := make([]Atom, k)
	for j := 1; j <= k; j++ {
		atoms[j-1] = Atom{
			Name: fmt.Sprintf("S%d", j),
			Vars: []string{"z", fmt.Sprintf("x%d", j)},
		}
	}
	return New(fmt.Sprintf("T%d", k), atoms...)
}

// SimpleJoin returns q(x,y,z) = S1(x,z), S2(y,z), the join query of
// Example 4.1 (equivalent to Star(2) up to variable naming).
func SimpleJoin() *Query {
	return New("join",
		Atom{Name: "S1", Vars: []string{"x", "z"}},
		Atom{Name: "S2", Vars: []string{"y", "z"}},
	)
}

// Binom returns B_{k,m}, the query with one m-ary atom for every m-subset of
// the k head variables (Table 2). The number of atoms is C(k,m).
func Binom(k, m int) *Query {
	if m < 1 || m > k {
		panic("query: Binom requires 1 <= m <= k")
	}
	var atoms []Atom
	subset := make([]int, m)
	var rec func(start, idx int)
	rec = func(start, idx int) {
		if idx == m {
			vars := make([]string, m)
			name := "S"
			for i, v := range subset {
				vars[i] = fmt.Sprintf("x%d", v)
				name += fmt.Sprintf("_%d", v)
			}
			atoms = append(atoms, Atom{Name: name, Vars: vars})
			return
		}
		for v := start; v <= k; v++ {
			subset[idx] = v
			rec(v+1, idx+1)
		}
	}
	rec(1, 0)
	return New(fmt.Sprintf("B%d_%d", k, m), atoms...)
}

// SpokedWheel returns SP_k = ∧_{i=1..k} R_i(z,x_i), S_i(x_i,y_i), the
// "star of paths" query of Example 5.3: τ*(SP_k)=k but it has a 2-round
// plan with load O(M/p).
func SpokedWheel(k int) *Query {
	if k < 1 {
		panic("query: SpokedWheel requires k >= 1")
	}
	atoms := make([]Atom, 0, 2*k)
	for i := 1; i <= k; i++ {
		atoms = append(atoms,
			Atom{Name: fmt.Sprintf("R%d", i), Vars: []string{"z", fmt.Sprintf("x%d", i)}},
			Atom{Name: fmt.Sprintf("S%d", i), Vars: []string{fmt.Sprintf("x%d", i), fmt.Sprintf("y%d", i)}},
		)
	}
	return New(fmt.Sprintf("SP%d", k), atoms...)
}

// K4 returns the complete graph query on 4 variables used in Section 2.2:
// K4 = S1(x1,x2), S2(x1,x3), S3(x2,x3), S4(x1,x4), S5(x2,x4), S6(x3,x4).
func K4() *Query {
	return New("K4",
		Atom{Name: "S1", Vars: []string{"x1", "x2"}},
		Atom{Name: "S2", Vars: []string{"x1", "x3"}},
		Atom{Name: "S3", Vars: []string{"x2", "x3"}},
		Atom{Name: "S4", Vars: []string{"x1", "x4"}},
		Atom{Name: "S5", Vars: []string{"x2", "x4"}},
		Atom{Name: "S6", Vars: []string{"x3", "x4"}},
	)
}
