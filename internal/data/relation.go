// Package data provides the relational data substrate for the MPC
// experiments: flat-stored relations over an integer domain [n], the
// matching-database and skewed workload generators used by the paper's
// probability spaces (Sections 3.2, 4 and 5.3), and frequency/degree
// statistics including heavy-hitter detection.
package data

import (
	"fmt"
	"math/bits"
	"sort"
	"sync/atomic"

	"mpcquery/internal/hashing"
)

// Relation is a bag of fixed-arity tuples over int64 values, stored in a
// single flat slice (row-major) to keep per-tuple overhead at zero.
//
// A relation may additionally carry one semiring annotation per tuple (see
// package aggregate): partial aggregates travel as annotated relations whose
// Arity covers the group key and whose annotation column holds the folded
// value. A relation is either fully annotated or not at all; the two append
// families must not be mixed.
type Relation struct {
	Name  string
	Arity int
	vals  []int64
	annot []int64 // nil = unannotated; else one value per tuple

	// ident caches the content fingerprint computed by Identity; 0 means
	// "not computed". Mutators reset it. Stored atomically so concurrent
	// readers of a shared, no-longer-mutated relation may race only on
	// writing the identical value.
	ident atomic.Uint64
}

// NewRelation returns an empty relation with the given name and arity.
func NewRelation(name string, arity int) *Relation {
	if arity < 1 {
		panic("data: relation arity must be >= 1")
	}
	return &Relation{Name: name, Arity: arity}
}

// FromTuples builds a relation from explicit tuples (copied).
func FromTuples(name string, arity int, tuples ...[]int64) *Relation {
	r := NewRelation(name, arity)
	for _, t := range tuples {
		r.AppendTuple(t)
	}
	return r
}

// NumTuples returns the number of tuples (m_j in the paper).
func (r *Relation) NumTuples() int { return len(r.vals) / r.Arity }

// Append adds one tuple given as variadic values.
func (r *Relation) Append(t ...int64) { r.AppendTuple(t) }

// AppendTuple adds one tuple; its length must equal the arity.
func (r *Relation) AppendTuple(t []int64) {
	if len(t) != r.Arity {
		panic(fmt.Sprintf("data: tuple of length %d appended to %s (arity %d)", len(t), r.Name, r.Arity))
	}
	if r.annot != nil {
		panic(fmt.Sprintf("data: plain append to annotated relation %s", r.Name))
	}
	r.vals = append(r.vals, t...)
	r.ident.Store(0)
}

// Annotated reports whether the relation carries an annotation column.
func (r *Relation) Annotated() bool { return r.annot != nil }

// Annotation returns tuple i's annotation; the relation must be annotated.
func (r *Relation) Annotation(i int) int64 { return r.annot[i] }

// Annotations returns the annotation column (nil for plain relations); the
// caller must not modify it.
func (r *Relation) Annotations() []int64 { return r.annot }

// AppendAnnotatedTuple adds one tuple with its semiring annotation. Plain
// and annotated appends must not be mixed on one relation.
func (r *Relation) AppendAnnotatedTuple(t []int64, a int64) {
	if len(t) != r.Arity {
		panic(fmt.Sprintf("data: tuple of length %d appended to %s (arity %d)", len(t), r.Name, r.Arity))
	}
	if r.annot == nil && len(r.vals) > 0 {
		panic(fmt.Sprintf("data: annotated append to plain relation %s", r.Name))
	}
	if r.annot == nil {
		r.annot = make([]int64, 0, 8)
	}
	r.vals = append(r.vals, t...)
	r.annot = append(r.annot, a)
	r.ident.Store(0)
}

// AppendVals bulk-appends a flat row-major block of tuples; len(vals) must
// be a multiple of the arity. This is the columnar ingest path for engine
// batches: one copy, no per-tuple bookkeeping.
func (r *Relation) AppendVals(vals []int64) {
	if len(vals)%r.Arity != 0 {
		panic(fmt.Sprintf("data: block of %d values appended to %s (arity %d)", len(vals), r.Name, r.Arity))
	}
	if r.annot != nil {
		panic(fmt.Sprintf("data: plain append to annotated relation %s", r.Name))
	}
	r.vals = append(r.vals, vals...)
	r.ident.Store(0)
}

// Vals returns the relation's flat row-major storage (tuple i occupies
// [i*Arity, (i+1)*Arity)). It is a live view for columnar kernels: the
// caller must not modify it, and it is invalidated by subsequent appends.
func (r *Relation) Vals() []int64 { return r.vals }

// Reset empties the relation in place, keeping the backing capacity — the
// reuse path for per-worker fragment buffers rebuilt every server. An
// annotated relation becomes plain again (both append families are open).
func (r *Relation) Reset() {
	r.vals = r.vals[:0]
	r.annot = nil
	r.ident.Store(0)
}

// Identity returns a 64-bit content fingerprint of (arity, values), never 0,
// computed lazily and cached until the next mutation. Two relations with
// equal Identity hold the same tuple sequence with overwhelming probability;
// the local-join index cache uses it to share one index build across servers
// that received identical fragments. Concurrent calls on a relation that is
// no longer being mutated are safe; mutating while another goroutine reads
// is the caller's race, as with every other accessor.
func (r *Relation) Identity() uint64 {
	if id := r.ident.Load(); id != 0 {
		return id
	}
	h := hashing.Combine(0x9d3c0aa1786f3d2b, uint64(r.Arity))
	for _, v := range r.vals {
		h = hashing.Combine(h, uint64(v))
	}
	if r.annot != nil {
		h = hashing.Combine(h, 0x5ca1_ab1e_0000_0001)
		for _, a := range r.annot {
			h = hashing.Combine(h, uint64(a))
		}
	}
	if h == 0 {
		h = 1
	}
	r.ident.Store(h)
	return h
}

// Tuple returns a view of tuple i; the caller must not grow it, and it is
// invalidated by subsequent appends.
func (r *Relation) Tuple(i int) []int64 {
	return r.vals[i*r.Arity : (i+1)*r.Arity : (i+1)*r.Arity]
}

// At returns column col of tuple i.
func (r *Relation) At(i, col int) int64 { return r.vals[i*r.Arity+col] }

// Grow pre-allocates capacity for n additional tuples.
func (r *Relation) Grow(n int) {
	need := len(r.vals) + n*r.Arity
	if cap(r.vals) < need {
		nv := make([]int64, len(r.vals), need)
		copy(nv, r.vals)
		r.vals = nv
	}
}

// Clone returns a deep copy.
func (r *Relation) Clone() *Relation {
	c := &Relation{Name: r.Name, Arity: r.Arity, vals: append([]int64(nil), r.vals...)}
	if r.annot != nil {
		c.annot = append([]int64(nil), r.annot...)
	}
	return c
}

// SizeBits returns M_j = a_j · m_j · ⌈log₂ n⌉, the paper's size-in-bits
// measure for a relation over domain [n]. An annotation column counts as one
// extra value per tuple — it travels on the wire like any other column.
func (r *Relation) SizeBits(n int64) float64 {
	a := r.Arity
	if r.annot != nil {
		a++
	}
	return float64(a) * float64(r.NumTuples()) * float64(BitsPerValue(n))
}

// BitsPerValue returns ⌈log₂ n⌉, the bits needed to encode one domain value.
func BitsPerValue(n int64) int {
	if n <= 1 {
		return 1
	}
	return bits.Len64(uint64(n - 1))
}

// Canonical returns a sorted, duplicate-free copy, used to compare query
// results for set equality.
func (r *Relation) Canonical() *Relation {
	m := r.NumTuples()
	idx := make([]int, m)
	for i := range idx {
		idx[i] = i
	}
	a := r.Arity
	less := func(i, j int) bool {
		ti, tj := r.Tuple(idx[i]), r.Tuple(idx[j])
		for c := 0; c < a; c++ {
			if ti[c] != tj[c] {
				return ti[c] < tj[c]
			}
		}
		return false
	}
	sort.Slice(idx, less)
	out := NewRelation(r.Name, a)
	out.Grow(m)
	var prev []int64
	for _, i := range idx {
		t := r.Tuple(i)
		if prev != nil && tupleEq(prev, t) {
			continue
		}
		out.AppendTuple(t)
		prev = out.Tuple(out.NumTuples() - 1)
	}
	return out
}

func tupleEq(a, b []int64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Equal reports whether a and b contain the same set of tuples
// (ignoring order and multiplicity).
func Equal(a, b *Relation) bool {
	if a.Arity != b.Arity {
		return false
	}
	ca, cb := a.Canonical(), b.Canonical()
	if ca.NumTuples() != cb.NumTuples() {
		return false
	}
	for i := 0; i < ca.NumTuples(); i++ {
		if !tupleEq(ca.Tuple(i), cb.Tuple(i)) {
			return false
		}
	}
	return true
}

// sorted returns a copy of r with its tuples in lexicographic order,
// keeping duplicates.
func (r *Relation) sorted() *Relation {
	m := r.NumTuples()
	idx := make([]int, m)
	for i := range idx {
		idx[i] = i
	}
	a := r.Arity
	sort.Slice(idx, func(i, j int) bool {
		ti, tj := r.Tuple(idx[i]), r.Tuple(idx[j])
		for c := 0; c < a; c++ {
			if ti[c] != tj[c] {
				return ti[c] < tj[c]
			}
		}
		return false
	})
	out := NewRelation(r.Name, a)
	out.Grow(m)
	for _, i := range idx {
		out.AppendTuple(r.Tuple(i))
	}
	return out
}

// EqualMultiset reports whether a and b contain the same bag of tuples:
// order is ignored but multiplicity is respected, so {t, t} ≠ {t}. This is
// the right comparison for query outputs, which are bags when the inputs
// contain duplicate tuples.
func EqualMultiset(a, b *Relation) bool {
	if a.Arity != b.Arity || a.NumTuples() != b.NumTuples() {
		return false
	}
	sa, sb := a.sorted(), b.sorted()
	for i := 0; i < sa.NumTuples(); i++ {
		if !tupleEq(sa.Tuple(i), sb.Tuple(i)) {
			return false
		}
	}
	return true
}

// Concat returns one relation holding every part's tuples in part order —
// the per-server output union of a computation phase, assembled with one
// bulk copy per part. Every part must have the given arity.
func Concat(name string, arity int, parts []*Relation) *Relation {
	out := NewRelation(name, arity)
	total := 0
	for _, p := range parts {
		total += p.NumTuples()
	}
	out.Grow(total)
	for _, p := range parts {
		out.AppendVals(p.Vals())
	}
	return out
}

// Database is a set of named relations over a common domain [n].
type Database struct {
	N         int64 // domain size
	Relations map[string]*Relation
}

// NewDatabase returns an empty database with domain size n.
func NewDatabase(n int64) *Database {
	return &Database{N: n, Relations: make(map[string]*Relation)}
}

// Add inserts (or replaces) a relation.
func (db *Database) Add(r *Relation) { db.Relations[r.Name] = r }

// Get returns the named relation; it panics if absent, since callers always
// look up atoms of a validated query.
func (db *Database) Get(name string) *Relation {
	r, ok := db.Relations[name]
	if !ok {
		panic(fmt.Sprintf("data: relation %q not in database", name))
	}
	return r
}

// TotalBits returns Σ_j M_j over all relations.
func (db *Database) TotalBits() float64 {
	total := 0.0
	for _, r := range db.Relations {
		total += r.SizeBits(db.N)
	}
	return total
}
