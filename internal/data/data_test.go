package data

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mpcquery/internal/query"
)

func TestRelationBasics(t *testing.T) {
	r := NewRelation("R", 2)
	r.Append(1, 2)
	r.Append(3, 4)
	if r.NumTuples() != 2 {
		t.Fatalf("NumTuples=%d", r.NumTuples())
	}
	if r.At(1, 0) != 3 || r.At(1, 1) != 4 {
		t.Fatalf("At wrong: %v", r.Tuple(1))
	}
	c := r.Clone()
	c.Append(5, 6)
	if r.NumTuples() != 2 {
		t.Error("Clone should not share storage")
	}
}

func TestBitsPerValue(t *testing.T) {
	tests := []struct {
		n    int64
		want int
	}{{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11}}
	for _, tt := range tests {
		if got := BitsPerValue(tt.n); got != tt.want {
			t.Errorf("BitsPerValue(%d)=%d want %d", tt.n, got, tt.want)
		}
	}
}

func TestSizeBits(t *testing.T) {
	r := NewRelation("R", 2)
	for i := int64(0); i < 10; i++ {
		r.Append(i, i)
	}
	if got := r.SizeBits(1024); got != 2*10*10 {
		t.Errorf("SizeBits=%v want 200", got)
	}
}

func TestCanonicalAndEqual(t *testing.T) {
	a := FromTuples("A", 2, []int64{3, 4}, []int64{1, 2}, []int64{3, 4})
	b := FromTuples("B", 2, []int64{1, 2}, []int64{3, 4})
	if !Equal(a, b) {
		t.Error("sets should be equal despite order and duplicates")
	}
	c := FromTuples("C", 2, []int64{1, 2})
	if Equal(a, c) {
		t.Error("different sets reported equal")
	}
	can := a.Canonical()
	if can.NumTuples() != 2 || can.At(0, 0) != 1 {
		t.Errorf("canonical wrong: %v tuples, first %v", can.NumTuples(), can.Tuple(0))
	}
}

func TestSampleDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := SampleDistinct(rng, 100, 150)
	if len(s) != 100 {
		t.Fatalf("len=%d", len(s))
	}
	seen := make(map[int64]bool)
	for _, v := range s {
		if v < 0 || v >= 150 {
			t.Fatalf("out of range: %d", v)
		}
		if seen[v] {
			t.Fatalf("duplicate value %d", v)
		}
		seen[v] = true
	}
}

// TestRandomMatchingDegrees checks the defining property of a matching
// database: every value has degree at most 1 in every column.
func TestRandomMatchingDegrees(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		arity := 1 + r.Intn(3)
		m := 1 + r.Intn(200)
		n := int64(m + r.Intn(1000))
		rel := RandomMatching(r, "R", arity, m, n)
		if rel.NumTuples() != m {
			return false
		}
		for c := 0; c < arity; c++ {
			if MaxDegree(rel, c) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestMatchingDatabase(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q := query.Triangle()
	db := MatchingDatabase(rng, q, 100, 10000)
	if len(db.Relations) != 3 {
		t.Fatalf("relations=%d", len(db.Relations))
	}
	for _, a := range q.Atoms {
		r := db.Get(a.Name)
		if r.NumTuples() != 100 || r.Arity != 2 {
			t.Errorf("%s: %d tuples arity %d", a.Name, r.NumTuples(), r.Arity)
		}
	}
	if db.TotalBits() != 3*2*100*14 {
		t.Errorf("TotalBits=%v", db.TotalBits())
	}
}

// TestChainMatchingDatabase checks that the chain database composes:
// following S1..Sk from any start value reaches exactly one end value.
func TestChainMatchingDatabase(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	k, m := 4, 50
	db := ChainMatchingDatabase(rng, k, m, 100000)
	// Build maps and compose.
	cur := make(map[int64]int64)
	first := db.Get("S1")
	for i := 0; i < first.NumTuples(); i++ {
		cur[first.At(i, 0)] = first.At(i, 1)
	}
	if len(cur) != m {
		t.Fatalf("S1 not injective on column 0")
	}
	for j := 2; j <= k; j++ {
		r := db.Get(query.Chain(k).Atoms[j-1].Name)
		step := make(map[int64]int64)
		for i := 0; i < r.NumTuples(); i++ {
			step[r.At(i, 0)] = r.At(i, 1)
		}
		next := make(map[int64]int64, len(cur))
		for s, v := range cur {
			nv, ok := step[v]
			if !ok {
				t.Fatalf("chain broken at S%d: value %d has no successor", j, v)
			}
			next[s] = nv
		}
		cur = next
	}
	if len(cur) != m {
		t.Fatalf("chain outputs %d paths, want %d", len(cur), m)
	}
}

func TestSkewedPair(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s1, s2 := SkewedPair(rng, 1000, 1_000_000, 42, 0.5)
	f1 := ColumnFrequencies(s1, 1)
	if f1[42] != 500 {
		t.Errorf("S1 heavy count=%d want 500", f1[42])
	}
	if MaxDegree(s1, 0) != 1 {
		t.Error("S1 column 0 should be a matching column")
	}
	f2 := ColumnFrequencies(s2, 1)
	if f2[42] != 500 {
		t.Errorf("S2 heavy count=%d want 500", f2[42])
	}
	// Light values have degree 1.
	for v, c := range f1 {
		if v != 42 && c != 1 {
			t.Errorf("light value %d has degree %d", v, c)
		}
	}
}

func TestSkewedStarDatabase(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	heavy := map[int64]int{7: 100, 9: 50}
	db := SkewedStarDatabase(rng, 3, 1000, 1_000_000, heavy)
	for j := 1; j <= 3; j++ {
		r := db.Get(query.Star(3).Atoms[j-1].Name)
		freq := ColumnFrequencies(r, 0)
		if freq[7] != 100 || freq[9] != 50 {
			t.Errorf("S%d heavy counts: %d, %d", j, freq[7], freq[9])
		}
		if MaxDegree(r, 1) != 1 {
			t.Errorf("S%d x-column should be matching", j)
		}
	}
}

func TestSkewedTriangleDatabase(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := SkewedTriangleDatabase(rng, 500, 1_000_000, 3, 100)
	if got := ColumnFrequencies(db.Get("S1"), 0)[3]; got != 100 {
		t.Errorf("S1 x1-heavy count=%d", got)
	}
	if got := ColumnFrequencies(db.Get("S3"), 1)[3]; got != 100 {
		t.Errorf("S3 x1-heavy count=%d", got)
	}
	if MaxDegree(db.Get("S2"), 0) != 1 || MaxDegree(db.Get("S2"), 1) != 1 {
		t.Error("S2 should be a matching")
	}
}

func TestHeavyHittersAndTopK(t *testing.T) {
	freq := map[int64]int{1: 100, 2: 50, 3: 5, 4: 5}
	hh := HeavyHitters(freq, 50)
	if len(hh) != 2 || hh[1] != 100 || hh[2] != 50 {
		t.Errorf("heavy hitters: %v", hh)
	}
	top := TopK(freq, 3)
	if len(top) != 3 || top[0] != 1 || top[1] != 2 {
		t.Errorf("TopK: %v", top)
	}
}

func TestSampledFrequencies(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	r := NewRelation("R", 2)
	// Value 5 occupies half the relation.
	for i := 0; i < 1000; i++ {
		if i < 500 {
			r.Append(5, int64(i))
		} else {
			r.Append(int64(i+1000), int64(i))
		}
	}
	est := SampledFrequencies(rng, r, 0, 200)
	if est[5] < 300 || est[5] > 700 {
		t.Errorf("estimate for heavy value: %v (want ≈500)", est[5])
	}
	// Full-sample path returns exact counts.
	exact := SampledFrequencies(rng, r, 0, 10_000)
	if exact[5] != 500 {
		t.Errorf("exact path: %v", exact[5])
	}
}

func TestDegreePromise(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rel := RandomMatching(rng, "R", 2, 100, 1000)
	// Matching: degree 1 per column gives β=0.1 there, but the full-tuple
	// constraint 1 ≤ β²·m/(p0·p1) forces β = 1. β = O(1) is what the
	// Corollary 3.3 promise needs.
	if beta := DegreePromise(rel, 10, 10); beta > 1.01 {
		t.Errorf("matching promise β=%v (should be ≤ 1)", beta)
	}
	// Fully skewed relation: one value everywhere in column 0.
	sk := NewRelation("S", 2)
	for i := int64(0); i < 100; i++ {
		sk.Append(7, i)
	}
	if beta := DegreePromise(sk, 10, 10); beta < 9 {
		t.Errorf("skewed promise β=%v (should be ≈10)", beta)
	}
}

func TestLayeredPathGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := LayeredPathGraph(rng, 5, 20)
	if g.NumEdges() != 100 {
		t.Fatalf("edges=%d want 100", g.NumEdges())
	}
	comps := g.ComponentsSequential()
	labels := make(map[int64]bool)
	for _, l := range comps {
		labels[l] = true
	}
	if len(labels) != 20 {
		t.Errorf("components=%d want 20 (one per path)", len(labels))
	}
}

func TestRandomGraphAndComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := RandomGraph(rng, 50, 10) // sparse: many components
	comps := g.ComponentsSequential()
	if len(comps) != 50 {
		t.Fatalf("every vertex should be labeled, got %d", len(comps))
	}
	// Endpoint labels must agree across each edge.
	for i := 0; i < g.NumEdges(); i++ {
		u, v := g.Edges.At(i, 0), g.Edges.At(i, 1)
		if comps[u] != comps[v] {
			t.Fatalf("edge (%d,%d) spans two components", u, v)
		}
	}
}

func TestZipfRelation(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	r := ZipfRelation(rng, "Z", 10000, 1_000_000, 0, 1.5, 1000)
	if r.NumTuples() != 10000 {
		t.Fatalf("tuples=%d", r.NumTuples())
	}
	// Zipf with s=1.5 should make value 0 clearly heavy.
	freq := ColumnFrequencies(r, 0)
	if freq[0] < 1000 {
		t.Errorf("zipf head frequency=%d (expected heavy)", freq[0])
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := FromTuples("R", 2, []int64{1, 2}, []int64{-3, 40}, []int64{0, 0})
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "R", 2)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(r, got) {
		t.Fatalf("round trip mismatch: %d tuples", got.NumTuples())
	}
}

func TestCSVCommentsAndErrors(t *testing.T) {
	in := "# header\n1,2\n\n3,4\n"
	r, err := ReadCSV(strings.NewReader(in), "R", 2)
	if err != nil || r.NumTuples() != 2 {
		t.Fatalf("comments: %v, %d tuples", err, r.NumTuples())
	}
	if _, err := ReadCSV(strings.NewReader("1,2,3\n"), "R", 2); err == nil {
		t.Error("wrong arity should fail")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n"), "R", 2); err == nil {
		t.Error("non-integer should fail")
	}
}

func TestMaxValue(t *testing.T) {
	r := FromTuples("R", 2, []int64{1, 9}, []int64{5, 2})
	if r.MaxValue() != 9 {
		t.Errorf("max=%d", r.MaxValue())
	}
	if NewRelation("E", 1).MaxValue() != 0 {
		t.Error("empty max should be 0")
	}
}

func TestEqualMultiset(t *testing.T) {
	a := NewRelation("R", 2)
	a.Append(1, 2)
	a.Append(1, 2)
	a.Append(3, 4)
	b := NewRelation("R", 2)
	b.Append(3, 4)
	b.Append(1, 2)
	b.Append(1, 2)
	if !EqualMultiset(a, b) {
		t.Error("same bag in different order must be multiset-equal")
	}
	c := NewRelation("R", 2)
	c.Append(1, 2)
	c.Append(3, 4)
	if EqualMultiset(a, c) {
		t.Error("different multiplicities must not be multiset-equal")
	}
	if !Equal(a, c) {
		t.Error("set compare must ignore the duplicate")
	}
	d := NewRelation("R", 1)
	d.Append(1)
	if EqualMultiset(a, d) {
		t.Error("different arities must not be equal")
	}
}
