package data

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV writes the relation as comma-separated integer rows, one tuple
// per line, in storage order.
func (r *Relation) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	m := r.NumTuples()
	for i := 0; i < m; i++ {
		t := r.Tuple(i)
		for c, v := range t {
			if c > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatInt(v, 10)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV reads a relation with the given name and arity from
// comma-separated integer rows. Blank lines and lines starting with '#' are
// skipped; every other line must have exactly arity fields.
func ReadCSV(rd io.Reader, name string, arity int) (*Relation, error) {
	rel := NewRelation(name, arity)
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	tuple := make([]int64, arity)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != arity {
			return nil, fmt.Errorf("data: line %d has %d fields, want %d", lineNo, len(fields), arity)
		}
		for c, f := range fields {
			v, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("data: line %d field %d: %v", lineNo, c+1, err)
			}
			tuple[c] = v
		}
		rel.AppendTuple(tuple)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rel, nil
}

// MaxValue returns the largest value occurring in the relation (0 when
// empty) — handy for choosing a domain size after ReadCSV.
func (r *Relation) MaxValue() int64 {
	var best int64
	for _, v := range r.vals {
		if v > best {
			best = v
		}
	}
	return best
}
