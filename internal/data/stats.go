package data

import (
	"math"
	"math/rand"
	"sort"
)

// SortedKeys returns m's keys in ascending order. Go randomizes map
// iteration, so a loop whose effects are order-sensitive — emitting
// tuples, appending to a relation, anything fingerprint-visible — must
// iterate this slice instead of the map; the mpclint maporder analyzer
// enforces exactly that, and SPMD ranks diverge when it is violated.
func SortedKeys[V any](m map[int64]V) []int64 {
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// ColumnFrequencies returns the frequency of every value in the given column
// (m_j(h) of Section 4.2, as counts).
func ColumnFrequencies(r *Relation, col int) map[int64]int {
	freq := make(map[int64]int)
	m := r.NumTuples()
	for i := 0; i < m; i++ {
		freq[r.At(i, col)]++
	}
	return freq
}

// HeavyHitters returns the values whose frequency is at least threshold,
// with their exact frequencies. The paper's threshold is m_j/p (Section 4.2),
// which guarantees at most p heavy hitters per relation.
func HeavyHitters(freq map[int64]int, threshold int) map[int64]int {
	out := make(map[int64]int)
	for v, c := range freq {
		if c >= threshold {
			out[v] = c
		}
	}
	return out
}

// MaxDegree returns the largest frequency in the column.
func MaxDegree(r *Relation, col int) int {
	best := 0
	for _, c := range ColumnFrequencies(r, col) {
		if c > best {
			best = c
		}
	}
	return best
}

// SampledFrequencies estimates per-value frequencies from a uniform sample
// of sampleSize tuples, scaled back to the full relation. The paper notes
// (Section 1) that heavy-hitter statistics "can be easily obtained in
// advance from small samples of the input"; this implements that estimator.
func SampledFrequencies(rng *rand.Rand, r *Relation, col, sampleSize int) map[int64]float64 {
	m := r.NumTuples()
	if sampleSize >= m {
		out := make(map[int64]float64)
		for v, c := range ColumnFrequencies(r, col) {
			out[v] = float64(c)
		}
		return out
	}
	counts := make(map[int64]int)
	for s := 0; s < sampleSize; s++ {
		counts[r.At(rng.Intn(m), col)]++
	}
	scale := float64(m) / float64(sampleSize)
	out := make(map[int64]float64, len(counts))
	for v, c := range counts {
		out[v] = float64(c) * scale
	}
	return out
}

// FrequenciesBits converts count frequencies to the paper's bit measure
// M_j(h) = a_j · m_j(h) · ⌈log₂ n⌉.
func FrequenciesBits(freq map[int64]int, arity int, n int64) map[int64]float64 {
	out := make(map[int64]float64, len(freq))
	b := float64(arity * BitsPerValue(n))
	for v, c := range freq {
		out[v] = float64(c) * b
	}
	return out
}

// TopK returns the k most frequent values in descending frequency order
// (ties broken by value for determinism).
func TopK(freq map[int64]int, k int) []int64 {
	type vc struct {
		v int64
		c int
	}
	all := make([]vc, 0, len(freq))
	for v, c := range freq {
		all = append(all, vc{v, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].v < all[j].v
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]int64, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].v
	}
	return out
}

// PairDegrees returns, for a binary relation, the frequency of each (full
// tuple) pair — the degree d_J(R) for |U| = 2 used in the promise of
// Lemma 3.2 / Corollary 3.3.
func PairDegrees(r *Relation) map[[2]int64]int {
	if r.Arity != 2 {
		panic("data: PairDegrees requires a binary relation")
	}
	out := make(map[[2]int64]int)
	m := r.NumTuples()
	for i := 0; i < m; i++ {
		out[[2]int64{r.At(i, 0), r.At(i, 1)}]++
	}
	return out
}

// DegreePromise checks the Corollary 3.3 condition for a binary relation R
// and per-column shares p0, p1: for every single column U={c}, every value
// must have degree ≤ β·m/p_c, and every full pair degree ≤ β²·m/(p0·p1).
// It returns the smallest β for which the promise holds.
func DegreePromise(r *Relation, p0, p1 int) float64 {
	m := float64(r.NumTuples())
	beta := 0.0
	for col, pc := range []int{p0, p1} {
		for _, c := range ColumnFrequencies(r, col) {
			if b := float64(c) * float64(pc) / m; b > beta {
				beta = b
			}
		}
	}
	for _, c := range PairDegrees(r) {
		need := float64(c) * float64(p0*p1) / m
		if b := math.Sqrt(need); b > beta {
			beta = b
		}
	}
	return beta
}
