package data

import (
	"math/rand"
	"sort"

	"mpcquery/internal/query"
)

// SampleDistinct draws m distinct values uniformly from [0,n) using Floyd's
// algorithm (O(m) expected time and space, independent of n).
func SampleDistinct(rng *rand.Rand, m int, n int64) []int64 {
	if int64(m) > n {
		panic("data: cannot sample more distinct values than the domain size")
	}
	chosen := make(map[int64]bool, m)
	out := make([]int64, 0, m)
	for j := n - int64(m); j < n; j++ {
		t := rng.Int63n(j + 1)
		if chosen[t] {
			t = j
		}
		chosen[t] = true
		out = append(out, t)
	}
	return out
}

// RandomMatching generates an a-dimensional matching of [0,n) with m tuples:
// every column is injective, so every value has degree exactly 1 in every
// column — the paper's matching probability space (Section 3.2).
func RandomMatching(rng *rand.Rand, name string, arity, m int, n int64) *Relation {
	cols := make([][]int64, arity)
	for c := range cols {
		cols[c] = SampleDistinct(rng, m, n)
		rng.Shuffle(m, func(i, j int) { cols[c][i], cols[c][j] = cols[c][j], cols[c][i] })
	}
	r := NewRelation(name, arity)
	r.Grow(m)
	t := make([]int64, arity)
	for i := 0; i < m; i++ {
		for c := 0; c < arity; c++ {
			t[c] = cols[c][i]
		}
		r.AppendTuple(t)
	}
	return r
}

// MatchingDatabase generates one independent random matching per atom of q,
// each with m tuples over domain [0,n).
func MatchingDatabase(rng *rand.Rand, q *query.Query, m int, n int64) *Database {
	db := NewDatabase(n)
	for _, a := range q.Atoms {
		db.Add(RandomMatching(rng, a.Name, a.Arity(), m, n))
	}
	return db
}

// ChainMatchingDatabase generates matchings for L_k whose consecutive
// relations compose: S_j pairs column 1 of S_{j-1}'s image, so every chain
// join is non-empty (each S_j is a bijection on a common m-element universe).
// This yields exactly m output tuples for the full chain — convenient for
// multi-round experiments where the output must be checkable.
func ChainMatchingDatabase(rng *rand.Rand, k, m int, n int64) *Database {
	db := NewDatabase(n)
	// Layer i gets its own m distinct values; S_j maps layer j-1 to layer j
	// by a random bijection.
	layers := make([][]int64, k+1)
	for i := range layers {
		layers[i] = SampleDistinct(rng, m, n)
	}
	for j := 1; j <= k; j++ {
		perm := rng.Perm(m)
		r := NewRelation(chainAtomName(j), 2)
		r.Grow(m)
		for i := 0; i < m; i++ {
			r.Append(layers[j-1][i], layers[j][perm[i]])
		}
		db.Add(r)
	}
	return db
}

func chainAtomName(j int) string {
	return query.Chain(j).Atoms[j-1].Name // "Sj" — keeps naming in one place
}

// SkewedPair generates the Example 4.1 worst case for the simple join
// q(x,y,z) = S1(x,z), S2(y,z): a fraction heavyFrac of the tuples of both
// relations carry the single z-value heavyVal; the remainder is a matching.
// Column 0 (x resp. y) is always a matching column.
func SkewedPair(rng *rand.Rand, m int, n int64, heavyVal int64, heavyFrac float64) (*Relation, *Relation) {
	mk := func(name string) *Relation {
		heavy := int(float64(m) * heavyFrac)
		r := NewRelation(name, 2)
		r.Grow(m)
		left := SampleDistinct(rng, m, n)
		zLight := SampleDistinct(rng, m-heavy, n)
		for i := 0; i < heavy; i++ {
			r.Append(left[i], heavyVal)
		}
		for i := heavy; i < m; i++ {
			r.Append(left[i], zLight[i-heavy])
		}
		return r
	}
	return mk("S1"), mk("S2")
}

// SkewedStarDatabase generates data for the star query T_k with planted
// heavy hitters on z: each relation S_j(z,x_j) gets, for every (value,count)
// in heavy, count tuples with z = value; the rest of the m tuples use
// matching (degree-1) z values. The x_j columns are always matchings.
// Heavy values are planted in ascending value order, so the generated
// database is a pure function of (rng state, arguments) even when the
// requested counts exceed m and the tail is truncated.
func SkewedStarDatabase(rng *rand.Rand, k, m int, n int64, heavy map[int64]int) *Database {
	db := NewDatabase(n)
	q := query.Star(k)
	heavyVals := make([]int64, 0, len(heavy))
	for val := range heavy {
		heavyVals = append(heavyVals, val)
	}
	sort.Slice(heavyVals, func(i, j int) bool { return heavyVals[i] < heavyVals[j] })
	for _, a := range q.Atoms {
		r := NewRelation(a.Name, 2)
		r.Grow(m)
		x := SampleDistinct(rng, m, n)
		i := 0
		for _, val := range heavyVals {
			for c := 0; c < heavy[val] && i < m; c++ {
				r.Append(val, x[i])
				i++
			}
		}
		zLight := SampleDistinct(rng, m-i, n)
		for j := 0; i < m; i, j = i+1, j+1 {
			r.Append(zLight[j], x[i])
		}
		db.Add(r)
	}
	return db
}

// SkewedTriangleDatabase generates data for C3 = S1(x1,x2), S2(x2,x3),
// S3(x3,x1) where the value heavyVal of variable x1 appears heavyCount times
// in both S1 (column 0) and S3 (column 1); all other columns are matchings.
// This is the Section 4.2.2 "one heavy variable" case.
func SkewedTriangleDatabase(rng *rand.Rand, m int, n int64, heavyVal int64, heavyCount int) *Database {
	db := NewDatabase(n)
	plant := func(name string, col int) *Relation {
		r := NewRelation(name, 2)
		r.Grow(m)
		other := SampleDistinct(rng, m, n)
		self := SampleDistinct(rng, m-heavyCount, n)
		for i := 0; i < m; i++ {
			var v int64
			if i < heavyCount {
				v = heavyVal
			} else {
				v = self[i-heavyCount]
			}
			if col == 0 {
				r.Append(v, other[i])
			} else {
				r.Append(other[i], v)
			}
		}
		return r
	}
	db.Add(plant("S1", 0))
	db.Add(RandomMatching(rng, "S2", 2, m, n))
	db.Add(plant("S3", 1))
	return db
}

// ZipfRelation generates a binary relation whose column col follows a Zipf
// distribution with exponent s (values 0..v-1), the other column being a
// matching column. Used for smooth skew sweeps.
func ZipfRelation(rng *rand.Rand, name string, m int, n int64, col int, s float64, v uint64) *Relation {
	z := rand.NewZipf(rng, s, 1, v-1)
	r := NewRelation(name, 2)
	r.Grow(m)
	other := SampleDistinct(rng, m, n)
	for i := 0; i < m; i++ {
		zv := int64(z.Uint64())
		if col == 0 {
			r.Append(zv, other[i])
		} else {
			r.Append(other[i], zv)
		}
	}
	return r
}
