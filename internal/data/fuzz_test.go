package data

import "testing"

// relationFromBytes decodes a small relation from fuzz input: arity, then
// tuples over a tiny value alphabet (collisions and duplicates on purpose).
func relationFromBytes(b []byte) *Relation {
	if len(b) < 1 {
		return nil
	}
	arity := 1 + int(b[0])%3
	b = b[1:]
	r := NewRelation("fz", arity)
	row := make([]int64, arity)
	for len(b) >= arity {
		for c := 0; c < arity; c++ {
			row[c] = int64(b[c] % 8)
		}
		b = b[arity:]
		r.AppendTuple(row)
	}
	return r
}

// permuted returns a copy of r with tuples reordered by a permutation
// derived deterministically from salt.
func permuted(r *Relation, salt uint64) *Relation {
	m := r.NumTuples()
	idx := make([]int, m)
	for i := range idx {
		idx[i] = i
	}
	s := salt
	for i := m - 1; i > 0; i-- {
		s = s*6364136223846793005 + 1442695040888963407
		j := int(s % uint64(i+1))
		idx[i], idx[j] = idx[j], idx[i]
	}
	out := NewRelation(r.Name, r.Arity)
	out.Grow(m)
	for _, i := range idx {
		out.AppendTuple(r.Tuple(i))
	}
	return out
}

// FuzzEqualMultiset pins the bag-comparison invariants every output check in
// the tree rests on: permutation invariance, multiplicity sensitivity, and
// symmetry.
func FuzzEqualMultiset(f *testing.F) {
	f.Add([]byte{1, 1, 2, 3, 1}, uint64(42))
	f.Add([]byte{2, 1, 2, 1, 2, 3, 4}, uint64(7))
	f.Add([]byte{0, 5, 5, 5, 5}, uint64(0))
	f.Add([]byte{2, 0, 0, 0, 0, 1, 1}, uint64(99))
	f.Fuzz(func(t *testing.T, b []byte, salt uint64) {
		r := relationFromBytes(b)
		if r == nil {
			t.Skip()
		}
		// Reflexivity and clone equality.
		if !EqualMultiset(r, r) || !EqualMultiset(r, r.Clone()) {
			t.Fatal("relation must equal itself and its clone")
		}
		// Permutation invariance, both directions.
		p := permuted(r, salt)
		if !EqualMultiset(r, p) || !EqualMultiset(p, r) {
			t.Fatalf("multiset equality must ignore order (m=%d)", r.NumTuples())
		}
		if r.NumTuples() > 0 {
			// Duplicating one tuple changes the bag.
			dup := r.Clone()
			dup.AppendTuple(r.Tuple(int(salt) % r.NumTuples()))
			if EqualMultiset(r, dup) || EqualMultiset(dup, r) {
				t.Fatal("multiset equality must respect multiplicity")
			}
			// Dropping the last tuple changes the bag.
			short := NewRelation(r.Name, r.Arity)
			for i := 0; i < r.NumTuples()-1; i++ {
				short.AppendTuple(r.Tuple(i))
			}
			if EqualMultiset(r, short) {
				t.Fatal("multiset equality must respect cardinality")
			}
			// Shifting one value changes exactly one tuple, so the bag can
			// never stay equal (one copy of the old tuple is gone).
			mut := r.Clone()
			mut.Vals()[int(salt)%len(mut.Vals())]++
			if EqualMultiset(r, mut) || EqualMultiset(mut, r) {
				t.Fatal("value mutation went unnoticed")
			}
		}
		// Set equality is implied by bag equality.
		if !Equal(r, p) {
			t.Fatal("bag-equal relations must be set-equal")
		}
	})
}
