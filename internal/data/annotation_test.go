package data

import "testing"

func TestAnnotatedRelationBasics(t *testing.T) {
	r := NewRelation("r", 2)
	if r.Annotated() {
		t.Fatal("fresh relation must be plain")
	}
	r.AppendAnnotatedTuple([]int64{1, 2}, 10)
	r.AppendAnnotatedTuple([]int64{3, 4}, -5)
	if !r.Annotated() || r.NumTuples() != 2 {
		t.Fatal("annotated appends lost")
	}
	if r.Annotation(0) != 10 || r.Annotation(1) != -5 {
		t.Fatal("annotation values wrong")
	}
	if got := r.Annotations(); len(got) != 2 {
		t.Fatal("Annotations() must expose the column")
	}

	c := r.Clone()
	if !c.Annotated() || c.Annotation(1) != -5 {
		t.Fatal("Clone must copy annotations")
	}
	c.annot[1] = 99
	if r.Annotation(1) != -5 {
		t.Fatal("Clone must deep-copy annotations")
	}

	r.Reset()
	if r.Annotated() || r.NumTuples() != 0 {
		t.Fatal("Reset must clear annotations")
	}
	// After Reset both append families are open again.
	r.AppendTuple([]int64{7, 8})
	if r.NumTuples() != 1 {
		t.Fatal("plain append after Reset failed")
	}
}

func TestAnnotatedIdentityDiffers(t *testing.T) {
	plain := FromTuples("r", 1, []int64{1}, []int64{2})
	ann := NewRelation("r", 1)
	ann.AppendAnnotatedTuple([]int64{1}, 1)
	ann.AppendAnnotatedTuple([]int64{2}, 1)
	if plain.Identity() == ann.Identity() {
		t.Fatal("annotations must change the content identity")
	}
	ann2 := NewRelation("r", 1)
	ann2.AppendAnnotatedTuple([]int64{1}, 1)
	ann2.AppendAnnotatedTuple([]int64{2}, 2)
	if ann.Identity() == ann2.Identity() {
		t.Fatal("different annotations must change the content identity")
	}
}

func TestAnnotatedSizeBitsCountsExtraColumn(t *testing.T) {
	plain := FromTuples("r", 2, []int64{1, 2})
	ann := NewRelation("r", 2)
	ann.AppendAnnotatedTuple([]int64{1, 2}, 3)
	n := int64(1 << 10)
	if got, want := ann.SizeBits(n), plain.SizeBits(n)*3/2; got != want {
		t.Fatalf("annotated SizeBits = %f, want %f (one extra column)", got, want)
	}
}

func TestMixedAppendFamiliesPanic(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("plain after annotated", func() {
		r := NewRelation("r", 1)
		r.AppendAnnotatedTuple([]int64{1}, 1)
		r.AppendTuple([]int64{2})
	})
	mustPanic("annotated after plain", func() {
		r := NewRelation("r", 1)
		r.AppendTuple([]int64{1})
		r.AppendAnnotatedTuple([]int64{2}, 1)
	})
	mustPanic("vals after annotated", func() {
		r := NewRelation("r", 1)
		r.AppendAnnotatedTuple([]int64{1}, 1)
		r.AppendVals([]int64{2})
	})
}
