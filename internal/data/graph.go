package data

import "math/rand"

// Graph is an undirected graph given by an edge relation E(u,v); vertex ids
// live in [0, NumVertices).
type Graph struct {
	NumVertices int64
	Edges       *Relation
}

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return g.Edges.NumTuples() }

// LayeredPathGraph builds the Theorem 5.20 hard instance for connected
// components: k+1 layers of perLayer vertices each, with a random perfect
// matching between consecutive layers. The graph is a disjoint union of
// perLayer paths of length k, so it has perLayer components and diameter k.
func LayeredPathGraph(rng *rand.Rand, k, perLayer int) *Graph {
	nv := int64(k+1) * int64(perLayer)
	e := NewRelation("E", 2)
	e.Grow(k * perLayer)
	for layer := 0; layer < k; layer++ {
		perm := rng.Perm(perLayer)
		base := int64(layer) * int64(perLayer)
		next := base + int64(perLayer)
		for i := 0; i < perLayer; i++ {
			e.Append(base+int64(i), next+int64(perm[i]))
		}
	}
	return &Graph{NumVertices: nv, Edges: e}
}

// RandomGraph builds a uniform random graph with n vertices and m edges
// (self-loops excluded, duplicates possible).
func RandomGraph(rng *rand.Rand, n int64, m int) *Graph {
	e := NewRelation("E", 2)
	e.Grow(m)
	for i := 0; i < m; i++ {
		u := rng.Int63n(n)
		v := rng.Int63n(n)
		for v == u {
			v = rng.Int63n(n)
		}
		e.Append(u, v)
	}
	return &Graph{NumVertices: n, Edges: e}
}

// ComponentsSequential computes the connected-component label of every
// vertex with a sequential union-find — the ground truth for the MPC
// algorithms. Isolated vertices get their own label. Labels are the minimum
// vertex id of the component.
func (g *Graph) ComponentsSequential() map[int64]int64 {
	parent := make(map[int64]int64, g.NumVertices)
	var find func(int64) int64
	find = func(x int64) int64 {
		p, ok := parent[x]
		if !ok {
			parent[x] = x
			return x
		}
		if p == x {
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	union := func(a, b int64) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if ra < rb {
			parent[rb] = ra
		} else {
			parent[ra] = rb
		}
	}
	m := g.Edges.NumTuples()
	for i := 0; i < m; i++ {
		union(g.Edges.At(i, 0), g.Edges.At(i, 1))
	}
	for v := int64(0); v < g.NumVertices; v++ {
		find(v)
	}
	out := make(map[int64]int64, len(parent))
	for v := range parent {
		out[v] = find(v)
	}
	return out
}
