// Package core implements the paper's primary contribution: the HyperCube
// (HC) one-round algorithm of Section 3.1. Servers are organized as a
// k-dimensional grid [p1]×…×[pk] with one dimension per query variable;
// each input tuple is hashed on the variables of its atom and replicated to
// the destination subcube D(t) of equation (9); every server then evaluates
// the query locally. Correctness follows because the server
// (h1(a1),…,hk(ak)) sees every atom of a potential output tuple (a1,…,ak).
//
// Share exponents come from LP (10) (skew-free optimal, Theorem 3.4) or
// LP (18) (skew-oblivious worst case, Section 4.1), and are rounded to
// integer shares with product ≤ p.
package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"mpcquery/internal/aggregate"
	"mpcquery/internal/data"
	"mpcquery/internal/engine"
	"mpcquery/internal/hashing"
	"mpcquery/internal/localjoin"
	"mpcquery/internal/packing"
	"mpcquery/internal/query"
)

// Mode selects which share-optimization LP drives the plan.
type Mode int

// Share optimization modes.
const (
	// SkewFree optimizes for low-skew data via LP (10); optimal for
	// matching databases (Theorem 3.4).
	SkewFree Mode = iota
	// SkewOblivious optimizes the worst case over all data distributions
	// via LP (18) (Section 4.1).
	SkewOblivious
)

// Plan is an executable HyperCube configuration for a query.
type Plan struct {
	Query     *query.Query
	Mode      Mode
	P         int       // servers requested
	Shares    []int     // integer share per variable (Π ≤ P)
	Exponents []float64 // fractional share exponents from the LP
	Lambda    float64   // optimal load exponent λ = log_p L

	StatsBits []float64 // M_j per atom, bits
}

// GridP returns the number of servers actually used, Πᵢ shares.
func (pl *Plan) GridP() int {
	g := 1
	for _, s := range pl.Shares {
		g *= s
	}
	return g
}

// PredictedLoadBits returns the LP's load prediction L = p^λ in bits. A
// single server (p ≤ 1) receives the whole input, where log_p L is
// undefined.
func (pl *Plan) PredictedLoadBits() float64 {
	if pl.P <= 1 {
		total := 0.0
		for _, m := range pl.StatsBits {
			total += m
		}
		return total
	}
	return math.Pow(float64(pl.P), pl.Lambda)
}

func (pl *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "HyperCube plan for %s on p=%d\n", pl.Query, pl.P)
	for i, v := range pl.Query.Vars() {
		fmt.Fprintf(&b, "  share(%s) = %d (exponent %.4f)\n", v, pl.Shares[i], pl.Exponents[i])
	}
	fmt.Fprintf(&b, "  grid uses %d servers, predicted load %.0f bits", pl.GridP(), pl.PredictedLoadBits())
	return b.String()
}

// NewPlan builds a HyperCube plan for q over a database with the given
// per-atom sizes in bits, using p servers.
func NewPlan(q *query.Query, statsBits []float64, p int, mode Mode) *Plan {
	var sh packing.Shares
	if mode == SkewOblivious {
		sh = packing.SkewShareExponents(q, statsBits, float64(p))
	} else {
		sh = packing.ShareExponents(q, statsBits, float64(p))
	}
	shares := IntegerShares(sh.Exponents, p)
	return &Plan{
		Query:     q,
		Mode:      mode,
		P:         p,
		Shares:    shares,
		Exponents: sh.Exponents,
		Lambda:    sh.Lambda,
		StatsBits: append([]float64(nil), statsBits...),
	}
}

// PlanForDatabase computes statistics from db and builds a plan.
func PlanForDatabase(q *query.Query, db *data.Database, p int, mode Mode) *Plan {
	return NewPlan(q, StatsBits(q, db), p, mode)
}

// StatsBits returns M_j (bits) for each atom of q in db.
func StatsBits(q *query.Query, db *data.Database) []float64 {
	stats := make([]float64, q.NumAtoms())
	for j, a := range q.Atoms {
		stats[j] = db.Get(a.Name).SizeBits(db.N)
	}
	return stats
}

// IntegerShares rounds fractional share exponents e (for p servers) to
// integer shares with product at most p: starting from all-ones, it
// repeatedly increments the dimension whose integer share is furthest below
// its fractional target p^{e_i}, as long as the product stays within p.
func IntegerShares(e []float64, p int) []int {
	k := len(e)
	target := make([]float64, k)
	for i, ei := range e {
		target[i] = math.Pow(float64(p), ei)
	}
	shares := make([]int, k)
	for i := range shares {
		shares[i] = 1
	}
	prod := 1
	blocked := make([]bool, k)
	for {
		best := -1
		bestGap := 1.0 // ratio share/target; grow the most underallocated
		for i := 0; i < k; i++ {
			if blocked[i] {
				continue
			}
			gap := float64(shares[i]) / target[i]
			if gap < bestGap-1e-12 {
				bestGap = gap
				best = i
			}
		}
		if best < 0 {
			return shares
		}
		if prod/shares[best]*(shares[best]+1) > p {
			blocked[best] = true
			continue
		}
		prod = prod / shares[best] * (shares[best] + 1)
		shares[best]++
	}
}

// Result reports an executed one-round HyperCube run (two rounds when an
// aggregate was requested: the input shuffle plus the aggregate shuffle).
type Result struct {
	Plan   *Plan
	Output *data.Relation // full query result (union over servers)

	ServersUsed     int
	MaxLoadBits     float64 // L: max bits received by any server in any round
	MaxLoadTuples   int
	RoundLoads      []float64 // per-round max received bits, in round order
	TotalBits       float64
	InputBits       float64
	ReplicationRate float64
	Aborted         bool // a declared load cap was exceeded (RunPlanWithCap)

	// AggregateBitsSaved is the communication the pre-shuffle partial
	// aggregation removed: (raw join rows − shipped partial rows) × row bits,
	// summed over senders. 0 for plain runs and no-pushdown aggregate runs.
	AggregateBitsSaved float64

	// Wall-clock split of the simulation (not model costs): seconds spent
	// in local computation vs simulated communication delivery.
	ComputeSeconds float64
	CommSeconds    float64
}

// Run plans and executes the HyperCube algorithm for q on db with p servers.
func Run(q *query.Query, db *data.Database, p int, seed int64, mode Mode) *Result {
	return RunPlan(PlanForDatabase(q, db, p, mode), db, seed)
}

// RunWithShares executes with explicit integer shares (one per variable).
func RunWithShares(q *query.Query, db *data.Database, shares []int, seed int64) *Result {
	return RunWithSharesCap(q, db, shares, seed, 0)
}

// RunWithSharesCap is RunWithShares with a declared load cap (0 = none).
func RunWithSharesCap(q *query.Query, db *data.Database, shares []int, seed int64, capBits float64) *Result {
	return RunWithSharesCapNet(q, db, shares, seed, capBits, engine.Env{})
}

// RunWithSharesCapNet is RunWithSharesCap with round delivery through net
// (nil = in-process).
func RunWithSharesCapNet(q *query.Query, db *data.Database, shares []int, seed int64, capBits float64, env engine.Env) *Result {
	return RunPlanWithCapNet(sharesPlan(q, db, shares), db, seed, capBits, env)
}

// sharesPlan wraps explicit integer shares in a Plan (no LP, zero
// exponents) — the construction shared by the plain and aggregate
// explicit-shares entry points.
func sharesPlan(q *query.Query, db *data.Database, shares []int) *Plan {
	return &Plan{Query: q, P: prodInt(shares), Shares: append([]int(nil), shares...),
		Exponents: make([]float64, len(shares)), StatsBits: StatsBits(q, db)}
}

func prodInt(xs []int) int {
	p := 1
	for _, x := range xs {
		p *= x
	}
	return p
}

// RunPlan executes a prepared plan on db with the given hash seed, under
// the partitioned-input model (each relation dealt round-robin).
func RunPlan(pl *Plan, db *data.Database, seed int64) *Result {
	return RunPlanWithCap(pl, db, seed, 0)
}

// RunPlanWithCap is RunPlan with a declared load cap (Section 2.1's abort
// semantics): when capBits > 0 and any server receives more, the result's
// Aborted flag is set. The output is still computed (the caller decides
// whether to retry with a fresh hash seed).
func RunPlanWithCap(pl *Plan, db *data.Database, seed int64, capBits float64) *Result {
	return RunPlanWithCapNet(pl, db, seed, capBits, engine.Env{})
}

// RunPlanWithCapNet is RunPlanWithCap with round delivery through net (nil
// = in-process). Every strategy path threads its transport exclusively
// through these Net variants — the algorithms themselves are
// transport-oblivious, as the delivery seam requires.
func RunPlanWithCapNet(pl *Plan, db *data.Database, seed int64, capBits float64, env engine.Env) *Result {
	return runPlanSeeded(pl, db, seed, capBits, nil, partitionedSeeding(db), env)
}

// RunPlanAggregate executes pl and then computes agg over the join output
// with one extra communication round: every server folds (pushdown) or
// projects (no pushdown) its local join output into (group key, annotation)
// rows, routes them by key hash, and destinations fold their received rows
// into the final groups. The Result's Output is the canonical aggregate
// relation — (group key..., value) tuples sorted lexicographically, the
// synthetic key of a global aggregate dropped — identical whether or not
// pushdown ran; only the second round's bits differ.
func RunPlanAggregate(pl *Plan, db *data.Database, seed int64, capBits float64, agg *aggregate.Plan) *Result {
	return RunPlanAggregateNet(pl, db, seed, capBits, agg, engine.Env{})
}

// RunPlanAggregateNet is RunPlanAggregate with round delivery through net
// (nil = in-process).
func RunPlanAggregateNet(pl *Plan, db *data.Database, seed int64, capBits float64, agg *aggregate.Plan, env engine.Env) *Result {
	return runPlanSeeded(pl, db, seed, capBits, agg, partitionedSeeding(db), env)
}

// RunWithSharesAggregate is RunPlanAggregate over explicit integer shares.
func RunWithSharesAggregate(q *query.Query, db *data.Database, shares []int, seed int64, capBits float64, agg *aggregate.Plan) *Result {
	return RunWithSharesAggregateNet(q, db, shares, seed, capBits, agg, engine.Env{})
}

// RunWithSharesAggregateNet is RunWithSharesAggregate with round delivery
// through net (nil = in-process).
func RunWithSharesAggregateNet(q *query.Query, db *data.Database, shares []int, seed int64, capBits float64, agg *aggregate.Plan, env engine.Env) *Result {
	return RunPlanAggregateNet(sharesPlan(q, db, shares), db, seed, capBits, agg, env)
}

// partitionedSeeding deals each relation round-robin across the grid — the
// partitioned-input model of Section 2.1.
func partitionedSeeding(db *data.Database) func(*engine.Cluster, *query.Query, int) {
	return func(cluster *engine.Cluster, q *query.Query, gp int) {
		for j, a := range q.Atoms {
			rel := db.Get(a.Name)
			m := rel.NumTuples()
			for i := 0; i < m; i++ {
				cluster.Seed(i%gp, j, rel.Tuple(i))
			}
		}
	}
}

// RunPlanInputServers executes under the input-server model of Section 2.1:
// relation S_j starts wholly on server j mod p. HyperCube routing depends
// only on tuple content, so the received loads are identical to the
// partitioned-input run — the equivalence the paper uses to transfer its
// lower bounds between the two models.
func RunPlanInputServers(pl *Plan, db *data.Database, seed int64) *Result {
	return runPlanSeededLocal(pl, db, seed, 0, nil, func(cluster *engine.Cluster, q *query.Query, gp int) {
		for j, a := range q.Atoms {
			rel := db.Get(a.Name)
			m := rel.NumTuples()
			for i := 0; i < m; i++ {
				cluster.Seed(j%gp, j, rel.Tuple(i))
			}
		}
	})
}

func runPlanSeededLocal(pl *Plan, db *data.Database, seed int64, capBits float64, agg *aggregate.Plan, seedInput func(*engine.Cluster, *query.Query, int)) *Result {
	return runPlanSeeded(pl, db, seed, capBits, agg, seedInput, engine.Env{})
}

func runPlanSeeded(pl *Plan, db *data.Database, seed int64, capBits float64, agg *aggregate.Plan, seedInput func(*engine.Cluster, *query.Query, int), env engine.Env) *Result {
	q := pl.Query
	grid := hashing.NewGrid(pl.Shares)
	gp := grid.P()
	family := hashing.NewFamily(seed, q.NumVars())
	cluster := engine.NewClusterEnv(env, gp, data.BitsPerValue(db.N))
	defer cluster.Release()
	if capBits > 0 {
		cluster.SetLoadCap(capBits)
	}

	seedInput(cluster, q, gp)

	// Precompute, per atom, the grid dimension of each column.
	atomDims := make([][]int, q.NumAtoms())
	for j, a := range q.Atoms {
		dims := make([]int, len(a.Vars))
		for c, v := range a.Vars {
			dims[c] = q.VarIndex(v)
		}
		atomDims[j] = dims
	}

	// Round 1: every server routes its local tuples to their destination
	// subcubes.
	cluster.Round("hypercube-shuffle", func(s int, inbox *engine.Inbox, emit *engine.Emitter) {
		bins := make([]int, 8)
		inbox.Each(func(kind int, tuple []int64) {
			dims := atomDims[kind]
			if cap(bins) < len(dims) {
				bins = make([]int, len(dims))
			}
			bins = bins[:len(dims)]
			for c, d := range dims {
				bins[c] = family.Bin(d, tuple[c], grid.Shares[d])
			}
			grid.Destinations(dims, bins, func(dest int) {
				emit.EmitTuple(dest, kind, tuple)
			})
		})
	})

	// Computation phase: local evaluation on every server (no
	// communication). Each worker keeps one kernel scratch whose arenas are
	// reused across all the servers it evaluates; the round-scoped index
	// cache shares index builds between servers that received identical
	// fragments (whole grid slices do, since a tuple is replicated along
	// every dimension its atom does not constrain).
	cache := localjoin.NewIndexCache()
	scratches := localjoin.NewWorkerScratches()
	var out *data.Relation
	aggSaved := 0.0
	if agg == nil {
		// Output path: barrier-kernel materialization by default; the
		// streamed kernel when streaming is on (chunked evaluation, same
		// bytes — the memoized index cache keeps hit/miss totals identical);
		// and when a sink is set the output never materializes at all —
		// chunks flow straight out and Result.Output stays nil, in both
		// modes, so fingerprints agree.
		streamChunk := env.StreamChunk
		if streamChunk <= 0 {
			streamChunk = engine.DefaultStreamChunk
		}
		outputs := make([]*data.Relation, gp)
		cluster.Compute(func(s, w int) {
			if cluster.Inbox(s).NumTuples() == 0 {
				outputs[s] = data.NewRelation(q.Name, q.NumVars())
				return
			}
			sc := scratches.Worker(w)
			frag := sc.Fragments(q)
			cluster.Inbox(s).EachBatch(func(b engine.Batch) {
				frag[b.Kind].AppendVals(b.Vals)
			})
			switch {
			case env.Sink != nil:
				sc.EvaluateAtomsStream(q, frag, cache, streamChunk, func(vals []int64) {
					env.Sink.Chunk(s, q.NumVars(), vals)
				})
				outputs[s] = data.NewRelation(q.Name, q.NumVars())
			case env.Streaming:
				o := data.NewRelation(q.Name, q.NumVars())
				sc.EvaluateAtomsStream(q, frag, cache, streamChunk, func(vals []int64) {
					o.AppendVals(vals)
				})
				outputs[s] = o
			default:
				outputs[s] = sc.EvaluateAtoms(q, frag, cache)
			}
		})
		scratches.Release()
		if env.Sink == nil {
			out = data.Concat(q.Name, q.NumVars(), outputs)
		}
	} else {
		out, aggSaved = runAggregatePhases(cluster, q, gp, agg, cache, scratches)
	}
	cache.Publish(cluster.Trace())

	inputBits := 0.0
	for _, a := range q.Atoms {
		inputBits += db.Get(a.Name).SizeBits(db.N)
	}
	roundLoads := make([]float64, 0, cluster.NumRounds())
	for _, rs := range cluster.Rounds() {
		roundLoads = append(roundLoads, rs.MaxRecvBits)
	}
	computeS, commS := cluster.PhaseSeconds()
	return &Result{
		Plan:               pl,
		Output:             out,
		ServersUsed:        gp,
		MaxLoadBits:        cluster.MaxLoadBits(),
		MaxLoadTuples:      cluster.MaxLoadTuples(),
		RoundLoads:         roundLoads,
		TotalBits:          cluster.TotalBits(),
		InputBits:          inputBits,
		ReplicationRate:    cluster.ReplicationRate(inputBits),
		Aborted:            cluster.Aborted(),
		AggregateBitsSaved: aggSaved,
		ComputeSeconds:     computeS,
		CommSeconds:        commS,
	}
}

// runAggregatePhases runs the aggregate tail of a plan execution: the local
// evaluation (folding when pushdown is on, materializing and projecting raw
// rows when off), the aggregate-shuffle round that routes partial rows by
// group-key hash — through the Emitter's pre-shuffle combiner on the
// pushdown path — and the destination-side final fold. It returns the
// canonical aggregate output and the bits the pushdown saved.
func runAggregatePhases(cluster *engine.Cluster, q *query.Query, gp int, agg *aggregate.Plan,
	cache *localjoin.IndexCache, scratches *localjoin.WorkerScratches) (*data.Relation, float64) {
	ka := agg.KeyArity()
	groupCols := make([]int, len(agg.GroupBy))
	for i, v := range agg.GroupBy {
		groupCols[i] = q.VarIndex(v)
	}
	aggCol := -1
	if agg.Var != "" {
		aggCol = q.VarIndex(agg.Var)
	}

	partials := make([]*data.Relation, gp)
	rawRows := make([]int, gp)
	cluster.Compute(func(s, w int) {
		if cluster.Inbox(s).NumTuples() == 0 {
			return
		}
		sc := scratches.Worker(w)
		frag := sc.Fragments(q)
		cluster.Inbox(s).EachBatch(func(b engine.Batch) {
			frag[b.Kind].AppendVals(b.Vals)
		})
		if agg.Pushdown {
			partials[s], rawRows[s] = sc.EvaluateAtomsAggregate(q, frag, cache, agg)
		} else {
			o := sc.EvaluateAtoms(q, frag, cache)
			rawRows[s] = o.NumTuples()
			partials[s] = aggregate.ProjectRaw(o, groupCols, aggCol, agg)
		}
	})
	scratches.Release()

	sentRows := make([]int, gp)
	cluster.Round("aggregate-shuffle", func(s int, _ *engine.Inbox, emit *engine.Emitter) {
		pr := partials[s]
		if pr == nil || pr.NumTuples() == 0 {
			return
		}
		m := pr.NumTuples()
		row := make([]int64, ka+1)
		if agg.Pushdown {
			// The kernel fold already left one row per distinct group key on
			// this sender, so the combiner acts as the destination
			// partitioner and raw-vs-sent meter here; its same-key merging
			// kicks in for emitters that route unfolded rows (it is the
			// general pre-shuffle hook, exercised directly in the engine
			// tests).
			cb := emit.Combiner(0, ka, agg.Semiring.Combine)
			for i := 0; i < m; i++ {
				copy(row, pr.Tuple(i))
				row[ka] = pr.Annotation(i)
				cb.Add(aggregate.DestOf(row[:ka], gp), row)
			}
			_, sentRows[s] = cb.Flush()
		} else {
			for i := 0; i < m; i++ {
				copy(row, pr.Tuple(i))
				row[ka] = pr.Annotation(i)
				emit.EmitTuple(aggregate.DestOf(row[:ka], gp), 0, row)
			}
			sentRows[s] = m
		}
	})

	outputs := make([]*data.Relation, gp)
	cluster.Compute(func(s, w int) {
		ib := cluster.Inbox(s)
		if ib.NumTuples() == 0 {
			return
		}
		t := aggregate.NewFoldTable(ka, agg.Semiring)
		ib.EachBatch(func(b engine.Batch) {
			t.AddRows(b.Vals)
		})
		outputs[s] = t.Result(q.Name)
	})

	saved := 0
	for s := 0; s < gp; s++ {
		saved += rawRows[s] - sentRows[s]
	}
	return aggregate.Finalize(q.Name, outputs, agg),
		float64(saved) * float64(ka+1) * float64(cluster.BitsPerValue())
}

// SequentialAnswer computes q(db) on one node — the ground truth for
// validating parallel runs.
func SequentialAnswer(q *query.Query, db *data.Database) *data.Relation {
	rels := make(map[string]*data.Relation, q.NumAtoms())
	for _, a := range q.Atoms {
		rels[a.Name] = db.Get(a.Name)
	}
	return localjoin.Evaluate(q, rels)
}

// MaxLoadOverSeeds runs the plan with several hash seeds and reports the
// worst observed load — the experimental analogue of the paper's
// with-high-probability statements.
func MaxLoadOverSeeds(pl *Plan, db *data.Database, seeds []int64) float64 {
	worst := 0.0
	for _, s := range seeds {
		r := RunPlan(pl, db, s)
		if r.MaxLoadBits > worst {
			worst = r.MaxLoadBits
		}
	}
	return worst
}

// SharesByName returns the plan's shares keyed by variable name, sorted for
// stable display.
func (pl *Plan) SharesByName() []string {
	vars := pl.Query.Vars()
	out := make([]string, len(vars))
	for i, v := range vars {
		out[i] = fmt.Sprintf("%s=%d", v, pl.Shares[i])
	}
	sort.Strings(out)
	return out
}
