// Package core implements the paper's primary contribution: the HyperCube
// (HC) one-round algorithm of Section 3.1. Servers are organized as a
// k-dimensional grid [p1]×…×[pk] with one dimension per query variable;
// each input tuple is hashed on the variables of its atom and replicated to
// the destination subcube D(t) of equation (9); every server then evaluates
// the query locally. Correctness follows because the server
// (h1(a1),…,hk(ak)) sees every atom of a potential output tuple (a1,…,ak).
//
// Share exponents come from LP (10) (skew-free optimal, Theorem 3.4) or
// LP (18) (skew-oblivious worst case, Section 4.1), and are rounded to
// integer shares with product ≤ p.
package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"mpcquery/internal/data"
	"mpcquery/internal/engine"
	"mpcquery/internal/hashing"
	"mpcquery/internal/localjoin"
	"mpcquery/internal/packing"
	"mpcquery/internal/query"
)

// Mode selects which share-optimization LP drives the plan.
type Mode int

// Share optimization modes.
const (
	// SkewFree optimizes for low-skew data via LP (10); optimal for
	// matching databases (Theorem 3.4).
	SkewFree Mode = iota
	// SkewOblivious optimizes the worst case over all data distributions
	// via LP (18) (Section 4.1).
	SkewOblivious
)

// Plan is an executable HyperCube configuration for a query.
type Plan struct {
	Query     *query.Query
	Mode      Mode
	P         int       // servers requested
	Shares    []int     // integer share per variable (Π ≤ P)
	Exponents []float64 // fractional share exponents from the LP
	Lambda    float64   // optimal load exponent λ = log_p L

	StatsBits []float64 // M_j per atom, bits
}

// GridP returns the number of servers actually used, Πᵢ shares.
func (pl *Plan) GridP() int {
	g := 1
	for _, s := range pl.Shares {
		g *= s
	}
	return g
}

// PredictedLoadBits returns the LP's load prediction L = p^λ in bits.
func (pl *Plan) PredictedLoadBits() float64 {
	return math.Pow(float64(pl.P), pl.Lambda)
}

func (pl *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "HyperCube plan for %s on p=%d\n", pl.Query, pl.P)
	for i, v := range pl.Query.Vars() {
		fmt.Fprintf(&b, "  share(%s) = %d (exponent %.4f)\n", v, pl.Shares[i], pl.Exponents[i])
	}
	fmt.Fprintf(&b, "  grid uses %d servers, predicted load %.0f bits", pl.GridP(), pl.PredictedLoadBits())
	return b.String()
}

// NewPlan builds a HyperCube plan for q over a database with the given
// per-atom sizes in bits, using p servers.
func NewPlan(q *query.Query, statsBits []float64, p int, mode Mode) *Plan {
	var sh packing.Shares
	if mode == SkewOblivious {
		sh = packing.SkewShareExponents(q, statsBits, float64(p))
	} else {
		sh = packing.ShareExponents(q, statsBits, float64(p))
	}
	shares := IntegerShares(sh.Exponents, p)
	return &Plan{
		Query:     q,
		Mode:      mode,
		P:         p,
		Shares:    shares,
		Exponents: sh.Exponents,
		Lambda:    sh.Lambda,
		StatsBits: append([]float64(nil), statsBits...),
	}
}

// PlanForDatabase computes statistics from db and builds a plan.
func PlanForDatabase(q *query.Query, db *data.Database, p int, mode Mode) *Plan {
	return NewPlan(q, StatsBits(q, db), p, mode)
}

// StatsBits returns M_j (bits) for each atom of q in db.
func StatsBits(q *query.Query, db *data.Database) []float64 {
	stats := make([]float64, q.NumAtoms())
	for j, a := range q.Atoms {
		stats[j] = db.Get(a.Name).SizeBits(db.N)
	}
	return stats
}

// IntegerShares rounds fractional share exponents e (for p servers) to
// integer shares with product at most p: starting from all-ones, it
// repeatedly increments the dimension whose integer share is furthest below
// its fractional target p^{e_i}, as long as the product stays within p.
func IntegerShares(e []float64, p int) []int {
	k := len(e)
	target := make([]float64, k)
	for i, ei := range e {
		target[i] = math.Pow(float64(p), ei)
	}
	shares := make([]int, k)
	for i := range shares {
		shares[i] = 1
	}
	prod := 1
	blocked := make([]bool, k)
	for {
		best := -1
		bestGap := 1.0 // ratio share/target; grow the most underallocated
		for i := 0; i < k; i++ {
			if blocked[i] {
				continue
			}
			gap := float64(shares[i]) / target[i]
			if gap < bestGap-1e-12 {
				bestGap = gap
				best = i
			}
		}
		if best < 0 {
			return shares
		}
		if prod/shares[best]*(shares[best]+1) > p {
			blocked[best] = true
			continue
		}
		prod = prod / shares[best] * (shares[best] + 1)
		shares[best]++
	}
}

// Result reports an executed one-round HyperCube run.
type Result struct {
	Plan   *Plan
	Output *data.Relation // full query result (union over servers)

	ServersUsed     int
	MaxLoadBits     float64 // L: max bits received by any server in round 1
	MaxLoadTuples   int
	TotalBits       float64
	InputBits       float64
	ReplicationRate float64
	Aborted         bool // a declared load cap was exceeded (RunPlanWithCap)

	// Wall-clock split of the simulation (not model costs): seconds spent
	// in local computation vs simulated communication delivery.
	ComputeSeconds float64
	CommSeconds    float64
}

// Run plans and executes the HyperCube algorithm for q on db with p servers.
func Run(q *query.Query, db *data.Database, p int, seed int64, mode Mode) *Result {
	return RunPlan(PlanForDatabase(q, db, p, mode), db, seed)
}

// RunWithShares executes with explicit integer shares (one per variable).
func RunWithShares(q *query.Query, db *data.Database, shares []int, seed int64) *Result {
	return RunWithSharesCap(q, db, shares, seed, 0)
}

// RunWithSharesCap is RunWithShares with a declared load cap (0 = none).
func RunWithSharesCap(q *query.Query, db *data.Database, shares []int, seed int64, capBits float64) *Result {
	pl := &Plan{Query: q, P: prodInt(shares), Shares: append([]int(nil), shares...),
		Exponents: make([]float64, len(shares)), StatsBits: StatsBits(q, db)}
	return RunPlanWithCap(pl, db, seed, capBits)
}

func prodInt(xs []int) int {
	p := 1
	for _, x := range xs {
		p *= x
	}
	return p
}

// RunPlan executes a prepared plan on db with the given hash seed, under
// the partitioned-input model (each relation dealt round-robin).
func RunPlan(pl *Plan, db *data.Database, seed int64) *Result {
	return RunPlanWithCap(pl, db, seed, 0)
}

// RunPlanWithCap is RunPlan with a declared load cap (Section 2.1's abort
// semantics): when capBits > 0 and any server receives more, the result's
// Aborted flag is set. The output is still computed (the caller decides
// whether to retry with a fresh hash seed).
func RunPlanWithCap(pl *Plan, db *data.Database, seed int64, capBits float64) *Result {
	return runPlanSeeded(pl, db, seed, capBits, func(cluster *engine.Cluster, q *query.Query, gp int) {
		for j, a := range q.Atoms {
			rel := db.Get(a.Name)
			m := rel.NumTuples()
			for i := 0; i < m; i++ {
				cluster.Seed(i%gp, j, rel.Tuple(i))
			}
		}
	})
}

// RunPlanInputServers executes under the input-server model of Section 2.1:
// relation S_j starts wholly on server j mod p. HyperCube routing depends
// only on tuple content, so the received loads are identical to the
// partitioned-input run — the equivalence the paper uses to transfer its
// lower bounds between the two models.
func RunPlanInputServers(pl *Plan, db *data.Database, seed int64) *Result {
	return runPlanSeeded(pl, db, seed, 0, func(cluster *engine.Cluster, q *query.Query, gp int) {
		for j, a := range q.Atoms {
			rel := db.Get(a.Name)
			m := rel.NumTuples()
			for i := 0; i < m; i++ {
				cluster.Seed(j%gp, j, rel.Tuple(i))
			}
		}
	})
}

func runPlanSeeded(pl *Plan, db *data.Database, seed int64, capBits float64, seedInput func(*engine.Cluster, *query.Query, int)) *Result {
	q := pl.Query
	grid := hashing.NewGrid(pl.Shares)
	gp := grid.P()
	family := hashing.NewFamily(seed, q.NumVars())
	cluster := engine.NewCluster(gp, data.BitsPerValue(db.N))
	defer cluster.Release()
	if capBits > 0 {
		cluster.SetLoadCap(capBits)
	}

	seedInput(cluster, q, gp)

	// Precompute, per atom, the grid dimension of each column.
	atomDims := make([][]int, q.NumAtoms())
	for j, a := range q.Atoms {
		dims := make([]int, len(a.Vars))
		for c, v := range a.Vars {
			dims[c] = q.VarIndex(v)
		}
		atomDims[j] = dims
	}

	// Round 1: every server routes its local tuples to their destination
	// subcubes.
	cluster.Round("hypercube-shuffle", func(s int, inbox *engine.Inbox, emit *engine.Emitter) {
		bins := make([]int, 8)
		inbox.Each(func(kind int, tuple []int64) {
			dims := atomDims[kind]
			if cap(bins) < len(dims) {
				bins = make([]int, len(dims))
			}
			bins = bins[:len(dims)]
			for c, d := range dims {
				bins[c] = family.Bin(d, tuple[c], grid.Shares[d])
			}
			grid.Destinations(dims, bins, func(dest int) {
				emit.EmitTuple(dest, kind, tuple)
			})
		})
	})

	// Computation phase: local evaluation on every server (no
	// communication). Each worker keeps one kernel scratch whose arenas are
	// reused across all the servers it evaluates; the round-scoped index
	// cache shares index builds between servers that received identical
	// fragments (whole grid slices do, since a tuple is replicated along
	// every dimension its atom does not constrain).
	outputs := make([]*data.Relation, gp)
	cache := localjoin.NewIndexCache()
	scratches := localjoin.NewWorkerScratches()
	cluster.Compute(func(s, w int) {
		if cluster.Inbox(s).NumTuples() == 0 {
			outputs[s] = data.NewRelation(q.Name, q.NumVars())
			return
		}
		sc := scratches.Worker(w)
		frag := sc.Fragments(q)
		cluster.Inbox(s).EachBatch(func(b engine.Batch) {
			frag[b.Kind].AppendVals(b.Vals)
		})
		outputs[s] = sc.EvaluateAtoms(q, frag, cache)
	})
	scratches.Release()

	out := data.Concat(q.Name, q.NumVars(), outputs)

	inputBits := 0.0
	for _, a := range q.Atoms {
		inputBits += db.Get(a.Name).SizeBits(db.N)
	}
	computeS, commS := cluster.PhaseSeconds()
	return &Result{
		Plan:            pl,
		Output:          out,
		ServersUsed:     gp,
		MaxLoadBits:     cluster.MaxLoadBits(),
		MaxLoadTuples:   cluster.MaxLoadTuples(),
		TotalBits:       cluster.TotalBits(),
		InputBits:       inputBits,
		ReplicationRate: cluster.ReplicationRate(inputBits),
		Aborted:         cluster.Aborted(),
		ComputeSeconds:  computeS,
		CommSeconds:     commS,
	}
}

// SequentialAnswer computes q(db) on one node — the ground truth for
// validating parallel runs.
func SequentialAnswer(q *query.Query, db *data.Database) *data.Relation {
	rels := make(map[string]*data.Relation, q.NumAtoms())
	for _, a := range q.Atoms {
		rels[a.Name] = db.Get(a.Name)
	}
	return localjoin.Evaluate(q, rels)
}

// MaxLoadOverSeeds runs the plan with several hash seeds and reports the
// worst observed load — the experimental analogue of the paper's
// with-high-probability statements.
func MaxLoadOverSeeds(pl *Plan, db *data.Database, seeds []int64) float64 {
	worst := 0.0
	for _, s := range seeds {
		r := RunPlan(pl, db, s)
		if r.MaxLoadBits > worst {
			worst = r.MaxLoadBits
		}
	}
	return worst
}

// SharesByName returns the plan's shares keyed by variable name, sorted for
// stable display.
func (pl *Plan) SharesByName() []string {
	vars := pl.Query.Vars()
	out := make([]string, len(vars))
	for i, v := range vars {
		out[i] = fmt.Sprintf("%s=%d", v, pl.Shares[i])
	}
	sort.Strings(out)
	return out
}
