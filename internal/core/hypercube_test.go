package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mpcquery/internal/data"
	"mpcquery/internal/packing"
	"mpcquery/internal/query"
)

func TestIntegerShares(t *testing.T) {
	// Triangle at p=64: exponents (1/3,1/3,1/3) -> shares (4,4,4).
	got := IntegerShares([]float64{1.0 / 3, 1.0 / 3, 1.0 / 3}, 64)
	if got[0] != 4 || got[1] != 4 || got[2] != 4 {
		t.Errorf("shares=%v want [4 4 4]", got)
	}
	// Star: everything on one dimension.
	got2 := IntegerShares([]float64{1, 0, 0}, 16)
	if got2[0] != 16 || got2[1] != 1 || got2[2] != 1 {
		t.Errorf("shares=%v want [16 1 1]", got2)
	}
	// Product never exceeds p, even for awkward p.
	for _, p := range []int{7, 12, 100, 1000} {
		sh := IntegerShares([]float64{0.5, 0.3, 0.2}, p)
		prod := 1
		for _, s := range sh {
			prod *= s
			if s < 1 {
				t.Errorf("p=%d: share < 1: %v", p, sh)
			}
		}
		if prod > p {
			t.Errorf("p=%d: product %d exceeds p (%v)", p, prod, sh)
		}
	}
}

func TestIntegerSharesUsesBudget(t *testing.T) {
	// For exact powers the full budget must be used.
	sh := IntegerShares([]float64{0.5, 0.5}, 64)
	if sh[0]*sh[1] != 64 {
		t.Errorf("shares=%v should multiply to 64", sh)
	}
}

func runMatching(t *testing.T, q *query.Query, m int, p int, mode Mode) *Result {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	db := data.MatchingDatabase(rng, q, m, int64(m*m))
	res := Run(q, db, p, 4242, mode)
	want := SequentialAnswer(q, db)
	if !data.Equal(res.Output, want) {
		t.Fatalf("%s: parallel output (%d tuples) != sequential (%d tuples)",
			q.Name, res.Output.NumTuples(), want.NumTuples())
	}
	return res
}

func TestHyperCubeTriangleCorrect(t *testing.T) {
	runMatching(t, query.Triangle(), 600, 64, SkewFree)
}

func TestHyperCubeChainCorrect(t *testing.T) {
	runMatching(t, query.Chain(3), 500, 64, SkewFree)
}

func TestHyperCubeStarCorrect(t *testing.T) {
	runMatching(t, query.Star(3), 400, 32, SkewFree)
}

func TestHyperCubeObliviousCorrect(t *testing.T) {
	runMatching(t, query.Triangle(), 300, 27, SkewOblivious)
}

func TestHyperCubeNonTrivialOutput(t *testing.T) {
	// Composing chain data guarantees non-empty output; checks we aren't
	// vacuously comparing empty sets.
	rng := rand.New(rand.NewSource(5))
	db := data.ChainMatchingDatabase(rng, 3, 400, 1_000_000)
	q := query.Chain(3)
	res := Run(q, db, 64, 1, SkewFree)
	if res.Output.NumTuples() != 400 {
		t.Fatalf("chain output=%d want 400", res.Output.NumTuples())
	}
	if !data.Equal(res.Output, SequentialAnswer(q, db)) {
		t.Fatal("parallel != sequential")
	}
}

// TestHyperCubeRandomQueries is the main correctness property test: on
// random connected binary queries with random matching data, HC equals the
// sequential answer.
func TestHyperCubeRandomQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := randomConnectedQuery(r)
		m := 50 + r.Intn(200)
		db := data.MatchingDatabase(r, q, m, int64(4*m))
		p := []int{4, 8, 16, 27, 64}[r.Intn(5)]
		res := Run(q, db, p, seed, SkewFree)
		return data.Equal(res.Output, SequentialAnswer(q, db))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func randomConnectedQuery(r *rand.Rand) *query.Query {
	k := 2 + r.Intn(4)
	l := 1 + r.Intn(4)
	atoms := make([]query.Atom, 0, l)
	for j := 0; j < l; j++ {
		a := r.Intn(k)
		if j > 0 {
			a = r.Intn(min(k, j+1))
		}
		b := r.Intn(k)
		atoms = append(atoms, query.Atom{
			Name: "S" + string(rune('A'+j)),
			Vars: []string{vn(a), vn(b)},
		})
	}
	return query.New("rand", atoms...)
}

func vn(i int) string { return string(rune('a' + i)) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestTriangleLoadScaling checks the headline result: on matching data the
// measured HC load for C3 tracks M/p^{2/3} — doubling p three times (8×)
// should cut the load by ≈4×.
func TestTriangleLoadScaling(t *testing.T) {
	q := query.Triangle()
	rng := rand.New(rand.NewSource(13))
	m := 8000
	db := data.MatchingDatabase(rng, q, m, int64(m*4))
	load8 := Run(q, db, 8, 99, SkewFree).MaxLoadBits
	load64 := Run(q, db, 64, 99, SkewFree).MaxLoadBits
	ratio := load8 / load64
	// Ideal ratio 8^{2/3} = 4; allow generous variance for hashing noise.
	if ratio < 2.5 || ratio > 6.5 {
		t.Errorf("load ratio p=8 vs p=64: %v (want ≈4)", ratio)
	}
}

// TestLoadNearPrediction compares the measured load against the LP
// prediction L_upper = p^λ — they should agree within a small constant
// factor on skew-free data.
func TestLoadNearPrediction(t *testing.T) {
	q := query.Triangle()
	rng := rand.New(rand.NewSource(17))
	m := 8000
	db := data.MatchingDatabase(rng, q, m, int64(m*4))
	pl := PlanForDatabase(q, db, 64, SkewFree)
	res := RunPlan(pl, db, 3)
	pred := pl.PredictedLoadBits()
	if res.MaxLoadBits > 4*pred {
		t.Errorf("measured %v >> predicted %v", res.MaxLoadBits, pred)
	}
	if res.MaxLoadBits < pred/4 {
		t.Errorf("measured %v << predicted %v (accounting bug?)", res.MaxLoadBits, pred)
	}
}

// TestSmallRelationBroadcast reproduces Lemma 3.18: with M1 much smaller
// than M2=M3 and small p, the plan gives S1's variables share 1 on its
// private dimension... in the triangle all variables are shared; instead we
// check the speedup: the load matches M/p (linear) rather than the
// symmetric-packing bound.
func TestSmallRelationBroadcast(t *testing.T) {
	q := query.Triangle()
	rng := rand.New(rand.NewSource(19))
	n := int64(1 << 20)
	db := data.NewDatabase(n)
	db.Add(data.RandomMatching(rng, "S1", 2, 100, n))
	db.Add(data.RandomMatching(rng, "S2", 2, 6400, n))
	db.Add(data.RandomMatching(rng, "S3", 2, 6400, n))
	p := 16 // p < M/M1 = 64: unit-vector packing wins, linear speedup
	pl := PlanForDatabase(q, db, p, SkewFree)
	stats := StatsBits(q, db)
	lower, u := packing.LLower(q, stats, float64(p))
	su := 0.0
	for _, w := range u {
		su += w
	}
	if math.Abs(su-1) > 1e-6 {
		t.Fatalf("expected unit-vector packing at p=%d, got %v", p, u)
	}
	res := RunPlan(pl, db, 7)
	if res.MaxLoadBits > 4*lower {
		t.Errorf("load %v should track linear-speedup bound %v", res.MaxLoadBits, lower)
	}
	if !data.Equal(res.Output, SequentialAnswer(q, db)) {
		t.Fatal("output mismatch")
	}
}

func TestReplicationRateMeasured(t *testing.T) {
	// For C3 with symmetric shares p^{1/3}, each tuple is replicated p^{1/3}
	// times, so the replication rate ≈ p^{1/3} = 4 at p=64.
	q := query.Triangle()
	rng := rand.New(rand.NewSource(23))
	db := data.MatchingDatabase(rng, q, 3000, 1<<20)
	res := Run(q, db, 64, 5, SkewFree)
	if res.ReplicationRate < 3 || res.ReplicationRate > 5 {
		t.Errorf("replication rate=%v want ≈4", res.ReplicationRate)
	}
}

func TestRunWithShares(t *testing.T) {
	q := query.SimpleJoin() // S1(x,z), S2(y,z)
	rng := rand.New(rand.NewSource(29))
	db := data.MatchingDatabase(rng, q, 500, 1<<20)
	// Standard parallel hash join: all shares on z.
	zi := q.VarIndex("z")
	shares := []int{1, 1, 1}
	shares[zi] = 16
	res := RunWithShares(q, db, shares, 11)
	if !data.Equal(res.Output, SequentialAnswer(q, db)) {
		t.Fatal("hash-join shares: wrong output")
	}
	if res.ServersUsed != 16 {
		t.Errorf("servers=%d want 16", res.ServersUsed)
	}
}

func TestPlanString(t *testing.T) {
	q := query.Triangle()
	pl := NewPlan(q, []float64{1 << 20, 1 << 20, 1 << 20}, 64, SkewFree)
	s := pl.String()
	if s == "" || pl.GridP() > 64 {
		t.Errorf("plan: %s (grid %d)", s, pl.GridP())
	}
	if len(pl.SharesByName()) != 3 {
		t.Error("SharesByName size")
	}
}

// TestSkewObliviousTightness checks the Section 4.1 tightness claim: on an
// instance where one column of a relation holds a single value, the HC load
// is Ω(M_j / min_{i∈S_j} p_i) — hashing degenerates to one dimension.
func TestSkewObliviousTightness(t *testing.T) {
	q := query.SimpleJoin() // S1(x,z), S2(y,z)
	n := int64(1 << 20)
	m := 2000
	db := data.NewDatabase(n)
	rng := rand.New(rand.NewSource(41))
	// S1: single z value -> hashing on z is useless for S1.
	s1 := data.NewRelation("S1", 2)
	xs := data.SampleDistinct(rng, m, n)
	for i := 0; i < m; i++ {
		s1.Append(xs[i], 7)
	}
	db.Add(s1)
	db.Add(data.RandomMatching(rng, "S2", 2, m, n))
	// Force the naive shares (1,1,p) on (x,y,z): S1's min share over its
	// variables is 1 only for x... z has share p but all of S1 lands on one
	// coordinate: load >= M1.
	zi := q.VarIndex("z")
	shares := []int{1, 1, 1}
	shares[zi] = 16
	res := RunWithShares(q, db, shares, 3)
	m1 := db.Get("S1").SizeBits(n)
	if res.MaxLoadBits < m1 {
		t.Errorf("degenerate hashing should load >= M1=%v, got %v", m1, res.MaxLoadBits)
	}
	// The skew-oblivious LP picks cube shares instead, load ~ M/p^{1/3}.
	obl := Run(q, db, 16, 3, SkewOblivious)
	if obl.MaxLoadBits >= res.MaxLoadBits {
		t.Errorf("oblivious shares %v should beat naive %v on this instance",
			obl.MaxLoadBits, res.MaxLoadBits)
	}
	if !data.Equal(obl.Output, SequentialAnswer(q, db)) {
		t.Error("oblivious output mismatch")
	}
}
