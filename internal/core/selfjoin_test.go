package core

import (
	"math/rand"
	"testing"

	"mpcquery/internal/data"
	"mpcquery/internal/query"
)

func TestDesugarSelfJoins(t *testing.T) {
	atoms := []query.Atom{
		{Name: "E", Vars: []string{"x", "y"}},
		{Name: "E", Vars: []string{"y", "z"}},
		{Name: "E", Vars: []string{"z", "w"}},
	}
	q, mapping := DesugarSelfJoins("path3", atoms)
	if q.NumAtoms() != 3 {
		t.Fatalf("atoms=%d", q.NumAtoms())
	}
	names := map[string]bool{}
	for _, a := range q.Atoms {
		if names[a.Name] {
			t.Fatalf("duplicate atom name %q after desugar", a.Name)
		}
		names[a.Name] = true
		if mapping[a.Name] != "E" {
			t.Fatalf("mapping[%s]=%s", a.Name, mapping[a.Name])
		}
	}
}

// TestSelfJoinPath2 computes length-2 paths E(x,y), E(y,z) on a random
// graph — the classic self-join the paper's footnote 2 addresses.
func TestSelfJoinPath2(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := int64(200)
	db := data.NewDatabase(n)
	e := data.NewRelation("E", 2)
	for i := 0; i < 600; i++ {
		e.Append(rng.Int63n(n), rng.Int63n(n))
	}
	db.Add(e)
	atoms := []query.Atom{
		{Name: "E", Vars: []string{"x", "y"}},
		{Name: "E", Vars: []string{"y", "z"}},
	}
	res := RunWithSelfJoins("path2", atoms, db, 16, 7, SkewFree)
	want := SequentialAnswerWithSelfJoins("path2", atoms, db)
	if !data.Equal(res.Output, want) {
		t.Fatalf("self-join path2: %d vs %d tuples", res.Output.NumTuples(), want.NumTuples())
	}
	if want.NumTuples() == 0 {
		t.Fatal("vacuous test: no length-2 paths")
	}
}

// TestSelfJoinTriangleSingleRelation computes triangles within one edge
// relation: E(x,y), E(y,z), E(z,x).
func TestSelfJoinTriangleSingleRelation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := int64(60)
	db := data.NewDatabase(n)
	e := data.NewRelation("E", 2)
	for i := 0; i < 500; i++ {
		e.Append(rng.Int63n(n), rng.Int63n(n))
	}
	db.Add(e)
	atoms := []query.Atom{
		{Name: "E", Vars: []string{"x", "y"}},
		{Name: "E", Vars: []string{"y", "z"}},
		{Name: "E", Vars: []string{"z", "x"}},
	}
	res := RunWithSelfJoins("tri", atoms, db, 27, 3, SkewFree)
	want := SequentialAnswerWithSelfJoins("tri", atoms, db)
	if !data.Equal(res.Output, want) {
		t.Fatalf("self-join triangle: %d vs %d", res.Output.NumTuples(), want.NumTuples())
	}
	if want.NumTuples() == 0 {
		t.Fatal("vacuous test: no triangles")
	}
}
