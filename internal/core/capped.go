package core

import (
	"mpcquery/internal/data"
	"mpcquery/internal/engine"
	"mpcquery/internal/hashing"
	"mpcquery/internal/localjoin"
)

// CappedResult reports a load-capped HyperCube run: servers accept at most
// capBits of incoming data and drop the rest, modeling an algorithm bound
// to maximum load L. Theorem 3.5 predicts the fraction of answers such an
// algorithm can report: at most (4L/(Σu_j·L(u,M,p)))^{Σu_j} of the expected
// output, so a cap below L_lower forces a vanishing fraction as p grows —
// the experimental face of the one-round lower bound.
type CappedResult struct {
	Plan        *Plan
	CapBits     float64
	AnswerCount int     // answers found under the cap
	FullCount   int     // answers of the uncapped run
	Fraction    float64 // AnswerCount/FullCount
	DroppedBits float64 // bits refused across all servers
}

// RunPlanCapped executes the plan routing normally but lets every server
// keep only the first capBits of what it receives (the rest is dropped
// before local evaluation). The fraction of the true answer set that
// survives is the quantity bounded by Theorem 3.5.
func RunPlanCapped(pl *Plan, db *data.Database, seed int64, capBits float64) *CappedResult {
	q := pl.Query
	grid := hashing.NewGrid(pl.Shares)
	gp := grid.P()
	family := hashing.NewFamily(seed, q.NumVars())
	bpv := data.BitsPerValue(db.N)
	cluster := engine.NewCluster(gp, bpv)
	defer cluster.Release()

	for j, a := range q.Atoms {
		rel := db.Get(a.Name)
		m := rel.NumTuples()
		for i := 0; i < m; i++ {
			cluster.Seed(i%gp, j, rel.Tuple(i))
		}
	}

	atomDims := make([][]int, q.NumAtoms())
	for j, a := range q.Atoms {
		dims := make([]int, len(a.Vars))
		for c, v := range a.Vars {
			dims[c] = q.VarIndex(v)
		}
		atomDims[j] = dims
	}
	cluster.Round("capped-shuffle", func(s int, inbox *engine.Inbox, emit *engine.Emitter) {
		bins := make([]int, 8)
		inbox.Each(func(kind int, tuple []int64) {
			dims := atomDims[kind]
			if cap(bins) < len(dims) {
				bins = make([]int, len(dims))
			}
			bins = bins[:len(dims)]
			for c, d := range dims {
				bins[c] = family.Bin(d, tuple[c], grid.Shares[d])
			}
			grid.Destinations(dims, bins, func(dest int) { emit.EmitTuple(dest, kind, tuple) })
		})
	})

	// Computation phase under the cap: each server accepts messages in
	// arrival order until capBits is exhausted. Budget cuts make fragments
	// diverge across servers, so no index cache — just per-worker scratch.
	outputs := make([]*data.Relation, gp)
	dropped := make([]float64, gp)
	scratches := localjoin.NewWorkerScratches()
	cluster.Compute(func(s, w int) {
		sc := scratches.Worker(w)
		frag := sc.Fragments(q)
		budget := capBits
		cluster.Inbox(s).Each(func(kind int, tuple []int64) {
			cost := float64(len(tuple) * bpv)
			if cost > budget {
				dropped[s] += cost
				return
			}
			budget -= cost
			frag[kind].AppendTuple(tuple)
		})
		outputs[s] = sc.EvaluateAtoms(q, frag, nil)
	})
	scratches.Release()

	answers := 0
	droppedTotal := 0.0
	for s := 0; s < gp; s++ {
		answers += outputs[s].NumTuples()
		droppedTotal += dropped[s]
	}

	full := RunPlan(pl, db, seed)
	fraction := 1.0
	if full.Output.NumTuples() > 0 {
		fraction = float64(answers) / float64(full.Output.NumTuples())
	}
	return &CappedResult{
		Plan:        pl,
		CapBits:     capBits,
		AnswerCount: answers,
		FullCount:   full.Output.NumTuples(),
		Fraction:    fraction,
		DroppedBits: droppedTotal,
	}
}
