package core

import (
	"fmt"

	"mpcquery/internal/data"
	"mpcquery/internal/engine"
	"mpcquery/internal/query"
)

// The paper restricts to queries without self-joins and notes (footnote 2)
// that this is without loss of generality: repeated occurrences of a
// relation are renamed apart and the relation is logically copied, at the
// cost of an ℓ-times-larger input in the worst case. This file makes that
// reduction practical: DesugarSelfJoins renames the atoms, and
// RunWithSelfJoins executes the renamed query against views of the shared
// relations (no physical copying).

// DesugarSelfJoins renames repeated relation occurrences apart
// (E, E#2, E#3, …) and returns the resulting self-join-free query together
// with the mapping from new atom names to the original relation names.
func DesugarSelfJoins(name string, atoms []query.Atom) (*query.Query, map[string]string) {
	counts := make(map[string]int)
	mapping := make(map[string]string, len(atoms))
	renamed := make([]query.Atom, len(atoms))
	for i, a := range atoms {
		counts[a.Name]++
		newName := a.Name
		if counts[a.Name] > 1 {
			newName = fmt.Sprintf("%s#%d", a.Name, counts[a.Name])
		}
		mapping[newName] = a.Name
		renamed[i] = query.Atom{Name: newName, Vars: append([]string(nil), a.Vars...)}
	}
	return query.New(name, renamed...), mapping
}

// RunWithSelfJoins evaluates a conjunctive query that may repeat relation
// names (e.g. length-2 paths E(x,y), E(y,z) over one edge relation) with
// the one-round HyperCube algorithm: atoms are renamed apart and each copy
// reads the shared relation through a renamed view.
func RunWithSelfJoins(name string, atoms []query.Atom, db *data.Database, p int, seed int64, mode Mode) *Result {
	return RunWithSelfJoinsCap(name, atoms, db, p, seed, mode, 0)
}

// RunWithSelfJoinsCap is RunWithSelfJoins with a declared load cap in bits
// (Section 2.1's abort semantics); 0 means no cap.
func RunWithSelfJoinsCap(name string, atoms []query.Atom, db *data.Database, p int, seed int64, mode Mode, capBits float64) *Result {
	return RunWithSelfJoinsCapNet(name, atoms, db, p, seed, mode, capBits, engine.Env{})
}

// RunWithSelfJoinsCapNet is RunWithSelfJoinsCap with round delivery through
// net (nil = in-process).
func RunWithSelfJoinsCapNet(name string, atoms []query.Atom, db *data.Database, p int, seed int64, mode Mode, capBits float64, env engine.Env) *Result {
	q, mapping := DesugarSelfJoins(name, atoms)
	view := data.NewDatabase(db.N)
	for newName, orig := range mapping {
		rel := db.Get(orig)
		if rel.Name != newName {
			r := rel.Clone()
			r.Name = newName
			rel = r
		}
		view.Add(rel)
	}
	return RunPlanWithCapNet(PlanForDatabase(q, view, p, mode), view, seed, capBits, env)
}

// SequentialAnswerWithSelfJoins is the single-node ground truth for
// RunWithSelfJoins.
func SequentialAnswerWithSelfJoins(name string, atoms []query.Atom, db *data.Database) *data.Relation {
	q, mapping := DesugarSelfJoins(name, atoms)
	rels := make(map[string]*data.Relation, len(mapping))
	for newName, orig := range mapping {
		rel := db.Get(orig)
		if rel.Name != newName {
			r := rel.Clone()
			r.Name = newName
			rel = r
		}
		rels[newName] = rel
	}
	return SequentialAnswer(q, &data.Database{N: db.N, Relations: rels})
}
