package core

import (
	"math"
	"testing"
)

// BenchmarkShareIntegerizationAblation compares the greedy integerization
// against naive flooring of p^{e_i}: the greedy variant should use more of
// the server budget (larger share product => lower load).
func BenchmarkShareIntegerizationAblation(b *testing.B) {
	exps := []float64{0.34, 0.33, 0.33}
	p := 100 // not a perfect power: flooring wastes budget
	naive := func() []int {
		sh := make([]int, len(exps))
		for i, e := range exps {
			sh[i] = int(math.Pow(float64(p), e))
			if sh[i] < 1 {
				sh[i] = 1
			}
		}
		return sh
	}
	b.Run("greedy", func(b *testing.B) {
		prod := 0
		for i := 0; i < b.N; i++ {
			sh := IntegerShares(exps, p)
			prod = sh[0] * sh[1] * sh[2]
		}
		b.ReportMetric(float64(prod), "servers-used")
	})
	b.Run("floor", func(b *testing.B) {
		prod := 0
		for i := 0; i < b.N; i++ {
			sh := naive()
			prod = sh[0] * sh[1] * sh[2]
		}
		b.ReportMetric(float64(prod), "servers-used")
	})
}
