package core

import (
	"math/rand"
	"testing"

	"mpcquery/internal/data"
	"mpcquery/internal/query"
)

// denseTriangleDB builds random (non-matching) relations over a small
// domain so the triangle query has a sizable output.
func denseTriangleDB(rng *rand.Rand, m int, n int64) *data.Database {
	db := data.NewDatabase(n)
	for _, a := range query.Triangle().Atoms {
		rel := data.NewRelation(a.Name, 2)
		for i := 0; i < m; i++ {
			rel.Append(rng.Int63n(n), rng.Int63n(n))
		}
		db.Add(rel)
	}
	return db
}

func TestCappedUnlimitedEqualsFull(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := query.Triangle()
	db := denseTriangleDB(rng, 1500, 128)
	pl := PlanForDatabase(q, db, 27, SkewFree)
	res := RunPlanCapped(pl, db, 5, 1e18)
	if res.Fraction != 1 {
		t.Fatalf("unlimited cap should find everything: fraction=%v", res.Fraction)
	}
	if res.DroppedBits != 0 {
		t.Errorf("dropped %v bits with unlimited cap", res.DroppedBits)
	}
	if res.AnswerCount != res.FullCount {
		t.Errorf("answers %d vs %d", res.AnswerCount, res.FullCount)
	}
}

// TestCappedFractionDecreasesWithP is the Theorem 3.5 experiment in
// miniature: capping the load at c·M/p (space exponent 0 < 1/3 = the
// triangle's requirement) must lose answers, and lose more at larger p.
func TestCappedFractionDecreasesWithP(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	q := query.Triangle()
	db := denseTriangleDB(rng, 4000, 256)
	M := db.Get("S1").SizeBits(db.N)

	fractions := map[int]float64{}
	for _, p := range []int{8, 64, 512} {
		pl := PlanForDatabase(q, db, p, SkewFree)
		res := RunPlanCapped(pl, db, 3, 3*M/float64(p))
		fractions[p] = res.Fraction
	}
	if fractions[8] <= fractions[512] {
		t.Errorf("fraction should shrink with p at fixed space exponent: %v", fractions)
	}
	if fractions[512] > 0.9 {
		t.Errorf("p=512 fraction=%v should be far from 1", fractions[512])
	}
}

// TestCappedAtLowerBoundFindsMost: capping at a constant multiple of
// L_lower = M/p^{2/3} must retain (nearly) all answers — the upper bound
// side of the tight pair.
func TestCappedAtLowerBoundFindsMost(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q := query.Triangle()
	db := denseTriangleDB(rng, 3000, 256)
	pl := PlanForDatabase(q, db, 64, SkewFree)
	full := RunPlan(pl, db, 3)
	res := RunPlanCapped(pl, db, 3, 2*full.MaxLoadBits)
	if res.Fraction < 0.999 {
		t.Errorf("cap at 2×actual load should lose nothing: fraction=%v", res.Fraction)
	}
}

func TestInputServerModelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	q := query.Triangle()
	db := data.MatchingDatabase(rng, q, 2000, 1<<20)
	pl := PlanForDatabase(q, db, 64, SkewFree)
	a := RunPlan(pl, db, 9)
	b := RunPlanInputServers(pl, db, 9)
	if a.MaxLoadBits != b.MaxLoadBits {
		t.Errorf("loads differ: partitioned %v vs input-server %v", a.MaxLoadBits, b.MaxLoadBits)
	}
	if !data.Equal(a.Output, b.Output) {
		t.Error("outputs differ between input models")
	}
}
