package ballsbins

import (
	"math"
	"math/rand"
	"testing"
)

func TestH(t *testing.T) {
	if H(0) != 0 {
		t.Errorf("h(0)=%v", H(0))
	}
	// h is increasing and convex on x>0.
	if !(H(1) > H(0.5) && H(0.5) > H(0.1) && H(0.1) > 0) {
		t.Error("h should be increasing")
	}
	want := 2*math.Log(2) - 1
	if math.Abs(H(1)-want) > 1e-12 {
		t.Errorf("h(1)=%v want %v", H(1), want)
	}
}

func TestTailBoundMonotone(t *testing.T) {
	// Larger δ ⇒ smaller tail; larger β (more skew allowed) ⇒ larger tail.
	// (β small enough that the bound is below the clamp.)
	if TailBound(64, 0.05, 2) >= TailBound(64, 0.05, 1) {
		t.Error("tail should decrease in δ")
	}
	if TailBound(64, 0.02, 1) >= TailBound(64, 0.05, 1) {
		t.Error("tail should increase in β")
	}
	if b := TailBound(64, 100, 0.01); b != 1 {
		t.Errorf("bound should clamp to 1, got %v", b)
	}
	if b := TailBound(64, 0, 1); b != 0 {
		t.Errorf("β=0 should give 0, got %v", b)
	}
}

func TestKLTailBoundTighter(t *testing.T) {
	// Theorem A.2's KL form is at least as strong as the h(δ) form
	// (footnote 8: K·D((1+δ)/K || 1/K) ≥ h(δ)).
	for _, k := range []int{4, 16, 64} {
		for _, delta := range []float64{0.5, 1, 2} {
			kl := KLTailBound(k, 1, 1+delta)
			hb := TailBound(k, 1, delta)
			if kl > hb+1e-12 {
				t.Errorf("K=%d δ=%v: KL bound %v exceeds h bound %v", k, delta, kl, hb)
			}
		}
	}
}

// TestBoundDominatesEmpirical validates Theorem A.1 experimentally: the
// measured tail probability never exceeds the bound (within sampling noise).
func TestBoundDominatesEmpirical(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	k := 16
	weights := UniformWeights(1600) // m/K = 100, β = K/m = 0.01
	beta := float64(k) / 1600
	for _, delta := range []float64{0.3, 0.5, 1} {
		emp := EmpiricalTail(rng, weights, k, delta, 300)
		bound := TailBound(k, beta, delta)
		if emp > bound+0.05 { // 0.05 sampling slack
			t.Errorf("δ=%v: empirical %v > bound %v", delta, emp, bound)
		}
	}
}

// TestSkewBreaksConcentration shows the motivation for the weight cap: one
// ball carrying half the mass forces max load ≥ m/2 regardless of K.
func TestSkewBreaksConcentration(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	w := SkewedWeights(1000, 0.5)
	k := 100
	got := MaxLoad(rng, w, k)
	if got < 500 {
		t.Errorf("max load %v should be at least the heavy ball 500", got)
	}
	// Uniform weights with the same total concentrate near m/K = 10.
	u := UniformWeights(1000)
	um := MaxLoad(rng, u, k)
	if um > 40 {
		t.Errorf("uniform max load %v unexpectedly large", um)
	}
}

func TestEmpiricalTailEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := UniformWeights(100)
	// δ = -1 threshold 0: always exceeded.
	if p := EmpiricalTail(rng, w, 10, -1, 10); p != 1 {
		t.Errorf("threshold 0 tail=%v want 1", p)
	}
	// Huge δ: never exceeded.
	if p := EmpiricalTail(rng, w, 10, 1000, 10); p != 0 {
		t.Errorf("huge δ tail=%v want 0", p)
	}
}

func TestSkewedWeightsTotal(t *testing.T) {
	w := SkewedWeights(100, 0.3)
	total := 0.0
	for _, x := range w {
		total += x
	}
	if math.Abs(total-100) > 1e-9 {
		t.Errorf("total=%v want 100", total)
	}
	if math.Abs(w[0]-30) > 1e-9 {
		t.Errorf("heavy=%v want 30", w[0])
	}
}
