// Package ballsbins implements the weighted balls-in-bins analysis of the
// paper's Appendix A: the Chernoff-style tail bound of Theorem A.1 for
// hash-partitioning weighted items into K bins, and a simulation harness
// that measures empirical tails to validate the bound (experiment E11).
package ballsbins

import (
	"math"
	"math/rand"
)

// H is the paper's h(x) = (1+x)·ln(1+x) − x appearing in the exponent of
// Theorem A.1.
func H(x float64) float64 {
	return (1+x)*math.Log(1+x) - x
}

// TailBound evaluates the Theorem A.1 bound on the probability that some
// bin's weight exceeds (1+δ)·m/K when weights are bounded by β·m/K:
//
//	P(max bin ≥ (1+δ)m/K) ≤ K · e^{−h(δ)/β}.
//
// The result is clamped to [0,1].
func TailBound(k int, beta, delta float64) float64 {
	if beta <= 0 {
		return 0
	}
	b := float64(k) * math.Exp(-H(delta)/beta)
	if b > 1 {
		return 1
	}
	return b
}

// KLTailBound evaluates the strengthened bound of Theorem A.2 with the
// relative entropy D(q'||q) of Bernoulli(q') vs Bernoulli(q):
//
//	P(bin weight > t·m/K) ≤ e^{−K·D(t/K || 1/K)/β}
//
// for a single bin; multiply by K for the union bound.
func KLTailBound(k int, beta, t float64) float64 {
	q := 1 / float64(k)
	qp := t / float64(k)
	if qp >= 1 {
		return 0
	}
	d := qp*math.Log(qp/q) + (1-qp)*math.Log((1-qp)/(1-q))
	b := float64(k) * math.Exp(-float64(k)*d/beta)
	if b > 1 {
		return 1
	}
	return b
}

// MaxLoad hash-partitions the weighted items into k bins with a fresh random
// assignment and returns the maximum bin weight. Items are identified by
// index; each is placed independently and uniformly (simulating a strongly
// universal hash on distinct keys).
func MaxLoad(rng *rand.Rand, weights []float64, k int) float64 {
	bins := make([]float64, k)
	for _, w := range weights {
		bins[rng.Intn(k)] += w
	}
	best := 0.0
	for _, b := range bins {
		if b > best {
			best = b
		}
	}
	return best
}

// EmpiricalTail estimates P(max bin weight ≥ (1+δ)·m/K) over the given
// number of independent trials, where m = Σ weights.
func EmpiricalTail(rng *rand.Rand, weights []float64, k int, delta float64, trials int) float64 {
	m := 0.0
	for _, w := range weights {
		m += w
	}
	threshold := (1 + delta) * m / float64(k)
	exceed := 0
	for t := 0; t < trials; t++ {
		if MaxLoad(rng, weights, k) >= threshold {
			exceed++
		}
	}
	return float64(exceed) / float64(trials)
}

// UniformWeights returns n unit weights (the skew-free case).
func UniformWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// SkewedWeights returns n weights where one item carries fraction f of the
// total mass n and the rest share the remainder equally — the worst case
// that motivates the β·m/K cap on individual weights.
func SkewedWeights(n int, f float64) []float64 {
	w := make([]float64, n)
	total := float64(n)
	w[0] = f * total
	rest := (1 - f) * total / float64(n-1)
	for i := 1; i < n; i++ {
		w[i] = rest
	}
	return w
}
