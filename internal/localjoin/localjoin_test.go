package localjoin

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mpcquery/internal/data"
	"mpcquery/internal/query"
)

func rels(pairs ...*data.Relation) map[string]*data.Relation {
	m := make(map[string]*data.Relation)
	for _, r := range pairs {
		m[r.Name] = r
	}
	return m
}

func TestSimpleJoin(t *testing.T) {
	q := query.MustParse("q(x,y,z) :- R(x,y), S(y,z)")
	r := data.FromTuples("R", 2, []int64{1, 10}, []int64{2, 20}, []int64{3, 10})
	s := data.FromTuples("S", 2, []int64{10, 100}, []int64{20, 200}, []int64{10, 101})
	got := Evaluate(q, rels(r, s))
	want := data.FromTuples("q", 3,
		[]int64{1, 10, 100}, []int64{1, 10, 101},
		[]int64{2, 20, 200},
		[]int64{3, 10, 100}, []int64{3, 10, 101})
	if !data.Equal(got, want) {
		t.Fatalf("got %d tuples", got.NumTuples())
	}
}

func TestTriangle(t *testing.T) {
	q := query.Triangle() // S1(x1,x2), S2(x2,x3), S3(x3,x1)
	s1 := data.FromTuples("S1", 2, []int64{1, 2}, []int64{4, 5})
	s2 := data.FromTuples("S2", 2, []int64{2, 3}, []int64{5, 6})
	s3 := data.FromTuples("S3", 2, []int64{3, 1}, []int64{6, 7})
	got := Evaluate(q, rels(s1, s2, s3))
	want := data.FromTuples("q", 3, []int64{1, 2, 3}) // only (1,2,3) closes
	if !data.Equal(got, want) {
		t.Fatalf("got %v tuples", got.NumTuples())
	}
}

func TestCartesianProduct(t *testing.T) {
	q := query.MustParse("q(x,y) :- R(x), S(y)")
	r := data.FromTuples("R", 1, []int64{1}, []int64{2})
	s := data.FromTuples("S", 1, []int64{10}, []int64{20}, []int64{30})
	got := Evaluate(q, rels(r, s))
	if got.NumTuples() != 6 {
		t.Fatalf("cartesian: %d tuples want 6", got.NumTuples())
	}
}

func TestRepeatedVariableInAtom(t *testing.T) {
	q := query.MustParse("q(x,y) :- R(x,x), S(x,y)")
	r := data.FromTuples("R", 2, []int64{1, 1}, []int64{2, 3}) // (2,3) inconsistent
	s := data.FromTuples("S", 2, []int64{1, 9}, []int64{2, 8})
	got := Evaluate(q, rels(r, s))
	want := data.FromTuples("q", 2, []int64{1, 9})
	if !data.Equal(got, want) {
		t.Fatalf("repeated var handling wrong: %d tuples", got.NumTuples())
	}
}

func TestEmptyInput(t *testing.T) {
	q := query.MustParse("q(x,y,z) :- R(x,y), S(y,z)")
	r := data.NewRelation("R", 2)
	s := data.FromTuples("S", 2, []int64{1, 2})
	got := Evaluate(q, rels(r, s))
	if got.NumTuples() != 0 {
		t.Fatalf("empty join should be empty, got %d", got.NumTuples())
	}
}

func TestSingleAtomProjection(t *testing.T) {
	q := query.MustParse("q(x,y) :- R(x,y)")
	r := data.FromTuples("R", 2, []int64{1, 2}, []int64{3, 4})
	got := Evaluate(q, rels(r))
	if !data.Equal(got, r) {
		t.Fatal("single atom should pass through")
	}
}

// TestChainAgainstBruteForce cross-validates the evaluator on random chain
// data against a brute-force nested-loop join.
func TestChainAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := query.Chain(3)
		db := make(map[string]*data.Relation)
		for _, a := range q.Atoms {
			rel := data.NewRelation(a.Name, 2)
			m := 1 + r.Intn(30)
			for i := 0; i < m; i++ {
				rel.Append(int64(r.Intn(10)), int64(r.Intn(10)))
			}
			db[a.Name] = rel
		}
		got := Evaluate(q, db)
		want := bruteForceChain3(db)
		return data.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func bruteForceChain3(db map[string]*data.Relation) *data.Relation {
	s1, s2, s3 := db["S1"], db["S2"], db["S3"]
	out := data.NewRelation("q", 4)
	for i := 0; i < s1.NumTuples(); i++ {
		for j := 0; j < s2.NumTuples(); j++ {
			if s1.At(i, 1) != s2.At(j, 0) {
				continue
			}
			for k := 0; k < s3.NumTuples(); k++ {
				if s2.At(j, 1) != s3.At(k, 0) {
					continue
				}
				out.Append(s1.At(i, 0), s1.At(i, 1), s2.At(j, 1), s3.At(k, 1))
			}
		}
	}
	return out
}

// TestTriangleAgainstBruteForce cross-validates on the cyclic query.
func TestTriangleAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := query.Triangle()
		db := make(map[string]*data.Relation)
		for _, a := range q.Atoms {
			rel := data.NewRelation(a.Name, 2)
			m := 1 + r.Intn(40)
			for i := 0; i < m; i++ {
				rel.Append(int64(r.Intn(8)), int64(r.Intn(8)))
			}
			db[a.Name] = rel
		}
		got := Evaluate(q, db)
		want := bruteForceTriangle(db)
		return data.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func bruteForceTriangle(db map[string]*data.Relation) *data.Relation {
	s1, s2, s3 := db["S1"], db["S2"], db["S3"]
	out := data.NewRelation("q", 3)
	for i := 0; i < s1.NumTuples(); i++ {
		for j := 0; j < s2.NumTuples(); j++ {
			if s1.At(i, 1) != s2.At(j, 0) {
				continue
			}
			for k := 0; k < s3.NumTuples(); k++ {
				if s2.At(j, 1) == s3.At(k, 0) && s3.At(k, 1) == s1.At(i, 0) {
					out.Append(s1.At(i, 0), s1.At(i, 1), s2.At(j, 1))
				}
			}
		}
	}
	return out
}

func TestMatchingDatabaseJoinSize(t *testing.T) {
	// On a composing chain database, |L_k| = m exactly.
	rng := rand.New(rand.NewSource(23))
	db := data.ChainMatchingDatabase(rng, 4, 200, 1_000_000)
	q := query.Chain(4)
	m := make(map[string]*data.Relation)
	for _, a := range q.Atoms {
		m[a.Name] = db.Get(a.Name)
	}
	got := Evaluate(q, m)
	if got.NumTuples() != 200 {
		t.Fatalf("chain output=%d want 200", got.NumTuples())
	}
}

func TestSemiJoinAntiJoin(t *testing.T) {
	l := data.FromTuples("L", 2, []int64{1, 10}, []int64{2, 20}, []int64{3, 30})
	r := data.FromTuples("R", 2, []int64{10, 5}, []int64{30, 6})
	lv := []string{"x", "y"}
	rv := []string{"y", "z"}
	semi := SemiJoin(l, r, lv, rv)
	if semi.NumTuples() != 2 {
		t.Fatalf("semijoin=%d want 2", semi.NumTuples())
	}
	anti := AntiJoin(l, r, lv, rv)
	if anti.NumTuples() != 1 || anti.At(0, 0) != 2 {
		t.Fatalf("antijoin wrong: %d tuples", anti.NumTuples())
	}
	// Semi + anti partition l.
	if semi.NumTuples()+anti.NumTuples() != l.NumTuples() {
		t.Error("semijoin and antijoin must partition the left side")
	}
}

func TestSemiJoinNoCommonVars(t *testing.T) {
	l := data.FromTuples("L", 1, []int64{1}, []int64{2})
	r := data.FromTuples("R", 1, []int64{9})
	// No common vars: every l-tuple matches (empty key present in r).
	semi := SemiJoin(l, r, []string{"x"}, []string{"y"})
	if semi.NumTuples() != 2 {
		t.Fatalf("disjoint semijoin=%d want 2", semi.NumTuples())
	}
	anti := AntiJoin(l, r, []string{"x"}, []string{"y"})
	if anti.NumTuples() != 0 {
		t.Fatalf("disjoint antijoin=%d want 0", anti.NumTuples())
	}
}
