package localjoin

import (
	"runtime"
	"sync"

	"mpcquery/internal/data"
	"mpcquery/internal/localjoin/baseline"
	"mpcquery/internal/query"
)

// Scratch is the columnar join kernel's reusable working state: the
// struct-of-arrays binding arena (one value column per bound variable,
// ping-ponged between join steps), the per-step hash indexes of the uncached
// path, the join-order and column-map buffers, and the fragment relations a
// computation phase rebuilds per server. A Scratch is not safe for
// concurrent use; a parallel computation phase keeps one per worker
// (engine.ParallelForWorkers / Cluster.Compute hand out worker ids for
// exactly this). After warm-up, evaluating with a Scratch allocates only the
// output relation.
type Scratch struct {
	// Binding arena: cols holds the current partial bindings column-wise
	// (cols[c][r] = value of bound variable c in binding r); next receives
	// the following step's bindings, then the two swap.
	cols, next [][]int64

	// Per-step indexes of the uncached path, one slot per join step,
	// backing arrays reused across calls.
	idxs []atomIndex

	// Join-order scratch (mirrors the baseline's greedy heuristic).
	order      []int
	used       []bool
	orderBound map[string]bool

	// Per-step column maps, rebuilt per atom (not per tuple).
	varPos     map[string]int // bound variable -> binding column
	sharedBind []int          // binding column per key variable
	keyCols    []int          // relation column per key variable
	freshCols  []int          // relation column per fresh variable
	freshNames []string
	eqPairs    [][2]int
	key        []int64 // gathered probe key values
	row        []int64 // output row assembly buffer

	// Atom-indexed views for the map-based entry points and Fragments.
	rels  []*data.Relation
	frags []*data.Relation

	// Streaming-evaluation memo (see EvaluateAtomsStream), live only while
	// streaming is set: memo is the per-evaluation view of the shared cache
	// and memoBuilt marks uncached per-step indexes already built, so
	// running the tail steps once per chunk performs exactly the cache
	// traffic and index builds of one barrier evaluation — the cache
	// hit/miss totals land in the trace's deterministic Structure and must
	// not vary with the chunking.
	streaming bool
	memo      map[indexKey]*atomIndex
	memoBuilt []bool
}

// NewScratch returns an empty kernel scratch.
func NewScratch() *Scratch { return &Scratch{} }

// scratchPool recycles kernel scratches process-wide, the same way the
// engine pools inbox arenas: a service evaluating a stream of rounds reuses
// the same binding arenas and index tables instead of growing fresh ones
// per run.
var scratchPool = sync.Pool{New: func() any { return &Scratch{} }}

// GrabScratch takes a (possibly warm) scratch from the shared pool.
func GrabScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// Release returns the scratch to the shared pool. The caller must not use
// it afterwards. References into caller-owned data — the atom-indexed
// relation views and the uncached indexes' value views — are dropped so a
// pooled scratch never pins a retired database; the scratch's own arenas
// (binding columns, index tables, fragment buffers) are retained for reuse.
func (s *Scratch) Release() {
	for i := range s.rels {
		s.rels[i] = nil
	}
	for i := range s.idxs {
		s.idxs[i].vals = nil // always a view here; cache-published indexes own copies
	}
	scratchPool.Put(s)
}

// WorkerScratches hands one pooled Scratch to each ParallelForWorkers
// worker id, lazily on first use — the shared shape of every computation
// phase (one scratch per worker, all released when the phase ends).
type WorkerScratches struct {
	s []*Scratch
}

// NewWorkerScratches sizes the set for the widest possible worker pool.
func NewWorkerScratches() *WorkerScratches {
	return &WorkerScratches{s: make([]*Scratch, runtime.GOMAXPROCS(0))}
}

// Worker returns worker w's scratch, grabbing one from the pool on first
// use. Safe under ParallelForWorkers' contract: one goroutine per id.
func (ws *WorkerScratches) Worker(w int) *Scratch {
	if ws.s[w] == nil {
		ws.s[w] = GrabScratch()
	}
	return ws.s[w]
}

// Release returns every grabbed scratch to the pool.
func (ws *WorkerScratches) Release() {
	for i, sc := range ws.s {
		if sc != nil {
			sc.Release()
			ws.s[i] = nil
		}
	}
}

// Fragments returns scratch-owned relations, one per atom of q in atom
// order, emptied and ready to receive a server's inbox (typically via
// Relation.AppendVals from engine batches, whose kind tags are atom
// indices). The relations are reused across calls: results derived from
// them must be copied out (EvaluateAtoms' output always is) before the next
// Fragments call on the same scratch.
func (s *Scratch) Fragments(q *query.Query) []*data.Relation {
	n := q.NumAtoms()
	for len(s.frags) < n {
		s.frags = append(s.frags, nil)
	}
	fr := s.frags[:n]
	for j := range q.Atoms {
		a := &q.Atoms[j]
		if f := fr[j]; f != nil && f.Arity == a.Arity() && f.Name == a.Name {
			f.Reset()
		} else {
			fr[j] = data.NewRelation(a.Name, a.Arity())
		}
	}
	return fr
}

// Evaluate is Evaluate with this scratch's arenas (see the package-level
// function for the contract).
func (s *Scratch) Evaluate(q *query.Query, rels map[string]*data.Relation) *data.Relation {
	if baselineMode.Load() {
		return baseline.Evaluate(q, rels)
	}
	if out := emptyFastPath(q, rels); out != nil {
		return out
	}
	byAtom := s.byAtom(q, rels)
	out, err := s.run(q, byAtom, s.greedyOrder(q, byAtom), nil)
	if err != nil {
		//lint:allow panicdiscipline typed *MissingRelationError panic; Run's recover maps it to the public ErrMissingRelation sentinel
		panic(err)
	}
	return out
}

// EvaluateAtoms evaluates q over relations given in atom order (rels[j] is
// atom j's relation — the natural indexing for a computation phase, whose
// message kinds are atom indices), sharing index builds through cache when
// non-nil. It is the kernel's primary entry point; inputs are assumed
// validated (Run's boundary checks every atom), and a missing relation
// panics with *MissingRelationError, which the Run boundary converts to its
// ErrMissingRelation sentinel.
func (s *Scratch) EvaluateAtoms(q *query.Query, rels []*data.Relation, cache *IndexCache) *data.Relation {
	if baselineMode.Load() {
		m := make(map[string]*data.Relation, len(rels))
		for j, r := range rels {
			if r != nil {
				m[q.Atoms[j].Name] = r
			}
		}
		return baseline.Evaluate(q, m)
	}
	for _, r := range rels {
		if r != nil && r.NumTuples() == 0 {
			return data.NewRelation(q.Name, q.NumVars())
		}
	}
	out, err := s.run(q, rels, s.greedyOrder(q, rels), cache)
	if err != nil {
		//lint:allow panicdiscipline typed *MissingRelationError panic; Run's recover maps it to the public ErrMissingRelation sentinel
		panic(err)
	}
	return out
}

// byAtom gathers the map-keyed relations into the scratch's atom-indexed
// buffer (nil for absent atoms).
func (s *Scratch) byAtom(q *query.Query, rels map[string]*data.Relation) []*data.Relation {
	n := q.NumAtoms()
	for len(s.rels) < n {
		s.rels = append(s.rels, nil)
	}
	by := s.rels[:n]
	for j := range q.Atoms {
		by[j] = rels[q.Atoms[j].Name]
	}
	return by
}

// emptyFastPath returns an empty result when any present relation is empty
// (a full conjunctive query needs every atom to contribute), skipping all
// ordering and index work — the common case on the many empty servers of a
// skew-aware layout. It returns nil when evaluation must proceed.
func emptyFastPath(q *query.Query, rels map[string]*data.Relation) *data.Relation {
	for i := range q.Atoms {
		if rel := rels[q.Atoms[i].Name]; rel != nil && rel.NumTuples() == 0 {
			return data.NewRelation(q.Name, q.NumVars())
		}
	}
	return nil
}

// greedyOrder picks the join order exactly as the baseline evaluator does:
// start from the smallest relation, then repeatedly take the atom sharing
// the most variables with the bound set (ties: smaller relation), falling
// back to the smallest unjoined atom when none connects.
func (s *Scratch) greedyOrder(q *query.Query, rels []*data.Relation) []int {
	n := q.NumAtoms()
	if cap(s.used) < n {
		s.used = make([]bool, n)
	}
	used := s.used[:n]
	for i := range used {
		used[i] = false
	}
	if s.orderBound == nil {
		s.orderBound = make(map[string]bool)
	}
	clear(s.orderBound)
	bound := s.orderBound
	s.order = s.order[:0]

	size := func(j int) int {
		if r := rels[j]; r != nil {
			return r.NumTuples()
		}
		return 0
	}
	sharedCount := func(j int) int {
		c := 0
		for _, v := range q.Atoms[j].DistinctVars() {
			if bound[v] {
				c++
			}
		}
		return c
	}
	for len(s.order) < n {
		best := -1
		bestShared, bestSize := -1, 0
		for j := 0; j < n; j++ {
			if used[j] {
				continue
			}
			sc := sharedCount(j)
			sz := size(j)
			if best < 0 || sc > bestShared || (sc == bestShared && sz < bestSize) {
				best, bestShared, bestSize = j, sc, sz
			}
		}
		used[best] = true
		s.order = append(s.order, best)
		for _, v := range q.Atoms[best].DistinctVars() {
			bound[v] = true
		}
	}
	return s.order
}

// repeatedVarPairs appends to buf the column pairs of the atom that a tuple
// must agree on to be self-consistent (S(x,x) matches only equal-column
// tuples): each later occurrence of a variable paired with its first
// occurrence. Computed once per atom per evaluation — the per-tuple check
// is then a handful of direct comparisons.
func repeatedVarPairs(atom *query.Atom, buf [][2]int) [][2]int {
	for j := 1; j < len(atom.Vars); j++ {
		for i := 0; i < j; i++ {
			if atom.Vars[i] == atom.Vars[j] {
				buf = append(buf, [2]int{i, j})
				break
			}
		}
	}
	return buf
}

// ensureCols grows cols to n columns and empties each, keeping capacity.
func ensureCols(cols [][]int64, n int) [][]int64 {
	for len(cols) < n {
		cols = append(cols, nil)
	}
	for i := 0; i < n; i++ {
		cols[i] = cols[i][:0]
	}
	return cols
}

// run is the kernel core: a hash join over the atoms in the given order,
// with partial bindings held column-wise in the scratch arena. Output rows
// are produced in exactly the baseline evaluator's order — bindings in
// order, matches per binding in ascending tuple order — so downstream
// order-sensitive digests (Report.Fingerprint) cannot tell the two apart.
func (s *Scratch) run(q *query.Query, rels []*data.Relation, order []int, cache *IndexCache) (*data.Relation, error) {
	vars := q.Vars()
	rows, err := s.joinLoop(q, rels, order, cache)
	if err != nil {
		return nil, err
	}

	// Emit rows in q.Vars() order.
	out := data.NewRelation(q.Name, len(vars))
	if rows == 0 {
		return out, nil
	}
	out.Grow(rows)
	if cap(s.row) < len(vars) {
		s.row = make([]int64, len(vars))
	}
	row := s.row[:len(vars)]
	// Gather the output column order once (every variable is bound when
	// rows > 0 here), then emit row-major.
	outCols := s.sharedBind[:0]
	for _, v := range vars {
		outCols = append(outCols, s.varPos[v])
	}
	for r := 0; r < rows; r++ {
		for i, c := range outCols {
			row[i] = s.cols[c][r]
		}
		out.AppendTuple(row)
	}
	return out, nil
}

// joinLoop executes the hash join, leaving the surviving bindings
// column-wise in s.cols (s.varPos maps each bound variable to its column)
// and returning the number of binding rows. It is shared by the
// materializing output path (run) and the aggregate output path, which folds
// the bindings instead of emitting them.
func (s *Scratch) joinLoop(q *query.Query, rels []*data.Relation, order []int, cache *IndexCache) (int, error) {
	if s.varPos == nil {
		s.varPos = make(map[string]int, q.NumVars())
	}
	clear(s.varPos)

	// One empty binding, zero bound columns: joinSteps' step-0 probe of the
	// keyless index enumerates the first atom's consistent tuples.
	return s.joinSteps(q, rels, order, 0, cache, 1, 0)
}

// joinSteps runs the join from fromStep onward over bindings already in
// s.cols (rows bindings of nb bound columns, s.varPos mapping their
// variables). joinLoop starts it from step 0 with the single empty binding;
// the streaming path (EvaluateAtomsStream) seeds step 0's bindings from one
// chunk of the first atom's tuples and starts it from step 1.
func (s *Scratch) joinSteps(q *query.Query, rels []*data.Relation, order []int, fromStep int, cache *IndexCache, rows, nb int) (int, error) {
	for step := fromStep; step < len(order); step++ {
		ai := order[step]
		atom := &q.Atoms[ai]
		rel := rels[ai]
		if rel == nil {
			return 0, &MissingRelationError{Atom: atom.Name}
		}

		// Column maps for this step, built once per atom.
		s.sharedBind = s.sharedBind[:0]
		s.keyCols = s.keyCols[:0]
		s.freshCols = s.freshCols[:0]
		s.freshNames = s.freshNames[:0]
		for c, v := range atom.Vars {
			first := true
			for _, w := range atom.Vars[:c] {
				if w == v {
					first = false
					break
				}
			}
			if !first {
				continue // repeated in-atom occurrence: handled by eqPairs
			}
			if pos, ok := s.varPos[v]; ok {
				s.sharedBind = append(s.sharedBind, pos)
				s.keyCols = append(s.keyCols, c)
			} else {
				s.freshCols = append(s.freshCols, c)
				s.freshNames = append(s.freshNames, v)
			}
		}
		s.eqPairs = repeatedVarPairs(atom, s.eqPairs[:0])

		// Build or fetch the index. The streaming memo short-circuits
		// repeat fetches/builds across chunks of one evaluation: the bound
		// variable set at each step is chunk-independent (it is determined
		// by the join order, not the data), so the step's key is stable.
		var ix *atomIndex
		if cache != nil {
			k := indexKey{atom: atom.Name, ident: rel.Identity(), sig: colSig(rel.Arity, s.keyCols, s.eqPairs)}
			if m, ok := s.memo[k]; s.streaming && ok {
				ix = m
			} else {
				ix = cache.getOrBuild(k, func() *atomIndex {
					fresh := new(atomIndex)
					fresh.build(rel, s.keyCols, s.eqPairs, true)
					return fresh
				})
				if s.streaming {
					s.memo[k] = ix
				}
			}
		} else {
			for len(s.idxs) <= step {
				s.idxs = append(s.idxs, atomIndex{})
			}
			ix = &s.idxs[step]
			if !s.streaming || len(s.memoBuilt) <= step || !s.memoBuilt[step] {
				ix.build(rel, s.keyCols, s.eqPairs, false)
				if s.streaming {
					for len(s.memoBuilt) <= step {
						s.memoBuilt = append(s.memoBuilt, false)
					}
					s.memoBuilt[step] = true
				}
			}
		}

		// Probe every binding, writing surviving rows column-wise into the
		// next arena.
		nOut := nb + len(s.freshCols)
		s.next = ensureCols(s.next, nOut)
		nk := len(s.sharedBind)
		if cap(s.key) < nk {
			s.key = make([]int64, nk)
		}
		key := s.key[:nk]
		arity := ix.arity
		outRows := 0
		for r := 0; r < rows; r++ {
			for t, bc := range s.sharedBind {
				key[t] = s.cols[bc][r]
			}
			slot := hashKey(key) & ix.mask
			for e := ix.head[slot]; e != 0; e = ix.next[e] {
				base := int(e-1) * arity
				match := true
				for t, kc := range ix.keyCols {
					if ix.vals[base+int(kc)] != key[t] {
						match = false
						break
					}
				}
				if !match {
					continue
				}
				for c := 0; c < nb; c++ {
					s.next[c] = append(s.next[c], s.cols[c][r])
				}
				for f, fc := range s.freshCols {
					s.next[nb+f] = append(s.next[nb+f], ix.vals[base+fc])
				}
				outRows++
			}
		}

		for f, name := range s.freshNames {
			s.varPos[name] = nb + f
		}
		nb = nOut
		s.cols, s.next = s.next, s.cols
		rows = outRows
		if rows == 0 {
			break
		}
	}
	return rows, nil
}
