// Package baseline preserves the pre-kernel local-join evaluator — string-
// keyed map indexes, a fresh row allocation per partial binding, per-call
// index builds — exactly as it shipped, as the reference implementation for
// the columnar kernel in the parent package. Equivalence tests pin the
// kernel's output (tuple-for-tuple, in order) against this evaluator, and
// the kernel ablation benchmarks measure speedup relative to it. It is
// frozen: fix bugs in the kernel, not here (a divergence IS the bug signal).
package baseline

import (
	"encoding/binary"

	"mpcquery/internal/data"
	"mpcquery/internal/query"
)

// Evaluate computes q over the given relations (one per atom name) and
// returns the full result, one column per variable in q.Vars() order.
// Duplicate output tuples are produced if the inputs are bags.
func Evaluate(q *query.Query, rels map[string]*data.Relation) *data.Relation {
	// A full conjunctive query needs every atom to contribute at least one
	// tuple; any empty input empties the join. Skew-aware layouts route
	// most servers nothing at all, so this fast path skips the ordering and
	// index allocations on the (typically many) empty servers of a round.
	for _, a := range q.Atoms {
		if rel := rels[a.Name]; rel != nil && rel.NumTuples() == 0 {
			return data.NewRelation(q.Name, q.NumVars())
		}
	}
	return EvaluateOrdered(q, rels, atomOrder(q, rels))
}

// EvaluateOrdered is Evaluate with an explicit atom join order (a
// permutation of atom indices). It exists for join-order ablations; the
// default greedy order of Evaluate is usually much faster on connected
// queries because every step stays bound to previous atoms.
func EvaluateOrdered(q *query.Query, rels map[string]*data.Relation, order []int) *data.Relation {
	vars := q.Vars()
	out := data.NewRelation(q.Name, len(vars))

	// bindings holds one row per partial match, columns indexed by varPos.
	varPos := make(map[string]int, len(vars))
	var bound []string
	bindings := [][]int64{{}} // one empty binding to start

	for _, ai := range order {
		atom := q.Atoms[ai]
		rel := rels[atom.Name]
		if rel == nil {
			panic("localjoin: missing relation " + atom.Name)
		}
		shared, fresh := splitVars(atom, varPos)
		idx := buildIndex(rel, atom, shared, varPos)

		var next [][]int64
		keyBuf := make([]byte, 8*len(shared))
		for _, b := range bindings {
			key := bindingKey(b, shared, varPos, keyBuf)
			for _, ti := range idx[key] {
				t := rel.Tuple(ti)
				row := make([]int64, len(b), len(b)+len(fresh))
				copy(row, b)
				ok := true
				for _, fv := range fresh {
					v, valid := atomValue(atom, t, fv.name)
					if !valid {
						ok = false
						break
					}
					row = append(row, v)
				}
				if ok {
					next = append(next, row)
				}
			}
		}
		for _, fv := range fresh {
			varPos[fv.name] = len(bound)
			bound = append(bound, fv.name)
		}
		bindings = next
		if len(bindings) == 0 {
			break
		}
	}

	// Emit rows in q.Vars() order.
	out.Grow(len(bindings))
	row := make([]int64, len(vars))
	for _, b := range bindings {
		for i, v := range vars {
			row[i] = b[varPos[v]]
		}
		out.AppendTuple(row)
	}
	return out
}

type freshVar struct {
	name string
	col  int // first column of the atom where it appears
}

// splitVars partitions the atom's distinct variables into those already
// bound (shared) and those introduced by this atom (fresh).
func splitVars(atom query.Atom, varPos map[string]int) (shared []string, fresh []freshVar) {
	seen := make(map[string]bool)
	for c, v := range atom.Vars {
		if seen[v] {
			continue
		}
		seen[v] = true
		if _, ok := varPos[v]; ok {
			shared = append(shared, v)
		} else {
			fresh = append(fresh, freshVar{name: v, col: c})
		}
	}
	return shared, fresh
}

// buildIndex hashes rel's tuples by the values of the shared variables,
// dropping tuples that are inconsistent on repeated variables.
func buildIndex(rel *data.Relation, atom query.Atom, shared []string, varPos map[string]int) map[string][]int {
	_ = varPos
	idx := make(map[string][]int)
	m := rel.NumTuples()
	keyBuf := make([]byte, 8*len(shared))
	for i := 0; i < m; i++ {
		t := rel.Tuple(i)
		if !selfConsistent(atom, t) {
			continue
		}
		k := 0
		for _, sv := range shared {
			v, _ := atomValue(atom, t, sv)
			binary.LittleEndian.PutUint64(keyBuf[k:], uint64(v))
			k += 8
		}
		key := string(keyBuf[:k])
		idx[key] = append(idx[key], i)
	}
	return idx
}

// selfConsistent checks that a tuple agrees with itself on repeated
// variables of the atom (S(x,x) matches only tuples with equal columns).
func selfConsistent(atom query.Atom, t []int64) bool {
	for i := 0; i < len(atom.Vars); i++ {
		for j := i + 1; j < len(atom.Vars); j++ {
			if atom.Vars[i] == atom.Vars[j] && t[i] != t[j] {
				return false
			}
		}
	}
	return true
}

// atomValue returns the value of variable v in tuple t under the atom's
// column layout.
func atomValue(atom query.Atom, t []int64, v string) (int64, bool) {
	for c, w := range atom.Vars {
		if w == v {
			return t[c], true
		}
	}
	return 0, false
}

func bindingKey(b []int64, shared []string, varPos map[string]int, buf []byte) string {
	k := 0
	for _, sv := range shared {
		binary.LittleEndian.PutUint64(buf[k:], uint64(b[varPos[sv]]))
		k += 8
	}
	return string(buf[:k])
}

// atomOrder picks the join order: start from the smallest relation, then
// repeatedly take the atom sharing the most variables with the bound set
// (ties: smaller relation), falling back to the smallest unjoined atom when
// none connects (cartesian product step).
func atomOrder(q *query.Query, rels map[string]*data.Relation) []int {
	n := q.NumAtoms()
	used := make([]bool, n)
	bound := make(map[string]bool)
	size := func(j int) int {
		if r := rels[q.Atoms[j].Name]; r != nil {
			return r.NumTuples()
		}
		return 0
	}
	sharedCount := func(j int) int {
		c := 0
		for _, v := range q.Atoms[j].DistinctVars() {
			if bound[v] {
				c++
			}
		}
		return c
	}
	var order []int
	for len(order) < n {
		best := -1
		bestShared, bestSize := -1, 0
		for j := 0; j < n; j++ {
			if used[j] {
				continue
			}
			sc := sharedCount(j)
			sz := size(j)
			if best < 0 || sc > bestShared || (sc == bestShared && sz < bestSize) {
				best, bestShared, bestSize = j, sc, sz
			}
		}
		used[best] = true
		order = append(order, best)
		for _, v := range q.Atoms[best].DistinctVars() {
			bound[v] = true
		}
	}
	return order
}

// SemiJoin returns the tuples of l that join with at least one tuple of r
// on their common variables (the paper's ⋉ of Section 5.2).
func SemiJoin(l, r *data.Relation, lVars, rVars []string) *data.Relation {
	common, lCols, rCols := commonColumns(lVars, rVars)
	_ = common
	keys := make(map[string]bool)
	keyBuf := make([]byte, 8*len(rCols))
	for i := 0; i < r.NumTuples(); i++ {
		keys[projKey(r.Tuple(i), rCols, keyBuf)] = true
	}
	out := data.NewRelation(l.Name, l.Arity)
	lBuf := make([]byte, 8*len(lCols))
	for i := 0; i < l.NumTuples(); i++ {
		if keys[projKey(l.Tuple(i), lCols, lBuf)] {
			out.AppendTuple(l.Tuple(i))
		}
	}
	return out
}

// AntiJoin returns the tuples of l with no matching tuple in r on the
// common variables (the paper's ▷ of Section 5.2).
func AntiJoin(l, r *data.Relation, lVars, rVars []string) *data.Relation {
	_, lCols, rCols := commonColumns(lVars, rVars)
	keys := make(map[string]bool)
	keyBuf := make([]byte, 8*len(rCols))
	for i := 0; i < r.NumTuples(); i++ {
		keys[projKey(r.Tuple(i), rCols, keyBuf)] = true
	}
	out := data.NewRelation(l.Name, l.Arity)
	lBuf := make([]byte, 8*len(lCols))
	for i := 0; i < l.NumTuples(); i++ {
		if !keys[projKey(l.Tuple(i), lCols, lBuf)] {
			out.AppendTuple(l.Tuple(i))
		}
	}
	return out
}

func commonColumns(lVars, rVars []string) (common []string, lCols, rCols []int) {
	rIdx := make(map[string]int, len(rVars))
	for i, v := range rVars {
		rIdx[v] = i
	}
	for i, v := range lVars {
		if j, ok := rIdx[v]; ok {
			common = append(common, v)
			lCols = append(lCols, i)
			rCols = append(rCols, j)
		}
	}
	return common, lCols, rCols
}

func projKey(t []int64, cols []int, buf []byte) string {
	k := 0
	for _, c := range cols {
		binary.LittleEndian.PutUint64(buf[k:], uint64(t[c]))
		k += 8
	}
	return string(buf[:k])
}
