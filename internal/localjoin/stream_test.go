package localjoin

import (
	"math/rand"
	"testing"

	"mpcquery/internal/data"
	"mpcquery/internal/query"
)

// atomOrder lays out map-keyed relations in atom order, the indexing
// EvaluateAtoms and EvaluateAtomsStream share.
func atomOrder(q *query.Query, m map[string]*data.Relation) []*data.Relation {
	out := make([]*data.Relation, q.NumAtoms())
	for j := range q.Atoms {
		out[j] = m[q.Atoms[j].Name]
	}
	return out
}

func randomRelation(rng *rand.Rand, name string, arity, m, domain int) *data.Relation {
	rel := data.NewRelation(name, arity)
	row := make([]int64, arity)
	for i := 0; i < m; i++ {
		for c := range row {
			row[c] = int64(rng.Intn(domain))
		}
		rel.AppendTuple(row)
	}
	return rel
}

// TestEvaluateAtomsStreamMatchesMaterialized pins the streamed evaluator's
// contract: for every query shape, chunk size, and cache mode, the
// concatenation of the yielded blocks is byte-identical to EvaluateAtoms'
// output — same rows, same order, same column layout.
func TestEvaluateAtomsStreamMatchesMaterialized(t *testing.T) {
	queries := []string{
		"q(x,y,z) :- R(x,y), S(y,z)",
		"q(x1,x2,x3) :- S1(x1,x2), S2(x2,x3), S3(x3,x1)",
		"q(x,y1,y2,y3) :- S1(x,y1), S2(x,y2), S3(x,y3)",
		"q(x,y) :- R(x,x), S(x,y)",
		"q(x,y) :- R(x), S(y)",
		"q(x) :- R(x,x)",
	}
	for _, qs := range queries {
		q := query.MustParse(qs)
		rng := rand.New(rand.NewSource(42))
		m := make(map[string]*data.Relation)
		for j := range q.Atoms {
			a := &q.Atoms[j]
			if _, ok := m[a.Name]; ok {
				continue
			}
			// Small domain so joins actually match and repeated-variable
			// filters actually fire.
			m[a.Name] = randomRelation(rng, a.Name, a.Arity(), 40+j*7, 8)
		}

		ref := GrabScratch()
		want := ref.EvaluateAtoms(q, atomOrder(q, m), nil)
		ref.Release()

		for _, chunk := range []int{1, 3, 7, 1 << 20} {
			for _, useCache := range []bool{false, true} {
				var cache *IndexCache
				if useCache {
					cache = NewIndexCache()
				}
				sc := GrabScratch()
				var got []int64
				n := sc.EvaluateAtomsStream(q, atomOrder(q, m), cache, chunk, func(vals []int64) {
					got = append(got, vals...)
				})
				sc.Release()
				if n != want.NumTuples() {
					t.Fatalf("%s chunk=%d cache=%v: %d rows, want %d", qs, chunk, useCache, n, want.NumTuples())
				}
				wantVals := want.Vals()
				if len(got) != len(wantVals) {
					t.Fatalf("%s chunk=%d cache=%v: %d values, want %d", qs, chunk, useCache, len(got), len(wantVals))
				}
				for i := range got {
					if got[i] != wantVals[i] {
						t.Fatalf("%s chunk=%d cache=%v: value %d = %d, want %d (order or content drift)",
							qs, chunk, useCache, i, got[i], wantVals[i])
					}
				}
			}
		}
	}
}

// TestEvaluateAtomsStreamCacheParity pins the cache-shape contract: a
// streamed evaluation performs the identical sequence of index-cache
// requests as the barrier path (including the step-0 keyless build it never
// probes), so the hit/miss totals — which the obs trace renders in its
// deterministic Structure — cannot distinguish the two paths.
func TestEvaluateAtomsStreamCacheParity(t *testing.T) {
	q := query.MustParse("q(x,y,z) :- R(x,y), S(y,z)")
	rng := rand.New(rand.NewSource(7))
	m := map[string]*data.Relation{
		"R": randomRelation(rng, "R", 2, 50, 10),
		"S": randomRelation(rng, "S", 2, 60, 10),
	}

	barrier := NewIndexCache()
	sc := GrabScratch()
	sc.EvaluateAtoms(q, atomOrder(q, m), barrier)
	sc.Release()
	bh, bm := barrier.Stats()

	streamed := NewIndexCache()
	sc = GrabScratch()
	sc.EvaluateAtomsStream(q, atomOrder(q, m), streamed, 8, func([]int64) {})
	sc.Release()
	sh, sm := streamed.Stats()

	if bh != sh || bm != sm {
		t.Fatalf("cache totals diverge: barrier hits=%d misses=%d, streamed hits=%d misses=%d", bh, bm, sh, sm)
	}
}

// TestEvaluateAtomsStreamEmptyInput pins the empty-relation fast path.
func TestEvaluateAtomsStreamEmptyInput(t *testing.T) {
	q := query.MustParse("q(x,y,z) :- R(x,y), S(y,z)")
	m := map[string]*data.Relation{
		"R": data.FromTuples("R", 2, []int64{1, 2}),
		"S": data.NewRelation("S", 2),
	}
	sc := GrabScratch()
	defer sc.Release()
	calls := 0
	if n := sc.EvaluateAtomsStream(q, atomOrder(q, m), nil, 4, func([]int64) { calls++ }); n != 0 || calls != 0 {
		t.Fatalf("empty input: n=%d calls=%d, want 0/0", n, calls)
	}
}
