package localjoin

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mpcquery/internal/data"
	"mpcquery/internal/query"
)

func TestGenericJoinTriangle(t *testing.T) {
	q := query.Triangle()
	s1 := data.FromTuples("S1", 2, []int64{1, 2}, []int64{4, 5})
	s2 := data.FromTuples("S2", 2, []int64{2, 3}, []int64{5, 6})
	s3 := data.FromTuples("S3", 2, []int64{3, 1}, []int64{6, 7})
	got := GenericJoin(q, rels(s1, s2, s3))
	want := data.FromTuples("q", 3, []int64{1, 2, 3})
	if !data.Equal(got, want) {
		t.Fatalf("got %d tuples", got.NumTuples())
	}
}

func TestGenericJoinEqualsHashJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	queries := []*query.Query{
		query.Triangle(), query.Chain(3), query.Chain(4), query.Star(3),
		query.Cycle(4), query.K4(), query.SpokedWheel(2),
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := queries[r.Intn(len(queries))]
		db := make(map[string]*data.Relation)
		for _, a := range q.Atoms {
			rel := data.NewRelation(a.Name, a.Arity())
			m := 1 + r.Intn(60)
			tuple := make([]int64, a.Arity())
			for i := 0; i < m; i++ {
				for c := range tuple {
					tuple[c] = int64(r.Intn(9))
				}
				rel.AppendTuple(tuple)
			}
			db[a.Name] = rel
		}
		// GenericJoin has set semantics; compare canonical forms.
		return data.Equal(GenericJoin(q, db), Evaluate(q, db))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestGenericJoinRepeatedVariable(t *testing.T) {
	q := query.MustParse("q(x,y) :- R(x,x), S(x,y)")
	r := data.FromTuples("R", 2, []int64{1, 1}, []int64{2, 3})
	s := data.FromTuples("S", 2, []int64{1, 9}, []int64{2, 8})
	got := GenericJoin(q, rels(r, s))
	want := data.FromTuples("q", 2, []int64{1, 9})
	if !data.Equal(got, want) {
		t.Fatalf("repeated var: %d tuples", got.NumTuples())
	}
}

func TestGenericJoinEmptyAndCartesian(t *testing.T) {
	q := query.MustParse("q(x,y,z) :- R(x,y), S(y,z)")
	r := data.NewRelation("R", 2)
	s := data.FromTuples("S", 2, []int64{1, 2})
	if got := GenericJoin(q, rels(r, s)); got.NumTuples() != 0 {
		t.Fatalf("empty: %d", got.NumTuples())
	}
	q2 := query.MustParse("q(x,y) :- R(x), S(y)")
	r2 := data.FromTuples("R", 1, []int64{1}, []int64{2})
	s2 := data.FromTuples("S", 1, []int64{10}, []int64{20})
	if got := GenericJoin(q2, rels(r2, s2)); got.NumTuples() != 4 {
		t.Fatalf("cartesian: %d", got.NumTuples())
	}
}

// TestGenericJoinAGMWorstCase builds the classic instance where binary join
// plans materialize a quadratic intermediate but the triangle output is
// small: S1 = {a}×[m] ∪ [m]×{b}, etc. GenericJoin must handle it without
// blowing up (we only assert correctness here; the bench measures time).
func TestGenericJoinAGMWorstCase(t *testing.T) {
	q := query.Triangle()
	m := 200
	db := agmWorstCase(m)
	got := GenericJoin(q, db)
	want := Evaluate(q, db)
	if !data.Equal(got, want) {
		t.Fatalf("AGM worst case: %d vs %d", got.NumTuples(), want.Canonical().NumTuples())
	}
}

// agmWorstCase: relations of size 2m-1 whose pairwise joins have m²-ish
// tuples but whose triangle count is Θ(m).
func agmWorstCase(m int) map[string]*data.Relation {
	db := make(map[string]*data.Relation)
	for _, name := range []string{"S1", "S2", "S3"} {
		rel := data.NewRelation(name, 2)
		for i := 1; i < m; i++ {
			rel.Append(0, int64(i)) // hub on the left
			rel.Append(int64(i), 0) // hub on the right
		}
		rel.Append(0, 0)
		db[name] = rel
	}
	return db
}

func BenchmarkTriangleGenericVsBinary(b *testing.B) {
	q := query.Triangle()
	db := agmWorstCase(400)
	b.Run("generic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			GenericJoin(q, db)
		}
	})
	b.Run("binary-hash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Evaluate(q, db)
		}
	})
}
