package localjoin

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mpcquery/internal/data"
	"mpcquery/internal/query"
)

func TestBuildJoinTree(t *testing.T) {
	tree, ok := BuildJoinTree(query.Chain(4))
	if !ok {
		t.Fatal("chains are acyclic")
	}
	if len(tree.Order) != 4 {
		t.Fatalf("order=%v", tree.Order)
	}
	if tree.Parent[tree.Root] != -1 {
		t.Error("root must have no parent")
	}
	// Every non-root parent edge must share a variable.
	q := query.Chain(4)
	for j, p := range tree.Parent {
		if p < 0 {
			continue
		}
		shares := false
		for _, v := range q.Atoms[j].DistinctVars() {
			if q.Atoms[p].HasVar(v) {
				shares = true
			}
		}
		if !shares {
			t.Errorf("edge %d->%d shares no variable", j, p)
		}
	}
	if _, ok := BuildJoinTree(query.Triangle()); ok {
		t.Error("triangle must be rejected")
	}
	if _, ok := BuildJoinTree(query.K4()); ok {
		t.Error("K4 must be rejected")
	}
	if _, ok := BuildJoinTree(query.MustParse("S1(x0,x1,x2), S2(x1,x2,x3)")); !ok {
		t.Error("ternary chain is acyclic")
	}
}

func TestYannakakisChain(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := query.Chain(4)
	db := make(map[string]*data.Relation)
	for _, a := range q.Atoms {
		rel := data.NewRelation(a.Name, 2)
		for i := 0; i < 80; i++ {
			rel.Append(rng.Int63n(15), rng.Int63n(15))
		}
		db[a.Name] = rel
	}
	got := Yannakakis(q, db)
	want := Evaluate(q, db)
	if !data.Equal(got, want) {
		t.Fatalf("yannakakis: %d vs %d", got.NumTuples(), want.NumTuples())
	}
}

func TestYannakakisEqualsEvaluateRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	queries := []*query.Query{
		query.Chain(3), query.Chain(5), query.Star(3), query.Star(4),
		query.SpokedWheel(2), query.SpokedWheel(3),
		query.MustParse("S1(x0,x1,x2), S2(x1,x2,x3)"),
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := queries[r.Intn(len(queries))]
		db := make(map[string]*data.Relation)
		for _, a := range q.Atoms {
			rel := data.NewRelation(a.Name, a.Arity())
			m := 1 + r.Intn(50)
			tuple := make([]int64, a.Arity())
			for i := 0; i < m; i++ {
				for c := range tuple {
					tuple[c] = int64(r.Intn(8))
				}
				rel.AppendTuple(tuple)
			}
			db[a.Name] = rel
		}
		return data.Equal(Yannakakis(q, db), Evaluate(q, db))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestYannakakisPanicsOnCyclic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("cyclic query should panic")
		}
	}()
	Yannakakis(query.Triangle(), map[string]*data.Relation{
		"S1": data.NewRelation("S1", 2),
		"S2": data.NewRelation("S2", 2),
		"S3": data.NewRelation("S3", 2),
	})
}

// TestYannakakisDanglingTuples: the semijoin passes must remove tuples that
// cannot contribute, keeping the final join intermediate small. We verify
// semantics on a chain where only one path survives.
func TestYannakakisDanglingTuples(t *testing.T) {
	q := query.Chain(3)
	s1 := data.FromTuples("S1", 2, []int64{1, 2}, []int64{10, 11}, []int64{20, 21})
	s2 := data.FromTuples("S2", 2, []int64{2, 3}, []int64{11, 99})
	s3 := data.FromTuples("S3", 2, []int64{3, 4})
	got := Yannakakis(q, map[string]*data.Relation{"S1": s1, "S2": s2, "S3": s3})
	want := data.FromTuples("q", 4, []int64{1, 2, 3, 4})
	if !data.Equal(got, want) {
		t.Fatalf("dangling: %d tuples", got.NumTuples())
	}
}

// BenchmarkYannakakisVsBinary shows the dangling-tuple advantage: a chain
// where the middle relation joins nothing, so Yannakakis prunes everything
// in the semijoin passes while the binary plan materializes a large
// intermediate before discovering the emptiness.
func BenchmarkYannakakisVsBinary(b *testing.B) {
	q := query.Chain(3)
	m := 3000
	s1 := data.NewRelation("S1", 2)
	s2 := data.NewRelation("S2", 2)
	s3 := data.NewRelation("S3", 2)
	for i := 0; i < m; i++ {
		s1.Append(int64(i), 7) // everything funnels into value 7
		s2.Append(7, int64(i))
		s3.Append(int64(i+m), int64(i)) // never joins with s2's outputs
	}
	db := map[string]*data.Relation{"S1": s1, "S2": s2, "S3": s3}
	b.Run("yannakakis", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if Yannakakis(q, db).NumTuples() != 0 {
				b.Fatal("expected empty")
			}
		}
	})
	b.Run("binary-hash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if Evaluate(q, db).NumTuples() != 0 {
				b.Fatal("expected empty")
			}
		}
	})
}
