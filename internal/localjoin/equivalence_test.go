package localjoin

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"mpcquery/internal/data"
	"mpcquery/internal/localjoin/baseline"
	"mpcquery/internal/query"
)

// randomQuery draws a full conjunctive query from a space that covers
// everything the kernel must handle: multiple atoms, arities 1–3, repeated
// variables inside an atom, shared variables across atoms, and disconnected
// (cartesian) components.
func randomQuery(r *rand.Rand) *query.Query {
	nAtoms := 1 + r.Intn(4)
	varPool := []string{"x", "y", "z", "u", "v"}
	atoms := make([]query.Atom, nAtoms)
	for j := range atoms {
		arity := 1 + r.Intn(3)
		vars := make([]string, arity)
		for c := range vars {
			vars[c] = varPool[r.Intn(len(varPool))]
		}
		atoms[j] = query.Atom{Name: fmt.Sprintf("S%d", j+1), Vars: vars}
	}
	return query.New("q", atoms...)
}

// randomRels draws one relation per atom over a tiny domain so joins
// actually hit, with occasional empty relations to exercise the fast path.
func randomRels(r *rand.Rand, q *query.Query) map[string]*data.Relation {
	rels := make(map[string]*data.Relation, q.NumAtoms())
	for _, a := range q.Atoms {
		rel := data.NewRelation(a.Name, a.Arity())
		m := r.Intn(40)
		if r.Intn(12) == 0 {
			m = 0
		}
		row := make([]int64, a.Arity())
		for i := 0; i < m; i++ {
			for c := range row {
				row[c] = int64(r.Intn(8))
			}
			rel.AppendTuple(row)
		}
		rels[a.Name] = rel
	}
	return rels
}

// sameRelationExactly compares two relations tuple-for-tuple IN ORDER — the
// bit-identity Report.Fingerprint demands, strictly stronger than multiset
// equality.
func sameRelationExactly(a, b *data.Relation) bool {
	if a.Arity != b.Arity || a.NumTuples() != b.NumTuples() {
		return false
	}
	av, bv := a.Vals(), b.Vals()
	for i := range av {
		if av[i] != bv[i] {
			return false
		}
	}
	return true
}

// TestKernelMatchesBaselineRandom is the property-based equivalence pin:
// over randomized queries and relations (seeded), the kernel must reproduce
// the baseline evaluator's output exactly — same tuples, same order, same
// multiplicities.
func TestKernelMatchesBaselineRandom(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	s := NewScratch()
	for trial := 0; trial < 400; trial++ {
		q := randomQuery(r)
		rels := randomRels(r, q)
		got := s.Evaluate(q, rels)
		want := baseline.Evaluate(q, rels)
		if !sameRelationExactly(got, want) {
			t.Fatalf("trial %d: kernel diverged from baseline\nquery: %s\nkernel %d tuples, baseline %d tuples",
				trial, q, got.NumTuples(), want.NumTuples())
		}
		if !data.EqualMultiset(got, want) {
			t.Fatalf("trial %d: multiset mismatch on %s", trial, q)
		}
	}
}

// TestKernelCachedSharedAcrossWorkers drives the IndexCache exactly as a
// computation phase does — many workers, shared cache, content-identical
// fragments — and pins every result against the baseline. Run under -race
// this is also the cache's concurrency test.
func TestKernelCachedSharedAcrossWorkers(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 25; trial++ {
		q := randomQuery(r)
		rels := randomRels(r, q)
		byAtom := make([]*data.Relation, q.NumAtoms())
		for j, a := range q.Atoms {
			byAtom[j] = rels[a.Name]
		}
		want := baseline.Evaluate(q, rels)

		cache := NewIndexCache()
		const workers = 8
		results := make([]*data.Relation, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				sc := GrabScratch()
				defer sc.Release()
				// Each worker evaluates several times, as servers of one
				// phase would; the last result is compared.
				for i := 0; i < 3; i++ {
					results[w] = sc.EvaluateAtoms(q, byAtom, cache)
				}
			}(w)
		}
		wg.Wait()
		for w, got := range results {
			if !sameRelationExactly(got, want) {
				t.Fatalf("trial %d worker %d: cached kernel diverged from baseline on %s", trial, w, q)
			}
		}
		hasEmpty := false
		for _, rel := range byAtom {
			hasEmpty = hasEmpty || rel.NumTuples() == 0
		}
		if hits, misses := cache.Stats(); !hasEmpty && misses == 0 {
			t.Fatalf("trial %d: cache reports no builds (hits=%d)", trial, hits)
		}
	}
}

// TestIndexCacheSharesIdenticalFragments verifies the cache's reason to
// exist: two distinct relation objects with identical content must share
// one index build.
func TestIndexCacheSharesIdenticalFragments(t *testing.T) {
	q := query.MustParse("q(x,y,z) :- R(x,y), S(y,z)")
	mk := func() []*data.Relation {
		rr := data.FromTuples("R", 2, []int64{1, 2}, []int64{3, 4})
		ss := data.FromTuples("S", 2, []int64{2, 5}, []int64{4, 6})
		return []*data.Relation{rr, ss}
	}
	cache := NewIndexCache()
	s := NewScratch()
	out1 := s.EvaluateAtoms(q, mk(), cache)
	out2 := s.EvaluateAtoms(q, mk(), cache) // fresh objects, same content
	if !sameRelationExactly(out1, out2) {
		t.Fatal("identical fragments produced different results")
	}
	hits, misses := cache.Stats()
	if misses != 2 {
		t.Fatalf("want 2 index builds (one per atom), got %d", misses)
	}
	if hits != 2 {
		t.Fatalf("want 2 cache hits on the second evaluation, got %d", hits)
	}
}

// TestScratchFragmentReuseDoesNotCorruptCache pins the aliasing hazard the
// cache's copy-on-build exists for: a worker's fragment buffers are reset
// and refilled between servers, and a cached index built from the earlier
// content must keep answering from its own snapshot.
func TestScratchFragmentReuseDoesNotCorruptCache(t *testing.T) {
	q := query.MustParse("q(x,y,z) :- R(x,y), S(y,z)")
	cache := NewIndexCache()
	s := NewScratch()

	frag := s.Fragments(q)
	frag[0].AppendVals([]int64{1, 10, 2, 20})
	frag[1].AppendVals([]int64{10, 100, 20, 200})
	first := s.EvaluateAtoms(q, frag, cache).Clone()

	// Rebuild the same scratch fragments with different content (as the
	// next server would), evaluate, then return to the original content: the
	// third evaluation must hit the cache entries snapshotted at build time
	// and still agree with the first.
	frag = s.Fragments(q)
	frag[0].AppendVals([]int64{7, 8})
	frag[1].AppendVals([]int64{8, 9})
	if out := s.EvaluateAtoms(q, frag, cache); out.NumTuples() != 1 {
		t.Fatalf("intermediate content: got %d tuples, want 1", out.NumTuples())
	}
	frag = s.Fragments(q)
	frag[0].AppendVals([]int64{1, 10, 2, 20})
	frag[1].AppendVals([]int64{10, 100, 20, 200})
	again := s.EvaluateAtoms(q, frag, cache)
	if !sameRelationExactly(first, again) {
		t.Fatal("cached index answered from recycled fragment storage")
	}
}

// TestSemiAntiJoinMatchesBaselineRandom pins the kernel-backed SemiJoin and
// AntiJoin against the baseline's map implementation.
func TestSemiAntiJoinMatchesBaselineRandom(t *testing.T) {
	r := rand.New(rand.NewSource(4321))
	varSets := [][2][]string{
		{{"x", "y"}, {"y", "z"}},
		{{"x", "y"}, {"x", "y"}},
		{{"x"}, {"y"}}, // no common vars
		{{"x", "y", "z"}, {"z", "x"}},
	}
	for trial := 0; trial < 200; trial++ {
		vs := varSets[r.Intn(len(varSets))]
		lv, rv := vs[0], vs[1]
		l := data.NewRelation("L", len(lv))
		rr := data.NewRelation("R", len(rv))
		row := make([]int64, 3)
		for i, m := 0, r.Intn(30); i < m; i++ {
			for c := range row {
				row[c] = int64(r.Intn(6))
			}
			l.AppendTuple(row[:len(lv)])
		}
		for i, m := 0, r.Intn(30); i < m; i++ {
			for c := range row {
				row[c] = int64(r.Intn(6))
			}
			rr.AppendTuple(row[:len(rv)])
		}
		if got, want := SemiJoin(l, rr, lv, rv), baseline.SemiJoin(l, rr, lv, rv); !sameRelationExactly(got, want) {
			t.Fatalf("trial %d: SemiJoin diverged (%v ⋉ %v)", trial, lv, rv)
		}
		if got, want := AntiJoin(l, rr, lv, rv), baseline.AntiJoin(l, rr, lv, rv); !sameRelationExactly(got, want) {
			t.Fatalf("trial %d: AntiJoin diverged (%v ▷ %v)", trial, lv, rv)
		}
	}
}

// TestEvaluateOrderedMissingRelation: the ablation entry point returns the
// typed sentinel instead of panicking across the computation phase.
func TestEvaluateOrderedMissingRelation(t *testing.T) {
	q := query.MustParse("q(x,y,z) :- R(x,y), S(y,z)")
	rels := map[string]*data.Relation{"R": data.FromTuples("R", 2, []int64{1, 2})}
	out, err := EvaluateOrdered(q, rels, []int{0, 1})
	if out != nil || err == nil {
		t.Fatalf("want nil result + error, got %v, %v", out, err)
	}
	if !errors.Is(err, ErrMissingRelation) {
		t.Fatalf("error %v is not ErrMissingRelation", err)
	}
	var mre *MissingRelationError
	if !errors.As(err, &mre) || mre.Atom != "S" {
		t.Fatalf("want MissingRelationError for S, got %v", err)
	}
}

// TestEvaluatePanicsTypedOnMissingRelation: the validated-input entry point
// panics with the same typed error, which the Run boundary converts.
func TestEvaluatePanicsTypedOnMissingRelation(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("want panic")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrMissingRelation) {
			t.Fatalf("panic value %v is not a typed missing-relation error", r)
		}
	}()
	q := query.MustParse("q(x,y) :- R(x), S(y)")
	Evaluate(q, map[string]*data.Relation{"R": data.FromTuples("R", 1, []int64{1})})
}

// TestBaselineModeSwitch: under SetBaselineForTest every entry point runs
// the frozen evaluator; outputs must match the kernel's exactly either way.
func TestBaselineModeSwitch(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	q := randomQuery(r)
	rels := randomRels(r, q)
	kernelOut := Evaluate(q, rels)
	SetBaselineForTest(true)
	defer SetBaselineForTest(false)
	baselineOut := Evaluate(q, rels)
	if !sameRelationExactly(kernelOut, baselineOut) {
		t.Fatalf("kernel and baseline disagree on %s", q)
	}
}
