package localjoin

import (
	"mpcquery/internal/aggregate"
	"mpcquery/internal/data"
	"mpcquery/internal/query"
)

// EvaluateAtomsAggregate is the kernel's aggregate output path: it runs the
// same columnar hash join as EvaluateAtoms but folds each surviving binding
// straight into a group-by table instead of materializing the output
// relation — the binding arena is read column-wise once and only one row per
// distinct group is ever allocated. It returns the server's partial
// aggregates as an annotated relation (arity = plan.KeyArity(), annotation
// column = folded values, first-contact group order) plus the number of raw
// join rows folded, which the caller uses to meter the communication the
// pre-shuffle aggregation saved.
//
// Inputs follow the EvaluateAtoms contract: rels in atom order, a missing
// relation panics with *MissingRelationError, cache may be nil.
func (s *Scratch) EvaluateAtomsAggregate(q *query.Query, rels []*data.Relation, cache *IndexCache, plan *aggregate.Plan) (partials *data.Relation, rawRows int) {
	ka := plan.KeyArity()
	if baselineMode.Load() {
		out := s.EvaluateAtoms(q, rels, cache)
		return FoldOutput(out, q, plan), out.NumTuples()
	}
	// A missing relation outranks the empty fast path: an instance with both
	// a nil and an empty relation must raise, not fold to nothing.
	for j, r := range rels {
		if r == nil {
			panic(&MissingRelationError{Atom: q.Atoms[j].Name})
		}
	}
	for _, r := range rels {
		if r.NumTuples() == 0 {
			return data.NewRelation(q.Name, ka), 0
		}
	}
	rows, err := s.joinLoop(q, rels, s.greedyOrder(q, rels), cache)
	if err != nil {
		//lint:allow panicdiscipline typed *MissingRelationError panic; Run's recover maps it to the public ErrMissingRelation sentinel
		panic(err)
	}
	if rows == 0 {
		return data.NewRelation(q.Name, ka), 0
	}

	// Resolve the group-by and aggregated variables to binding columns (every
	// query variable is bound once rows > 0).
	t := aggregate.NewFoldTable(ka, plan.Semiring)
	groupCols := make([]int, len(plan.GroupBy))
	for i, v := range plan.GroupBy {
		groupCols[i] = s.varPos[v]
	}
	aggCol := -1
	if plan.Var != "" {
		aggCol = s.varPos[plan.Var]
	}
	key := make([]int64, ka) // synthetic all-zero key for global aggregates
	for r := 0; r < rows; r++ {
		for i, c := range groupCols {
			key[i] = s.cols[c][r]
		}
		av := int64(0)
		if aggCol >= 0 {
			av = s.cols[aggCol][r]
		}
		t.Add(key, plan.InitAnnotation(av))
	}
	return t.Result(q.Name), rows
}

// FoldOutput folds a fully materialized join output (tuples in q.Vars()
// order) into partial aggregates — the reference fold the baseline mode and
// the no-pushdown raw projection are checked against.
func FoldOutput(out *data.Relation, q *query.Query, plan *aggregate.Plan) *data.Relation {
	ka := plan.KeyArity()
	t := aggregate.NewFoldTable(ka, plan.Semiring)
	groupCols := make([]int, len(plan.GroupBy))
	for i, v := range plan.GroupBy {
		groupCols[i] = q.VarIndex(v)
	}
	aggCol := -1
	if plan.Var != "" {
		aggCol = q.VarIndex(plan.Var)
	}
	key := make([]int64, ka)
	m := out.NumTuples()
	for i := 0; i < m; i++ {
		tp := out.Tuple(i)
		for c, gc := range groupCols {
			key[c] = tp[gc]
		}
		av := int64(0)
		if aggCol >= 0 {
			av = tp[aggCol]
		}
		t.Add(key, plan.InitAnnotation(av))
	}
	return t.Result(out.Name)
}
