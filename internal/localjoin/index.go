package localjoin

import (
	"math/bits"
	"sync"

	"mpcquery/internal/data"
	"mpcquery/internal/hashing"
	"mpcquery/internal/obs"
)

// atomIndex is the kernel's hash index over one relation: tuples bucketed by
// the values of the key columns (the atom's variables already bound when the
// atom joins), stored as an open-addressed slot table with intra-slot
// chaining. Tuple indices, not tuple copies, are chained, and chains iterate
// in ascending tuple order, so probing reproduces the baseline evaluator's
// match order exactly. Tuples that disagree with themselves on repeated
// variables of the atom are filtered at build time and never enter a chain.
//
// There is no string key materialization: the probe hashes raw int64 values
// (hashing.Combine) and resolves hash collisions by comparing the key
// columns against the candidate tuple in place.
type atomIndex struct {
	arity   int
	keyCols []int32 // relation column of each key variable (first occurrence)
	vals    []int64 // flat row-major tuple storage (view or owned copy)
	head    []int32 // slot -> first chained tuple index + 1 (0 = empty)
	next    []int32 // tuple index + 1 -> next chained tuple index + 1
	mask    uint64
	keybuf  []int64 // build-time key gather buffer
}

// hashSeed is the starting state for key hashing; build and probe must use
// the identical chain of hashing.Combine calls.
const hashSeed = 0x51a0f3c2b44e9d17

func hashKey(key []int64) uint64 {
	h := uint64(hashSeed)
	for _, v := range key {
		h = hashing.Combine(h, uint64(v))
	}
	return h
}

// build (re)constructs the index over rel. keyCols are the relation columns
// forming the probe key (possibly empty: every consistent tuple lands in one
// chain — the cartesian step). eqPairs are the column pairs that must agree
// for a tuple to be self-consistent, precomputed once per atom. When
// copyVals is set the index snapshots the relation's values into its own
// storage, detaching it from later mutation of rel — required for indexes
// published to a shared IndexCache while per-worker fragment buffers are
// recycled underneath them.
func (ix *atomIndex) build(rel *data.Relation, keyCols []int, eqPairs [][2]int, copyVals bool) {
	m := rel.NumTuples()
	ix.arity = rel.Arity
	ix.keyCols = ix.keyCols[:0]
	for _, c := range keyCols {
		ix.keyCols = append(ix.keyCols, int32(c))
	}
	if copyVals {
		ix.vals = append(ix.vals[:0], rel.Vals()...)
	} else {
		ix.vals = rel.Vals()
	}

	size := 1
	if m > 0 {
		size = 1 << bits.Len(uint(2*m-1)) // next power of two ≥ 2m
	}
	if cap(ix.head) < size {
		ix.head = make([]int32, size)
	} else {
		ix.head = ix.head[:size]
		for i := range ix.head {
			ix.head[i] = 0
		}
	}
	if cap(ix.next) < m+1 {
		ix.next = make([]int32, m+1)
	} else {
		ix.next = ix.next[:m+1]
	}
	ix.mask = uint64(size - 1)

	// Insert descending with chain prepend: each slot's chain then iterates
	// tuples in ascending index order, matching the baseline's per-key match
	// order (which multiset-insensitive callers never see, but the
	// order-sensitive Report.Fingerprint does).
	arity := ix.arity
	nk := len(ix.keyCols)
	if cap(ix.keybuf) < nk {
		ix.keybuf = make([]int64, nk)
	}
	key := ix.keybuf[:nk]
	for i := m - 1; i >= 0; i-- {
		base := i * arity
		ok := true
		for _, p := range eqPairs {
			if ix.vals[base+p[0]] != ix.vals[base+p[1]] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for t, kc := range ix.keyCols {
			key[t] = ix.vals[base+int(kc)]
		}
		slot := hashKey(key) & ix.mask
		ix.next[i+1] = ix.head[slot]
		ix.head[slot] = int32(i + 1)
	}
}

// contains reports whether any indexed tuple matches key on the key columns
// — the semijoin probe. With zero key columns it reports whether the index
// holds any (consistent) tuple at all.
func (ix *atomIndex) contains(key []int64) bool {
	slot := hashKey(key) & ix.mask
	for e := ix.head[slot]; e != 0; e = ix.next[e] {
		base := int(e-1) * ix.arity
		match := true
		for t, kc := range ix.keyCols {
			if ix.vals[base+int(kc)] != key[t] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// indexKey identifies one shareable index build: the atom being joined, the
// content identity of the relation under it, and the signature of the build
// inputs (the same atom joins under different key sets when per-server
// greedy orders differ).
type indexKey struct {
	atom  string
	ident uint64
	sig   uint64
}

// colSig digests everything besides the relation content that shapes an
// index build: arity, the key-column layout, and the repeated-variable
// pairs filtered at build time. The eqPairs belong in the signature even
// though they are atom-determined — callers below Run's desugaring can
// legally present two atoms with the same name but different
// repeated-variable patterns, and those must not share a build.
func colSig(arity int, keyCols []int, eqPairs [][2]int) uint64 {
	h := hashing.Combine(0x7be3_55c1_9a04_d6ef, uint64(arity))
	h = hashing.Combine(h, uint64(len(keyCols)))
	for _, c := range keyCols {
		h = hashing.Combine(h, uint64(c))
	}
	h = hashing.Combine(h, uint64(len(eqPairs)))
	for _, p := range eqPairs {
		h = hashing.Combine(h, uint64(p[0])<<32|uint64(p[1]))
	}
	return h
}

// IndexCache shares atom-index builds across the servers of one computation
// phase. Skew-free HyperCube grids replicate each relation fragment along
// the dimensions its atom does not constrain, so whole slices of the grid
// receive byte-identical fragments and would otherwise rebuild the same
// index; the cache keys builds by (atom, relation content identity,
// key-column signature) and lets every later server reuse the first build.
//
// A cache is scoped to one computation phase (one round's local evaluation)
// and must not outlive the phase: cached indexes snapshot fragment contents,
// and the identity keying is only meaningful while the query and kind
// numbering are fixed. It is safe for concurrent use by the phase's workers.
type IndexCache struct {
	mu sync.Mutex
	m  map[indexKey]*cacheEntry

	hits, misses int
}

// cacheEntry is one single-flight slot: the first worker to claim a key
// builds into it and closes ready; later workers block on ready instead of
// duplicating the O(m) build — at the start of a phase every worker hits
// the same hot keys simultaneously, exactly the case the cache targets.
type cacheEntry struct {
	ready chan struct{}
	ix    *atomIndex
}

// NewIndexCache returns an empty cache for one computation phase.
func NewIndexCache() *IndexCache {
	return &IndexCache{m: make(map[indexKey]*cacheEntry)}
}

// getOrBuild returns the index for k, invoking build exactly once per key
// across all workers (single flight). build must not re-enter the cache.
func (c *IndexCache) getOrBuild(k indexKey, build func() *atomIndex) *atomIndex {
	c.mu.Lock()
	if e, ok := c.m[k]; ok {
		c.hits++
		c.mu.Unlock()
		<-e.ready
		return e.ix
	}
	e := &cacheEntry{ready: make(chan struct{})}
	c.m[k] = e
	c.misses++
	c.mu.Unlock()
	e.ix = build()
	close(e.ready)
	return e.ix
}

// Stats returns the cache's hit/miss counters (builds = misses). It is for
// observability and tests; calling it concurrently with the phase is safe.
func (c *IndexCache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Kernel index-cache totals in the process-wide registry, fed by Publish
// once per computation phase — the kernel's inner loops never touch them.
var (
	obsCacheHits   = obs.Default().Counter("mpc_kernel_index_cache_hits_total")
	obsCacheMisses = obs.Default().Counter("mpc_kernel_index_cache_misses_total")
)

// Publish flushes the cache's final hit/miss totals into the process-wide
// registry and, when ct is a live trace sink, into the run's trace.
// Strategies call it once, after the computation phase the cache served.
// The totals are deterministic for a seeded run: single-flight keying
// makes misses exactly the number of distinct (atom, fragment) keys,
// regardless of worker scheduling.
func (c *IndexCache) Publish(ct *obs.ClusterTrace) {
	hits, misses := c.Stats()
	obsCacheHits.Add(int64(hits))
	obsCacheMisses.Add(int64(misses))
	ct.ObserveKernelCache(int64(hits), int64(misses))
}
