package localjoin

import (
	"fmt"
	"math/rand"
	"testing"

	"mpcquery/internal/aggregate"
	"mpcquery/internal/data"
	"mpcquery/internal/query"
)

// aggTestQueries are the shapes the kernel's fold path is exercised on,
// including repeated variables and a cartesian step.
func aggTestQueries() []*query.Query {
	return []*query.Query{
		query.Star(2),
		query.Triangle(),
		query.Chain(3),
		query.New("selfcol",
			query.Atom{Name: "R", Vars: []string{"x", "x"}},
			query.Atom{Name: "S", Vars: []string{"x", "y"}}),
		query.New("cartesian",
			query.Atom{Name: "R", Vars: []string{"x"}},
			query.Atom{Name: "S", Vars: []string{"y"}}),
	}
}

func randRels(rng *rand.Rand, q *query.Query, m int) []*data.Relation {
	rels := make([]*data.Relation, q.NumAtoms())
	for j, a := range q.Atoms {
		r := data.NewRelation(a.Name, a.Arity())
		row := make([]int64, a.Arity())
		for i := 0; i < m; i++ {
			for c := range row {
				row[c] = rng.Int63n(12) // small domain: dense joins, duplicates
			}
			r.AppendTuple(row)
		}
		rels[j] = r
	}
	return rels
}

// TestEvaluateAtomsAggregateMatchesFoldOfFullJoin is the kernel-level
// differential property: folding during the join must equal materializing
// the full join and folding afterwards, for every op, grouped and global.
func TestEvaluateAtomsAggregateMatchesFoldOfFullJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, q := range aggTestQueries() {
		vars := q.Vars()
		specs := []*aggregate.Plan{
			aggregate.NewPlan(aggregate.Count, "", vars[:1], true),
			aggregate.NewPlan(aggregate.Count, "", nil, true),
			aggregate.NewPlan(aggregate.Sum, vars[len(vars)-1], vars[:1], true),
			aggregate.NewPlan(aggregate.Min, vars[0], vars[len(vars)-1:], true),
			aggregate.NewPlan(aggregate.Max, vars[0], nil, true),
		}
		for trial := 0; trial < 10; trial++ {
			rels := randRels(rng, q, 40)
			sc := NewScratch()
			full := sc.EvaluateAtoms(q, rels, nil)
			for _, plan := range specs {
				want := FoldOutput(full, q, plan)
				got, raw := sc.EvaluateAtomsAggregate(q, rels, nil, plan)
				if raw != full.NumTuples() {
					t.Fatalf("%s %s: raw rows %d, join has %d", q.Name, plan.Describe(), raw, full.NumTuples())
				}
				if !annotatedEqual(got, want) {
					t.Fatalf("%s trial %d %s: fold-during-join (%d groups) != fold-after-join (%d groups)",
						q.Name, trial, plan.Describe(), got.NumTuples(), want.NumTuples())
				}
			}
		}
	}
}

// annotatedEqual compares two annotated relations as (key -> annotation)
// maps, order-insensitively.
func annotatedEqual(a, b *data.Relation) bool {
	if a.Arity != b.Arity || a.NumTuples() != b.NumTuples() {
		return false
	}
	am := make(map[string]int64, a.NumTuples())
	for i := 0; i < a.NumTuples(); i++ {
		am[fmt.Sprint(a.Tuple(i))] = a.Annotation(i)
	}
	for i := 0; i < b.NumTuples(); i++ {
		v, ok := am[fmt.Sprint(b.Tuple(i))]
		if !ok || v != b.Annotation(i) {
			return false
		}
	}
	return true
}

func TestEvaluateAtomsAggregateEmptyInput(t *testing.T) {
	q := query.Star(2)
	rels := randRels(rand.New(rand.NewSource(1)), q, 10)
	rels[1] = data.NewRelation(q.Atoms[1].Name, 2) // one empty atom
	sc := NewScratch()
	plan := aggregate.NewPlan(aggregate.Count, "", []string{"z"}, true)
	got, raw := sc.EvaluateAtomsAggregate(q, rels, nil, plan)
	if raw != 0 || got.NumTuples() != 0 {
		t.Fatalf("empty input must fold to nothing, got %d rows (raw %d)", got.NumTuples(), raw)
	}
}

func TestEvaluateAtomsAggregateMissingRelationPanics(t *testing.T) {
	q := query.Star(2)
	rels := randRels(rand.New(rand.NewSource(1)), q, 10)
	rels[0] = nil
	rels[1] = data.NewRelation(q.Atoms[1].Name, 2) // empty AND a nil sibling
	sc := NewScratch()
	plan := aggregate.NewPlan(aggregate.Count, "", []string{"z"}, true)
	defer func() {
		r := recover()
		if _, ok := r.(*MissingRelationError); !ok {
			t.Fatalf("want *MissingRelationError panic, got %v", r)
		}
	}()
	sc.EvaluateAtomsAggregate(q, rels, nil, plan)
}

// TestEvaluateAtomsAggregateSharedCache folds with a shared index cache from
// concurrent workers, mirroring a computation phase; run under -race this
// pins the fold path's cache usage.
func TestEvaluateAtomsAggregateSharedCache(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := query.Triangle()
	rels := randRels(rng, q, 60)
	plan := aggregate.NewPlan(aggregate.Sum, "x2", []string{"x1"}, true)
	scRef := NewScratch()
	want, _ := scRef.EvaluateAtomsAggregate(q, rels, nil, plan)

	cache := NewIndexCache()
	done := make(chan *data.Relation, 8)
	for w := 0; w < 8; w++ {
		go func() {
			sc := GrabScratch()
			defer sc.Release()
			got, _ := sc.EvaluateAtomsAggregate(q, rels, cache, plan)
			done <- got
		}()
	}
	for w := 0; w < 8; w++ {
		if got := <-done; !annotatedEqual(got, want) {
			t.Fatal("shared-cache fold diverged from uncached fold")
		}
	}
}
