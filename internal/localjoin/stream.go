package localjoin

import (
	"mpcquery/internal/data"
	"mpcquery/internal/query"
)

// EvaluateAtomsStream is EvaluateAtoms with a streamed output: instead of
// materializing the full result relation it yields row-major blocks of
// output tuples (arity q.NumVars(), in q.Vars() column order) and returns
// the total row count. The concatenation of the yielded blocks is
// byte-identical to EvaluateAtoms' output — same join order, same
// per-binding match order — so order-sensitive digests cannot tell the two
// apart; only peak memory differs. The yielded slice is reused across
// calls: consume or copy it before yield returns.
//
// Streaming happens over the *first* atom of the unchanged greedy join
// order: its tuples are windowed into chunks of chunkRows, each chunk's
// bindings built directly (ascending row order with the repeated-variable
// filter — exactly the order the keyless step-0 index probe enumerates),
// and the remaining steps run per chunk through the shared joinSteps core.
// With an IndexCache the later steps' indexes are keyed on the full
// relations, so they are built once and shared across chunks (and across
// servers, as in the barrier path); the cache also receives the step-0
// build, keeping its hit/miss totals — which appear in the trace's
// deterministic Structure — identical to a barrier run.
func (s *Scratch) EvaluateAtomsStream(q *query.Query, rels []*data.Relation, cache *IndexCache, chunkRows int, yield func(vals []int64)) int {
	if baselineMode.Load() {
		out := s.EvaluateAtoms(q, rels, cache)
		if out.NumTuples() > 0 {
			yield(out.Vals())
		}
		return out.NumTuples()
	}
	for _, r := range rels {
		if r != nil && r.NumTuples() == 0 {
			return 0
		}
	}
	if chunkRows < 1 {
		chunkRows = 1
	}

	order := s.greedyOrder(q, rels)
	first := order[0]
	atom0 := &q.Atoms[first]
	rel0 := rels[first]
	if rel0 == nil {
		panic(&MissingRelationError{Atom: atom0.Name})
	}

	// First-occurrence columns of the streamed atom (nothing is bound yet,
	// so every first occurrence is fresh — the same fresh set joinSteps
	// computes at step 0) and its self-consistency pairs. Local slices, not
	// scratch fields: joinSteps clobbers the scratch column maps per step.
	var f0cols []int
	var f0names []string
	for c, v := range atom0.Vars {
		fresh := true
		for _, w := range atom0.Vars[:c] {
			if w == v {
				fresh = false
				break
			}
		}
		if fresh {
			f0cols = append(f0cols, c)
			f0names = append(f0names, v)
		}
	}
	eq0 := repeatedVarPairs(atom0, nil)

	if cache != nil {
		// Warm the cache exactly as the barrier path would: joinLoop's step
		// 0 fetches the keyless index of the first atom. The streamed
		// windows never probe it, but publishing the identical build keeps
		// the cache's hit/miss totals — part of the trace's deterministic
		// Structure — byte-identical between the two paths, and any
		// non-streamed sibling evaluation in the same phase reuses it.
		k := indexKey{atom: atom0.Name, ident: rel0.Identity(), sig: colSig(rel0.Arity, nil, eq0)}
		cache.getOrBuild(k, func() *atomIndex {
			ix := new(atomIndex)
			ix.build(rel0, nil, eq0, true)
			return ix
		})
	}

	// Engage the per-evaluation memo: each later-step index is fetched from
	// the shared cache (or built locally) exactly once for this evaluation,
	// then reused across chunks — one barrier evaluation's worth of cache
	// traffic regardless of the chunking.
	s.streaming = true
	if s.memo == nil {
		s.memo = make(map[indexKey]*atomIndex, len(order))
	}
	s.memoBuilt = s.memoBuilt[:0]
	defer func() {
		s.streaming = false
		clear(s.memo)
	}()

	if s.varPos == nil {
		s.varPos = make(map[string]int, q.NumVars())
	}
	vars := q.Vars()
	nb0 := len(f0cols)
	m := rel0.NumTuples()
	arity0 := rel0.Arity
	vals0 := rel0.Vals()

	total := 0
	var outBuf []int64
	outCols := make([]int, 0, len(vars))
	for lo := 0; lo < m; lo += chunkRows {
		hi := lo + chunkRows
		if hi > m {
			hi = m
		}
		// Step 0 over this window: ascending rows, repeated-variable
		// filter — the enumeration order of the keyless index probe.
		clear(s.varPos)
		s.cols = ensureCols(s.cols, nb0)
		rows := 0
		for r := lo; r < hi; r++ {
			base := r * arity0
			ok := true
			for _, p := range eq0 {
				if vals0[base+p[0]] != vals0[base+p[1]] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for i, fc := range f0cols {
				s.cols[i] = append(s.cols[i], vals0[base+fc])
			}
			rows++
		}
		if rows == 0 {
			continue
		}
		for i, name := range f0names {
			s.varPos[name] = i
		}
		rows, err := s.joinSteps(q, rels, order, 1, cache, rows, nb0)
		if err != nil {
			//lint:allow panicdiscipline typed *MissingRelationError panic; Run's recover maps it to the public ErrMissingRelation sentinel
			panic(err)
		}
		if rows == 0 {
			continue
		}
		// Emit this chunk's rows in q.Vars() order, exactly as run() does.
		outCols = outCols[:0]
		for _, v := range vars {
			outCols = append(outCols, s.varPos[v])
		}
		need := rows * len(vars)
		if cap(outBuf) < need {
			outBuf = make([]int64, need)
		}
		buf := outBuf[:need]
		for r := 0; r < rows; r++ {
			o := r * len(vars)
			for i, c := range outCols {
				buf[o+i] = s.cols[c][r]
			}
		}
		yield(buf)
		total += rows
	}
	return total
}
