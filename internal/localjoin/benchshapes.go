package localjoin

import (
	"math/rand"

	"mpcquery/internal/data"
	"mpcquery/internal/query"
)

// BenchShape is one (query, relations) workload shared by the kernel
// benchmarks and cmd/mpcbench's -benchjoin snapshot, so the checked-in
// BENCH_localjoin.json and `go test -bench BenchmarkEvaluate` measure the
// same thing.
type BenchShape struct {
	Name string
	Q    *query.Query
	Rels map[string]*data.Relation
}

// BenchShapes builds the kernel-ablation workloads: a dense cyclic triangle
// (the HyperCube computation phase at its most join-intensive), a skewed
// star (the fragment profile a heavy-hitter block sees: few z values, long
// match chains), and a matching chain (a long join pipeline with tiny
// intermediates). Deterministic: fixed seeds, so every run benchmarks the
// same instances.
func BenchShapes() []BenchShape {
	var shapes []BenchShape

	// Dense triangle: 5000 random edges per relation over a 500-value
	// domain — heavy index probing, large output.
	rng := rand.New(rand.NewSource(1))
	tri := query.Triangle()
	triRels := make(map[string]*data.Relation)
	for _, a := range tri.Atoms {
		r := data.NewRelation(a.Name, 2)
		for i := 0; i < 5000; i++ {
			r.Append(rng.Int63n(500), rng.Int63n(500))
		}
		triRels[a.Name] = r
	}
	shapes = append(shapes, BenchShape{"triangle", tri, triRels})

	// Skewed star T_2: each relation concentrates a chunk of its tuples on
	// two heavy z-values — the fragment a dedicated heavy block evaluates,
	// where one binding fans out into long match chains.
	srng := rand.New(rand.NewSource(2))
	star := query.Star(2)
	heavy := map[int64]int{7: 1000, 11: 1000}
	starDB := data.SkewedStarDatabase(srng, 2, 8000, 1<<16, heavy)
	starRels := make(map[string]*data.Relation)
	for _, a := range star.Atoms {
		starRels[a.Name] = starDB.Get(a.Name)
	}
	shapes = append(shapes, BenchShape{"star-skewed", star, starRels})

	// Matching chain L_4: long pipeline, output exactly m.
	crng := rand.New(rand.NewSource(3))
	chainDB := data.ChainMatchingDatabase(crng, 4, 20000, 1<<20)
	chain := query.Chain(4)
	chainRels := make(map[string]*data.Relation)
	for _, a := range chain.Atoms {
		chainRels[a.Name] = chainDB.Get(a.Name)
	}
	shapes = append(shapes, BenchShape{"chain-matchings", chain, chainRels})

	return shapes
}
