package localjoin

import (
	"mpcquery/internal/data"
	"mpcquery/internal/query"
)

// JoinTree is a GYO join tree of an acyclic query: Parent[j] is the atom
// index that absorbed atom j during ear removal (-1 for the root), and
// Order lists atoms in removal order (leaves first, root last).
type JoinTree struct {
	Parent []int
	Order  []int
	Root   int
}

// BuildJoinTree runs the GYO ear-removal on q and returns its join tree,
// or ok=false when q is cyclic. An atom is an ear when all of its variables
// shared with other remaining atoms are contained in a single witness atom,
// which becomes its parent.
func BuildJoinTree(q *query.Query) (*JoinTree, bool) {
	n := q.NumAtoms()
	remaining := make([]bool, n)
	for j := range remaining {
		remaining[j] = true
	}
	parent := make([]int, n)
	for j := range parent {
		parent[j] = -1
	}
	var order []int
	left := n
	for left > 1 {
		ear := -1
		witness := -1
		for j := 0; j < n && ear < 0; j++ {
			if !remaining[j] {
				continue
			}
			shared := sharedVars(q, j, remaining)
			for b := 0; b < n; b++ {
				if b == j || !remaining[b] {
					continue
				}
				if containsAll(q.Atoms[b], shared) {
					ear, witness = j, b
					break
				}
			}
		}
		if ear < 0 {
			return nil, false // no ear: cyclic
		}
		remaining[ear] = false
		parent[ear] = witness
		order = append(order, ear)
		left--
	}
	root := -1
	for j, r := range remaining {
		if r {
			root = j
		}
	}
	order = append(order, root)
	return &JoinTree{Parent: parent, Order: order, Root: root}, true
}

func sharedVars(q *query.Query, j int, remaining []bool) []string {
	var out []string
	for _, v := range q.Atoms[j].DistinctVars() {
		for b := 0; b < q.NumAtoms(); b++ {
			if b != j && remaining[b] && q.Atoms[b].HasVar(v) {
				out = append(out, v)
				break
			}
		}
	}
	return out
}

func containsAll(a query.Atom, vars []string) bool {
	for _, v := range vars {
		if !a.HasVar(v) {
			return false
		}
	}
	return true
}

// Yannakakis evaluates an acyclic full conjunctive query with the classic
// three phases: a bottom-up semijoin pass (parents reduced by children), a
// top-down pass (children reduced by parents), and a final join along the
// tree. After the two passes every remaining tuple participates in some
// output, so the final join's intermediates are bounded by input + output —
// the linear-time guarantee for acyclic queries. It panics if q is cyclic
// (use Evaluate or GenericJoin there).
func Yannakakis(q *query.Query, rels map[string]*data.Relation) *data.Relation {
	tree, ok := BuildJoinTree(q)
	if !ok {
		panic("localjoin: Yannakakis requires an acyclic query")
	}
	// Work on reduced copies.
	red := make([]*data.Relation, q.NumAtoms())
	for j, a := range q.Atoms {
		rel := rels[a.Name]
		if rel == nil {
			panic(&MissingRelationError{Atom: a.Name})
		}
		red[j] = rel
	}
	varsOf := func(j int) []string { return q.Atoms[j].Vars }

	// Bottom-up: in removal order, reduce each ear's parent by the ear.
	for _, j := range tree.Order {
		p := tree.Parent[j]
		if p < 0 {
			continue
		}
		red[p] = SemiJoin(red[p], red[j], varsOf(p), varsOf(j))
	}
	// Top-down: in reverse removal order, reduce each ear by its parent.
	for i := len(tree.Order) - 1; i >= 0; i-- {
		j := tree.Order[i]
		p := tree.Parent[j]
		if p < 0 {
			continue
		}
		red[j] = SemiJoin(red[j], red[p], varsOf(j), varsOf(p))
	}
	// Final join: root first, then children in reverse removal order, so
	// every joined atom shares variables with its already-joined parent.
	joinOrder := make([]int, 0, q.NumAtoms())
	for i := len(tree.Order) - 1; i >= 0; i-- {
		joinOrder = append(joinOrder, tree.Order[i])
	}
	reduced := make(map[string]*data.Relation, q.NumAtoms())
	for j, a := range q.Atoms {
		reduced[a.Name] = red[j]
	}
	out, err := EvaluateOrdered(q, reduced, joinOrder)
	if err != nil {
		// Unreachable: every atom's relation was checked present above.
		//lint:allow panicdiscipline typed *MissingRelationError panic (and unreachable: atoms pre-checked)
		panic(err)
	}
	return out
}
