package localjoin

import (
	"math/rand"
	"testing"

	"mpcquery/internal/data"
	"mpcquery/internal/localjoin/baseline"
	"mpcquery/internal/query"
)

// BenchmarkEvaluate measures the columnar kernel against the preserved
// baseline evaluator on every ablation shape. The acceptance gate for the
// kernel is ≥4× ns/op and ≥10× fewer allocs/op on the triangle and skewed
// star shapes; cmd/mpcbench -benchjoin emits the same comparison as
// BENCH_localjoin.json for CI.
func BenchmarkEvaluate(b *testing.B) {
	for _, shape := range BenchShapes() {
		b.Run(shape.Name+"/kernel", func(b *testing.B) {
			s := NewScratch()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := s.Evaluate(shape.Q, shape.Rels)
				if out.NumTuples() == 0 {
					b.Fatal("no output")
				}
			}
		})
		b.Run(shape.Name+"/baseline", func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := baseline.Evaluate(shape.Q, shape.Rels)
				if out.NumTuples() == 0 {
					b.Fatal("no output")
				}
			}
		})
	}
}

// BenchmarkEvaluateCached measures the shared-index path: the same fragment
// evaluated repeatedly with a warm IndexCache, the profile of a replicated
// HyperCube grid where whole server slices receive identical fragments.
func BenchmarkEvaluateCached(b *testing.B) {
	shape := BenchShapes()[0] // triangle
	s := NewScratch()
	byAtom := make([]*data.Relation, shape.Q.NumAtoms())
	for j, a := range shape.Q.Atoms {
		byAtom[j] = shape.Rels[a.Name]
	}
	cache := NewIndexCache()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := s.EvaluateAtoms(shape.Q, byAtom, cache)
		if out.NumTuples() == 0 {
			b.Fatal("no output")
		}
	}
}

// BenchmarkJoinOrderAblation compares the greedy connected order against
// the pathological disconnected order (both chain endpoints first, forcing
// a cartesian intermediate) on L3 — the design-choice ablation for the
// evaluator's ordering heuristic.
func BenchmarkJoinOrderAblation(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	db := data.ChainMatchingDatabase(rng, 3, 2000, 1<<20)
	q := query.Chain(3)
	rels := make(map[string]*data.Relation)
	for _, a := range q.Atoms {
		rels[a.Name] = db.Get(a.Name)
	}
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Evaluate(q, rels)
		}
	})
	b.Run("endpoints-first", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := EvaluateOrdered(q, rels, []int{0, 2, 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
