package localjoin

import (
	"math/rand"
	"testing"

	"mpcquery/internal/data"
	"mpcquery/internal/query"
)

// BenchmarkTriangleJoin measures the local evaluator on a dense triangle
// instance (the per-server computation phase of a HyperCube round).
func BenchmarkTriangleJoin(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	q := query.Triangle()
	rels := make(map[string]*data.Relation)
	for _, a := range q.Atoms {
		r := data.NewRelation(a.Name, 2)
		for i := 0; i < 5000; i++ {
			r.Append(rng.Int63n(500), rng.Int63n(500))
		}
		rels[a.Name] = r
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := Evaluate(q, rels)
		if out.NumTuples() == 0 {
			b.Fatal("no output")
		}
	}
}

// BenchmarkChainJoin measures a 4-way chain join over matchings.
func BenchmarkChainJoin(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	db := data.ChainMatchingDatabase(rng, 4, 20000, 1<<20)
	q := query.Chain(4)
	rels := make(map[string]*data.Relation)
	for _, a := range q.Atoms {
		rels[a.Name] = db.Get(a.Name)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := Evaluate(q, rels)
		if out.NumTuples() != 20000 {
			b.Fatalf("output=%d", out.NumTuples())
		}
	}
}

// BenchmarkJoinOrderAblation compares the greedy connected order against
// the pathological disconnected order (both chain endpoints first, forcing
// a cartesian intermediate) on L3 — the design-choice ablation for the
// evaluator's ordering heuristic.
func BenchmarkJoinOrderAblation(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	db := data.ChainMatchingDatabase(rng, 3, 2000, 1<<20)
	q := query.Chain(3)
	rels := make(map[string]*data.Relation)
	for _, a := range q.Atoms {
		rels[a.Name] = db.Get(a.Name)
	}
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Evaluate(q, rels)
		}
	})
	b.Run("endpoints-first", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			EvaluateOrdered(q, rels, []int{0, 2, 1})
		}
	})
}
