// Package localjoin evaluates full conjunctive queries on a single server —
// the computation phase of an MPC round. The MPC model places no limit on
// local computation, but wall-clock does: the evaluator here is a columnar
// hash-join kernel (open-addressed int64-keyed indexes, a struct-of-arrays
// binding arena, per-worker reusable scratch) that allocates nothing on the
// steady-state path beyond its output, with a round-scoped IndexCache that
// shares index builds across servers holding identical routed fragments.
// The pre-kernel evaluator is preserved verbatim in the baseline subpackage
// for equivalence testing and ablation; the kernel reproduces its output
// tuple-for-tuple, in order.
package localjoin

import (
	"errors"
	"fmt"
	"sync/atomic"

	"mpcquery/internal/data"
	"mpcquery/internal/localjoin/baseline"
	"mpcquery/internal/query"
)

// ErrMissingRelation is the sentinel wrapped by MissingRelationError; test
// with errors.Is. The Run boundary in the root package converts it into its
// public ErrMissingRelation.
var ErrMissingRelation = errors.New("localjoin: missing relation")

// MissingRelationError reports that evaluation referenced an atom with no
// relation supplied. EvaluateOrdered returns it; Evaluate and EvaluateAtoms
// — whose callers pre-validate inputs — panic with it, and the Run error
// boundary converts the panic into an ordinary error instead of letting it
// cross the public API.
type MissingRelationError struct {
	Atom string
}

func (e *MissingRelationError) Error() string {
	return fmt.Sprintf("localjoin: missing relation %q", e.Atom)
}

// Unwrap makes errors.Is(err, ErrMissingRelation) hold.
func (e *MissingRelationError) Unwrap() error { return ErrMissingRelation }

// baselineMode routes every kernel entry point to the baseline evaluator —
// the test hook that lets the strategy-equivalence suite run entire
// strategies on both implementations and compare Report fingerprints.
var baselineMode atomic.Bool

// SetBaselineForTest switches evaluation to the frozen baseline evaluator
// (true) or back to the kernel (false). It exists for equivalence tests
// only; flipping it while evaluations are in flight is safe (the flag is
// atomic) but makes which evaluator ran unpredictable per call.
func SetBaselineForTest(on bool) { baselineMode.Store(on) }

// Evaluate computes q over the given relations (one per atom name) and
// returns the full result, one column per variable in q.Vars() order.
// Duplicate output tuples are produced if the inputs are bags. Inputs are
// assumed validated (every atom present); a missing relation panics with
// *MissingRelationError — use EvaluateOrdered for an error-returning entry
// point.
func Evaluate(q *query.Query, rels map[string]*data.Relation) *data.Relation {
	s := GrabScratch()
	defer s.Release()
	return s.Evaluate(q, rels)
}

// EvaluateOrdered is Evaluate with an explicit atom join order (a
// permutation of atom indices). It exists for join-order ablations; the
// default greedy order of Evaluate is usually much faster on connected
// queries because every step stays bound to previous atoms. A relation
// missing for some atom yields a *MissingRelationError (errors.Is
// ErrMissingRelation) rather than a panic, so an ablation harness can probe
// incomplete databases without tripping the engine's panic propagation.
func EvaluateOrdered(q *query.Query, rels map[string]*data.Relation, order []int) (*data.Relation, error) {
	for _, ai := range order {
		if ai < 0 || ai >= q.NumAtoms() {
			return nil, fmt.Errorf("localjoin: order index %d out of range for %d atoms", ai, q.NumAtoms())
		}
		if rels[q.Atoms[ai].Name] == nil {
			return nil, &MissingRelationError{Atom: q.Atoms[ai].Name}
		}
	}
	s := GrabScratch()
	defer s.Release()
	if baselineMode.Load() {
		return baseline.EvaluateOrdered(q, rels, order), nil
	}
	return s.run(q, s.byAtom(q, rels), order, nil)
}

// SemiJoin returns the tuples of l that join with at least one tuple of r
// on their common variables (the paper's ⋉ of Section 5.2). It probes the
// kernel's open-addressed index over r — no string keys, no per-tuple
// allocation.
func SemiJoin(l, r *data.Relation, lVars, rVars []string) *data.Relation {
	return semiJoin(l, r, lVars, rVars, true)
}

// AntiJoin returns the tuples of l with no matching tuple in r on the
// common variables (the paper's ▷ of Section 5.2).
func AntiJoin(l, r *data.Relation, lVars, rVars []string) *data.Relation {
	return semiJoin(l, r, lVars, rVars, false)
}

func semiJoin(l, r *data.Relation, lVars, rVars []string, keep bool) *data.Relation {
	lCols, rCols := commonColumns(lVars, rVars)
	s := GrabScratch()
	defer s.Release()
	for len(s.idxs) == 0 {
		s.idxs = append(s.idxs, atomIndex{})
	}
	ix := &s.idxs[0]
	ix.build(r, rCols, nil, false)

	out := data.NewRelation(l.Name, l.Arity)
	nk := len(lCols)
	if cap(s.key) < nk {
		s.key = make([]int64, nk)
	}
	key := s.key[:nk]
	m := l.NumTuples()
	for i := 0; i < m; i++ {
		t := l.Tuple(i)
		for c, lc := range lCols {
			key[c] = t[lc]
		}
		if ix.contains(key) == keep {
			out.AppendTuple(t)
		}
	}
	return out
}

// commonColumns maps the shared variables of two schemas to their column
// positions on each side.
func commonColumns(lVars, rVars []string) (lCols, rCols []int) {
	rIdx := make(map[string]int, len(rVars))
	for i, v := range rVars {
		rIdx[v] = i
	}
	for i, v := range lVars {
		if j, ok := rIdx[v]; ok {
			lCols = append(lCols, i)
			rCols = append(rCols, j)
		}
	}
	return lCols, rCols
}
