package localjoin

import (
	"sort"

	"mpcquery/internal/data"
	"mpcquery/internal/query"
)

// GenericJoin evaluates a full conjunctive query variable-at-a-time, in the
// style of the worst-case-optimal join algorithms (Ngo–Porat–Ré–Rudra,
// LeapFrog TrieJoin) whose output-size analysis — the AGM bound through
// fractional edge covers — the paper builds on in Section 2.4. For each
// variable in turn it intersects the candidate value sets offered by all
// atoms containing it, then recurses. On cyclic queries such as the
// triangle its intermediate work is bounded by the output of every prefix,
// avoiding the quadratic intermediates a binary join plan can produce.
//
// It returns the same result set as Evaluate (with duplicates when inputs
// are bags collapsed — the trie construction deduplicates input tuples, so
// GenericJoin has set semantics; use Evaluate when bag multiplicity
// matters).
func GenericJoin(q *query.Query, rels map[string]*data.Relation) *data.Relation {
	vars := q.Vars()
	out := data.NewRelation(q.Name, len(vars))

	// Choose a variable order: greedy by number of covering atoms
	// (descending), then first occurrence — cheap and effective for the
	// query families here.
	order := variableOrder(q)

	// Build a trie per atom following the atom's variables sorted by the
	// global order.
	tries := make([]*trieNode, q.NumAtoms())
	atomVarPos := make([][]int, q.NumAtoms()) // atom -> columns sorted by global var order
	rank := make(map[string]int, len(vars))
	for i, v := range order {
		rank[v] = i
	}
	for j, a := range q.Atoms {
		rel := rels[a.Name]
		if rel == nil {
			panic(&MissingRelationError{Atom: a.Name})
		}
		cols := sortedColumns(a, rank)
		atomVarPos[j] = cols
		tries[j] = buildTrie(rel, &q.Atoms[j], cols)
	}

	assignment := make(map[string]int64, len(vars))
	nodes := make([]*trieNode, q.NumAtoms())
	for j := range tries {
		nodes[j] = tries[j]
	}
	var rec func(depth int)
	rec = func(depth int) {
		if depth == len(order) {
			row := make([]int64, len(vars))
			for i, v := range vars {
				row[i] = assignment[v]
			}
			out.AppendTuple(row)
			return
		}
		v := order[depth]
		// Atoms whose next trie level binds v.
		var active []int
		for j, a := range q.Atoms {
			_ = a
			if nodes[j] != nil && nodes[j].depth < len(atomVarPos[j]) &&
				q.Atoms[j].Vars[atomVarPos[j][nodes[j].depth]] == v {
				active = append(active, j)
			}
		}
		if len(active) == 0 {
			// Variable unconstrained at this point: cannot happen for
			// connected full CQs with the chosen order, but guard anyway.
			panic("localjoin: unconstrained variable " + v)
		}
		// Intersect candidate sets, iterating the smallest.
		smallest := active[0]
		for _, j := range active[1:] {
			if len(nodes[j].children) < len(nodes[smallest].children) {
				smallest = j
			}
		}
		saved := make([]*trieNode, len(active))
		for val, child := range nodes[smallest].children {
			ok := true
			for _, j := range active {
				if j == smallest {
					continue
				}
				if _, has := nodes[j].children[val]; !has {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for i, j := range active {
				saved[i] = nodes[j]
				nodes[j] = nodes[j].children[val]
			}
			_ = child
			assignment[v] = val
			rec(depth + 1)
			for i, j := range active {
				nodes[j] = saved[i]
			}
		}
		delete(assignment, v)
	}
	rec(0)
	return out
}

type trieNode struct {
	depth    int
	children map[int64]*trieNode
}

func newTrieNode(depth int) *trieNode {
	return &trieNode{depth: depth, children: make(map[int64]*trieNode)}
}

// buildTrie indexes a relation by the atom's variables in global-order
// columns; tuples inconsistent on repeated variables are dropped (the
// column pairs to compare are precomputed once per atom, not rescanned per
// tuple), and repeated variables appear once (at their first sorted column).
func buildTrie(rel *data.Relation, a *query.Atom, cols []int) *trieNode {
	root := newTrieNode(0)
	eqPairs := repeatedVarPairs(a, nil)
	m := rel.NumTuples()
	for i := 0; i < m; i++ {
		t := rel.Tuple(i)
		ok := true
		for _, p := range eqPairs {
			if t[p[0]] != t[p[1]] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		node := root
		for d, c := range cols {
			v := t[c]
			child, ok := node.children[v]
			if !ok {
				child = newTrieNode(d + 1)
				node.children[v] = child
			}
			node = child
		}
	}
	return root
}

// sortedColumns returns the atom's columns ordered by the global variable
// order, keeping only the first column of each repeated variable.
func sortedColumns(a query.Atom, rank map[string]int) []int {
	seen := make(map[string]bool)
	var cols []int
	for c, v := range a.Vars {
		if !seen[v] {
			seen[v] = true
			cols = append(cols, c)
		}
	}
	sort.Slice(cols, func(i, j int) bool {
		return rank[a.Vars[cols[i]]] < rank[a.Vars[cols[j]]]
	})
	return cols
}

// variableOrder ranks variables by covering-atom count (descending) with
// first-occurrence tie-breaks, ensuring connectivity-friendly prefixes.
func variableOrder(q *query.Query) []string {
	vars := append([]string(nil), q.Vars()...)
	sort.SliceStable(vars, func(i, j int) bool {
		return len(q.AtomsOf(vars[i])) > len(q.AtomsOf(vars[j]))
	})
	// Reorder so every prefix stays connected when possible: start from the
	// highest-degree variable and grow through shared atoms.
	if len(vars) <= 2 {
		return vars
	}
	ordered := []string{vars[0]}
	used := map[string]bool{vars[0]: true}
	for len(ordered) < len(vars) {
		next := ""
		for _, v := range vars {
			if used[v] {
				continue
			}
			if connectedToAny(q, v, ordered) {
				next = v
				break
			}
		}
		if next == "" { // disconnected query: take the next by rank
			for _, v := range vars {
				if !used[v] {
					next = v
					break
				}
			}
		}
		used[next] = true
		ordered = append(ordered, next)
	}
	return ordered
}

func connectedToAny(q *query.Query, v string, chosen []string) bool {
	for _, j := range q.AtomsOf(v) {
		for _, w := range chosen {
			if q.Atoms[j].HasVar(w) {
				return true
			}
		}
	}
	return false
}
