package service

import (
	"testing"
	"time"
)

// TestLatencyPercentilesHandComputed pins the nearest-rank semantics of the
// migrated latency histogram on samples small enough to rank by hand. Each
// expectation is the exact bucket bound nearest-rank selects: with n samples,
// quantile q resolves to the bucket holding the ⌈q·n⌉-th smallest sample.
// (The old reservoir rounded the rank instead of ceiling it; the case that
// separates the two formulas is pinned in internal/obs's histogram tests.)
func TestLatencyPercentilesHandComputed(t *testing.T) {
	ms := func(d float64) time.Duration { return time.Duration(d * float64(time.Millisecond)) }
	cases := []struct {
		name              string
		samples           []time.Duration // fed via RecordSuccess
		p50, p95, p99, mx time.Duration   // expected bucket bounds / exact max
	}{
		{
			// Ten distinct samples, one per bucket: rank ⌈0.5·10⌉=5 lands
			// on the 5th smallest (25ms bucket); ranks 10 land in the 1s
			// bucket, whose bound clamps to the exact 900ms maximum.
			name:    "ten-distinct",
			samples: []time.Duration{ms(0.2), ms(0.4), ms(2), ms(4), ms(20), ms(40), ms(80), ms(200), ms(400), ms(900)},
			p50:     ms(25), p95: ms(900), p99: ms(900), mx: ms(900),
		},
		{
			// Two samples: the median rank ⌈0.5·2⌉=1 must stay on the
			// smaller sample's bucket; ⌈0.95·2⌉=2 reaches the larger,
			// clamped from its 500ms bucket bound to the exact 300ms max.
			name:    "two-samples",
			samples: []time.Duration{ms(3), ms(300)},
			p50:     ms(5), p95: ms(300), p99: ms(300), mx: ms(300),
		},
		{
			// Heavy tail: 19 fast samples and one slow one. p95 rank
			// ⌈0.95·20⌉=19 stays in the fast bucket; p99 rank 20 reaches
			// the tail (1s bucket, clamped to the exact 700ms max).
			name:    "heavy-tail",
			samples: append(repeatDur(ms(2), 19), ms(700)),
			p50:     ms(2.5), p95: ms(2.5), p99: ms(700), mx: ms(700),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := NewMetrics()
			for _, d := range tc.samples {
				m.RecordSuccess(d, 0, 0, 1)
			}
			s := m.Snapshot()
			if s.LatencyP50 != tc.p50 {
				t.Errorf("p50 = %v, want %v", s.LatencyP50, tc.p50)
			}
			if s.LatencyP95 != tc.p95 {
				t.Errorf("p95 = %v, want %v", s.LatencyP95, tc.p95)
			}
			if s.LatencyP99 != tc.p99 {
				t.Errorf("p99 = %v, want %v", s.LatencyP99, tc.p99)
			}
			if s.LatencyMax != tc.mx {
				t.Errorf("max = %v, want %v", s.LatencyMax, tc.mx)
			}
		})
	}
}

// TestRecordFailureObservesLatency: failed requests contribute latency
// samples (a timeout is the latency signal that matters most), matching the
// old reservoir's behavior.
func TestRecordFailureObservesLatency(t *testing.T) {
	m := NewMetrics()
	m.RecordFailure(40 * time.Millisecond)
	s := m.Snapshot()
	if s.Failed != 1 || s.Completed != 0 {
		t.Fatalf("counts: completed=%d failed=%d, want 0/1", s.Completed, s.Failed)
	}
	if s.LatencyMax != 40*time.Millisecond {
		t.Fatalf("LatencyMax = %v, want 40ms", s.LatencyMax)
	}
}

func repeatDur(d time.Duration, n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = d
	}
	return out
}
