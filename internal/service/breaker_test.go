package service

import (
	"sync"
	"testing"
	"time"
)

func TestBreakerTripsAtThreshold(t *testing.T) {
	b := NewBreaker(3, time.Hour)
	for i := 0; i < 2; i++ {
		b.RecordFailure()
		if got := b.State(); got != BreakerClosed {
			t.Fatalf("after %d failures: state %v, want closed", i+1, got)
		}
		if !b.Allow() {
			t.Fatalf("closed breaker refused a request")
		}
	}
	b.RecordFailure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("after threshold failures: state %v, want open", got)
	}
	if b.Allow() {
		t.Fatalf("open breaker allowed a request before cooldown")
	}
	if got := b.Trips(); got != 1 {
		t.Fatalf("trips = %d, want 1", got)
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	b := NewBreaker(2, time.Hour)
	b.RecordFailure()
	b.RecordSuccess()
	b.RecordFailure()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("non-consecutive failures tripped the breaker: state %v", got)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b := NewBreaker(1, time.Millisecond)
	b.RecordFailure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state %v, want open", got)
	}
	// Wait out the jittered cooldown (at most 1.5× the base).
	deadline := time.Now().Add(2 * time.Second)
	for !b.Allow() {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never granted a half-open probe")
		}
		time.Sleep(time.Millisecond)
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state %v, want half-open", got)
	}
	// Exactly one probe: further requests are refused until it resolves.
	if b.Allow() {
		t.Fatalf("second probe granted while first is in flight")
	}
	b.RecordSuccess()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("successful probe left state %v, want closed", got)
	}
	if !b.Allow() {
		t.Fatalf("closed breaker refused a request after recovery")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b := NewBreaker(1, time.Millisecond)
	b.RecordFailure()
	deadline := time.Now().Add(2 * time.Second)
	for !b.Allow() {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never granted a half-open probe")
		}
		time.Sleep(time.Millisecond)
	}
	b.RecordFailure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("failed probe left state %v, want open", got)
	}
	if got := b.Trips(); got != 2 {
		t.Fatalf("trips = %d, want 2", got)
	}
}

// TestBreakerJitterDeterministic pins the cooldown jitter as a pure
// function of the trip count: two breakers with identical configuration
// tripping the same number of times wait identically.
func TestBreakerJitterDeterministic(t *testing.T) {
	a := NewBreaker(1, time.Second)
	b := NewBreaker(1, time.Second)
	a.RecordFailure()
	b.RecordFailure()
	if a.wait != b.wait {
		t.Fatalf("same trip count, different cooldowns: %v vs %v", a.wait, b.wait)
	}
	if a.wait < time.Second || a.wait >= time.Second+time.Second/2 {
		t.Fatalf("jittered cooldown %v outside [base, 1.5*base)", a.wait)
	}
	// Successive trips draw from different jitter coordinates.
	w1 := a.jitteredCooldown()
	a.trips++
	w2 := a.jitteredCooldown()
	if w1 == w2 {
		t.Fatalf("trip 1 and trip 2 drew identical jitter — not keyed by trip count")
	}
}

func TestBreakerClampsConfig(t *testing.T) {
	b := NewBreaker(0, 0)
	b.RecordFailure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("threshold clamp: one failure should trip, state %v", got)
	}
	if b.cooldown != time.Second {
		t.Fatalf("cooldown default = %v, want 1s", b.cooldown)
	}
}

func TestBreakerConcurrentAccess(t *testing.T) {
	b := NewBreaker(5, time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if b.Allow() {
					if (n+j)%3 == 0 {
						b.RecordFailure()
					} else {
						b.RecordSuccess()
					}
				}
			}
		}(i)
	}
	wg.Wait()
	_ = b.State()
	_ = b.Trips()
}

func TestBreakerStateString(t *testing.T) {
	for st, want := range map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerHalfOpen: "half-open",
		BreakerOpen:     "open",
	} {
		if got := st.String(); got != want {
			t.Fatalf("State(%d).String() = %q, want %q", st, got, want)
		}
	}
}
