package service

import (
	"sync"
	"sync/atomic"
)

// Flight coalesces concurrent duplicate requests: while one call for a key
// is in flight, later calls for the same key wait for its result instead
// of executing again. Unlike the Cache, a Flight holds nothing after the
// call completes — it deduplicates concurrency, not history, so it is
// sound even for requests whose execution has side effects that must
// happen at least once per burst (metering a query's communication) but
// are wasteful to repeat within one.
type Flight struct {
	mu     sync.Mutex
	flying map[string]*flightCall

	hits   atomic.Int64 // calls that waited on another's execution
	misses atomic.Int64 // calls that executed
}

type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

// NewFlight returns an empty coalescing group.
func NewFlight() *Flight {
	return &Flight{flying: make(map[string]*flightCall)}
}

// Do executes fn for key, unless an identical call is already in flight —
// then it waits and returns that call's result instead. The boolean
// reports whether this call was coalesced onto another's execution.
// Callers of a coalesced Do share the leader's result value; they must
// treat it as read-only.
func (f *Flight) Do(key string, fn func() (any, error)) (any, bool, error) {
	f.mu.Lock()
	if c, ok := f.flying[key]; ok {
		f.mu.Unlock()
		<-c.done
		f.hits.Add(1)
		return c.val, true, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	f.flying[key] = c
	f.mu.Unlock()

	c.val, c.err = fn()

	f.mu.Lock()
	delete(f.flying, key)
	f.mu.Unlock()
	close(c.done)
	f.misses.Add(1)
	return c.val, false, c.err
}

// FlightStats reports a Flight's lifetime coalescing effectiveness.
type FlightStats struct {
	Hits   int64 // calls served by another call's execution
	Misses int64 // calls that executed themselves
}

// HitRate returns the fraction of calls coalesced onto another execution.
func (s FlightStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats snapshots the flight counters.
func (f *Flight) Stats() FlightStats {
	return FlightStats{Hits: f.hits.Load(), Misses: f.misses.Load()}
}
