// Package service provides the concurrency substrate of the long-lived
// query service: a bounded worker pool with queue-depth admission control
// and load shedding, a keyed single-flight cache for plan and statistics
// artifacts, and aggregate service metrics (throughput, latency
// percentiles, communication totals).
//
// The package is deliberately generic — it knows nothing about queries,
// databases, or Reports. The mpcquery façade composes these pieces into the
// public Service API and decides what gets cached under which key.
package service

import (
	"errors"
	"sync"
)

// ErrOverloaded is returned when a task is refused admission because the
// pool's queue is full — the service sheds load instead of building an
// unbounded backlog (clients see the rejection immediately and can back
// off or retry).
var ErrOverloaded = errors.New("service: overloaded, queue full")

// ErrClosed is returned when a task is submitted after Close.
var ErrClosed = errors.New("service: closed")

// Pool is a fixed-size worker pool with a bounded submission queue. The two
// bounds are the service's admission control: Workers caps how many queries
// execute concurrently (each query already parallelizes internally across
// GOMAXPROCS, so a small worker count usually saturates the machine), and
// QueueDepth caps how many admitted queries may wait.
type Pool struct {
	tasks   chan func()
	wg      sync.WaitGroup
	mu      sync.Mutex
	closed  bool
	workers int
}

// NewPool starts a pool of workers goroutines behind a queue of queueDepth
// pending tasks. workers and queueDepth are clamped to at least 1 worker
// and a queue of at least the worker count (so admission never rejects a
// task that an idle worker could take immediately).
func NewPool(workers, queueDepth int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < workers {
		queueDepth = workers
	}
	p := &Pool{tasks: make(chan func(), queueDepth), workers: workers}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for task := range p.tasks {
				runTask(task)
			}
		}()
	}
	return p
}

// runTask confines a panicking task to itself: the worker survives and the
// service keeps draining its queue. Tasks that need to observe their own
// panic (to unblock a waiting submitter) must install their own recover —
// this backstop only protects the pool.
func runTask(task func()) {
	defer func() { _ = recover() }()
	task()
}

// Workers returns the number of worker goroutines.
func (p *Pool) Workers() int { return p.workers }

// QueueDepth returns the queue capacity.
func (p *Pool) QueueDepth() int { return cap(p.tasks) }

// Queued returns the number of tasks currently waiting (racy snapshot, for
// metrics only).
func (p *Pool) Queued() int { return len(p.tasks) }

// Submit enqueues a task for execution. It never blocks: when the queue is
// full it returns ErrOverloaded, and after Close it returns ErrClosed.
func (p *Pool) Submit(task func()) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	select {
	case p.tasks <- task:
		return nil
	default:
		return ErrOverloaded
	}
}

// Close stops admission, waits for queued and running tasks to finish, and
// releases the workers. It is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	close(p.tasks)
	p.mu.Unlock()
	p.wg.Wait()
}
