package service

import (
	"time"

	"mpcquery/internal/obs"
)

// latencyBuckets are the upper bounds, in seconds, of the service latency
// histogram: a coarse exponential ladder from 100µs to 60s. Quantiles are
// resolved to a bucket bound (nearest-rank over the bucket counts), so the
// ladder's resolution is the quantile's resolution; the maximum is exact.
var latencyBuckets = []float64{
	100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10, 30, 60,
}

// Metrics aggregates what the service observed across all completed
// queries: counts, wall-clock latency (queue wait + execution), and the
// paper's communication measures summed/maxed over the stream.
//
// Internally every series lives in a per-service obs.Registry, so the
// same numbers that feed Snapshot are exported verbatim on the debug
// endpoint's /metrics page. The registry's hot path is allocation-free;
// recording a request takes a handful of atomic operations.
type Metrics struct {
	reg     *obs.Registry
	started time.Time

	completed   *obs.Counter
	failed      *obs.Counter
	shed        *obs.Counter
	totalRounds *obs.Counter
	totalBits   *obs.Gauge
	maxLoadBits *obs.Gauge
	latency     *obs.Histogram
}

// NewMetrics returns a recorder; throughput is measured from now.
func NewMetrics() *Metrics {
	reg := obs.NewRegistry()
	return &Metrics{
		reg:         reg,
		started:     time.Now(),
		completed:   reg.Counter("mpc_service_requests_completed_total"),
		failed:      reg.Counter("mpc_service_requests_failed_total"),
		shed:        reg.Counter("mpc_service_requests_shed_total"),
		totalRounds: reg.Counter("mpc_service_rounds_total"),
		totalBits:   reg.Gauge("mpc_service_total_bits"),
		maxLoadBits: reg.Gauge("mpc_service_max_load_bits"),
		latency:     reg.Histogram("mpc_service_latency_seconds", latencyBuckets...),
	}
}

// Registry exposes the recorder's series for the debug endpoint; the
// Service also registers its pool/cache gauges here.
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// RecordSuccess records one completed query.
func (m *Metrics) RecordSuccess(latency time.Duration, totalBits, maxLoadBits float64, rounds int) {
	m.completed.Inc()
	m.latency.Observe(latency.Seconds())
	m.totalBits.Add(totalBits)
	m.maxLoadBits.SetMax(maxLoadBits)
	m.totalRounds.Add(int64(rounds))
}

// RecordFailure records a query that returned an error.
func (m *Metrics) RecordFailure(latency time.Duration) {
	m.failed.Inc()
	m.latency.Observe(latency.Seconds())
}

// RecordShed records a request refused at admission.
func (m *Metrics) RecordShed() {
	m.shed.Inc()
}

// Summary is a point-in-time snapshot of the service's aggregate metrics.
type Summary struct {
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Shed      int64 `json:"shed"`

	Uptime     time.Duration `json:"uptime_ns"`
	Throughput float64       `json:"throughput_per_sec"` // completed / uptime

	LatencyP50 time.Duration `json:"latency_p50_ns"`
	LatencyP95 time.Duration `json:"latency_p95_ns"`
	LatencyP99 time.Duration `json:"latency_p99_ns"`
	LatencyMax time.Duration `json:"latency_max_ns"`

	TotalBits   float64 `json:"total_bits"`    // Σ communication over all queries
	MaxLoadBits float64 `json:"max_load_bits"` // worst per-server load seen
	TotalRounds int64   `json:"total_rounds"`
}

// Snapshot computes the summary over everything recorded so far. The
// latency percentiles are nearest-rank over the histogram's buckets
// (resolved to the bucket's upper bound); the maximum is exact.
func (m *Metrics) Snapshot() Summary {
	s := Summary{
		Completed:   m.completed.Value(),
		Failed:      m.failed.Value(),
		Shed:        m.shed.Value(),
		Uptime:      time.Since(m.started),
		TotalBits:   m.totalBits.Value(),
		MaxLoadBits: m.maxLoadBits.Value(),
		TotalRounds: m.totalRounds.Value(),
	}
	if secs := s.Uptime.Seconds(); secs > 0 {
		s.Throughput = float64(s.Completed) / secs
	}
	if m.latency.Count() > 0 {
		s.LatencyP50 = secondsToDuration(m.latency.Quantile(0.50))
		s.LatencyP95 = secondsToDuration(m.latency.Quantile(0.95))
		s.LatencyP99 = secondsToDuration(m.latency.Quantile(0.99))
		s.LatencyMax = secondsToDuration(m.latency.Max())
	}
	return s
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
