package service

import (
	"sort"
	"sync"
	"time"
)

// maxLatencySamples bounds the latency reservoir; beyond it the recorder
// keeps a sliding window of the most recent samples, which is what a
// service dashboard wants anyway.
const maxLatencySamples = 1 << 14

// Metrics aggregates what the service observed across all completed
// queries: counts, wall-clock latency (queue wait + execution), and the
// paper's communication measures summed/maxed over the stream.
type Metrics struct {
	mu        sync.Mutex
	started   time.Time
	completed int64
	failed    int64
	shed      int64

	latencies []time.Duration // ring buffer of recent samples
	next      int             // ring position once saturated

	totalBits   float64 // Σ over queries of Report.TotalBits
	maxLoadBits float64 // max over queries of Report.MaxLoadBits
	totalRounds int64
}

// NewMetrics returns a recorder; throughput is measured from now.
func NewMetrics() *Metrics {
	return &Metrics{started: time.Now()}
}

// RecordSuccess records one completed query.
func (m *Metrics) RecordSuccess(latency time.Duration, totalBits, maxLoadBits float64, rounds int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.completed++
	m.record(latency)
	m.totalBits += totalBits
	if maxLoadBits > m.maxLoadBits {
		m.maxLoadBits = maxLoadBits
	}
	m.totalRounds += int64(rounds)
}

// RecordFailure records a query that returned an error.
func (m *Metrics) RecordFailure(latency time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failed++
	m.record(latency)
}

// RecordShed records a request refused at admission.
func (m *Metrics) RecordShed() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shed++
}

func (m *Metrics) record(latency time.Duration) {
	if len(m.latencies) < maxLatencySamples {
		m.latencies = append(m.latencies, latency)
		return
	}
	m.latencies[m.next] = latency
	m.next = (m.next + 1) % maxLatencySamples
}

// Summary is a point-in-time snapshot of the service's aggregate metrics.
type Summary struct {
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Shed      int64 `json:"shed"`

	Uptime     time.Duration `json:"uptime_ns"`
	Throughput float64       `json:"throughput_per_sec"` // completed / uptime

	LatencyP50 time.Duration `json:"latency_p50_ns"`
	LatencyP95 time.Duration `json:"latency_p95_ns"`
	LatencyP99 time.Duration `json:"latency_p99_ns"`
	LatencyMax time.Duration `json:"latency_max_ns"`

	TotalBits   float64 `json:"total_bits"`    // Σ communication over all queries
	MaxLoadBits float64 `json:"max_load_bits"` // worst per-server load seen
	TotalRounds int64   `json:"total_rounds"`
}

// Snapshot computes the summary over everything recorded so far.
func (m *Metrics) Snapshot() Summary {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Summary{
		Completed:   m.completed,
		Failed:      m.failed,
		Shed:        m.shed,
		Uptime:      time.Since(m.started),
		TotalBits:   m.totalBits,
		MaxLoadBits: m.maxLoadBits,
		TotalRounds: m.totalRounds,
	}
	if secs := s.Uptime.Seconds(); secs > 0 {
		s.Throughput = float64(m.completed) / secs
	}
	if len(m.latencies) > 0 {
		sorted := append([]time.Duration(nil), m.latencies...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		s.LatencyP50 = percentile(sorted, 0.50)
		s.LatencyP95 = percentile(sorted, 0.95)
		s.LatencyP99 = percentile(sorted, 0.99)
		s.LatencyMax = sorted[len(sorted)-1]
	}
	return s
}

// percentile returns the nearest-rank percentile of a sorted sample.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
