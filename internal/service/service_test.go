package service

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsTasks(t *testing.T) {
	p := NewPool(4, 64)
	defer p.Close()
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		if err := p.Submit(func() { defer wg.Done(); n.Add(1) }); err != nil {
			wg.Done()
			t.Fatalf("Submit: %v", err)
		}
	}
	wg.Wait()
	if n.Load() != 50 {
		t.Fatalf("ran %d tasks, want 50", n.Load())
	}
}

func TestPoolShedsWhenFull(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Close()
	block := make(chan struct{})
	done := make(chan struct{})
	// Occupy the single worker, then fill the single queue slot.
	if err := p.Submit(func() { <-block; close(done) }); err != nil {
		t.Fatalf("Submit worker task: %v", err)
	}
	// The worker may not have dequeued yet; keep feeding until the queue is
	// genuinely full, then expect ErrOverloaded.
	deadline := time.Now().Add(2 * time.Second)
	overloaded := false
	for time.Now().Before(deadline) {
		err := p.Submit(func() { <-block })
		if errors.Is(err, ErrOverloaded) {
			overloaded = true
			break
		}
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	if !overloaded {
		t.Fatal("queue never reported ErrOverloaded")
	}
	close(block)
	<-done
}

func TestPoolCloseRejectsAndDrains(t *testing.T) {
	p := NewPool(2, 8)
	var n atomic.Int64
	for i := 0; i < 8; i++ {
		if err := p.Submit(func() { n.Add(1) }); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	p.Close()
	if n.Load() != 8 {
		t.Fatalf("Close drained %d tasks, want 8", n.Load())
	}
	if err := p.Submit(func() {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	p.Close() // idempotent
}

func TestCacheSingleFlight(t *testing.T) {
	c := NewCache(16)
	var computes atomic.Int64
	start := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]any, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i] = c.GetOrCompute("k", func() any {
				computes.Add(1)
				time.Sleep(10 * time.Millisecond) // widen the race window
				return 42
			})
		}(i)
	}
	close(start)
	wg.Wait()
	if computes.Load() != 1 {
		t.Fatalf("compute ran %d times, want 1 (single-flight)", computes.Load())
	}
	for i, r := range results {
		if r != 42 {
			t.Fatalf("caller %d got %v, want 42", i, r)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 15 {
		t.Fatalf("stats = %+v, want 1 miss / 15 hits", st)
	}
}

func TestCacheEvictionFIFO(t *testing.T) {
	c := NewCache(2)
	c.GetOrCompute("a", func() any { return 1 })
	c.GetOrCompute("b", func() any { return 2 })
	c.GetOrCompute("c", func() any { return 3 }) // evicts "a"
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	recomputed := false
	c.GetOrCompute("a", func() any { recomputed = true; return 1 })
	if !recomputed {
		t.Fatal("evicted key served from cache")
	}
	if ev := c.Stats().Evictions; ev < 1 {
		t.Fatalf("evictions = %d, want >= 1", ev)
	}
}

func TestCachePanicRetries(t *testing.T) {
	c := NewCache(4)
	func() {
		defer func() { _ = recover() }()
		c.GetOrCompute("k", func() any { panic("boom") })
		t.Fatal("panic did not propagate")
	}()
	got := c.GetOrCompute("k", func() any { return "ok" })
	if got != "ok" {
		t.Fatalf("retry after panic returned %v", got)
	}
}

func TestCachePurge(t *testing.T) {
	c := NewCache(8)
	c.GetOrCompute("a", func() any { return 1 })
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("len after Purge = %d", c.Len())
	}
}

func TestCachePurgeMatching(t *testing.T) {
	c := NewCache(8)
	c.GetOrCompute("q1|db1.v0|x", func() any { return 1 })
	c.GetOrCompute("q1|db2.v0|x", func() any { return 2 })
	c.GetOrCompute("q2|db1.v0|y", func() any { return 3 })
	c.PurgeMatching("|db1.v0|")
	if c.Len() != 1 {
		t.Fatalf("len after PurgeMatching = %d, want 1", c.Len())
	}
	kept := false
	c.GetOrCompute("q1|db2.v0|x", func() any { kept = true; return 2 })
	if kept {
		t.Fatal("PurgeMatching dropped an entry of another database")
	}
	recomputed := false
	c.GetOrCompute("q1|db1.v0|x", func() any { recomputed = true; return 1 })
	if !recomputed {
		t.Fatal("purged entry served from cache")
	}
}

// TestCachePanicPropagatesToWaiters asserts concurrent waiters of a
// panicking compute observe the original panic value (not a nil result),
// and that the panicked key does not leave a stale slot in the FIFO order.
func TestCachePanicPropagatesToWaiters(t *testing.T) {
	c := NewCache(2)
	started := make(chan struct{})
	release := make(chan struct{})
	var computes, panics atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r == "boom" {
					panics.Add(1)
				}
			}()
			c.GetOrCompute("k", func() any {
				if computes.Add(1) == 1 {
					close(started)
				}
				<-release // closed once; retries pass straight through
				panic("boom")
			})
		}()
	}
	<-started
	time.Sleep(20 * time.Millisecond) // let the other callers pile up as waiters
	close(release)
	wg.Wait()
	if got := panics.Load(); got != 4 {
		t.Fatalf("%d callers observed the panic, want all 4", got)
	}
	if computes.Load() == 4 {
		t.Log("note: no caller ended up waiting; propagation untested this run")
	}
	// The key must be retryable, and the panic must not leave a stale FIFO
	// slot: with [a, k-retried, b] at capacity 2, eviction must drop a (the
	// true oldest), not follow a stale front slot for k and evict the live
	// retried entry.
	c.GetOrCompute("a", func() any { return 1 })
	c.GetOrCompute("k", func() any { return "ok" })
	c.GetOrCompute("b", func() any { return 2 }) // exceeds capacity: evicts a
	fromCache := true
	c.GetOrCompute("k", func() any { fromCache = false; return "ok" })
	if !fromCache {
		t.Fatal("retried entry was evicted via a stale FIFO slot left by the panic")
	}
}

func TestMetricsSnapshot(t *testing.T) {
	m := NewMetrics()
	for i := 1; i <= 100; i++ {
		m.RecordSuccess(time.Duration(i)*time.Millisecond, 1000, float64(i), 2)
	}
	m.RecordFailure(time.Millisecond)
	m.RecordShed()
	s := m.Snapshot()
	if s.Completed != 100 || s.Failed != 1 || s.Shed != 1 {
		t.Fatalf("counts wrong: %+v", s)
	}
	if s.TotalBits != 100*1000 || s.MaxLoadBits != 100 || s.TotalRounds != 200 {
		t.Fatalf("aggregates wrong: %+v", s)
	}
	// 101 samples total; p50 should land mid-range and p99 near the top.
	if s.LatencyP50 < 40*time.Millisecond || s.LatencyP50 > 60*time.Millisecond {
		t.Fatalf("p50 = %v, want ~50ms", s.LatencyP50)
	}
	if s.LatencyP99 < 95*time.Millisecond {
		t.Fatalf("p99 = %v, want >= 95ms", s.LatencyP99)
	}
	if s.LatencyMax != 100*time.Millisecond {
		t.Fatalf("max = %v, want 100ms", s.LatencyMax)
	}
	if s.Throughput <= 0 {
		t.Fatalf("throughput = %v, want > 0", s.Throughput)
	}
}

func TestCacheStatsHitRate(t *testing.T) {
	var s CacheStats
	if s.HitRate() != 0 {
		t.Fatal("empty hit rate should be 0")
	}
	s = CacheStats{Hits: 3, Misses: 1}
	if got := s.HitRate(); got != 0.75 {
		t.Fatalf("hit rate = %v, want 0.75", got)
	}
}
