package service

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed: requests flow normally.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen: the cooldown elapsed; exactly one probe request is
	// allowed through to test the dependency.
	BreakerHalfOpen
	// BreakerOpen: consecutive failures tripped the breaker; requests are
	// refused (the service tier answers them another way) until the
	// cooldown elapses.
	BreakerOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "open"
	}
}

// Breaker is a consecutive-failure circuit breaker with deterministic
// jittered cooldowns. The service tier keeps one per distributed runtime:
// `threshold` consecutive peer-unavailable failures trip it, tripped
// requests are answered by the in-process fallback instead of queuing on
// a dead worker group, and after the cooldown a single half-open probe
// decides whether to close it again.
//
// The cooldown jitter is a pure function of the trip count (no global
// RNG, no wall-clock entropy): reproducible under test, yet de-synchronized
// across successive trips so a periodically-failing dependency doesn't
// see probes in lockstep.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	state     BreakerState
	fails     int   // consecutive qualifying failures while closed
	trips     int64 // lifetime trips; seeds the cooldown jitter
	probes    int64 // half-open probes granted
	openedAt  time.Time
	wait      time.Duration // this trip's jittered cooldown
}

// NewBreaker returns a closed breaker. threshold < 1 is clamped to 1;
// cooldown <= 0 defaults to one second.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown}
}

// mix64 is a splitmix64 finalizer — the same avalanche the fault
// scheduler uses — turning the trip counter into jitter deterministically.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// jitteredCooldown is cooldown + [0, cooldown/2), keyed by the trip count.
func (b *Breaker) jitteredCooldown() time.Duration {
	span := int64(b.cooldown) / 2
	if span <= 0 {
		return b.cooldown
	}
	return b.cooldown + time.Duration(int64(mix64(uint64(b.trips)))%span)
}

// Allow reports whether a request may use the guarded dependency. In the
// open state it returns false until the jittered cooldown elapses, then
// grants exactly one half-open probe; further requests are refused until
// that probe resolves via RecordSuccess or RecordFailure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		return false // a probe is already in flight
	default:
		if time.Since(b.openedAt) < b.wait {
			return false
		}
		b.state = BreakerHalfOpen
		b.probes++
		return true
	}
}

// RecordSuccess notes a successful use of the dependency: it resets the
// consecutive-failure count and closes a half-open breaker.
func (b *Breaker) RecordSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.state = BreakerClosed
}

// RecordFailure notes a qualifying failure: it re-opens a half-open
// breaker immediately, and trips a closed one once the consecutive count
// reaches the threshold.
func (b *Breaker) RecordFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.trip()
	case BreakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.trip()
		}
	}
}

// trip moves to open with a fresh jittered cooldown. Callers hold b.mu.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.fails = 0
	b.trips++
	b.wait = b.jitteredCooldown()
	b.openedAt = time.Now()
}

// State returns the breaker's current position (open breakers whose
// cooldown has elapsed still report open until a probe is granted).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns how many times the breaker has tripped.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
