package service

import (
	"strings"
	"sync"
	"sync/atomic"
)

// CacheStats is a point-in-time snapshot of a cache's effectiveness.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Entries   int   `json:"entries"`
	Evictions int64 `json:"evictions"`
}

// HitRate returns Hits/(Hits+Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is a bounded, concurrency-safe, keyed artifact cache with
// single-flight computation: concurrent callers asking for the same absent
// key share one computation instead of racing to duplicate it (plan and
// statistics preparation is exactly the work the service exists to
// amortize, so computing it twice under a thundering herd would defeat the
// point). Eviction is FIFO by insertion order — the artifacts cached here
// are tiny next to the databases they describe, so recency tracking isn't
// worth the bookkeeping.
type Cache struct {
	mu       sync.Mutex
	entries  map[string]*cacheEntry
	order    []string // insertion order, for FIFO eviction
	capacity int

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type cacheEntry struct {
	ready    chan struct{} // closed when value is set (or compute panicked)
	value    any
	panicked any // non-nil when compute panicked; waiters re-panic with it
}

// NewCache returns a cache holding at most capacity entries (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{entries: make(map[string]*cacheEntry), capacity: capacity}
}

// GetOrCompute returns the value cached under key, computing and storing it
// with compute on a miss. Exactly one caller runs compute per absent key;
// the others block until it finishes and share the result. A panicking
// compute removes the entry (so a later call may retry) and re-panics in
// the computing caller AND in every waiter, so all callers observe the same
// failure instead of a nil value.
func (c *Cache) GetOrCompute(key string, compute func() any) any {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		<-e.ready
		if e.panicked != nil {
			c.misses.Add(1)
			//lint:allow panicdiscipline re-panic of the computing caller's panic so every waiter observes the original failure
			panic(e.panicked)
		}
		c.hits.Add(1)
		return e.value
	}
	e := &cacheEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.order = append(c.order, key)
	c.evictLocked()
	c.mu.Unlock()
	c.misses.Add(1)

	defer func() {
		if r := recover(); r != nil {
			// compute panicked: drop the placeholder (map AND order, so the
			// key cannot occupy two order slots after a retry), release the
			// waiters with the panic value, and re-panic here.
			e.panicked = r
			c.mu.Lock()
			if c.entries[key] == e {
				delete(c.entries, key)
				c.removeFromOrderLocked(key)
			}
			c.mu.Unlock()
			close(e.ready)
			//lint:allow panicdiscipline re-panic of the recovered compute panic, already classified at its original site
			panic(r)
		}
	}()
	e.value = compute()
	close(e.ready)
	return e.value
}

// removeFromOrderLocked deletes the first occurrence of key from the FIFO
// order slice (rare paths only: panic cleanup and targeted purges).
func (c *Cache) removeFromOrderLocked(key string) {
	for i, k := range c.order {
		if k == key {
			c.order = append(c.order[:i], c.order[i+1:]...)
			return
		}
	}
}

// evictLocked drops oldest entries until within capacity. In-flight entries
// may be evicted from the map (waiters already hold the entry pointer and
// still get their value; the cache just forgets it early).
func (c *Cache) evictLocked() {
	for len(c.entries) > c.capacity && len(c.order) > 0 {
		oldest := c.order[0]
		c.order = c.order[1:]
		if _, ok := c.entries[oldest]; ok {
			delete(c.entries, oldest)
			c.evictions.Add(1)
		}
	}
}

// Len returns the current number of entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Purge drops every entry.
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*cacheEntry)
	c.order = nil
}

// PurgeMatching drops every entry whose key contains substr — used when a
// database is invalidated: its old version tag makes the entries
// unreachable anyway, but dropping them frees potentially large layouts
// immediately instead of letting them squat in the FIFO until evicted.
func (c *Cache) PurgeMatching(substr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	kept := c.order[:0]
	for _, k := range c.order {
		if strings.Contains(k, substr) {
			delete(c.entries, k)
		} else {
			kept = append(kept, k)
		}
	}
	c.order = kept
}

// Stats returns a snapshot of hit/miss/eviction counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Entries:   n,
		Evictions: c.evictions.Load(),
	}
}
