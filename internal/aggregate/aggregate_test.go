package aggregate

import (
	"math"
	"math/rand"
	"testing"

	"mpcquery/internal/data"
)

func TestSemiringLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, op := range []Op{Count, Sum, Min, Max} {
		sr := ForOp(op)
		for trial := 0; trial < 200; trial++ {
			a, b, c := rng.Int63n(1000)-500, rng.Int63n(1000)-500, rng.Int63n(1000)-500
			if got, want := sr.Combine(a, b), sr.Combine(b, a); got != want {
				t.Fatalf("%s: not commutative: %d vs %d", sr.Name(), got, want)
			}
			l := sr.Combine(sr.Combine(a, b), c)
			r := sr.Combine(a, sr.Combine(b, c))
			if l != r {
				t.Fatalf("%s: not associative: %d vs %d", sr.Name(), l, r)
			}
			if got := sr.Combine(a, sr.Identity()); got != a {
				t.Fatalf("%s: identity broken: combine(%d, id) = %d", sr.Name(), a, got)
			}
		}
	}
}

func TestSemiringIdentities(t *testing.T) {
	if ForOp(Count).Identity() != 0 || ForOp(Sum).Identity() != 0 {
		t.Fatal("count/sum identity must be 0")
	}
	if ForOp(Min).Identity() != math.MaxInt64 {
		t.Fatal("min identity must be MaxInt64")
	}
	if ForOp(Max).Identity() != math.MinInt64 {
		t.Fatal("max identity must be MinInt64")
	}
}

func TestFoldTableAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		ka := 1 + rng.Intn(3)
		tbl := NewFoldTable(ka, ForOp(Sum))
		want := make(map[string]int64)
		order := []string{}
		key := make([]int64, ka)
		for i := 0; i < 500; i++ {
			for c := range key {
				key[c] = rng.Int63n(8) // few values -> many collisions and merges
			}
			v := rng.Int63n(100)
			ks := keyString(key)
			if _, ok := want[ks]; !ok {
				order = append(order, ks)
			}
			want[ks] += v
			tbl.Add(key, v)
		}
		if tbl.Len() != len(want) {
			t.Fatalf("trial %d: %d groups, want %d", trial, tbl.Len(), len(want))
		}
		res := tbl.Result("g")
		if !res.Annotated() || res.Arity != ka || res.NumTuples() != len(want) {
			t.Fatalf("trial %d: bad result shape", trial)
		}
		for i := 0; i < res.NumTuples(); i++ {
			ks := keyString(res.Tuple(i))
			if res.Annotation(i) != want[ks] {
				t.Fatalf("trial %d: group %v = %d, want %d", trial, res.Tuple(i), res.Annotation(i), want[ks])
			}
			if ks != order[i] {
				t.Fatalf("trial %d: group %d out of first-insertion order", trial, i)
			}
		}
	}
}

func keyString(key []int64) string {
	b := make([]byte, 0, len(key)*8)
	for _, v := range key {
		for s := 0; s < 8; s++ {
			b = append(b, byte(uint64(v)>>(8*s)))
		}
	}
	return string(b)
}

func TestFoldTableAddRowsMatchesAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ka := 2
	a := NewFoldTable(ka, ForOp(Max))
	b := NewFoldTable(ka, ForOp(Max))
	flat := make([]int64, 0, 300*(ka+1))
	for i := 0; i < 300; i++ {
		row := []int64{rng.Int63n(5), rng.Int63n(5), rng.Int63n(1000)}
		a.Add(row[:ka], row[ka])
		flat = append(flat, row...)
	}
	b.AddRows(flat)
	ra, rb := a.Result("x"), b.Result("x")
	if ra.NumTuples() != rb.NumTuples() {
		t.Fatalf("AddRows diverged: %d vs %d groups", ra.NumTuples(), rb.NumTuples())
	}
	for i := 0; i < ra.NumTuples(); i++ {
		for c := 0; c < ka; c++ {
			if ra.At(i, c) != rb.At(i, c) {
				t.Fatalf("group %d key mismatch", i)
			}
		}
		if ra.Annotation(i) != rb.Annotation(i) {
			t.Fatalf("group %d annotation mismatch", i)
		}
	}
}

func TestDestOfRangeAndDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 1000; trial++ {
		key := []int64{rng.Int63(), rng.Int63()}
		for _, p := range []int{1, 2, 7, 64} {
			d := DestOf(key, p)
			if d < 0 || d >= p {
				t.Fatalf("DestOf out of range: %d for p=%d", d, p)
			}
			if d != DestOf(key, p) {
				t.Fatal("DestOf not deterministic")
			}
		}
	}
	if DestOf([]int64{42}, 1) != 0 {
		t.Fatal("single server must receive everything")
	}
}

func TestFinalizeSortsAndDropsSyntheticKey(t *testing.T) {
	grouped := NewPlan(Count, "", []string{"z"}, true)
	p1 := data.NewRelation("a", 1)
	p1.AppendAnnotatedTuple([]int64{5}, 2)
	p1.AppendAnnotatedTuple([]int64{1}, 7)
	p2 := data.NewRelation("a", 1)
	p2.AppendAnnotatedTuple([]int64{3}, 4)
	out := Finalize("q", []*data.Relation{p1, nil, p2}, grouped)
	if out.Arity != 2 || out.NumTuples() != 3 {
		t.Fatalf("bad grouped output shape: arity %d, %d tuples", out.Arity, out.NumTuples())
	}
	wantRows := [][2]int64{{1, 7}, {3, 4}, {5, 2}}
	for i, w := range wantRows {
		if out.At(i, 0) != w[0] || out.At(i, 1) != w[1] {
			t.Fatalf("row %d = (%d,%d), want %v", i, out.At(i, 0), out.At(i, 1), w)
		}
	}

	global := NewPlan(Count, "", nil, true)
	g := data.NewRelation("a", 1)
	g.AppendAnnotatedTuple([]int64{0}, 11)
	gout := Finalize("q", []*data.Relation{g}, global)
	if gout.Arity != 1 || gout.NumTuples() != 1 || gout.At(0, 0) != 11 {
		t.Fatalf("global output wrong: arity %d tuples %d", gout.Arity, gout.NumTuples())
	}
	// Empty join: no partials anywhere -> zero rows, not a zero row.
	empty := Finalize("q", []*data.Relation{nil, nil}, global)
	if empty.NumTuples() != 0 {
		t.Fatal("empty aggregate must have no rows")
	}
}

func TestProjectRawKeepsMultiplicity(t *testing.T) {
	out := data.FromTuples("q", 2, []int64{1, 10}, []int64{1, 20}, []int64{1, 10})
	p := NewPlan(Count, "", []string{"x"}, false)
	raw := ProjectRaw(out, []int{0}, -1, p)
	if raw.NumTuples() != 3 || !raw.Annotated() {
		t.Fatalf("raw projection must keep one row per output tuple, got %d", raw.NumTuples())
	}
	for i := 0; i < 3; i++ {
		if raw.Annotation(i) != 1 {
			t.Fatal("count projection must annotate 1 per row")
		}
	}
	sum := NewPlan(Sum, "y", []string{"x"}, false)
	rawSum := ProjectRaw(out, []int{0}, 1, sum)
	if rawSum.Annotation(0) != 10 || rawSum.Annotation(1) != 20 {
		t.Fatal("sum projection must annotate the aggregated column value")
	}
}
