// Package aggregate implements semiring-annotated aggregation for
// conjunctive-query workloads: COUNT/SUM/MIN/MAX over the output of a join,
// optionally grouped by a subset of the query's variables.
//
// The paper's cost model charges bits on the wire, and aggregation is the
// classic workload where combining tuples *before* the shuffle provably
// shrinks communication: two same-group partial aggregates fold into one
// tuple under the aggregate's commutative monoid, so a sender that combines
// locally ships one tuple per distinct group instead of one per join-output
// row. The package provides the small Semiring interface the rest of the
// tree programs against, the per-tuple annotation initialization, and the
// FoldTable — an open-addressed group-by hash table mirroring the local-join
// kernel's columnar atomIndex design (flat int64 row storage, slot heads
// with intra-slot chains, collisions resolved by in-place key compare).
package aggregate

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"

	"mpcquery/internal/data"
	"mpcquery/internal/hashing"
)

// Op identifies one of the supported aggregation operators.
type Op int

// The supported aggregate operators. Count annotates every join-output row
// with 1; Sum/Min/Max annotate it with the value of the aggregated variable.
const (
	Count Op = iota
	Sum
	Min
	Max
)

func (op Op) String() string {
	switch op {
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Min:
		return "min"
	case Max:
		return "max"
	default:
		return fmt.Sprintf("op(%d)", int(op))
	}
}

// Valid reports whether op is one of the defined operators.
func (op Op) Valid() bool { return op >= Count && op <= Max }

// Semiring is the combining structure of one aggregate: a commutative
// monoid over int64 annotations. Combine must be associative and
// commutative (int64 addition with wraparound, min, and max all are), so
// partial aggregation may fold tuples in any grouping and any order —
// pushdown and no-pushdown runs produce bit-identical final values.
type Semiring interface {
	// Name returns the operator name ("count", "sum", ...).
	Name() string
	// Identity returns the ⊕-identity (0 for count/sum, +∞/−∞ for min/max).
	Identity() int64
	// Combine folds two annotations.
	Combine(a, b int64) int64
}

type sumSemiring struct{ name string }

func (s sumSemiring) Name() string           { return s.name }
func (sumSemiring) Identity() int64          { return 0 }
func (sumSemiring) Combine(a, b int64) int64 { return a + b }

type minSemiring struct{}

func (minSemiring) Name() string    { return "min" }
func (minSemiring) Identity() int64 { return math.MaxInt64 }
func (minSemiring) Combine(a, b int64) int64 {
	if b < a {
		return b
	}
	return a
}

type maxSemiring struct{}

func (maxSemiring) Name() string    { return "max" }
func (maxSemiring) Identity() int64 { return math.MinInt64 }
func (maxSemiring) Combine(a, b int64) int64 {
	if b > a {
		return b
	}
	return a
}

// ForOp returns the semiring of one operator.
func ForOp(op Op) Semiring {
	switch op {
	case Count:
		return sumSemiring{name: "count"}
	case Sum:
		return sumSemiring{name: "sum"}
	case Min:
		return minSemiring{}
	case Max:
		return maxSemiring{}
	default:
		panic(fmt.Sprintf("aggregate: unknown op %d", int(op)))
	}
}

// Plan is a resolved aggregate specification handed down to the executors:
// the operator, the aggregated variable (empty for Count), the group-by
// variables, and whether senders pre-aggregate before the shuffle.
type Plan struct {
	Op       Op
	Var      string   // aggregated variable; "" for Count
	GroupBy  []string // group-by variables (possibly empty: global aggregate)
	Semiring Semiring
	Pushdown bool
}

// NewPlan builds a Plan for op over variable of (ignored for Count).
func NewPlan(op Op, of string, groupBy []string, pushdown bool) *Plan {
	return &Plan{Op: op, Var: of, GroupBy: append([]string(nil), groupBy...),
		Semiring: ForOp(op), Pushdown: pushdown}
}

// KeyArity returns the wire arity of a group key. A global aggregate (no
// group-by variables) uses one synthetic all-zero key column, so partial
// aggregates always have at least one key column ahead of the annotation.
func (p *Plan) KeyArity() int {
	if len(p.GroupBy) == 0 {
		return 1
	}
	return len(p.GroupBy)
}

// Describe renders the plan for Report display: "count() by z",
// "sum(x1) global", ...
func (p *Plan) Describe() string {
	by := "global"
	if len(p.GroupBy) > 0 {
		by = "by " + strings.Join(p.GroupBy, ",")
	}
	return fmt.Sprintf("%s(%s) %s", p.Op, p.Var, by)
}

// InitAnnotation returns the annotation one join-output row contributes:
// 1 for Count, the aggregated variable's value otherwise.
func (p *Plan) InitAnnotation(aggVal int64) int64 {
	if p.Op == Count {
		return 1
	}
	return aggVal
}

// DestOf routes one group key to a server in [0, p): the same multiply-shift
// reduction the HyperCube grid uses, over a Combine-chained key hash. Every
// sender must agree on it, pushdown or not.
func DestOf(key []int64, p int) int {
	if p <= 1 {
		return 0
	}
	h := hashing.CombineSlice(0xa6c5_1c7e_93d3_0f6b, key)
	return int((h >> 32) * uint64(p) >> 32)
}

// FoldTable is the group-by hash table: flat columnar key rows plus one
// annotation per row, an open-addressed slot table with intra-slot chains
// (the PR 4 atomIndex layout, adapted from probe-only to insert-or-combine).
// Rows keep first-insertion order, so a single-threaded fold is
// deterministic. A FoldTable is not safe for concurrent use.
type FoldTable struct {
	keyArity int
	sr       Semiring

	keys   []int64 // flat row-major group keys
	annots []int64 // one annotation per row
	head   []int32 // slot -> first chained row index + 1 (0 = empty)
	next   []int32 // row index + 1 -> next chained row + 1
	mask   uint64
}

// NewFoldTable returns an empty fold table for keys of the given arity.
func NewFoldTable(keyArity int, sr Semiring) *FoldTable {
	t := &FoldTable{sr: sr}
	t.Reset(keyArity)
	return t
}

// Reset empties the table in place for a new fold, keeping capacity.
func (t *FoldTable) Reset(keyArity int) {
	t.keyArity = keyArity
	t.keys = t.keys[:0]
	t.annots = t.annots[:0]
	if cap(t.head) < 16 {
		t.head = make([]int32, 16)
	} else {
		t.head = t.head[:16]
		for i := range t.head {
			t.head[i] = 0
		}
	}
	t.next = t.next[:0]
	t.mask = uint64(len(t.head) - 1)
}

// Len returns the number of distinct groups folded so far.
func (t *FoldTable) Len() int { return len(t.annots) }

func hashGroupKey(key []int64) uint64 {
	return hashing.CombineSlice(0x51a0_f3c2_b44e_9d17, key)
}

// Add folds one (key, annotation) pair into the table.
func (t *FoldTable) Add(key []int64, annot int64) {
	slot := hashGroupKey(key) & t.mask
	for e := t.head[slot]; e != 0; e = t.next[e-1] {
		base := int(e-1) * t.keyArity
		match := true
		for c, v := range key {
			if t.keys[base+c] != v {
				match = false
				break
			}
		}
		if match {
			t.annots[e-1] = t.sr.Combine(t.annots[e-1], annot)
			return
		}
	}
	t.keys = append(t.keys, key...)
	t.annots = append(t.annots, annot)
	t.next = append(t.next, t.head[slot])
	t.head[slot] = int32(len(t.annots))
	if uint64(len(t.annots))*2 > uint64(len(t.head)) {
		t.grow()
	}
}

// AddRows folds a flat block of (key..., annot) rows of arity keyArity+1 —
// the wire format of the aggregate shuffle.
func (t *FoldTable) AddRows(vals []int64) {
	w := t.keyArity + 1
	for off := 0; off+w <= len(vals); off += w {
		t.Add(vals[off:off+t.keyArity], vals[off+t.keyArity])
	}
}

// grow doubles the slot table and rechains every row.
func (t *FoldTable) grow() {
	size := 1 << bits.Len(uint(2*len(t.annots)))
	if size <= len(t.head) {
		size = len(t.head) * 2
	}
	if cap(t.head) < size {
		t.head = make([]int32, size)
	} else {
		t.head = t.head[:size]
		for i := range t.head {
			t.head[i] = 0
		}
	}
	t.mask = uint64(size - 1)
	for i := range t.annots {
		slot := hashGroupKey(t.keys[i*t.keyArity:(i+1)*t.keyArity]) & t.mask
		t.next[i] = t.head[slot]
		t.head[slot] = int32(i + 1)
	}
}

// Result materializes the fold as a fresh annotated relation (arity =
// keyArity, annotation column = folded values), rows in first-insertion
// order. The relation owns its storage: the table may be reset afterwards.
func (t *FoldTable) Result(name string) *data.Relation {
	out := data.NewRelation(name, t.keyArity)
	out.Grow(len(t.annots))
	for i, a := range t.annots {
		out.AppendAnnotatedTuple(t.keys[i*t.keyArity:(i+1)*t.keyArity], a)
	}
	return out
}

// ProjectRaw projects a full join output to unfolded annotated rows, one per
// output tuple — the no-pushdown wire payload. groupCols are the output
// columns forming the group key (empty for a global aggregate, which gets
// one synthetic zero key column); aggCol is the aggregated column (-1 for
// Count).
func ProjectRaw(out *data.Relation, groupCols []int, aggCol int, p *Plan) *data.Relation {
	ka := p.KeyArity()
	raw := data.NewRelation(out.Name, ka)
	m := out.NumTuples()
	raw.Grow(m)
	key := make([]int64, ka)
	for i := 0; i < m; i++ {
		t := out.Tuple(i)
		for c, gc := range groupCols {
			key[c] = t[gc]
		}
		av := int64(0)
		if aggCol >= 0 {
			av = t[aggCol]
		}
		raw.AppendAnnotatedTuple(key, p.InitAnnotation(av))
	}
	return raw
}

// Finalize assembles the canonical aggregate output from per-destination
// folded partials: rows become plain (group key..., value) tuples — the
// synthetic key column of a global aggregate is dropped — sorted
// lexicographically. Group keys are disjoint across destinations (the
// shuffle partitions by key), so the sort makes the output independent of
// server count, strategy, and pushdown setting.
func Finalize(name string, parts []*data.Relation, p *Plan) *data.Relation {
	ka := p.KeyArity()
	dropKey := len(p.GroupBy) == 0
	outArity := ka + 1
	if dropKey {
		outArity = 1
	}
	out := data.NewRelation(name, outArity)
	total := 0
	for _, part := range parts {
		if part != nil {
			total += part.NumTuples()
		}
	}
	out.Grow(total)
	row := make([]int64, outArity)
	for _, part := range parts {
		if part == nil {
			continue
		}
		for i := 0; i < part.NumTuples(); i++ {
			if dropKey {
				row[0] = part.Annotation(i)
			} else {
				copy(row, part.Tuple(i))
				row[ka] = part.Annotation(i)
			}
			out.AppendTuple(row)
		}
	}
	sortRelation(out)
	return out
}

// sortRelation sorts a plain relation's tuples lexicographically in place.
func sortRelation(r *data.Relation) {
	m, a := r.NumTuples(), r.Arity
	idx := make([]int, m)
	for i := range idx {
		idx[i] = i
	}
	vals := r.Vals()
	sort.Slice(idx, func(i, j int) bool {
		ti, tj := vals[idx[i]*a:(idx[i]+1)*a], vals[idx[j]*a:(idx[j]+1)*a]
		for c := 0; c < a; c++ {
			if ti[c] != tj[c] {
				return ti[c] < tj[c]
			}
		}
		return false
	})
	sorted := make([]int64, 0, m*a)
	for _, i := range idx {
		sorted = append(sorted, vals[i*a:(i+1)*a]...)
	}
	r.Reset()
	r.AppendVals(sorted)
}
