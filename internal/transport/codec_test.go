package transport

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestWidthFor pins the width rules: compact ⌈bpv/8⌉ by default, widened
// when values outgrow the domain width, full 8 bytes for negatives.
func TestWidthFor(t *testing.T) {
	cases := []struct {
		bpv  int
		vals []int64
		want uint8
	}{
		{16, []int64{0, 1, 65535}, 2},
		{17, []int64{0, 1 << 16}, 3},
		{16, []int64{1 << 20}, 3},       // annotation outgrew the domain
		{16, []int64{1 << 30}, 4},       //
		{16, []int64{-1}, 8},            // negative → identity width
		{16, []int64{5, -3, 7}, 8},      //
		{1, []int64{0, 1}, 1},           //
		{64, []int64{1}, 8},             //
		{16, nil, 2},                    // empty batch keeps compact width
		{8, []int64{255}, 1},            //
		{8, []int64{256}, 2},            //
		{16, []int64{(1 << 56) - 1}, 7}, //
		{16, []int64{1 << 56}, 8},       //
		{16, []int64{0x7fffffffffffffff}, 8},
	}
	for _, c := range cases {
		if got := widthFor(c.bpv, c.vals); got != c.want {
			t.Errorf("widthFor(%d, %v) = %d, want %d", c.bpv, c.vals, got, c.want)
		}
	}
}

// TestCodecRoundTripProperty encodes random batches — including
// annotation-style columns with values far above the domain and negative
// values — and checks a decode returns the frame and values exactly.
func TestCodecRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 500; iter++ {
		bpv := 1 + rng.Intn(64)
		arity := 1 + rng.Intn(5)
		count := rng.Intn(50)
		vals := make([]int64, count*arity)
		for i := range vals {
			switch rng.Intn(5) {
			case 0: // domain value
				vals[i] = rng.Int63n(1 << uint(minInt(bpv, 62)))
			case 1: // annotation value, possibly far above the domain
				vals[i] = rng.Int63()
			case 2: // negative annotation (e.g. a SUM of negatives)
				vals[i] = -rng.Int63()
			case 3:
				vals[i] = 0
			case 4:
				vals[i] = int64(rng.Intn(3)) - 1
			}
		}
		cluster, round, seq := rng.Uint32(), rng.Uint32(), rng.Uint32()
		sender := rng.Uint32() % 1000
		dest := int32(rng.Intn(100) - 1)
		kind := rng.Uint32() % 64

		w := widthFor(bpv, vals)
		enc := appendDataFrame(nil, cluster, round, seq, sender, dest, kind, arity, w, vals)

		// Strip the length prefix, as the reader does.
		if len(enc) < 4 {
			t.Fatal("frame too short")
		}
		f, err := decodeFrame(enc[4:])
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if f.typ != frameData {
			t.Fatalf("type %d", f.typ)
		}
		d := f.data
		if d.Cluster != cluster || d.Round != round || d.Seq != seq || d.Sender != sender ||
			d.Dest != dest || d.Kind != kind || int(d.Arity) != arity || d.Width != w || int(d.Count) != count {
			t.Fatalf("header mismatch: %+v", d)
		}
		got := d.decodeValues(nil)
		if count == 0 {
			if len(got) != 0 {
				t.Fatalf("empty batch decoded %d values", len(got))
			}
			continue
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("iter %d: value %d: got %d, want %d (width %d, bpv %d)", iter, i, got[i], vals[i], w, bpv)
			}
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestCodecControlRoundTrip covers the hello, round-end and ctrl frames.
func TestCodecControlRoundTrip(t *testing.T) {
	enc := appendHello(nil, 7, 2)
	f, err := decodeFrame(enc[4:])
	if err != nil || f.typ != frameHello || f.rank != 7 || f.epoch != 2 {
		t.Fatalf("hello round-trip: %+v, %v", f, err)
	}
	enc = appendRoundEnd(nil, 3, 9, 42)
	f, err = decodeFrame(enc[4:])
	if err != nil || f.typ != frameRoundEnd || f.cluster != 3 || f.round != 9 || f.frames != 42 {
		t.Fatalf("round-end round-trip: %+v, %v", f, err)
	}
	enc = appendCtrl(nil, ctrlOutcome, 5, ctrlOK)
	f, err = decodeFrame(enc[4:])
	if err != nil || f.typ != frameCtrl || f.ckind != ctrlOutcome || f.gen != 5 || f.flags != ctrlOK {
		t.Fatalf("ctrl outcome round-trip: %+v, %v", f, err)
	}
	enc = appendCtrl(nil, ctrlReady, 6, 1)
	f, err = decodeFrame(enc[4:])
	if err != nil || f.typ != frameCtrl || f.ckind != ctrlReady || f.gen != 6 || f.flags != 1 {
		t.Fatalf("ctrl ready round-trip: %+v, %v", f, err)
	}
	if _, err := decodeFrame([]byte{frameCtrl, 99, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Fatalf("unknown ctrl kind must be rejected")
	}
}

// TestDecodeMalformed feeds systematically broken frames and requires an
// error — never a panic, never a silent success.
func TestDecodeMalformed(t *testing.T) {
	valid := appendDataFrame(nil, 1, 2, 0, 3, 4, 5, 2, 2, []int64{10, 20, 30, 40})[4:]
	cases := map[string][]byte{
		"empty":           {},
		"unknown type":    {99},
		"hello short":     {frameHello, 1, 2},
		"hello bad magic": append([]byte{frameHello}, make([]byte, 12)...),
		"round-end short": {frameRoundEnd, 1},
		"data no header":  {frameData, 1, 2, 3},
		"data truncated":  valid[:len(valid)-1],
		"data extra byte": append(bytes.Clone(valid), 0),
		"data zero arity": mutate(valid, 24+1, 0, 0), // arity u16 at body offset 1+24
		"data width 0":    mutate(valid, 26+1, 0),
		"data width 9":    mutate(valid, 26+1, 9),
		"data dest -2":    mutate(valid, 16+1, 0xfe, 0xff, 0xff, 0xff),
		"data count lies": mutate(valid, 28+1, 0xff, 0xff),
	}
	for name, body := range cases {
		if _, err := decodeFrame(body); err == nil {
			t.Errorf("%s: decode accepted malformed frame", name)
		}
	}
	if _, err := decodeFrame(valid); err != nil {
		t.Fatalf("control: valid frame rejected: %v", err)
	}
}

// mutate returns a copy of b with the bytes at off replaced.
func mutate(b []byte, off int, repl ...byte) []byte {
	c := bytes.Clone(b)
	copy(c[off:], repl)
	return c
}
