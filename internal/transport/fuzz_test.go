package transport

import "testing"

// FuzzFrameDecode is the decoder's safety contract: arbitrary bytes must
// either decode into a well-formed frame or return an error — never
// panic, never over-read. Seeds cover every frame type plus a data frame
// with annotation-width values; the checked-in corpus under
// testdata/fuzz/FuzzFrameDecode pins regression inputs.
func FuzzFrameDecode(f *testing.F) {
	f.Add(appendHello(nil, 3, 0)[4:])
	f.Add(appendRoundEnd(nil, 1, 2, 3)[4:])
	f.Add(appendCtrl(nil, ctrlOutcome, 1, ctrlOK)[4:])
	f.Add(appendCtrl(nil, ctrlReady, 2, 1)[4:])
	f.Add(appendDataFrame(nil, 1, 2, 0, 3, -1, 0, 2, 2, []int64{1, 2, 3, 4})[4:])
	f.Add(appendDataFrame(nil, 0, 0, 0, 0, 5, 1, 3, 8, []int64{-1, 1 << 40, 7})[4:])
	f.Add([]byte{})
	f.Add([]byte{frameData})
	f.Fuzz(func(t *testing.T, body []byte) {
		fr, err := decodeFrame(body)
		if err != nil {
			return
		}
		if fr.typ == frameData {
			// A frame the decoder accepted must have a consistent payload:
			// decoding its values must stay in bounds.
			vals := fr.data.decodeValues(nil)
			if len(vals) != int(fr.data.Count)*int(fr.data.Arity) {
				t.Fatalf("decoded %d values, header declares %d×%d", len(vals), fr.data.Count, fr.data.Arity)
			}
		}
	})
}
