package transport

import "net"

// FreeLoopbackAddrs reserves n distinct loopback TCP addresses by
// listening on port 0 and immediately releasing the listeners. It is a
// convenience for tests and single-machine drivers that need to hand the
// same address list to every rank before any rank has started; the tiny
// window in which the kernel could reassign a released port is absorbed
// by Dial's bind/retry error path.
func FreeLoopbackAddrs(n int) ([]string, error) {
	addrs := make([]string, n)
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns = append(lns, ln)
		addrs[i] = ln.Addr().String()
	}
	return addrs, nil
}
