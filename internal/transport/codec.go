// Package transport moves the engine's rounds between servers. It provides
// the two implementations of the engine's delivery seam
// (engine.Transport):
//
//   - Inproc: today's sharded, zero-copy, in-memory delivery — the default.
//   - TCP sessions (Dial): N real OS processes (or N goroutines over real
//     loopback sockets) executing the same strategy in SPMD style, with
//     every charged bit serialized through the wire codec below and every
//     inbox assembled exclusively from received frames.
//
// The distributed protocol is replicated compute, partitioned wire: every
// rank runs the full strategy deterministically (all p model servers'
// round functions and compute phases), but each model server's emissions
// are serialized and sent by exactly one owning rank, to all ranks
// (itself included, over a real socket). Inboxes are rebuilt only from
// received frames, so the wire is load-bearing for correctness — a
// dropped or corrupted frame changes the answer, it does not just skew a
// counter. RoundStats are recomputed identically at every rank from the
// assembled inboxes, so no statistics exchange is needed and every rank
// produces the identical Report.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Frame types. Every frame on the wire is a little-endian u32 length
// prefix (length of everything after itself) followed by a type byte and
// a type-specific body.
const (
	frameHello    byte = 1 // body: magic u32, version u32, rank u32, epoch u32
	frameData     byte = 2 // body: dataHeader + payload
	frameRoundEnd byte = 3 // body: cluster u32, round u32, frames u32
	frameCtrl     byte = 4 // body: kind u32, gen u32, flags u32
)

// Control-frame kinds (frameCtrl). They carry the recovery supervisor's
// cross-rank barriers: after every attempt each rank announces its outcome
// (ctrlOutcome, flags bit 0 = succeeded), and before a replay each rank
// announces it has rewound its receive state (ctrlReady). A ctrlReady also
// advances the connection's epoch — every data/round-end frame that
// precedes it on the connection belongs to the abandoned attempt and is
// discarded by the receiver.
const (
	ctrlOutcome uint32 = 1
	ctrlReady   uint32 = 2
)

// ctrlOK is the ctrlOutcome flag bit announcing a successful attempt.
const ctrlOK uint32 = 1

const (
	helloMagic uint32 = 0x4d504351 // "MPCQ"
	// helloVersion 2 added the hello epoch field and the frameCtrl frame
	// type (recovery barriers); v1 peers are refused at the handshake.
	helloVersion uint32 = 2
)

// dataHeaderLen is the fixed part of a data frame's body: cluster(4),
// round(4), seq(4), sender(4), dest(4), kind(4), arity(2), width(1),
// reserved(1), count(4).
const dataHeaderLen = 32

// DataFrameOverheadBytes is the full framing overhead of one data frame:
// the 4-byte length prefix, the type byte, and the fixed header. This is
// the constant the README's accounting section documents: wire bytes of a
// round = Σ payload + DataFrameOverheadBytes × frames + round-end/hello
// control frames.
const DataFrameOverheadBytes = 4 + 1 + dataHeaderLen

// maxFrameLen bounds a frame body so a corrupt or hostile length prefix
// cannot make the reader allocate unboundedly (64 MiB ≫ any real round
// batch in this codebase).
const maxFrameLen = 1 << 26

// errMalformed is wrapped by every decode error, so tests can assert the
// decoder rejects (rather than panics on) arbitrary input.
var errMalformed = errors.New("transport: malformed frame")

// dataFrame is one decoded columnar batch in flight: the emissions of one
// model server (Sender) to one destination (Dest, or -1 for broadcast)
// within round Round of cluster Cluster. Seq numbers the frames a rank
// sends for one (cluster, round), letting receivers drop duplicates when
// a failed write is retried with a full resend. Payload holds
// Count×Arity values, little-endian, Width bytes each; it aliases the
// decode input buffer.
type dataFrame struct {
	Cluster uint32
	Round   uint32
	Seq     uint32
	Sender  uint32
	Dest    int32
	Kind    uint32
	Arity   uint16
	Width   uint8
	Count   uint32
	Payload []byte
}

// frame is the decoded union of all frame types; Typ selects which fields
// are meaningful.
type frame struct {
	typ byte

	data dataFrame // frameData

	rank  uint32 // frameHello
	epoch uint32 // frameHello: sender's attempt epoch at dial time

	cluster uint32 // frameRoundEnd
	round   uint32 // frameRoundEnd
	frames  uint32 // frameRoundEnd

	ckind uint32 // frameCtrl: ctrlOutcome or ctrlReady
	gen   uint32 // frameCtrl: the attempt epoch the barrier belongs to
	flags uint32 // frameCtrl: ctrlOutcome payload (ctrlOK bit)
}

// widthFor picks the per-value byte width of one batch: the compact width
// ⌈bitsPerValue/8⌉ when every value fits it, widened when values exceed
// the domain (annotation columns — a SUM can outgrow ⌈log₂ n⌉ bits), and
// the full 8 bytes when any value is negative. Widening keeps the wire ≥
// the model's charge: payload bits are always ≥ Count×Arity×bitsPerValue.
func widthFor(bitsPerValue int, vals []int64) uint8 {
	w := uint(bitsPerValue+7) / 8
	if w < 1 {
		w = 1
	}
	if w > 8 {
		w = 8
	}
	var maxv int64
	for _, v := range vals {
		if v < 0 {
			return 8
		}
		if v > maxv {
			maxv = v
		}
	}
	for w < 8 && maxv >= int64(1)<<(8*w) {
		w++
	}
	return uint8(w)
}

// appendDataFrame serializes one batch as a data frame onto dst. width
// must come from widthFor for these vals (values are truncated to width
// bytes; widthFor guarantees that is lossless).
func appendDataFrame(dst []byte, cluster, round, seq, sender uint32, dest int32, kind uint32, arity int, width uint8, vals []int64) []byte {
	count := len(vals) / arity
	payload := count * arity * int(width)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(1+dataHeaderLen+payload))
	dst = append(dst, frameData)
	dst = binary.LittleEndian.AppendUint32(dst, cluster)
	dst = binary.LittleEndian.AppendUint32(dst, round)
	dst = binary.LittleEndian.AppendUint32(dst, seq)
	dst = binary.LittleEndian.AppendUint32(dst, sender)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(dest))
	dst = binary.LittleEndian.AppendUint32(dst, kind)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(arity))
	dst = append(dst, width, 0)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(count))
	for _, v := range vals {
		u := uint64(v)
		for b := uint8(0); b < width; b++ {
			dst = append(dst, byte(u>>(8*b)))
		}
	}
	return dst
}

// appendRoundEnd serializes the barrier frame a rank sends after the last
// data frame of one (cluster, round): frames declares how many data
// frames preceded it, so receivers know when the round is complete.
func appendRoundEnd(dst []byte, cluster, round, frames uint32) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, 1+12)
	dst = append(dst, frameRoundEnd)
	dst = binary.LittleEndian.AppendUint32(dst, cluster)
	dst = binary.LittleEndian.AppendUint32(dst, round)
	dst = binary.LittleEndian.AppendUint32(dst, frames)
	return dst
}

// appendHello serializes the handshake frame, the first frame on every
// connection: it names the dialing rank (all later frames on the
// connection are attributed to it), pins the protocol version, and carries
// the dialer's attempt epoch so a connection opened mid-replay starts at
// the right generation.
func appendHello(dst []byte, rank, epoch uint32) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, 1+16)
	dst = append(dst, frameHello)
	dst = binary.LittleEndian.AppendUint32(dst, helloMagic)
	dst = binary.LittleEndian.AppendUint32(dst, helloVersion)
	dst = binary.LittleEndian.AppendUint32(dst, rank)
	dst = binary.LittleEndian.AppendUint32(dst, epoch)
	return dst
}

// appendCtrl serializes one recovery-barrier frame (kind ctrlOutcome or
// ctrlReady) for attempt epoch gen.
func appendCtrl(dst []byte, kind, gen, flags uint32) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, 1+12)
	dst = append(dst, frameCtrl)
	dst = binary.LittleEndian.AppendUint32(dst, kind)
	dst = binary.LittleEndian.AppendUint32(dst, gen)
	dst = binary.LittleEndian.AppendUint32(dst, flags)
	return dst
}

// decodeFrame parses one frame body (everything after the length prefix).
// Malformed input of any shape returns an error wrapping errMalformed —
// never a panic — which the fuzz target FuzzFrameDecode enforces.
func decodeFrame(body []byte) (frame, error) {
	var f frame
	if len(body) < 1 {
		return f, fmt.Errorf("%w: empty body", errMalformed)
	}
	f.typ = body[0]
	rest := body[1:]
	switch f.typ {
	case frameHello:
		if len(rest) != 16 {
			return f, fmt.Errorf("%w: hello body is %d bytes, want 16", errMalformed, len(rest))
		}
		if magic := binary.LittleEndian.Uint32(rest[0:4]); magic != helloMagic {
			return f, fmt.Errorf("%w: bad hello magic %#x", errMalformed, magic)
		}
		if v := binary.LittleEndian.Uint32(rest[4:8]); v != helloVersion {
			return f, fmt.Errorf("%w: protocol version %d, want %d", errMalformed, v, helloVersion)
		}
		f.rank = binary.LittleEndian.Uint32(rest[8:12])
		f.epoch = binary.LittleEndian.Uint32(rest[12:16])
		return f, nil
	case frameCtrl:
		if len(rest) != 12 {
			return f, fmt.Errorf("%w: ctrl body is %d bytes, want 12", errMalformed, len(rest))
		}
		f.ckind = binary.LittleEndian.Uint32(rest[0:4])
		f.gen = binary.LittleEndian.Uint32(rest[4:8])
		f.flags = binary.LittleEndian.Uint32(rest[8:12])
		if f.ckind != ctrlOutcome && f.ckind != ctrlReady {
			return f, fmt.Errorf("%w: unknown ctrl kind %d", errMalformed, f.ckind)
		}
		return f, nil
	case frameRoundEnd:
		if len(rest) != 12 {
			return f, fmt.Errorf("%w: round-end body is %d bytes, want 12", errMalformed, len(rest))
		}
		f.cluster = binary.LittleEndian.Uint32(rest[0:4])
		f.round = binary.LittleEndian.Uint32(rest[4:8])
		f.frames = binary.LittleEndian.Uint32(rest[8:12])
		return f, nil
	case frameData:
		if len(rest) < dataHeaderLen {
			return f, fmt.Errorf("%w: data header is %d bytes, want %d", errMalformed, len(rest), dataHeaderLen)
		}
		d := &f.data
		d.Cluster = binary.LittleEndian.Uint32(rest[0:4])
		d.Round = binary.LittleEndian.Uint32(rest[4:8])
		d.Seq = binary.LittleEndian.Uint32(rest[8:12])
		d.Sender = binary.LittleEndian.Uint32(rest[12:16])
		d.Dest = int32(binary.LittleEndian.Uint32(rest[16:20]))
		d.Kind = binary.LittleEndian.Uint32(rest[20:24])
		d.Arity = binary.LittleEndian.Uint16(rest[24:26])
		d.Width = rest[26]
		d.Count = binary.LittleEndian.Uint32(rest[28:32])
		if d.Arity < 1 {
			return f, fmt.Errorf("%w: zero arity", errMalformed)
		}
		if d.Width < 1 || d.Width > 8 {
			return f, fmt.Errorf("%w: width %d out of range [1,8]", errMalformed, d.Width)
		}
		if d.Dest < -1 {
			return f, fmt.Errorf("%w: destination %d", errMalformed, d.Dest)
		}
		want := uint64(d.Count) * uint64(d.Arity) * uint64(d.Width)
		got := uint64(len(rest) - dataHeaderLen)
		if want != got {
			return f, fmt.Errorf("%w: payload is %d bytes, header declares %d", errMalformed, got, want)
		}
		d.Payload = rest[dataHeaderLen:]
		return f, nil
	default:
		return f, fmt.Errorf("%w: unknown frame type %d", errMalformed, f.typ)
	}
}

// decodeValues appends the frame's Count×Arity values onto dst. Widths
// below 8 are zero-extended (widthFor never narrows a negative value);
// width 8 is the identity encoding of int64.
func (d *dataFrame) decodeValues(dst []int64) []int64 {
	w := int(d.Width)
	n := int(d.Count) * int(d.Arity)
	for i := 0; i < n; i++ {
		var u uint64
		off := i * w
		for b := 0; b < w; b++ {
			u |= uint64(d.Payload[off+b]) << (8 * b)
		}
		dst = append(dst, int64(u))
	}
	return dst
}
