package transport

import "mpcquery/internal/engine"

// Inproc returns the in-process transport: round delivery via
// engine.DeliverLocal, the sharded zero-copy path the engine uses when no
// transport is attached at all. It exists so code can be written against
// the Transport seam unconditionally and still get the default behavior
// (and so tests can assert that the seam itself is free: a cluster with
// the Inproc transport is bit- and allocation-identical to a plain one).
func Inproc() engine.Transport { return inprocTransport{} }

type inprocTransport struct{}

func (inprocTransport) Attach(p, bitsPerValue int) (engine.Link, error) {
	return inprocLink{}, nil
}

type inprocLink struct{}

func (inprocLink) Deliver(io *engine.DeliveryRound) error {
	engine.DeliverLocal(io)
	return nil
}

func (inprocLink) Close() error { return nil }
