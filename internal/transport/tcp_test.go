package transport

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"mpcquery/internal/engine"
)

// snapshotCluster renders everything a delivery influences — every
// server's inbox contents (kinds, arities, exact values, span structure)
// and every round's statistics — so two runs can be compared for
// bit-identity.
func snapshotCluster(c *engine.Cluster) string {
	var b strings.Builder
	for s := 0; s < c.P(); s++ {
		ib := c.Inbox(s)
		fmt.Fprintf(&b, "server %d: %d tuples, %d batches\n", s, ib.NumTuples(), ib.NumBatches())
		ib.EachBatch(func(bt engine.Batch) {
			fmt.Fprintf(&b, "  k%d a%d %v\n", bt.Kind, bt.Arity, bt.Vals)
		})
	}
	for i, rs := range c.Rounds() {
		fmt.Fprintf(&b, "round %d %q: max=%x total=%x mt=%d tt=%d abort=%t\n",
			i, rs.Name, rs.MaxRecvBits, rs.TotalRecvBits, rs.MaxRecvTuples, rs.TotalRecvTuples, rs.Aborted)
	}
	fmt.Fprintf(&b, "totalbits=%x maxload=%x", c.TotalBits(), c.MaxLoadBits())
	return b.String()
}

// exerciseCluster drives a small but representative engine program:
// unicast shuffles, a broadcast round, an empty round (barrier only), and
// a round carrying annotation-width and negative values that force the
// codec's width-widening path.
func exerciseCluster(tr engine.Transport) (string, float64) {
	const p, bpv = 5, 16
	c := engine.NewClusterNet(tr, p, bpv)
	defer c.Release()
	for s := 0; s < p; s++ {
		c.Seed(s, 0, []int64{int64(s), int64(s * 10)})
		c.SeedBatch(s, 1, 1, []int64{int64(100 + s), int64(200 + s)})
	}
	c.Round("shuffle", func(s int, in *engine.Inbox, em *engine.Emitter) {
		in.Each(func(kind int, tu []int64) {
			if kind == 0 {
				em.EmitTuple((int(tu[0])+1)%p, 0, tu)
			} else {
				em.EmitBatch((s+2)%p, 1, 1, tu)
			}
		})
		if s == 0 {
			em.EmitTuple(engine.Broadcast, 2, []int64{999, 42})
		}
	})
	c.Round("wide-values", func(s int, in *engine.Inbox, em *engine.Emitter) {
		// Annotation-style values: far above the 16-bit domain, and
		// negative — the wire must widen, never truncate.
		em.EmitTuple((s+1)%p, 3, []int64{int64(s), 1 << 40, -int64(s) - 1})
	})
	c.Round("empty", func(s int, in *engine.Inbox, em *engine.Emitter) {})
	c.Round("fanin", func(s int, in *engine.Inbox, em *engine.Emitter) {
		in.Each(func(kind int, tu []int64) {
			if kind == 3 {
				em.EmitTuple(0, 4, tu)
			}
		})
	})
	return snapshotCluster(c), c.TotalBits()
}

// TestSessionMatchesLocalDelivery is the transport's core contract at the
// engine level: the same program through 3 TCP-loopback ranks produces,
// at every rank, inboxes and statistics bit-identical to the in-process
// run — and the ranks' summed charged bits equal the engine's TotalBits.
func TestSessionMatchesLocalDelivery(t *testing.T) {
	wantSnap, wantBits := exerciseCluster(nil)

	inprocSnap, inprocBits := exerciseCluster(Inproc())
	if inprocSnap != wantSnap || inprocBits != wantBits {
		t.Fatalf("Inproc transport diverged from nil transport:\n%s\nvs\n%s", inprocSnap, wantSnap)
	}

	const ranks = 3
	addrs, err := FreeLoopbackAddrs(ranks)
	if err != nil {
		t.Fatal(err)
	}
	snaps := make([]string, ranks)
	bits := make([]float64, ranks)
	charged := make([]int64, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			s, err := Dial(r, addrs, nil)
			if err != nil {
				errs[r] = err
				return
			}
			defer s.Close()
			snaps[r], bits[r] = exerciseCluster(s)
			charged[r] = s.Stats().ChargedBits()
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	var chargedSum int64
	for r := 0; r < ranks; r++ {
		if snaps[r] != wantSnap {
			t.Errorf("rank %d diverged from local delivery:\n%s\nvs\n%s", r, snaps[r], wantSnap)
		}
		if bits[r] != wantBits {
			t.Errorf("rank %d TotalBits = %v, want %v", r, bits[r], wantBits)
		}
		chargedSum += charged[r]
	}
	if float64(chargedSum) != wantBits {
		t.Errorf("summed wire-charged bits = %d, want TotalBits %v", chargedSum, wantBits)
	}
}

// TestSessionSingleRank runs the degenerate 1-rank session: every
// delivery still crosses a real loopback socket.
func TestSessionSingleRank(t *testing.T) {
	addrs, err := FreeLoopbackAddrs(1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Dial(0, addrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	wantSnap, wantBits := exerciseCluster(nil)
	snap, bits := exerciseCluster(s)
	if snap != wantSnap || bits != wantBits {
		t.Fatalf("single-rank session diverged:\n%s\nvs\n%s", snap, wantSnap)
	}
	st := s.Stats()
	if float64(st.ChargedBits()) != wantBits {
		t.Errorf("charged bits %d, want %v", st.ChargedBits(), wantBits)
	}
	if st.WireBytes == 0 || st.DataFrames == 0 {
		t.Errorf("no wire traffic recorded: %+v", st)
	}
	// Wire-accounting inequality: the model's bits never exceed the
	// billed payload bits (values are byte-padded, never truncated).
	if st.ChargedBits() > st.BilledPayloadBytes*8 {
		t.Errorf("charged %d bits > billed payload %d bits", st.ChargedBits(), st.BilledPayloadBytes*8)
	}
}

// TestRoundTimeout exercises the barrier failure path: a rank whose peer
// never delivers its round fails with ErrPeerUnavailable (surfaced as an
// engine panic wrapping the error), rather than hanging.
func TestRoundTimeout(t *testing.T) {
	addrs, err := FreeLoopbackAddrs(2)
	if err != nil {
		t.Fatal(err)
	}
	opts := &Options{RoundTimeout: 300 * time.Millisecond}
	var wg sync.WaitGroup
	var s0, s1 *Session
	var e0, e1 error
	wg.Add(2)
	go func() { defer wg.Done(); s0, e0 = Dial(0, addrs, opts) }()
	go func() { defer wg.Done(); s1, e1 = Dial(1, addrs, opts) }()
	wg.Wait()
	if e0 != nil || e1 != nil {
		t.Fatalf("dial: %v / %v", e0, e1)
	}
	defer s0.Close()
	defer s1.Close()

	// Rank 1 attaches and rounds; rank 0 never does — rank 1 must time
	// out with the typed error.
	err = func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				var ok bool
				if err, ok = r.(error); !ok {
					err = fmt.Errorf("%v", r)
				}
			}
		}()
		c := engine.NewClusterNet(s1, 4, 8)
		defer c.Release()
		c.Seed(0, 0, []int64{1})
		c.Round("stranded", func(s int, in *engine.Inbox, em *engine.Emitter) {
			em.EmitTuple((s+1)%4, 0, []int64{int64(s)})
		})
		return nil
	}()
	if !errors.Is(err, ErrPeerUnavailable) {
		t.Fatalf("stranded round returned %v, want ErrPeerUnavailable", err)
	}
}

// TestDialUnreachable pins the dial-side retry budget: a peer that never
// listens yields ErrPeerUnavailable after bounded attempts.
func TestDialUnreachable(t *testing.T) {
	addrs, err := FreeLoopbackAddrs(2)
	if err != nil {
		t.Fatal(err)
	}
	// Rank 1's address is reserved but nobody listens on it.
	opts := &Options{DialAttempts: 3, DialBackoff: 10 * time.Millisecond}
	_, err = Dial(0, addrs, opts)
	if !errors.Is(err, ErrPeerUnavailable) {
		t.Fatalf("dial to dead peer returned %v, want ErrPeerUnavailable", err)
	}
}

// TestAttachAfterClose verifies the session refuses new clusters once
// closed.
func TestAttachAfterClose(t *testing.T) {
	addrs, err := FreeLoopbackAddrs(1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Dial(0, addrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := s.Attach(4, 8); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("attach after close returned %v, want ErrSessionClosed", err)
	}
}

// TestOwnedRange checks the block partition covers [0,p) exactly, in
// order, for every rank count.
func TestOwnedRange(t *testing.T) {
	for _, p := range []int{1, 2, 5, 16, 64, 97} {
		for _, n := range []int{1, 2, 3, 4, 7} {
			prev := 0
			for r := 0; r < n; r++ {
				lo, hi := ownedRange(r, n, p)
				if lo != prev || hi < lo {
					t.Fatalf("p=%d n=%d rank %d: range [%d,%d) does not continue from %d", p, n, r, lo, hi, prev)
				}
				prev = hi
			}
			if prev != p {
				t.Fatalf("p=%d n=%d: partition covers [0,%d), want [0,%d)", p, n, prev, p)
			}
		}
	}
}
