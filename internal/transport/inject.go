package transport

import "time"

// FaultAction is one wire-level fault a FaultInjector can order for a
// single write attempt. The session applies the action and lets its normal
// failure handling absorb it: a drop or reset surfaces as a failed write
// (retried with a full resend, deduplicated by sequence number at the
// receiver), a duplicate is shipped twice (deduplicated likewise), and a
// delay just stalls the writer.
type FaultAction int

const (
	// FaultNone: write normally.
	FaultNone FaultAction = iota
	// FaultDrop: tear the write — ship only a prefix of the frame stream,
	// then kill the connection, exactly what a mid-stream network failure
	// looks like to both ends.
	FaultDrop
	// FaultDup: ship the complete frame stream twice.
	FaultDup
	// FaultReset: kill the connection before writing anything, forcing a
	// redial on the next attempt.
	FaultReset
)

// FaultInjector decides, deterministically, which faults to inject where.
// Implementations must be pure functions of their arguments (plus a seed
// fixed at construction): the chaos harness relies on a fault schedule
// being exactly reproducible, and the SPMD contract relies on every rank
// computing the same schedule. internal/transport/fault provides the
// standard implementation; a session installs one via SetFaultInjector.
type FaultInjector interface {
	// WriteFault is consulted before each attempt to ship one round's frame
	// stream from rank to peer. epoch is the session's attempt epoch (0
	// until a recovery rewind). The returned delay, if positive, is slept
	// before the action is applied. Control (barrier) frames are never
	// offered for injection — only data writes are.
	WriteFault(rank, peer, epoch int, cluster, round uint32, attempt int) (FaultAction, time.Duration)

	// DeliverFault is consulted once at the start of each cluster round on
	// rank. A positive delay makes the rank a straggler for the round; a
	// non-nil error simulates the rank crashing at that point — the round
	// fails with ErrPeerUnavailable before anything is sent, and peers
	// observe the rank going silent.
	DeliverFault(rank, epoch int, cluster, round uint32) (time.Duration, error)
}
