// Package fault provides deterministic fault injection for the transport
// layer: a seeded schedule of frame drops, delays, duplicate deliveries,
// connection resets, rank crashes and slow-peer straggling. Every decision
// is a pure function of (seed, rank, peer, cluster, round) — no clock, no
// global RNG — so a chaos run is exactly reproducible, every rank computes
// the identical schedule from shared configuration, and a recovery replay
// can be exempted (faults fire only at attempt epoch 0) so it provably
// converges. cmd/mpcload's -chaos harness and the root chaos matrix tests
// are built on this package.
package fault

import (
	"fmt"
	"time"

	"mpcquery/internal/engine"
	"mpcquery/internal/transport"
)

// Plan is a deterministic fault schedule. Rates are per-10000 write
// attempts (so 100 = 1%); each (rank, peer, cluster, round) site draws an
// independent, seeded, reproducible hash. The zero Plan (with CrashRank
// and StragglerRank left -1 via NewPlan) injects nothing.
//
// Wire faults (drop/dup/reset/delay) fire only on a write's first attempt
// and only at attempt epoch 0: retries of a torn write must be allowed to
// succeed (that is the machinery under test), and a recovery replay must
// run fault-free or recovery could never converge. The crash fires once,
// at exactly (CrashRank, CrashCluster, CrashRound), epoch 0.
type Plan struct {
	// Seed keys every decision hash. Two plans with different seeds fault
	// different sites at the same rates.
	Seed int64

	// DropPer10k tears the write: a prefix of the frame stream is sent,
	// then the connection dies — the peer sees a truncated stream, the
	// writer redials and resends, sequence numbers dedupe.
	DropPer10k int
	// DupPer10k ships the round's frame stream twice back-to-back;
	// receiver-side dedup must absorb it.
	DupPer10k int
	// ResetPer10k kills the connection before anything is written,
	// forcing the redial path.
	ResetPer10k int
	// DelayPer10k stalls the write by Delay.
	DelayPer10k int
	// Delay is the stall applied to delayed writes (and the straggler's
	// per-round lag). Default 0 means no stall even when scheduled.
	Delay time.Duration

	// CrashRank, when >= 0, makes exactly that rank fail its delivery at
	// (CrashCluster, CrashRound) with ErrPeerUnavailable — the
	// deterministic stand-in for a process dying mid-run. With recovery
	// enabled the run replays at epoch 1, where the crash does not re-fire.
	CrashRank    int
	CrashCluster uint32
	CrashRound   uint32

	// StragglerRank, when >= 0, sleeps Delay at the start of every round
	// on that rank — the persistent slow peer of a heterogeneous fleet.
	StragglerRank int
}

// NewPlan returns a Plan with the given seed and no faults scheduled
// (crash and straggler disabled, all rates zero). Callers fill in the
// faults they want.
func NewPlan(seed int64) *Plan {
	return &Plan{Seed: seed, CrashRank: -1, StragglerRank: -1}
}

// mix is a splitmix64 finalizer round: a high-quality avalanche of one
// 64-bit word, the standard trick for turning coordinates into an
// independent-looking hash without any RNG state.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// draw hashes a decision site into [0, 10000). tag separates the fault
// kinds so e.g. a drop and a dup never correlate.
func (p *Plan) draw(tag uint64, rank, peer int, cluster, round uint32) int {
	h := mix(uint64(p.Seed) ^ tag)
	h = mix(h ^ uint64(rank)<<32 ^ uint64(peer))
	h = mix(h ^ uint64(cluster)<<32 ^ uint64(round))
	return int(h % 10000)
}

const (
	tagDrop  = 0x64726f70 // "drop"
	tagDup   = 0x6475700a // "dup"
	tagReset = 0x72737400 // "rst"
	tagDelay = 0x646c6179 // "dlay"
)

// WriteFault implements transport.FaultInjector.
func (p *Plan) WriteFault(rank, peer, epoch int, cluster, round uint32, attempt int) (transport.FaultAction, time.Duration) {
	if p == nil || epoch != 0 || attempt != 0 {
		return transport.FaultNone, 0
	}
	var delay time.Duration
	if p.DelayPer10k > 0 && p.Delay > 0 && p.draw(tagDelay, rank, peer, cluster, round) < p.DelayPer10k {
		delay = p.Delay
	}
	if p.DropPer10k > 0 && p.draw(tagDrop, rank, peer, cluster, round) < p.DropPer10k {
		return transport.FaultDrop, delay
	}
	if p.DupPer10k > 0 && p.draw(tagDup, rank, peer, cluster, round) < p.DupPer10k {
		return transport.FaultDup, delay
	}
	if p.ResetPer10k > 0 && p.draw(tagReset, rank, peer, cluster, round) < p.ResetPer10k {
		return transport.FaultReset, delay
	}
	return transport.FaultNone, delay
}

// ErrInjectedCrash is the cause carried by a Plan-scheduled rank crash.
// The transport wraps it in ErrPeerUnavailable, so recovery handles it
// exactly like a real dead peer.
var ErrInjectedCrash = crashError{}

type crashError struct{}

func (crashError) Error() string { return "fault: scheduled rank crash" }

// DeliverFault implements transport.FaultInjector.
func (p *Plan) DeliverFault(rank, epoch int, cluster, round uint32) (time.Duration, error) {
	if p == nil || epoch != 0 {
		return 0, nil
	}
	var delay time.Duration
	if p.StragglerRank == rank && p.Delay > 0 {
		delay = p.Delay
	}
	if p.CrashRank == rank && p.CrashCluster == cluster && p.CrashRound == round {
		return delay, ErrInjectedCrash
	}
	return delay, nil
}

// Wrap installs the plan on a transport. A *transport.Session gets the
// plan as its fault injector (returning the session itself — the wire
// faults flow through the real retry/dedup/recovery machinery). Any other
// transport — including the in-process default — is wrapped so that
// DeliverFault's crash/straggle schedule still applies before each
// delivery; wire-level actions are meaningless without a wire and are
// skipped. Wrap(nil, plan) returns a faulty in-process transport stand-in
// (nil engine.Transport semantics are preserved by returning nil when the
// plan is nil too).
func Wrap(t engine.Transport, p *Plan) engine.Transport {
	if p == nil {
		return t
	}
	if s, ok := t.(*transport.Session); ok {
		s.SetFaultInjector(p)
		return s
	}
	return &localTransport{inner: t, plan: p}
}

// localTransport applies a Plan's delivery-level faults (crash,
// straggler) to a non-session transport, including the nil (in-process)
// one. It mirrors the session's attempt-epoch semantics via AdvanceEpoch
// so the recovery supervisor can replay past an injected crash without a
// wire.
type localTransport struct {
	inner engine.Transport
	plan  *Plan
	epoch int
	rank  int

	nextCluster uint32
}

// AdvanceEpoch moves the transport to the next attempt epoch (Plan faults
// fire only at epoch 0) and rewinds cluster identities, mirroring
// Session.Rewind for the in-process case.
func (lt *localTransport) AdvanceEpoch() {
	lt.epoch++
	lt.nextCluster = 0
}

// Attach implements engine.Transport.
func (lt *localTransport) Attach(p, bitsPerValue int) (engine.Link, error) {
	id := lt.nextCluster
	lt.nextCluster++
	var inner engine.Link
	if lt.inner != nil {
		l, err := lt.inner.Attach(p, bitsPerValue)
		if err != nil {
			return nil, err
		}
		inner = l
	}
	return &localLink{lt: lt, id: id, inner: inner}, nil
}

type localLink struct {
	lt    *localTransport
	id    uint32
	inner engine.Link
}

func (l *localLink) Close() error {
	if l.inner != nil {
		return l.inner.Close()
	}
	return nil
}

func (l *localLink) Deliver(io *engine.DeliveryRound) error {
	lt := l.lt
	delay, crash := lt.plan.DeliverFault(lt.rank, lt.epoch, l.id, uint32(io.Round))
	if delay > 0 {
		time.Sleep(delay)
	}
	if crash != nil {
		// Same error shape as the session's injected crash, so the
		// recovery supervisor treats both identically.
		return fmt.Errorf("%w: rank %d: cluster %d round %d: injected crash: %w",
			transport.ErrPeerUnavailable, lt.rank, l.id, io.Round, crash)
	}
	if l.inner != nil {
		return l.inner.Deliver(io)
	}
	engine.DeliverLocal(io)
	return nil
}
