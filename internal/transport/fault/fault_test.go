package fault

import (
	"errors"
	"testing"
	"time"

	"mpcquery/internal/engine"
	"mpcquery/internal/transport"
)

func TestNewPlanInjectsNothing(t *testing.T) {
	p := NewPlan(99)
	for rank := 0; rank < 4; rank++ {
		for peer := 0; peer < 4; peer++ {
			if act, del := p.WriteFault(rank, peer, 0, 0, 0, 0); act != transport.FaultNone || del != 0 {
				t.Fatalf("zero plan drew %v/%v at (%d,%d)", act, del, rank, peer)
			}
			if del, err := p.DeliverFault(rank, 0, 0, 0); del != 0 || err != nil {
				t.Fatalf("zero plan delivery fault %v/%v at rank %d", del, err, rank)
			}
		}
	}
}

func TestPlanRatesAreApproximatelyHonored(t *testing.T) {
	p := NewPlan(5)
	p.DropPer10k = 2500 // 25%
	fired := 0
	const sites = 4000
	for i := 0; i < sites; i++ {
		if act, _ := p.WriteFault(i%7, (i+1)%7, 0, uint32(i/13), uint32(i%13), 0); act == transport.FaultDrop {
			fired++
		}
	}
	// A seeded hash over 4000 sites should land well within ±5 points.
	if rate := float64(fired) / sites; rate < 0.20 || rate > 0.30 {
		t.Fatalf("drop rate %.3f, want ~0.25", rate)
	}
}

func TestPlanPriorityDropBeatsDup(t *testing.T) {
	p := NewPlan(6)
	p.DropPer10k = 10000
	p.DupPer10k = 10000
	if act, _ := p.WriteFault(0, 1, 0, 0, 0, 0); act != transport.FaultDrop {
		t.Fatalf("both scheduled: got %v, want drop to win", act)
	}
}

func TestCrashSiteExact(t *testing.T) {
	p := NewPlan(7)
	p.CrashRank = 1
	p.CrashCluster = 2
	p.CrashRound = 3
	if _, err := p.DeliverFault(1, 0, 2, 3); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("crash site did not crash: %v", err)
	}
	for _, site := range [][4]int{{0, 0, 2, 3}, {1, 0, 2, 2}, {1, 0, 1, 3}, {1, 1, 2, 3}} {
		if _, err := p.DeliverFault(site[0], site[1], uint32(site[2]), uint32(site[3])); err != nil {
			t.Fatalf("non-crash site %v crashed: %v", site, err)
		}
	}
}

func TestStragglerDelaysEveryRound(t *testing.T) {
	p := NewPlan(8)
	p.StragglerRank = 2
	p.Delay = 5 * time.Millisecond
	if del, err := p.DeliverFault(2, 0, 9, 9); del != p.Delay || err != nil {
		t.Fatalf("straggler rank: %v/%v, want %v/nil", del, err, p.Delay)
	}
	if del, _ := p.DeliverFault(1, 0, 9, 9); del != 0 {
		t.Fatalf("non-straggler rank delayed %v", del)
	}
	if del, _ := p.DeliverFault(2, 1, 9, 9); del != 0 {
		t.Fatalf("straggler delayed at epoch 1: %v", del)
	}
}

func TestWrapNilPlanIsIdentity(t *testing.T) {
	if got := Wrap(nil, nil); got != nil {
		t.Fatalf("Wrap(nil, nil) = %v, want nil", got)
	}
}

// TestWrapLocalCrashAndRecovery drives the in-process wrapper the way the
// recovery supervisor does: a scheduled crash at epoch 0 fails delivery
// with the ErrPeerUnavailable shape, AdvanceEpoch moves past it (and
// realigns cluster identities), and epoch 1 delivers clean.
func TestWrapLocalCrashAndRecovery(t *testing.T) {
	p := NewPlan(9)
	p.CrashRank = 0
	p.CrashCluster = 0
	p.CrashRound = 0
	tr := Wrap(nil, p)
	lt, ok := tr.(*localTransport)
	if !ok {
		t.Fatalf("Wrap(nil, plan) = %T, want *localTransport", tr)
	}

	// Drive a real one-round engine program through the wrapper; a
	// delivery failure surfaces as the engine's typed panic.
	run := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				if e, isErr := r.(error); isErr {
					err = e
				} else {
					t.Fatalf("non-error panic: %v", r)
				}
			}
		}()
		c := engine.NewClusterNet(tr, 2, 16)
		defer c.Release()
		c.Round("ping", func(s int, _ *engine.Inbox, em *engine.Emitter) {
			em.EmitTuple((s+1)%2, 0, []int64{int64(s), 7})
		})
		return nil
	}

	err := run()
	if !errors.Is(err, transport.ErrPeerUnavailable) || !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("epoch-0 crash = %v, want ErrPeerUnavailable wrapping ErrInjectedCrash", err)
	}
	lt.AdvanceEpoch()
	if lt.nextCluster != 0 {
		t.Fatalf("AdvanceEpoch left nextCluster = %d, want 0 (replay realigns ids)", lt.nextCluster)
	}
	if err := run(); err != nil {
		t.Fatalf("epoch-1 replay still faulted: %v", err)
	}
}
