package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mpcquery/internal/engine"
	"mpcquery/internal/obs"
)

// ErrPeerUnavailable is returned (wrapped, with peer and round context)
// when a peer cannot be dialed or written within the session's retry
// budget, or when a round's frames do not arrive within the round
// timeout. The round fails loudly — bits are never silently dropped.
var ErrPeerUnavailable = errors.New("transport: peer unavailable")

// ErrSessionClosed is returned by operations on a closed session.
var ErrSessionClosed = errors.New("transport: session closed")

// Options tunes a TCP session's failure handling. The zero value means
// defaults.
type Options struct {
	// DialAttempts bounds connection attempts per peer (default 40).
	// Combined with DialBackoff this absorbs the startup race where
	// peers come up in arbitrary order.
	DialAttempts int
	// DialBackoff is the base backoff between dial attempts (default
	// 50ms), doubling per attempt up to 1s.
	DialBackoff time.Duration
	// WriteRetries bounds how many times a failed round write to one
	// peer is retried with a fresh connection and a full resend of the
	// round's frames (default 2). Receivers deduplicate resent frames by
	// sequence number, so a retry never double-delivers.
	WriteRetries int
	// RoundTimeout bounds how long Deliver waits for the other ranks'
	// frames of one round (default 60s) before failing with
	// ErrPeerUnavailable.
	RoundTimeout time.Duration
}

func (o *Options) withDefaults() Options {
	var v Options
	if o != nil {
		v = *o
	}
	if v.DialAttempts <= 0 {
		v.DialAttempts = 40
	}
	if v.DialBackoff <= 0 {
		v.DialBackoff = 50 * time.Millisecond
	}
	if v.WriteRetries < 0 {
		v.WriteRetries = 0
	} else if v.WriteRetries == 0 {
		v.WriteRetries = 2
	}
	if v.RoundTimeout <= 0 {
		v.RoundTimeout = 60 * time.Second
	}
	return v
}

// WireStats is a snapshot of everything a session has put on (and
// accounted against) the wire. All byte counters are for this session's
// sends only; summing the snapshots of all ranks covers the whole run.
//
// The accounting identity the tests assert: ChargedBits() — the model
// bits this rank's owned senders were charged — equals the engine's
// Report.TotalBits summed over ranks, exactly, for every strategy. And
// ChargedBits() ≤ BilledPayloadBytes×8 always (values are byte-padded,
// never truncated), with equality when bitsPerValue is a multiple of 8
// and no value outgrows its domain width.
type WireStats struct {
	// DataFrames counts unique data frames serialized (one per sender
	// batch; each is then shipped to every rank — see WireBytes).
	DataFrames int64
	// CtrlFrames counts hello and round-end frames actually sent.
	CtrlFrames int64

	// WireBytes is every byte handed to a socket, across all peers —
	// data frames are counted once per peer shipped.
	WireBytes int64

	// PayloadBytes / HeaderBytes split one copy of all data frames into
	// value payload and framing overhead (DataFrameOverheadBytes each).
	PayloadBytes int64
	HeaderBytes  int64

	// UnicastPayloadBytes and BroadcastPayloadBytes split PayloadBytes
	// by delivery mode.
	UnicastPayloadBytes   int64
	BroadcastPayloadBytes int64

	// BilledPayloadBytes weights each frame's payload by its number of
	// model receivers: ×1 for a unicast, ×p for a broadcast (the model
	// charges every one of the p servers; the wire ships one copy per
	// rank). This is the wire-side quantity TotalBits is compared to.
	BilledPayloadBytes int64

	// UnicastChargedBits / BroadcastChargedBits are the model bits
	// charged for this rank's sends: count×arity×bitsPerValue per
	// unicast frame, ×p per broadcast frame.
	UnicastChargedBits   int64
	BroadcastChargedBits int64

	// Redials counts failed connection attempts; Resends counts round
	// write retries after a connection failure.
	Redials int64
	Resends int64
}

// ChargedBits is the total model communication charged to this rank's
// owned senders.
func (w WireStats) ChargedBits() int64 { return w.UnicastChargedBits + w.BroadcastChargedBits }

type wireCounters struct {
	dataFrames            atomic.Int64
	ctrlFrames            atomic.Int64
	wireBytes             atomic.Int64
	payloadBytes          atomic.Int64
	headerBytes           atomic.Int64
	unicastPayloadBytes   atomic.Int64
	broadcastPayloadBytes atomic.Int64
	billedPayloadBytes    atomic.Int64
	unicastChargedBits    atomic.Int64
	broadcastChargedBits  atomic.Int64
	redials               atomic.Int64
	resends               atomic.Int64
}

// Process-wide transport totals in the obs registry, mirrored from the
// per-session wireCounters at the same update sites. Sessions come and go
// (one per runtime); the registry aggregates across all of them for the
// /metrics endpoint, while Session.Stats() stays the per-rank snapshot
// the accounting identities are asserted on.
var (
	obsDataFrames   = obs.Default().Counter("mpc_transport_data_frames_total")
	obsCtrlFrames   = obs.Default().Counter("mpc_transport_ctrl_frames_total")
	obsWireBytes    = obs.Default().Counter("mpc_transport_wire_bytes_total")
	obsPayloadBytes = obs.Default().Counter("mpc_transport_payload_bytes_total")
	obsBilledBytes  = obs.Default().Counter("mpc_transport_billed_payload_bytes_total")
	obsRedials      = obs.Default().Counter("mpc_transport_redials_total")
	obsResends      = obs.Default().Counter("mpc_transport_resends_total")
)

func (c *wireCounters) snapshot() WireStats {
	return WireStats{
		DataFrames:            c.dataFrames.Load(),
		CtrlFrames:            c.ctrlFrames.Load(),
		WireBytes:             c.wireBytes.Load(),
		PayloadBytes:          c.payloadBytes.Load(),
		HeaderBytes:           c.headerBytes.Load(),
		UnicastPayloadBytes:   c.unicastPayloadBytes.Load(),
		BroadcastPayloadBytes: c.broadcastPayloadBytes.Load(),
		BilledPayloadBytes:    c.billedPayloadBytes.Load(),
		UnicastChargedBits:    c.unicastChargedBits.Load(),
		BroadcastChargedBits:  c.broadcastChargedBits.Load(),
		Redials:               c.redials.Load(),
		Resends:               c.resends.Load(),
	}
}

// peerConn is the session's one outgoing connection to a peer. The mutex
// serializes round writes (a write is one conn.Write of a complete frame
// stream, so concurrent clusters interleave at frame granularity, never
// mid-frame).
type peerConn struct {
	mu   sync.Mutex
	conn net.Conn
}

// clusterState buffers the received frames of one cluster, keyed by round.
type clusterState struct {
	rounds map[uint32]*roundState
}

// roundState accumulates one (cluster, round)'s frames per source rank,
// in arrival order, until every rank has declared (via round-end) and
// delivered its frame count.
type roundState struct {
	byRank    [][]dataFrame
	ends      []int64 // -1 until the rank's round-end arrives
	assembled bool    // frames handed to Deliver; late duplicates are dropped
}

func newRoundState(n int) *roundState {
	rd := &roundState{byRank: make([][]dataFrame, n), ends: make([]int64, n)}
	for i := range rd.ends {
		rd.ends[i] = -1
	}
	return rd
}

func (rd *roundState) complete(n int) bool {
	for r := 0; r < n; r++ {
		if rd.ends[r] < 0 || int64(len(rd.byRank[r])) != rd.ends[r] {
			return false
		}
	}
	return true
}

// Session is one rank of a distributed run: a listener at addrs[rank], an
// outgoing connection to every rank (itself included — self-delivery
// crosses the real loopback socket, it is not short-circuited), and the
// receive-side buffers that rounds are assembled from. A Session is an
// engine.Transport; attach it via engine.NewClusterNet (or the public
// WithRuntime option).
//
// All ranks must execute the same sequence of runs: cluster identities
// are assigned by Attach order, and round payloads are only exchanged,
// never negotiated. One session must not serve concurrent runs.
type Session struct {
	rank  int
	n     int
	addrs []string
	opts  Options
	ln    net.Listener

	peers []*peerConn

	mu          sync.Mutex
	cond        *sync.Cond
	clusters    map[uint32]*clusterState
	nextCluster uint32
	conns       []net.Conn // accepted connections, closed with the session
	closed      bool
	fatal       error

	queued atomic.Int64
	ctr    wireCounters
	wg     sync.WaitGroup
}

// Dial starts rank's session of an n-rank run: it listens at addrs[rank],
// connects to every address in addrs (with bounded retry, absorbing
// arbitrary startup order), and serves incoming frames. addrs must be
// identical, in the same order, at every rank.
func Dial(rank int, addrs []string, opts *Options) (*Session, error) {
	n := len(addrs)
	if n < 1 {
		return nil, fmt.Errorf("transport: need at least one rank address")
	}
	if rank < 0 || rank >= n {
		return nil, fmt.Errorf("transport: rank %d out of range for %d addresses", rank, n)
	}
	ln, err := net.Listen("tcp", addrs[rank])
	if err != nil {
		return nil, fmt.Errorf("transport: rank %d listen %s: %w", rank, addrs[rank], err)
	}
	s := &Session{
		rank:     rank,
		n:        n,
		addrs:    append([]string(nil), addrs...),
		opts:     opts.withDefaults(),
		ln:       ln,
		peers:    make([]*peerConn, n),
		clusters: make(map[uint32]*clusterState),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := range s.peers {
		s.peers[i] = &peerConn{}
	}
	s.wg.Add(1)
	go s.acceptLoop()
	for r := 0; r < n; r++ {
		c, err := s.dialPeer(r)
		if err != nil {
			s.Close()
			return nil, err
		}
		pc := s.peers[r]
		pc.mu.Lock()
		pc.conn = c
		pc.mu.Unlock()
	}
	return s, nil
}

// Rank returns this session's rank.
func (s *Session) Rank() int { return s.rank }

// Ranks returns the number of ranks in the run.
func (s *Session) Ranks() int { return s.n }

// Addr returns the session's actual listen address.
func (s *Session) Addr() string { return s.ln.Addr().String() }

// QueuedSendBytes returns the bytes currently queued into (or in flight
// through) peer sockets — the send-queue depth the service tier's
// backpressure admission reads. It is an instantaneous, racy snapshot.
func (s *Session) QueuedSendBytes() int64 { return s.queued.Load() }

// Stats returns a snapshot of the session's wire accounting.
func (s *Session) Stats() WireStats { return s.ctr.snapshot() }

// Err returns the session's fatal protocol error, if any.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fatal
}

// Close shuts the session down: the listener and every connection are
// closed, in-flight Delivers fail with ErrSessionClosed, and reader
// goroutines are joined. Close is idempotent.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	conns := s.conns
	s.conns = nil
	s.cond.Broadcast()
	s.mu.Unlock()
	s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	for _, pc := range s.peers {
		pc.mu.Lock()
		if pc.conn != nil {
			pc.conn.Close()
			pc.conn = nil
		}
		pc.mu.Unlock()
	}
	s.wg.Wait()
	return nil
}

func (s *Session) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Session) setFatal(err error) {
	s.mu.Lock()
	if s.fatal == nil {
		s.fatal = err
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Attach implements engine.Transport: it assigns the next cluster
// identity (creation order is the cross-rank agreement on identities) and
// returns the cluster's delivery link.
func (s *Session) Attach(p, bitsPerValue int) (engine.Link, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	if s.fatal != nil {
		return nil, s.fatal
	}
	id := s.nextCluster
	s.nextCluster++
	if _, ok := s.clusters[id]; !ok {
		s.clusters[id] = &clusterState{rounds: make(map[uint32]*roundState)}
	}
	return &tcpLink{s: s, id: id, bpv: bitsPerValue}, nil
}

// ownedRange block-partitions the p model servers across the n ranks:
// rank owns (serializes and sends the emissions of) servers [lo, hi).
func ownedRange(rank, ranks, p int) (lo, hi int) {
	return rank * p / ranks, (rank + 1) * p / ranks
}

func backoffFor(attempt int, base time.Duration) time.Duration {
	shift := attempt - 1
	if shift > 5 {
		shift = 5
	}
	d := base << uint(shift)
	if d > time.Second {
		d = time.Second
	}
	return d
}

// dialPeer connects to rank r with the session's retry budget and sends
// the hello handshake.
func (s *Session) dialPeer(r int) (net.Conn, error) {
	hello := appendHello(nil, uint32(s.rank))
	var lastErr error
	for attempt := 0; attempt < s.opts.DialAttempts; attempt++ {
		if attempt > 0 {
			s.ctr.redials.Add(1)
			obsRedials.Inc()
			time.Sleep(backoffFor(attempt, s.opts.DialBackoff))
		}
		if s.isClosed() {
			return nil, ErrSessionClosed
		}
		c, err := net.DialTimeout("tcp", s.addrs[r], time.Second)
		if err != nil {
			lastErr = err
			continue
		}
		if _, err := c.Write(hello); err != nil {
			c.Close()
			lastErr = err
			continue
		}
		s.ctr.wireBytes.Add(int64(len(hello)))
		s.ctr.ctrlFrames.Add(1)
		obsWireBytes.Add(int64(len(hello)))
		obsCtrlFrames.Inc()
		return c, nil
	}
	return nil, fmt.Errorf("%w: rank %d dial %s: %v", ErrPeerUnavailable, s.rank, s.addrs[r], lastErr)
}

func (s *Session) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns = append(s.conns, c)
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(c)
	}
}

// readFrame reads one length-prefixed frame and decodes it. The returned
// frame's payload aliases a per-frame buffer, safe to retain.
func readFrame(br *bufio.Reader) (frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
		return frame{}, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n < 1 || n > maxFrameLen {
		return frame{}, fmt.Errorf("%w: frame length %d", errMalformed, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(br, body); err != nil {
		return frame{}, err
	}
	return decodeFrame(body)
}

func (s *Session) serveConn(c net.Conn) {
	defer s.wg.Done()
	defer c.Close()
	br := bufio.NewReaderSize(c, 1<<16)
	f, err := readFrame(br)
	if err != nil || f.typ != frameHello || int(f.rank) >= s.n {
		// Not a valid peer handshake: drop the connection without
		// poisoning the session (a stray connect must not kill a run).
		return
	}
	peer := int(f.rank)
	for {
		f, err := readFrame(br)
		if err != nil {
			// Connection closed or broken mid-stream. Not fatal: the
			// peer redials and resends on its side; sequence numbers
			// dedupe whatever prefix of the round already arrived.
			if errors.Is(err, errMalformed) {
				s.setFatal(fmt.Errorf("transport: rank %d sent a malformed frame: %v", peer, err))
			}
			return
		}
		if err := s.ingest(peer, f); err != nil {
			s.setFatal(err)
			return
		}
	}
}

// roundLocked returns (lazily creating) the buffer for one (cluster,
// round). Frames may arrive before the local Attach of their cluster —
// state is keyed purely by the wire identities.
func (s *Session) roundLocked(cluster, round uint32) *roundState {
	cs, ok := s.clusters[cluster]
	if !ok {
		cs = &clusterState{rounds: make(map[uint32]*roundState)}
		s.clusters[cluster] = cs
	}
	rd, ok := cs.rounds[round]
	if !ok {
		rd = newRoundState(s.n)
		cs.rounds[round] = rd
	}
	return rd
}

func (s *Session) ingest(peer int, f frame) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch f.typ {
	case frameData:
		rd := s.roundLocked(f.data.Cluster, f.data.Round)
		if rd.assembled {
			return nil // duplicate after completion (resend overlap)
		}
		seq, have := int64(f.data.Seq), int64(len(rd.byRank[peer]))
		if seq < have {
			return nil // duplicate prefix of a resend
		}
		if seq > have {
			return fmt.Errorf("transport: rank %d: frame gap in cluster %d round %d: seq %d, want %d",
				peer, f.data.Cluster, f.data.Round, seq, have)
		}
		rd.byRank[peer] = append(rd.byRank[peer], f.data)
		if rd.ends[peer] >= 0 && int64(len(rd.byRank[peer])) == rd.ends[peer] {
			s.cond.Broadcast()
		}
	case frameRoundEnd:
		rd := s.roundLocked(f.cluster, f.round)
		if rd.assembled {
			return nil
		}
		if rd.ends[peer] >= 0 {
			if rd.ends[peer] != int64(f.frames) {
				return fmt.Errorf("transport: rank %d: conflicting round-end for cluster %d round %d: %d vs %d",
					peer, f.cluster, f.round, rd.ends[peer], f.frames)
			}
			return nil
		}
		rd.ends[peer] = int64(f.frames)
		s.cond.Broadcast()
	case frameHello:
		return fmt.Errorf("transport: rank %d: unexpected mid-stream hello", peer)
	}
	return nil
}

// writePeer ships one round's complete frame stream to rank r, retrying
// with a fresh connection (and a full resend — receivers dedupe by
// sequence number) up to WriteRetries times.
func (s *Session) writePeer(r int, buf []byte) error {
	pc := s.peers[r]
	pc.mu.Lock()
	defer pc.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt <= s.opts.WriteRetries; attempt++ {
		if attempt > 0 {
			s.ctr.resends.Add(1)
			obsResends.Inc()
			time.Sleep(backoffFor(attempt, s.opts.DialBackoff))
		}
		if s.isClosed() {
			return ErrSessionClosed
		}
		if pc.conn == nil {
			c, err := s.dialPeer(r)
			if err != nil {
				lastErr = err
				continue
			}
			pc.conn = c
		}
		s.queued.Add(int64(len(buf)))
		_, err := pc.conn.Write(buf)
		s.queued.Add(-int64(len(buf)))
		if err == nil {
			s.ctr.wireBytes.Add(int64(len(buf)))
			obsWireBytes.Add(int64(len(buf)))
			return nil
		}
		lastErr = err
		pc.conn.Close()
		pc.conn = nil
	}
	return fmt.Errorf("%w: rank %d write to peer %d (%s): %v", ErrPeerUnavailable, s.rank, r, s.addrs[r], lastErr)
}

// waitRound blocks until every rank's frames for (cluster, round) have
// arrived, then claims them for assembly. On timeout the round fails
// with ErrPeerUnavailable — the barrier never resolves silently short.
func (s *Session) waitRound(cluster, round uint32) ([][]dataFrame, error) {
	timeout := s.opts.RoundTimeout
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer timer.Stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	rd := s.roundLocked(cluster, round)
	for {
		if s.fatal != nil {
			return nil, s.fatal
		}
		if s.closed {
			return nil, ErrSessionClosed
		}
		if rd.complete(s.n) {
			rd.assembled = true
			frames := rd.byRank
			rd.byRank = nil
			return frames, nil
		}
		if !time.Now().Before(deadline) {
			missing := 0
			for r := 0; r < s.n; r++ {
				if rd.ends[r] < 0 || int64(len(rd.byRank[r])) != rd.ends[r] {
					missing++
				}
			}
			return nil, fmt.Errorf("%w: rank %d: cluster %d round %d incomplete after %v (%d/%d ranks pending)",
				ErrPeerUnavailable, s.rank, cluster, round, timeout, missing, s.n)
		}
		s.cond.Wait()
	}
}

// tcpLink delivers the rounds of one cluster over the session.
type tcpLink struct {
	s       *Session
	id      uint32
	bpv     int
	buf     []byte  // serialize scratch, reused across rounds
	scratch []int64 // decode scratch, reused across frames
}

func (l *tcpLink) Close() error {
	s := l.s
	s.mu.Lock()
	delete(s.clusters, l.id)
	s.mu.Unlock()
	return nil
}

// Deliver implements one round of the SPMD protocol: serialize this
// rank's owned senders' emissions and ship the identical frame stream to
// every rank (self included, over the socket), wait for all ranks'
// streams, then assemble every inbox — in the exact delivery order
// DeliverLocal defines — from the received frames alone.
func (l *tcpLink) Deliver(io *engine.DeliveryRound) error {
	s := l.s
	if err := s.Err(); err != nil {
		return err
	}
	round := uint32(io.Round)

	// Serialize. Frames for one rank's senders are emitted sender-
	// ascending; combined with rank-block-ascending assembly this
	// reproduces the engine's sender-ascending delivery order globally.
	buf := l.buf[:0]
	frames := uint32(0)
	var payloadUni, payloadBc, billed int64
	var bitsUni, bitsBc int64
	lo, hi := ownedRange(s.rank, s.n, io.P)
	for sv := lo; sv < hi; sv++ {
		io.Senders[sv].EachPending(func(dest, kind, arity int, vals []int64) {
			w := widthFor(l.bpv, vals)
			buf = appendDataFrame(buf, l.id, round, frames, uint32(sv), int32(dest), uint32(kind), arity, w, vals)
			frames++
			pb := int64(len(vals)) * int64(w)
			cb := int64(len(vals)) * int64(l.bpv)
			if dest == engine.Broadcast {
				payloadBc += pb
				billed += pb * int64(io.P)
				bitsBc += cb * int64(io.P)
			} else {
				payloadUni += pb
				billed += pb
				bitsUni += cb
			}
		})
	}
	buf = appendRoundEnd(buf, l.id, round, frames)
	l.buf = buf

	s.ctr.dataFrames.Add(int64(frames))
	s.ctr.ctrlFrames.Add(int64(s.n))
	s.ctr.payloadBytes.Add(payloadUni + payloadBc)
	s.ctr.headerBytes.Add(int64(frames) * DataFrameOverheadBytes)
	s.ctr.unicastPayloadBytes.Add(payloadUni)
	s.ctr.broadcastPayloadBytes.Add(payloadBc)
	s.ctr.billedPayloadBytes.Add(billed)
	s.ctr.unicastChargedBits.Add(bitsUni)
	s.ctr.broadcastChargedBits.Add(bitsBc)
	obsDataFrames.Add(int64(frames))
	obsCtrlFrames.Add(int64(s.n))
	obsPayloadBytes.Add(payloadUni + payloadBc)
	obsBilledBytes.Add(billed)

	for r := 0; r < s.n; r++ {
		if err := s.writePeer(r, buf); err != nil {
			return err
		}
	}

	byRank, err := s.waitRound(l.id, round)
	if err != nil {
		return err
	}
	return l.assemble(byRank, io)
}

// assemble rebuilds every inbox and the per-destination accounting from
// the received frames. Iteration order — ranks ascending, frames in
// arrival order — yields, per destination, exactly DeliverLocal's order:
// senders ascending, each sender's unicasts (in emission order) before
// its broadcasts. The float accumulation order also matches, batch for
// batch, so RecvBits is bit-identical to the in-process run.
func (l *tcpLink) assemble(byRank [][]dataFrame, io *engine.DeliveryRound) error {
	p := io.P
	for d := 0; d < p; d++ {
		io.RecvBits[d] = 0
		io.RecvTuples[d] = 0
	}
	scratch := l.scratch
	for r := range byRank {
		for i := range byRank[r] {
			f := &byRank[r][i]
			if int(f.Sender) >= p {
				return fmt.Errorf("transport: cluster %d: frame sender %d out of range for %d servers", l.id, f.Sender, p)
			}
			if int(f.Dest) >= p {
				return fmt.Errorf("transport: cluster %d: frame destination %d out of range for %d servers", l.id, f.Dest, p)
			}
			scratch = f.decodeValues(scratch[:0])
			arity := int(f.Arity)
			bits := float64(len(scratch) * io.BitsPerValue)
			tuples := len(scratch) / arity
			if f.Dest == int32(engine.Broadcast) {
				for d := 0; d < p; d++ {
					io.Inboxes[d].Append(int(f.Kind), arity, scratch)
					io.RecvBits[d] += bits
					io.RecvTuples[d] += tuples
				}
			} else {
				d := int(f.Dest)
				io.Inboxes[d].Append(int(f.Kind), arity, scratch)
				io.RecvBits[d] += bits
				io.RecvTuples[d] += tuples
			}
		}
	}
	l.scratch = scratch
	return nil
}
