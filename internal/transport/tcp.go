package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mpcquery/internal/engine"
	"mpcquery/internal/obs"
)

// ErrPeerUnavailable is returned (wrapped, with rank, cluster/round and
// peer-address context) when a peer cannot be dialed or written within the
// session's retry budget, or when a round's frames do not arrive within
// the round timeout. The round fails loudly — bits are never silently
// dropped — and the run-level recovery supervisor (see Mark/Rewind and the
// barrier exchanges below) decides whether to replay.
var ErrPeerUnavailable = errors.New("transport: peer unavailable")

// ErrSessionClosed is returned by operations on a closed session.
var ErrSessionClosed = errors.New("transport: session closed")

// Injected-fault sentinels: a FaultInjector's drop/reset surfaces through
// the normal write-retry machinery as one of these, so chaos-test errors
// are distinguishable from genuine network failures in messages (never in
// control flow — both shapes retry and recover identically).
var (
	errInjectedReset = errors.New("injected connection reset")
	errInjectedDrop  = errors.New("injected torn write")
)

// Options tunes a TCP session's failure handling. The zero value means
// defaults.
type Options struct {
	// DialAttempts bounds connection attempts per peer (default 40).
	// Combined with DialBackoff this absorbs the startup race where
	// peers come up in arbitrary order.
	DialAttempts int
	// DialBackoff is the base backoff between dial attempts (default
	// 50ms), doubling per attempt up to 1s.
	DialBackoff time.Duration
	// WriteRetries bounds how many times a failed round write to one
	// peer is retried with a fresh connection and a full resend of the
	// round's frames (default 2). Receivers deduplicate resent frames by
	// sequence number, so a retry never double-delivers.
	WriteRetries int
	// RoundTimeout bounds how long Deliver waits for the other ranks'
	// frames of one round (default 60s) before failing with
	// ErrPeerUnavailable. It also caps how long a single socket write may
	// block (a wedged peer that stops reading cannot stall a round, or a
	// Service.Close drain, forever), and the recovery barriers wait up to
	// twice this long for slow peers to notice a failed attempt.
	RoundTimeout time.Duration
}

func (o *Options) withDefaults() Options {
	var v Options
	if o != nil {
		v = *o
	}
	if v.DialAttempts <= 0 {
		v.DialAttempts = 40
	}
	if v.DialBackoff <= 0 {
		v.DialBackoff = 50 * time.Millisecond
	}
	if v.WriteRetries < 0 {
		v.WriteRetries = 0
	} else if v.WriteRetries == 0 {
		v.WriteRetries = 2
	}
	if v.RoundTimeout <= 0 {
		v.RoundTimeout = 60 * time.Second
	}
	return v
}

// WireStats is a snapshot of everything a session has put on (and
// accounted against) the wire. All byte counters are for this session's
// sends only; summing the snapshots of all ranks covers the whole run.
//
// The accounting identity the tests assert: ChargedBits() — the model
// bits this rank's owned senders were charged — equals the engine's
// Report.TotalBits summed over ranks, exactly, for every strategy. And
// ChargedBits() ≤ BilledPayloadBytes×8 always (values are byte-padded,
// never truncated), with equality when bitsPerValue is a multiple of 8
// and no value outgrows its domain width.
//
// Recovery keeps the identity exact: when a failed attempt is rewound
// (Session.Rewind), the abandoned attempt's model accounting is backed out
// of the charged counters and reported separately under AbandonedBytes /
// AbandonedChargedBits — a replayed run bills each bit exactly once, no
// matter how many attempts it took. WireBytes stays monotone (those bytes
// really crossed the wire).
type WireStats struct {
	// DataFrames counts unique data frames serialized (one per sender
	// batch; each is then shipped to every rank — see WireBytes).
	DataFrames int64
	// CtrlFrames counts hello, round-end and recovery-barrier frames
	// actually sent.
	CtrlFrames int64

	// WireBytes is every byte handed to a socket, across all peers —
	// data frames are counted once per peer shipped. Unlike the model
	// counters below it is never rewound: injected torn writes,
	// duplicates, resends and abandoned attempts all really happened.
	WireBytes int64

	// PayloadBytes / HeaderBytes split one copy of all data frames into
	// value payload and framing overhead (DataFrameOverheadBytes each).
	PayloadBytes int64
	HeaderBytes  int64

	// UnicastPayloadBytes and BroadcastPayloadBytes split PayloadBytes
	// by delivery mode.
	UnicastPayloadBytes   int64
	BroadcastPayloadBytes int64

	// BilledPayloadBytes weights each frame's payload by its number of
	// model receivers: ×1 for a unicast, ×p for a broadcast (the model
	// charges every one of the p servers; the wire ships one copy per
	// rank). This is the wire-side quantity TotalBits is compared to.
	BilledPayloadBytes int64

	// UnicastChargedBits / BroadcastChargedBits are the model bits
	// charged for this rank's sends: count×arity×bitsPerValue per
	// unicast frame, ×p per broadcast frame.
	UnicastChargedBits   int64
	BroadcastChargedBits int64

	// AbandonedBytes is the payload+header bytes of abandoned attempts:
	// serialized, possibly shipped, then backed out of the charged
	// counters by Rewind when the recovery supervisor replays a failed
	// run. AbandonedChargedBits is the model bits backed out the same
	// way. Neither ever appears in ChargedBits — retries never
	// double-bill.
	AbandonedBytes        int64
	AbandonedChargedBits  int64

	// FaultsInjected counts faults the installed FaultInjector actually
	// applied (drops, duplicates, resets, delays, injected crashes).
	FaultsInjected int64

	// Redials counts failed connection attempts; Resends counts round
	// write retries after a connection failure.
	Redials int64
	Resends int64
}

// ChargedBits is the total model communication charged to this rank's
// owned senders.
func (w WireStats) ChargedBits() int64 { return w.UnicastChargedBits + w.BroadcastChargedBits }

type wireCounters struct {
	dataFrames            atomic.Int64
	ctrlFrames            atomic.Int64
	wireBytes             atomic.Int64
	payloadBytes          atomic.Int64
	headerBytes           atomic.Int64
	unicastPayloadBytes   atomic.Int64
	broadcastPayloadBytes atomic.Int64
	billedPayloadBytes    atomic.Int64
	unicastChargedBits    atomic.Int64
	broadcastChargedBits  atomic.Int64
	abandonedBytes        atomic.Int64
	abandonedChargedBits  atomic.Int64
	faultsInjected        atomic.Int64
	redials               atomic.Int64
	resends               atomic.Int64
}

// Process-wide transport totals in the obs registry, mirrored from the
// per-session wireCounters at the same update sites. Sessions come and go
// (one per runtime); the registry aggregates across all of them for the
// /metrics endpoint, while Session.Stats() stays the per-rank snapshot
// the accounting identities are asserted on.
var (
	obsDataFrames     = obs.Default().Counter("mpc_transport_data_frames_total")
	obsCtrlFrames     = obs.Default().Counter("mpc_transport_ctrl_frames_total")
	obsWireBytes      = obs.Default().Counter("mpc_transport_wire_bytes_total")
	obsPayloadBytes   = obs.Default().Counter("mpc_transport_payload_bytes_total")
	obsBilledBytes    = obs.Default().Counter("mpc_transport_billed_payload_bytes_total")
	obsAbandonedBytes = obs.Default().Counter("mpc_transport_abandoned_bytes_total")
	obsFaults         = obs.Default().Counter("mpc_faults_injected_total")
	obsRedials        = obs.Default().Counter("mpc_transport_redials_total")
	obsResends        = obs.Default().Counter("mpc_transport_resends_total")
)

func (c *wireCounters) snapshot() WireStats {
	return WireStats{
		DataFrames:            c.dataFrames.Load(),
		CtrlFrames:            c.ctrlFrames.Load(),
		WireBytes:             c.wireBytes.Load(),
		PayloadBytes:          c.payloadBytes.Load(),
		HeaderBytes:           c.headerBytes.Load(),
		UnicastPayloadBytes:   c.unicastPayloadBytes.Load(),
		BroadcastPayloadBytes: c.broadcastPayloadBytes.Load(),
		BilledPayloadBytes:    c.billedPayloadBytes.Load(),
		UnicastChargedBits:    c.unicastChargedBits.Load(),
		BroadcastChargedBits:  c.broadcastChargedBits.Load(),
		AbandonedBytes:        c.abandonedBytes.Load(),
		AbandonedChargedBits:  c.abandonedChargedBits.Load(),
		FaultsInjected:        c.faultsInjected.Load(),
		Redials:               c.redials.Load(),
		Resends:               c.resends.Load(),
	}
}

// peerConn is the session's one outgoing connection to a peer. The mutex
// serializes round writes (a write is one conn.Write of a complete frame
// stream, so concurrent clusters interleave at frame granularity, never
// mid-frame).
type peerConn struct {
	mu   sync.Mutex
	conn net.Conn
}

// clusterState buffers the received frames of one cluster, keyed by round.
type clusterState struct {
	rounds map[uint32]*roundState
}

// roundState accumulates one (cluster, round)'s frames per source rank,
// in arrival order, until every rank has declared (via round-end) and
// delivered its frame count.
type roundState struct {
	byRank    [][]dataFrame
	ends      []int64 // -1 until the rank's round-end arrives
	assembled bool    // frames handed to Deliver; late duplicates are dropped
}

func newRoundState(n int) *roundState {
	rd := &roundState{byRank: make([][]dataFrame, n), ends: make([]int64, n)}
	for i := range rd.ends {
		rd.ends[i] = -1
	}
	return rd
}

func (rd *roundState) complete(n int) bool {
	for r := 0; r < n; r++ {
		if rd.ends[r] < 0 || int64(len(rd.byRank[r])) != rd.ends[r] {
			return false
		}
	}
	return true
}

// ctrlState collects one recovery barrier's announcements, one per rank.
type ctrlState struct {
	got   []bool
	flags []uint32
	have  int
}

func ctrlKey(kind, gen uint32) uint64 { return uint64(kind)<<32 | uint64(gen) }

// Session is one rank of a distributed run: a listener at addrs[rank], an
// outgoing connection to every rank (itself included — self-delivery
// crosses the real loopback socket, it is not short-circuited), and the
// receive-side buffers that rounds are assembled from. A Session is an
// engine.Transport; attach it via engine.NewClusterNet (or the public
// WithRuntime option).
//
// All ranks must execute the same sequence of runs: cluster identities
// are assigned by Attach order, and round payloads are only exchanged,
// never negotiated. One session must not serve concurrent runs.
//
// # Recovery protocol
//
// A failed run attempt is replayed from round 0 — determinism makes the
// replay bit-identical, so nothing of the abandoned attempt needs to be
// salvaged; it needs to be *discarded coherently* at every rank. The
// supervisor (root run.go's WithRecovery loop) drives, in lockstep at
// every rank:
//
//	mark := s.Mark()                 // before the attempt
//	err  := attempt()                // the run itself
//	allOK, _ := s.ExchangeOutcome(err == nil)   // barrier 1: agree on the verdict
//	if allOK { done }
//	s.Rewind(mark)                   // discard receive state, back out accounting, epoch++
//	s.ReadyBarrier()                 // barrier 2: everyone has rewound
//	retry
//
// Stale frames of the abandoned attempt are filtered by *connection
// epoch*: every connection's hello carries the dialer's epoch, a
// ctrlReady advances it, and data/round-end frames whose connection epoch
// is behind the session's are dropped on ingest. Per-connection FIFO
// ordering plus the two barriers make the filter airtight: a rank only
// ships replay frames after every peer announced ready, which each peer
// announced only after rewinding, so replay frames always land in fresh
// state — and anything older is provably from a dead attempt.
type Session struct {
	rank  int
	n     int
	addrs []string
	opts  Options
	ln    net.Listener

	peers []*peerConn

	mu          sync.Mutex
	cond        *sync.Cond
	clusters    map[uint32]*clusterState
	retired     map[uint32]bool
	ctrl        map[uint64]*ctrlState
	nextCluster uint32
	epoch       int    // attempt epoch: bumped by Rewind, filters stale frames
	gen         uint32 // barrier sequence: bumped per ExchangeOutcome/ReadyBarrier
	faults      FaultInjector
	conns       []net.Conn // accepted connections, closed with the session
	closed      bool
	fatal       error

	queued atomic.Int64
	ctr    wireCounters
	wg     sync.WaitGroup
}

// Dial starts rank's session of an n-rank run: it listens at addrs[rank],
// connects to every address in addrs (with bounded retry, absorbing
// arbitrary startup order), and serves incoming frames. addrs must be
// identical, in the same order, at every rank.
func Dial(rank int, addrs []string, opts *Options) (*Session, error) {
	n := len(addrs)
	if n < 1 {
		return nil, fmt.Errorf("transport: need at least one rank address")
	}
	if rank < 0 || rank >= n {
		return nil, fmt.Errorf("transport: rank %d out of range for %d addresses", rank, n)
	}
	ln, err := net.Listen("tcp", addrs[rank])
	if err != nil {
		return nil, fmt.Errorf("transport: rank %d listen %s: %w", rank, addrs[rank], err)
	}
	s := &Session{
		rank:     rank,
		n:        n,
		addrs:    append([]string(nil), addrs...),
		opts:     opts.withDefaults(),
		ln:       ln,
		peers:    make([]*peerConn, n),
		clusters: make(map[uint32]*clusterState),
		retired:  make(map[uint32]bool),
		ctrl:     make(map[uint64]*ctrlState),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := range s.peers {
		s.peers[i] = &peerConn{}
	}
	s.wg.Add(1)
	go s.acceptLoop()
	for r := 0; r < n; r++ {
		c, err := s.dialPeer(r)
		if err != nil {
			s.Close()
			return nil, err
		}
		pc := s.peers[r]
		pc.mu.Lock()
		pc.conn = c
		pc.mu.Unlock()
	}
	return s, nil
}

// Rank returns this session's rank.
func (s *Session) Rank() int { return s.rank }

// Ranks returns the number of ranks in the run.
func (s *Session) Ranks() int { return s.n }

// Addr returns the session's actual listen address.
func (s *Session) Addr() string { return s.ln.Addr().String() }

// QueuedSendBytes returns the bytes currently queued into (or in flight
// through) peer sockets — the send-queue depth the service tier's
// backpressure admission reads. It is an instantaneous, racy snapshot.
func (s *Session) QueuedSendBytes() int64 { return s.queued.Load() }

// Stats returns a snapshot of the session's wire accounting.
func (s *Session) Stats() WireStats { return s.ctr.snapshot() }

// Err returns the session's fatal protocol error, if any.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fatal
}

// Epoch returns the session's current attempt epoch: 0 until the first
// recovery rewind, monotone thereafter.
func (s *Session) Epoch() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// SetFaultInjector installs (or, with nil, removes) the session's fault
// injector. All ranks of a run must install the same schedule — the
// injector must be a pure function of its arguments, so that is a
// configuration requirement, not a synchronization one.
func (s *Session) SetFaultInjector(fi FaultInjector) {
	s.mu.Lock()
	s.faults = fi
	s.mu.Unlock()
}

func (s *Session) injectorAndEpoch() (FaultInjector, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.faults, s.epoch
}

func (s *Session) countFault(local *int64) {
	s.ctr.faultsInjected.Add(1)
	obsFaults.Inc()
	if local != nil {
		*local++
	}
}

// Close shuts the session down: the listener and every connection are
// closed, in-flight Delivers fail with ErrSessionClosed, and reader
// goroutines are joined. Close is idempotent.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	conns := s.conns
	s.conns = nil
	s.cond.Broadcast()
	s.mu.Unlock()
	s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	for _, pc := range s.peers {
		pc.mu.Lock()
		if pc.conn != nil {
			pc.conn.Close()
			pc.conn = nil
		}
		pc.mu.Unlock()
	}
	s.wg.Wait()
	return nil
}

func (s *Session) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Session) setFatal(err error) {
	s.mu.Lock()
	if s.fatal == nil {
		s.fatal = err
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Attach implements engine.Transport: it assigns the next cluster
// identity (creation order is the cross-rank agreement on identities) and
// returns the cluster's delivery link.
func (s *Session) Attach(p, bitsPerValue int) (engine.Link, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	if s.fatal != nil {
		return nil, s.fatal
	}
	id := s.nextCluster
	s.nextCluster++
	delete(s.retired, id)
	if _, ok := s.clusters[id]; !ok {
		s.clusters[id] = &clusterState{rounds: make(map[uint32]*roundState)}
	}
	return &tcpLink{s: s, id: id, bpv: bitsPerValue}, nil
}

// ownedRange block-partitions the p model servers across the n ranks:
// rank owns (serializes and sends the emissions of) servers [lo, hi).
func ownedRange(rank, ranks, p int) (lo, hi int) {
	return rank * p / ranks, (rank + 1) * p / ranks
}

func backoffFor(attempt int, base time.Duration) time.Duration {
	shift := attempt - 1
	if shift > 5 {
		shift = 5
	}
	d := base << uint(shift)
	if d > time.Second {
		d = time.Second
	}
	return d
}

// dialPeer connects to rank r with the session's retry budget and sends
// the hello handshake (which pins the protocol version and carries the
// current attempt epoch). The error carries rank and peer address; write
// paths add cluster/round context on top.
func (s *Session) dialPeer(r int) (net.Conn, error) {
	s.mu.Lock()
	epoch := uint32(s.epoch)
	s.mu.Unlock()
	hello := appendHello(nil, uint32(s.rank), epoch)
	var lastErr error
	for attempt := 0; attempt < s.opts.DialAttempts; attempt++ {
		if attempt > 0 {
			s.ctr.redials.Add(1)
			obsRedials.Inc()
			time.Sleep(backoffFor(attempt, s.opts.DialBackoff))
		}
		if s.isClosed() {
			return nil, ErrSessionClosed
		}
		c, err := net.DialTimeout("tcp", s.addrs[r], time.Second)
		if err != nil {
			lastErr = err
			continue
		}
		if _, err := c.Write(hello); err != nil {
			c.Close()
			lastErr = err
			continue
		}
		s.ctr.wireBytes.Add(int64(len(hello)))
		s.ctr.ctrlFrames.Add(1)
		obsWireBytes.Add(int64(len(hello)))
		obsCtrlFrames.Inc()
		return c, nil
	}
	return nil, fmt.Errorf("%w: rank %d dial %s: %v", ErrPeerUnavailable, s.rank, s.addrs[r], lastErr)
}

// ProbePeers health-checks every peer address with a short plain TCP
// connect (closed before the handshake, so the probe is invisible to the
// peer's protocol state). It classifies a failed round: if every peer
// still accepts connections the failure was transient and a replay is
// worth attempting; a refusing peer is reported as unavailable.
func (s *Session) ProbePeers() error {
	var firstErr error
	for r := 0; r < s.n; r++ {
		if s.isClosed() {
			return ErrSessionClosed
		}
		c, err := net.DialTimeout("tcp", s.addrs[r], 2*time.Second)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%w: rank %d: health probe of peer %d (%s) failed: %v",
					ErrPeerUnavailable, s.rank, r, s.addrs[r], err)
			}
			continue
		}
		c.Close()
	}
	return firstErr
}

func (s *Session) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns = append(s.conns, c)
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(c)
	}
}

// readFrame reads one length-prefixed frame and decodes it. The returned
// frame's payload aliases a per-frame buffer, safe to retain.
func readFrame(br *bufio.Reader) (frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
		return frame{}, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n < 1 || n > maxFrameLen {
		return frame{}, fmt.Errorf("%w: frame length %d", errMalformed, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(br, body); err != nil {
		return frame{}, err
	}
	return decodeFrame(body)
}

func (s *Session) serveConn(c net.Conn) {
	defer s.wg.Done()
	defer c.Close()
	br := bufio.NewReaderSize(c, 1<<16)
	f, err := readFrame(br)
	if err != nil || f.typ != frameHello || int(f.rank) >= s.n {
		// Not a valid peer handshake (or a health probe): drop the
		// connection without poisoning the session — a stray connect must
		// not kill a run.
		return
	}
	peer := int(f.rank)
	// The connection's epoch: the dialer's attempt epoch at dial time,
	// advanced by each ctrlReady it ships. Only this goroutine touches it
	// (ingest runs on it), so no locking beyond the session mutex inside
	// ingest is needed.
	connEpoch := int(f.epoch)
	for {
		f, err := readFrame(br)
		if err != nil {
			// Connection closed or broken mid-stream. Not fatal: the
			// peer redials and resends on its side; sequence numbers
			// dedupe whatever prefix of the round already arrived.
			if errors.Is(err, errMalformed) {
				s.setFatal(fmt.Errorf("transport: rank %d sent a malformed frame: %v", peer, err))
			}
			return
		}
		if err := s.ingest(peer, f, &connEpoch); err != nil {
			s.setFatal(err)
			return
		}
	}
}

// roundLocked returns (lazily creating) the buffer for one (cluster,
// round). Frames may arrive before the local Attach of their cluster —
// state is keyed purely by the wire identities.
func (s *Session) roundLocked(cluster, round uint32) *roundState {
	cs, ok := s.clusters[cluster]
	if !ok {
		cs = &clusterState{rounds: make(map[uint32]*roundState)}
		s.clusters[cluster] = cs
	}
	rd, ok := cs.rounds[round]
	if !ok {
		rd = newRoundState(s.n)
		cs.rounds[round] = rd
	}
	return rd
}

func (s *Session) ctrlLocked(kind, gen uint32) *ctrlState {
	k := ctrlKey(kind, gen)
	st, ok := s.ctrl[k]
	if !ok {
		st = &ctrlState{got: make([]bool, s.n), flags: make([]uint32, s.n)}
		s.ctrl[k] = st
	}
	return st
}

// abortedLocked reports whether any rank has announced a failed outcome
// for the upcoming barrier (gen+1 — the one this attempt will join). A
// waiting round uses it to fail fast instead of sitting out the full
// round timeout when a peer already knows the attempt is dead.
func (s *Session) abortedLocked() (int, bool) {
	st, ok := s.ctrl[ctrlKey(ctrlOutcome, s.gen+1)]
	if !ok {
		return 0, false
	}
	for r := 0; r < s.n; r++ {
		if st.got[r] && st.flags[r]&ctrlOK == 0 {
			return r, true
		}
	}
	return 0, false
}

func (s *Session) ingest(peer int, f frame, connEpoch *int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch f.typ {
	case frameCtrl:
		if f.ckind == ctrlReady {
			// The peer has rewound for a replay: everything that follows
			// on this connection belongs to its new attempt epoch
			// (carried in flags).
			*connEpoch = int(f.flags)
		}
		st := s.ctrlLocked(f.ckind, f.gen)
		if !st.got[peer] {
			st.got[peer] = true
			st.flags[peer] = f.flags
			st.have++
			s.cond.Broadcast()
		}
	case frameData:
		if *connEpoch < s.epoch || s.retired[f.data.Cluster] {
			return nil // stale frame of an abandoned attempt or closed cluster
		}
		rd := s.roundLocked(f.data.Cluster, f.data.Round)
		if rd.assembled {
			return nil // duplicate after completion (resend overlap)
		}
		seq, have := int64(f.data.Seq), int64(len(rd.byRank[peer]))
		if seq < have {
			return nil // duplicate prefix of a resend
		}
		if seq > have {
			return fmt.Errorf("transport: rank %d: frame gap in cluster %d round %d: seq %d, want %d",
				peer, f.data.Cluster, f.data.Round, seq, have)
		}
		rd.byRank[peer] = append(rd.byRank[peer], f.data)
		if rd.ends[peer] >= 0 && int64(len(rd.byRank[peer])) == rd.ends[peer] {
			s.cond.Broadcast()
		}
	case frameRoundEnd:
		if *connEpoch < s.epoch || s.retired[f.cluster] {
			return nil
		}
		rd := s.roundLocked(f.cluster, f.round)
		if rd.assembled {
			return nil
		}
		if rd.ends[peer] >= 0 {
			if rd.ends[peer] != int64(f.frames) {
				return fmt.Errorf("transport: rank %d: conflicting round-end for cluster %d round %d: %d vs %d",
					peer, f.cluster, f.round, rd.ends[peer], f.frames)
			}
			return nil
		}
		rd.ends[peer] = int64(f.frames)
		s.cond.Broadcast()
	case frameHello:
		return fmt.Errorf("transport: rank %d: unexpected mid-stream hello", peer)
	}
	return nil
}

// writeFrames ships buf (one complete frame stream) to rank r, retrying
// with a fresh connection (and a full resend — receivers dedupe by
// sequence number) up to WriteRetries times. Every write is bounded by a
// RoundTimeout write deadline, so a peer that stops reading fails the
// round instead of wedging it. desc names the stream for error context
// ("cluster C round R" or a barrier name) — surfaced errors always carry
// (rank, what, peer, addr).
//
// When a FaultInjector is installed (fi non-nil), it is consulted before
// each attempt and may tear, duplicate, delay or reset the write; the
// injected failure then flows through the exact retry/dedup machinery a
// real one would.
func (s *Session) writeFrames(r int, buf []byte, desc string, fi FaultInjector, epoch int, cluster, round uint32, faults *int64) error {
	pc := s.peers[r]
	pc.mu.Lock()
	defer pc.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt <= s.opts.WriteRetries; attempt++ {
		if attempt > 0 {
			s.ctr.resends.Add(1)
			obsResends.Inc()
			time.Sleep(backoffFor(attempt, s.opts.DialBackoff))
		}
		if s.isClosed() {
			return ErrSessionClosed
		}
		if pc.conn == nil {
			c, err := s.dialPeer(r)
			if err != nil {
				lastErr = err
				continue
			}
			pc.conn = c
		}
		out := buf
		if fi != nil {
			act, delay := fi.WriteFault(s.rank, r, epoch, cluster, round, attempt)
			if delay > 0 {
				s.countFault(faults)
				time.Sleep(delay)
			}
			switch act {
			case FaultReset:
				s.countFault(faults)
				pc.conn.Close()
				pc.conn = nil
				lastErr = errInjectedReset
				continue
			case FaultDrop:
				s.countFault(faults)
				torn := buf[:len(buf)/2]
				pc.conn.SetWriteDeadline(time.Now().Add(s.opts.RoundTimeout))
				if n, _ := pc.conn.Write(torn); n > 0 {
					s.ctr.wireBytes.Add(int64(n))
					obsWireBytes.Add(int64(n))
				}
				pc.conn.Close()
				pc.conn = nil
				lastErr = errInjectedDrop
				continue
			case FaultDup:
				s.countFault(faults)
				dup := make([]byte, 0, 2*len(buf))
				dup = append(dup, buf...)
				out = append(dup, buf...)
			}
		}
		pc.conn.SetWriteDeadline(time.Now().Add(s.opts.RoundTimeout))
		s.queued.Add(int64(len(out)))
		_, err := pc.conn.Write(out)
		s.queued.Add(-int64(len(out)))
		if err == nil {
			s.ctr.wireBytes.Add(int64(len(out)))
			obsWireBytes.Add(int64(len(out)))
			return nil
		}
		lastErr = err
		pc.conn.Close()
		pc.conn = nil
	}
	return fmt.Errorf("%w: rank %d: %s write to peer %d (%s): %v",
		ErrPeerUnavailable, s.rank, desc, r, s.addrs[r], lastErr)
}

// waitRound blocks until every rank's frames for (cluster, round) have
// arrived, then claims them for assembly. It fails with ErrPeerUnavailable
// on timeout (naming the pending peers) or as soon as any rank announces a
// failed attempt over the outcome barrier, and honors ctx cancellation —
// the barrier never resolves silently short, and a wedged round cannot
// outlive its request.
func (s *Session) waitRound(ctx context.Context, cluster, round uint32) ([][]dataFrame, error) {
	timeout := s.opts.RoundTimeout
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer timer.Stop()
	if ctx != nil {
		stop := context.AfterFunc(ctx, func() {
			s.mu.Lock()
			s.cond.Broadcast()
			s.mu.Unlock()
		})
		defer stop()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rd := s.roundLocked(cluster, round)
	for {
		if s.fatal != nil {
			return nil, s.fatal
		}
		if s.closed {
			return nil, ErrSessionClosed
		}
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("transport: rank %d: cluster %d round %d: %w", s.rank, cluster, round, err)
			}
		}
		if r, aborted := s.abortedLocked(); aborted {
			return nil, fmt.Errorf("%w: rank %d: cluster %d round %d aborted: peer %d (%s) announced a failed attempt",
				ErrPeerUnavailable, s.rank, cluster, round, r, s.addrs[r])
		}
		if rd.complete(s.n) {
			rd.assembled = true
			frames := rd.byRank
			rd.byRank = nil
			return frames, nil
		}
		if !time.Now().Before(deadline) {
			var pending []string
			for r := 0; r < s.n; r++ {
				if rd.ends[r] < 0 || int64(len(rd.byRank[r])) != rd.ends[r] {
					pending = append(pending, fmt.Sprintf("%d (%s)", r, s.addrs[r]))
				}
			}
			return nil, fmt.Errorf("%w: rank %d: cluster %d round %d incomplete after %v, pending peers: %s",
				ErrPeerUnavailable, s.rank, cluster, round, timeout, strings.Join(pending, ", "))
		}
		s.cond.Wait()
	}
}

// waitCtrl blocks until every rank's announcement for one barrier has
// arrived. Barriers wait up to twice the round timeout — a slow peer must
// first time out of its own round before it can join the barrier.
func (s *Session) waitCtrl(kind, gen uint32, name string) ([]uint32, error) {
	timeout := 2 * s.opts.RoundTimeout
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer timer.Stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.ctrlLocked(kind, gen)
	for {
		if s.fatal != nil {
			return nil, s.fatal
		}
		if s.closed {
			return nil, ErrSessionClosed
		}
		if st.have == s.n {
			return append([]uint32(nil), st.flags...), nil
		}
		if !time.Now().Before(deadline) {
			var pending []string
			for r := 0; r < s.n; r++ {
				if !st.got[r] {
					pending = append(pending, fmt.Sprintf("%d (%s)", r, s.addrs[r]))
				}
			}
			return nil, fmt.Errorf("%w: rank %d: %s barrier gen %d incomplete after %v, pending peers: %s",
				ErrPeerUnavailable, s.rank, name, gen, timeout, strings.Join(pending, ", "))
		}
		s.cond.Wait()
	}
}

// RunMark snapshots the session state a recovery supervisor needs to
// rewind a failed attempt: the next cluster identity (attempts re-assign
// the same ids) and the wire accounting baseline the abandoned attempt's
// charges are backed out against.
type RunMark struct {
	cluster uint32
	base    WireStats
}

// Mark snapshots the rewind point for one run attempt. Call before the
// attempt; pass to Rewind if it fails.
func (s *Session) Mark() RunMark {
	s.mu.Lock()
	c := s.nextCluster
	s.mu.Unlock()
	return RunMark{cluster: c, base: s.ctr.snapshot()}
}

// ExchangeOutcome runs the post-attempt barrier: every rank announces
// whether its attempt succeeded and waits for every other rank's
// announcement. It returns whether ALL ranks succeeded — only then is the
// run's result final (a rank that failed locally has not assembled its
// answer; a rank that succeeded while a peer failed must discard and
// replay, which determinism makes free).
func (s *Session) ExchangeOutcome(ok bool) (bool, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false, ErrSessionClosed
	}
	s.gen++
	gen := s.gen
	s.mu.Unlock()
	var flags uint32
	if ok {
		flags = ctrlOK
	}
	buf := appendCtrl(nil, ctrlOutcome, gen, flags)
	desc := fmt.Sprintf("outcome barrier gen %d", gen)
	for r := 0; r < s.n; r++ {
		s.ctr.ctrlFrames.Add(1)
		obsCtrlFrames.Inc()
		if err := s.writeFrames(r, buf, desc, nil, 0, 0, 0, nil); err != nil {
			return false, err
		}
	}
	got, err := s.waitCtrl(ctrlOutcome, gen, "outcome")
	if err != nil {
		return false, err
	}
	allOK := true
	for _, f := range got {
		if f&ctrlOK == 0 {
			allOK = false
		}
	}
	return allOK, nil
}

// Rewind discards the failed attempt at this rank: all receive state at
// or above the mark's cluster is deleted (replays re-create the same
// cluster identities from fresh state), the attempt epoch advances (so
// stale frames of the abandoned attempt are dropped on ingest), and the
// abandoned attempt's model accounting is backed out of the charged
// counters into AbandonedBytes / AbandonedChargedBits. Wire-truth
// counters (WireBytes, CtrlFrames, Redials, Resends) are left alone.
//
// After Rewind, ReadyBarrier must complete before the replay ships
// anything — it is what tells every peer to expect the new epoch.
func (s *Session) Rewind(m RunMark) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrSessionClosed
	}
	if s.fatal != nil {
		err := s.fatal
		s.mu.Unlock()
		return err
	}
	for id := range s.clusters {
		if id >= m.cluster {
			delete(s.clusters, id)
		}
	}
	for id := range s.retired {
		if id >= m.cluster {
			delete(s.retired, id)
		}
	}
	s.nextCluster = m.cluster
	s.epoch++
	// Old barriers can never complete again; keep a small window for
	// stragglers' duplicate announcements, drop the rest.
	for k := range s.ctrl {
		if uint32(k)+16 < s.gen {
			delete(s.ctrl, k)
		}
	}
	s.mu.Unlock()

	now := s.ctr.snapshot()
	dataFrames := now.DataFrames - m.base.DataFrames
	payload := now.PayloadBytes - m.base.PayloadBytes
	header := now.HeaderBytes - m.base.HeaderBytes
	uniPayload := now.UnicastPayloadBytes - m.base.UnicastPayloadBytes
	bcPayload := now.BroadcastPayloadBytes - m.base.BroadcastPayloadBytes
	billed := now.BilledPayloadBytes - m.base.BilledPayloadBytes
	uniBits := now.UnicastChargedBits - m.base.UnicastChargedBits
	bcBits := now.BroadcastChargedBits - m.base.BroadcastChargedBits
	s.ctr.dataFrames.Add(-dataFrames)
	s.ctr.payloadBytes.Add(-payload)
	s.ctr.headerBytes.Add(-header)
	s.ctr.unicastPayloadBytes.Add(-uniPayload)
	s.ctr.broadcastPayloadBytes.Add(-bcPayload)
	s.ctr.billedPayloadBytes.Add(-billed)
	s.ctr.unicastChargedBits.Add(-uniBits)
	s.ctr.broadcastChargedBits.Add(-bcBits)
	s.ctr.abandonedBytes.Add(payload + header)
	s.ctr.abandonedChargedBits.Add(uniBits + bcBits)
	obsAbandonedBytes.Add(payload + header)
	return nil
}

// ReadyBarrier announces this rank has rewound for a replay (the ctrlReady
// carries the new attempt epoch, advancing every receiving connection's
// epoch) and waits until every rank has announced the same. When it
// returns, every peer is guaranteed to have discarded the abandoned
// attempt — the replay's frames will land in fresh state.
func (s *Session) ReadyBarrier() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrSessionClosed
	}
	s.gen++
	gen := s.gen
	epoch := uint32(s.epoch)
	s.mu.Unlock()
	buf := appendCtrl(nil, ctrlReady, gen, epoch)
	desc := fmt.Sprintf("ready barrier gen %d", gen)
	for r := 0; r < s.n; r++ {
		s.ctr.ctrlFrames.Add(1)
		obsCtrlFrames.Inc()
		if err := s.writeFrames(r, buf, desc, nil, 0, 0, 0, nil); err != nil {
			return err
		}
	}
	_, err := s.waitCtrl(ctrlReady, gen, "ready")
	return err
}

// tcpLink delivers the rounds of one cluster over the session.
type tcpLink struct {
	s       *Session
	id      uint32
	bpv     int
	buf     []byte  // serialize scratch, reused across rounds
	scratch []int64 // decode scratch, reused across frames
}

func (l *tcpLink) Close() error {
	s := l.s
	s.mu.Lock()
	delete(s.clusters, l.id)
	// Late frames for a released cluster (a slow peer's resend tail) must
	// not re-materialize its state; retire the identity until a future
	// Attach (or a rewound replay) legitimately reuses it.
	s.retired[l.id] = true
	s.mu.Unlock()
	return nil
}

// Deliver implements one round of the SPMD protocol: serialize this
// rank's owned senders' emissions and ship the identical frame stream to
// every rank (self included, over the socket), wait for all ranks'
// streams, then assemble every inbox — in the exact delivery order
// DeliverLocal defines — from the received frames alone.
func (l *tcpLink) Deliver(io *engine.DeliveryRound) error {
	s := l.s
	if err := s.Err(); err != nil {
		return err
	}
	round := uint32(io.Round)
	fi, epoch := s.injectorAndEpoch()
	var faults int64
	if fi != nil {
		delay, crash := fi.DeliverFault(s.rank, epoch, l.id, round)
		if delay > 0 {
			s.countFault(&faults)
			io.Trace.Instant("fault_straggler",
				obs.KV{Key: "cluster", Value: fmt.Sprint(l.id)}, obs.KV{Key: "round", Value: fmt.Sprint(round)},
				obs.KV{Key: "delay_ns", Value: fmt.Sprint(int64(delay))})
			time.Sleep(delay)
		}
		if crash != nil {
			s.countFault(&faults)
			io.Trace.Instant("fault_crash",
				obs.KV{Key: "cluster", Value: fmt.Sprint(l.id)}, obs.KV{Key: "round", Value: fmt.Sprint(round)})
			return fmt.Errorf("%w: rank %d: cluster %d round %d: injected crash: %w",
				ErrPeerUnavailable, s.rank, l.id, round, crash)
		}
	}

	// Serialize. Frames for one rank's senders are emitted sender-
	// ascending; combined with rank-block-ascending assembly this
	// reproduces the engine's sender-ascending delivery order globally.
	buf := l.buf[:0]
	frames := uint32(0)
	var payloadUni, payloadBc, billed int64
	var bitsUni, bitsBc int64
	lo, hi := ownedRange(s.rank, s.n, io.P)
	for sv := lo; sv < hi; sv++ {
		io.Senders[sv].EachPending(func(dest, kind, arity int, vals []int64) {
			w := widthFor(l.bpv, vals)
			buf = appendDataFrame(buf, l.id, round, frames, uint32(sv), int32(dest), uint32(kind), arity, w, vals)
			frames++
			pb := int64(len(vals)) * int64(w)
			cb := int64(len(vals)) * int64(l.bpv)
			if dest == engine.Broadcast {
				payloadBc += pb
				billed += pb * int64(io.P)
				bitsBc += cb * int64(io.P)
			} else {
				payloadUni += pb
				billed += pb
				bitsUni += cb
			}
		})
	}
	buf = appendRoundEnd(buf, l.id, round, frames)
	l.buf = buf

	s.ctr.dataFrames.Add(int64(frames))
	s.ctr.ctrlFrames.Add(int64(s.n))
	s.ctr.payloadBytes.Add(payloadUni + payloadBc)
	s.ctr.headerBytes.Add(int64(frames) * DataFrameOverheadBytes)
	s.ctr.unicastPayloadBytes.Add(payloadUni)
	s.ctr.broadcastPayloadBytes.Add(payloadBc)
	s.ctr.billedPayloadBytes.Add(billed)
	s.ctr.unicastChargedBits.Add(bitsUni)
	s.ctr.broadcastChargedBits.Add(bitsBc)
	obsDataFrames.Add(int64(frames))
	obsCtrlFrames.Add(int64(s.n))
	obsPayloadBytes.Add(payloadUni + payloadBc)
	obsBilledBytes.Add(billed)

	desc := fmt.Sprintf("cluster %d round %d", l.id, round)
	for r := 0; r < s.n; r++ {
		if err := s.writeFrames(r, buf, desc, fi, epoch, l.id, round, &faults); err != nil {
			return err
		}
	}
	if faults > 0 {
		io.Trace.Instant("faults_injected",
			obs.KV{Key: "cluster", Value: fmt.Sprint(l.id)}, obs.KV{Key: "round", Value: fmt.Sprint(round)},
			obs.KV{Key: "count", Value: fmt.Sprint(faults)})
	}

	byRank, err := s.waitRound(io.Ctx, l.id, round)
	if err != nil {
		return err
	}
	return l.assemble(byRank, io)
}

// assemble rebuilds every inbox and the per-destination accounting from
// the received frames. Iteration order — ranks ascending, frames in
// arrival order — yields, per destination, exactly DeliverLocal's order:
// senders ascending, each sender's unicasts (in emission order) before
// its broadcasts. The float accumulation order also matches, batch for
// batch, so RecvBits is bit-identical to the in-process run.
func (l *tcpLink) assemble(byRank [][]dataFrame, io *engine.DeliveryRound) error {
	p := io.P
	for d := 0; d < p; d++ {
		io.RecvBits[d] = 0
		io.RecvTuples[d] = 0
	}
	scratch := l.scratch
	for r := range byRank {
		for i := range byRank[r] {
			f := &byRank[r][i]
			if int(f.Sender) >= p {
				return fmt.Errorf("transport: cluster %d: frame sender %d out of range for %d servers", l.id, f.Sender, p)
			}
			if int(f.Dest) >= p {
				return fmt.Errorf("transport: cluster %d: frame destination %d out of range for %d servers", l.id, f.Dest, p)
			}
			scratch = f.decodeValues(scratch[:0])
			arity := int(f.Arity)
			bits := float64(len(scratch) * io.BitsPerValue)
			tuples := len(scratch) / arity
			if f.Dest == int32(engine.Broadcast) {
				for d := 0; d < p; d++ {
					io.Inboxes[d].Append(int(f.Kind), arity, scratch)
					io.RecvBits[d] += bits
					io.RecvTuples[d] += tuples
				}
			} else {
				d := int(f.Dest)
				io.Inboxes[d].Append(int(f.Kind), arity, scratch)
				io.RecvBits[d] += bits
				io.RecvTuples[d] += tuples
			}
		}
	}
	l.scratch = scratch
	return nil
}
