// Package oracle is the differential-testing reference: a deliberately
// naive, single-server evaluator for full conjunctive queries and their
// aggregates, sharing no code with the engine, the local-join kernel, or the
// aggregation subsystem. The root-level differential suite runs every
// strategy family against it on randomized instances — if a fast path and
// the oracle ever disagree, the fast path is wrong.
//
// Everything here favors obviousness over speed: backtracking nested-loop
// join in textual atom order, linear scans, map-based grouping with sorted
// output. Keep it that way; its only job is to be visibly correct.
package oracle

import (
	"fmt"
	"sort"

	"mpcquery/internal/data"
	"mpcquery/internal/query"
)

// Evaluate computes q(db) by backtracking over the atoms in query order:
// for each atom, scan its whole relation for tuples consistent with the
// bindings so far. The output is a bag (duplicates from duplicate input
// tuples are kept) with columns in q.Vars() order.
func Evaluate(q *query.Query, db *data.Database) *data.Relation {
	out := data.NewRelation(q.Name, q.NumVars())
	bind := make(map[string]int64, q.NumVars())
	var rec func(ai int)
	rec = func(ai int) {
		if ai == q.NumAtoms() {
			row := make([]int64, 0, q.NumVars())
			for _, v := range q.Vars() {
				row = append(row, bind[v])
			}
			out.AppendTuple(row)
			return
		}
		atom := q.Atoms[ai]
		rel := db.Get(atom.Name)
		m := rel.NumTuples()
		for i := 0; i < m; i++ {
			t := rel.Tuple(i)
			ok := true
			assigned := make([]string, 0, len(atom.Vars))
			for c, v := range atom.Vars {
				if b, bound := bind[v]; bound {
					if b != t[c] {
						ok = false
						break
					}
				} else {
					bind[v] = t[c]
					assigned = append(assigned, v)
				}
			}
			if ok {
				rec(ai + 1)
			}
			for _, v := range assigned {
				delete(bind, v)
			}
		}
	}
	if q.NumAtoms() > 0 {
		rec(0)
	}
	return out
}

// Aggregate computes op (one of "count", "sum", "min", "max") over variable
// of (ignored for count) of q(db), grouped by the groupBy variables. The
// result matches the engine's canonical aggregate format: plain tuples
// (group key..., value) sorted lexicographically; a global aggregate yields
// a single (value) tuple, or none when the join is empty. Arithmetic is
// int64 with Go's wraparound, like the engine's.
func Aggregate(q *query.Query, db *data.Database, op string, of string, groupBy []string) *data.Relation {
	switch op {
	case "count", "sum", "min", "max":
	default:
		panic(fmt.Sprintf("oracle: unknown aggregate op %q", op))
	}
	join := Evaluate(q, db)
	groupCols := make([]int, len(groupBy))
	for i, v := range groupBy {
		c := q.VarIndex(v)
		if c < 0 {
			panic(fmt.Sprintf("oracle: group-by variable %q not in %s", v, q))
		}
		groupCols[i] = c
	}
	aggCol := -1
	if op != "count" {
		aggCol = q.VarIndex(of)
		if aggCol < 0 {
			panic(fmt.Sprintf("oracle: aggregated variable %q not in %s", of, q))
		}
	}

	type group struct {
		key []int64
		val int64
	}
	groups := make(map[string]*group)
	keybuf := make([]byte, 0, 64)
	m := join.NumTuples()
	for i := 0; i < m; i++ {
		t := join.Tuple(i)
		keybuf = keybuf[:0]
		for _, c := range groupCols {
			keybuf = appendInt64(keybuf, t[c])
		}
		var contrib int64 = 1
		if aggCol >= 0 {
			contrib = t[aggCol]
		}
		g, ok := groups[string(keybuf)]
		if !ok {
			key := make([]int64, len(groupCols))
			for j, c := range groupCols {
				key[j] = t[c]
			}
			groups[string(keybuf)] = &group{key: key, val: contrib}
			continue
		}
		switch op {
		case "count", "sum":
			g.val += contrib
		case "min":
			if contrib < g.val {
				g.val = contrib
			}
		case "max":
			if contrib > g.val {
				g.val = contrib
			}
		default:
			panic(fmt.Sprintf("oracle: unknown aggregate op %q", op))
		}
	}

	rows := make([]*group, 0, len(groups))
	for _, g := range groups {
		rows = append(rows, g)
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for c := range a.key {
			if a.key[c] != b.key[c] {
				return a.key[c] < b.key[c]
			}
		}
		return a.val < b.val
	})
	out := data.NewRelation(q.Name, len(groupCols)+1)
	row := make([]int64, len(groupCols)+1)
	for _, g := range rows {
		copy(row, g.key)
		row[len(groupCols)] = g.val
		out.AppendTuple(row)
	}
	return out
}

// appendInt64 appends a fixed-width big-endian encoding, so distinct key
// vectors never collide as map keys.
func appendInt64(b []byte, v int64) []byte {
	u := uint64(v)
	return append(b, byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
		byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
}
